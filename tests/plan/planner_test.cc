#include "plan/planner.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "probe/sensors.h"
#include "topo/generator.h"
#include "util/rng.h"

namespace netd::plan {
namespace {

topo::Topology small_topo() {
  topo::GeneratorParams p;
  p.target_ases = 40;
  return topo::generate(p);
}

std::vector<probe::Sensor> pool_of(const topo::Topology& t, std::size_t n) {
  util::Rng rng(5);
  return probe::place_sensors(t, probe::PlacementKind::kRandomStub, n, rng);
}

PlannerConfig config(std::size_t budget) {
  PlannerConfig cfg;
  cfg.budget = budget;
  cfg.measure_report = false;
  return cfg;
}

TEST(Planner, BudgetRespectedAndClampedToPool) {
  const topo::Topology t = small_topo();
  const auto pool = pool_of(t, 12);
  {
    Planner p(t, pool, config(5));
    const PlanResult r = p.plan();
    EXPECT_EQ(r.chosen.size(), 5u);
    EXPECT_EQ(r.sensors.size(), 5u);
    EXPECT_EQ(r.gains.size(), 5u);
  }
  {
    Planner p(t, pool, config(100));  // budget beyond the pool
    EXPECT_EQ(p.plan().chosen.size(), pool.size());
  }
  {
    Planner p(t, pool, config(0));
    const PlanResult r = p.plan();
    EXPECT_TRUE(r.chosen.empty());
    EXPECT_DOUBLE_EQ(r.objective, 0.0);
  }
}

TEST(Planner, ObjectiveEqualsFromScratchEvaluate) {
  // The incremental partition refinement must agree with the from-scratch
  // hitting-set computation, and the objective is the sum of the gains.
  const topo::Topology t = small_topo();
  const auto pool = pool_of(t, 14);
  for (Granularity g : {Granularity::kLink, Granularity::kAs,
                        Granularity::kNode}) {
    auto cfg = config(6);
    cfg.objective = g;
    Planner p(t, pool, cfg);
    const PlanResult r = p.plan();
    EXPECT_DOUBLE_EQ(r.objective, p.evaluate(r.chosen)) << to_string(g);
    EXPECT_DOUBLE_EQ(r.objective,
                     std::accumulate(r.gains.begin(), r.gains.end(), 0.0))
        << to_string(g);
  }
}

TEST(Planner, FirstPickIsLowestIndexWithZeroGain) {
  // With no prior sensor there are no probe pairs, so every candidate's
  // marginal gain is 0 and the tie-break selects the lowest index.
  const topo::Topology t = small_topo();
  Planner p(t, pool_of(t, 10), config(3));
  const PlanResult r = p.plan();
  ASSERT_FALSE(r.chosen.empty());
  EXPECT_EQ(r.chosen[0], 0u);
  EXPECT_DOUBLE_EQ(r.gains[0], 0.0);
}

TEST(Planner, LazyAndEagerAreByteIdentical) {
  // `lazy` only reuses materialized path arenas; selections, gains and
  // the objective must not change.
  const topo::Topology t = small_topo();
  const auto pool = pool_of(t, 14);
  auto lazy_cfg = config(7);
  auto eager_cfg = config(7);
  eager_cfg.lazy = false;
  Planner lazy(t, pool, lazy_cfg);
  Planner eager(t, pool, eager_cfg);
  const PlanResult a = lazy.plan();
  const PlanResult b = eager.plan();
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.gains, b.gains);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(Planner, DeterministicAcrossThreadCounts) {
  // The tree precompute is sharded over a thread pool; the placement and
  // report must be byte-identical for every thread count.
  const topo::Topology t = small_topo();
  const auto pool = pool_of(t, 14);
  auto base_cfg = config(6);
  base_cfg.measure_report = true;
  Planner base(t, pool, base_cfg);
  const PlanResult expected = base.plan();
  for (std::size_t threads : {2u, 8u}) {
    auto cfg = base_cfg;
    cfg.num_threads = threads;
    Planner p(t, pool, cfg);
    const PlanResult r = p.plan();
    EXPECT_EQ(r.chosen, expected.chosen) << threads << " threads";
    EXPECT_EQ(r.gains, expected.gains) << threads << " threads";
    EXPECT_DOUBLE_EQ(r.objective, expected.objective);
    for (Granularity g : {Granularity::kLink, Granularity::kAs,
                          Granularity::kNode}) {
      EXPECT_EQ(r.report.at(g).covered, expected.report.at(g).covered);
      EXPECT_EQ(r.report.at(g).distinct, expected.report.at(g).distinct);
      EXPECT_EQ(r.report.at(g).identifiable,
                expected.report.at(g).identifiable);
    }
    for (std::size_t i = 0; i < r.sensors.size(); ++i) {
      EXPECT_EQ(r.sensors[i].name, expected.sensors[i].name);
      EXPECT_EQ(r.sensors[i].attach, expected.sensors[i].attach);
    }
  }
}

TEST(Planner, PlanRunsTwiceIdentically) {
  // plan() resets all incremental state; a second run must reproduce the
  // first exactly.
  const topo::Topology t = small_topo();
  Planner p(t, pool_of(t, 12), config(5));
  const PlanResult a = p.plan();
  const PlanResult b = p.plan();
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(Planner, PlannedBeatsRandomSubsetsOfTheSamePool) {
  const topo::Topology t = small_topo();
  const auto pool = pool_of(t, 16);
  Planner p(t, pool, config(6));
  const PlanResult r = p.plan();
  std::vector<std::size_t> all(pool.size());
  std::iota(all.begin(), all.end(), 0u);
  util::Rng rng(9);
  for (int draw = 0; draw < 8; ++draw) {
    EXPECT_GE(r.objective, p.evaluate(rng.sample(all, 6)));
  }
}

TEST(Planner, MeasuredReportIsPlausible) {
  // The report goes through the real prober + diagnosis-graph pipeline;
  // it counts sensor access edges on top of the planner's element space
  // (see PlanResult::report), so covered must be at least the objective's
  // distinct classes and every count stays internally consistent.
  const topo::Topology t = small_topo();
  auto cfg = config(6);
  cfg.measure_report = true;
  Planner p(t, pool_of(t, 12), cfg);
  const PlanResult r = p.plan();
  for (Granularity g : {Granularity::kLink, Granularity::kAs,
                        Granularity::kNode}) {
    const GranularityStats& s = r.report.at(g);
    EXPECT_GT(s.covered, 0u) << to_string(g);
    EXPECT_LE(s.identifiable, s.distinct) << to_string(g);
    EXPECT_LE(s.distinct, s.covered) << to_string(g);
  }
}

}  // namespace
}  // namespace netd::plan
