#include "plan/identifiability.h"

#include <gtest/gtest.h>

#include "../core/mesh_builder.h"
#include "core/diagnosability.h"
#include "core/diagnosis_graph.h"

namespace netd::plan {
namespace {

using core::testing::MeshBuilder;

core::DiagnosisGraph graph_of(const probe::Mesh& m) {
  return core::build_diagnosis_graph(m, m, /*logical_links=*/false);
}

TEST(HittingStats, EmptyFamily) {
  const GranularityStats s = hitting_stats(core::SetFamily{});
  EXPECT_EQ(s.covered, 0u);
  EXPECT_EQ(s.distinct, 0u);
  EXPECT_EQ(s.identifiable, 0u);
  EXPECT_DOUBLE_EQ(s.distinct_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(s.identifiable_fraction(), 0.0);
}

TEST(HittingStats, CountsClassesAndSingletons) {
  // {0,1} twice (one class, no singleton), {2} once (identifiable),
  // {} uncovered.
  const core::SetFamily hits{{{0, 1}, {0, 1}, {2}, {}}};
  const GranularityStats s = hitting_stats(hits);
  EXPECT_EQ(s.covered, 3u);
  EXPECT_EQ(s.distinct, 2u);
  EXPECT_EQ(s.identifiable, 1u);
}

TEST(Identifiability, EmptyGraphAllZero) {
  const IdentifiabilityReport r = identifiability(graph_of(probe::Mesh{}));
  for (Granularity g : {Granularity::kLink, Granularity::kAs,
                        Granularity::kNode}) {
    EXPECT_EQ(r.at(g).covered, 0u);
    EXPECT_EQ(r.at(g).distinct, 0u);
    EXPECT_EQ(r.at(g).identifiable, 0u);
  }
}

TEST(Identifiability, SinglePathIsOneClass) {
  // s0 - a - b - c - s1: every link shares the hitting set {path0}.
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "a@1", "b@1", "c@1", "s1@1!s"})
                     .build();
  const IdentifiabilityReport r = identifiability(graph_of(m));
  EXPECT_EQ(r.links.covered, 4u);
  EXPECT_EQ(r.links.distinct, 1u);
  EXPECT_EQ(r.links.identifiable, 0u);
  // Nodes: a, b, c (sensors are excluded), one shared class.
  EXPECT_EQ(r.nodes.covered, 3u);
  EXPECT_EQ(r.nodes.distinct, 1u);
  EXPECT_EQ(r.nodes.identifiable, 0u);
}

TEST(Identifiability, LinkFractionMatchesDiagnosabilitySingleDirection) {
  // Meshes that traverse every link in one direction only: the physical
  // partition coincides with the directed-edge partition of §4.
  const auto chain = MeshBuilder()
                         .ok(0, 1, {"s0@1!s", "a@1", "b@1", "c@1", "s1@1!s"})
                         .build();
  const auto dense = MeshBuilder()
                         .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                         .ok(2, 1, {"s2@1!s", "a@1", "b@1", "s1@1!s"})
                         .ok(2, 3, {"s2@1!s", "a@1", "s3@1!s"})
                         .build();
  for (const auto& m : {chain, dense}) {
    const auto dg = graph_of(m);
    EXPECT_DOUBLE_EQ(identifiability(dg).links.distinct_fraction(),
                     core::diagnosability(dg));
  }
}

TEST(Identifiability, BothDirectionsCollapseOntoPhysicalLinks) {
  // Star probed in both directions: 5 directed edges but 3 physical
  // links, each with a unique hitting set — D(G) and the physical
  // fraction legitimately differ (see identifiability.h).
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "hub@1", "s1@1!s"})
                     .ok(1, 0, {"s1@1!s", "hub@1", "s0@1!s"})
                     .ok(0, 2, {"s0@1!s", "hub@1", "s2@1!s"})
                     .build();
  const auto dg = graph_of(m);
  const IdentifiabilityReport r = identifiability(dg);
  EXPECT_EQ(r.links.covered, 3u);
  EXPECT_EQ(r.links.distinct, 3u);
  EXPECT_EQ(r.links.identifiable, 3u);
  EXPECT_DOUBLE_EQ(core::diagnosability(dg), 4.0 / 5.0);
  // Node space: only the hub (sensors excluded), trivially identifiable.
  EXPECT_EQ(r.nodes.covered, 1u);
  EXPECT_EQ(r.nodes.identifiable, 1u);
}

TEST(Identifiability, AsGranularityPartitionsByAsn) {
  // AS path 10 - 1 - 2 - 20 on one probe, plus a second probe that
  // separates AS 2 from AS 20's class.
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@10!s", "a@1", "b@2", "s1@20!s"})
                     .ok(2, 1, {"s2@30!s", "b@2", "s1@20!s"})
                     .build();
  const IdentifiabilityReport r = identifiability(graph_of(m));
  // Covered ASes: 10, 1, 2, 20, 30.
  EXPECT_EQ(r.ases.covered, 5u);
  // Classes: {10,1} = {p0}; {2,20} = {p0,p1}; {30} = {p1}.
  EXPECT_EQ(r.ases.distinct, 3u);
  EXPECT_EQ(r.ases.identifiable, 1u);  // AS 30 alone
}

TEST(Identifiability, RefinementNeverLowersCounts) {
  // Adding a path can split classes but never merge them.
  MeshBuilder base;
  base.ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"});
  const auto coarse = identifiability(graph_of(base.build()));
  base.ok(2, 1, {"s2@1!s", "b@1", "s1@1!s"});
  const auto fine = identifiability(graph_of(base.build()));
  EXPECT_GE(fine.links.distinct, coarse.links.distinct);
  EXPECT_GE(fine.links.covered, coarse.links.covered);
  EXPECT_GE(fine.nodes.distinct, coarse.nodes.distinct);
}

TEST(GranularityNames, RoundTrip) {
  for (Granularity g : {Granularity::kLink, Granularity::kAs,
                        Granularity::kNode}) {
    EXPECT_EQ(granularity_from_string(to_string(g)), g);
  }
  EXPECT_FALSE(granularity_from_string("bogus").has_value());
}

}  // namespace
}  // namespace netd::plan
