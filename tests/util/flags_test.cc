#include "util/flags.h"

#include <gtest/gtest.h>

namespace netd::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparatedValue) {
  auto f = parse({"--seed", "42"});
  EXPECT_TRUE(f.has("seed"));
  EXPECT_EQ(f.get_int("seed", 0), 42);
}

TEST(Flags, EqualsValue) {
  auto f = parse({"--mode=links"});
  EXPECT_EQ(f.get("mode"), "links");
}

TEST(Flags, BooleanFlag) {
  auto f = parse({"--verbose", "--out", "x"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_FALSE(f.get_bool("quiet"));
  EXPECT_EQ(f.get("out"), "x");
}

TEST(Flags, BooleanBeforeAnotherFlag) {
  auto f = parse({"--a", "--b", "7"});
  EXPECT_TRUE(f.get_bool("a"));
  EXPECT_EQ(f.get_int("b", 0), 7);
}

TEST(Flags, ExplicitFalse) {
  auto f = parse({"--x=false", "--y=0"});
  EXPECT_FALSE(f.get_bool("x"));
  EXPECT_FALSE(f.get_bool("y"));
}

TEST(Flags, Positionals) {
  auto f = parse({"run", "--n", "3", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, DefaultsWhenAbsent) {
  auto f = parse({});
  EXPECT_EQ(f.get("x", "def"), "def");
  EXPECT_EQ(f.get_int("n", 9), 9);
  EXPECT_DOUBLE_EQ(f.get_double("d", 1.5), 1.5);
}

TEST(Flags, MalformedIntRecordsError) {
  auto f = parse({"--n", "abc"});
  EXPECT_EQ(f.get_int("n", 5), 5);
  EXPECT_FALSE(f.ok());
}

TEST(Flags, MalformedDoubleRecordsError) {
  auto f = parse({"--d", "1.2.3"});
  EXPECT_DOUBLE_EQ(f.get_double("d", 0.5), 0.5);
  EXPECT_FALSE(f.ok());
}

TEST(Flags, DoubleParses) {
  auto f = parse({"--frac", "0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("frac", 0), 0.25);
  EXPECT_TRUE(f.ok());
}

TEST(Flags, UintParses) {
  auto f = parse({"--count", "12"});
  EXPECT_EQ(f.get_uint("count", 0), 12u);
  EXPECT_EQ(f.get_uint("absent", 7), 7u);
  EXPECT_TRUE(f.ok());
}

TEST(Flags, MalformedUintRecordsError) {
  auto f = parse({"--count", "twelve"});
  EXPECT_EQ(f.get_uint("count", 5), 5u);
  EXPECT_FALSE(f.ok());
}

TEST(Flags, NegativeUintRecordsError) {
  // A silent size_t cast would turn -1 into 2^64-1; get_uint must refuse.
  auto f = parse({"--count", "-1"});
  EXPECT_EQ(f.get_uint("count", 5), 5u);
  ASSERT_FALSE(f.ok());
  EXPECT_NE(f.errors()[0].find("non-negative"), std::string::npos);
}

TEST(Flags, AllowRejectsUnknown) {
  auto f = parse({"--known", "1", "--oops", "2"});
  f.allow({"known"});
  ASSERT_EQ(f.errors().size(), 1u);
  EXPECT_NE(f.errors()[0].find("oops"), std::string::npos);
}

}  // namespace
}  // namespace netd::util

namespace netd::util {
namespace {

TEST(Flags, RepeatedFlagLastWins) {
  std::vector<const char*> argv = {"prog", "--n", "1", "--n", "2"};
  auto f = Flags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.get_int("n", 0), 2);
}

TEST(Flags, EmptyValueViaEquals) {
  std::vector<const char*> argv = {"prog", "--name="};
  auto f = Flags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.has("name"));
  EXPECT_EQ(f.get("name", "def"), "");
}

}  // namespace
}  // namespace netd::util
