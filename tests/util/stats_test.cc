#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace netd::util {
namespace {

TEST(Summary, MeanOfKnownSamples) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Summary, MeanOfEmptyIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(Summary, MinMax) {
  Summary s;
  s.add_all({3.0, -1.0, 7.5, 0.0});
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(Summary, PercentileNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(Summary, PercentileSingleSample) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.0);
}

TEST(Summary, CdfAt) {
  Summary s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
}

TEST(Summary, FracAtLeast) {
  Summary s;
  s.add_all({0.0, 0.5, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(s.frac_at_least(1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.frac_at_least(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.frac_at_least(1.5), 0.0);
}

TEST(EmpiricalCdf, CollapsesDuplicates) {
  const auto cdf = empirical_cdf({1.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cum_prob, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].cum_prob, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].cum_prob, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(EmpiricalCdf, IsMonotone) {
  const auto cdf = empirical_cdf({5.0, 3.0, 8.0, 3.0, 1.0, 9.0});
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LT(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].cum_prob, cdf[i].cum_prob);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_prob, 1.0);
}

TEST(CdfOnGrid, EndpointsAndShape) {
  const auto grid = cdf_on_grid({0.0, 0.25, 0.5, 0.75, 1.0}, 0.0, 1.0, 4);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front().value, 0.0);
  EXPECT_DOUBLE_EQ(grid.front().cum_prob, 0.2);
  EXPECT_DOUBLE_EQ(grid.back().value, 1.0);
  EXPECT_DOUBLE_EQ(grid.back().cum_prob, 1.0);
}

}  // namespace
}  // namespace netd::util

namespace netd::util {
namespace {

TEST(Summary, StddevOfKnownSamples) {
  Summary s;
  s.add_all({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_NEAR(s.stderr_mean(), 2.138 / std::sqrt(8.0), 1e-3);
}

TEST(Summary, StddevDegenerate) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(Summary, StddevOfConstantIsZero) {
  Summary s;
  s.add_all({3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace netd::util
