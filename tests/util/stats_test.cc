#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace netd::util {
namespace {

TEST(Summary, MeanOfKnownSamples) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Summary, MeanOfEmptyIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(Summary, MinMax) {
  Summary s;
  s.add_all({3.0, -1.0, 7.5, 0.0});
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(Summary, PercentileNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(Summary, PercentileSingleSample) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.0);
}

TEST(Summary, CdfAt) {
  Summary s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
}

TEST(Summary, FracAtLeast) {
  Summary s;
  s.add_all({0.0, 0.5, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(s.frac_at_least(1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.frac_at_least(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.frac_at_least(1.5), 0.0);
}

TEST(EmpiricalCdf, CollapsesDuplicates) {
  const auto cdf = empirical_cdf({1.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cum_prob, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].cum_prob, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].cum_prob, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(EmpiricalCdf, IsMonotone) {
  const auto cdf = empirical_cdf({5.0, 3.0, 8.0, 3.0, 1.0, 9.0});
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LT(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].cum_prob, cdf[i].cum_prob);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_prob, 1.0);
}

TEST(CdfOnGrid, EndpointsAndShape) {
  const auto grid = cdf_on_grid({0.0, 0.25, 0.5, 0.75, 1.0}, 0.0, 1.0, 4);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front().value, 0.0);
  EXPECT_DOUBLE_EQ(grid.front().cum_prob, 0.2);
  EXPECT_DOUBLE_EQ(grid.back().value, 1.0);
  EXPECT_DOUBLE_EQ(grid.back().cum_prob, 1.0);
}

}  // namespace
}  // namespace netd::util

namespace netd::util {
namespace {

TEST(Summary, StddevOfKnownSamples) {
  Summary s;
  s.add_all({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_NEAR(s.stderr_mean(), 2.138 / std::sqrt(8.0), 1e-3);
}

TEST(Summary, StddevDegenerate) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(Summary, StddevOfConstantIsZero) {
  Summary s;
  s.add_all({3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace netd::util

namespace netd::util {
namespace {

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(Histogram, ExactMomentsApproximatePercentiles) {
  Histogram h;
  for (double x : {1.0, 2.0, 3.0, 100.0}) h.add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
  EXPECT_DOUBLE_EQ(h.mean(), 26.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);   // min/max are exact, not bucketized
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Bucket edges are 1, 2, 4, 8, ... so the percentile upper bounds are
  // within one power of two of the true value.
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 4.0);
  // The top sample's bucket edge (128) is clamped by the exact max.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Histogram, PercentileClampedByExactMax) {
  Histogram h(1.0, 2.0, 4);  // edges 1, 2, 4, 8; overflow beyond
  h.add(1000.0);
  // The sample lands in the overflow bucket, whose upper edge is +inf;
  // the exact max is the honest answer there.
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 1000.0);
}

TEST(Histogram, MergeMatchesCombinedStream) {
  Histogram a, b, all;
  for (double x : {1.0, 5.0, 9.0}) { a.add(x); all.add(x); }
  for (double x : {2.0, 700.0}) { b.add(x); all.add(x); }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), all.percentile(q)) << "q=" << q;
  }
}

TEST(Histogram, NonzeroBucketsAreSparse) {
  Histogram h;
  h.add(1.5);
  h.add(1.7);
  h.add(30.0);
  const auto buckets = h.nonzero_buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].upper, 2.0);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_DOUBLE_EQ(buckets[1].upper, 32.0);
  EXPECT_EQ(buckets[1].count, 1u);
}

TEST(Histogram, ZeroSamplesEveryPercentileIsZero) {
  Histogram h;
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 0.0) << "q=" << q;
  }
}

TEST(Histogram, SingleSampleDominatesEveryStatistic) {
  Histogram h;
  h.add(37.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 37.0);
  EXPECT_DOUBLE_EQ(h.max(), 37.0);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
  // Every percentile maps to the one sample's bucket; its upper edge (64)
  // is clamped by the exact max.
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 37.0) << "q=" << q;
  }
}

TEST(Histogram, ExactBucketBoundariesLandInside) {
  // Bucket i covers (lo*growth^(i-1), lo*growth^i] — edges are inclusive
  // upper bounds, so a sample exactly on an edge lands in that bucket,
  // never the next one up.
  Histogram h(1.0, 2.0, 8);
  h.add(1.0);  // == lo: bucket 0 (everything <= lo)
  h.add(2.0);  // == lo*growth: bucket 1's inclusive upper edge
  h.add(4.0);  // == lo*growth^2
  const auto buckets = h.nonzero_buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].upper, 1.0);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[1].upper, 2.0);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[2].upper, 4.0);
  EXPECT_EQ(buckets[2].count, 1u);
}

TEST(Histogram, BelowLoCountsInBucketZero) {
  Histogram h(1.0, 2.0, 4);
  h.add(0.0);
  h.add(0.5);
  const auto buckets = h.nonzero_buckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(buckets[0].upper, 1.0);
  EXPECT_EQ(buckets[0].count, 2u);
}

TEST(Histogram, InterpolatesWithinACrowdedBucket) {
  // Ten samples all land in the (4, 8] bucket; quantiles must spread
  // across the bucket instead of all snapping to the upper edge 8.
  Histogram h(1.0, 2.0, 8);
  for (int i = 0; i < 5; ++i) h.add(4.5);
  for (int i = 0; i < 5; ++i) h.add(7.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.2), 4.8);   // 4 + (8-4) * 2/10
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 6.0);   // 4 + (8-4) * 5/10
  EXPECT_DOUBLE_EQ(h.percentile(0.1), 4.5);   // 4.4 clamped to exact min
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 7.5);   // 7.6 clamped to exact max
}

TEST(Histogram, OverflowQuantileInterpolatesUpToMax) {
  // Regression: a quantile landing mid-overflow-bucket used to report
  // the exact max outright; it must interpolate between the last finite
  // edge and max, and only the final rank reaches max itself.
  Histogram h(1.0, 2.0, 4);  // finite edges 1, 2, 4, 8; overflow beyond
  h.add(2.0);
  h.add(100.0);
  h.add(1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 504.0);  // 8 + (1000-8) * 1/2
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(Histogram, TopFiniteBucketIsClampedByExactMax) {
  // Regression: {10, 100} with default edges puts 100 in the (64, 128]
  // bucket; the old code reported the edge 128 — a latency the service
  // never saw — for every high quantile.
  Histogram h;
  h.add(10.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);
}

TEST(Histogram, SubLoSamplesInterpolateInsideBucketZero) {
  Histogram h(1.0, 2.0, 4);
  h.add(0.2);
  h.add(0.8);
  // Bucket 0 spans (0, lo]; ranks spread evenly across it, and the
  // final rank's edge value is clamped to the exact max.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.5);  // rank 1 of 2: 0 + (1-0)/2
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.8);  // edge 1.0 clamped to max
}

TEST(Histogram, PercentilesMonotoneUnderAdversarialInputs) {
  // Whatever the input distribution — heavy overflow tails, duplicates,
  // sub-lo dust — reported percentiles must never invert.
  for (std::uint64_t seed : {1u, 7u, 42u, 1337u}) {
    Rng rng(seed);
    Histogram h(1.0, 2.0, 10);  // overflow beyond 1024: tails exercise it
    for (int i = 0; i < 2000; ++i) {
      double x = 0.0;
      switch (rng.uniform(0, 3)) {
        case 0: x = rng.uniform01();                  break;  // sub-lo dust
        case 1: x = rng.uniform(1, 1000);             break;  // in range
        case 2: x = 1e6 + rng.uniform01() * 1e6;      break;  // overflow tail
        case 3: x = 64.0;                             break;  // duplicates on an edge
      }
      h.add(x);
      const double p50 = h.percentile(0.5);
      const double p90 = h.percentile(0.9);
      const double p99 = h.percentile(0.99);
      ASSERT_LE(p50, p90) << "seed=" << seed << " i=" << i;
      ASSERT_LE(p90, p99) << "seed=" << seed << " i=" << i;
      ASSERT_LE(h.min(), p50) << "seed=" << seed << " i=" << i;
      ASSERT_LE(p99, h.max()) << "seed=" << seed << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace netd::util
