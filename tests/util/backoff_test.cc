#include "util/backoff.h"

#include <gtest/gtest.h>

namespace netd::util {
namespace {

TEST(BackoffTest, GrowsExponentiallyAndCaps) {
  Rng rng(1);
  int prev_hi = 0;
  for (int attempt = 1; attempt <= 20; ++attempt) {
    const int ms = backoff_ms(attempt, 10, 1000, rng);
    // Jitter keeps each draw in [ceil(cap/2), cap] of the capped value.
    const int cap = std::min(1000, 10 << (attempt - 1 > 10 ? 10 : attempt - 1));
    EXPECT_GE(ms, cap / 2) << attempt;
    EXPECT_LE(ms, cap) << attempt;
    prev_hi = cap;
  }
  EXPECT_EQ(prev_hi, 1000);  // the schedule saturated at the cap
}

TEST(BackoffTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  bool all_equal_c = true;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const int x = backoff_ms(attempt, 10, 1000, a);
    const int y = backoff_ms(attempt, 10, 1000, b);
    EXPECT_EQ(x, y);
    all_equal_c = all_equal_c && x == backoff_ms(attempt, 10, 1000, c);
  }
  EXPECT_FALSE(all_equal_c);  // a different seed draws a different schedule
}

TEST(BackoffTest, DegenerateInputsAreClamped) {
  Rng rng(1);
  EXPECT_GE(backoff_ms(0, 10, 1000, rng), 5);   // attempt clamped to 1
  EXPECT_GE(backoff_ms(3, 0, 1000, rng), 1);    // base clamped to 1
  EXPECT_LE(backoff_ms(30, 10, 50, rng), 50);   // no overflow past the cap
}

}  // namespace
}  // namespace netd::util
