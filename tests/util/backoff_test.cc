#include "util/backoff.h"

#include <gtest/gtest.h>

#include <climits>
#include <limits>

namespace netd::util {
namespace {

TEST(BackoffTest, GrowsExponentiallyAndCaps) {
  Rng rng(1);
  int prev_hi = 0;
  for (int attempt = 1; attempt <= 20; ++attempt) {
    const int ms = backoff_ms(attempt, 10, 1000, rng);
    // Jitter keeps each draw in [ceil(cap/2), cap] of the capped value.
    const int cap = std::min(1000, 10 << (attempt - 1 > 10 ? 10 : attempt - 1));
    EXPECT_GE(ms, cap / 2) << attempt;
    EXPECT_LE(ms, cap) << attempt;
    prev_hi = cap;
  }
  EXPECT_EQ(prev_hi, 1000);  // the schedule saturated at the cap
}

TEST(BackoffTest, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  bool all_equal_c = true;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const int x = backoff_ms(attempt, 10, 1000, a);
    const int y = backoff_ms(attempt, 10, 1000, b);
    EXPECT_EQ(x, y);
    all_equal_c = all_equal_c && x == backoff_ms(attempt, 10, 1000, c);
  }
  EXPECT_FALSE(all_equal_c);  // a different seed draws a different schedule
}

TEST(BackoffTest, DegenerateInputsAreClamped) {
  Rng rng(1);
  EXPECT_GE(backoff_ms(0, 10, 1000, rng), 5);   // attempt clamped to 1
  EXPECT_GE(backoff_ms(3, 0, 1000, rng), 1);    // base clamped to 1
  EXPECT_LE(backoff_ms(30, 10, 50, rng), 50);   // no overflow past the cap
}

// Regression: attempt counts at and past the width of int must saturate
// at the cap instead of overflowing the exponential term. The doubling
// loop stops as soon as the cap is reached, so even attempt = INT_MAX
// never materializes base * 2^(attempt-1) (UBSan-verified in CI).
TEST(BackoffTest, LargeAttemptCountsSaturateWithoutOverflow) {
  Rng rng(3);
  for (const int attempt : {31, 32, 63, 64, 1000, INT_MAX}) {
    const int ms = backoff_ms(attempt, 10, 1000, rng);
    EXPECT_GE(ms, 500) << attempt;   // jitter floor: half the cap
    EXPECT_LE(ms, 1000) << attempt;  // never past the cap
  }
  // A cap at the top of int's range: the schedule saturates there and the
  // jittered draw stays inside [cap/2, cap] — still a positive int.
  constexpr int kMax = std::numeric_limits<int>::max();
  const int ms = backoff_ms(62, 1000, kMax, rng);
  EXPECT_GE(ms, kMax / 2);
  EXPECT_LE(ms, kMax);
}

// Regression: a non-positive cap used to drive a negative budget through
// the unsigned jitter cast (garbage sleeps); it now clamps to the base.
TEST(BackoffTest, NonPositiveCapClampsToBase) {
  Rng rng(5);
  for (const int cap : {0, -1, -1000}) {
    for (const int attempt : {1, 5, 31, 64}) {
      const int ms = backoff_ms(attempt, 10, cap, rng);
      EXPECT_GE(ms, 5) << "cap " << cap << " attempt " << attempt;
      EXPECT_LE(ms, 10) << "cap " << cap << " attempt " << attempt;
    }
  }
}

}  // namespace
}  // namespace netd::util
