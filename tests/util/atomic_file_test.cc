// util::atomic_file: the write-temp → fsync → rename primitives under the
// campaign checkpoint. Readers must only ever see a complete version.
#include "util/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace netd::util {
namespace {

std::string tmp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::remove(p.c_str());
  return p;
}

TEST(AtomicFile, WriteReadRoundTrip) {
  const std::string path = tmp_path("netd_af_roundtrip.txt");
  std::string payload = "line one\nline two\n";
  payload.push_back('\0');  // embedded NUL must survive the round trip
  payload += "binary too";
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, payload, &error)) << error;
  const auto back = read_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(file_size(path), payload.size());
  std::remove(path.c_str());
}

TEST(AtomicFile, OverwriteReplacesWholeContents) {
  const std::string path = tmp_path("netd_af_overwrite.txt");
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, std::string(4096, 'a'), &error))
      << error;
  ASSERT_TRUE(atomic_write_file(path, "short", &error)) << error;
  const auto back = read_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  // No tail of the longer previous version survives the rename.
  EXPECT_EQ(*back, "short");
}

TEST(AtomicFile, WriteIntoMissingDirectoryFailsWithError) {
  std::string error;
  EXPECT_FALSE(atomic_write_file(
      ::testing::TempDir() + "/netd_af_no_such_dir/x.txt", "data", &error));
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFile, ReadMissingFileFailsWithError) {
  std::string error;
  EXPECT_FALSE(
      read_file(tmp_path("netd_af_missing.txt"), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFile, FileSizeOfMissingFileIsNullopt) {
  EXPECT_FALSE(file_size(tmp_path("netd_af_missing2.txt")).has_value());
}

TEST(AtomicFile, TruncateDropsTornTail) {
  const std::string path = tmp_path("netd_af_truncate.txt");
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "committed\npartial garb", &error))
      << error;
  ASSERT_TRUE(truncate_file(path, 10, &error)) << error;  // "committed\n"
  const auto back = read_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, "committed\n");
  EXPECT_EQ(file_size(path), 10u);
  std::remove(path.c_str());
}

TEST(AtomicFile, TruncateMissingFileFails) {
  std::string error;
  EXPECT_FALSE(truncate_file(tmp_path("netd_af_missing3.txt"), 0, &error));
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFile, RemoveStaleTempsRecoversFromCrashedWriter) {
  const std::string path = tmp_path("netd_af_stale.txt");
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "good version", &error)) << error;
  // A writer that died between its temp write and the rename leaves a
  // partially-written "<path>.tmp.<pid>" beside the real file.
  ASSERT_TRUE(atomic_write_file(path + ".tmp.12345", "partial gar", &error))
      << error;
  ASSERT_TRUE(atomic_write_file(path + ".tmp.999", "older crash", &error))
      << error;
  // Lookalikes that are NOT crashed-writer temps must survive: a non-pid
  // suffix and a different basename.
  ASSERT_TRUE(atomic_write_file(path + ".tmp.backup", "keep me", &error))
      << error;
  const std::string other = tmp_path("netd_af_stale_other.txt.tmp.777");
  ASSERT_TRUE(atomic_write_file(other, "different basename", &error)) << error;

  EXPECT_EQ(remove_stale_temps(path), 2u);
  // The committed version is untouched; the temps are gone; lookalikes
  // remain.
  EXPECT_EQ(read_file(path, &error).value_or(""), "good version");
  EXPECT_FALSE(file_size(path + ".tmp.12345").has_value());
  EXPECT_FALSE(file_size(path + ".tmp.999").has_value());
  EXPECT_TRUE(file_size(path + ".tmp.backup").has_value());
  EXPECT_TRUE(file_size(other).has_value());
  // Idempotent: a second recovery pass finds nothing.
  EXPECT_EQ(remove_stale_temps(path), 0u);
  // And the next atomic write still lands cleanly.
  ASSERT_TRUE(atomic_write_file(path, "after recovery", &error)) << error;
  EXPECT_EQ(read_file(path, &error).value_or(""), "after recovery");
  std::remove(path.c_str());
  std::remove((path + ".tmp.backup").c_str());
  std::remove(other.c_str());
}

TEST(AtomicFile, FsyncFileExistingSucceedsMissingFails) {
  const std::string path = tmp_path("netd_af_fsync.txt");
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "x", &error)) << error;
  EXPECT_TRUE(fsync_file(path, &error)) << error;
  std::remove(path.c_str());
  EXPECT_FALSE(fsync_file(path, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace netd::util
