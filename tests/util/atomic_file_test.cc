// util::atomic_file: the write-temp → fsync → rename primitives under the
// campaign checkpoint. Readers must only ever see a complete version.
#include "util/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace netd::util {
namespace {

std::string tmp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "/" + name;
  std::remove(p.c_str());
  return p;
}

TEST(AtomicFile, WriteReadRoundTrip) {
  const std::string path = tmp_path("netd_af_roundtrip.txt");
  std::string payload = "line one\nline two\n";
  payload.push_back('\0');  // embedded NUL must survive the round trip
  payload += "binary too";
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, payload, &error)) << error;
  const auto back = read_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(file_size(path), payload.size());
  std::remove(path.c_str());
}

TEST(AtomicFile, OverwriteReplacesWholeContents) {
  const std::string path = tmp_path("netd_af_overwrite.txt");
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, std::string(4096, 'a'), &error))
      << error;
  ASSERT_TRUE(atomic_write_file(path, "short", &error)) << error;
  const auto back = read_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  // No tail of the longer previous version survives the rename.
  EXPECT_EQ(*back, "short");
}

TEST(AtomicFile, WriteIntoMissingDirectoryFailsWithError) {
  std::string error;
  EXPECT_FALSE(atomic_write_file(
      ::testing::TempDir() + "/netd_af_no_such_dir/x.txt", "data", &error));
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFile, ReadMissingFileFailsWithError) {
  std::string error;
  EXPECT_FALSE(
      read_file(tmp_path("netd_af_missing.txt"), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFile, FileSizeOfMissingFileIsNullopt) {
  EXPECT_FALSE(file_size(tmp_path("netd_af_missing2.txt")).has_value());
}

TEST(AtomicFile, TruncateDropsTornTail) {
  const std::string path = tmp_path("netd_af_truncate.txt");
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "committed\npartial garb", &error))
      << error;
  ASSERT_TRUE(truncate_file(path, 10, &error)) << error;  // "committed\n"
  const auto back = read_file(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(*back, "committed\n");
  EXPECT_EQ(file_size(path), 10u);
  std::remove(path.c_str());
}

TEST(AtomicFile, TruncateMissingFileFails) {
  std::string error;
  EXPECT_FALSE(truncate_file(tmp_path("netd_af_missing3.txt"), 0, &error));
  EXPECT_FALSE(error.empty());
}

TEST(AtomicFile, FsyncFileExistingSucceedsMissingFails) {
  const std::string path = tmp_path("netd_af_fsync.txt");
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "x", &error)) << error;
  EXPECT_TRUE(fsync_file(path, &error)) << error;
  std::remove(path.c_str());
  EXPECT_FALSE(fsync_file(path, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace netd::util
