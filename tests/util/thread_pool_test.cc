// util::ThreadPool error propagation: a task that throws must not take a
// worker (or the process) down — the first exception is captured and
// rethrown on the thread that calls wait_all(), after the batch drains.
#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace netd::util {
namespace {

TEST(ThreadPool, WaitAllRethrowsTaskException) {
  ThreadPool pool(4);
  pool.submit([] { throw std::runtime_error("task failed"); });
  try {
    pool.wait_all();
    FAIL() << "wait_all() swallowed the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task failed");
  }
}

TEST(ThreadPool, RemainingTasksStillRunAfterAThrow) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::logic_error("first"); });
  for (int i = 0; i < 16; ++i) {
    pool.submit([&completed] { ++completed; });
  }
  EXPECT_THROW(pool.wait_all(), std::logic_error);
  // wait_all() drains the whole batch before rethrowing: every healthy
  // task ran exactly once despite the earlier failure.
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, OnlyTheFirstExceptionIsKeptAndStateResets) {
  ThreadPool pool(1);  // one worker => deterministic task order
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_all();
    FAIL() << "wait_all() swallowed the exceptions";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "first");
  }
  // The error slot is consumed by the rethrow: a later healthy batch on
  // the same pool completes cleanly.
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&completed] { ++completed; });
  }
  EXPECT_NO_THROW(pool.wait_all());
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, DestructorSurvivesAThrowingTask) {
  // No wait_all(): the destructor drains and must swallow the error
  // (nowhere to rethrow) without terminating.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("dropped on the floor"); });
}

}  // namespace
}  // namespace netd::util
