#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace netd::util {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"x", "y"});
  t.add_row({1.0, 2.5});
  t.add_row({3.0, 4.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
  EXPECT_NE(out.find("4.250"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, LabeledRows) {
  Table t({"algo", "sens"});
  t.add_row("Tomo", {0.5});
  t.add_row("ND-edge", {1.0});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("ND-edge"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.set_precision(1);
  t.add_row({1.0, 2.0});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.0,2.0\n");
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(5);
  t.add_row({0.123456789});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n0.12346\n");
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"name", "v"});
  t.add_row("a-very-long-label", {1.0});
  t.add_row("x", {2.0});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string l1, l2, l3;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  EXPECT_EQ(l1.size(), l2.size());
  EXPECT_EQ(l2.size(), l3.size());
}

}  // namespace
}  // namespace netd::util
