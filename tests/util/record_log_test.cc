#include "util/record_log.h"

#include <gtest/gtest.h>

#include <string>

namespace netd::util {
namespace {

namespace rlog = record_log;
using Verdict = rlog::Scan::Verdict;

TEST(RecordLogTest, Crc32MatchesKnownVector) {
  // The canonical IEEE 802.3 check value: crc32("123456789").
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xcbf43926u);
}

TEST(RecordLogTest, Crc32ChainsAcrossCalls) {
  const char* s = "123456789";
  const std::uint32_t once = crc32(s, 9);
  const std::uint32_t chained = crc32(s + 4, 5, crc32(s, 4));
  EXPECT_EQ(once, chained);
}

TEST(RecordLogTest, EncodeScanRoundTrip) {
  std::string log;
  log += rlog::encode_record(1, "alpha");
  log += rlog::encode_record(2, "");
  log += rlog::encode_record(7, "gamma gamma");  // gaps are legal
  const rlog::Scan scan = rlog::scan(log);
  EXPECT_EQ(scan.verdict, Verdict::kClean);
  EXPECT_EQ(scan.records, 3u);
  EXPECT_EQ(scan.first_seq, 1u);
  EXPECT_EQ(scan.last_seq, 7u);
  EXPECT_EQ(scan.good_bytes, log.size());

  std::vector<std::pair<std::uint64_t, std::string>> got;
  rlog::for_each(log, [&](std::uint64_t seq, std::string_view payload) {
    got.emplace_back(seq, std::string(payload));
    return true;
  });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<std::uint64_t, std::string>{1, "alpha"}));
  EXPECT_EQ(got[1], (std::pair<std::uint64_t, std::string>{2, ""}));
  EXPECT_EQ(got[2],
            (std::pair<std::uint64_t, std::string>{7, "gamma gamma"}));
}

TEST(RecordLogTest, TruncatedTailIsTornNotCorrupt) {
  std::string log = rlog::encode_record(1, "first");
  const std::size_t good = log.size();
  log += rlog::encode_record(2, "second");
  for (std::size_t cut = good + 1; cut < log.size(); ++cut) {
    const rlog::Scan scan = rlog::scan(std::string_view(log).substr(0, cut));
    EXPECT_EQ(scan.verdict, Verdict::kTornTail) << "cut " << cut;
    EXPECT_EQ(scan.good_bytes, good) << "cut " << cut;
    EXPECT_EQ(scan.records, 1u) << "cut " << cut;
  }
}

TEST(RecordLogTest, FlippedPayloadByteIsCorrupt) {
  std::string log = rlog::encode_record(1, "first");
  const std::size_t good = log.size();
  log += rlog::encode_record(2, "second");
  log[good + rlog::kHeaderBytes] ^= 0x01;  // second record's payload
  const rlog::Scan scan = rlog::scan(log);
  EXPECT_EQ(scan.verdict, Verdict::kCorrupt);
  EXPECT_EQ(scan.good_bytes, good);
  EXPECT_EQ(scan.records, 1u);
  // for_each stops silently at the first distrusted byte.
  std::size_t seen = 0;
  rlog::for_each(log, [&](std::uint64_t, std::string_view) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 1u);
}

TEST(RecordLogTest, BadMagicAndSeqRegressionAreCorrupt) {
  {
    std::string log = rlog::encode_record(1, "x");
    log[0] ^= 0xff;
    EXPECT_EQ(rlog::scan(log).verdict, Verdict::kCorrupt);
  }
  {
    // seq going backwards cannot be produced by the append path.
    std::string log = rlog::encode_record(5, "a");
    log += rlog::encode_record(4, "b");
    const rlog::Scan scan = rlog::scan(log);
    EXPECT_EQ(scan.verdict, Verdict::kCorrupt);
    EXPECT_EQ(scan.records, 1u);
  }
  {
    // seq 0 is reserved ("no record").
    const std::string log = rlog::encode_record(0, "z");
    EXPECT_EQ(rlog::scan(log).verdict, Verdict::kCorrupt);
  }
}

TEST(RecordLogTest, EmptyInputIsClean) {
  const rlog::Scan scan = rlog::scan(std::string_view{});
  EXPECT_EQ(scan.verdict, Verdict::kClean);
  EXPECT_EQ(scan.records, 0u);
  EXPECT_EQ(scan.good_bytes, 0u);
}

TEST(RecordLogTest, FieldHelpersAreLittleEndian) {
  char buf[8];
  rlog::put_u32(buf, 0x01020304u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
  EXPECT_EQ(rlog::get_u32(buf), 0x01020304u);
  rlog::put_u64(buf, 0x0102030405060708ull);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x08);
  EXPECT_EQ(rlog::get_u64(buf), 0x0102030405060708ull);
}

}  // namespace
}  // namespace netd::util
