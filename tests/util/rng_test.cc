#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace netd::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differed = false;
  for (int i = 0; i < 32 && !differed; ++i) {
    differed = a.uniform(0, 1 << 30) != b.uniform(0, 1 << 30);
  }
  EXPECT_TRUE(differed);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(3, 3), 3u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SampleReturnsDistinctElements) {
  Rng rng(9);
  std::vector<int> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const auto s = rng.sample(v, 20);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_EQ(std::set<int>(s.begin(), s.end()).size(), 20u);
}

TEST(Rng, SampleWholeVector) {
  Rng rng(9);
  const std::vector<int> v = {1, 2, 3};
  const auto s = rng.sample(v, 3);
  EXPECT_EQ(std::set<int>(s.begin(), s.end()), std::set<int>({1, 2, 3}));
}

TEST(Rng, PickCoversAllElements) {
  Rng rng(13);
  const std::vector<int> v = {10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(v));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ForkStreamsAreReproducible) {
  Rng a(77), b(77);
  const auto sa = a.fork();
  const auto sb = b.fork();
  EXPECT_EQ(sa, sb);
  Rng child_a(sa), child_b(sb);
  EXPECT_EQ(child_a.uniform(0, 1 << 20), child_b.uniform(0, 1 << 20));
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 2, 3, 4, 5};
  const std::multiset<int> before(v.begin(), v.end());
  rng.shuffle(v);
  EXPECT_EQ(std::multiset<int>(v.begin(), v.end()), before);
}

}  // namespace
}  // namespace netd::util
