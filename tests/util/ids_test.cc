#include "util/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

namespace netd::util {
namespace {

using TestId = Id<struct TestTag>;
using OtherId = Id<struct OtherTag>;

TEST(Id, DefaultIsInvalid) {
  TestId id;
  EXPECT_FALSE(id.valid());
}

TEST(Id, ConstructedIsValid) {
  TestId id{3};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 3u);
}

TEST(Id, Ordering) {
  EXPECT_LT(TestId{1}, TestId{2});
  EXPECT_GT(TestId{5}, TestId{2});
  EXPECT_LE(TestId{2}, TestId{2});
  EXPECT_GE(TestId{2}, TestId{2});
  EXPECT_EQ(TestId{4}, TestId{4});
  EXPECT_NE(TestId{4}, TestId{5});
}

TEST(Id, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TestId, OtherId>);
  SUCCEED();
}

TEST(Id, Hashable) {
  std::unordered_set<TestId> s;
  s.insert(TestId{1});
  s.insert(TestId{2});
  s.insert(TestId{1});
  EXPECT_EQ(s.size(), 2u);
}

TEST(Id, StreamOutput) {
  std::ostringstream os;
  os << TestId{7} << " " << TestId{};
  EXPECT_EQ(os.str(), "7 <invalid>");
}

}  // namespace
}  // namespace netd::util
