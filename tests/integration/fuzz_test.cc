// Randomized robustness suites: synthetic meshes, malformed inputs, and
// ECMP-rich substrates, swept over seeds.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/algorithms.h"
#include "exp/checkpoint.h"
#include "exp/runner.h"
#include "svc/json.h"
#include "util/atomic_file.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/io.h"
#include "topo/random_internet.h"
#include "util/flags.h"
#include "util/rng.h"

namespace netd {
namespace {

// ---------------------------------------------------------------------------
// Solver invariants on fully random synthetic meshes.
// ---------------------------------------------------------------------------

class SolverFuzz : public ::testing::TestWithParam<std::uint64_t> {};

/// Builds a random mesh over a small synthetic router pool; roughly half
/// the pairs fail at T+, a quarter reroute, the rest keep their path.
std::pair<probe::Mesh, probe::Mesh> random_meshes(util::Rng& rng) {
  const std::size_t sensors = 4 + rng.uniform(0, 3);
  const std::size_t routers = 6 + rng.uniform(0, 8);
  auto hop = [&](std::size_t r) {
    probe::Hop h;
    h.label = "r" + std::to_string(r);
    h.kind = graph::NodeKind::kRouter;
    h.asn = static_cast<int>(1 + r % 4);
    return h;
  };
  auto sensor_hop = [&](std::size_t s) {
    probe::Hop h;
    h.label = "s" + std::to_string(s);
    h.kind = graph::NodeKind::kSensor;
    h.asn = static_cast<int>(10 + s);
    return h;
  };
  auto random_path = [&](std::size_t i, std::size_t j) {
    probe::TracePath p;
    p.src = i;
    p.dst = j;
    p.ok = true;
    p.hops.push_back(sensor_hop(i));
    const std::size_t len = 2 + rng.uniform(0, 4);
    std::size_t prev = routers;  // sentinel
    for (std::size_t k = 0; k < len; ++k) {
      std::size_t r = rng.uniform(0, static_cast<std::uint32_t>(routers - 1));
      if (r == prev) r = (r + 1) % routers;
      p.hops.push_back(hop(r));
      prev = r;
    }
    p.hops.push_back(sensor_hop(j));
    return p;
  };

  probe::Mesh before, after;
  for (std::size_t i = 0; i < sensors; ++i) {
    for (std::size_t j = 0; j < sensors; ++j) {
      if (i == j) continue;
      auto b = random_path(i, j);
      before.paths.push_back(b);
      const double roll = rng.uniform01();
      if (roll < 0.4) {
        probe::TracePath failed;
        failed.src = i;
        failed.dst = j;
        failed.ok = false;
        failed.hops = {b.hops.front()};
        after.paths.push_back(std::move(failed));
      } else if (roll < 0.65) {
        after.paths.push_back(random_path(i, j));  // rerouted
      } else {
        after.paths.push_back(std::move(b));  // unchanged
      }
    }
  }
  return {std::move(before), std::move(after)};
}

TEST_P(SolverFuzz, InvariantsHoldOnRandomMeshes) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const auto [before, after] = random_meshes(rng);
    for (const auto mode :
         {core::LogicalMode::kNone, core::LogicalMode::kPerNeighbor,
          core::LogicalMode::kPerPrefix}) {
      const auto dg = core::build_diagnosis_graph(before, after, mode);
      for (const bool reroutes : {false, true}) {
        core::SolverOptions opt;
        opt.use_reroutes = reroutes;
        const auto res = core::solve(dg, opt);
        // Hypothesis keys are probed keys; ranked matches links.
        std::set<std::string> ranked_keys;
        for (const auto& r : res.ranked) {
          ranked_keys.insert(r.phys_key);
          EXPECT_GT(r.score, 0.0);
        }
        EXPECT_EQ(ranked_keys, res.links);
        for (const auto& k : res.links) {
          EXPECT_TRUE(dg.probed_keys.count(k));
        }
        // Every hypothesis edge is admissible: not on a working path
        // under the option's semantics.
        std::set<std::uint32_t> working;
        for (const auto& p : dg.paths) {
          if (!p.ok_after) continue;
          for (auto e : reroutes ? p.after : p.before) working.insert(e.value());
        }
        for (auto e : res.hypothesis_edges) {
          EXPECT_FALSE(working.count(e.value()));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Values(100, 200, 300, 400));

// ---------------------------------------------------------------------------
// Malformed input never crashes parsers.
// ---------------------------------------------------------------------------

TEST(ParserFuzz, TopoReaderSurvivesGarbage) {
  util::Rng rng(42);
  const std::vector<std::string> tokens = {
      "as",    "intra", "inter",   "core", "tier2", "stub",  "peer",
      "provider", "customer", "-1", "0",  "1",     "99999", "x",
      "netd-topology", "v1", "v2", "end", "", "#"};
  for (int iter = 0; iter < 200; ++iter) {
    std::string doc;
    const double header = rng.uniform01();
    if (header < 0.35) {
      doc = "netd-topology v1\n";
    } else if (header < 0.7) {
      doc = "netd-topology v2\n";
    }
    const std::size_t lines = rng.uniform(0, 8);
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t words = rng.uniform(0, 5);
      for (std::size_t w = 0; w < words; ++w) {
        doc += rng.pick(tokens) + " ";
      }
      doc += "\n";
    }
    std::stringstream ss(doc);
    std::string error;
    const auto result = topo::read_text(ss, &error);
    if (!result) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ParserFuzz, JsonDeepNestingNeverCrashes) {
  // Sweep container nesting around the public depth bound, mixing arrays
  // and objects: at or under svc::Json::kMaxParseDepth the document
  // parses, beyond it the parser reports "nesting too deep" — never a
  // stack overflow. (The CI sanitizer job runs this under ASan+UBSan.)
  util::Rng rng(44);
  for (std::size_t depth = svc::Json::kMaxParseDepth - 4;
       depth <= svc::Json::kMaxParseDepth + 8; ++depth) {
    std::string open, close;
    for (std::size_t i = 0; i < depth; ++i) {
      if (rng.bernoulli(0.5)) {
        open += "[";
        close.insert(0, "]");
      } else {
        open += "{\"k\":";
        close.insert(0, "}");
      }
    }
    std::string error;
    const auto j = svc::Json::parse(open + "0" + close, &error);
    if (depth <= svc::Json::kMaxParseDepth) {
      EXPECT_TRUE(j.has_value()) << "depth " << depth << ": " << error;
    } else {
      EXPECT_FALSE(j.has_value()) << "depth " << depth;
      EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
    }
  }
}

TEST(ParserFuzz, TruncatedCheckpointNeverCrashes) {
  // A crash can leave a torn checkpoint only if the atomic-rename protocol
  // is bypassed (e.g. a partial copy off a dying disk); Checkpoint::load
  // must reject every proper prefix of a valid document with a structured
  // error, never crash or return a half-built checkpoint.
  exp::ScenarioConfig cfg;
  cfg.num_placements = 2;
  cfg.trials_per_placement = 2;
  exp::Checkpoint ck;
  ck.scenario = cfg;
  ck.algos = {exp::Algo::kTomo, exp::Algo::kNdBgpIgp};
  ck.completed_placements = 2;
  ck.episodes = 3;
  for (std::size_t pl = 0; pl < 2; ++pl) {
    std::vector<exp::ScoredTrial> bucket;
    exp::ScoredTrial st;
    st.placement = pl;
    st.trial = 0;
    st.result.diagnosability = 0.5 + 0.25 * static_cast<double>(pl);
    core::LinkMetrics lm;
    lm.sensitivity = 1.0 / 3.0;
    lm.specificity = 0.9999999999999999;
    lm.hypothesis_size = 2;
    lm.num_probed = 17;
    st.result.link[exp::Algo::kTomo] = lm;
    core::AsMetrics am;
    am.sensitivity = 1.0;
    am.specificity = 0.125;
    am.hypothesis_size = 1;
    st.result.as_level[exp::Algo::kNdBgpIgp] = am;
    bucket.push_back(std::move(st));
    ck.results.push_back(std::move(bucket));
  }
  ck.quarantined.push_back({1, 1, 123456789ull});

  // Every proper prefix of the JSON body is malformed (the top-level
  // object is unterminated), so load must reject each one with an error.
  const std::string doc = ck.to_json().dump();
  const std::string path =
      ::testing::TempDir() + "/netd_fuzz_truncated_checkpoint.json";
  std::size_t rejected = 0;
  for (std::size_t len = 0; len < doc.size(); ++len) {
    std::string error;
    ASSERT_TRUE(util::atomic_write_file(path, doc.substr(0, len), &error))
        << error;
    error.clear();
    const auto loaded = exp::Checkpoint::load(path, &error);
    EXPECT_FALSE(loaded.has_value()) << "prefix of " << len << " bytes";
    EXPECT_FALSE(error.empty()) << "prefix of " << len << " bytes";
    ++rejected;
  }
  EXPECT_EQ(rejected, doc.size());
  // The untruncated document round-trips.
  std::string error;
  ASSERT_TRUE(util::atomic_write_file(path, doc + "\n", &error)) << error;
  const auto loaded = exp::Checkpoint::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->to_json().dump(), doc);
  std::remove(path.c_str());
}

TEST(ParserFuzz, FlagsSurviveGarbage) {
  util::Rng rng(43);
  const std::vector<std::string> tokens = {"--",     "--x",  "--x=1", "-y",
                                           "--=",    "7",    "--n",   "abc",
                                           "--d=1.5", "--b=", "="};
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::string> args = {"prog"};
    const std::size_t n = rng.uniform(0, 6);
    for (std::size_t i = 0; i < n; ++i) args.push_back(rng.pick(tokens));
    std::vector<const char*> argv;
    argv.reserve(args.size());
    for (const auto& a : args) argv.push_back(a.c_str());
    auto flags =
        util::Flags::parse(static_cast<int>(argv.size()), argv.data());
    (void)flags.get("x", "");
    (void)flags.get_int("n", 0);
    (void)flags.get_double("d", 0.0);
    (void)flags.get_bool("b");
  }
}

// ---------------------------------------------------------------------------
// ECMP-rich random substrate end-to-end.
// ---------------------------------------------------------------------------

class RandomSubstrate : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSubstrate, DiagnosisPipelineHoldsUnderEcmp) {
  topo::RandomInternetParams p;
  p.num_tier1 = 3;
  p.num_tier2 = 10;
  p.num_stubs = 50;
  p.seed = GetParam();
  sim::Network net(topo::random_internet(p));
  net.converge();
  util::Rng rng(GetParam() * 13 + 1);
  const auto sensors = probe::place_sensors(
      net.topology(), probe::PlacementKind::kRandomStub, 8, rng);
  probe::Prober prober(net, sensors);
  const auto before = prober.measure();
  for (const auto& path : before.paths) ASSERT_TRUE(path.ok);

  // Paris enumeration covers the single-path measurement.
  const auto paris = prober.measure_paris();
  for (std::size_t k = 0; k < before.paths.size(); ++k) {
    bool found = false;
    for (const auto& alt : paris.pairs[k].alternatives) {
      found = found || alt.hops.size() == before.paths[k].hops.size();
    }
    EXPECT_TRUE(found);
  }

  const auto snap = net.snapshot();
  const auto pool = before.probed_links();
  for (int t = 0; t < 5; ++t) {
    const auto victims = rng.sample(pool, 2);
    for (auto l : victims) net.fail_link(l);
    net.reconverge();
    const auto after = prober.measure();
    bool invoked = false;
    for (std::size_t k = 0; k < before.paths.size(); ++k) {
      invoked = invoked || (before.paths[k].ok && !after.paths[k].ok);
    }
    if (invoked) {
      const auto dg =
          core::build_diagnosis_graph(before, after, true, &paris);
      core::SolverOptions opt;
      opt.use_reroutes = true;
      const auto res = core::solve(dg, opt);
      for (const auto& k : res.links) EXPECT_TRUE(dg.probed_keys.count(k));
      const auto m = core::link_metrics(
          res.links,
          {exp::link_key(net.topology(), victims[0]),
           exp::link_key(net.topology(), victims[1])},
          dg.probed_keys);
      EXPECT_GE(m.sensitivity, 0.0);
      EXPECT_LE(m.specificity, 1.0);
    }
    net.restore(snap);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSubstrate, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace netd
