// Property-based suites: invariants swept over seeds with TEST_P.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/algorithms.h"
#include "core/diagnosability.h"
#include "exp/runner.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

namespace netd {
namespace {

using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::RouterId;

// ---------------------------------------------------------------------------
// Routing properties over generated topologies.
// ---------------------------------------------------------------------------

class RoutingProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  RoutingProperties() {
    topo::GeneratorParams p;
    p.seed = GetParam();
    p.target_ases = 60;  // smaller for speed; same construction
    p.pool_tier2 = 10;
    p.pool_stubs = 70;
    net_.emplace(topo::generate(p));
    net_->converge();
  }
  std::optional<sim::Network> net_;
};

TEST_P(RoutingProperties, ConvergedPathsAreValleyFree) {
  const auto& topo = net_->topology();
  std::vector<RouterId> stubs;
  for (const auto& as : topo.ases()) {
    if (as.cls == topo::AsClass::kStub) stubs.push_back(as.routers.front());
  }
  util::Rng rng(GetParam() * 31 + 1);
  for (int i = 0; i < 30; ++i) {
    const RouterId a = rng.pick(stubs);
    const RouterId b = rng.pick(stubs);
    if (a == b) continue;
    const auto tr = net_->trace(a, b);
    ASSERT_TRUE(tr.ok);
    int state = 0;  // 0 climbing, 1 peered, 2 descending
    for (std::size_t k = 0; k < tr.links.size(); ++k) {
      if (!topo.link(tr.links[k]).interdomain) continue;
      switch (topo.neighbor_relationship(tr.links[k], tr.hops[k])) {
        case topo::Relationship::kProvider:
          EXPECT_EQ(state, 0);
          break;
        case topo::Relationship::kPeer:
          EXPECT_LE(state, 0);
          state = 1;
          break;
        case topo::Relationship::kCustomer:
          state = 2;
          break;
      }
    }
  }
}

TEST_P(RoutingProperties, TracesMatchBgpAsPaths) {
  const auto& topo = net_->topology();
  std::vector<RouterId> stubs;
  for (const auto& as : topo.ases()) {
    if (as.cls == topo::AsClass::kStub) stubs.push_back(as.routers.front());
  }
  util::Rng rng(GetParam() * 17 + 3);
  for (int i = 0; i < 20; ++i) {
    const RouterId a = rng.pick(stubs);
    const RouterId b = rng.pick(stubs);
    if (a == b) continue;
    const auto tr = net_->trace(a, b);
    ASSERT_TRUE(tr.ok);
    // AS sequence of the data path == [src AS] + BGP AS path.
    std::vector<AsId> as_seq;
    for (const auto r : tr.hops) {
      const AsId as = topo.as_of_router(r);
      if (as_seq.empty() || as_seq.back() != as) as_seq.push_back(as);
    }
    const auto route =
        net_->bgp().best(a, topo.prefix_of(topo.as_of_router(b)));
    ASSERT_TRUE(route.has_value());
    std::vector<AsId> expected = {topo.as_of_router(a)};
    expected.insert(expected.end(), route->as_path.begin(),
                    route->as_path.end());
    EXPECT_EQ(as_seq, expected);
  }
}

TEST_P(RoutingProperties, SnapshotRestoreIsExact) {
  const auto& topo = net_->topology();
  const auto snap = net_->snapshot();
  util::Rng rng(GetParam() * 13 + 7);
  // Collect reference traces.
  std::vector<RouterId> stubs;
  for (const auto& as : topo.ases()) {
    if (as.cls == topo::AsClass::kStub) stubs.push_back(as.routers.front());
  }
  std::vector<std::pair<RouterId, RouterId>> pairs;
  std::vector<std::vector<RouterId>> refs;
  for (int i = 0; i < 10; ++i) {
    const RouterId a = rng.pick(stubs), b = rng.pick(stubs);
    if (a == b) continue;
    pairs.push_back({a, b});
    refs.push_back(net_->trace(a, b).hops);
  }
  // Break three random links, reconverge, restore.
  std::vector<LinkId> all;
  for (const auto& l : topo.links()) all.push_back(l.id);
  for (LinkId l : rng.sample(all, 3)) net_->fail_link(l);
  net_->reconverge();
  net_->restore(snap);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(net_->trace(pairs[i].first, pairs[i].second).hops, refs[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperties,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Diagnosis properties: invariants of the algorithms under random failures.
// ---------------------------------------------------------------------------

class DiagnosisProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagnosisProperties, HypothesisInvariants) {
  topo::GeneratorParams p;
  p.seed = 2;
  sim::Network net(topo::generate(p));
  net.converge();
  net.set_operator_as(AsId{0});
  util::Rng rng(GetParam());
  const auto sensors = probe::place_sensors(
      net.topology(), probe::PlacementKind::kRandomStub, 8, rng);
  probe::Prober prober(net, sensors);
  const auto before = prober.measure();
  const auto pool = before.probed_links();
  const auto snap = net.snapshot();

  for (int trial = 0; trial < 5; ++trial) {
    const auto victims = rng.sample(pool, 2);
    net.start_recording();
    for (LinkId l : victims) net.fail_link(l);
    net.reconverge();
    const auto after = prober.measure();
    bool invoked = false;
    for (std::size_t k = 0; k < before.paths.size(); ++k) {
      invoked = invoked || (before.paths[k].ok && !after.paths[k].ok);
    }
    if (invoked) {
      const auto cp = exp::collect_control_plane(net);
      std::vector<core::AlgorithmOutput> outs;
      outs.push_back(core::run_tomo(before, after));
      outs.push_back(core::run_nd_edge(before, after));
      outs.push_back(core::run_nd_bgpigp(before, after, cp));
      for (const auto* out : {&outs[0], &outs[1], &outs[2]}) {
        // (1) Every hypothesis link is a probed link.
        for (const auto& k : out->result.links) {
          EXPECT_TRUE(out->graph.probed_keys.count(k));
        }
        // (2) Every hypothesis edge intersects at least one failure or
        //     reroute set => it lies on some T− path of a disturbed pair.
        // (3) No duplicate edges in the hypothesis.
        std::set<std::uint32_t> seen;
        for (graph::EdgeId e : out->result.hypothesis_edges) {
          EXPECT_TRUE(seen.insert(e.value()).second);
        }
      }
    }
    net.restore(snap);
    net.set_operator_as(AsId{0});
  }
}

TEST_P(DiagnosisProperties, NonRecoverableSingleFailureAlwaysFound) {
  // A single-homed stub uplink failure cannot reroute: Tomo and ND-edge
  // must both include the true link (paper: single-failure sensitivity 1).
  topo::GeneratorParams p;
  p.seed = 2;
  sim::Network net(topo::generate(p));
  net.converge();
  util::Rng rng(GetParam() * 7 + 5);
  const auto sensors = probe::place_sensors(
      net.topology(), probe::PlacementKind::kRandomStub, 8, rng);
  probe::Prober prober(net, sensors);
  const auto before = prober.measure();
  // Single-homed sensor uplink.
  LinkId uplink;
  for (const auto& s : sensors) {
    std::size_t n = 0;
    LinkId last;
    for (LinkId l : net.topology().links_of(s.attach)) {
      if (net.topology().link(l).interdomain) {
        ++n;
        last = l;
      }
    }
    if (n == 1) {
      uplink = last;
      break;
    }
  }
  if (!uplink.valid()) GTEST_SKIP() << "all sampled stubs multihomed";
  net.fail_link(uplink);
  net.reconverge();
  const auto after = prober.measure();
  const auto key = exp::link_key(net.topology(), uplink);
  EXPECT_TRUE(core::run_tomo(before, after).result.links.count(key));
  EXPECT_TRUE(core::run_nd_edge(before, after).result.links.count(key));
}

TEST_P(DiagnosisProperties, DiagnosabilityBounds) {
  topo::GeneratorParams p;
  p.seed = 2;
  sim::Network net(topo::generate(p));
  net.converge();
  util::Rng rng(GetParam() * 3 + 11);
  for (const auto kind :
       {probe::PlacementKind::kRandomStub, probe::PlacementKind::kSameAs,
        probe::PlacementKind::kDistantAs,
        probe::PlacementKind::kDistantAsSplit}) {
    const auto sensors = probe::place_sensors(net.topology(), kind, 8, rng);
    probe::Prober prober(net, sensors);
    const auto mesh = prober.measure();
    const auto dg = core::build_diagnosis_graph(mesh, mesh, false);
    const double d = core::diagnosability(dg);
    EXPECT_GT(d, 0.0) << probe::to_string(kind);
    EXPECT_LE(d, 1.0) << probe::to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagnosisProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace netd
