// Statistical reproduction of the paper's headline claims at reduced run
// counts. These are the qualitative shapes the benchmarks regenerate at
// full scale (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "util/stats.h"

namespace netd::exp {
namespace {

ScenarioConfig base_config(std::uint64_t seed = 101) {
  ScenarioConfig cfg;
  cfg.num_placements = 3;
  cfg.trials_per_placement = 8;
  cfg.seed = seed;
  return cfg;
}

double mean_link_sensitivity(const std::vector<TrialResult>& rs, Algo a) {
  util::Summary s;
  for (const auto& r : rs) s.add(r.link.at(a).sensitivity);
  return s.mean();
}

TEST(PaperClaims, TomoPerfectOnSingleLinkFailures) {
  // §5.1: "Tomo is able to find the failed link when there is only a
  // single link failure (sensitivity is one for almost all instances)".
  ScenarioConfig cfg = base_config();
  cfg.num_link_failures = 1;
  Runner runner(cfg);
  const auto rs = runner.run({Algo::kTomo});
  ASSERT_GT(rs.size(), 10u);
  std::size_t perfect = 0;
  for (const auto& r : rs) {
    perfect += r.link.at(Algo::kTomo).sensitivity == 1.0;
  }
  // "sensitivity is one for almost all simulation instances": unlike the
  // paper's idealized claim, a single non-recoverable failure can still
  // reroute *some* pairs (partial recoverability), which Tomo's working
  // constraints then mis-use; a small residue below 1.0 remains.
  EXPECT_GE(perfect * 10, rs.size() * 8);
}

TEST(PaperClaims, TomoDegradesWithMultipleFailures) {
  // §5.1: sensitivity drops for 2-3 simultaneous failures.
  ScenarioConfig one = base_config(103);
  one.num_link_failures = 1;
  ScenarioConfig three = base_config(103);
  three.num_link_failures = 3;
  const auto r1 = Runner(one).run({Algo::kTomo});
  const auto r3 = Runner(three).run({Algo::kTomo});
  ASSERT_GT(r1.size(), 0u);
  ASSERT_GT(r3.size(), 0u);
  EXPECT_GT(mean_link_sensitivity(r1, Algo::kTomo),
            mean_link_sensitivity(r3, Algo::kTomo));
}

TEST(PaperClaims, NdEdgeBeatsTomoOnThreeFailures) {
  // Fig. 7 top: ND-edge ~1, Tomo clearly lower.
  ScenarioConfig cfg = base_config(107);
  cfg.num_link_failures = 3;
  Runner runner(cfg);
  const auto rs = runner.run({Algo::kTomo, Algo::kNdEdge});
  ASSERT_GT(rs.size(), 0u);
  const double tomo = mean_link_sensitivity(rs, Algo::kTomo);
  const double nd = mean_link_sensitivity(rs, Algo::kNdEdge);
  EXPECT_GT(nd, tomo);
  EXPECT_GE(nd, 0.9);
}

TEST(PaperClaims, TomoNearZeroOnMisconfigurations) {
  // Fig. 6 bottom: sensitivity zero in ~90% of misconfiguration cases.
  ScenarioConfig cfg = base_config(109);
  cfg.mode = FailureMode::kMisconfig;
  Runner runner(cfg);
  const auto rs = runner.run({Algo::kTomo, Algo::kNdEdge});
  ASSERT_GT(rs.size(), 0u);
  std::size_t tomo_zero = 0, nd_one = 0;
  for (const auto& r : rs) {
    tomo_zero += r.link.at(Algo::kTomo).sensitivity == 0.0;
    nd_one += r.link.at(Algo::kNdEdge).sensitivity == 1.0;
  }
  EXPECT_GE(tomo_zero * 10, rs.size() * 7);
  EXPECT_GE(nd_one * 10, rs.size() * 8);
}

TEST(PaperClaims, NdEdgeSpecificityHigh) {
  // Fig. 8: specificity > 0.9 for single link failures.
  ScenarioConfig cfg = base_config(113);
  Runner runner(cfg);
  const auto rs = runner.run({Algo::kNdEdge});
  ASSERT_GT(rs.size(), 0u);
  util::Summary s;
  for (const auto& r : rs) s.add(r.link.at(Algo::kNdEdge).specificity);
  EXPECT_GE(s.mean(), 0.9);
}

TEST(PaperClaims, BgpIgpSpecificityAtLeastNdEdge) {
  // Fig. 10: control-plane data improves (or preserves) specificity at
  // equal sensitivity.
  ScenarioConfig cfg = base_config(127);
  cfg.num_link_failures = 3;
  Runner runner(cfg);
  const auto rs = runner.run({Algo::kNdEdge, Algo::kNdBgpIgp});
  ASSERT_GT(rs.size(), 0u);
  util::Summary edge, bgp;
  for (const auto& r : rs) {
    edge.add(r.link.at(Algo::kNdEdge).specificity);
    bgp.add(r.link.at(Algo::kNdBgpIgp).specificity);
  }
  EXPECT_GE(bgp.mean() + 1e-9, edge.mean());
  // Withdrawal pruning assumes one failure per failed path; with several
  // simultaneous failures it can prune a true source-side link in a few
  // episodes. The paper's CDFs (1000 runs) do not resolve this ~1% effect;
  // we tolerate it explicitly.
  EXPECT_GE(mean_link_sensitivity(rs, Algo::kNdBgpIgp),
            mean_link_sensitivity(rs, Algo::kNdEdge) - 0.05);
}

TEST(PaperClaims, NdLgSensitivityRobustToBlocking) {
  // Fig. 11: ND-LG AS-sensitivity stays high as f_b grows while
  // ND-bgpigp's collapses toward 1 - f_b.
  ScenarioConfig cfg = base_config(131);
  cfg.frac_blocked = 0.6;
  cfg.trials_per_placement = 6;
  Runner runner(cfg);
  const auto rs = runner.run({Algo::kNdBgpIgp, Algo::kNdLg});
  ASSERT_GT(rs.size(), 0u);
  util::Summary lg, bgp;
  for (const auto& r : rs) {
    lg.add(r.as_level.at(Algo::kNdLg).sensitivity);
    bgp.add(r.as_level.at(Algo::kNdBgpIgp).sensitivity);
  }
  EXPECT_GT(lg.mean(), bgp.mean());
  EXPECT_GE(lg.mean(), 0.55);
}

TEST(PaperClaims, DiagnosabilityInPaperBand) {
  // §4: with 10 random-stub sensors the paper sees D(G) in 0.25..0.6
  // (and 0.41 on PlanetLab).
  ScenarioConfig cfg = base_config(137);
  cfg.trials_per_placement = 1;
  Runner runner(cfg);
  const auto rs = runner.run({Algo::kTomo});
  ASSERT_GT(rs.size(), 0u);
  for (const auto& r : rs) {
    EXPECT_GT(r.diagnosability, 0.15);
    EXPECT_LT(r.diagnosability, 0.75);
  }
}

}  // namespace
}  // namespace netd::exp
