// End-to-end runs of the experiment harness (exp::Runner).
#include <gtest/gtest.h>

#include "exp/runner.h"

namespace netd::exp {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.num_placements = 2;
  cfg.trials_per_placement = 5;
  cfg.seed = 11;
  return cfg;
}

TEST(Runner, ProducesRequestedTrials) {
  Runner runner(small_config());
  const auto results = runner.run({Algo::kTomo, Algo::kNdEdge});
  EXPECT_GT(results.size(), 0u);
  EXPECT_LE(results.size(), 10u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.link.count(Algo::kTomo));
    ASSERT_TRUE(r.link.count(Algo::kNdEdge));
  }
}

TEST(Runner, MetricsAreInRange) {
  Runner runner(small_config());
  const auto results = runner.run({Algo::kNdEdge});
  for (const auto& r : results) {
    const auto& m = r.link.at(Algo::kNdEdge);
    EXPECT_GE(m.sensitivity, 0.0);
    EXPECT_LE(m.sensitivity, 1.0);
    EXPECT_GE(m.specificity, 0.0);
    EXPECT_LE(m.specificity, 1.0);
    EXPECT_GT(m.num_probed, 0u);
    EXPECT_GT(r.diagnosability, 0.0);
    EXPECT_LE(r.diagnosability, 1.0);
    const auto& a = r.as_level.at(Algo::kNdEdge);
    EXPECT_GE(a.sensitivity, 0.0);
    EXPECT_LE(a.specificity, 1.0);
  }
}

TEST(Runner, DeterministicForFixedSeed) {
  Runner r1(small_config());
  Runner r2(small_config());
  const auto a = r1.run({Algo::kNdEdge});
  const auto b = r2.run({Algo::kNdEdge});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].link.at(Algo::kNdEdge).sensitivity,
                     b[i].link.at(Algo::kNdEdge).sensitivity);
    EXPECT_DOUBLE_EQ(a[i].link.at(Algo::kNdEdge).specificity,
                     b[i].link.at(Algo::kNdEdge).specificity);
  }
}

TEST(Runner, MisconfigurationMode) {
  ScenarioConfig cfg = small_config();
  cfg.mode = FailureMode::kMisconfig;
  Runner runner(cfg);
  const auto results = runner.run({Algo::kTomo, Algo::kNdEdge});
  ASSERT_GT(results.size(), 0u);
  double tomo = 0, nd = 0;
  for (const auto& r : results) {
    tomo += r.link.at(Algo::kTomo).sensitivity;
    nd += r.link.at(Algo::kNdEdge).sensitivity;
  }
  EXPECT_GE(nd, tomo);
}

TEST(Runner, RouterFailureMode) {
  ScenarioConfig cfg = small_config();
  cfg.mode = FailureMode::kRouter;
  Runner runner(cfg);
  const auto results = runner.run({Algo::kNdEdge});
  ASSERT_GT(results.size(), 0u);
  std::size_t detected = 0;
  for (const auto& r : results) detected += r.router_detected;
  // ND-edge identified the failed router in (nearly) every run (§5.2).
  EXPECT_GE(detected * 10, results.size() * 8);
}

TEST(Runner, BlockedTraceroutesWithNdLg) {
  ScenarioConfig cfg = small_config();
  cfg.frac_blocked = 0.5;
  cfg.trials_per_placement = 3;
  Runner runner(cfg);
  const auto results = runner.run({Algo::kNdBgpIgp, Algo::kNdLg});
  ASSERT_GT(results.size(), 0u);
  double lg = 0, bgpigp = 0;
  for (const auto& r : results) {
    lg += r.as_level.at(Algo::kNdLg).sensitivity;
    bgpigp += r.as_level.at(Algo::kNdBgpIgp).sensitivity;
  }
  EXPECT_GE(lg, bgpigp);
}

TEST(Runner, OperatorAtStubStillWorks) {
  ScenarioConfig cfg = small_config();
  cfg.operator_at_core = false;
  cfg.trials_per_placement = 3;
  Runner runner(cfg);
  const auto results = runner.run({Algo::kNdBgpIgp});
  EXPECT_GT(results.size(), 0u);
}

TEST(CollectControlPlane, TranslatesToLabelSpace) {
  sim::Network net(topo::tiny_topology());
  net.converge();
  net.set_operator_as(topo::AsId{0});
  net.start_recording();
  // Fail an AS0-internal link.
  for (const auto& l : net.topology().links()) {
    if (!l.interdomain && net.topology().as_of_router(l.a) == topo::AsId{0}) {
      net.fail_link(l.id);
      break;
    }
  }
  net.reconverge();
  const auto cp = collect_control_plane(net);
  ASSERT_EQ(cp.igp_down_keys.size(), 1u);
  EXPECT_NE(cp.igp_down_keys[0].find("AS0:"), std::string::npos);
  EXPECT_NE(cp.igp_down_keys[0].find('|'), std::string::npos);
}

}  // namespace
}  // namespace netd::exp

namespace netd::exp {
namespace {

TEST(AlgoNames, ToStringCoversAll) {
  EXPECT_STREQ(to_string(Algo::kTomo), "Tomo");
  EXPECT_STREQ(to_string(Algo::kNdEdge), "ND-edge");
  EXPECT_STREQ(to_string(Algo::kNdBgpIgp), "ND-bgpigp");
  EXPECT_STREQ(to_string(Algo::kNdLg), "ND-LG");
}

}  // namespace
}  // namespace netd::exp
