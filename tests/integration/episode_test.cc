// The for_each_episode protocol itself: ground truth consistency,
// determinism, and the exact evaluation conventions of §4.
#include <gtest/gtest.h>

#include "exp/runner.h"

namespace netd::exp {
namespace {

ScenarioConfig tiny_cfg(std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.num_placements = 2;
  cfg.trials_per_placement = 4;
  cfg.seed = seed;
  return cfg;
}

TEST(Episode, GroundTruthIsConsistent) {
  Runner runner(tiny_cfg());
  std::size_t episodes = 0;
  runner.for_each_episode([&](const EpisodeContext& ep) {
    ++episodes;
    // F non-empty and within the probed universe at AS level.
    EXPECT_FALSE(ep.failed_links.empty());
    EXPECT_FALSE(ep.failed_ases.empty());
    for (int as : ep.failed_ases) {
      EXPECT_TRUE(ep.universe.count(as));
    }
    // Some pair must actually have broken.
    bool broken = false;
    for (std::size_t k = 0; k < ep.before.paths.size(); ++k) {
      broken = broken ||
               (ep.before.paths[k].ok && !ep.after.paths[k].ok);
    }
    EXPECT_TRUE(broken);
    EXPECT_GT(ep.diagnosability, 0.0);
    EXPECT_LE(ep.diagnosability, 1.0);
  });
  EXPECT_GT(episodes, 0u);
}

TEST(Episode, MeshesAreIndexAligned) {
  Runner runner(tiny_cfg(9));
  runner.for_each_episode([&](const EpisodeContext& ep) {
    ASSERT_EQ(ep.before.paths.size(), ep.after.paths.size());
    for (std::size_t k = 0; k < ep.before.paths.size(); ++k) {
      EXPECT_EQ(ep.before.paths[k].src, ep.after.paths[k].src);
      EXPECT_EQ(ep.before.paths[k].dst, ep.after.paths[k].dst);
    }
  });
}

TEST(Episode, DeterministicSequence) {
  std::vector<std::string> a, b;
  for (auto* out : {&a, &b}) {
    Runner runner(tiny_cfg(11));
    runner.for_each_episode([&](const EpisodeContext& ep) {
      std::string sig;
      for (const auto& l : ep.failed_links) sig += l + ";";
      out->push_back(sig);
    });
  }
  EXPECT_EQ(a, b);
}

TEST(Episode, LgPresentOnlyWhenRequested) {
  Runner r1(tiny_cfg(13));
  r1.for_each_episode(
      [&](const EpisodeContext& ep) { EXPECT_EQ(ep.lg, nullptr); });
  Runner r2(tiny_cfg(13));
  r2.for_each_episode(
      [&](const EpisodeContext& ep) { EXPECT_NE(ep.lg, nullptr); },
      /*deploy_lg=*/true);
}

TEST(Episode, BlockedScenarioDeploysLg) {
  ScenarioConfig cfg = tiny_cfg(15);
  cfg.frac_blocked = 0.4;
  cfg.trials_per_placement = 2;
  Runner runner(cfg);
  std::size_t uh_pairs = 0;
  runner.for_each_episode([&](const EpisodeContext& ep) {
    EXPECT_NE(ep.lg, nullptr);
    for (const auto& p : ep.before.paths) {
      for (const auto& h : p.hops) {
        if (h.kind == graph::NodeKind::kUnidentified) {
          ++uh_pairs;
          return;
        }
      }
    }
  });
  EXPECT_GT(uh_pairs, 0u);
}

TEST(Episode, MisconfigModeFailsNoPhysicalLink) {
  ScenarioConfig cfg = tiny_cfg(17);
  cfg.mode = FailureMode::kMisconfig;
  Runner runner(cfg);
  runner.for_each_episode([&](const EpisodeContext& ep) {
    // Exactly one misconfigured link in F; the physical plant is intact.
    EXPECT_EQ(ep.failed_links.size(), 1u);
  });
}

TEST(Episode, RouterModeFailsAllItsProbedLinks) {
  ScenarioConfig cfg = tiny_cfg(19);
  cfg.mode = FailureMode::kRouter;
  Runner runner(cfg);
  runner.for_each_episode([&](const EpisodeContext& ep) {
    EXPECT_GE(ep.failed_links.size(), 1u);
  });
}

}  // namespace
}  // namespace netd::exp
