// PlacementStrategy::kPlanned through the experiment runner: the planner
// hook must keep the parallel runner's determinism contract (results
// byte-identical at every thread count), actually change which sensors
// get deployed, and round-trip through the config strings.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/runner.h"

namespace netd::exp {
namespace {

std::string signature(const std::vector<TrialResult>& rs) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& r : rs) {
    os << "d=" << r.diagnosability;
    for (const auto& [algo, m] : r.link) {
      os << " L" << to_string(algo) << "=" << m.sensitivity << "/"
         << m.specificity << "/" << m.hypothesis_size << "/" << m.num_probed;
    }
    os << "\n";
  }
  return os.str();
}

ScenarioConfig planned_cfg() {
  ScenarioConfig cfg;
  cfg.num_placements = 2;
  cfg.trials_per_placement = 3;
  cfg.seed = 2027;
  cfg.placement_strategy = PlacementStrategy::kPlanned;
  return cfg;
}

std::string run_with_threads(ScenarioConfig cfg, std::size_t threads) {
  cfg.num_threads = threads;
  Runner runner(cfg);
  return signature(runner.run({Algo::kTomo, Algo::kNdEdge}));
}

TEST(PlannedPlacement, MatchesSerialAtAnyThreadCount) {
  const ScenarioConfig cfg = planned_cfg();
  const std::string serial = run_with_threads(cfg, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_with_threads(cfg, 4));
}

TEST(PlannedPlacement, DiffersFromRandomDeployment) {
  ScenarioConfig random = planned_cfg();
  random.placement_strategy = PlacementStrategy::kRandom;
  EXPECT_NE(run_with_threads(planned_cfg(), 1), run_with_threads(random, 1));
}

TEST(PlannedPlacement, PoolOverrideIsHonored) {
  // A 2x pool plans from fewer candidates than the default 4x; with this
  // seed the deployments differ, which the trial signatures expose.
  ScenarioConfig narrow = planned_cfg();
  narrow.plan_pool = 2 * narrow.num_sensors;
  EXPECT_NE(run_with_threads(planned_cfg(), 1), run_with_threads(narrow, 1));
}

TEST(PlannedPlacement, PoolClampsToSmallTopologies) {
  // A 60-AS topology hosts fewer stub ASes than the default 4x candidate
  // oversample asks for; the pool must clamp to capacity instead of
  // failing the placement draw (regression: this crashed in Release).
  ScenarioConfig cfg = planned_cfg();
  cfg.topo_params.target_ases = 60;
  cfg.num_placements = 1;
  cfg.trials_per_placement = 1;
  EXPECT_FALSE(run_with_threads(cfg, 1).empty());
}

TEST(PlacementStrategyStrings, RoundTrip) {
  for (PlacementStrategy s :
       {PlacementStrategy::kRandom, PlacementStrategy::kPlanned}) {
    EXPECT_EQ(placement_strategy_from_string(to_string(s)), s);
  }
  EXPECT_FALSE(placement_strategy_from_string("bogus").has_value());
}

}  // namespace
}  // namespace netd::exp
