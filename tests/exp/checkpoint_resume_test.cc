// Crash-safe campaign contract: a campaign interrupted after any
// placement and resumed from its checkpoint produces byte-identical
// results (score mode: CSV rows; record mode: trace bytes) to an
// uninterrupted run, for any thread count — and the per-trial watchdog
// quarantines stuck trials without aborting the campaign, with
// replay_placement() recovering their results afterwards.
#include "exp/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/atomic_file.h"

namespace netd::exp {
namespace {

const std::vector<Algo> kAlgos = {Algo::kTomo, Algo::kNdBgpIgp};

ScenarioConfig small_cfg() {
  ScenarioConfig cfg;
  cfg.num_placements = 4;
  cfg.trials_per_placement = 3;
  cfg.seed = 2026;
  return cfg;
}

std::string csv_of(const CampaignResult& r, const std::vector<Algo>& algos) {
  std::ostringstream os;
  write_csv(os, r.trials, algos);
  return os.str();
}

/// Runs the campaign one placement at a time, constructing a fresh Runner
/// per chunk — each iteration simulates a process that died and restarted
/// from the checkpoint.
CampaignResult run_chunked(const ScenarioConfig& cfg,
                           const std::vector<Algo>& algos,
                           const std::string& ck_path) {
  CampaignOptions opts;
  opts.checkpoint_path = ck_path;
  opts.resume = true;
  opts.max_new_placements = 1;
  for (int iter = 0; iter < 64; ++iter) {
    Runner runner(cfg);
    std::string error;
    auto r = runner.run_campaign(algos, opts, &error);
    EXPECT_TRUE(r.has_value()) << error;
    if (!r) break;
    if (r->complete()) return *r;
  }
  ADD_FAILURE() << "campaign never completed";
  return {};
}

TEST(CheckpointResume, ChunkedResumeMatchesStraightRunAcrossThreadCounts) {
  const ScenarioConfig base = small_cfg();

  ScenarioConfig straight_cfg = base;
  straight_cfg.num_threads = 1;
  Runner straight(straight_cfg);
  const auto ref = straight.run_campaign(kAlgos, {});
  ASSERT_TRUE(ref.has_value());
  ASSERT_TRUE(ref->complete());
  ASSERT_FALSE(ref->trials.empty());
  const std::string ref_csv = csv_of(*ref, kAlgos);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ScenarioConfig cfg = base;
    cfg.num_threads = threads;
    const std::string ck_path = ::testing::TempDir() +
                                "/netd_resume_ck_t" +
                                std::to_string(threads) + ".json";
    std::remove(ck_path.c_str());
    const auto chunked = run_chunked(cfg, kAlgos, ck_path);
    EXPECT_EQ(csv_of(chunked, kAlgos), ref_csv) << "threads=" << threads;
    EXPECT_EQ(chunked.resumed_placements, base.num_placements - 1);
    EXPECT_TRUE(chunked.quarantined.empty());
    std::remove(ck_path.c_str());
  }
}

TEST(CheckpointResume, RecordModeResumeIsByteIdenticalDespiteTornTail) {
  ScenarioConfig cfg = small_cfg();
  svc::SessionConfig sc;
  sc.alarm_threshold = 2;

  const std::string dir = ::testing::TempDir();
  const std::string trace_a = dir + "/netd_resume_a.jsonl";
  const std::string trace_b = dir + "/netd_resume_b.jsonl";
  const std::string ck_b = dir + "/netd_resume_b.ck.json";
  std::remove(trace_a.c_str());
  std::remove(trace_b.c_str());
  std::remove(ck_b.c_str());

  ScenarioConfig straight_cfg = cfg;
  straight_cfg.num_threads = 1;
  Runner straight(straight_cfg);
  std::string error;
  const auto ref = straight.record_campaign(trace_a, sc, {}, &error);
  ASSERT_TRUE(ref.has_value()) << error;
  ASSERT_TRUE(ref->complete());

  ScenarioConfig chunk_cfg = cfg;
  chunk_cfg.num_threads = 4;
  CampaignOptions opts;
  opts.checkpoint_path = ck_b;
  opts.resume = true;
  opts.max_new_placements = 1;
  for (int iter = 0; iter < 64; ++iter) {
    Runner runner(chunk_cfg);
    auto r = runner.record_campaign(trace_b, sc, opts, &error);
    ASSERT_TRUE(r.has_value()) << error;
    if (r->complete()) break;
    // Simulate a crash mid-write: a partial line past the committed
    // offset. Resume must truncate it away.
    std::ofstream torn(trace_b, std::ios::app | std::ios::binary);
    torn << "{\"v\":1,\"type\":\"round\",\"mesh\":{\"partial";
  }

  const auto a = util::read_file(trace_a, &error);
  ASSERT_TRUE(a.has_value()) << error;
  const auto b = util::read_file(trace_b, &error);
  ASSERT_TRUE(b.has_value()) << error;
  EXPECT_FALSE(a->empty());
  EXPECT_EQ(*a, *b);

  std::remove(trace_a.c_str());
  std::remove(trace_b.c_str());
  std::remove(ck_b.c_str());
}

TEST(CheckpointResume, WatchdogQuarantinesEveryTrialWithoutAborting) {
  ScenarioConfig cfg = small_cfg();
  cfg.num_threads = 1;
  cfg.trial_deadline_ms = 1;
  // Fake monotonic clock: every observation jumps far past the deadline,
  // so the very first cooperative check in each trial quarantines it.
  auto tick = std::make_shared<std::uint64_t>(0);
  cfg.now_ms = [tick] { return *tick += 1000; };

  Runner runner(cfg);
  const auto r = runner.run_campaign(kAlgos, {});
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->complete());
  EXPECT_TRUE(r->trials.empty());
  EXPECT_EQ(r->quarantined.size(),
            cfg.num_placements * cfg.trials_per_placement);
  for (const auto& q : r->quarantined) {
    EXPECT_LT(q.placement, cfg.num_placements);
    EXPECT_LT(q.trial, cfg.trials_per_placement);
    EXPECT_NE(q.seed, 0u);
  }
}

TEST(CheckpointResume, ReplayPlacementRecoversDeadlineFreeResults) {
  const ScenarioConfig base = small_cfg();

  ScenarioConfig clean_cfg = base;
  clean_cfg.num_threads = 1;
  Runner clean(clean_cfg);
  const auto ref = clean.run_campaign(kAlgos, {});
  ASSERT_TRUE(ref.has_value());

  ScenarioConfig qcfg = base;
  qcfg.num_threads = 1;
  qcfg.trial_deadline_ms = 1;
  auto tick = std::make_shared<std::uint64_t>(0);
  qcfg.now_ms = [tick] { return *tick += 1000; };
  Runner quarantined_run(qcfg);
  const auto q = quarantined_run.run_campaign(kAlgos, {});
  ASSERT_TRUE(q.has_value());
  ASSERT_FALSE(q->quarantined.empty());

  // Replaying the quarantined placement with the watchdog off yields the
  // same rows the uninterrupted deadline-free campaign produced.
  Runner replayer(base);
  const std::size_t pl = q->quarantined.front().placement;
  const auto replayed = replayer.replay_placement(pl, kAlgos, false);
  std::vector<ScoredTrial> expected;
  for (const auto& t : ref->trials) {
    if (t.placement == pl) expected.push_back(t);
  }
  std::ostringstream got_csv, want_csv;
  write_csv(got_csv, replayed, kAlgos);
  write_csv(want_csv, expected, kAlgos);
  EXPECT_EQ(got_csv.str(), want_csv.str());
}

TEST(CheckpointResume, ResumeRejectsForeignCheckpoint) {
  const std::string ck_path =
      ::testing::TempDir() + "/netd_resume_foreign.ck.json";
  std::remove(ck_path.c_str());

  ScenarioConfig cfg = small_cfg();
  cfg.num_threads = 1;
  CampaignOptions opts;
  opts.checkpoint_path = ck_path;
  opts.resume = true;
  opts.max_new_placements = 1;
  Runner first(cfg);
  std::string error;
  ASSERT_TRUE(first.run_campaign(kAlgos, opts, &error).has_value()) << error;

  ScenarioConfig other = cfg;
  other.seed = 777;  // different campaign identity
  Runner second(other);
  error.clear();
  EXPECT_FALSE(second.run_campaign(kAlgos, opts, &error).has_value());
  EXPECT_FALSE(error.empty());

  std::remove(ck_path.c_str());
}

TEST(CheckpointResume, CodecRoundTripsByteIdentically) {
  ScenarioConfig cfg = small_cfg();
  cfg.mode = FailureMode::kMisconfigPlusLink;
  cfg.frac_blocked = 0.25;
  cfg.frac_lg = 0.75;
  cfg.operator_at_core = false;
  cfg.seed = 18446744073709551615ull;  // u64 range must survive the codec

  Checkpoint ck;
  ck.scenario = cfg;
  ck.algos = {Algo::kNdLg};
  ck.completed_placements = 1;
  ck.episodes = 2;
  std::vector<ScoredTrial> bucket;
  ScoredTrial st;
  st.placement = 0;
  st.trial = 2;
  st.result.diagnosability = 1.0 / 3.0;
  st.result.router_detected = true;
  core::LinkMetrics lm;
  lm.sensitivity = 0.1 + 0.2;  // 0.30000000000000004: needs 17 digits
  lm.specificity = 1.0;
  lm.hypothesis_size = 3;
  lm.num_probed = 41;
  st.result.link[Algo::kNdLg] = lm;
  core::AsMetrics am;
  am.sensitivity = 2.0 / 3.0;
  am.specificity = 0.5;
  am.hypothesis_size = 2;
  st.result.as_level[Algo::kNdLg] = am;
  bucket.push_back(st);
  ck.results.push_back(std::move(bucket));
  ck.quarantined.push_back({0, 1, 987654321987654321ull});

  const std::string dumped = ck.to_json().dump();
  std::string error;
  const auto parsed = svc::Json::parse(dumped, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto back = Checkpoint::from_json(*parsed, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->to_json().dump(), dumped);
  EXPECT_EQ(back->fingerprint(), ck.fingerprint());
  EXPECT_EQ(back->scenario.seed, cfg.seed);
  ASSERT_EQ(back->results.size(), 1u);
  ASSERT_EQ(back->results[0].size(), 1u);
  const auto& rt = back->results[0][0].result;
  EXPECT_EQ(rt.link.at(Algo::kNdLg).sensitivity, lm.sensitivity);
  EXPECT_EQ(rt.as_level.at(Algo::kNdLg).sensitivity, am.sensitivity);
  ASSERT_EQ(back->quarantined.size(), 1u);
  EXPECT_EQ(back->quarantined[0].seed, 987654321987654321ull);
}

TEST(CheckpointResume, FingerprintSeparatesModesAndAlgos) {
  Checkpoint score;
  score.scenario = small_cfg();
  score.algos = {Algo::kTomo};

  Checkpoint more_algos = score;
  more_algos.algos = {Algo::kTomo, Algo::kNdEdge};
  EXPECT_NE(score.fingerprint(), more_algos.fingerprint());

  Checkpoint record = score;
  record.algos.clear();
  record.recording = true;
  EXPECT_NE(score.fingerprint(), record.fingerprint());

  // Thread count and the watchdog deadline are replay knobs, not campaign
  // identity: changing them must not invalidate a checkpoint.
  Checkpoint tuned = score;
  tuned.scenario.num_threads = 8;
  tuned.scenario.trial_deadline_ms = 500;
  EXPECT_EQ(score.fingerprint(), tuned.fingerprint());
}

}  // namespace
}  // namespace netd::exp
