// The parallel runner's contract: sharding placements across worker
// threads must be invisible in the results. A run with num_threads=N is
// required to produce byte-identical TrialResult sequences (and identical
// for_each_episode callback sequences, in the same order) as num_threads=1
// for the same seed, across failure modes and all four algorithms.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/runner.h"

namespace netd::exp {
namespace {

const std::vector<Algo> kAllAlgos = {Algo::kTomo, Algo::kNdEdge,
                                     Algo::kNdBgpIgp, Algo::kNdLg};

/// Exact text form of a trial sequence; doubles are printed with max
/// precision so any bit drift shows up.
std::string signature(const std::vector<TrialResult>& rs) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& r : rs) {
    os << "d=" << r.diagnosability << " rd=" << r.router_detected;
    for (const auto& [algo, m] : r.link) {
      os << " L" << to_string(algo) << "=" << m.sensitivity << "/"
         << m.specificity << "/" << m.hypothesis_size << "/" << m.num_probed;
    }
    for (const auto& [algo, m] : r.as_level) {
      os << " A" << to_string(algo) << "=" << m.sensitivity << "/"
         << m.specificity << "/" << m.hypothesis_size;
    }
    os << "\n";
  }
  return os.str();
}

ScenarioConfig base_cfg(FailureMode mode) {
  ScenarioConfig cfg;
  cfg.num_placements = 3;
  cfg.trials_per_placement = 4;
  cfg.seed = 2026;
  cfg.mode = mode;
  return cfg;
}

std::string run_with_threads(ScenarioConfig cfg, std::size_t threads) {
  cfg.num_threads = threads;
  Runner runner(cfg);
  return signature(runner.run(kAllAlgos));
}

TEST(ParallelDeterminism, LinkFailuresMatchSerial) {
  ScenarioConfig cfg = base_cfg(FailureMode::kLinks);
  cfg.num_link_failures = 2;
  cfg.frac_blocked = 0.25;  // exercise UHs + the LG path under sharding
  const std::string serial = run_with_threads(cfg, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_with_threads(cfg, 4));
}

TEST(ParallelDeterminism, MisconfigMatchesSerial) {
  const ScenarioConfig cfg = base_cfg(FailureMode::kMisconfig);
  const std::string serial = run_with_threads(cfg, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_with_threads(cfg, 4));
}

TEST(ParallelDeterminism, ThreadCountOverNumPlacementsClamps) {
  ScenarioConfig cfg = base_cfg(FailureMode::kLinks);
  const std::string serial = run_with_threads(cfg, 1);
  EXPECT_EQ(serial, run_with_threads(cfg, 64));
}

/// The materialized for_each_episode path must replay callbacks on the
/// calling thread in exactly the serial episode order.
TEST(ParallelDeterminism, EpisodeCallbacksReplayInPlacementOrder) {
  auto episodes_sig = [](std::size_t threads) {
    ScenarioConfig cfg;
    cfg.num_placements = 3;
    cfg.trials_per_placement = 3;
    cfg.seed = 77;
    cfg.frac_blocked = 0.3;
    cfg.num_threads = threads;
    Runner runner(cfg);
    std::string sig;
    runner.for_each_episode([&](const EpisodeContext& ep) {
      sig += "[";
      for (const auto& l : ep.failed_links) sig += l + ";";
      for (int a : ep.failed_ases) sig += std::to_string(a) + ",";
      sig += ep.lg != nullptr ? "lg" : "nolg";
      std::size_t broken = 0;
      for (std::size_t k = 0; k < ep.before.paths.size(); ++k) {
        broken += ep.before.paths[k].ok && !ep.after.paths[k].ok;
      }
      sig += ":" + std::to_string(broken) + "]";
    });
    return sig;
  };
  const std::string serial = episodes_sig(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, episodes_sig(3));
}

}  // namespace
}  // namespace netd::exp
