#include "graph/graph.h"

#include <gtest/gtest.h>

namespace netd::graph {
namespace {

TEST(Graph, InternNodeIsIdempotent) {
  Graph g;
  const NodeId a = g.intern_node("r1", NodeKind::kRouter, 3);
  const NodeId b = g.intern_node("r1", NodeKind::kRouter, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.num_nodes(), 1u);
}

TEST(Graph, InternNodeUpgradesUnknownAsn) {
  Graph g;
  const NodeId a = g.intern_node("r1", NodeKind::kRouter, -1);
  EXPECT_EQ(g.node(a).asn, -1);
  g.intern_node("r1", NodeKind::kRouter, 5);
  EXPECT_EQ(g.node(a).asn, 5);
}

TEST(Graph, InternNodeKeepsKnownAsn) {
  Graph g;
  const NodeId a = g.intern_node("r1", NodeKind::kRouter, 5);
  g.intern_node("r1", NodeKind::kRouter, -1);
  EXPECT_EQ(g.node(a).asn, 5);
}

TEST(Graph, FindNode) {
  Graph g;
  g.intern_node("x", NodeKind::kSensor, 1);
  EXPECT_TRUE(g.find_node("x").has_value());
  EXPECT_FALSE(g.find_node("y").has_value());
}

TEST(Graph, EdgesAreDirected) {
  Graph g;
  const NodeId a = g.intern_node("a", NodeKind::kRouter, 1);
  const NodeId b = g.intern_node("b", NodeKind::kRouter, 1);
  const EdgeId ab = g.intern_edge(a, b);
  const EdgeId ba = g.intern_edge(b, a);
  EXPECT_NE(ab, ba);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, InternEdgeIsIdempotent) {
  Graph g;
  const NodeId a = g.intern_node("a", NodeKind::kRouter, 1);
  const NodeId b = g.intern_node("b", NodeKind::kRouter, 1);
  EXPECT_EQ(g.intern_edge(a, b), g.intern_edge(a, b));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, FindEdge) {
  Graph g;
  const NodeId a = g.intern_node("a", NodeKind::kRouter, 1);
  const NodeId b = g.intern_node("b", NodeKind::kRouter, 1);
  const EdgeId e = g.intern_edge(a, b);
  EXPECT_EQ(g.find_edge(a, b), e);
  EXPECT_FALSE(g.find_edge(b, a).has_value());
}

TEST(Graph, MakePathConnectsConsecutiveLabels) {
  Graph g;
  for (const char* l : {"s1", "r1", "r2", "s2"}) {
    g.intern_node(l, NodeKind::kRouter, 1);
  }
  const Path p = g.make_path({"s1", "r1", "r2", "s2"});
  ASSERT_EQ(p.edges.size(), 3u);
  EXPECT_EQ(g.node(p.src).label, "s1");
  EXPECT_EQ(g.node(p.dst).label, "s2");
  EXPECT_EQ(g.edge_label(p.edges[1]), "r1 -> r2");
}

TEST(Graph, SharedEdgesAcrossPaths) {
  Graph g;
  for (const char* l : {"a", "b", "c", "d"}) {
    g.intern_node(l, NodeKind::kRouter, 1);
  }
  const Path p1 = g.make_path({"a", "b", "c"});
  const Path p2 = g.make_path({"d", "b", "c"});
  EXPECT_EQ(p1.edges[1], p2.edges[1]);  // b->c shared
  EXPECT_NE(p1.edges[0], p2.edges[0]);
}

TEST(Graph, NodeKindsPreserved) {
  Graph g;
  const NodeId s = g.intern_node("s", NodeKind::kSensor, 2);
  const NodeId u = g.intern_node("uh:1", NodeKind::kUnidentified, -1);
  const NodeId l = g.intern_node("r(AS9)", NodeKind::kLogical, 4);
  EXPECT_EQ(g.node(s).kind, NodeKind::kSensor);
  EXPECT_EQ(g.node(u).kind, NodeKind::kUnidentified);
  EXPECT_EQ(g.node(l).kind, NodeKind::kLogical);
}

}  // namespace
}  // namespace netd::graph
