// Differential pin for the bitset/CSR solver kernel: solve() must stay
// byte-identical to solve_reference() — same hypothesis edges in the same
// order, same links/ases, same ranked keys, scores, and rounds — on
// randomized episodes across every algorithm preset. The reference is the
// string-keyed, list-rescanning scorer the solver had before the kernel
// rewrite, so any drift in tie-breaking, scoring, clustering, or
// control-plane handling fails here with the exact divergence point.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "exp/runner.h"
#include "lg/looking_glass.h"
#include "probe/prober.h"
#include "probe/sensors.h"
#include "probe/synthetic.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "topo/random_internet.h"
#include "util/rng.h"

namespace netd::core {
namespace {

void expect_identical(const Result& fast, const Result& ref,
                      const std::string& ctx) {
  ASSERT_EQ(fast.hypothesis_edges.size(), ref.hypothesis_edges.size()) << ctx;
  for (std::size_t i = 0; i < fast.hypothesis_edges.size(); ++i) {
    ASSERT_EQ(fast.hypothesis_edges[i].value(), ref.hypothesis_edges[i].value())
        << ctx << " hypothesis position " << i;
  }
  EXPECT_EQ(fast.links, ref.links) << ctx;
  EXPECT_EQ(fast.ases, ref.ases) << ctx;
  EXPECT_EQ(fast.unknown_as_links, ref.unknown_as_links) << ctx;
  EXPECT_EQ(fast.unexplained_failure_sets, ref.unexplained_failure_sets)
      << ctx;
  ASSERT_EQ(fast.ranked.size(), ref.ranked.size()) << ctx;
  for (std::size_t i = 0; i < fast.ranked.size(); ++i) {
    ASSERT_EQ(fast.ranked[i].phys_key, ref.ranked[i].phys_key)
        << ctx << " rank " << i;
    ASSERT_EQ(fast.ranked[i].score, ref.ranked[i].score) << ctx << " rank "
                                                         << i;
    ASSERT_EQ(fast.ranked[i].round, ref.ranked[i].round) << ctx << " rank "
                                                         << i;
  }
}

struct Preset {
  const char* name;
  SolverOptions opt;
  bool needs_cp;
};

std::vector<Preset> all_presets() {
  return {{"tomo", tomo_options(), false},
          {"nd_edge", nd_edge_options(), false},
          {"nd_bgpigp", nd_bgpigp_options(), true},
          {"nd_lg", nd_lg_options(), true}};
}

/// The most-traversed working links, strided across the mesh (the shape
/// bench_scale fails), so failures hit many sensor pairs.
std::vector<topo::LinkId> busiest_links(const probe::Mesh& before,
                                        std::size_t num_links,
                                        std::size_t count) {
  std::vector<std::uint32_t> uses(num_links, 0);
  for (const auto& p : before.paths) {
    if (!p.ok) continue;
    for (topo::LinkId l : p.links) ++uses[l.value()];
  }
  std::vector<std::uint32_t> order(num_links);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return uses[a] != uses[b] ? uses[a] > uses[b] : a < b;
  });
  std::vector<topo::LinkId> out;
  for (std::size_t i = 0; i * 3 < order.size() && out.size() < count; ++i) {
    if (uses[order[i * 3]] == 0) break;
    out.push_back(topo::LinkId{order[i * 3]});
  }
  return out;
}

/// Ground-truth control-plane feed for a synthetic-prober episode: IGP
/// down events for failed intradomain links, withdrawals (both session
/// directions) toward every unreachable destination AS for failed
/// interdomain links.
ControlPlaneObs ground_truth_cp(const topo::Topology& topo,
                                const DiagnosisGraph& dg,
                                const std::vector<topo::LinkId>& broken) {
  ControlPlaneObs cp;
  std::set<int> dead_asns;
  for (const auto& p : dg.paths) {
    if (!p.ok_after && p.dest_asn >= 0) dead_asns.insert(p.dest_asn);
  }
  for (topo::LinkId l : broken) {
    const auto& lk = topo.link(l);
    const std::string na = topo.router(lk.a).name;
    const std::string nb = topo.router(lk.b).name;
    if (!lk.interdomain) {
      cp.igp_down_keys.push_back(undirected_key(na, nb));
    } else {
      for (int asn : dead_asns) {
        cp.withdrawals.push_back({na + ">" + nb, asn});
        cp.withdrawals.push_back({nb + ">" + na, asn});
      }
    }
  }
  return cp;
}

/// Run every preset on one synthetic-prober episode and compare the two
/// scorers — both on a shared prebuilt Demands instance (the bench's
/// measurement setup) and through the internally-building entry point.
void differential_episode(std::size_t ases, std::size_t n_sensors,
                          std::size_t n_failures, std::uint64_t seed,
                          bool check_wrapper) {
  topo::RandomInternetParams params;
  params.num_tier1 = 4;
  params.num_tier2 = std::min<std::size_t>(60, 10 + ases / 50);
  params.num_stubs = ases > params.num_tier1 + params.num_tier2
                         ? ases - params.num_tier1 - params.num_tier2
                         : 1;
  params.seed = seed;
  topo::Topology topo = topo::random_internet(params);
  util::Rng rng(seed * 77 + 1);
  auto sensors = probe::place_sensors(topo, probe::PlacementKind::kRandomStub,
                                      n_sensors, rng);
  probe::SyntheticProber prober(topo, std::move(sensors));
  const probe::Mesh before = prober.measure();
  const auto broken = busiest_links(before, topo.num_links(), n_failures);
  ASSERT_FALSE(broken.empty());
  for (topo::LinkId l : broken) topo.set_link_up(l, false);
  const probe::Mesh after = prober.measure();

  const DiagnosisGraph dg =
      build_diagnosis_graph(before, after, /*logical_links=*/true);
  const ControlPlaneObs cp = ground_truth_cp(topo, dg, broken);
  const UhTagMap no_tags;

  for (const auto& pr : all_presets()) {
    const std::string ctx = "ases=" + std::to_string(ases) +
                            " seed=" + std::to_string(seed) + " preset=" +
                            pr.name;
    const ControlPlaneObs* cpp = pr.needs_cp ? &cp : nullptr;
    const Demands demands = build_demands(dg, pr.opt, cpp);
    const Result fast = solve(dg, pr.opt, demands, cpp, &no_tags);
    const Result ref = solve_reference(dg, pr.opt, demands, cpp, &no_tags);
    expect_identical(fast, ref, ctx);
    if (check_wrapper) {
      // The demand-building entry points must agree with the prebuilt
      // path (same Demands in, same Result out).
      expect_identical(solve(dg, pr.opt, cpp, &no_tags), fast,
                       ctx + " (wrapper)");
      expect_identical(solve_reference(dg, pr.opt, cpp, &no_tags), ref,
                       ctx + " (ref wrapper)");
    }
  }
}

TEST(SolverDifferential, SyntheticInternetSeedMatrix) {
  for (std::uint64_t seed : {3u, 17u, 92u}) {
    differential_episode(/*ases=*/400, /*n_sensors=*/24, /*n_failures=*/24,
                         seed, /*check_wrapper=*/true);
  }
}

TEST(SolverDifferential, TenThousandAsSmoke) {
  // One Internet-scale instance inside the CI budget: the sensor count is
  // kept small so mesh construction, not the solvers, stays the bound.
  differential_episode(/*ases=*/10000, /*n_sensors=*/48, /*n_failures=*/64,
                       /*seed=*/42, /*check_wrapper=*/false);
}

/// BGP-simulator episode with looking-glass-resolved UH tags — the
/// cluster-augmentation path the synthetic prober cannot reach (its hops
/// are all identified). Mirrors the regression pin's episode shape.
TEST(SolverDifferential, SimEpisodeWithUhClusters) {
  for (std::uint64_t seed : {101u, 404u}) {
    topo::GeneratorParams params;
    sim::Network net(topo::generate(params));
    net.converge();
    const auto& topo = net.topology();
    net.set_operator_as(topo::AsId{0});

    util::Rng rng(seed);
    const auto sensors =
        probe::place_sensors(topo, probe::PlacementKind::kRandomStub, 8, rng);
    std::set<std::uint32_t> sensor_ases;
    for (const auto& s : sensors) sensor_ases.insert(s.as.value());
    const lg::LgTable lg_table(net);

    probe::Prober ground(net, sensors);
    const probe::Mesh gmesh = ground.measure();
    std::vector<std::uint32_t> blockable;
    for (int asn : gmesh.covered_ases(topo)) {
      const auto v = static_cast<std::uint32_t>(asn);
      if (sensor_ases.count(v) == 0 && v != 0) blockable.push_back(v);
    }
    std::set<std::uint32_t> blocked;
    for (std::uint32_t v : rng.sample(blockable, blockable.size() / 4)) {
      blocked.insert(v);
    }

    probe::Prober prober(net, sensors, blocked);
    const probe::Mesh before = prober.measure();
    const auto victims = rng.sample(gmesh.probed_links(), 2);
    net.start_recording();
    for (topo::LinkId l : victims) net.fail_link(l);
    net.reconverge();
    const probe::Mesh after = prober.measure();
    const ControlPlaneObs cp = exp::collect_control_plane(net);

    std::set<std::uint32_t> avail;
    for (const auto& as : topo.ases()) {
      if (rng.bernoulli(0.7)) avail.insert(as.id.value());
    }
    const lg::LookingGlassService lg_svc(lg_table, std::move(avail),
                                         topo::AsId{0});

    const DiagnosisGraph dg =
        build_diagnosis_graph(before, after, /*logical_links=*/true);
    const UhTagMap tags =
        resolve_uh_tags(before, dg, lg_svc, topo::AsId{0});

    for (const auto& pr : all_presets()) {
      const std::string ctx =
          "sim seed=" + std::to_string(seed) + " preset=" + pr.name;
      const ControlPlaneObs* cpp = pr.needs_cp ? &cp : nullptr;
      const Demands demands = build_demands(dg, pr.opt, cpp);
      expect_identical(solve(dg, pr.opt, demands, cpp, &tags),
                       solve_reference(dg, pr.opt, demands, cpp, &tags), ctx);
    }
  }
}

}  // namespace
}  // namespace netd::core
