#include "core/diagnosability.h"

#include <gtest/gtest.h>

#include "mesh_builder.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

TEST(Diagnosability, EmptyGraphIsZero) {
  const probe::Mesh empty;
  const auto dg = build_diagnosis_graph(empty, empty, false);
  EXPECT_DOUBLE_EQ(diagnosability(dg), 0.0);
}

TEST(Diagnosability, ChainSharedByOnePathIsMinimal) {
  // One path: all links share the single hitting set {path0}: D = 1/n.
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "a@1", "b@1", "c@1", "s1@1!s"})
                     .build();
  const auto dg = build_diagnosis_graph(m, m, false);
  EXPECT_DOUBLE_EQ(diagnosability(dg), 1.0 / 4.0);
}

TEST(Diagnosability, DistinctPathsPerLinkIsOne) {
  // Star: every link is traversed by a unique pair of paths.
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "hub@1", "s1@1!s"})
                     .ok(1, 0, {"s1@1!s", "hub@1", "s0@1!s"})
                     .ok(0, 2, {"s0@1!s", "hub@1", "s2@1!s"})
                     .build();
  const auto dg = build_diagnosis_graph(m, m, false);
  // Edges: s0>hub {p0,p2}, hub>s1 {p0}, s1>hub {p1}, hub>s0 {p1}, hub>s2 {p2}.
  // hub>s0 and s1>hub share {p1}: 4 distinct sets / 5 edges.
  EXPECT_DOUBLE_EQ(diagnosability(dg), 4.0 / 5.0);
}

TEST(Diagnosability, MoreProbesImproveD) {
  const auto sparse =
      MeshBuilder().ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"}).build();
  const auto dense = MeshBuilder()
                         .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                         .ok(2, 1, {"s2@1!s", "a@1", "b@1", "s1@1!s"})
                         .ok(2, 3, {"s2@1!s", "a@1", "s3@1!s"})
                         .build();
  const auto d1 = diagnosability(build_diagnosis_graph(sparse, sparse, false));
  const auto d2 = diagnosability(build_diagnosis_graph(dense, dense, false));
  EXPECT_GT(d2, d1);
}

TEST(Diagnosability, DirectPairIsOne) {
  // Two sensors joined by one link, probed in both directions: each
  // directed edge is hit by exactly its own path — D(G) = 1.
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "s1@1!s"})
                     .ok(1, 0, {"s1@1!s", "s0@1!s"})
                     .build();
  EXPECT_DOUBLE_EQ(diagnosability(build_diagnosis_graph(m, m, false)), 1.0);
}

TEST(Diagnosability, FullMeshOfDirectLinksIsOne) {
  // Three sensors, all pairs joined directly and probed in both
  // directions: 6 directed edges, each with a unique hitting set.
  MeshBuilder b;
  const std::vector<std::string> hops = {"s0@1!s", "s1@1!s", "s2@1!s"};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) b.ok(i, j, {hops[i], hops[j]});
    }
  }
  EXPECT_DOUBLE_EQ(
      diagnosability(build_diagnosis_graph(b.build(), b.build(), false)), 1.0);
}

TEST(Diagnosability, FullMeshThroughSharedBackboneIsBelowOne) {
  // A full sensor mesh funneled through a three-hub backbone. The two
  // middle edges h1>h2 and h2>h3 are both hit by all six paths — one
  // shared hitting set — while each access edge is hit by exactly the
  // paths of its sensor: 8 edges, 7 distinct sets, D(G) = 7/8.
  MeshBuilder b;
  const std::vector<std::string> s = {"s0@1!s", "s1@1!s", "s2@1!s"};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) b.ok(i, j, {s[i], "h1@1", "h2@1", "h3@1", s[j]});
    }
  }
  EXPECT_DOUBLE_EQ(
      diagnosability(build_diagnosis_graph(b.build(), b.build(), false)),
      7.0 / 8.0);
}

TEST(Diagnosability, InUnitInterval) {
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                     .ok(1, 0, {"s1@1!s", "a@1", "s0@1!s"})
                     .build();
  const double d = diagnosability(build_diagnosis_graph(m, m, false));
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(Diagnosability, IgnoresAfterOnlyEdges) {
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"}).build();
  const auto after =
      MeshBuilder().ok(0, 1, {"s0@1!s", "b@1", "s1@1!s"}).build();
  const auto with_reroute = build_diagnosis_graph(before, after, false);
  const auto base = build_diagnosis_graph(before, before, false);
  EXPECT_DOUBLE_EQ(diagnosability(with_reroute), diagnosability(base));
}

}  // namespace
}  // namespace netd::core
