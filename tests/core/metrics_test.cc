#include "core/metrics.h"

#include <gtest/gtest.h>

namespace netd::core {
namespace {

const std::set<std::string> kProbed = {"a", "b", "c", "d", "e",
                                       "f", "g", "h", "i", "j"};

TEST(LinkMetrics, PerfectDiagnosis) {
  const auto m = link_metrics({"a"}, {"a"}, kProbed);
  EXPECT_DOUBLE_EQ(m.sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(m.specificity, 1.0);
  EXPECT_EQ(m.hypothesis_size, 1u);
  EXPECT_EQ(m.num_probed, 10u);
}

TEST(LinkMetrics, TotalMiss) {
  const auto m = link_metrics({"b"}, {"a"}, kProbed);
  EXPECT_DOUBLE_EQ(m.sensitivity, 0.0);
  // 8 true negatives out of 9 non-failed.
  EXPECT_DOUBLE_EQ(m.specificity, 8.0 / 9.0);
}

TEST(LinkMetrics, PartialSensitivity) {
  const auto m = link_metrics({"a", "c"}, {"a", "b"}, kProbed);
  EXPECT_DOUBLE_EQ(m.sensitivity, 0.5);
  EXPECT_DOUBLE_EQ(m.specificity, 7.0 / 8.0);
}

TEST(LinkMetrics, PaperSpecificityExample) {
  // §4: |E| = 150, |F| = 1, |H| = 10 -> specificity = 140/149.
  std::set<std::string> probed;
  for (int i = 0; i < 150; ++i) probed.insert("l" + std::to_string(i));
  std::set<std::string> hyp;
  for (int i = 0; i < 10; ++i) hyp.insert("l" + std::to_string(i));
  const auto m = link_metrics(hyp, {"l0"}, probed);
  EXPECT_DOUBLE_EQ(m.sensitivity, 1.0);
  EXPECT_NEAR(m.specificity, 140.0 / 149.0, 1e-12);
}

TEST(LinkMetrics, EmptyHypothesis) {
  const auto m = link_metrics({}, {"a"}, kProbed);
  EXPECT_DOUBLE_EQ(m.sensitivity, 0.0);
  EXPECT_DOUBLE_EQ(m.specificity, 1.0);
}

TEST(LinkMetrics, HypothesisOutsideProbedDoesNotHurtSpecificity) {
  // Keys outside E (can happen for ground-truth F restricted views) are
  // not counted against the probed universe.
  const auto m = link_metrics({"zz", "a"}, {"a"}, kProbed);
  EXPECT_DOUBLE_EQ(m.specificity, 1.0);
}

TEST(AsMetrics, PerfectAsDiagnosis) {
  const auto m = as_metrics({3}, {3}, {1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(m.sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(m.specificity, 1.0);
}

TEST(AsMetrics, FalsePositivesLowerSpecificity) {
  const auto m = as_metrics({3, 4, 5}, {3}, {1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(m.sensitivity, 1.0);
  EXPECT_DOUBLE_EQ(m.specificity, 0.5);  // 2 of 4 non-failed implicated
}

TEST(AsMetrics, InterdomainFailureCoversTwoAses) {
  const auto m = as_metrics({3}, {3, 4}, {1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(m.sensitivity, 0.5);
}

TEST(AsMetrics, UniverseRestriction) {
  // Hypothesis ASes outside the probed universe are ignored.
  const auto m = as_metrics({3, 99}, {3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(m.specificity, 1.0);
}

}  // namespace
}  // namespace netd::core
