// ND-LG: diagnosis with blocked traceroutes (paper §3.4, §5.4).
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "exp/runner.h"
#include "lg/looking_glass.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"

namespace netd::core {
namespace {

using topo::AsId;
using topo::LinkId;

/// Tiny-topology fixture: tier-2 AS3 blocks traceroutes; a link inside it
/// fails; sensors at stubs 4, 5, 6.
class NdLgTest : public ::testing::Test {
 protected:
  NdLgTest() : net_(topo::tiny_topology()) {
    net_.converge();
    net_.set_operator_as(AsId{0});
    for (std::uint32_t as : {4u, 5u, 6u}) {
      sensors_.push_back(probe::Sensor{
          "s" + std::to_string(sensors_.size()),
          net_.topology().as_of(AsId{as}).routers.front(), AsId{as}});
    }
    table_.emplace(net_);
  }

  LinkId blocked_intra_link() {
    for (const auto& l : net_.topology().links()) {
      if (!l.interdomain &&
          net_.topology().as_of_router(l.a) == AsId{3}) {
        return l.id;
      }
    }
    return LinkId{};
  }

  lg::LookingGlassService all_lgs() {
    std::set<std::uint32_t> avail;
    for (const auto& as : net_.topology().ases()) avail.insert(as.id.value());
    return lg::LookingGlassService(*table_, std::move(avail), AsId{0});
  }

  sim::Network net_;
  std::vector<probe::Sensor> sensors_;
  std::optional<lg::LgTable> table_;
};

TEST_F(NdLgTest, BlamesTheBlockedAsForItsInternalFailure) {
  probe::Prober prober(net_, sensors_, {3u});
  const auto before = prober.measure();
  net_.start_recording();
  net_.fail_link(blocked_intra_link());
  net_.reconverge();
  const auto after = prober.measure();
  const auto cp = exp::collect_control_plane(net_);
  const auto svc = all_lgs();
  const auto out = run_nd_lg(before, after, cp, svc, AsId{0});
  EXPECT_TRUE(out.result.ases.count(3));
}

TEST_F(NdLgTest, BgpIgpMissesTheBlockedAs) {
  probe::Prober prober(net_, sensors_, {3u});
  const auto before = prober.measure();
  net_.start_recording();
  net_.fail_link(blocked_intra_link());
  net_.reconverge();
  const auto after = prober.measure();
  const auto cp = exp::collect_control_plane(net_);
  const auto out = run_nd_bgpigp(before, after, cp);
  // ND-bgpigp ignores unidentified links: AS3 cannot be implicated.
  EXPECT_FALSE(out.result.ases.count(3));
}

TEST_F(NdLgTest, WorksWithOnlyOperatorBgpView) {
  // No AS offers an LG; AS-X's own BGP table still maps UH runs that are
  // downstream of it... here the source-AS vantage is unavailable, so
  // runs the operator cannot see remain unresolved but the algorithm
  // still returns a hypothesis.
  probe::Prober prober(net_, sensors_, {3u});
  const auto before = prober.measure();
  net_.start_recording();
  net_.fail_link(blocked_intra_link());
  net_.reconverge();
  const auto after = prober.measure();
  const auto cp = exp::collect_control_plane(net_);
  const lg::LookingGlassService svc(*table_, {}, AsId{0});
  const auto out = run_nd_lg(before, after, cp, svc, AsId{0});
  EXPECT_FALSE(out.result.hypothesis_edges.empty());
}

TEST_F(NdLgTest, IdentifiedFailureStillFoundWithBlocking) {
  // The failed link is OUTSIDE the blocked AS: ND-LG should localize it
  // at link granularity like ND-edge would.
  probe::Prober prober(net_, sensors_, {3u});
  const auto before = prober.measure();
  // Fail stub 5's uplink (identified, single-homed).
  LinkId uplink;
  for (const auto& l : net_.topology().links()) {
    if (l.interdomain && (net_.topology().as_of_router(l.a) == AsId{5} ||
                          net_.topology().as_of_router(l.b) == AsId{5})) {
      uplink = l.id;
      break;
    }
  }
  net_.start_recording();
  net_.fail_link(uplink);
  net_.reconverge();
  const auto after = prober.measure();
  const auto cp = exp::collect_control_plane(net_);
  const auto svc = all_lgs();
  const auto out = run_nd_lg(before, after, cp, svc, AsId{0});
  EXPECT_TRUE(
      out.result.links.count(exp::link_key(net_.topology(), uplink)));
}

TEST(NdLgPaperTopology, AsSensitivityOnGeneratedTopology) {
  // One blocked transit AS with an internal failure on the paper-scale
  // topology; ND-LG should implicate it.
  sim::Network net(topo::generate(topo::GeneratorParams{}));
  net.converge();
  net.set_operator_as(AsId{0});
  util::Rng rng(53);
  const auto sensors = probe::place_sensors(
      net.topology(), probe::PlacementKind::kRandomStub, 10, rng);
  probe::Prober ground(net, sensors);
  const auto gmesh = ground.measure();
  // Candidate tier-2 internal links on the probed paths.
  std::vector<std::pair<LinkId, AsId>> candidates;
  for (LinkId l : gmesh.probed_links()) {
    const auto& link = net.topology().link(l);
    const AsId as = net.topology().as_of_router(link.a);
    if (!link.interdomain &&
        net.topology().as_of(as).cls == topo::AsClass::kTier2) {
      candidates.push_back({l, as});
    }
  }
  if (candidates.empty()) GTEST_SKIP() << "no probed tier-2 internal link";
  const lg::LgTable table(net);
  std::set<std::uint32_t> avail;
  for (const auto& as : net.topology().ases()) avail.insert(as.id.value());
  const lg::LookingGlassService svc(table, avail, AsId{0});
  const auto snap = net.snapshot();

  bool exercised = false;
  for (const auto& [victim, blocked] : candidates) {
    probe::Prober prober(net, sensors, {blocked.value()});
    const auto before = prober.measure();
    net.start_recording();
    net.fail_link(victim);
    net.reconverge();
    const auto after = prober.measure();
    bool invoked = false;
    for (std::size_t k = 0; k < before.paths.size(); ++k) {
      invoked = invoked || (before.paths[k].ok && !after.paths[k].ok);
    }
    if (invoked) {
      const auto cp = exp::collect_control_plane(net);
      const auto out = run_nd_lg(before, after, cp, svc, AsId{0});
      EXPECT_TRUE(out.result.ases.count(static_cast<int>(blocked.value())));
      exercised = true;
    }
    net.restore(snap);
    net.set_operator_as(AsId{0});
    if (exercised) break;
  }
  if (!exercised) GTEST_SKIP() << "no tier-2 internal failure broke a path";
}

}  // namespace
}  // namespace netd::core
