#include "core/json_export.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "mesh_builder.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

AlgorithmOutput simple_case() {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                         .build();
  return run_tomo(before, after);
}

TEST(JsonExport, SummaryFields) {
  const auto out = simple_case();
  const auto json = to_json(out.graph, out.result);
  EXPECT_NE(json.find("\"pairs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rerouted\":0"), std::string::npos);
  EXPECT_NE(json.find("\"unexplained_failure_sets\":0"), std::string::npos);
}

TEST(JsonExport, HypothesisEntries) {
  const auto out = simple_case();
  const auto json = to_json(out.graph, out.result);
  EXPECT_NE(json.find("\"link\":\"a|b\""), std::string::npos);
  EXPECT_NE(json.find("\"score\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ases\":[1]"), std::string::npos);
  EXPECT_NE(json.find("\"implicated_ases\":[1]"), std::string::npos);
}

TEST(JsonExport, BalancedBracesAndQuotes) {
  const auto out = simple_case();
  const auto json = to_json(out.graph, out.result);
  int depth = 0;
  std::size_t quotes = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0u);
  EXPECT_FALSE(in_string);
}

TEST(JsonExport, LogicalFlagSurfaces) {
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@1!s", "a@1", "b@2", "c@3", "s1@3!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s", "a@1"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
          .build();
  const auto out = run_nd_edge(before, after);
  const auto json = to_json(out.graph, out.result);
  EXPECT_NE(json.find("\"logical\":true"), std::string::npos);
}

TEST(JsonEscape, ControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape("plain"), "plain");
}

}  // namespace
}  // namespace netd::core
