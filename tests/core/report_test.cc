#include "core/report.h"

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "mesh_builder.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

AlgorithmOutput simple_case() {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                         .build();
  return run_tomo(before, after);
}

TEST(Report, ContainsSummaryCounts) {
  const auto out = simple_case();
  const auto report = render_report(out.graph, out.result);
  EXPECT_NE(report.find("sensor pairs: 2 (1 failed, 0 rerouted)"),
            std::string::npos);
  EXPECT_NE(report.find("hypothesis:"), std::string::npos);
}

TEST(Report, ListsHypothesisLinksWithEvidence) {
  const auto out = simple_case();
  const auto report = render_report(out.graph, out.result);
  EXPECT_NE(report.find("a|b"), std::string::npos);
  EXPECT_NE(report.find("explains 1 failed path(s)"), std::string::npos);
  EXPECT_NE(report.find("AS1"), std::string::npos);
}

TEST(Report, MarksGroundTruth) {
  const auto out = simple_case();
  const std::set<std::string> truth = {"a|b"};
  const auto report = render_report(out.graph, out.result, &truth);
  EXPECT_NE(report.find("[ACTUAL FAILURE]"), std::string::npos);
}

TEST(Report, FlagsLogicalEvidence) {
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@1!s", "a@1", "b@2", "c@3", "s1@3!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s", "a@1"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
          .build();
  const auto out = run_nd_edge(before, after);
  const auto report = render_report(out.graph, out.result);
  EXPECT_NE(report.find("logical link"), std::string::npos);
}

TEST(Report, ReportsUnexplainedSets) {
  // Misconfiguration seen by plain Tomo: unexplainable failure set.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                          .ok(2, 1, {"s2@1!s", "a@1", "s1@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(2, 1, {"s2@1!s", "a@1", "s1@1!s"})
                         .build();
  // hmm: path 0->1 edges s0>a, a>s1; working path covers a>s1 but not
  // s0>a, so it IS explainable. Make all edges shared:
  const auto out = run_tomo(before, after);
  (void)out;
  const auto before2 = MeshBuilder()
                           .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                           .ok(0, 2, {"s0@1!s", "a@1", "s1@1!s", "s2@1!s"})
                           .build();
  const auto after2 =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "s1@1!s", "s2@1!s"})
          .build();
  const auto out2 = run_tomo(before2, after2);
  const auto report = render_report(out2.graph, out2.result);
  EXPECT_NE(report.find("unexplained"), std::string::npos);
}

TEST(Report, ImplicatedAsSection) {
  const auto out = simple_case();
  const auto report = render_report(out.graph, out.result);
  EXPECT_NE(report.find("implicated ASes: AS1"), std::string::npos);
}

}  // namespace
}  // namespace netd::core

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

TEST(Report, UnresolvedUhLinksShowUnknownAs) {
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@1!s", "u1", "u2", "s1@2!s"}).build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.uh_clustering = true;
  opt.ignore_unidentified = false;
  UhTagMap tags;  // nothing resolvable
  const auto res = solve(dg, opt, nullptr, &tags);
  const auto report = render_report(dg, res);
  EXPECT_NE(report.find("unidentified (traceroute-blocked) hop"),
            std::string::npos);
  EXPECT_NE(report.find("unresolvable"), std::string::npos);
}

TEST(Report, CountsReroutedPairs) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "b@1", "s2@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "c@1", "s2@1!s"})
                         .build();
  const auto out = run_nd_edge(before, after);
  const auto report = render_report(out.graph, out.result);
  EXPECT_NE(report.find("(1 failed, 1 rerouted)"), std::string::npos);
}

}  // namespace
}  // namespace netd::core
