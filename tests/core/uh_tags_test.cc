// UH -> AS tagging via Looking Glass queries (paper §3.4, Fig. 4).
#include <gtest/gtest.h>

#include "core/uh_tags.h"
#include "lg/looking_glass.h"
#include "mesh_builder.h"
#include "sim/network.h"
#include "topo/generator.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;
using topo::AsId;

/// Fixture with a real LG table from the tiny topology; traceroute path
/// 4 -> 6 runs AS4 - AS2 - AS0 - AS1 - AS3 - AS6.
class UhTagsTest : public ::testing::Test {
 protected:
  UhTagsTest() : net_(topo::tiny_topology()) {
    net_.converge();
    table_.emplace(net_);
  }

  lg::LookingGlassService service(std::set<std::uint32_t> avail,
                                  AsId op = AsId{0}) {
    return lg::LookingGlassService(*table_, std::move(avail), op);
  }

  sim::Network net_;
  std::optional<lg::LgTable> table_;
};

TEST_F(UhTagsTest, SingleAsRunGetsUnambiguousTag) {
  // AS3's routers replaced by stars between AS1 (r b) and AS6 (dest).
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@4!s", "a@4", "b@1", "u1", "u2", "c@6", "s1@6!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  const auto svc = service({4u});  // only the source AS has an LG
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{0});
  const auto* t1 = tags.find(*dg.g.find_node("u1"));
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(*t1, std::vector<int>{3});
  const auto* t2 = tags.find(*dg.g.find_node("u2"));
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(*t2, std::vector<int>{3});
}

TEST_F(UhTagsTest, TwoAsSegmentGetsCombinedTag) {
  // Stars span AS0 and AS1 between AS2 and AS3.
  const auto before =
      MeshBuilder()
          .ok(0, 1,
              {"s0@4!s", "a@4", "b@2", "u1", "u2", "c@3", "d@6", "s1@6!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  const auto svc = service({4u});
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{0});
  const auto* t = tags.find(*dg.g.find_node("u1"));
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(*t, std::vector<int>({0, 1}));  // {B, D} combined tag
}

TEST_F(UhTagsTest, NoVantageMeansNoTag) {
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@4!s", "a@4", "b@1", "u1", "c@6", "s1@6!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  // No LGs at all and the operator (AS5) is not on the path.
  const auto svc = service({}, AsId{5});
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{5});
  EXPECT_EQ(tags.find(*dg.g.find_node("u1")), nullptr);
}

TEST_F(UhTagsTest, OperatorOwnViewActsAsVantage) {
  // AS0 is on the path upstream of the run: its own BGP view maps the
  // downstream stars even with zero LGs deployed.
  const auto before =
      MeshBuilder()
          .ok(0, 1,
              {"s0@4!s", "a@4", "b@0", "e@1", "u1", "c@6", "s1@6!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  const auto svc = service({}, AsId{0});
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{0});
  const auto* t = tags.find(*dg.g.find_node("u1"));
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(*t, std::vector<int>{3});
}

TEST_F(UhTagsTest, LaterVantageUsedWhenSourceLgMissing) {
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@4!s", "a@4", "b@2", "f@0", "g@1", "u1", "c@6", "s1@6!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  // Source AS4 has no LG, AS2 does.
  const auto svc = service({2u}, AsId{5});
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{5});
  const auto* t = tags.find(*dg.g.find_node("u1"));
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(*t, std::vector<int>{3});
}

TEST_F(UhTagsTest, FailedBeforePathsAreSkipped) {
  const auto before =
      MeshBuilder().fail(0, 1, {"s0@4!s", "a@4", "u1"}).build();
  const auto dg = build_diagnosis_graph(before, before, false);
  const auto svc = service({4u});
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{0});
  EXPECT_TRUE(tags.tags.empty());
}

TEST_F(UhTagsTest, InconsistentLgAnswerLeavesUnresolved) {
  // The LG's AS path for this destination does not contain the bounding
  // ASes in order (a synthetic path that skips AS1 entirely would be
  // inconsistent) — simulate by bounding the run with ASes that are not
  // adjacent on the real AS path.
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@4!s", "a@4", "b@3", "u1", "c@2", "s1@5!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  const auto svc = service({4u});
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{0});
  // Real AS path 4->5 is 4-2-5: AS3 never appears => unresolved.
  EXPECT_EQ(tags.find(*dg.g.find_node("u1")), nullptr);
}

}  // namespace
}  // namespace netd::core

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

TEST_F(UhTagsTest, VantagePastTheRunIsNotUsed) {
  // The only LG is at AS6 — *after* the UH run — so its AS path cannot
  // cover the run and the UHs stay unresolved.
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@4!s", "a@4", "b@1", "u1", "c@6", "s1@6!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  const auto svc = service({6u}, AsId{5});
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{5});
  EXPECT_EQ(tags.find(*dg.g.find_node("u1")), nullptr);
}

TEST_F(UhTagsTest, MultipleRunsOnOnePathTaggedIndependently) {
  // Two separate UH runs: AS2's routers starred between AS4 and AS0, and
  // AS3's starred between AS1 and AS6.
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@4!s", "a@4", "u1", "f@0", "g@1", "u2", "c@6",
                     "s1@6!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  const auto svc = service({4u});
  const auto tags = resolve_uh_tags(before, dg, svc, AsId{0});
  const auto* t1 = tags.find(*dg.g.find_node("u1"));
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(*t1, std::vector<int>{2});
  const auto* t2 = tags.find(*dg.g.find_node("u2"));
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(*t2, std::vector<int>{3});
}

}  // namespace
}  // namespace netd::core
