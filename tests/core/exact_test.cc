// Exact minimum hitting set (branch and bound) vs the greedy.
#include <gtest/gtest.h>

#include "core/exact.h"
#include "mesh_builder.h"
#include "util/rng.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

Demands make_demands(const std::vector<std::vector<std::uint32_t>>& sets,
                     std::uint32_t n_edges) {
  Demands d;
  d.failure_sets = sets;
  d.admissible.assign(n_edges, 1);
  for (std::uint32_t e = 0; e < n_edges; ++e) d.candidates.push_back(e);
  return d;
}

TEST(ExactHittingSet, SingleSet) {
  const auto res = minimum_hitting_set(make_demands({{0, 1, 2}}, 3));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->size(), 1u);
}

TEST(ExactHittingSet, DisjointSetsNeedOneEach) {
  const auto res =
      minimum_hitting_set(make_demands({{0, 1}, {2, 3}, {4, 5}}, 6));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->size(), 3u);
}

TEST(ExactHittingSet, SharedElementCoversAll) {
  const auto res =
      minimum_hitting_set(make_demands({{0, 7}, {1, 7}, {2, 7}}, 8));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(*res, std::vector<std::uint32_t>{7});
}

TEST(ExactHittingSet, BeatsNaiveGreedyOnAdversarialInstance) {
  // Classic greedy-trap: element 9 hits sets {0,1}, element 8 hits {2,3},
  // but a decoy 7 hits three sets {0,2,4}; greedy takes 7 first and needs
  // three picks total; the optimum is {9, 8, x} too... construct the
  // standard instance where greedy needs 3 and optimal needs 2:
  //   S1={a,b} S2={a,c} S3={b,d} S4={c,d}
  // optimal {b,c} (hits S1,S3 and S2,S4); greedy may pick a (hits S1,S2)
  // then needs b/d and c/d -> 3 elements.
  const auto res = minimum_hitting_set(
      make_demands({{0, 1}, {0, 2}, {1, 3}, {2, 3}}, 4));
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->size(), 2u);
}

TEST(ExactHittingSet, UnexplainableDemandsSkipped) {
  Demands d = make_demands({{0, 1}, {2}}, 3);
  d.admissible[2] = 0;  // demand {2} has no admissible candidate
  const auto res = minimum_hitting_set(d);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->size(), 1u);
}

TEST(ExactHittingSet, EmptyInstance) {
  const auto res = minimum_hitting_set(make_demands({}, 4));
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->empty());
}

TEST(ExactHittingSet, BudgetExhaustionReturnsNullopt) {
  // 12 pairwise-overlapping random sets, budget of 1 node.
  ExactOptions opt;
  opt.max_nodes = 1;
  const auto res = minimum_hitting_set(
      make_demands({{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 5), opt);
  EXPECT_FALSE(res.has_value());
}

TEST(ExactHittingSet, NeverLargerThanGreedyOnRealEpisodes) {
  // Synthetic diagnosis instances: exact |H| <= greedy |H| (greedy adds
  // whole tie sets, so it is often strictly larger).
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                          .ok(3, 1, {"s3@1!s", "d@1", "b@1", "s1@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                         .fail(3, 1, {"s3@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  const auto greedy = solve(dg, opt);
  const auto demands = build_demands(dg, opt);
  ExactOptions eopt;
  eopt.cover_reroutes = false;
  const auto exact = minimum_hitting_set(demands, eopt);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(exact->size(), greedy.hypothesis_edges.size());
  EXPECT_GE(exact->size(), 1u);
  // The exact solution hits every non-empty failure set.
  for (std::size_t s = 0; s < demands.failure_sets.size(); ++s) {
    const auto fs = demands.failure_sets[s];
    bool has_admissible = false;
    for (auto e : fs) has_admissible = has_admissible || demands.admissible[e];
    if (!has_admissible) continue;
    bool hit = false;
    for (auto e : *exact) {
      hit = hit || std::find(fs.begin(), fs.end(), e) != fs.end();
    }
    EXPECT_TRUE(hit);
  }
}

TEST(ExactHittingSet, RandomInstancesAreValidAndMinimalish) {
  util::Rng rng(77);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint32_t n = 6 + rng.uniform(0, 6);
    std::vector<std::vector<std::uint32_t>> sets;
    const std::size_t k = 2 + rng.uniform(0, 5);
    for (std::size_t s = 0; s < k; ++s) {
      std::vector<std::uint32_t> set;
      const std::size_t len = 1 + rng.uniform(0, 3);
      for (std::size_t i = 0; i < len; ++i) {
        set.push_back(rng.uniform(0, n - 1));
      }
      sets.push_back(set);
    }
    const auto res = minimum_hitting_set(make_demands(sets, n));
    ASSERT_TRUE(res.has_value());
    // Valid cover.
    for (const auto& set : sets) {
      bool hit = false;
      for (auto e : *res) {
        hit = hit || std::find(set.begin(), set.end(), e) != set.end();
      }
      EXPECT_TRUE(hit);
    }
    // No single element can be dropped (local minimality of an optimum).
    for (std::size_t drop = 0; drop < res->size(); ++drop) {
      bool still_covers = true;
      for (const auto& set : sets) {
        bool hit = false;
        for (std::size_t i = 0; i < res->size(); ++i) {
          if (i == drop) continue;
          hit = hit ||
                std::find(set.begin(), set.end(), (*res)[i]) != set.end();
        }
        still_covers = still_covers && hit;
      }
      EXPECT_FALSE(still_covers) << "element " << drop << " is redundant";
    }
  }
}

}  // namespace
}  // namespace netd::core
