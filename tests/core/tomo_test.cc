// Tomo on the paper's Fig. 1 single-source tree and related scenarios.
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "mesh_builder.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

/// Fig. 1: s1 probes s2 (via r6-r7-r9-r11) and s3 (via r6-r7-r8-r10).
/// Only the path to s2 breaks (r9-r11 failed). Every link in the failed
/// path that is not shared with the working path is a candidate; they all
/// tie, giving the chain r7-r9-r11-s2.
TEST(Tomo, Figure1Scenario) {
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s1@1!s", "r6@1", "r7@1", "r9@1", "r11@1", "s2@1!s"})
          .ok(0, 2, {"s1@1!s", "r6@1", "r7@1", "r8@1", "r10@1", "s3@1!s"})
          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s1@1!s", "r6@1", "r7@1", "r9@1"})
          .ok(0, 2, {"s1@1!s", "r6@1", "r7@1", "r8@1", "r10@1", "s3@1!s"})
          .build();
  const auto out = run_tomo(before, after);
  // Shared prefix (s1-r6, r6-r7) lies on the working path: exonerated.
  EXPECT_FALSE(out.result.links.count("r6|s1"));
  EXPECT_FALSE(out.result.links.count("r6|r7"));
  // The unshared suffix cannot be narrowed down further (paper §2.1).
  EXPECT_EQ(out.result.links,
            std::set<std::string>({"r7|r9", "r11|r9", "r11|s2"}));
}

TEST(Tomo, CrossProbesNarrowTheChain) {
  // Cross probes exonerate the access links that carry working paths; the
  // remaining candidates all tie at score 1 and are reported together
  // (the paper's Algorithm 1 adds the whole set of maximum-score links).
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
          .ok(1, 0, {"s1@1!s", "b@1", "a@1", "s0@1!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "s2@1!s"})
          .ok(1, 2, {"s1@1!s", "b@1", "s2@1!s"})
          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s", "a@1"})
          .fail(1, 0, {"s1@1!s", "b@1"})
          .ok(0, 2, {"s0@1!s", "a@1", "s2@1!s"})
          .ok(1, 2, {"s1@1!s", "b@1", "s2@1!s"})
          .build();
  const auto out = run_tomo(before, after);
  EXPECT_TRUE(out.result.links.count("a|b"));
  // The links of the two working spokes are exonerated.
  EXPECT_FALSE(out.result.links.count("a|s2"));
  EXPECT_FALSE(out.result.links.count("b|s2"));
  EXPECT_EQ(out.result.links,
            std::set<std::string>({"a|b", "a|s0", "b|s1"}));
}

TEST(Tomo, MissesReroutableFailure) {
  // Both paths keep working after rerouting around x-y: Tomo sees no
  // failed path at all (it would not even be invoked).
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@1!s", "x@1", "y@1", "s1@1!s"}).build();
  const auto after =
      MeshBuilder().ok(0, 1, {"s0@1!s", "x@1", "z@1", "y@1", "s1@1!s"}).build();
  const auto out = run_tomo(before, after);
  EXPECT_TRUE(out.result.links.empty());
}

TEST(Tomo, MisconfigurationYieldsZeroSensitivity) {
  // Partial failure of a-b: works for s2, fails for s1 (paper §2.5 #1).
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@2", "s1@2!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "s2@2!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s", "a@1"})
                         .ok(0, 2, {"s0@1!s", "a@1", "b@2", "s2@2!s"})
                         .build();
  const auto out = run_tomo(before, after);
  // Tomo never blames the misconfigured interdomain link a-b.
  EXPECT_FALSE(out.result.links.count("a|b"));
}

TEST(Tomo, GraphIsBuiltWithoutLogicalLinks) {
  const auto m =
      MeshBuilder().ok(0, 1, {"s0@1!s", "a@1", "b@2", "s1@2!s"}).build();
  const auto out = run_tomo(m, m);
  for (std::size_t i = 0; i < out.graph.edges.size(); ++i) {
    EXPECT_FALSE(out.graph.edges[i].logical);
  }
}

TEST(Tomo, MultipleIndependentFailuresAllExplained) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                          .ok(2, 3, {"s2@1!s", "b@1", "s3@1!s"})
                          .ok(4, 5, {"s4@1!s", "c@1", "s5@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .fail(2, 3, {"s2@1!s"})
                         .fail(4, 5, {"s4@1!s"})
                         .build();
  const auto out = run_tomo(before, after);
  EXPECT_EQ(out.result.unexplained_failure_sets, 0u);
  EXPECT_GE(out.result.links.size(), 3u);
}

}  // namespace
}  // namespace netd::core
