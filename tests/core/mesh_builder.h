// Test helper: construct synthetic probe::Mesh objects without a simulator,
// so the diagnosis algorithms can be exercised on hand-drawn scenarios
// (e.g. the paper's Fig. 1 tree).
#pragma once

#include <string>
#include <vector>

#include "probe/prober.h"

namespace netd::core::testing {

/// Hop spec "label@asn" (identified router), "label@asn!s" (sensor),
/// or "label" (unidentified, asn unknown).
inline probe::Hop make_hop(const std::string& spec) {
  probe::Hop h;
  const auto at = spec.find('@');
  if (at == std::string::npos) {
    h.label = spec;
    h.kind = graph::NodeKind::kUnidentified;
    h.asn = -1;
    return h;
  }
  h.label = spec.substr(0, at);
  std::string rest = spec.substr(at + 1);
  if (!rest.empty() && rest.back() == 's') {
    h.kind = graph::NodeKind::kSensor;
    rest.pop_back();
    if (!rest.empty() && rest.back() == '!') rest.pop_back();
  } else {
    h.kind = graph::NodeKind::kRouter;
  }
  h.asn = std::stoi(rest);
  return h;
}

class MeshBuilder {
 public:
  /// Adds a working path src->dst through the listed hops.
  MeshBuilder& ok(std::size_t src, std::size_t dst,
                  const std::vector<std::string>& hops) {
    return add(src, dst, hops, true);
  }

  /// Adds a failed path (hops are what the truncated traceroute saw).
  MeshBuilder& fail(std::size_t src, std::size_t dst,
                    const std::vector<std::string>& hops) {
    return add(src, dst, hops, false);
  }

  [[nodiscard]] probe::Mesh build() const { return mesh_; }

 private:
  MeshBuilder& add(std::size_t src, std::size_t dst,
                   const std::vector<std::string>& hops, bool is_ok) {
    probe::TracePath p;
    p.src = src;
    p.dst = dst;
    p.ok = is_ok;
    for (const auto& s : hops) p.hops.push_back(make_hop(s));
    mesh_.paths.push_back(std::move(p));
    return *this;
  }

  probe::Mesh mesh_;
};

}  // namespace netd::core::testing
