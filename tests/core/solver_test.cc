#include "core/solver.h"

#include "core/algorithms.h"

#include <gtest/gtest.h>

#include "mesh_builder.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

/// Two sensors, one failed path: every link of the path ties at score 1,
/// so the paper's algorithm returns all of them.
TEST(Solver, SingleFailedPathReturnsWholeChain) {
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"}).build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = solve(dg, SolverOptions{});
  EXPECT_EQ(res.links.size(), 3u);  // s0|a, a|b, b|s1
  EXPECT_EQ(res.unexplained_failure_sets, 0u);
}

TEST(Solver, WorkingPathExoneratesSharedLinks) {
  // 0->1 fails; 0->2 works and shares the first link.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = solve(dg, SolverOptions{});
  EXPECT_FALSE(res.links.count("a|s0"));
  EXPECT_TRUE(res.links.count("a|b"));
  EXPECT_TRUE(res.links.count("b|s1"));
}

TEST(Solver, GreedyPrefersLinkCoveringMostFailures) {
  // Three failed paths all share link a-b; each also has a private tail.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "c@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "b@1", "d@1", "s2@1!s"})
                          .ok(0, 3, {"s0@1!s", "a@1", "b@1", "e@1", "s3@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .fail(0, 2, {"s0@1!s"})
                         .fail(0, 3, {"s0@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = solve(dg, SolverOptions{});
  // The shared prefix links (score 3) are chosen; private tails (score 1)
  // are all explained by then and never enter H.
  EXPECT_EQ(res.links, std::set<std::string>({"a|s0", "a|b"}));
  EXPECT_EQ(res.unexplained_failure_sets, 0u);
}

TEST(Solver, HypothesisIntersectsEveryExplainableFailureSet) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(2, 3, {"s2@1!s", "c@1", "d@1", "s3@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .fail(2, 3, {"s2@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = solve(dg, SolverOptions{});
  // Independent failures need separate explanations.
  bool first = false, second = false;
  for (const auto& l : res.links) {
    if (l == "a|b" || l == "s0|a" || l == "b|s1") first = true;
    if (l == "c|d" || l == "s2|c" || l == "d|s3") second = true;
  }
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
  EXPECT_EQ(res.unexplained_failure_sets, 0u);
}

TEST(Solver, MisconfigBlindWithoutLogicalLinks) {
  // Link a-b carries a working path, yet the path to s1 through it fails
  // (partial failure). Plain Tomo can explain nothing.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@2", "s1@2!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "s2@2!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s", "a@1"})
                         .ok(0, 2, {"s0@1!s", "a@1", "b@2", "s2@2!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = solve(dg, SolverOptions{});
  // Every link of the failed path is on the working path except b->s1.
  EXPECT_EQ(res.links, std::set<std::string>{"b|s1"});
}

TEST(Solver, RerouteSetsRecoverRerouteableFailures) {
  // Path 0->1 fails hard; path 0->2 reroutes from a-c to a-d.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "a@1", "d@1", "s2@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);

  SolverOptions tomo;  // no reroutes
  const auto rt = solve(dg, tomo);
  // Tomo believes the old 0->2 path still works: a-c exonerated.
  EXPECT_FALSE(rt.links.count("a|c"));

  SolverOptions nd;
  nd.use_reroutes = true;
  const auto re = solve(dg, nd);
  // ND-edge adds a reroute set {a-c, c-s2} and hypothesizes from it.
  const bool reroute_explained =
      re.links.count("a|c") != 0 || re.links.count("c|s2") != 0;
  EXPECT_TRUE(reroute_explained);
}

TEST(Solver, RerouteWeightsChangeScores) {
  // One failure set {x} and two reroute sets both containing y.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "x@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "y@1", "s2@1!s"})
                          .ok(0, 3, {"s0@1!s", "y@1", "s3@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "z@1", "s2@1!s"})
                         .ok(0, 3, {"s0@1!s", "z@1", "s3@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.use_reroutes = true;
  opt.weight_reroutes = 0.0;  // ignore reroutes entirely
  const auto res = solve(dg, opt);
  for (const auto& l : res.links) {
    EXPECT_TRUE(l == "s0|x" || l == "s1|x") << l;
  }
}

TEST(Solver, IgpSeedExplainsMatchingFailureSets) {
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"}).build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.use_control_plane = true;
  ControlPlaneObs cp;
  cp.igp_down_keys = {"a|b"};
  const auto res = solve(dg, opt, &cp);
  // The IGP-confirmed link explains the failure alone: exact diagnosis.
  EXPECT_EQ(res.links, std::set<std::string>{"a|b"});
}

TEST(Solver, WithdrawalPrunesUpstreamLinks) {
  // Failed path s0 -> a -> b -> c -> s1; withdrawal for AS5's prefix
  // received at b from c proves the failure is beyond c.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "c@5", "s1@5!s"})
                          .build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.use_control_plane = true;
  ControlPlaneObs cp;
  cp.withdrawals = {{"b>c", 5}};
  const auto res = solve(dg, opt, &cp);
  EXPECT_FALSE(res.links.count("s0|a"));
  EXPECT_FALSE(res.links.count("a|b"));
  EXPECT_FALSE(res.links.count("b|c"));
  EXPECT_TRUE(res.links.count("c|s1"));
}

TEST(Solver, WithdrawalForOtherDestinationDoesNotPrune) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "c@5", "s1@5!s"})
                          .build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.use_control_plane = true;
  ControlPlaneObs cp;
  cp.withdrawals = {{"b>c", 7}};  // different prefix
  const auto res = solve(dg, opt, &cp);
  EXPECT_EQ(res.links.size(), 4u);  // whole chain ties
}

TEST(Solver, UnidentifiedLinksIgnoredByDefault) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "uh:p0-1:h0", "b@2", "s1@2!s"})
                          .build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = solve(dg, SolverOptions{});
  for (graph::EdgeId e : res.hypothesis_edges) {
    EXPECT_FALSE(dg.info(e).unidentified);
  }
}

TEST(Solver, UhClusteringKeepsUnidentifiedCandidates) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "uh:p0-1:h0", "b@2", "s1@2!s"})
                          .build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.uh_clustering = true;
  opt.ignore_unidentified = false;
  UhTagMap tags;
  const auto uh = dg.g.find_node("uh:p0-1:h0");
  ASSERT_TRUE(uh.has_value());
  tags.tags[uh->value()] = {9};
  const auto res = solve(dg, opt, nullptr, &tags);
  bool any_uh = false;
  for (graph::EdgeId e : res.hypothesis_edges) {
    any_uh = any_uh || dg.info(e).unidentified;
  }
  EXPECT_TRUE(any_uh);
  EXPECT_TRUE(res.ases.count(9));
}

TEST(Solver, ClusteredLinksShareScore) {
  // Two failed paths, each crossing the same blocked AS as a run of two
  // UHs tagged {9}. The UH-UH links cluster (same tags, different paths,
  // one failure set each), so their joint score (2) beats every
  // identified link (1) and the cluster alone explains both failures.
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@1!s", "a@1", "u1", "u2", "b@2", "s1@2!s"})
          .ok(2, 3, {"s2@3!s", "c@3", "u3", "u4", "d@2", "s3@2!s"})
          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .fail(2, 3, {"s2@3!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.uh_clustering = true;
  opt.ignore_unidentified = false;
  UhTagMap tags;
  for (const char* u : {"u1", "u2", "u3", "u4"}) {
    tags.tags[dg.g.find_node(u)->value()] = {9};
  }
  const auto res = solve(dg, opt, nullptr, &tags);
  EXPECT_EQ(res.unexplained_failure_sets, 0u);
  ASSERT_FALSE(res.hypothesis_edges.empty());
  for (graph::EdgeId e : res.hypothesis_edges) {
    EXPECT_TRUE(dg.info(e).unidentified);
  }
  EXPECT_EQ(res.ases, std::set<int>({9}));
}

TEST(Solver, UnresolvedUhTagsCountAsUnknown) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "u1", "s1@2!s"})
                          .build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.uh_clustering = true;
  opt.ignore_unidentified = false;
  UhTagMap tags;  // empty: unresolved
  const auto res = solve(dg, opt, nullptr, &tags);
  EXPECT_GT(res.unknown_as_links, 0u);
}

TEST(Solver, EmptyFailureSetsAreReportedUnexplained) {
  // All links of the failed path lie on working paths (a misconfig seen
  // without logical links): nothing can explain the failure.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "s1@1!s", "s2@1!s"})
                          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "s1@1!s", "s2@1!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = solve(dg, SolverOptions{});
  EXPECT_TRUE(res.links.empty());
  EXPECT_EQ(res.unexplained_failure_sets, 1u);
}

TEST(Solver, NoFailuresYieldsEmptyHypothesis) {
  const auto m = MeshBuilder().ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"}).build();
  const auto dg = build_diagnosis_graph(m, m, false);
  const auto res = solve(dg, SolverOptions{});
  EXPECT_TRUE(res.links.empty());
  EXPECT_TRUE(res.hypothesis_edges.empty());
}

}  // namespace
}  // namespace netd::core

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

TEST(SolverRanking, StrongestEvidenceFirst) {
  // Link a-b breaks three paths; the private tails break one each — but
  // ties are absorbed, so compare a shared (score 3) vs an isolated
  // failure (score 1).
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "c@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "b@1", "d@1", "s2@1!s"})
                          .ok(0, 3, {"s0@1!s", "a@1", "b@1", "e@1", "s3@1!s"})
                          .ok(4, 5, {"s4@1!s", "z@1", "s5@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .fail(0, 2, {"s0@1!s"})
                         .fail(0, 3, {"s0@1!s"})
                         .fail(4, 5, {"s4@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = solve(dg, SolverOptions{});
  ASSERT_GE(res.ranked.size(), 2u);
  EXPECT_DOUBLE_EQ(res.ranked.front().score, 3.0);
  EXPECT_EQ(res.ranked.front().round, 0);
  // The isolated failure's links come later with score 1.
  bool saw_isolated = false;
  for (const auto& r : res.ranked) {
    if (r.phys_key == "s4|z" || r.phys_key == "s5|z") {
      saw_isolated = true;
      EXPECT_DOUBLE_EQ(r.score, 1.0);
      EXPECT_GT(r.round, 0);
    }
  }
  EXPECT_TRUE(saw_isolated);
  // ranked covers exactly the hypothesis keys.
  std::set<std::string> keys;
  for (const auto& r : res.ranked) keys.insert(r.phys_key);
  EXPECT_EQ(keys, res.links);
}

TEST(SolverRanking, IgpSeedsRankFirst) {
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"}).build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@1!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  SolverOptions opt;
  opt.use_control_plane = true;
  ControlPlaneObs cp;
  cp.igp_down_keys = {"a|b"};
  const auto res = solve(dg, opt, &cp);
  ASSERT_FALSE(res.ranked.empty());
  EXPECT_EQ(res.ranked.front().phys_key, "a|b");
  EXPECT_EQ(res.ranked.front().round, -1);
}

TEST(SolverWithdrawal, MisconfigAtWithdrawalLinkSurvivesPrune) {
  // The withdrawal for dest prefix 2 arrives at a from b — and the
  // misconfiguration IS at b's export toward a. The physical prune must
  // keep the logical edges of a>b so the misconfigured link stays
  // accusable (the solver's documented exception).
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@2", "c@3", "s1@3!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
                          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s", "a@1"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, after, true);
  SolverOptions opt = nd_bgpigp_options();
  ControlPlaneObs cp;
  cp.withdrawals = {{"a>b", 3}};
  const auto res = solve(dg, opt, &cp);
  EXPECT_TRUE(res.links.count("a|b"));
  EXPECT_FALSE(res.links.count("a|s0"));  // upstream still pruned
}

}  // namespace
}  // namespace netd::core
