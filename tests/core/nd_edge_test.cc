// ND-edge: logical links + reroute sets (paper §3.1-3.2), exercised both
// on hand-built meshes and through the simulator.
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "exp/runner.h"
#include "mesh_builder.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;
using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::RouterId;

TEST(NdEdge, LogicalLinksCatchTheMisconfiguredLink) {
  // Fig. 3 shape: both paths cross the physical link a-b (AS1 -> AS2) but
  // diverge beyond AS2 (to AS3 / AS4). b's export filter kills only the
  // AS3-bound announcement: path 0->1 dies while a-b keeps carrying the
  // working path 0->2. Tomo exonerates a-b; the logical link a->b(AS3)
  // stays suspect and maps back to the physical a-b.
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@1!s", "a@1", "b@2", "c@3", "s1@3!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s", "a@1"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
          .build();
  const auto tomo = run_tomo(before, after);
  EXPECT_FALSE(tomo.result.links.count("a|b"));
  const auto out = run_nd_edge(before, after);
  EXPECT_TRUE(out.result.links.count("a|b"));
}

TEST(NdEdge, RerouteSetsCatchRecoveredFailures) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "a@1", "d@1", "s2@1!s"})
                         .build();
  const auto out = run_nd_edge(before, after);
  const bool reroute_covered =
      out.result.links.count("a|c") || out.result.links.count("c|s2");
  EXPECT_TRUE(reroute_covered);
}

class NdEdgeSim : public ::testing::Test {
 protected:
  NdEdgeSim() : net_(topo::generate(topo::GeneratorParams{})) {
    net_.converge();
    util::Rng rng(17);
    sensors_ = probe::place_sensors(
        net_.topology(), probe::PlacementKind::kRandomStub, 10, rng);
  }

  sim::Network net_;
  std::vector<probe::Sensor> sensors_;
};

TEST_F(NdEdgeSim, PerfectSensitivityOnMultipleLinkFailures) {
  probe::Prober prober(net_, sensors_);
  const auto before = prober.measure();
  const auto pool = before.probed_links();
  util::Rng rng(23);

  int trials = 0, perfect = 0;
  std::size_t total_hit = 0, total_relevant = 0;
  for (int t = 0; t < 12; ++t) {
    const auto snap = net_.snapshot();
    const auto victims = rng.sample(pool, 3);
    for (LinkId l : victims) net_.fail_link(l);
    net_.reconverge();
    const auto after = prober.measure();
    bool invoked = false;
    for (std::size_t k = 0; k < before.paths.size(); ++k) {
      invoked = invoked || (before.paths[k].ok && !after.paths[k].ok);
    }
    if (invoked) {
      ++trials;
      const auto out = run_nd_edge(before, after);
      std::size_t hit = 0, relevant = 0;
      for (LinkId l : victims) {
        const auto key = exp::link_key(net_.topology(), l);
        // Only failures that disturbed some path can be found.
        bool disturbed = false;
        for (std::size_t k = 0; k < before.paths.size(); ++k) {
          const auto& pb = before.paths[k];
          const auto& pa = after.paths[k];
          if (!pb.ok) continue;
          const bool was_on_path =
              std::find(pb.links.begin(), pb.links.end(), l) != pb.links.end();
          const bool gone_or_changed = !pa.ok || pa.links != pb.links;
          if (was_on_path && gone_or_changed) disturbed = true;
        }
        if (!disturbed) continue;
        ++relevant;
        if (out.result.links.count(key)) ++hit;
      }
      if (hit == relevant) ++perfect;
      total_hit += hit;
      total_relevant += relevant;
    }
    net_.restore(snap);
  }
  ASSERT_GT(trials, 0);
  // ND-edge almost always achieves sensitivity 1 (paper Fig. 7); a small
  // residue of misses is inherent to minimum-hitting-set parsimony when
  // two failures land on the same paths.
  EXPECT_GE(perfect * 10, trials * 6);
  ASSERT_GT(total_relevant, 0u);
  EXPECT_GE(static_cast<double>(total_hit) /
                static_cast<double>(total_relevant),
            0.85);
}

TEST_F(NdEdgeSim, SimulatedMisconfigurationIsLocated) {
  probe::Prober prober(net_, sensors_);
  const auto before = prober.measure();
  // Find an interdomain hop q->r on some probed path and misconfigure the
  // cone toward the next AS beyond r (the paper's "route towards AS C").
  RouterId exporter;
  LinkId link;
  topo::AsId next_as;
  bool found = false;
  for (const auto& p : before.paths) {
    if (!p.ok || found) continue;
    for (std::size_t i = 0; i < p.links.size() && !found; ++i) {
      if (!net_.topology().link(p.links[i]).interdomain) continue;
      link = p.links[i];
      exporter = p.hops[i + 2].router;
      const topo::AsId exporter_as = net_.topology().as_of_router(exporter);
      next_as = exporter_as;
      for (std::size_t k = i + 3; k + 1 < p.hops.size(); ++k) {
        if (net_.topology().as_of_router(p.hops[k].router) != exporter_as) {
          next_as = net_.topology().as_of_router(p.hops[k].router);
          break;
        }
      }
      found = true;
    }
  }
  ASSERT_TRUE(found);
  exp::inject_cone_misconfig(net_, exporter, link, next_as, sensors_);
  net_.reconverge();
  const auto after = prober.measure();
  bool invoked = false;
  for (std::size_t k = 0; k < before.paths.size(); ++k) {
    invoked = invoked || (before.paths[k].ok && !after.paths[k].ok);
  }
  if (!invoked) GTEST_SKIP() << "filter was recoverable";
  const auto out = run_nd_edge(before, after);
  EXPECT_TRUE(out.result.links.count(exp::link_key(net_.topology(), link)));
}

TEST_F(NdEdgeSim, HypothesisNeverContainsWorkingPathLinks) {
  probe::Prober prober(net_, sensors_);
  const auto before = prober.measure();
  util::Rng rng(31);
  const auto victims = rng.sample(before.probed_links(), 2);
  for (LinkId l : victims) net_.fail_link(l);
  net_.reconverge();
  const auto after = prober.measure();
  const auto out = run_nd_edge(before, after);
  // Collect keys on working T+ paths.
  std::set<std::string> working;
  for (const auto& p : after.paths) {
    if (!p.ok) continue;
    for (LinkId l : p.links) working.insert(exp::link_key(net_.topology(), l));
  }
  // Physical hypothesis edges never lie on a working path. (Logical edges
  // may map onto a physical link that still carries other paths — that is
  // the very point of §3.1 — so only non-logical edges are checked.)
  for (graph::EdgeId e : out.result.hypothesis_edges) {
    const auto& info = out.graph.info(e);
    if (info.logical) continue;
    EXPECT_FALSE(working.count(info.phys_key))
        << info.phys_key << " carries a working path";
  }
}

}  // namespace
}  // namespace netd::core
