#include "core/troubleshooter.h"

#include <gtest/gtest.h>

#include "exp/runner.h"
#include "sim/network.h"
#include "topo/generator.h"

namespace netd::core {
namespace {

using topo::AsId;
using topo::LinkId;

class TroubleshooterTest : public ::testing::Test {
 protected:
  TroubleshooterTest() : net_(topo::tiny_topology()) {
    net_.converge();
    for (std::uint32_t as : {4u, 5u, 6u}) {
      sensors_.push_back(probe::Sensor{
          "s" + std::to_string(sensors_.size()),
          net_.topology().as_of(AsId{as}).routers.front(), AsId{as}});
    }
    prober_.emplace(net_, sensors_);
    snap_ = net_.snapshot();
  }

  LinkId stub6_uplink() {
    for (const auto& l : net_.topology().links()) {
      if (l.interdomain && (net_.topology().as_of_router(l.a) == AsId{6} ||
                            net_.topology().as_of_router(l.b) == AsId{6})) {
        return l.id;
      }
    }
    return LinkId{};
  }

  sim::Network net_;
  std::vector<probe::Sensor> sensors_;
  std::optional<probe::Prober> prober_;
  sim::Network::Snapshot snap_;
};

TEST_F(TroubleshooterTest, HealthyRoundsNeverDiagnose) {
  Troubleshooter ts;
  ts.set_baseline(prober_->measure());
  for (int r = 0; r < 5; ++r) {
    EXPECT_FALSE(ts.observe(prober_->measure()).has_value());
  }
  EXPECT_FALSE(ts.alarmed());
}

TEST_F(TroubleshooterTest, FlapIsFiltered) {
  Troubleshooter::Config cfg;
  cfg.alarm_threshold = 3;
  Troubleshooter ts(cfg);
  ts.set_baseline(prober_->measure());

  net_.fail_link(stub6_uplink());
  net_.reconverge();
  EXPECT_FALSE(ts.observe(prober_->measure()).has_value());  // round 1 bad
  net_.restore(snap_);
  EXPECT_FALSE(ts.observe(prober_->measure()).has_value());  // recovered
  EXPECT_FALSE(ts.alarmed());
}

TEST_F(TroubleshooterTest, PersistentFailureDiagnosedOnce) {
  Troubleshooter::Config cfg;
  cfg.alarm_threshold = 2;
  Troubleshooter ts(cfg);
  ts.set_baseline(prober_->measure());

  const LinkId victim = stub6_uplink();
  net_.fail_link(victim);
  net_.reconverge();
  EXPECT_FALSE(ts.observe(prober_->measure()).has_value());
  const auto diag = ts.observe(prober_->measure());
  ASSERT_TRUE(diag.has_value());
  EXPECT_TRUE(diag->result.links.count(exp::link_key(net_.topology(), victim)));
  // Already-alarmed pairs do not re-fire.
  EXPECT_FALSE(ts.observe(prober_->measure()).has_value());
  EXPECT_TRUE(ts.alarmed());
}

TEST_F(TroubleshooterTest, BaselineRollsForwardOnHealthyRounds) {
  Troubleshooter ts;
  ts.set_baseline(prober_->measure());
  // A reroutable event: stub 7 is multihomed; fail its preferred uplink.
  const auto tr = net_.trace(net_.topology().as_of(AsId{7}).routers.front(),
                             sensors_[0].attach);
  (void)tr;
  // Use a core-core peer failure that reroutes everything via... the tiny
  // topology has one peer link; instead fail an intra-core link, which is
  // recoverable inside the triangle.
  LinkId intra;
  for (const auto& l : net_.topology().links()) {
    if (!l.interdomain && net_.topology().as_of_router(l.a) == AsId{0}) {
      intra = l.id;
      break;
    }
  }
  net_.fail_link(intra);
  net_.reconverge();
  const auto round = prober_->measure();
  bool all_ok = true;
  for (const auto& p : round.paths) all_ok = all_ok && p.ok;
  ASSERT_TRUE(all_ok) << "intra-core failure should be recoverable";
  EXPECT_FALSE(ts.observe(round).has_value());
  // Baseline must now equal the rerouted round.
  for (std::size_t i = 0; i < round.paths.size(); ++i) {
    ASSERT_EQ(ts.baseline().paths[i].hops.size(), round.paths[i].hops.size());
  }
}

TEST_F(TroubleshooterTest, RolledForwardBaselineAnchorsTheNextDiagnosis) {
  Troubleshooter::Config cfg;
  cfg.alarm_threshold = 2;
  Troubleshooter ts(cfg);
  ts.set_baseline(prober_->measure());

  // Phase 1: a recoverable intra-core failure. Every pair reroutes inside
  // the core triangle, the round counts as healthy, and the rerouted mesh
  // must become the new T− baseline.
  LinkId intra;
  for (const auto& l : net_.topology().links()) {
    if (!l.interdomain && net_.topology().as_of_router(l.a) == AsId{0}) {
      intra = l.id;
      break;
    }
  }
  net_.fail_link(intra);
  net_.reconverge();
  const auto rerouted = prober_->measure();
  for (const auto& p : rerouted.paths) {
    ASSERT_TRUE(p.ok) << "intra-core failure should be recoverable";
  }
  EXPECT_FALSE(ts.observe(rerouted).has_value());
  bool baseline_probes_intra = false;
  for (const auto& p : ts.baseline().paths) {
    for (LinkId l : p.links) baseline_probes_intra |= (l == intra);
  }
  EXPECT_FALSE(baseline_probes_intra)
      << "rolled-forward baseline still routes over the dead link";

  // Phase 2: a distinct persistent failure is diagnosed against the
  // rolled-forward baseline, not the original one.
  const LinkId victim = stub6_uplink();
  net_.fail_link(victim);
  net_.reconverge();
  EXPECT_FALSE(ts.observe(prober_->measure()).has_value());  // round 1 of 2
  const auto diag = ts.observe(prober_->measure());
  ASSERT_TRUE(diag.has_value());
  EXPECT_TRUE(diag->result.links.count(exp::link_key(net_.topology(), victim)));
  // The diagnosis graph was built from the new T−, where the repaired-away
  // intra-core link is no longer probed.
  EXPECT_EQ(diag->graph.probed_keys.count(exp::link_key(net_.topology(), intra)),
            0u);
}

TEST_F(TroubleshooterTest, ControlPlaneOptIn) {
  Troubleshooter::Config cfg;
  cfg.alarm_threshold = 1;
  cfg.solver = nd_bgpigp_options();
  Troubleshooter ts(cfg);
  net_.set_operator_as(AsId{0});
  ts.set_baseline(prober_->measure());
  net_.start_recording();
  const LinkId victim = stub6_uplink();
  net_.fail_link(victim);
  net_.reconverge();
  const auto cp = exp::collect_control_plane(net_);
  const auto diag = ts.observe(prober_->measure(), &cp);
  ASSERT_TRUE(diag.has_value());
  EXPECT_TRUE(diag->result.links.count(exp::link_key(net_.topology(), victim)));
}

}  // namespace
}  // namespace netd::core
