// Duffield's SCFS on single-source trees (paper §2.1, Fig. 1).
#include <gtest/gtest.h>

#include "core/scfs.h"
#include "mesh_builder.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

TEST(Scfs, Figure1MarksLinkClosestToSource) {
  // Fig. 1: the tree branches at r6; r9-r11 fails, breaking s1->s2 while
  // s1->s3 keeps working. SCFS blames r6-r7 — the link closest to the
  // source that explains the failure.
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s1@1!s", "r6@1", "r7@1", "r9@1", "r11@1", "s2@1!s"})
          .ok(0, 2, {"s1@1!s", "r6@1", "r8@1", "r10@1", "s3@1!s"})
          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s1@1!s", "r6@1", "r7@1", "r9@1"})
          .ok(0, 2, {"s1@1!s", "r6@1", "r8@1", "r10@1", "s3@1!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = scfs(dg, 0);
  EXPECT_EQ(res.links, std::set<std::string>{"r6|r7"});
  EXPECT_EQ(res.unexplained_failure_sets, 0u);
}

TEST(Scfs, OneLinkPerBadSubtree) {
  // Two destinations fail below the same branch: one shared first bad
  // link explains both (the "smallest common failure set").
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "c@1", "s1@1!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@1", "d@1", "s2@1!s"})
          .ok(0, 3, {"s0@1!s", "a@1", "e@1", "s3@1!s"})
          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s", "a@1"})
          .fail(0, 2, {"s0@1!s", "a@1"})
          .ok(0, 3, {"s0@1!s", "a@1", "e@1", "s3@1!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = scfs(dg, 0);
  EXPECT_EQ(res.links, std::set<std::string>{"a|b"});
}

TEST(Scfs, IndependentSubtreesGetSeparateLinks) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                          .ok(0, 3, {"s0@1!s", "a@1", "s3@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s", "a@1"})
                         .fail(0, 2, {"s0@1!s", "a@1"})
                         .ok(0, 3, {"s0@1!s", "a@1", "s3@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = scfs(dg, 0);
  EXPECT_EQ(res.links, std::set<std::string>({"a|b", "a|c"}));
}

TEST(Scfs, RootFailureBlamesFirstLink) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "c@1", "s2@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .fail(0, 2, {"s0@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = scfs(dg, 0);
  EXPECT_EQ(res.links, std::set<std::string>{"a|s0"});
}

TEST(Scfs, NoFailuresNoHypothesis) {
  const auto m = MeshBuilder().ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"}).build();
  const auto dg = build_diagnosis_graph(m, m, false);
  const auto res = scfs(dg, 0);
  EXPECT_TRUE(res.links.empty());
}

TEST(Scfs, FullyGoodFailedPathIsUnexplained) {
  // The partial-failure pathology SCFS cannot express (paper §2.5 #1):
  // every link of the failed path also carries a working path.
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "s1@1!s", "s2@1!s"})
                          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "s1@1!s", "s2@1!s"})
          .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = scfs(dg, 0);
  EXPECT_TRUE(res.links.empty());
  EXPECT_EQ(res.unexplained_failure_sets, 1u);
}

TEST(Scfs, IgnoresOtherSources) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                          .ok(2, 1, {"s2@1!s", "b@1", "s1@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .ok(0, 1, {"s0@1!s", "a@1", "s1@1!s"})
                         .fail(2, 1, {"s2@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = scfs(dg, 0);
  EXPECT_TRUE(res.links.empty());  // the failure belongs to source 2
  EXPECT_FALSE(scfs(dg, 2).links.empty());
}

TEST(Scfs, RankedMirrorsLinks) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@1!s", "a@1", "b@1", "s1@1!s"})
                          .ok(0, 2, {"s0@1!s", "a@1", "s2@1!s"})
                          .build();
  const auto after = MeshBuilder()
                         .fail(0, 1, {"s0@1!s"})
                         .ok(0, 2, {"s0@1!s", "a@1", "s2@1!s"})
                         .build();
  const auto dg = build_diagnosis_graph(before, after, false);
  const auto res = scfs(dg, 0);
  std::set<std::string> keys;
  for (const auto& r : res.ranked) keys.insert(r.phys_key);
  EXPECT_EQ(keys, res.links);
}

}  // namespace
}  // namespace netd::core
