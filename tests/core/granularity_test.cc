// Logical-link granularity (LogicalMode) behaviors.
#include <gtest/gtest.h>

#include "core/solver.h"
#include "mesh_builder.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

probe::Mesh two_dest_before() {
  // Both destinations live in AS3 beyond the b@2 hop: per-neighbor
  // granularity merges them (W = 3 for both); per-prefix splits them.
  return MeshBuilder()
      .ok(0, 1, {"s0@1!s", "a@1", "b@2", "c@3", "s1@3!s"})
      .ok(0, 2, {"s0@1!s", "a@1", "b@2", "c@3", "d@3", "s2@3!s"})
      .build();
}

TEST(Granularity, PerNeighborMergesSameNextAs) {
  const auto m = two_dest_before();
  const auto dg = build_diagnosis_graph(m, m, LogicalMode::kPerNeighbor);
  EXPECT_TRUE(dg.g.find_node("b(AS3)").has_value());
  EXPECT_FALSE(dg.g.find_node("b(pfx3)").has_value());
}

TEST(Granularity, PerPrefixSplitsByDestination) {
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "a@1", "b@2", "c@3", "s1@3!s"})
                     .ok(0, 2, {"s0@1!s", "a@1", "b@2", "d@4", "s2@4!s"})
                     .build();
  const auto dg = build_diagnosis_graph(m, m, LogicalMode::kPerPrefix);
  EXPECT_TRUE(dg.g.find_node("b(pfx3)").has_value());
  EXPECT_TRUE(dg.g.find_node("b(pfx4)").has_value());
}

TEST(Granularity, PerPrefixGraphIsAtLeastAsLarge) {
  const auto m = two_dest_before();
  const auto per_neighbor =
      build_diagnosis_graph(m, m, LogicalMode::kPerNeighbor);
  const auto per_prefix = build_diagnosis_graph(m, m, LogicalMode::kPerPrefix);
  EXPECT_GE(per_prefix.edges.size(), per_neighbor.edges.size());
  // Physical universe identical regardless of granularity.
  EXPECT_EQ(per_prefix.probed_keys, per_neighbor.probed_keys);
}

TEST(Granularity, SinglePrefixFilterNeedsPerPrefix) {
  // The filter kills only dest s1 (prefix AS3) on the a->b session while
  // dest s2 (prefix AS4, reached *via* AS3, so the next AS after b is
  // also 3) keeps working: per-neighbor logical links are shared with the
  // working path and exonerated; per-prefix ones are not.
  const auto before =
      MeshBuilder()
          .ok(0, 1, {"s0@1!s", "a@1", "b@2", "c@3", "s1@3!s"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "c@3", "e@4", "s2@4!s"})
          .build();
  const auto after =
      MeshBuilder()
          .fail(0, 1, {"s0@1!s", "a@1"})
          .ok(0, 2, {"s0@1!s", "a@1", "b@2", "c@3", "e@4", "s2@4!s"})
          .build();
  SolverOptions opt;
  opt.use_reroutes = true;

  const auto nb = build_diagnosis_graph(before, after,
                                        LogicalMode::kPerNeighbor);
  const auto rn = solve(nb, opt);
  EXPECT_FALSE(rn.links.count("a|b"));

  const auto pp = build_diagnosis_graph(before, after,
                                        LogicalMode::kPerPrefix);
  const auto rp = solve(pp, opt);
  EXPECT_TRUE(rp.links.count("a|b"));
}

TEST(Granularity, BoolOverloadMatchesEnum) {
  const auto m = two_dest_before();
  const auto via_bool = build_diagnosis_graph(m, m, true);
  const auto via_enum = build_diagnosis_graph(m, m, LogicalMode::kPerNeighbor);
  EXPECT_EQ(via_bool.edges.size(), via_enum.edges.size());
  EXPECT_EQ(via_bool.g.num_nodes(), via_enum.g.num_nodes());
  const auto via_false = build_diagnosis_graph(m, m, false);
  const auto via_none = build_diagnosis_graph(m, m, LogicalMode::kNone);
  EXPECT_EQ(via_false.edges.size(), via_none.edges.size());
}

}  // namespace
}  // namespace netd::core
