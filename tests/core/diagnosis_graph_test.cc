#include "core/diagnosis_graph.h"

#include <gtest/gtest.h>

#include "mesh_builder.h"

namespace netd::core {
namespace {

using core::testing::MeshBuilder;

TEST(UndirectedKey, CanonicalOrder) {
  EXPECT_EQ(undirected_key("a", "b"), "a|b");
  EXPECT_EQ(undirected_key("b", "a"), "a|b");
}

TEST(DiagnosisGraph, InternsBothDirectionsAsDistinctEdges) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@4!s", "r1@1", "r2@1", "s1@5!s"})
                          .ok(1, 0, {"s1@5!s", "r2@1", "r1@1", "s0@4!s"})
                          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  ASSERT_EQ(dg.paths.size(), 2u);
  // r1->r2 and r2->r1 are distinct directed edges with one physical key.
  EXPECT_EQ(dg.g.num_edges(), 6u);
  EXPECT_TRUE(dg.probed_keys.count("r1|r2"));
  EXPECT_EQ(dg.probed_keys.size(), 3u);  // s0|r1, r1|r2, r2|s1
}

TEST(DiagnosisGraph, DirectedKeys) {
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@4!s", "r1@1", "r2@1", "s1@5!s"}).build();
  const auto dg = build_diagnosis_graph(before, before, false);
  EXPECT_EQ(dg.info(dg.paths[0].before[1]).directed_key, "r1>r2");
  EXPECT_EQ(dg.info(dg.paths[0].before[1]).phys_key, "r1|r2");
}

TEST(DiagnosisGraph, SkipsPairsDeadBeforeTheEvent) {
  const auto before = MeshBuilder()
                          .ok(0, 1, {"s0@4!s", "r1@1", "s1@5!s"})
                          .fail(1, 0, {"s1@5!s"})
                          .build();
  const auto dg = build_diagnosis_graph(before, before, false);
  EXPECT_EQ(dg.paths.size(), 1u);
}

TEST(DiagnosisGraph, MarksFailedAfterPaths) {
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@4!s", "r1@1", "s1@5!s"}).build();
  const auto after = MeshBuilder().fail(0, 1, {"s0@4!s", "r1@1"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  ASSERT_EQ(dg.paths.size(), 1u);
  EXPECT_FALSE(dg.paths[0].ok_after);
  EXPECT_TRUE(dg.paths[0].after.empty());
  EXPECT_EQ(dg.paths[0].dest_asn, 5);
}

TEST(DiagnosisGraph, DetectsReroutedPaths) {
  const auto before =
      MeshBuilder().ok(0, 1, {"s0@4!s", "r1@1", "r2@1", "s1@5!s"}).build();
  const auto after =
      MeshBuilder().ok(0, 1, {"s0@4!s", "r1@1", "r3@1", "r2@1", "s1@5!s"}).build();
  const auto dg = build_diagnosis_graph(before, after, false);
  ASSERT_EQ(dg.paths.size(), 1u);
  EXPECT_TRUE(dg.paths[0].ok_after);
  EXPECT_TRUE(dg.paths[0].rerouted);
}

TEST(DiagnosisGraph, UnchangedPathIsNotRerouted) {
  const auto m =
      MeshBuilder().ok(0, 1, {"s0@4!s", "r1@1", "s1@5!s"}).build();
  const auto dg = build_diagnosis_graph(m, m, false);
  EXPECT_FALSE(dg.paths[0].rerouted);
}

TEST(DiagnosisGraph, LogicalExpansionOfInterdomainHop) {
  // Path crosses AS1 -> AS2 -> AS3: hop r2@2 is entered from AS1 and the
  // next AS beyond AS2 is AS3 (Fig. 3: r1 -> r2(AS3) -> r2).
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "r1@1", "r2@2", "r3@3", "s1@3!s"})
                     .build();
  const auto dg = build_diagnosis_graph(m, m, true);
  const auto mid = dg.g.find_node("r2(AS3)");
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(dg.g.node(*mid).kind, graph::NodeKind::kLogical);
  EXPECT_EQ(dg.g.node(*mid).asn, 2);
  // The path has 4 physical hops -> 2 interdomain hops expand to 2 edges
  // each: s0-r1 (intra), r1->r2(AS3)->r2, r2->r3(AS3)->r3, r3-s1.
  EXPECT_EQ(dg.paths[0].before.size(), 6u);
}

TEST(DiagnosisGraph, LogicalEdgesInheritPhysicalKey) {
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "r1@1", "r2@2", "r3@3", "s1@3!s"})
                     .build();
  const auto dg = build_diagnosis_graph(m, m, true);
  std::size_t logical = 0;
  for (const auto& info : dg.edges) {
    if (info.logical) {
      ++logical;
      EXPECT_TRUE(info.phys_key == "r1|r2" || info.phys_key == "r2|r3");
    }
  }
  EXPECT_EQ(logical, 4u);
  // Physical universe is unchanged by the expansion.
  EXPECT_EQ(dg.probed_keys.size(), 4u);
}

TEST(DiagnosisGraph, LogicalExpansionLastAsUsesOwnAs) {
  // Destination AS3 is the last AS: W = 3 for the final interdomain hop.
  const auto m =
      MeshBuilder().ok(0, 1, {"s0@1!s", "r1@1", "r3@3", "s1@3!s"}).build();
  const auto dg = build_diagnosis_graph(m, m, true);
  EXPECT_TRUE(dg.g.find_node("r3(AS3)").has_value());
}

TEST(DiagnosisGraph, TwoDestinationsSplitLogicalNodes) {
  // Same physical link r1->r2; beyond AS2 the paths diverge to AS3 / AS4
  // => two distinct logical middle nodes (the point of §3.1).
  const auto m =
      MeshBuilder()
          .ok(0, 1, {"s0@1!s", "r1@1", "r2@2", "r3@3", "s1@3!s"})
          .ok(0, 2, {"s0@1!s", "r1@1", "r2@2", "r4@4", "s2@4!s"})
          .build();
  const auto dg = build_diagnosis_graph(m, m, true);
  EXPECT_TRUE(dg.g.find_node("r2(AS3)").has_value());
  EXPECT_TRUE(dg.g.find_node("r2(AS4)").has_value());
}

TEST(DiagnosisGraph, UhEdgesAreFlaggedAndOwnAPath) {
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "r1@1", "uh:p0-1:h0", "r3@3", "s1@3!s"})
                     .build();
  const auto dg = build_diagnosis_graph(m, m, false);
  std::size_t uh_edges = 0;
  for (const auto& info : dg.edges) {
    if (info.unidentified) {
      ++uh_edges;
      EXPECT_EQ(info.before_path, 0);
    }
  }
  EXPECT_EQ(uh_edges, 2u);  // r1->uh and uh->r3
}

TEST(DiagnosisGraph, NoLogicalExpansionAroundUhHops) {
  const auto m = MeshBuilder()
                     .ok(0, 1, {"s0@1!s", "r1@1", "uh:p0-1:h0", "r3@3", "s1@3!s"})
                     .build();
  const auto dg = build_diagnosis_graph(m, m, true);
  for (std::size_t n = 0; n < dg.g.num_nodes(); ++n) {
    EXPECT_NE(dg.g.node(graph::NodeId{static_cast<std::uint32_t>(n)}).kind,
              graph::NodeKind::kLogical);
  }
}

}  // namespace
}  // namespace netd::core
