// Regression pin for core::solve: fixed simulator-driven scenarios whose
// full solver output (hypothesis links, ranked ordering with scores and
// rounds, unexplained failure sets) was captured before the greedy loop was
// rewritten onto epoch-stamped scratch arrays and cached coverage counts.
// Any behavioral drift in the solver — tie-breaking, scoring, clustering,
// control-plane seeding/pruning — shows up as a signature mismatch here.
#include <gtest/gtest.h>

#include <sstream>

#include "core/algorithms.h"
#include "exp/runner.h"
#include "lg/looking_glass.h"
#include "probe/prober.h"
#include "probe/sensors.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

namespace netd::core {
namespace {

/// Canonical text form of a solver Result: links in set order, ranked in
/// rank order, plus the diagnostic counters. Scores in these scenarios are
/// small sums of unit weights, so fixed precision is exact.
std::string signature(const char* algo, const Result& r) {
  std::ostringstream os;
  os << algo << "|links:";
  for (const auto& k : r.links) os << k << ",";
  os << "|ranked:";
  for (const auto& rl : r.ranked) {
    os << rl.phys_key << "@" << rl.score << "@" << rl.round << ",";
  }
  os << "|unexplained:" << r.unexplained_failure_sets
     << "|unknown:" << r.unknown_as_links << "\n";
  return os.str();
}

/// One deterministic failure episode on the generated evaluation topology:
/// 8 random-stub sensors, a 25% blocked-AS set, two failed probed links
/// plus one single-prefix export misconfiguration, all drawn from `seed`.
/// Returns the concatenated signatures of all four algorithm presets.
std::string episode_signatures(std::uint64_t seed) {
  topo::GeneratorParams params;
  sim::Network net(topo::generate(params));
  net.converge();
  const auto& topo = net.topology();
  net.set_operator_as(topo::AsId{0});

  util::Rng rng(seed);
  const auto sensors =
      probe::place_sensors(topo, probe::PlacementKind::kRandomStub, 8, rng);
  std::set<std::uint32_t> sensor_ases;
  for (const auto& s : sensors) sensor_ases.insert(s.as.value());

  const lg::LgTable lg_table(net);

  // Ground mesh picks the blocked set and the failure candidates.
  probe::Prober ground(net, sensors);
  const probe::Mesh gmesh = ground.measure();
  std::vector<std::uint32_t> blockable;
  for (int asn : gmesh.covered_ases(topo)) {
    const auto v = static_cast<std::uint32_t>(asn);
    if (sensor_ases.count(v) == 0 && v != 0) blockable.push_back(v);
  }
  std::set<std::uint32_t> blocked;
  for (std::uint32_t v : rng.sample(blockable, blockable.size() / 4)) {
    blocked.insert(v);
  }

  probe::Prober prober(net, sensors, blocked);
  const probe::Mesh before = prober.measure();

  const auto pool = gmesh.probed_links();
  const auto victims = rng.sample(pool, 2);
  std::vector<topo::LinkId> inter;
  for (topo::LinkId l : pool) {
    if (topo.link(l).interdomain) inter.push_back(l);
  }

  net.start_recording();
  for (topo::LinkId l : victims) net.fail_link(l);
  if (!inter.empty()) {
    const topo::LinkId ml = rng.pick(inter);
    const auto& link = topo.link(ml);
    net.misconfigure_export(link.a, ml,
                            topo.prefix_of(rng.pick(sensors).as));
  }
  net.reconverge();
  const probe::Mesh after = prober.measure();
  const ControlPlaneObs cp = exp::collect_control_plane(net);

  std::set<std::uint32_t> avail;
  for (const auto& as : topo.ases()) {
    if (rng.bernoulli(0.7)) avail.insert(as.id.value());
  }
  const lg::LookingGlassService lg_svc(lg_table, std::move(avail),
                                       topo::AsId{0});

  std::string sig = "seed " + std::to_string(seed) + "\n";
  sig += signature("tomo", run_tomo(before, after).result);
  sig += signature("nd-edge", run_nd_edge(before, after).result);
  sig += signature("nd-bgpigp", run_nd_bgpigp(before, after, cp).result);
  sig += signature("nd-lg",
                   run_nd_lg(before, after, cp, lg_svc, topo::AsId{0}).result);
  return sig;
}

TEST(SolverRegression, PinnedHypothesesAcrossAlgorithms) {
  std::string got;
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    got += episode_signatures(seed);
  }
  const std::string want = R"GOLD(
seed 101
tomo|links:AS42:r0|s6,|ranked:AS42:r0|s6@7@0,|unexplained:0|unknown:0
nd-edge|links:AS2:r1|AS2:r2,AS2:r2|AS2:r4,AS42:r0|s6,|ranked:AS42:r0|s6@7@0,AS2:r2|AS2:r4@1@1,AS2:r1|AS2:r2@1@1,|unexplained:0|unknown:0
nd-bgpigp|links:AS2:r1|AS2:r2,AS2:r2|AS2:r4,AS42:r0|s6,|ranked:AS42:r0|s6@7@0,AS2:r2|AS2:r4@1@1,AS2:r1|AS2:r2@1@1,|unexplained:0|unknown:0
nd-lg|links:AS2:r1|AS2:r2,AS2:r2|AS2:r4,uh:p0-6:h0|uh:p0-6:h1,uh:p0-6:h1|uh:p0-6:h2,uh:p0-6:h2|uh:p0-6:h3,uh:p0-6:h3|uh:p0-6:h4,uh:p0-6:h4|uh:p0-6:h5,uh:p1-6:h0|uh:p1-6:h1,uh:p2-6:h0|uh:p2-6:h1,uh:p2-6:h1|uh:p2-6:h2,uh:p3-6:h0|uh:p3-6:h1,uh:p4-6:h0|uh:p4-6:h1,uh:p4-6:h1|uh:p4-6:h2,uh:p5-6:h0|uh:p5-6:h1,uh:p5-6:h1|uh:p5-6:h2,uh:p6-0:h0|uh:p6-0:h1,uh:p6-0:h1|uh:p6-0:h2,uh:p6-0:h2|uh:p6-0:h3,uh:p6-0:h3|uh:p6-0:h4,uh:p6-0:h4|uh:p6-0:h5,uh:p6-1:h0|uh:p6-1:h1,uh:p6-2:h0|uh:p6-2:h1,uh:p6-2:h1|uh:p6-2:h2,uh:p6-3:h0|uh:p6-3:h1,uh:p6-4:h0|uh:p6-4:h1,uh:p6-4:h1|uh:p6-4:h2,uh:p6-4:h2|uh:p6-4:h3,uh:p6-4:h3|uh:p6-4:h4,uh:p6-4:h4|uh:p6-4:h5,uh:p6-5:h0|uh:p6-5:h1,uh:p6-7:h0|uh:p6-7:h1,uh:p7-6:h0|uh:p7-6:h1,|ranked:uh:p1-6:h0|uh:p1-6:h1@11@0,uh:p2-6:h0|uh:p2-6:h1@11@0,uh:p2-6:h1|uh:p2-6:h2@11@0,uh:p3-6:h0|uh:p3-6:h1@11@0,uh:p4-6:h0|uh:p4-6:h1@11@0,uh:p4-6:h1|uh:p4-6:h2@11@0,uh:p5-6:h0|uh:p5-6:h1@11@0,uh:p5-6:h1|uh:p5-6:h2@11@0,uh:p6-1:h0|uh:p6-1:h1@11@0,uh:p6-2:h0|uh:p6-2:h1@11@0,uh:p6-2:h1|uh:p6-2:h2@11@0,uh:p6-3:h0|uh:p6-3:h1@11@0,uh:p6-5:h0|uh:p6-5:h1@11@0,uh:p6-7:h0|uh:p6-7:h1@11@0,uh:p7-6:h0|uh:p7-6:h1@11@0,uh:p0-6:h0|uh:p0-6:h1@3@1,uh:p0-6:h1|uh:p0-6:h2@3@1,uh:p0-6:h2|uh:p0-6:h3@3@1,uh:p0-6:h3|uh:p0-6:h4@3@1,uh:p0-6:h4|uh:p0-6:h5@3@1,uh:p6-0:h0|uh:p6-0:h1@3@1,uh:p6-0:h1|uh:p6-0:h2@3@1,uh:p6-0:h2|uh:p6-0:h3@3@1,uh:p6-0:h3|uh:p6-0:h4@3@1,uh:p6-0:h4|uh:p6-0:h5@3@1,uh:p6-4:h0|uh:p6-4:h1@3@1,uh:p6-4:h1|uh:p6-4:h2@3@1,uh:p6-4:h2|uh:p6-4:h3@3@1,uh:p6-4:h3|uh:p6-4:h4@3@1,uh:p6-4:h4|uh:p6-4:h5@3@1,AS2:r2|AS2:r4@1@2,AS2:r1|AS2:r2@1@2,|unexplained:0|unknown:0
seed 202
tomo|links:AS5:r0|AS5:r9,AS5:r9|AS75:r0,AS75:r0|s4,|ranked:AS5:r0|AS5:r9@7@0,AS5:r9|AS75:r0@7@0,AS75:r0|s4@7@0,|unexplained:0|unknown:0
nd-edge|links:AS1:r5|AS3:r2,AS3:r0|AS3:r2,AS3:r1|AS60:r0,AS5:r0|AS5:r9,AS5:r9|AS75:r0,AS75:r0|s4,|ranked:AS5:r0|AS5:r9@7@0,AS5:r9|AS75:r0@7@0,AS75:r0|s4@7@0,AS1:r5|AS3:r2@3@1,AS3:r0|AS3:r2@3@1,AS3:r1|AS60:r0@3@1,|unexplained:0|unknown:0
nd-bgpigp|links:AS1:r5|AS3:r2,AS3:r0|AS3:r2,AS3:r1|AS60:r0,AS5:r0|AS5:r9,AS5:r9|AS75:r0,AS75:r0|s4,|ranked:AS5:r0|AS5:r9@7@0,AS5:r9|AS75:r0@7@0,AS75:r0|s4@7@0,AS1:r5|AS3:r2@3@1,AS3:r0|AS3:r2@3@1,AS3:r1|AS60:r0@3@1,|unexplained:0|unknown:0
nd-lg|links:AS1:r5|AS3:r2,AS3:r0|AS3:r2,AS3:r1|AS60:r0,AS5:r0|AS5:r9,AS5:r9|AS75:r0,AS75:r0|s4,|ranked:AS5:r0|AS5:r9@7@0,AS5:r9|AS75:r0@7@0,AS75:r0|s4@7@0,AS1:r5|AS3:r2@3@1,AS3:r0|AS3:r2@3@1,AS3:r1|AS60:r0@3@1,|unexplained:0|unknown:0
seed 303
tomo|links:AS59:r0|s7,|ranked:AS59:r0|s7@7@0,|unexplained:0|unknown:0
nd-edge|links:AS0:r7|AS6:r5,AS59:r0|s7,AS6:r0|AS6:r5,|ranked:AS6:r0|AS6:r5@13@0,AS0:r7|AS6:r5@13@0,AS59:r0|s7@4@2,|unexplained:0|unknown:0
nd-bgpigp|links:AS0:r7|AS6:r5,AS59:r0|s7,AS6:r0|AS6:r5,|ranked:AS6:r0|AS6:r5@13@0,AS0:r7|AS6:r5@13@0,AS59:r0|s7@4@2,|unexplained:0|unknown:0
nd-lg|links:AS0:r7|AS6:r5,AS58:r0|uh:p4-7:h0,AS59:r0|s7,AS59:r0|uh:p4-7:h2,AS6:r0|AS6:r5,uh:p0-7:h0|uh:p0-7:h1,uh:p0-7:h1|uh:p0-7:h2,uh:p1-7:h0|uh:p1-7:h1,uh:p1-7:h1|uh:p1-7:h2,uh:p2-7:h0|uh:p2-7:h1,uh:p2-7:h1|uh:p2-7:h2,uh:p3-7:h0|uh:p3-7:h1,uh:p3-7:h1|uh:p3-7:h2,uh:p4-7:h0|uh:p4-7:h1,uh:p4-7:h1|uh:p4-7:h2,uh:p5-7:h0|uh:p5-7:h1,uh:p5-7:h1|uh:p5-7:h2,uh:p6-7:h0|uh:p6-7:h1,uh:p6-7:h1|uh:p6-7:h2,uh:p7-0:h0|uh:p7-0:h1,uh:p7-0:h1|uh:p7-0:h2,uh:p7-1:h0|uh:p7-1:h1,uh:p7-1:h1|uh:p7-1:h2,uh:p7-3:h0|uh:p7-3:h1,uh:p7-3:h1|uh:p7-3:h2,uh:p7-4:h0|uh:p7-4:h1,uh:p7-4:h1|uh:p7-4:h2,|ranked:AS6:r0|AS6:r5@13@0,AS0:r7|AS6:r5@13@0,uh:p0-7:h0|uh:p0-7:h1@7@2,uh:p0-7:h1|uh:p0-7:h2@7@2,uh:p1-7:h0|uh:p1-7:h1@7@2,uh:p1-7:h1|uh:p1-7:h2@7@2,uh:p2-7:h0|uh:p2-7:h1@7@2,uh:p2-7:h1|uh:p2-7:h2@7@2,uh:p3-7:h0|uh:p3-7:h1@7@2,uh:p3-7:h1|uh:p3-7:h2@7@2,uh:p5-7:h0|uh:p5-7:h1@7@2,uh:p5-7:h1|uh:p5-7:h2@7@2,uh:p6-7:h0|uh:p6-7:h1@7@2,uh:p6-7:h1|uh:p6-7:h2@7@2,uh:p7-0:h0|uh:p7-0:h1@7@2,uh:p7-0:h1|uh:p7-0:h2@7@2,uh:p7-1:h0|uh:p7-1:h1@7@2,uh:p7-1:h1|uh:p7-1:h2@7@2,uh:p7-3:h0|uh:p7-3:h1@7@2,uh:p7-3:h1|uh:p7-3:h2@7@2,uh:p7-4:h0|uh:p7-4:h1@7@2,uh:p7-4:h1|uh:p7-4:h2@7@2,AS59:r0|s7@1@3,AS58:r0|uh:p4-7:h0@1@3,uh:p4-7:h0|uh:p4-7:h1@1@3,uh:p4-7:h1|uh:p4-7:h2@1@3,AS59:r0|uh:p4-7:h2@1@3,|unexplained:0|unknown:4
)GOLD";
  EXPECT_EQ(got, want.substr(1)) << got;
}

}  // namespace
}  // namespace netd::core
