// ND-bgpigp: control-plane-assisted diagnosis (paper §3.3).
#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "exp/runner.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"
#include "util/rng.h"

namespace netd::core {
namespace {

using topo::AsId;
using topo::LinkId;

class NdBgpIgpTest : public ::testing::Test {
 protected:
  NdBgpIgpTest() : net_(topo::generate(topo::GeneratorParams{})) {
    net_.converge();
    net_.set_operator_as(AsId{0});
    util::Rng rng(41);
    sensors_ = probe::place_sensors(
        net_.topology(), probe::PlacementKind::kRandomStub, 10, rng);
  }

  /// Runs one failure, returns {before, after, cp} or nullopt if the
  /// failure did not break any path.
  struct Episode {
    probe::Mesh before, after;
    ControlPlaneObs cp;
  };
  std::optional<Episode> episode(const std::vector<LinkId>& victims) {
    probe::Prober prober(net_, sensors_);
    Episode ep;
    ep.before = prober.measure();
    net_.start_recording();
    for (LinkId l : victims) net_.fail_link(l);
    net_.reconverge();
    ep.after = prober.measure();
    bool invoked = false;
    for (std::size_t k = 0; k < ep.before.paths.size(); ++k) {
      invoked = invoked || (ep.before.paths[k].ok && !ep.after.paths[k].ok);
    }
    if (!invoked) return std::nullopt;
    ep.cp = exp::collect_control_plane(net_);
    return ep;
  }

  sim::Network net_;
  std::vector<probe::Sensor> sensors_;
};

TEST_F(NdBgpIgpTest, IgpFeedPinpointsOperatorInternalFailure) {
  // Fail probed intradomain links inside AS-X until one causes
  // unreachability (the well-meshed core reroutes around most single
  // internal failures, so try pairs of links sharing a router too).
  probe::Prober prober(net_, sensors_);
  const auto base_snapshot = net_.snapshot();
  const auto base = prober.measure();
  std::vector<LinkId> internal;
  for (LinkId l : base.probed_links()) {
    const auto& link = net_.topology().link(l);
    if (!link.interdomain && net_.topology().as_of_router(link.a) == AsId{0}) {
      internal.push_back(l);
    }
  }
  if (internal.empty()) GTEST_SKIP() << "no probed intra-AS0 link";
  bool exercised = false;
  for (std::size_t i = 0; i < internal.size() && !exercised; ++i) {
    for (std::size_t j = i; j < internal.size() && !exercised; ++j) {
      std::vector<LinkId> victims = {internal[i]};
      if (j != i) victims.push_back(internal[j]);
      const auto ep = episode(victims);
      if (ep) {
        exercised = true;
        ASSERT_FALSE(ep->cp.igp_down_keys.empty());
        const auto out = run_nd_bgpigp(ep->before, ep->after, ep->cp);
        for (LinkId v : victims) {
          EXPECT_TRUE(
              out.result.links.count(exp::link_key(net_.topology(), v)));
        }
      }
      net_.restore(base_snapshot);
      net_.set_operator_as(AsId{0});
    }
  }
  if (!exercised) {
    GTEST_SKIP() << "no intra-AS0 failure caused unreachability";
  }
}

TEST_F(NdBgpIgpTest, HypothesisNeverLargerThanNdEdge) {
  util::Rng rng(43);
  probe::Prober prober(net_, sensors_);
  const auto base_snapshot = net_.snapshot();
  const auto base = prober.measure();
  const auto pool = base.probed_links();
  for (int t = 0; t < 10; ++t) {
    const auto ep = episode(rng.sample(pool, 3));
    if (ep) {
      const auto edge = run_nd_edge(ep->before, ep->after);
      const auto bgpigp = run_nd_bgpigp(ep->before, ep->after, ep->cp);
      // Control-plane pruning only removes candidates; it never hurts
      // sensitivity of the true failed links and never widens H beyond
      // what the IGP feed itself confirms.
      EXPECT_LE(bgpigp.result.links.size(),
                edge.result.links.size() + ep->cp.igp_down_keys.size());
    }
    net_.restore(base_snapshot);
    net_.set_operator_as(AsId{0});
  }
}

TEST_F(NdBgpIgpTest, SensitivityMatchesNdEdgeOnLinkFailures) {
  util::Rng rng(47);
  probe::Prober prober(net_, sensors_);
  const auto base_snapshot = net_.snapshot();
  const auto base = prober.measure();
  const auto pool = base.probed_links();
  int compared = 0;
  for (int t = 0; t < 10; ++t) {
    const auto victims = rng.sample(pool, 2);
    const auto ep = episode(victims);
    if (ep) {
      ++compared;
      std::set<std::string> truth;
      for (LinkId l : victims) {
        truth.insert(exp::link_key(net_.topology(), l));
      }
      const auto edge = run_nd_edge(ep->before, ep->after);
      const auto bgpigp = run_nd_bgpigp(ep->before, ep->after, ep->cp);
      const auto me = link_metrics(edge.result.links, truth,
                                   edge.graph.probed_keys);
      const auto mb = link_metrics(bgpigp.result.links, truth,
                                   bgpigp.graph.probed_keys);
      EXPECT_GE(mb.sensitivity, me.sensitivity);
      // Withdrawal pruning should not cost specificity.
      EXPECT_GE(mb.specificity + 1e-9, me.specificity);
    }
    net_.restore(base_snapshot);
    net_.set_operator_as(AsId{0});
  }
  EXPECT_GT(compared, 0);
}

TEST_F(NdBgpIgpTest, WithdrawalsArriveAtOperatorForRemoteFailures) {
  // Cut a random single-homed stub's uplink: AS-X (a core) must hear
  // withdrawals for that prefix.
  const auto& topo = net_.topology();
  LinkId uplink;
  AsId stub;
  for (const auto& s : sensors_) {
    std::size_t inter = 0;
    LinkId last;
    for (LinkId l : topo.links_of(s.attach)) {
      if (topo.link(l).interdomain) {
        ++inter;
        last = l;
      }
    }
    if (inter != 1) continue;
    // A stub hanging directly off AS-X would be observed as a session
    // death, not a received withdrawal — skip those.
    if (topo.as_of_router(topo.other_end(last, s.attach)) == AsId{0}) {
      continue;
    }
    uplink = last;
    stub = s.as;
    break;
  }
  if (!uplink.valid()) GTEST_SKIP() << "all sensor stubs multihomed";
  const auto ep = episode({uplink});
  ASSERT_TRUE(ep.has_value());  // single-homed: must break paths
  bool saw = false;
  for (const auto& w : ep->cp.withdrawals) {
    saw = saw || w.dest_asn == static_cast<int>(stub.value());
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace netd::core
