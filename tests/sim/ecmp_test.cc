// ECMP forwarding, flow hashing and Paris-style path enumeration.
#include <gtest/gtest.h>

#include <set>

#include "sim/network.h"
#include "topo/generator.h"

namespace netd::sim {
namespace {

using topo::AsClass;
using topo::AsId;
using topo::LinkId;
using topo::Relationship;
using topo::RouterId;

/// One AS with two equal-cost two-hop routes between r0 and r3, plus a
/// stub destination behind r3 and a stub source attached to r0.
class EcmpNetwork : public ::testing::Test {
 protected:
  EcmpNetwork() {
    topo::Topology t;
    const AsId core = t.add_as(AsClass::kTier2);
    r0_ = t.add_router(core);
    r1_ = t.add_router(core);
    r2_ = t.add_router(core);
    r3_ = t.add_router(core);
    t.add_intra_link(r0_, r1_);
    t.add_intra_link(r1_, r3_);
    t.add_intra_link(r0_, r2_);
    t.add_intra_link(r2_, r3_);
    const AsId src_as = t.add_as(AsClass::kStub);
    const AsId dst_as = t.add_as(AsClass::kStub);
    src_ = t.add_router(src_as);
    dst_ = t.add_router(dst_as);
    t.add_inter_link(src_, r0_, Relationship::kProvider);
    t.add_inter_link(dst_, r3_, Relationship::kProvider);
    net_.emplace(std::move(t));
    net_->converge();
  }

  RouterId r0_, r1_, r2_, r3_, src_, dst_;
  std::optional<Network> net_;
};

TEST_F(EcmpNetwork, EqualCostNextHopsFound) {
  const auto hops = net_->igp().equal_cost_next_hops(r0_, r3_);
  EXPECT_EQ(hops.size(), 2u);
}

TEST_F(EcmpNetwork, DefaultTraceIsDeterministic) {
  const auto a = net_->trace(src_, dst_);
  const auto b = net_->trace(src_, dst_);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.hops, b.hops);
}

TEST_F(EcmpNetwork, FlowsSpreadOverEqualCostPaths) {
  std::set<std::vector<std::uint32_t>> distinct;
  for (std::uint64_t flow = 1; flow <= 32; ++flow) {
    const auto tr = net_->trace_flow(src_, dst_, flow);
    ASSERT_TRUE(tr.ok);
    std::vector<std::uint32_t> ids;
    for (const auto r : tr.hops) ids.push_back(r.value());
    distinct.insert(ids);
  }
  EXPECT_EQ(distinct.size(), 2u);  // via r1 and via r2
}

TEST_F(EcmpNetwork, SameFlowSamePath) {
  for (std::uint64_t flow : {7ull, 99ull}) {
    const auto a = net_->trace_flow(src_, dst_, flow);
    const auto b = net_->trace_flow(src_, dst_, flow);
    EXPECT_EQ(a.hops, b.hops);
  }
}

TEST_F(EcmpNetwork, EnumeratePathsFindsBothAlternatives) {
  const auto paths = net_->enumerate_paths(src_, dst_);
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_TRUE(p.ok);
    EXPECT_EQ(p.hops.front(), src_);
    EXPECT_EQ(p.hops.back(), dst_);
    EXPECT_EQ(p.hops.size(), 5u);  // src, r0, r1|r2, r3, dst
  }
  EXPECT_NE(paths[0].hops, paths[1].hops);
}

TEST_F(EcmpNetwork, EnumerationRespectsCap) {
  EXPECT_EQ(net_->enumerate_paths(src_, dst_, 1).size(), 1u);
}

TEST_F(EcmpNetwork, EnumerationCoversEveryFlowPath) {
  std::set<std::vector<std::uint32_t>> enumerated;
  for (const auto& p : net_->enumerate_paths(src_, dst_)) {
    std::vector<std::uint32_t> ids;
    for (const auto r : p.hops) ids.push_back(r.value());
    enumerated.insert(ids);
  }
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    const auto tr = net_->trace_flow(src_, dst_, flow);
    std::vector<std::uint32_t> ids;
    for (const auto r : tr.hops) ids.push_back(r.value());
    EXPECT_TRUE(enumerated.count(ids)) << "flow " << flow;
  }
}

TEST_F(EcmpNetwork, FailedBranchDropsToSinglePath) {
  // Kill one of the two equal-cost branches.
  for (const auto& l : net_->topology().links()) {
    if ((l.a == r1_ || l.b == r1_) && !l.interdomain) {
      net_->fail_link(l.id);
      break;
    }
  }
  net_->reconverge();
  const auto paths = net_->enumerate_paths(src_, dst_);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].ok);
}

TEST_F(EcmpNetwork, BlackholeEnumerationReturnsFailedBranch) {
  net_->fail_router(dst_);
  net_->reconverge();
  const auto paths = net_->enumerate_paths(src_, dst_);
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) EXPECT_FALSE(p.ok);
}

TEST(EcmpPaperTopology, DefaultTraceMatchesFirstEnumeratedPath) {
  Network net(topo::generate(topo::GeneratorParams{}));
  net.converge();
  const auto& topo = net.topology();
  std::vector<RouterId> stubs;
  for (const auto& as : topo.ases()) {
    if (as.cls == AsClass::kStub) stubs.push_back(as.routers.front());
  }
  for (std::size_t i = 0; i < 6; ++i) {
    const RouterId a = stubs[i * 7], b = stubs[stubs.size() - 1 - i * 9];
    if (a == b) continue;
    const auto single = net.trace(a, b);
    const auto all = net.enumerate_paths(a, b, 64);
    ASSERT_FALSE(all.empty());
    // trace() (flow 0, always-first) equals the first enumerated path.
    EXPECT_EQ(single.hops, all.front().hops);
    // Every enumeration is loop-free and ends at the destination.
    for (const auto& p : all) {
      ASSERT_TRUE(p.ok);
      std::set<std::uint32_t> seen;
      for (const auto r : p.hops) EXPECT_TRUE(seen.insert(r.value()).second);
    }
  }
}

}  // namespace
}  // namespace netd::sim
