#include <gtest/gtest.h>

#include "sim/network.h"
#include "topo/generator.h"

namespace netd::sim {
namespace {

using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::RouterId;

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : net_(topo::tiny_topology()) {
    net_.converge();
    net_.set_operator_as(AsId{0});
  }

  RouterId stub_router(std::uint32_t as) {
    return net_.topology().as_of(AsId{as}).routers.front();
  }

  /// First link of the given kind on the current 4->6 path.
  LinkId path_link(bool interdomain) {
    const auto tr = net_.trace(stub_router(4), stub_router(6));
    for (LinkId l : tr.links) {
      if (net_.topology().link(l).interdomain == interdomain) return l;
    }
    return LinkId{};
  }

  Network net_;
};

TEST_F(FailureTest, SingleHomedStubLinkFailureIsNonRecoverable) {
  // Stub AS4's only uplink.
  LinkId uplink;
  for (const auto& l : net_.topology().links()) {
    if (l.interdomain && (net_.topology().as_of_router(l.a) == AsId{4} ||
                          net_.topology().as_of_router(l.b) == AsId{4})) {
      uplink = l.id;
      break;
    }
  }
  net_.fail_link(uplink);
  net_.reconverge();
  EXPECT_FALSE(net_.trace(stub_router(4), stub_router(6)).ok);
  EXPECT_FALSE(net_.trace(stub_router(6), stub_router(4)).ok);
}

TEST_F(FailureTest, MultihomedStubRecoversByRerouting) {
  // Stub AS7 is multihomed (providers AS3 and AS2). Fail the link it
  // currently uses toward AS4 and expect a working rerouted path.
  const auto before = net_.trace(stub_router(7), stub_router(4));
  ASSERT_TRUE(before.ok);
  LinkId first_uplink;
  for (LinkId l : before.links) {
    if (net_.topology().link(l).interdomain) {
      first_uplink = l;
      break;
    }
  }
  net_.fail_link(first_uplink);
  net_.reconverge();
  const auto after = net_.trace(stub_router(7), stub_router(4));
  ASSERT_TRUE(after.ok);
  EXPECT_NE(after.links, before.links);
}

TEST_F(FailureTest, IntraCoreFailureRecordsIgpEvent) {
  net_.start_recording();
  const LinkId l = path_link(/*interdomain=*/false);
  // Find an intra link specifically inside AS0 (the operator).
  LinkId core_link;
  for (const auto& link : net_.topology().links()) {
    if (!link.interdomain &&
        net_.topology().as_of_router(link.a) == AsId{0}) {
      core_link = link.id;
      break;
    }
  }
  (void)l;
  net_.fail_link(core_link);
  net_.reconverge();
  ASSERT_EQ(net_.igp_link_down_events().size(), 1u);
  EXPECT_EQ(net_.igp_link_down_events()[0], core_link);
}

TEST_F(FailureTest, ForeignIntraFailureNotInIgpFeed) {
  net_.start_recording();
  LinkId foreign;
  for (const auto& link : net_.topology().links()) {
    if (!link.interdomain &&
        net_.topology().as_of_router(link.a) == AsId{1}) {
      foreign = link.id;
      break;
    }
  }
  net_.fail_link(foreign);
  net_.reconverge();
  EXPECT_TRUE(net_.igp_link_down_events().empty());
}

TEST_F(FailureTest, OperatorRouterFailureReportsItsIgpLinks) {
  net_.start_recording();
  const RouterId r = net_.topology().as_of(AsId{0}).routers[1];
  std::size_t expected = 0;
  for (LinkId l : net_.topology().links_of(r)) {
    if (!net_.topology().link(l).interdomain) ++expected;
  }
  net_.fail_router(r);
  net_.reconverge();
  EXPECT_EQ(net_.igp_link_down_events().size(), expected);
}

TEST_F(FailureTest, WithdrawalsObservedAtOperator) {
  net_.start_recording();
  // Kill stub AS6's uplink: AS0 must receive withdrawals for prefix 6.
  LinkId uplink;
  for (const auto& l : net_.topology().links()) {
    if (l.interdomain && (net_.topology().as_of_router(l.a) == AsId{6} ||
                          net_.topology().as_of_router(l.b) == AsId{6})) {
      uplink = l.id;
      break;
    }
  }
  net_.fail_link(uplink);
  net_.reconverge();
  bool saw = false;
  for (const auto& m : net_.bgp_messages()) {
    if (m.withdraw && m.prefix == PrefixId{6}) saw = true;
    EXPECT_EQ(net_.topology().as_of_router(m.at), AsId{0});
  }
  EXPECT_TRUE(saw);
}

TEST_F(FailureTest, RecordingOffByDefault) {
  LinkId core_link;
  for (const auto& link : net_.topology().links()) {
    if (!link.interdomain &&
        net_.topology().as_of_router(link.a) == AsId{0}) {
      core_link = link.id;
      break;
    }
  }
  net_.fail_link(core_link);
  net_.reconverge();
  EXPECT_TRUE(net_.igp_link_down_events().empty());
}

TEST_F(FailureTest, RouterFailureEquivalentToAllLinksDown) {
  const RouterId victim = net_.topology().as_of(AsId{2}).routers[1];
  net_.fail_router(victim);
  net_.reconverge();
  for (LinkId l : net_.topology().links_of(victim)) {
    EXPECT_FALSE(net_.topology().link_usable(l));
  }
  // Traffic avoids the dead router where possible.
  const auto tr = net_.trace(stub_router(4), stub_router(5));
  for (const auto h : tr.hops) EXPECT_NE(h, victim);
}

}  // namespace
}  // namespace netd::sim
