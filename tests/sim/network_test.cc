#include "sim/network.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace netd::sim {
namespace {

using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::RouterId;

class TinyNetwork : public ::testing::Test {
 protected:
  TinyNetwork() : net_(topo::tiny_topology()) { net_.converge(); }

  RouterId stub_router(std::uint32_t as) {
    return net_.topology().as_of(AsId{as}).routers.front();
  }

  Network net_;
};

TEST_F(TinyNetwork, TraceReachesDestination) {
  const auto tr = net_.trace(stub_router(4), stub_router(6));
  EXPECT_TRUE(tr.ok);
  EXPECT_EQ(tr.hops.front(), stub_router(4));
  EXPECT_EQ(tr.hops.back(), stub_router(6));
  EXPECT_EQ(tr.links.size() + 1, tr.hops.size());
}

TEST_F(TinyNetwork, TraceToSelfAs) {
  const auto& topo = net_.topology();
  // Two routers inside core AS0: pure IGP forwarding.
  const RouterId a = topo.as_of(AsId{0}).routers[0];
  const RouterId b = topo.as_of(AsId{0}).routers[2];
  const auto tr = net_.trace(a, b);
  EXPECT_TRUE(tr.ok);
  for (LinkId l : tr.links) EXPECT_FALSE(topo.link(l).interdomain);
}

TEST_F(TinyNetwork, TraceLinksMatchHops) {
  const auto tr = net_.trace(stub_router(4), stub_router(5));
  ASSERT_TRUE(tr.ok);
  const auto& topo = net_.topology();
  for (std::size_t i = 0; i < tr.links.size(); ++i) {
    const auto& l = topo.link(tr.links[i]);
    const bool forward = l.a == tr.hops[i] && l.b == tr.hops[i + 1];
    const bool backward = l.b == tr.hops[i] && l.a == tr.hops[i + 1];
    EXPECT_TRUE(forward || backward);
  }
}

TEST_F(TinyNetwork, TraceIsValleyFree) {
  // stub4 -> stub6 must go up (providers), across at most one peer link,
  // then down (customers).
  const auto tr = net_.trace(stub_router(4), stub_router(6));
  ASSERT_TRUE(tr.ok);
  const auto& topo = net_.topology();
  int state = 0;  // 0=up, 1=across, 2=down
  for (std::size_t i = 0; i < tr.links.size(); ++i) {
    const auto& l = topo.link(tr.links[i]);
    if (!l.interdomain) continue;
    const auto rel = topo.neighbor_relationship(tr.links[i], tr.hops[i]);
    switch (rel) {
      case topo::Relationship::kProvider:
        EXPECT_EQ(state, 0) << "climbed after descending";
        break;
      case topo::Relationship::kPeer:
        EXPECT_LE(state, 1);
        state = std::max(state, 1);
        break;
      case topo::Relationship::kCustomer:
        state = 2;
        break;
    }
  }
}

TEST_F(TinyNetwork, FailedDestinationRouterBlackholes) {
  net_.fail_router(stub_router(6));
  net_.reconverge();
  const auto tr = net_.trace(stub_router(4), stub_router(6));
  EXPECT_FALSE(tr.ok);
}

TEST_F(TinyNetwork, SnapshotRestoreRevertsEverything) {
  const auto snap = net_.snapshot();
  const auto before = net_.trace(stub_router(4), stub_router(6));

  // Break something drastic.
  net_.fail_router(net_.topology().as_of(AsId{0}).routers[1]);
  net_.reconverge();
  net_.restore(snap);

  const auto after = net_.trace(stub_router(4), stub_router(6));
  EXPECT_EQ(before.ok, after.ok);
  EXPECT_EQ(before.hops, after.hops);
  for (const auto& l : net_.topology().links()) EXPECT_TRUE(l.up);
  for (const auto& r : net_.topology().routers()) EXPECT_TRUE(r.up);
}

TEST_F(TinyNetwork, MisconfigureExportBreaksOnlyThatPrefix) {
  // Find the interdomain link the 4->6 path crosses first.
  const auto tr = net_.trace(stub_router(4), stub_router(6));
  ASSERT_TRUE(tr.ok);
  const auto& topo = net_.topology();
  LinkId l;
  RouterId exporter;
  for (std::size_t i = 0; i < tr.links.size(); ++i) {
    if (topo.link(tr.links[i]).interdomain) {
      l = tr.links[i];
      exporter = tr.hops[i + 1];
      break;
    }
  }
  net_.misconfigure_export(exporter, l, PrefixId{6});
  net_.reconverge();
  EXPECT_FALSE(net_.trace(stub_router(4), stub_router(6)).ok);
  EXPECT_TRUE(net_.trace(stub_router(4), stub_router(5)).ok);
}

TEST(Network, FullMeshReachabilityOnPaperTopology) {
  Network net(topo::generate(topo::GeneratorParams{}));
  net.converge();
  const auto& topo = net.topology();
  // Check a sample of stub pairs.
  std::vector<RouterId> stubs;
  for (const auto& as : topo.ases()) {
    if (as.cls == topo::AsClass::kStub) stubs.push_back(as.routers.front());
  }
  ASSERT_GE(stubs.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      if (i == j) continue;
      EXPECT_TRUE(net.trace(stubs[i * 9], stubs[j * 9]).ok);
    }
  }
}

TEST(Network, TraceNeverLoops) {
  Network net(topo::generate(topo::GeneratorParams{}));
  net.converge();
  const auto& topo = net.topology();
  std::vector<RouterId> stubs;
  for (const auto& as : topo.ases()) {
    if (as.cls == topo::AsClass::kStub) stubs.push_back(as.routers.front());
  }
  for (std::size_t i = 0; i < 20; ++i) {
    const auto tr = net.trace(stubs[i], stubs[stubs.size() - 1 - i]);
    ASSERT_TRUE(tr.ok);
    std::set<std::uint32_t> seen;
    for (const auto r : tr.hops) {
      EXPECT_TRUE(seen.insert(r.value()).second) << "router revisited";
    }
  }
}

}  // namespace
}  // namespace netd::sim

namespace netd::sim {
namespace {

TEST_F(TinyNetwork, TraceToSelfIsTrivial) {
  const auto r = stub_router(4);
  const auto tr = net_.trace(r, r);
  EXPECT_TRUE(tr.ok);
  EXPECT_EQ(tr.hops, std::vector<topo::RouterId>{r});
  EXPECT_TRUE(tr.links.empty());
}

TEST_F(TinyNetwork, TraceFromDownSourceFails) {
  net_.fail_router(stub_router(4));
  net_.reconverge();
  const auto tr = net_.trace(stub_router(4), stub_router(6));
  EXPECT_FALSE(tr.ok);
  EXPECT_EQ(tr.hops.size(), 1u);
}

}  // namespace
}  // namespace netd::sim
