#include "svc/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.h"

namespace netd::svc {
namespace {

/// A real (small) scenario's trace, produced by the exp runner. Shared
/// across tests — recording is the expensive part.
const std::string& scenario_trace() {
  static const std::string trace = [] {
    exp::ScenarioConfig cfg;
    cfg.topo_params.target_ases = 40;
    cfg.topo_params.pool_stubs = 80;
    cfg.topo_params.pool_tier2 = 10;
    cfg.num_placements = 1;
    cfg.trials_per_placement = 3;
    exp::Runner runner(cfg);
    std::ostringstream os;
    SessionConfig scfg;
    scfg.alarm_threshold = 2;
    std::string error;
    const auto episodes = runner.record_trace(os, scfg, &error);
    EXPECT_TRUE(episodes.has_value()) << error;
    EXPECT_GT(*episodes, 0u);
    return os.str();
  }();
  return trace;
}

TEST(Trace, RecorderWritesStructurallyValidJsonl) {
  std::istringstream is(scenario_trace());
  std::string error;
  const auto trace = read_trace(is, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_FALSE(trace->empty());
  EXPECT_EQ(trace->front().type, TraceRecord::Type::kConfig);
  EXPECT_EQ(trace->front().config.alarm_threshold, 2u);
  std::size_t baselines = 0, rounds = 0, diagnoses = 0;
  for (const auto& rec : *trace) {
    switch (rec.type) {
      case TraceRecord::Type::kConfig: break;
      case TraceRecord::Type::kBaseline: ++baselines; break;
      case TraceRecord::Type::kRound: ++rounds; break;
      case TraceRecord::Type::kDiagnosis:
        ++diagnoses;
        EXPECT_FALSE(rec.diagnosis.empty());
        break;
    }
  }
  EXPECT_GT(baselines, 0u);
  // Each episode feeds exactly alarm_threshold rounds and must diagnose.
  EXPECT_EQ(rounds, 2 * baselines);
  EXPECT_EQ(diagnoses, baselines);
}

TEST(Trace, InProcessReplayReproducesEveryDiagnosis) {
  std::istringstream is(scenario_trace());
  std::string error;
  const auto trace = read_trace(is, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  const ReplayResult result = replay_in_process(*trace);
  EXPECT_TRUE(result.ok()) << result.mismatches.front();
  EXPECT_GT(result.baselines, 0u);
  EXPECT_EQ(result.rounds, 2 * result.baselines);
  EXPECT_EQ(result.diagnoses, result.baselines);
}

TEST(Trace, ReplayFlagsACorruptedDiagnosis) {
  std::istringstream is(scenario_trace());
  std::string error;
  auto trace = read_trace(is, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  for (auto& rec : *trace) {
    if (rec.type == TraceRecord::Type::kDiagnosis) {
      rec.diagnosis = R"({"links":[],"ases":[]})";  // not what the run saw
      break;
    }
  }
  const ReplayResult result = replay_in_process(*trace);
  EXPECT_FALSE(result.ok());
}

TEST(Trace, RejectsStructurallyInvalidStreams) {
  const std::string config =
      R"({"v":1,"type":"config","config":)"
      R"({"threshold":1,"algo":"nd-bgpigp","granularity":"per-neighbor"}})";
  const std::string mesh = R"("mesh":{"paths":[]})";
  struct Case {
    std::string text;
    std::string why;
  };
  const std::vector<Case> cases = {
      {"", "empty trace"},
      {"{not json}\n", "malformed line"},
      {R"({"v":1,"type":"baseline",)" + mesh + "}\n", "no config first"},
      {config + "\n" + R"({"v":1,"type":"round",)" + mesh + "}\n",
       "round before baseline"},
      {config + "\n" + config + "\n", "config repeated"},
      {config + "\n" + R"({"v":1,"type":"wat"})" + "\n", "unknown type"},
      {R"({"v":9,"type":"config","config":{}})" + std::string("\n"),
       "unsupported version"},
  };
  for (const auto& c : cases) {
    std::istringstream is(c.text);
    std::string error;
    EXPECT_FALSE(read_trace(is, &error).has_value()) << c.why;
    EXPECT_FALSE(error.empty()) << c.why;
  }
}

TEST(Trace, DiagnosisRoundMustMatchStreamPosition) {
  std::string text = scenario_trace();
  // Tamper with the first diagnosis's round field.
  const auto pos = text.find(R"("type":"diagnosis","round":)");
  ASSERT_NE(pos, std::string::npos);
  const auto digit = pos + std::string(R"("type":"diagnosis","round":)").size();
  text[digit] = '9';
  std::istringstream is(text);
  std::string error;
  EXPECT_FALSE(read_trace(is, &error).has_value());
  EXPECT_NE(error.find("round"), std::string::npos) << error;
}

TEST(Trace, RecorderCountsRoundsPerEpisode) {
  std::ostringstream os;
  SessionConfig cfg;
  TraceRecorder rec(os, cfg);
  probe::Mesh empty;
  rec.baseline(empty);
  rec.round(empty, nullptr);
  rec.round(empty, nullptr);
  EXPECT_EQ(rec.rounds(), 2u);
  rec.baseline(empty);  // new episode resets the counter
  EXPECT_EQ(rec.rounds(), 0u);
}

}  // namespace
}  // namespace netd::svc
