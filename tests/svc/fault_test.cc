#include "svc/fault.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/server.h"
#include "svc/trace.h"

namespace netd::svc {
namespace {

TEST(FaultPlanTest, DefaultPlanIsDisabledChaosIsNot) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  EXPECT_TRUE(FaultPlan::chaos(1).enabled());
}

TEST(FaultInjectorTest, SameSeedSameFrameSequenceSameFaults) {
  // The whole point of the harness: a soak is replayable from its seed.
  const auto run = [](std::uint64_t seed) {
    int sp[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    FaultInjector inj(FaultPlan::chaos(seed));
    for (int i = 0; i < 200; ++i) {
      const std::string frame =
          "{\"v\":1,\"op\":\"query\",\"session\":\"s" + std::to_string(i) +
          "\"}\n";
      (void)inj.write_frame(sp[0], frame);
      // Drain so the kernel buffer never backpressures the writer.
      char buf[256];
      while (::recv(sp[1], buf, sizeof buf, MSG_DONTWAIT) > 0) {
      }
    }
    ::close(sp[0]);
    ::close(sp[1]);
    return inj.counters();
  };
  const FaultCounters a = run(42);
  const FaultCounters b = run(42);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.truncations, b.truncations);
  EXPECT_EQ(a.corruptions, b.corruptions);
  EXPECT_EQ(a.resets, b.resets);
  // The chaos mix is aggressive enough that 200 frames always draw faults.
  EXPECT_GT(a.total(), 0u);
}

TEST(FaultInjectorTest, PassThroughWhenPlanDisabled) {
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  FaultInjector inj(FaultPlan{});
  const std::string frame = "{\"v\":1,\"op\":\"stats\"}\n";
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(inj.write_frame(sp[0], frame));
    char buf[64];
    ASSERT_EQ(::recv(sp[1], buf, sizeof buf, 0),
              static_cast<ssize_t>(frame.size()));
    EXPECT_EQ(std::string(buf, frame.size()), frame);
  }
  EXPECT_EQ(inj.counters().total(), 0u);
  ::close(sp[0]);
  ::close(sp[1]);
}

/// Records one small scenario trace (same shape as the server replay
/// test) to drive the soak with.
std::string record_soak_trace() {
  exp::ScenarioConfig cfg;
  cfg.topo_params.target_ases = 40;
  cfg.topo_params.pool_stubs = 80;
  cfg.topo_params.pool_tier2 = 10;
  cfg.num_placements = 1;
  cfg.trials_per_placement = 3;
  exp::Runner runner(cfg);
  std::ostringstream os;
  SessionConfig scfg;
  scfg.alarm_threshold = 2;
  std::string error;
  EXPECT_TRUE(runner.record_trace(os, scfg, &error).has_value()) << error;
  return os.str();
}

// The acceptance property of the whole robustness layer: with seeded
// faults mangling frames in BOTH directions, a retrying client still
// replays the full recorded stream, and every surviving diagnosis is
// byte-identical to the recording (replay_through compares them). Faults
// must actually fire, and both sides must report their counts.
TEST(ChaosSoakTest, ReplayThroughFaultyLinkMatchesRecording) {
  const std::string trace_text = record_soak_trace();
  std::istringstream is(trace_text);
  std::string error;
  const auto trace = read_trace(is, &error);
  ASSERT_TRUE(trace.has_value()) << error;

  std::vector<std::uint64_t> seeds = {1, 7, 1337};
  if (const char* env = std::getenv("ND_CHAOS_SEED"); env != nullptr) {
    seeds = {std::strtoull(env, nullptr, 10)};
  }
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Server::Options sopts;
    sopts.endpoint.port = 0;
    sopts.idle_timeout_ms = 2000;  // reap connections chaos killed
    sopts.fault_plan = FaultPlan::chaos(seed + 1);
    Server server(std::move(sopts));
    ASSERT_TRUE(server.start(&error)) << error;

    Client::Options copts;
    copts.connect_timeout_ms = 2000;
    copts.request_timeout_ms = 5000;
    copts.max_retries = 40;
    copts.backoff_base_ms = 2;
    copts.backoff_max_ms = 50;
    copts.seed = seed;
    copts.fault_plan = FaultPlan::chaos(seed + 2);
    auto client = Client::connect(server.endpoint(), copts, &error);
    ASSERT_TRUE(client.has_value()) << error;

    const ReplayResult result = replay_through(*client, "chaos", *trace);
    EXPECT_TRUE(result.ok()) << result.mismatches.front();
    EXPECT_GT(result.diagnoses, 0u);
    EXPECT_GT(client->fault_counters().total(), 0u)
        << "client chaos never fired";

    // Server-side injected faults are visible through the stats document.
    const auto stats = Json::parse(server.stats_json());
    ASSERT_TRUE(stats.has_value());
    const Json* faults = stats->find("faults");
    ASSERT_NE(faults, nullptr) << server.stats_json();
    std::uint64_t total = 0;
    for (const char* k :
         {"delays", "drops", "truncations", "corruptions", "resets"}) {
      ASSERT_NE(faults->find(k), nullptr) << k;
      total += static_cast<std::uint64_t>(faults->find(k)->as_int());
    }
    EXPECT_GT(total, 0u) << "server chaos never fired";
    server.stop();
  }
}

}  // namespace
}  // namespace netd::svc
