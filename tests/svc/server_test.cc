#include "svc/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/trace.h"

namespace netd::svc {
namespace {

/// Starts a loopback-TCP server on a kernel-assigned port.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Server::Options opts;
    opts.endpoint.port = 0;  // kernel picks
    server_.emplace(std::move(opts));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override { server_->stop(); }

  Client connect() {
    std::string error;
    auto c = Client::connect(server_->endpoint(), &error);
    EXPECT_TRUE(c.has_value()) << error;
    return std::move(*c);
  }

  std::optional<Server> server_;
};

TEST_F(ServerTest, HelloCreatesThenAttaches) {
  Client a = connect();
  std::string error;
  HelloResponse h1;
  ASSERT_TRUE(expect_response(
      a.call(Request{HelloRequest{"noc", SessionConfig{}}}, &error), &h1,
      &error))
      << error;
  EXPECT_TRUE(h1.created);

  // A second connection attaches to the same session.
  Client b = connect();
  HelloResponse h2;
  error.clear();
  ASSERT_TRUE(expect_response(
      b.call(Request{HelloRequest{"noc", SessionConfig{}}}, &error), &h2,
      &error))
      << error;
  EXPECT_FALSE(h2.created);
  EXPECT_EQ(h2.config, h1.config);

  // Attaching with a different config is refused, not silently ignored.
  SessionConfig other;
  other.alarm_threshold = 7;
  const auto rsp = b.call(Request{HelloRequest{"noc", other}}, &error);
  ASSERT_TRUE(rsp.has_value()) << error;
  const auto* err = std::get_if<ErrorResponse>(&*rsp);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->message.find("different config"), std::string::npos);
}

TEST_F(ServerTest, ObserveWithoutSessionOrBaselineIsAnError) {
  Client c = connect();
  std::string error;
  probe::Mesh empty;

  // Unknown session.
  auto rsp = c.call(Request{ObserveRequest{"ghost", empty, std::nullopt}},
                    &error);
  ASSERT_TRUE(rsp.has_value()) << error;
  EXPECT_NE(std::get_if<ErrorResponse>(&*rsp), nullptr);

  // Known session, but no baseline installed yet. The in-process facade
  // asserts on this; the server must answer with an error instead.
  HelloResponse hello;
  error.clear();
  ASSERT_TRUE(expect_response(
      c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error), &hello,
      &error))
      << error;
  rsp = c.call(Request{ObserveRequest{"s", empty, std::nullopt}}, &error);
  ASSERT_TRUE(rsp.has_value()) << error;
  const auto* err = std::get_if<ErrorResponse>(&*rsp);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->message.find("baseline"), std::string::npos);
}

TEST_F(ServerTest, ScenarioReplayThroughSocketMatchesRecording) {
  // The acceptance property: a real scenario's recorded episodes produce
  // byte-identical diagnoses when driven through a live socket.
  exp::ScenarioConfig cfg;
  cfg.topo_params.target_ases = 40;
  cfg.topo_params.pool_stubs = 80;
  cfg.topo_params.pool_tier2 = 10;
  cfg.num_placements = 1;
  cfg.trials_per_placement = 3;
  exp::Runner runner(cfg);
  std::ostringstream os;
  SessionConfig scfg;
  scfg.alarm_threshold = 2;
  std::string error;
  ASSERT_TRUE(runner.record_trace(os, scfg, &error).has_value()) << error;

  std::istringstream is(os.str());
  const auto trace = read_trace(is, &error);
  ASSERT_TRUE(trace.has_value()) << error;

  Client c = connect();
  const ReplayResult result = replay_through(c, "replay", *trace);
  EXPECT_TRUE(result.ok()) << result.mismatches.front();
  EXPECT_GT(result.diagnoses, 0u);

  // And the session retains the last diagnosis for `query`.
  QueryResponse q;
  error.clear();
  ASSERT_TRUE(expect_response(c.call(Request{QueryRequest{"replay"}}, &error),
                              &q, &error))
      << error;
  EXPECT_TRUE(q.diagnosis.has_value());
  EXPECT_GT(q.round, 0u);
}

TEST_F(ServerTest, MalformedFramesEarnErrorsNotDisconnects) {
  Client c = connect();
  std::string error;
  const std::vector<std::string> bad_frames = {
      "{ definitely not json",
      R"({"v":1,"op":"hello")",  // truncated JSON
      R"([1,2,3])",              // not an object
      R"({"v":99,"op":"query","session":"s"})",
      "",
  };
  for (const std::string& bad : bad_frames) {
    error.clear();
    const auto line = c.call_raw(bad, &error);
    ASSERT_TRUE(line.has_value()) << bad << ": " << error;
    const auto rsp = parse_response(*line, &error);
    ASSERT_TRUE(rsp.has_value()) << *line;
    EXPECT_NE(std::get_if<ErrorResponse>(&*rsp), nullptr) << *line;
  }
  // The connection survived all of it.
  StatsResponse stats;
  error.clear();
  ASSERT_TRUE(expect_response(c.call(Request{StatsRequest{}}, &error), &stats,
                              &error))
      << error;
  const auto j = Json::parse(stats.stats);
  ASSERT_TRUE(j.has_value());
  ASSERT_NE(j->find("malformed_frames"), nullptr);
  EXPECT_GE(j->find("malformed_frames")->as_int(), 5);
}

TEST(ServerTortureTest, OversizedFrameClosesOnlyThatConnection) {
  Server::Options opts;
  opts.endpoint.port = 0;
  opts.max_frame_bytes = 1024;  // small cap so the test stays cheap
  Server server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto victim = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(victim.has_value()) << error;
  const std::string huge(4096, 'x');
  const auto line = victim->call_raw(huge, &error);
  if (line.has_value()) {  // the error response may or may not outrun close
    const auto rsp = parse_response(*line, &error);
    ASSERT_TRUE(rsp.has_value()) << *line;
    EXPECT_NE(std::get_if<ErrorResponse>(&*rsp), nullptr);
  }
  // The stream cannot be resynchronized, so the server closed it.
  error.clear();
  const auto after = victim->call_raw(R"({"v":1,"op":"stats"})", &error);
  EXPECT_FALSE(after.has_value());

  // Other connections are unaffected.
  auto fresh = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(fresh.has_value()) << error;
  StatsResponse stats;
  error.clear();
  ASSERT_TRUE(expect_response(fresh->call(Request{StatsRequest{}}, &error),
                              &stats, &error))
      << error;
  const auto j = Json::parse(stats.stats);
  ASSERT_TRUE(j.has_value());
  EXPECT_GE(j->find("oversized_frames")->as_int(), 1);
  server.stop();
}

TEST_F(ServerTest, MidRequestDisconnectIsCountedAndHarmless) {
  {
    std::string error;
    Fd fd = connect_to(server_->endpoint(), &error);
    ASSERT_TRUE(fd.valid()) << error;
    // Half a frame, no newline, then vanish.
    ASSERT_TRUE(write_all(fd.get(), R"({"v":1,"op":"hel)"));
  }  // fd closes here

  // The disconnect is asynchronous; poll the metric.
  std::string error;
  Client c = connect();
  bool seen = false;
  for (int i = 0; i < 100 && !seen; ++i) {
    StatsResponse stats;
    error.clear();
    ASSERT_TRUE(expect_response(c.call(Request{StatsRequest{}}, &error),
                                &stats, &error))
        << error;
    const auto j = Json::parse(stats.stats);
    ASSERT_TRUE(j.has_value());
    seen = j->find("disconnects_mid_request")->as_int() >= 1;
    if (!seen) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(seen);
}

TEST_F(ServerTest, TwelveConcurrentSessionsMakeProgress) {
  constexpr int kClients = 12;  // > the server's 8 workers: some must queue
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &failures] {
      std::string error;
      auto c = Client::connect(server_->endpoint(), &error);
      if (!c.has_value()) {
        ++failures;
        return;
      }
      const std::string session = "s" + std::to_string(i);
      // A healthy one-pair mesh: rounds roll the baseline forward and
      // never alarm, which is all this test needs — it is about
      // concurrency, not diagnosis.
      probe::Mesh mesh;
      probe::TracePath path;
      path.src = 0;
      path.dst = 1;
      path.ok = true;
      path.hops = {{"s0", graph::NodeKind::kSensor, 4, topo::RouterId{}},
                   {"s1", graph::NodeKind::kSensor, 5, topo::RouterId{}}};
      mesh.paths.push_back(std::move(path));
      HelloResponse hello;
      SetBaselineResponse base;
      if (!expect_response(
              c->call(Request{HelloRequest{session, SessionConfig{}}}, &error),
              &hello, &error) ||
          !expect_response(
              c->call(Request{SetBaselineRequest{session, mesh}}, &error),
              &base, &error)) {
        ++failures;
        return;
      }
      for (int r = 0; r < 5; ++r) {
        ObserveResponse obs;
        error.clear();
        if (!expect_response(
                c->call(Request{ObserveRequest{session, mesh, std::nullopt}},
                        &error),
                &obs, &error)) {
          ++failures;
          return;
        }
      }
      QueryResponse q;
      error.clear();
      if (!expect_response(c->call(Request{QueryRequest{session}}, &error), &q,
                           &error)) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  std::string error;
  Client c = connect();
  StatsResponse stats;
  ASSERT_TRUE(expect_response(c.call(Request{StatsRequest{}}, &error), &stats,
                              &error))
      << error;
  const auto j = Json::parse(stats.stats);
  ASSERT_TRUE(j.has_value());
  EXPECT_GE(j->find("sessions_created")->as_int(), kClients);
  const Json* ops = j->find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_NE(ops->find("observe"), nullptr);
  EXPECT_GE(ops->find("observe")->find("count")->as_int(), 5 * kClients);
}

TEST_F(ServerTest, ShutdownOpStopsTheServer) {
  Client c = connect();
  std::string error;
  ShutdownResponse rsp;
  ASSERT_TRUE(expect_response(c.call(Request{ShutdownRequest{}}, &error), &rsp,
                              &error))
      << error;
  server_->wait();  // returns because the shutdown op fired
}

TEST(ServerIdleTimeoutTest, StalledConnectionsCannotStarveFreshClients) {
  // The slow-loris acceptance test: every worker is pinned by a peer that
  // sent half a frame and went quiet. With an idle deadline the workers
  // free themselves and a fresh client is served within the budget.
  Server::Options opts;
  opts.endpoint.port = 0;
  opts.num_threads = 2;
  opts.idle_timeout_ms = 300;
  Server server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::vector<Fd> stalled;
  for (std::size_t i = 0; i < 2; ++i) {  // one per worker
    Fd fd = connect_to(server.endpoint(), &error);
    ASSERT_TRUE(fd.valid()) << error;
    ASSERT_TRUE(write_all(fd.get(), R"({"v":1,"op":"sta)"));  // no newline
    stalled.push_back(std::move(fd));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = std::chrono::steady_clock::now();
  auto fresh = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(fresh.has_value()) << error;
  StatsResponse stats;
  ASSERT_TRUE(expect_response(fresh->call(Request{StatsRequest{}}, &error),
                              &stats, &error))
      << error;
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Served as soon as a stalled peer hit its deadline, well before any
  // blocking-forever failure mode (the test itself would hang).
  EXPECT_LT(waited.count(), 5000);

  const auto j = Json::parse(stats.stats);
  ASSERT_TRUE(j.has_value());
  ASSERT_NE(j->find("idle_timeouts"), nullptr);
  EXPECT_GE(j->find("idle_timeouts")->as_int(), 1);
  server.stop();
}

TEST(ServerUnixSocketTest, StaleSocketFileIsReclaimedOnStart) {
  // A killed daemon leaves its socket file behind; a restart must detect
  // that nothing answers on it and rebind instead of failing.
  const std::string path = ::testing::TempDir() + "svc_stale.sock";
  ::unlink(path.c_str());
  {
    Endpoint ep;
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = path;
    std::string error;
    Fd listener = listen_on(ep, &error);
    ASSERT_TRUE(listener.valid()) << error;
  }  // closed WITHOUT unlink: the file stays, dead

  Server::Options opts;
  opts.endpoint.kind = Endpoint::Kind::kUnix;
  opts.endpoint.path = path;
  Server server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto c = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(c.has_value()) << error;
  StatsResponse stats;
  ASSERT_TRUE(expect_response(c->call(Request{StatsRequest{}}, &error), &stats,
                              &error))
      << error;
  server.stop();
}

TEST(ServerUnixSocketTest, LiveSocketIsNeverClobbered) {
  const std::string path = ::testing::TempDir() + "svc_live.sock";
  ::unlink(path.c_str());
  Server::Options opts;
  opts.endpoint.kind = Endpoint::Kind::kUnix;
  opts.endpoint.path = path;
  Server first(std::move(opts));
  std::string error;
  ASSERT_TRUE(first.start(&error)) << error;

  Server::Options opts2;
  opts2.endpoint.kind = Endpoint::Kind::kUnix;
  opts2.endpoint.path = path;
  Server second(std::move(opts2));
  EXPECT_FALSE(second.start(&error));
  EXPECT_NE(error.find("live server"), std::string::npos) << error;

  // The first server is unharmed.
  auto c = Client::connect(first.endpoint(), &error);
  ASSERT_TRUE(c.has_value()) << error;
  StatsResponse stats;
  ASSERT_TRUE(expect_response(c->call(Request{StatsRequest{}}, &error), &stats,
                              &error))
      << error;
  first.stop();
}

TEST(ServerUnixSocketTest, ServesOverUnixDomainSocket) {
  Server::Options opts;
  opts.endpoint.kind = Endpoint::Kind::kUnix;
  opts.endpoint.path = ::testing::TempDir() + "svc_test.sock";
  Server server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto c = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(c.has_value()) << error;
  HelloResponse hello;
  ASSERT_TRUE(expect_response(
      c->call(Request{HelloRequest{"u", SessionConfig{}}}, &error), &hello,
      &error))
      << error;
  EXPECT_TRUE(hello.created);
  server.stop();
}

TEST(ServerLatencyMetricsTest, StatsReportLatencyPercentilesPerOp) {
  Server::Options opts;
  opts.endpoint.port = 0;
  Server server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto c = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(c.has_value()) << error;
  for (int i = 0; i < 3; ++i) {
    StatsResponse stats;
    error.clear();
    ASSERT_TRUE(expect_response(c->call(Request{StatsRequest{}}, &error),
                                &stats, &error))
        << error;
  }
  StatsResponse stats;
  error.clear();
  ASSERT_TRUE(expect_response(c->call(Request{StatsRequest{}}, &error), &stats,
                              &error))
      << error;
  const auto j = Json::parse(stats.stats);
  ASSERT_TRUE(j.has_value()) << stats.stats;
  const Json* op = j->find("ops")->find("stats");
  ASSERT_NE(op, nullptr) << stats.stats;
  EXPECT_GE(op->find("count")->as_int(), 3);
  const Json* lat = op->find("lat_us");
  ASSERT_NE(lat, nullptr);
  for (const char* q : {"p50", "p90", "p99", "max"}) {
    ASSERT_NE(lat->find(q), nullptr) << q;
    EXPECT_GT(lat->find(q)->as_double(), 0.0) << q;
  }
  server.stop();
}

}  // namespace
}  // namespace netd::svc
