#include "svc/client.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/json.h"
#include "svc/server.h"
#include "svc/socket.h"

namespace netd::svc {
namespace {

using Clock = std::chrono::steady_clock;

int elapsed_ms(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

/// A raw loopback listener the tests control by hand (never accepts, or
/// is scripted by a thread).
struct RawListener {
  Fd fd;
  int port = 0;

  static RawListener open(int backlog) {
    RawListener rl;
    rl.fd = Fd(::socket(AF_INET, SOCK_STREAM, 0));
    EXPECT_TRUE(rl.fd.valid());
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(rl.fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr),
              0);
    EXPECT_EQ(::listen(rl.fd.get(), backlog), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(rl.fd.get(), reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    rl.port = ntohs(addr.sin_port);
    return rl;
  }

  [[nodiscard]] Endpoint endpoint() const {
    Endpoint ep;
    ep.port = port;
    return ep;
  }
};

TEST(ClientDeadlineTest, ConnectTimesOutAgainstFullBacklog) {
  // listen(fd, 0) plus a few parked connects saturates the accept queue;
  // further SYNs are dropped, so an undeadlined connect would hang for
  // the kernel's SYN-retry schedule (minutes). The client's poll-based
  // deadline must fire instead.
  RawListener rl = RawListener::open(0);
  std::vector<Fd> parked;
  std::string error;
  for (int i = 0; i < 4; ++i) {
    Fd fd = connect_to(rl.endpoint(), &error, 200);
    if (!fd.valid()) break;  // queue is full from here on
    parked.push_back(std::move(fd));
  }

  Client::Options opts;
  opts.connect_timeout_ms = 300;
  const auto start = Clock::now();
  error.clear();
  auto client = Client::connect(rl.endpoint(), opts, &error);
  EXPECT_FALSE(client.has_value());
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  EXPECT_LT(elapsed_ms(start), 3000);
}

TEST(ClientDeadlineTest, ServerClosingMidResponseIsACleanError) {
  RawListener rl = RawListener::open(4);
  std::thread fake([&] {
    Fd conn(::accept(rl.fd.get(), nullptr, nullptr));
    ASSERT_TRUE(conn.valid());
    LineReader reader(conn.get(), kMaxFrameBytes);
    std::string line;
    ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
    // Half a response, no newline, then vanish.
    ASSERT_TRUE(write_all(conn.get(), R"({"v":1,"ok":{"session)"));
  });

  Client::Options opts;
  opts.request_timeout_ms = 2000;
  std::string error;
  auto client = Client::connect(rl.endpoint(), opts, &error);
  ASSERT_TRUE(client.has_value()) << error;
  const auto rsp = client->call(Request{StatsRequest{}}, &error);
  EXPECT_FALSE(rsp.has_value());
  EXPECT_FALSE(error.empty());
  // The server took the request and vanished mid-exchange: the request
  // may have been applied, so the caller must redeliver idempotently.
  EXPECT_EQ(client->last_error_kind(), Client::ErrorKind::kClosedMidFrame);
  fake.join();
}

TEST(ClientDeadlineTest, ErrorKindsDistinguishRefusalFromMidFrameClose) {
  // A healthy exchange, then the server disappears entirely. The retry
  // loop's last failure is the reconnect refusal — the "spool and wait"
  // signal, as opposed to the "redeliver idempotently" mid-frame close.
  Server::Options sopts;
  sopts.endpoint.port = 0;
  Server server(std::move(sopts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const Endpoint ep = server.endpoint();

  Client::Options opts;
  opts.max_retries = 1;
  opts.backoff_base_ms = 1;
  opts.backoff_max_ms = 5;
  opts.connect_timeout_ms = 500;
  opts.request_timeout_ms = 2000;
  auto client = Client::connect(ep, opts, &error);
  ASSERT_TRUE(client.has_value()) << error;
  StatsResponse stats;
  ASSERT_TRUE(expect_response(client->call(Request{StatsRequest{}}, &error),
                              &stats, &error))
      << error;
  EXPECT_EQ(client->last_error_kind(), Client::ErrorKind::kNone);

  server.stop();
  error.clear();
  EXPECT_FALSE(client->call(Request{StatsRequest{}}, &error).has_value());
  EXPECT_EQ(client->last_error_kind(), Client::ErrorKind::kConnectRefused);
}

TEST(ClientRetryTest, ReconnectsAndSucceedsAgainstFlakyServer) {
  RawListener rl = RawListener::open(4);
  std::thread fake([&] {
    // Connection 1: die before answering.
    {
      Fd conn(::accept(rl.fd.get(), nullptr, nullptr));
      ASSERT_TRUE(conn.valid());
      LineReader reader(conn.get(), kMaxFrameBytes);
      std::string line;
      ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
    }
    // Connection 2: answer properly.
    Fd conn(::accept(rl.fd.get(), nullptr, nullptr));
    ASSERT_TRUE(conn.valid());
    LineReader reader(conn.get(), kMaxFrameBytes);
    std::string line;
    ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
    const std::string rsp =
        serialize(Response{StatsResponse{"{\"ok\":true}"}}) + "\n";
    ASSERT_TRUE(write_all(conn.get(), rsp));
  });

  Client::Options opts;
  opts.max_retries = 3;
  opts.backoff_base_ms = 1;
  opts.backoff_max_ms = 10;
  opts.request_timeout_ms = 2000;
  std::string error;
  auto client = Client::connect(rl.endpoint(), opts, &error);
  ASSERT_TRUE(client.has_value()) << error;
  const auto rsp = client->call(Request{StatsRequest{}}, &error);
  ASSERT_TRUE(rsp.has_value()) << error;
  const auto* stats = std::get_if<StatsResponse>(&*rsp);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->stats, "{\"ok\":true}");
  EXPECT_EQ(client->last_error_kind(), Client::ErrorKind::kNone);
  fake.join();
}

/// One healthy single-pair mesh (enough to feed observation rounds).
probe::Mesh tiny_mesh() {
  probe::Mesh mesh;
  probe::TracePath path;
  path.src = 0;
  path.dst = 1;
  path.ok = true;
  path.hops = {{"s0", graph::NodeKind::kSensor, 4, topo::RouterId{}},
               {"s1", graph::NodeKind::kSensor, 5, topo::RouterId{}}};
  mesh.paths.push_back(std::move(path));
  return mesh;
}

TEST(ClientRetryTest, DuplicateObserveSeqIsDedupedServerSide) {
  Server::Options sopts;
  sopts.endpoint.port = 0;
  Server server(std::move(sopts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto client = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(client.has_value()) << error;

  const probe::Mesh mesh = tiny_mesh();
  HelloResponse hello;
  SetBaselineResponse base;
  ASSERT_TRUE(expect_response(
      client->call(Request{HelloRequest{"dedup", SessionConfig{}}}, &error),
      &hello, &error))
      << error;
  ASSERT_TRUE(expect_response(
      client->call(Request{SetBaselineRequest{"dedup", mesh}}, &error), &base,
      &error))
      << error;

  // The same observe frame sent twice — what a retry after a lost
  // response looks like — must feed the round ONCE and answer twice,
  // byte-identically.
  const std::string frame = serialize(
      Request{ObserveRequest{"dedup", mesh, std::nullopt, 1}});
  const auto first = client->call_raw(frame, &error);
  ASSERT_TRUE(first.has_value()) << error;
  const auto second = client->call_raw(frame, &error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_EQ(*first, *second);

  ObserveResponse obs1;
  ASSERT_TRUE(expect_response(parse_response(*first, &error), &obs1, &error))
      << error;
  EXPECT_EQ(obs1.round, 1u);

  // A new sequence number advances the round again.
  const auto third = client->call_raw(
      serialize(Request{ObserveRequest{"dedup", mesh, std::nullopt, 2}}),
      &error);
  ASSERT_TRUE(third.has_value()) << error;
  ObserveResponse obs3;
  ASSERT_TRUE(expect_response(parse_response(*third, &error), &obs3, &error))
      << error;
  EXPECT_EQ(obs3.round, 2u);

  const auto stats = Json::parse(server.stats_json());
  ASSERT_TRUE(stats.has_value());
  ASSERT_NE(stats->find("dedup_hits"), nullptr);
  EXPECT_GE(stats->find("dedup_hits")->as_int(), 1);
  server.stop();
}

TEST(OverloadTest, PendingQueueBeyondCapIsShedWithRetryAfter) {
  Server::Options sopts;
  sopts.endpoint.port = 0;
  sopts.num_threads = 1;
  sopts.max_pending = 1;
  sopts.retry_after_ms = 250;
  Server server(std::move(sopts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Pin the single worker with a connection mid-session.
  auto pinned = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(pinned.has_value()) << error;
  StatsResponse stats;
  ASSERT_TRUE(expect_response(pinned->call(Request{StatsRequest{}}, &error),
                              &stats, &error))
      << error;

  // This one parks in the pending queue (no worker free).
  auto queued = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(queued.has_value()) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The queue is at max_pending: the next connection is shed by the
  // acceptor, which pushes a structured overloaded error unprompted and
  // closes. Read-only here — writing a request could race the close into
  // an RST that discards the buffered response.
  Fd shed = connect_to(server.endpoint(), &error);
  ASSERT_TRUE(shed.valid()) << error;
  LineReader reader(shed.get(), kMaxFrameBytes);
  reader.set_timeout_ms(2000);
  std::string line;
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  const auto rsp = parse_response(line, &error);
  ASSERT_TRUE(rsp.has_value()) << line;
  const auto* err = std::get_if<ErrorResponse>(&*rsp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, kErrOverloaded);
  ASSERT_TRUE(err->retry_after_ms.has_value());
  EXPECT_EQ(*err->retry_after_ms, 250u);

  const auto j = Json::parse(server.stats_json());
  ASSERT_TRUE(j.has_value());
  EXPECT_GE(j->find("shed_requests")->as_int(), 1);
  server.stop();
}

TEST(OverloadTest, MaxSessionsCapShedsNewSessionsNotAttaches) {
  Server::Options sopts;
  sopts.endpoint.port = 0;
  sopts.max_sessions = 1;
  Server server(std::move(sopts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto client = Client::connect(server.endpoint(), &error);
  ASSERT_TRUE(client.has_value()) << error;

  HelloResponse hello;
  ASSERT_TRUE(expect_response(
      client->call(Request{HelloRequest{"only", SessionConfig{}}}, &error),
      &hello, &error))
      << error;
  EXPECT_TRUE(hello.created);

  // A second session would exceed the cap.
  const auto rsp =
      client->call(Request{HelloRequest{"another", SessionConfig{}}}, &error);
  ASSERT_TRUE(rsp.has_value()) << error;
  const auto* err = std::get_if<ErrorResponse>(&*rsp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, kErrOverloaded);

  // Re-attaching to the existing session is not a new session.
  HelloResponse again;
  error.clear();
  ASSERT_TRUE(expect_response(
      client->call(Request{HelloRequest{"only", SessionConfig{}}}, &error),
      &again, &error))
      << error;
  EXPECT_FALSE(again.created);
  server.stop();
}

}  // namespace
}  // namespace netd::svc
