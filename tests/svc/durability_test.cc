// In-process durability tests: a Server with a state directory is
// stopped and a fresh Server is started over the same directory. The
// acceptance property is byte-identical recovery — diagnosis state,
// retry caches, and batch watermarks all survive the restart.
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.h"
#include "svc/client.h"
#include "svc/journal.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/trace.h"
#include "util/record_log.h"

namespace netd::svc {
namespace {

probe::Mesh healthy_mesh() {
  probe::Mesh mesh;
  probe::TracePath path;
  path.src = 0;
  path.dst = 1;
  path.ok = true;
  path.hops = {{"s0", graph::NodeKind::kSensor, 4, topo::RouterId{}},
               {"s1", graph::NodeKind::kSensor, 5, topo::RouterId{}}};
  mesh.paths.push_back(std::move(path));
  return mesh;
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/netd_durable_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    state_dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + state_dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  Server::Options durable_options() const {
    Server::Options opts;
    opts.endpoint.port = 0;
    opts.state_dir = state_dir_;
    return opts;
  }

  static Client connect(Server& server) {
    std::string error;
    auto c = Client::connect(server.endpoint(), &error);
    EXPECT_TRUE(c.has_value()) << error;
    return std::move(*c);
  }

  /// Files under <state_dir>/sessions/<enc>/ whose name ends with
  /// `suffix` (suffix, not substring: `wal-...ndj.quarantined` must not
  /// count as a live `.ndj`).
  std::vector<std::string> session_files(const std::string& session,
                                         const std::string& suffix) const {
    std::vector<std::string> out;
    const std::string dir =
        state_dir_ + "/sessions/" + encode_session_dir(session);
    const std::string cmd =
        "ls '" + dir + "' 2>/dev/null > '" + state_dir_ + "/ls.txt'";
    if (std::system(cmd.c_str()) != 0) return out;
    std::ifstream is(state_dir_ + "/ls.txt");
    std::string line;
    while (std::getline(is, line)) {
      if (line.size() >= suffix.size() &&
          line.compare(line.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        out.push_back(dir + "/" + line);
      }
    }
    return out;
  }

  std::string state_dir_;
};

TEST_F(DurabilityTest, EphemeralServerAdvertisesNoEpoch) {
  Server::Options opts;
  opts.endpoint.port = 0;  // no state_dir: legacy ephemeral mode
  Server server(std::move(opts));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client c = connect(server);
  HelloResponse hello;
  ASSERT_TRUE(expect_response(
      c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error), &hello,
      &error))
      << error;
  EXPECT_EQ(hello.epoch, 0u);
  server.stop();
}

TEST_F(DurabilityTest, EpochBumpsAndSessionSurvivesRestart) {
  std::string error;
  {
    Server server(durable_options());
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"noc", SessionConfig{}}}, &error), &hello,
        &error))
        << error;
    EXPECT_TRUE(hello.created);
    EXPECT_EQ(hello.epoch, 1u);
    server.stop();
  }
  {
    Server server(durable_options());
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"noc", SessionConfig{}}}, &error), &hello,
        &error))
        << error;
    // The session was recovered, not re-created, and the epoch moved.
    EXPECT_FALSE(hello.created);
    EXPECT_EQ(hello.epoch, 2u);
    server.stop();
  }
}

TEST_F(DurabilityTest, RecoveredSessionKeepsItsConfig) {
  std::string error;
  SessionConfig cfg;
  cfg.alarm_threshold = 3;
  cfg.algo = "tomo";
  cfg.granularity = "none";
  {
    Server server(durable_options());
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    ASSERT_TRUE(expect_response(c.call(Request{HelloRequest{"s", cfg}}, &error),
                                &hello, &error))
        << error;
    server.stop();
  }
  Server server(durable_options());
  ASSERT_TRUE(server.start(&error)) << error;
  Client c = connect(server);
  // Attaching with the original config succeeds...
  HelloResponse hello;
  ASSERT_TRUE(expect_response(c.call(Request{HelloRequest{"s", cfg}}, &error),
                              &hello, &error))
      << error;
  EXPECT_FALSE(hello.created);
  EXPECT_EQ(hello.config, cfg);
  // ...and a different config is refused, exactly as pre-restart.
  const auto rsp =
      c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error);
  ASSERT_TRUE(rsp.has_value()) << error;
  EXPECT_NE(std::get_if<ErrorResponse>(&*rsp), nullptr);
  server.stop();
}

TEST_F(DurabilityTest, RestartedReplayIsByteIdenticalToUninterrupted) {
  // Record a real scenario's observation stream, then drive it through
  // two servers: an uninterrupted reference, and a durable server that
  // is stopped and restarted halfway. Every response after the baseline
  // — and the final query — must match byte for byte.
  exp::ScenarioConfig cfg;
  cfg.topo_params.target_ases = 40;
  cfg.topo_params.pool_stubs = 80;
  cfg.topo_params.pool_tier2 = 10;
  cfg.num_placements = 1;
  cfg.trials_per_placement = 3;
  exp::Runner runner(cfg);
  std::ostringstream os;
  SessionConfig scfg;
  scfg.alarm_threshold = 2;
  std::string error;
  ASSERT_TRUE(runner.record_trace(os, scfg, &error).has_value()) << error;
  std::istringstream is(os.str());
  const auto trace = read_trace(is, &error);
  ASSERT_TRUE(trace.has_value()) << error;

  // Indices of the records we feed (baselines and rounds).
  std::vector<std::size_t> feed;
  for (std::size_t i = 0; i < trace->size(); ++i) {
    const auto t = (*trace)[i].type;
    if (t == TraceRecord::Type::kBaseline || t == TraceRecord::Type::kRound)
      feed.push_back(i);
  }
  ASSERT_GT(feed.size(), 4u);
  const std::size_t cut = feed.size() / 2;

  const auto feed_range = [&](Client& c, std::size_t from, std::size_t to,
                              std::vector<std::string>* out) {
    for (std::size_t k = from; k < to; ++k) {
      const TraceRecord& rec = (*trace)[feed[k]];
      std::string err;
      std::optional<Response> rsp;
      if (rec.type == TraceRecord::Type::kBaseline) {
        rsp = c.call(Request{SetBaselineRequest{"replay", rec.mesh}}, &err);
      } else {
        rsp = c.call(Request{ObserveRequest{"replay", rec.mesh, rec.cp}},
                     &err);
      }
      ASSERT_TRUE(rsp.has_value()) << err;
      ASSERT_EQ(std::get_if<ErrorResponse>(&*rsp), nullptr)
          << serialize(*rsp);
      out->push_back(serialize(*rsp));
    }
  };
  const auto query = [&](Client& c) {
    std::string err;
    const auto rsp = c.call(Request{QueryRequest{"replay"}}, &err);
    EXPECT_TRUE(rsp.has_value()) << err;
    return rsp.has_value() ? serialize(*rsp) : std::string{};
  };

  // Reference: one ephemeral server, never interrupted.
  std::vector<std::string> want;
  std::string want_query;
  {
    Server::Options opts;
    opts.endpoint.port = 0;
    Server server(std::move(opts));
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"replay", scfg}}, &error), &hello,
        &error))
        << error;
    feed_range(c, 0, feed.size(), &want);
    want_query = query(c);
    server.stop();
  }

  // Durable run, restarted at the cut.
  std::vector<std::string> got;
  {
    Server server(durable_options());
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"replay", scfg}}, &error), &hello,
        &error))
        << error;
    feed_range(c, 0, cut, &got);
    server.stop();
  }
  {
    Server server(durable_options());
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    // No re-hello needed: recovery registered the session.
    feed_range(c, cut, feed.size(), &got);
    const std::string got_query = query(c);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "response " << i << " diverged";
    }
    EXPECT_EQ(got_query, want_query);
    server.stop();
  }
}

TEST_F(DurabilityTest, BatchWatermarksSurviveRestartAndDedupRedelivery) {
  const probe::Mesh mesh = healthy_mesh();
  ObserveBatchRequest batch;
  batch.session = "s";
  batch.src = "agent-1";
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    batch.items.push_back(ObserveItem{seq, mesh, std::nullopt});
  }
  std::string error;
  {
    Server server(durable_options());
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    SetBaselineResponse base;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error), &hello,
        &error))
        << error;
    ASSERT_TRUE(expect_response(
        c.call(Request{SetBaselineRequest{"s", mesh}}, &error), &base,
        &error))
        << error;
    ObserveBatchResponse rsp;
    ASSERT_TRUE(expect_response(c.call(Request{batch}, &error), &rsp, &error))
        << error;
    EXPECT_EQ(rsp.ack, 3u);
    EXPECT_EQ(rsp.applied, 3u);
    EXPECT_EQ(rsp.deduped, 0u);
    server.stop();
  }
  // The agent never saw the response (say the reply was lost) and
  // redelivers the whole batch to the restarted server.
  Server server(durable_options());
  ASSERT_TRUE(server.start(&error)) << error;
  Client c = connect(server);
  ObserveBatchResponse redelivered;
  ASSERT_TRUE(expect_response(c.call(Request{batch}, &error), &redelivered,
                              &error))
      << error;
  EXPECT_EQ(redelivered.ack, 3u);
  EXPECT_EQ(redelivered.applied, 0u);  // zero re-ingest
  EXPECT_EQ(redelivered.deduped, 3u);
  EXPECT_EQ(redelivered.round, 3u);  // rounds did not double
  // An empty watermark probe agrees.
  ObserveBatchResponse probe;
  ASSERT_TRUE(expect_response(
      c.call(Request{ObserveBatchRequest{"s", "agent-1", {}}}, &error),
      &probe, &error))
      << error;
  EXPECT_EQ(probe.ack, 3u);
  server.stop();
}

TEST_F(DurabilityTest, ObserveRetryCacheSurvivesRestart) {
  const probe::Mesh mesh = healthy_mesh();
  std::string error;
  std::string first_response;
  {
    Server server(durable_options());
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    SetBaselineResponse base;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error), &hello,
        &error))
        << error;
    ASSERT_TRUE(expect_response(
        c.call(Request{SetBaselineRequest{"s", mesh}}, &error), &base,
        &error))
        << error;
    const auto rsp = c.call(
        Request{ObserveRequest{"s", mesh, std::nullopt, std::uint64_t{1}}},
        &error);
    ASSERT_TRUE(rsp.has_value()) << error;
    first_response = serialize(*rsp);
    server.stop();
  }
  Server server(durable_options());
  ASSERT_TRUE(server.start(&error)) << error;
  Client c = connect(server);
  // The retried observe (same seq) is answered from the recovered cache,
  // byte-identically, without feeding the round twice.
  const auto retry = c.call(
      Request{ObserveRequest{"s", mesh, std::nullopt, std::uint64_t{1}}},
      &error);
  ASSERT_TRUE(retry.has_value()) << error;
  EXPECT_EQ(serialize(*retry), first_response);
  QueryResponse q;
  ASSERT_TRUE(expect_response(c.call(Request{QueryRequest{"s"}}, &error), &q,
                              &error))
      << error;
  server.stop();
}

TEST_F(DurabilityTest, SnapshotBoundsReplayAndPrunesSegments) {
  const probe::Mesh mesh = healthy_mesh();
  std::string error;
  Server::Options opts = durable_options();
  opts.snapshot_every = 4;  // snapshot after every few records
  {
    Server server(std::move(opts));
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    SetBaselineResponse base;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error), &hello,
        &error))
        << error;
    ASSERT_TRUE(expect_response(
        c.call(Request{SetBaselineRequest{"s", mesh}}, &error), &base,
        &error))
        << error;
    for (int r = 0; r < 10; ++r) {
      ObserveResponse obs;
      error.clear();
      ASSERT_TRUE(expect_response(
          c.call(Request{ObserveRequest{"s", mesh, std::nullopt}}, &error),
          &obs, &error))
          << error;
    }
    server.stop();
  }
  // A snapshot exists and folded most of the journal away.
  EXPECT_EQ(session_files("s", "SNAPSHOT").size(), 1u);
  // Recovery from snapshot + short tail reproduces the session.
  Server::Options opts2 = durable_options();
  opts2.snapshot_every = 4;
  Server server(std::move(opts2));
  ASSERT_TRUE(server.start(&error)) << error;
  Client c = connect(server);
  ObserveResponse obs;
  ASSERT_TRUE(expect_response(
      c.call(Request{ObserveRequest{"s", mesh, std::nullopt}}, &error), &obs,
      &error))
      << error;
  EXPECT_EQ(obs.round, 11u);  // 10 before the restart, 1 after
  server.stop();
}

TEST_F(DurabilityTest, CorruptJournalQuarantinesAndFallsBackToAmnesia) {
  const probe::Mesh mesh = healthy_mesh();
  std::string error;
  {
    Server server(durable_options());
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    SetBaselineResponse base;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error), &hello,
        &error))
        << error;
    ASSERT_TRUE(expect_response(
        c.call(Request{SetBaselineRequest{"s", mesh}}, &error), &base,
        &error))
        << error;
    ObserveResponse obs;
    ASSERT_TRUE(expect_response(
        c.call(Request{ObserveRequest{"s", mesh, std::nullopt}}, &error),
        &obs, &error))
        << error;
    server.stop();
  }
  // Flip a payload byte in the first journal record.
  const auto segs = session_files("s", ".ndj");
  ASSERT_FALSE(segs.empty());
  {
    std::fstream f(segs[0], std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(util::record_log::kHeaderBytes));
    f.put('~');
  }
  Server server(durable_options());
  ASSERT_TRUE(server.start(&error)) << error;
  Client c = connect(server);
  // The session is gone (amnesia), answered with the structured code the
  // agent protocol reacts to...
  const auto rsp = c.call(Request{QueryRequest{"s"}}, &error);
  ASSERT_TRUE(rsp.has_value()) << error;
  const auto* err = std::get_if<ErrorResponse>(&*rsp);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->code, kErrUnknownSession);
  // ...the bytes were preserved, not destroyed...
  EXPECT_FALSE(session_files("s", ".quarantined").empty());
  EXPECT_TRUE(session_files("s", ".ndj").empty());
  // ...and re-hello starts a fresh durable life for the name.
  HelloResponse hello;
  ASSERT_TRUE(expect_response(
      c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error), &hello,
      &error))
      << error;
  EXPECT_TRUE(hello.created);
  server.stop();
}

TEST_F(DurabilityTest, FsyncAlwaysServesAndRecoversIdentically) {
  const probe::Mesh mesh = healthy_mesh();
  std::string error;
  Server::Options opts = durable_options();
  opts.fsync = FsyncPolicy::kAlways;
  {
    Server server(std::move(opts));
    ASSERT_TRUE(server.start(&error)) << error;
    Client c = connect(server);
    HelloResponse hello;
    SetBaselineResponse base;
    ASSERT_TRUE(expect_response(
        c.call(Request{HelloRequest{"s", SessionConfig{}}}, &error), &hello,
        &error))
        << error;
    ASSERT_TRUE(expect_response(
        c.call(Request{SetBaselineRequest{"s", mesh}}, &error), &base,
        &error))
        << error;
    ObserveResponse obs;
    ASSERT_TRUE(expect_response(
        c.call(Request{ObserveRequest{"s", mesh, std::nullopt}}, &error),
        &obs, &error))
        << error;
    EXPECT_EQ(obs.round, 1u);
    server.stop();
  }
  Server::Options opts2 = durable_options();
  opts2.fsync = FsyncPolicy::kAlways;
  Server server(std::move(opts2));
  ASSERT_TRUE(server.start(&error)) << error;
  Client c = connect(server);
  ObserveResponse obs;
  ASSERT_TRUE(expect_response(
      c.call(Request{ObserveRequest{"s", mesh, std::nullopt}}, &error), &obs,
      &error))
      << error;
  EXPECT_EQ(obs.round, 2u);
  server.stop();
}

}  // namespace
}  // namespace netd::svc
