// The observability surface of the service: the Prometheus `metrics`
// verb, the byte-pinned stats document, the per-request refresh of
// campaign-mirrored counters, and the appended uptime fields.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.h"
#include "svc/json.h"
#include "svc/metrics.h"
#include "svc/protocol.h"
#include "svc/server.h"

namespace netd::svc {
namespace {

/// The stats verb's document is a compatibility surface: downstream
/// dashboards parse it. This pins ServiceMetrics::to_json byte-for-byte;
/// a failure here means a wire-visible format change.
TEST(ServiceMetricsGolden, ToJsonIsBytePinned) {
  ServiceMetrics m;
  m.connections = 3;
  m.sessions_created = 1;
  m.malformed_frames = 2;
  m.oversized_frames = 0;
  m.disconnects_mid_request = 1;
  m.idle_timeouts = 0;
  m.shed_requests = 4;
  m.dedup_hits = 5;
  m.quarantined_trials = 6;
  m.faults.delays = 1;
  m.faults.drops = 2;
  m.faults.resets = 3;
  m.record("observe", true, 10.0);
  m.record("observe", false, 100.0);
  EXPECT_EQ(
      m.to_json().dump(),
      R"({"connections":3,"sessions_created":1,"malformed_frames":2,)"
      R"("oversized_frames":0,"disconnects_mid_request":1,"idle_timeouts":0,)"
      R"("shed_requests":4,"dedup_hits":5,"quarantined_trials":6,)"
      R"("faults":{"delays":1,"drops":2,"truncations":0,"corruptions":0,)"
      R"("resets":3,"total":6},"ops":{"observe":{"count":2,"errors":1,)"
      R"("lat_us":{"p50":16,"p90":100,"p99":100,"max":100}}}})");
}

TEST(ServiceMetricsSamples, MirrorsTheJsonNumbers) {
  ServiceMetrics m;
  m.connections = 7;
  m.quarantined_trials = 2;
  m.record("query", true, 5.0);
  bool saw_connections = false, saw_quarantined = false, saw_latency = false;
  for (const auto& s : m.to_samples()) {
    if (s.name == "netd_svc_connections_total") {
      saw_connections = true;
      EXPECT_DOUBLE_EQ(s.value, 7.0);
    } else if (s.name == "netd_svc_quarantined_trials_total") {
      saw_quarantined = true;
      EXPECT_DOUBLE_EQ(s.value, 2.0);
    } else if (s.name == "netd_svc_request_latency_us") {
      saw_latency = true;
      ASSERT_EQ(s.labels.size(), 1u);
      EXPECT_EQ(s.labels[0].first, "op");
      EXPECT_EQ(s.labels[0].second, "query");
      EXPECT_EQ(s.hist.count(), 1u);
    }
  }
  EXPECT_TRUE(saw_connections);
  EXPECT_TRUE(saw_quarantined);
  EXPECT_TRUE(saw_latency);
}

/// Regression: with several ops recorded, the per-op families must come
/// out grouped — a family must never reappear after another family has
/// started, or the rendered exposition repeats TYPE lines and real
/// Prometheus parsers reject the scrape.
TEST(ServiceMetricsSamples, FamiliesAreContiguousAcrossOps) {
  ServiceMetrics m;
  m.record("hello", true, 1.0);
  m.record("observe", true, 10.0);
  m.record("stats", false, 5.0);
  std::vector<std::string> family_order;
  for (const auto& s : m.to_samples()) {
    if (family_order.empty() || family_order.back() != s.name) {
      EXPECT_EQ(std::count(family_order.begin(), family_order.end(), s.name),
                0)
          << "family " << s.name << " reappears after another family";
      family_order.push_back(s.name);
    }
  }
}

class MetricsVerbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Server::Options opts;
    opts.endpoint.port = 0;
    opts.campaign_stats = [this] {
      Json j = Json::object();
      j.set("completed", Json::uinteger(1));
      j.set("quarantined",
            Json::uinteger(quarantined_.load(std::memory_order_relaxed)));
      return j;
    };
    server_.emplace(std::move(opts));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override { server_->stop(); }

  Client connect() {
    std::string error;
    auto c = Client::connect(server_->endpoint(), &error);
    EXPECT_TRUE(c.has_value()) << error;
    return std::move(*c);
  }

  Json stats_doc(Client& c) {
    std::string error;
    StatsResponse stats;
    EXPECT_TRUE(expect_response(c.call(Request{StatsRequest{}}, &error),
                                &stats, &error))
        << error;
    auto j = Json::parse(stats.stats, &error);
    EXPECT_TRUE(j.has_value()) << error;
    return j.value_or(Json::object());
  }

  std::string metrics_text(Client& c) {
    std::string error;
    const auto rsp = c.call(Request{MetricsRequest{}}, &error);
    EXPECT_TRUE(rsp.has_value()) << error;
    const auto* m = rsp ? std::get_if<MetricsResponse>(&*rsp) : nullptr;
    EXPECT_NE(m, nullptr);
    return m != nullptr ? m->text : "";
  }

  std::atomic<std::uint64_t> quarantined_{0};
  std::optional<Server> server_;
};

/// Regression: quarantined_trials must be re-read from the campaign
/// provider on every stats/metrics request, never cached from the value
/// at attach time.
TEST_F(MetricsVerbTest, QuarantinedTrialsTrackTheLiveCampaign) {
  Client c = connect();
  Json j = stats_doc(c);
  ASSERT_NE(j.find("quarantined_trials"), nullptr);
  EXPECT_EQ(j.find("quarantined_trials")->as_int(), 0);

  quarantined_.store(3, std::memory_order_relaxed);
  j = stats_doc(c);
  EXPECT_EQ(j.find("quarantined_trials")->as_int(), 3);
  ASSERT_NE(j.find("campaign"), nullptr);
  EXPECT_EQ(j.find("campaign")->find("quarantined")->as_int(), 3);

  // The Prometheus surface reads through the same snapshot path.
  const std::string text = metrics_text(c);
  EXPECT_NE(text.find("netd_svc_quarantined_trials_total 3\n"),
            std::string::npos)
      << text;
}

TEST_F(MetricsVerbTest, StatsAppendsUptimeAfterThePinnedKeys) {
  Client c = connect();
  const Json first = stats_doc(c);
  const Json* up = first.find("uptime_seconds");
  ASSERT_NE(up, nullptr);
  EXPECT_GE(up->as_double(), 0.0);
  const Json* start = first.find("start_monotonic_ms");
  ASSERT_NE(start, nullptr);
  EXPECT_GT(start->as_int(), 0);

  // Appended last, so the historical document is an unchanged prefix.
  const auto& members = first.members();
  ASSERT_GE(members.size(), 2u);
  EXPECT_EQ(members[members.size() - 2].first, "uptime_seconds");
  EXPECT_EQ(members[members.size() - 1].first, "start_monotonic_ms");
  EXPECT_EQ(members[0].first, "connections");

  // Monotonic: uptime never goes backwards, the start stamp never moves.
  const Json second = stats_doc(c);
  EXPECT_GE(second.find("uptime_seconds")->as_double(), up->as_double());
  EXPECT_EQ(second.find("start_monotonic_ms")->as_int(), start->as_int());
}

TEST_F(MetricsVerbTest, MetricsVerbRendersParseablePrometheusText) {
  Client c = connect();
  // Populate several distinct ops so the per-op families
  // (requests/errors/latency) each carry more than one series — the case
  // that used to interleave families and repeat TYPE lines.
  (void)stats_doc(c);
  (void)stats_doc(c);
  (void)metrics_text(c);
  const std::string text = metrics_text(c);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Every non-comment line must be `series value` with a numeric value,
  // and each family must announce its TYPE exactly once (real Prometheus
  // parsers reject a second TYPE line for the same name).
  std::istringstream is(text);
  std::string line;
  std::size_t samples = 0;
  bool saw_uptime = false, saw_stats_op = false;
  std::set<std::string> typed_families;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream ls(line);
        std::string hash, kind, family;
        ls >> hash >> kind >> family;
        EXPECT_TRUE(typed_families.insert(family).second)
            << "duplicate TYPE line for " << family;
      }
      continue;
    }
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string value = line.substr(sp + 1);
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0') << line;
    ++samples;
    saw_uptime |= line.rfind("netd_svc_uptime_seconds ", 0) == 0;
    saw_stats_op |=
        line.rfind("netd_svc_requests_total{op=\"stats\"}", 0) == 0;
  }
  EXPECT_GT(samples, 0u);
  EXPECT_TRUE(saw_uptime);
  EXPECT_TRUE(saw_stats_op);
}

/// Scrape stability under load: 8 sessions hammer the server with
/// counter-mutating verbs while the main thread scrapes. Every scrape
/// must stay parseable — one TYPE line per family, and the relative
/// order of families must never change between scrapes (dashboards diff
/// consecutive scrapes and a reordering family reads as a new series).
TEST_F(MetricsVerbTest, ScrapesStayWellFormedUnderConcurrentSessions) {
  constexpr int kSessions = 8;
  std::atomic<bool> stop{false};
  std::vector<std::thread> fleet;
  fleet.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    fleet.emplace_back([this, i, &stop] {
      Client c = connect();
      std::string error;
      HelloRequest hello{"scrape-" + std::to_string(i), SessionConfig{}};
      (void)c.call(Request{hello}, &error);
      while (!stop.load(std::memory_order_relaxed)) {
        // Query before a baseline exists: an error response, which still
        // bumps the per-op error counters — exactly the mutation we want
        // racing the scrape.
        (void)c.call(
            Request{QueryRequest{"scrape-" + std::to_string(i)}}, &error);
        (void)c.call(Request{StatsRequest{}}, &error);
      }
    });
  }

  Client scraper = connect();
  std::vector<std::string> last_families;
  for (int round = 0; round < 20; ++round) {
    const std::string text = metrics_text(scraper);
    std::vector<std::string> families;
    std::set<std::string> seen;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      if (line.rfind("# TYPE ", 0) != 0) continue;
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      EXPECT_TRUE(seen.insert(family).second)
          << "duplicate TYPE line for " << family << " in round " << round;
      families.push_back(family);
    }
    // Families may appear as new ops land, but those already present
    // must keep their relative order scrape over scrape.
    std::vector<std::string> projected;
    for (const auto& f : families) {
      if (std::count(last_families.begin(), last_families.end(), f) != 0) {
        projected.push_back(f);
      }
    }
    EXPECT_EQ(projected, last_families) << "family order shifted";
    last_families = std::move(families);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : fleet) t.join();
}

}  // namespace
}  // namespace netd::svc
