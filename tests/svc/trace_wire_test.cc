// The distributed-tracing wire surface: the optional `trace` field on
// every request verb, the per-item trace roots in batches, the `events`
// verb, and — most load-bearing — the guarantee that frames WITHOUT a
// trace serialize byte-identically to the pre-tracing protocol.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "obs/events.h"
#include "obs/trace_context.h"
#include "svc/protocol.h"

namespace netd::svc {
namespace {

probe::Mesh tiny_mesh() {
  probe::Mesh mesh;
  probe::TracePath p;
  p.src = 0;
  p.dst = 1;
  p.ok = true;
  p.hops = {{"s0", graph::NodeKind::kSensor, 4, topo::RouterId{}},
            {"s1", graph::NodeKind::kSensor, 5, topo::RouterId{}}};
  mesh.paths = {std::move(p)};
  return mesh;
}

std::string reserialized(const Request& req) {
  const std::string frame = serialize(req);
  std::string error;
  const auto parsed = parse_request(frame, &error);
  EXPECT_TRUE(parsed.has_value()) << frame << ": " << error;
  return parsed ? serialize(*parsed) : "";
}

/// Pre-tracing golden pins: a client that stamps no trace must emit
/// exactly the frames previous releases emitted. These strings are the
/// compatibility surface — do not regenerate them from the code.
TEST(TraceWire, TracelessFramesAreBytePinned) {
  EXPECT_EQ(serialize(Request{QueryRequest{"s"}}),
            R"({"v":1,"op":"query","session":"s"})");
  SessionConfig cfg;
  EXPECT_EQ(serialize(Request{HelloRequest{"s", cfg}}),
            R"({"v":1,"op":"hello","session":"s","config":{"threshold":1,)"
            R"("algo":"nd-bgpigp","granularity":"per-neighbor"}})");
  EXPECT_EQ(serialize(Request{ObserveBatchRequest{"s", "a", {}}}),
            R"({"v":1,"op":"observe_batch","session":"s","src":"a",)"
            R"("items":[]})");
}

TEST(TraceWire, TracelessFramesContainNoTraceKey) {
  const std::vector<Request> requests = {
      HelloRequest{"s", SessionConfig{}},
      SetBaselineRequest{"s", tiny_mesh()},
      ObserveRequest{"s", tiny_mesh(), std::nullopt, 3},
      ObserveBatchRequest{
          "s", "a", {ObserveItem{1, tiny_mesh(), std::nullopt}}},
      QueryRequest{"s"},
  };
  for (const Request& req : requests) {
    EXPECT_EQ(serialize(req).find("\"trace\""), std::string::npos)
        << serialize(req);
    EXPECT_EQ(reserialized(req), serialize(req));
  }
}

TEST(TraceWire, TracedRequestsRoundTripByteIdentical) {
  const obs::TraceContext tc = obs::TraceContext::root(11, 4);
  ObserveRequest observe{"s", tiny_mesh(), std::nullopt, 3};
  observe.trace = tc;
  ObserveBatchRequest batch{
      "s", "a",
      {ObserveItem{1, tiny_mesh(), std::nullopt, tc},
       ObserveItem{2, tiny_mesh(), std::nullopt, tc.child("x", 2)}}};
  batch.trace = tc;
  const std::vector<Request> requests = {
      HelloRequest{"s", SessionConfig{}, tc},
      SetBaselineRequest{"s", tiny_mesh(), tc},
      observe,
      batch,
      QueryRequest{"s", tc},
  };
  for (const Request& req : requests) {
    const std::string frame = serialize(req);
    EXPECT_NE(frame.find("\"trace\""), std::string::npos) << frame;
    EXPECT_EQ(reserialized(req), frame);
  }
}

TEST(TraceWire, ParsedTraceCarriesTheIds) {
  const obs::TraceContext tc = obs::TraceContext::root(5, 9);
  const std::string frame = serialize(Request{QueryRequest{"s", tc}});
  std::string error;
  const auto parsed = parse_request(frame, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto& q = std::get<QueryRequest>(*parsed);
  ASSERT_TRUE(q.trace.has_value());
  EXPECT_EQ(*q.trace, tc);
}

TEST(TraceWire, MalformedTraceIsRejectedNotIgnored) {
  std::string error;
  EXPECT_FALSE(parse_request(
      R"({"v":1,"op":"query","session":"s","trace":{"tid":"xx","sid":"0x1"}})",
      &error).has_value());
  EXPECT_FALSE(parse_request(
      R"({"v":1,"op":"query","session":"s","trace":"0x1"})", &error)
          .has_value());
  EXPECT_FALSE(parse_request(
      R"({"v":1,"op":"query","session":"s","trace":{"tid":"0x1"}})", &error)
          .has_value());
}

TEST(TraceWire, EventsVerbRoundTripsByteIdentical) {
  const std::string req_frame =
      serialize(Request{EventsRequest{17, 256}});
  std::string error;
  const auto parsed = parse_request(req_frame, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto& er = std::get<EventsRequest>(*parsed);
  EXPECT_EQ(er.cursor, 17u);
  EXPECT_EQ(er.cap, 256u);
  EXPECT_EQ(serialize(*parsed), req_frame);

  EventsResponse rsp;
  rsp.next_cursor = 9;
  obs::Event slow;
  slow.seq = 8;
  slow.t_ms = 123;
  slow.kind = obs::EventKind::kSlowRequest;
  slow.detail = "observe";
  slow.trace_id = 0xbeef;
  slow.dur_us = 250000;
  obs::Event shed;  // no trace, no duration: both keys omitted
  shed.seq = 9;
  shed.t_ms = 130;
  shed.kind = obs::EventKind::kShed;
  shed.detail = "accept";
  rsp.events = {slow, shed};
  const std::string rsp_frame = serialize(Response{rsp});
  EXPECT_NE(rsp_frame.find("\"kind\":\"slow_request\""), std::string::npos)
      << rsp_frame;
  const auto rparsed = parse_response(rsp_frame, &error);
  ASSERT_TRUE(rparsed.has_value()) << error;
  EXPECT_EQ(serialize(*rparsed), rsp_frame);
  const auto& back = std::get<EventsResponse>(*rparsed);
  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.next_cursor, 9u);
  EXPECT_EQ(back.events[0].trace_id, 0xbeefu);
  EXPECT_EQ(back.events[0].dur_us, 250000u);
  EXPECT_EQ(back.events[1].kind, obs::EventKind::kShed);
  EXPECT_EQ(back.events[1].trace_id, 0u);
  EXPECT_EQ(back.events[1].dur_us, 0u);
}

/// Redelivery determinism: the property the whole design leans on — an
/// agent that crashes and re-derives its items' traces from (seed, name,
/// seq) stamps the same ids, so the redelivered frame joins the original
/// trace instead of forking a new one.
TEST(TraceWire, RederivedItemTraceIsIdentical) {
  const std::uint64_t seed =
      obs::ids::combine(7, obs::ids::fnv1a("agent-3"));
  const obs::TraceContext first = obs::TraceContext::root(seed, 12);
  const obs::TraceContext again = obs::TraceContext::root(seed, 12);
  EXPECT_EQ(first, again);
}

}  // namespace
}  // namespace netd::svc
