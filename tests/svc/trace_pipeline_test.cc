// The cross-process tracing pipeline, end to end with real binaries.
//
// A real `netdiag serve --trace-out` process and a small fleet of real
// `netdiag-agent --trace-out` processes run a fault scenario to a
// diagnosis; then `netdiag trace-merge` joins the per-process Chrome
// trace files. The contract under test is the headline acceptance
// criterion of the tracing PR:
//
//   - at least one observation's spool → ship (agent process) and
//     journal_append → solve (server process) spans all carry ONE trace
//     id in the merged timeline — the id the agent derived at
//     measurement time, not anything negotiated at ship time,
//   - the merged file is one valid JSON event array with one pid per
//     input process plus process_name metadata,
//   - the `events` wire verb and `netdiag tail --once` surface a
//     deterministic ring event (a redelivered batch item's dedup),
//     cursor semantics included.
//
// Binaries come from NETDIAG_BIN / NETDIAG_AGENT_BIN (compiled in),
// overridable with the same-named environment variables.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/protocol.h"

namespace netd::svc {
namespace {

#ifndef NETDIAG_BIN
#define NETDIAG_BIN ""
#endif
#ifndef NETDIAG_AGENT_BIN
#define NETDIAG_AGENT_BIN ""
#endif

std::string netdiag_bin() {
  if (const char* env = std::getenv("NETDIAG_BIN"); env != nullptr)
    return env;
  return NETDIAG_BIN;
}

std::string agent_bin() {
  if (const char* env = std::getenv("NETDIAG_AGENT_BIN"); env != nullptr)
    return env;
  return NETDIAG_AGENT_BIN;
}

constexpr std::size_t kAgents = 2;
constexpr std::size_t kRounds = 5;

pid_t spawn(const std::string& bin, const std::vector<std::string>& args,
            const std::string& stdout_path) {
  std::vector<const char*> argv;
  argv.push_back(bin.c_str());
  for (const auto& a : args) argv.push_back(a.c_str());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int out =
        stdout_path.empty()
            ? ::open("/dev/null", O_WRONLY)
            : ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (out >= 0) ::dup2(out, STDOUT_FILENO);
    if (devnull >= 0) ::dup2(devnull, STDERR_FILENO);
    if (out >= 0) ::close(out);
    if (devnull >= 0) ::close(devnull);
    ::execv(bin.c_str(), const_cast<char* const*>(argv.data()));
    ::_exit(127);
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

class TracePipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(netdiag_bin().empty()) << "NETDIAG_BIN unset";
    ASSERT_FALSE(agent_bin().empty()) << "NETDIAG_AGENT_BIN unset";
    char tmpl[] = "/tmp/ndtraceXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    endpoint_spec_ = "unix:" + dir_ + "/svc.sock";
  }

  void TearDown() override {
    if (server_pid_ > 0) {
      ::kill(server_pid_, SIGKILL);
      (void)wait_exit(server_pid_);
    }
    const std::string cmd = "rm -rf '" + dir_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }

  std::string server_trace() const { return dir_ + "/server-trace.json"; }
  std::string agent_trace(std::size_t i) const {
    return dir_ + "/agent-" + std::to_string(i) + "-trace.json";
  }

  void start_server() {
    server_pid_ = spawn(netdiag_bin(),
                        {"serve", "--listen", endpoint_spec_, "--state-dir",
                         dir_ + "/state", "--trace-out", server_trace(),
                         "--slow-request-ms", "5000"},
                        "");
    ASSERT_GT(server_pid_, 0);
    std::string error;
    const auto ep = Endpoint::parse(endpoint_spec_, &error);
    ASSERT_TRUE(ep.has_value()) << error;
    for (int i = 0; i < 500; ++i) {
      if (Client::connect(*ep, &error).has_value()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "server never came up: " << error;
  }

  /// Graceful stop via the shutdown op — the path that flushes the
  /// server's --trace-out file.
  void shutdown_server() {
    {
      Client c = connect();
      std::string error;
      const auto rsp = c.call(Request{ShutdownRequest{}}, &error);
      EXPECT_TRUE(rsp.has_value()) << error;
    }
    EXPECT_EQ(wait_exit(server_pid_), 0);
    server_pid_ = -1;
  }

  Client connect() {
    std::string error;
    const auto ep = Endpoint::parse(endpoint_spec_, &error);
    EXPECT_TRUE(ep.has_value()) << error;
    Client::Options copts;
    copts.max_retries = 6;
    copts.backoff_base_ms = 5;
    copts.backoff_max_ms = 50;
    auto c = Client::connect(*ep, copts, &error);
    EXPECT_TRUE(c.has_value()) << error;
    return std::move(*c);
  }

  std::string session(std::size_t i) const {
    return "fleet-" + std::to_string(i);
  }
  std::string src(std::size_t i) const {
    return "sensor-" + std::to_string(i);
  }

  /// Runs agent i to completion (exit 0). --batch-max 1 so every round's
  /// batch carries exactly its own trace: the ship span and the item
  /// share one root, which is what lets the acceptance chain
  /// spool→ship→journal→solve live on a single trace id.
  void run_agent(std::size_t i) {
    const pid_t pid = spawn(
        agent_bin(),
        {"--endpoint", endpoint_spec_,
         "--spool-dir", dir_ + "/spool-" + std::to_string(i),
         "--name", src(i), "--session", session(i),
         "--ases", "30", "--stubs", "60", "--tier2", "8", "--sensors", "5",
         "--rounds", std::to_string(kRounds),
         "--fail-round", "3", "--threshold", "2",
         "--topo-seed", std::to_string(1 + i),
         "--placement-seed", std::to_string(7 + i),
         "--fail-seed", std::to_string(99 + i),
         "--batch-max", "1",
         "--seed", std::to_string(1 + i),
         "--trace-out", agent_trace(i)},
        dir_ + "/agent-" + std::to_string(i) + ".json");
    ASSERT_GT(pid, 0);
    ASSERT_EQ(wait_exit(pid), 0) << "agent " << i << " did not fully ack";
    const auto summary = Json::parse(slurp(
        dir_ + "/agent-" + std::to_string(i) + ".json"));
    ASSERT_TRUE(summary.has_value());
    const Json* diagnosed = summary->find("diagnosed");
    ASSERT_NE(diagnosed, nullptr);
    EXPECT_TRUE(diagnosed->as_bool())
        << "agent " << i << " fired no diagnosis — no solve span to join";
  }

  std::string dir_;
  std::string endpoint_spec_;
  pid_t server_pid_ = -1;
};

/// name → set of args.trace hex strings, one map per pid, from a merged
/// Chrome trace document.
using SpanIndex = std::map<std::uint64_t, std::map<std::string,
                                                   std::set<std::string>>>;

SpanIndex index_spans(const Json& merged) {
  SpanIndex idx;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const Json& ev = merged[i];
    const Json* ph = ev.find("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const Json* args = ev.find("args");
    const Json* trace = args != nullptr ? args->find("trace") : nullptr;
    if (trace == nullptr) continue;
    idx[static_cast<std::uint64_t>(ev.find("pid")->as_int())]
       [ev.find("name")->as_string()]
           .insert(trace->as_string());
  }
  return idx;
}

TEST_F(TracePipeline, OneTraceIdSpansAgentAndServerInTheMergedTimeline) {
  start_server();
  for (std::size_t i = 0; i < kAgents; ++i) run_agent(i);

  // A deterministic ring event: redeliver an already-acked seq. The
  // watermark dedups it before any validation, bumping the ring.
  {
    Client c = connect();
    std::string error;
    probe::Mesh mesh;  // content irrelevant: the watermark wins first
    ObserveBatchResponse rsp;
    ASSERT_TRUE(expect_response(
        c.call(Request{ObserveBatchRequest{
                   session(0), src(0),
                   {ObserveItem{1, std::move(mesh), std::nullopt}}}},
               &error),
        &rsp, &error))
        << error;
    EXPECT_EQ(rsp.deduped, 1u);
    EXPECT_EQ(rsp.ack, kRounds);
  }

  // The events verb sees it; a second read from the returned cursor is
  // empty (drained).
  {
    Client c = connect();
    std::string error;
    EventsResponse ev;
    ASSERT_TRUE(expect_response(
        c.call(Request{EventsRequest{0, 0}}, &error), &ev, &error))
        << error;
    ASSERT_FALSE(ev.events.empty());
    bool saw_dedup = false;
    for (const auto& e : ev.events) {
      if (e.kind == obs::EventKind::kDedup &&
          e.detail == session(0) + "/" + src(0)) {
        saw_dedup = true;
        EXPECT_EQ(e.dur_us, 1u);  // deduped-item count rides in dur_us
      }
    }
    EXPECT_TRUE(saw_dedup) << "dedup event missing from the ring";
    EventsResponse drained;
    ASSERT_TRUE(expect_response(
        c.call(Request{EventsRequest{ev.next_cursor, 0}}, &error), &drained,
        &error))
        << error;
    EXPECT_TRUE(drained.events.empty());
    EXPECT_EQ(drained.next_cursor, ev.next_cursor);
  }

  // The operator view of the same ring.
  {
    const pid_t pid = spawn(netdiag_bin(),
                            {"tail", "--connect", endpoint_spec_, "--once"},
                            dir_ + "/tail.txt");
    ASSERT_GT(pid, 0);
    ASSERT_EQ(wait_exit(pid), 0);
    const std::string out = slurp(dir_ + "/tail.txt");
    EXPECT_NE(out.find("dedup " + session(0) + "/" + src(0)),
              std::string::npos)
        << out;
  }

  shutdown_server();

  // Merge agent 0, agent 1, server → pids 1, 2, 3.
  const std::string merged_path = dir_ + "/merged.json";
  {
    const pid_t pid = spawn(
        netdiag_bin(),
        {"trace-merge", agent_trace(0), agent_trace(1), server_trace(),
         "--out", merged_path},
        "");
    ASSERT_GT(pid, 0);
    ASSERT_EQ(wait_exit(pid), 0);
  }

  std::string error;
  const auto merged = Json::parse(slurp(merged_path), &error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_TRUE(merged->is_array());

  // Structure: every event is an object with a pid in {1,2,3}; exactly
  // one process_name metadata record per input file.
  std::set<std::uint64_t> meta_pids;
  for (std::size_t i = 0; i < merged->size(); ++i) {
    const Json& ev = (*merged)[i];
    ASSERT_TRUE(ev.is_object());
    const Json* pid = ev.find("pid");
    ASSERT_NE(pid, nullptr);
    EXPECT_GE(pid->as_int(), 1);
    EXPECT_LE(pid->as_int(), 3);
    const Json* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() == "M") {
      EXPECT_TRUE(meta_pids.insert(
          static_cast<std::uint64_t>(pid->as_int())).second);
    }
  }
  EXPECT_EQ(meta_pids, (std::set<std::uint64_t>{1, 2, 3}));

  // The headline join: one trace id carrying the whole observation
  // lifecycle across processes. Agent 0 is pid 1, the server pid 3.
  const SpanIndex idx = index_spans(*merged);
  ASSERT_TRUE(idx.count(1) && idx.count(3)) << "a process emitted no spans";
  const auto names_at = [&](std::uint64_t pid, const char* name) {
    const auto pit = idx.find(pid);
    if (pit == idx.end()) return std::set<std::string>{};
    const auto nit = pit->second.find(name);
    return nit == pit->second.end() ? std::set<std::string>{} : nit->second;
  };
  std::size_t joined = 0;
  std::set<std::string> full_chain;
  for (const auto& t : names_at(1, "spool")) {
    if (!names_at(3, "journal_append").count(t)) continue;
    ++joined;
    if (names_at(1, "ship").count(t) && names_at(3, "solve").count(t)) {
      full_chain.insert(t);
    }
  }
  // Every round's spool trace reappears in the server's journal spans...
  EXPECT_GE(joined, kRounds);
  // ...and the alarmed round's trace carries all four lifecycle stages.
  EXPECT_FALSE(full_chain.empty())
      << "no trace id joins spool+ship (agent) with journal_append+solve "
         "(server)";
  // The server also parented its batch handling on the agents' traces.
  EXPECT_FALSE(names_at(3, "rx_batch_item").empty());
}

}  // namespace
}  // namespace netd::svc
