#include "svc/json.h"

#include <gtest/gtest.h>

#include <string>

namespace netd::svc {
namespace {

std::string reparse(const std::string& text) {
  std::string error;
  const auto j = Json::parse(text, &error);
  EXPECT_TRUE(j.has_value()) << text << ": " << error;
  return j ? j->dump() : "";
}

TEST(Json, RoundTripsEveryValueKind) {
  const std::string doc =
      R"({"null":null,"t":true,"f":false,"i":-42,"d":0.125,"e":1e-3,)"
      R"("s":"a\"b\\c\nd","u":"caf)" "\xc3\xa9" R"(","arr":[1,[2,[]],{}],)"
      R"("obj":{"nested":{"x":3}}})";
  EXPECT_EQ(reparse(doc), doc);
}

TEST(Json, NumberLexemesSurviveReserialization) {
  // A double-formatting round trip would rewrite all of these; the lexeme
  // must come back verbatim.
  for (const std::string n :
       {"0", "-0", "1e9", "1E9", "1.50", "0.1000", "123456789012345678901",
        "-2.225073858507201e-308"}) {
    EXPECT_EQ(reparse("[" + n + "]"), "[" + n + "]");
  }
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  EXPECT_EQ(reparse(R"({"z":1,"a":2,"m":3})"), R"({"z":1,"a":2,"m":3})");
  Json j = Json::object();
  j.set("z", Json::integer(1));
  j.set("a", Json::integer(2));
  j.set("z", Json::integer(9));  // update in place, keep position
  EXPECT_EQ(j.dump(), R"({"z":9,"a":2})");
}

TEST(Json, WriterMatchesCoreJsonExportNumberStyle) {
  EXPECT_EQ(Json::number(3.0).dump(), "3");  // integral doubles as integers
  EXPECT_EQ(Json::number(0.5).dump(), "0.5");
  EXPECT_EQ(Json::integer(-7).dump(), "-7");
  EXPECT_EQ(Json::uinteger(18446744073709551615ull).dump(),
            "18446744073709551615");
}

TEST(Json, EscapesControlCharacters) {
  std::string s = "a";
  s += '\x01';
  s += "b\tc";
  const std::string out = Json::string(s).dump();
  EXPECT_EQ(out, "\"a\\u0001b\\tc\"");
  EXPECT_EQ(reparse(out), out);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  const auto j = Json::parse(R"(["\u00e9","\ud83d\ude00"])");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ((*j)[0].as_string(), "\xc3\xa9");           // é
  EXPECT_EQ((*j)[1].as_string(), "\xf0\x9f\x98\x80");   // surrogate pair
}

TEST(Json, RawSplicesVerbatim) {
  Json j = Json::object();
  j.set("d", Json::raw(R"({"links":["a-b"],"score":1.5})"));
  EXPECT_EQ(j.dump(), R"({"d":{"links":["a-b"],"score":1.5}})");
}

TEST(Json, RejectsMalformedInput) {
  for (const std::string bad : {
           "",                 // empty
           "{",                // unterminated object
           "[1,]",             // trailing comma
           "{\"a\":}",         // missing value
           "{\"a\" 1}",        // missing colon
           "nul",              // bad literal
           "01",               // leading zero
           "1.",               // dangling fraction
           "1e",               // dangling exponent
           "+1",               // explicit plus
           "\"ab",             // unterminated string
           "\"\\x\"",          // unknown escape
           "\"\\ud83d\"",      // lone high surrogate
           "\"\\udc00\"",      // lone low surrogate
           "\"\\u12g4\"",      // bad hex digit
           "{\"a\":1,\"a\":2}",// duplicate key
           "[1] x",            // trailing garbage
           "\x01",             // control byte
       }) {
    std::string error;
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Json, ErrorsNameTheByteOffset) {
  std::string error;
  EXPECT_FALSE(Json::parse("[1,2,oops]", &error).has_value());
  EXPECT_NE(error.find("5"), std::string::npos) << error;
}

TEST(Json, BoundsRecursionDepth) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  std::string error;
  EXPECT_FALSE(Json::parse(deep, &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
  // A modestly nested document still parses.
  std::string ok(20, '[');
  ok += std::string(20, ']');
  EXPECT_TRUE(Json::parse(ok).has_value());
}

TEST(Json, RecursionDepthBoundaryIsExact) {
  // Exactly kMaxParseDepth container levels parse; one more is rejected
  // with the structured error (not a crash), and the limit is the public
  // constant — not a magic number buried in the parser.
  const auto nested = [](std::size_t levels) {
    return std::string(levels, '[') + std::string(levels, ']');
  };
  EXPECT_TRUE(Json::parse(nested(Json::kMaxParseDepth)).has_value());
  std::string error;
  EXPECT_FALSE(
      Json::parse(nested(Json::kMaxParseDepth + 1), &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;

  // Objects count against the same budget as arrays.
  std::string obj;
  for (std::size_t i = 0; i < Json::kMaxParseDepth + 1; ++i) obj += "{\"k\":";
  obj += "0";
  for (std::size_t i = 0; i < Json::kMaxParseDepth + 1; ++i) obj += "}";
  error.clear();
  EXPECT_FALSE(Json::parse(obj, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
}

TEST(Json, FindAndAccessors) {
  const auto j = Json::parse(R"({"n":3,"s":"x","b":true,"a":[1,2]})");
  ASSERT_TRUE(j.has_value());
  ASSERT_NE(j->find("n"), nullptr);
  EXPECT_EQ(j->find("n")->as_int(), 3);
  EXPECT_DOUBLE_EQ(j->find("n")->as_double(), 3.0);
  EXPECT_EQ(j->find("s")->as_string(), "x");
  EXPECT_TRUE(j->find("b")->as_bool());
  EXPECT_EQ(j->find("a")->size(), 2u);
  EXPECT_EQ(j->find("absent"), nullptr);
}

}  // namespace
}  // namespace netd::svc
