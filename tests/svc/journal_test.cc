// Unit tests for the service's per-session write-ahead journal: append/
// reopen round-trips, snapshot pruning, torn-tail repair, corruption
// quarantine, and the state-dir helpers (epoch, name encoding).
#include "svc/journal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "util/atomic_file.h"
#include "util/record_log.h"

namespace netd::svc {
namespace {

namespace rlog = util::record_log;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/netd_journal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  SessionJournal::Options options() const {
    SessionJournal::Options opts;
    opts.dir = dir_ + "/sess";
    return opts;
  }

  /// Files in the session dir whose name ends with `suffix`. (A suffix
  /// match, not a substring one: a quarantined segment is named
  /// `wal-...ndj.quarantined` and must not count as a live `.ndj`.)
  std::vector<std::string> files_matching(const std::string& suffix) const {
    std::vector<std::string> out;
    const std::string cmd =
        "ls '" + dir_ + "/sess' 2>/dev/null > '" + dir_ + "/ls.txt'";
    if (std::system(cmd.c_str()) != 0) return out;
    std::ifstream is(dir_ + "/ls.txt");
    std::string line;
    while (std::getline(is, line)) {
      if (line.size() >= suffix.size() &&
          line.compare(line.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        out.push_back(line);
      }
    }
    return out;
  }

  std::string dir_;
};

TEST_F(JournalTest, AppendReopenReplaysEverything) {
  std::string error;
  auto j = SessionJournal::open(options(), &error);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_FALSE(j->snapshot().has_value());
  EXPECT_EQ(j->append("one", &error), 1u) << error;
  EXPECT_EQ(j->append("two", &error), 2u) << error;
  EXPECT_EQ(j->append("three", &error), 3u) << error;
  j.reset();

  SessionJournal::RecoveryStats stats;
  j = SessionJournal::open(options(), &error, &stats);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_FALSE(stats.quarantined);
  EXPECT_EQ(stats.records, 3u);
  ASSERT_EQ(j->records().size(), 3u);
  EXPECT_EQ(j->records()[0], (std::pair<std::uint64_t, std::string>{1, "one"}));
  EXPECT_EQ(j->records()[2],
            (std::pair<std::uint64_t, std::string>{3, "three"}));
  // Appending continues the LSN stream.
  EXPECT_EQ(j->append("four", &error), 4u) << error;
}

TEST_F(JournalTest, SnapshotPrunesSegmentsAndSetsFloor) {
  std::string error;
  auto j = SessionJournal::open(options(), &error);
  ASSERT_NE(j, nullptr) << error;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_GT(j->append("r" + std::to_string(i), &error), 0u) << error;
  }
  ASSERT_TRUE(j->commit_snapshot("{\"wal\":5,\"state\":\"folded\"}\n", &error))
      << error;
  EXPECT_TRUE(files_matching(".ndj").empty());  // all segments covered
  // Post-snapshot appends land in a new segment, LSNs continuing.
  EXPECT_EQ(j->append("r6", &error), 6u) << error;
  j.reset();

  SessionJournal::RecoveryStats stats;
  j = SessionJournal::open(options(), &error, &stats);
  ASSERT_NE(j, nullptr) << error;
  ASSERT_TRUE(j->snapshot().has_value());
  EXPECT_EQ(*j->snapshot(), "{\"wal\":5,\"state\":\"folded\"}\n");
  // Only the record after the floor replays.
  ASSERT_EQ(j->records().size(), 1u);
  EXPECT_EQ(j->records()[0], (std::pair<std::uint64_t, std::string>{6, "r6"}));
  EXPECT_EQ(j->append("r7", &error), 7u) << error;
}

TEST_F(JournalTest, TornTailIsTruncatedOnReopen) {
  std::string error;
  auto j = SessionJournal::open(options(), &error);
  ASSERT_NE(j, nullptr) << error;
  ASSERT_EQ(j->append("kept", &error), 1u);
  j.reset();
  // Simulate SIGKILL mid-append: half a record at the tail.
  const auto segs = files_matching(".ndj");
  ASSERT_EQ(segs.size(), 1u);
  const std::string path = dir_ + "/sess/" + segs[0];
  const std::string frame = rlog::encode_record(2, "lost-to-the-crash");
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write(frame.data(),
             static_cast<std::streamsize>(frame.size() / 2));
  }
  SessionJournal::RecoveryStats stats;
  j = SessionJournal::open(options(), &error, &stats);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_FALSE(stats.quarantined);
  EXPECT_EQ(stats.torn_tails, 1u);
  ASSERT_EQ(j->records().size(), 1u);
  EXPECT_EQ(j->records()[0].second, "kept");
  // The torn LSN is reused by the next append, as if it never happened.
  EXPECT_EQ(j->append("retry", &error), 2u) << error;
}

TEST_F(JournalTest, CorruptSegmentQuarantinesWholeJournal) {
  std::string error;
  auto j = SessionJournal::open(options(), &error);
  ASSERT_NE(j, nullptr) << error;
  ASSERT_EQ(j->append("a", &error), 1u);
  ASSERT_EQ(j->append("b", &error), 2u);
  j.reset();
  const auto segs = files_matching(".ndj");
  ASSERT_EQ(segs.size(), 1u);
  const std::string path = dir_ + "/sess/" + segs[0];
  {
    // Flip one payload byte in the first record: CRC mismatch.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(rlog::kHeaderBytes));
    f.put('X');
  }
  SessionJournal::RecoveryStats stats;
  j = SessionJournal::open(options(), &error, &stats);
  EXPECT_EQ(j, nullptr);
  EXPECT_TRUE(error.empty()) << error;  // quarantine, not an IO failure
  EXPECT_TRUE(stats.quarantined);
  // The bytes are renamed aside — never deleted.
  EXPECT_TRUE(files_matching(".ndj").empty());
  EXPECT_EQ(files_matching(".quarantined").size(), 1u);
  // A fresh journal can be started in the same directory (re-hello).
  j = SessionJournal::open(options(), &error, &stats);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_EQ(j->append("fresh", &error), 1u) << error;
}

TEST_F(JournalTest, UnparseableSnapshotQuarantinesSegmentsToo) {
  std::string error;
  auto j = SessionJournal::open(options(), &error);
  ASSERT_NE(j, nullptr) << error;
  ASSERT_EQ(j->append("a", &error), 1u);
  j.reset();
  ASSERT_TRUE(
      util::atomic_write_file(dir_ + "/sess/SNAPSHOT", "not json", &error))
      << error;
  SessionJournal::RecoveryStats stats;
  j = SessionJournal::open(options(), &error, &stats);
  EXPECT_EQ(j, nullptr);
  EXPECT_TRUE(stats.quarantined);
  // Both the snapshot AND the (framing-wise healthy) segment go aside:
  // replaying records against the wrong base would corrupt state.
  EXPECT_EQ(files_matching(".quarantined").size(), 2u);
  EXPECT_TRUE(files_matching(".ndj").empty());
}

TEST_F(JournalTest, LsnGapBetweenSegmentsQuarantines) {
  std::string error;
  SessionJournal::Options opts = options();
  opts.max_segment_bytes = 1;  // rotate after every record
  auto j = SessionJournal::open(opts, &error);
  ASSERT_NE(j, nullptr) << error;
  ASSERT_EQ(j->append("a", &error), 1u);
  ASSERT_EQ(j->append("b", &error), 2u);
  ASSERT_EQ(j->append("c", &error), 3u);
  j.reset();
  auto segs = files_matching(".ndj");
  ASSERT_EQ(segs.size(), 3u);
  // A middle segment vanishing is loss the journal must refuse to paper
  // over.
  ASSERT_EQ(::unlink((dir_ + "/sess/" + segs[1]).c_str()), 0);
  SessionJournal::RecoveryStats stats;
  j = SessionJournal::open(opts, &error, &stats);
  EXPECT_EQ(j, nullptr);
  EXPECT_TRUE(stats.quarantined);
}

// The satellite case: a crash between the snapshot's temp write and its
// rename. The stale temp is swept and recovery proceeds from the old
// snapshot plus full journal replay — nothing lost, nothing doubled.
TEST_F(JournalTest, CrashBetweenSnapshotTempAndRenameRecovers) {
  std::string error;
  auto j = SessionJournal::open(options(), &error);
  ASSERT_NE(j, nullptr) << error;
  ASSERT_EQ(j->append("a", &error), 1u);
  ASSERT_TRUE(j->commit_snapshot("{\"wal\":1}\n", &error)) << error;
  ASSERT_EQ(j->append("b", &error), 2u);
  j.reset();
  // The would-be next snapshot died before rename(2).
  const std::string stale =
      dir_ + "/sess/SNAPSHOT.tmp." + std::to_string(::getpid());
  {
    std::ofstream os(stale, std::ios::binary);
    os << "{\"wal\":2,\"torn\":";  // incomplete by construction
  }
  SessionJournal::RecoveryStats stats;
  j = SessionJournal::open(options(), &error, &stats);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_FALSE(stats.quarantined);
  EXPECT_NE(::access(stale.c_str(), F_OK), 0);  // temp swept
  ASSERT_TRUE(j->snapshot().has_value());
  EXPECT_EQ(*j->snapshot(), "{\"wal\":1}\n");  // the committed one
  ASSERT_EQ(j->records().size(), 1u);
  EXPECT_EQ(j->records()[0], (std::pair<std::uint64_t, std::string>{2, "b"}));
}

TEST_F(JournalTest, SegmentRotationKeepsLsnsContiguous) {
  std::string error;
  SessionJournal::Options opts = options();
  opts.max_segment_bytes = 64;
  auto j = SessionJournal::open(opts, &error);
  ASSERT_NE(j, nullptr) << error;
  for (int i = 1; i <= 20; ++i) {
    ASSERT_EQ(j->append("payload-" + std::to_string(i), &error),
              static_cast<std::uint64_t>(i))
        << error;
  }
  j.reset();
  SessionJournal::RecoveryStats stats;
  j = SessionJournal::open(opts, &error, &stats);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_GT(stats.segments, 1u);
  ASSERT_EQ(j->records().size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(j->records()[i].first, i + 1);
  }
}

TEST(JournalHelpersTest, SessionDirEncodingRoundTrips) {
  const std::string names[] = {
      "plain", "with space", "slash/y", "dots...", "pct%20", "UTF-8 \xc3\xa9",
      "trailing.", "-_A9z"};
  for (const std::string& name : names) {
    const std::string enc = encode_session_dir(name);
    EXPECT_EQ(enc.find('/'), std::string::npos) << enc;
    EXPECT_EQ(enc.find('.'), std::string::npos) << enc;
    const auto dec = decode_session_dir(enc);
    ASSERT_TRUE(dec.has_value()) << enc;
    EXPECT_EQ(*dec, name);
  }
  EXPECT_FALSE(decode_session_dir("bad%zz").has_value());
  EXPECT_FALSE(decode_session_dir("not.safe").has_value());
}

TEST(JournalHelpersTest, FsyncPolicyNamesRoundTrip) {
  EXPECT_STREQ(to_string(FsyncPolicy::kAlways), "always");
  EXPECT_STREQ(to_string(FsyncPolicy::kBatch), "batch");
  EXPECT_EQ(fsync_policy_from_string("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(fsync_policy_from_string("batch"), FsyncPolicy::kBatch);
  EXPECT_FALSE(fsync_policy_from_string("sometimes").has_value());
}

TEST(JournalHelpersTest, EpochBumpsMonotonically) {
  char tmpl[] = "/tmp/netd_epoch_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  EXPECT_EQ(read_epoch(dir), 0u);
  std::string error;
  EXPECT_EQ(bump_epoch(dir, &error), 1u) << error;
  EXPECT_EQ(bump_epoch(dir, &error), 2u) << error;
  EXPECT_EQ(read_epoch(dir), 2u);
  const std::string cmd = "rm -rf '" + dir + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
}

}  // namespace
}  // namespace netd::svc
