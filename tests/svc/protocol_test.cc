#include "svc/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

namespace netd::svc {
namespace {

probe::Mesh sample_mesh() {
  probe::Mesh mesh;
  probe::TracePath p0;
  p0.src = 0;
  p0.dst = 1;
  p0.ok = true;
  p0.hops = {
      {"s0", graph::NodeKind::kSensor, 4, topo::RouterId{}},
      {"AS0:r1", graph::NodeKind::kRouter, 0, topo::RouterId{7}},
      {"*3", graph::NodeKind::kUnidentified, -1, topo::RouterId{}},
      {"AS5|AS6", graph::NodeKind::kLogical, -1, topo::RouterId{}},
      {"s1", graph::NodeKind::kSensor, 5, topo::RouterId{}},
  };
  p0.links = {topo::LinkId{3}, topo::LinkId{9}};
  probe::TracePath p1;
  p1.src = 1;
  p1.dst = 0;
  p1.ok = false;
  p1.hops = {{"s1", graph::NodeKind::kSensor, 5, topo::RouterId{}}};
  mesh.paths = {std::move(p0), std::move(p1)};
  return mesh;
}

core::ControlPlaneObs sample_cp() {
  core::ControlPlaneObs cp;
  cp.igp_down_keys = {"AS0:r1-AS0:r2"};
  cp.withdrawals.push_back({"AS3>AS4", 5});
  cp.withdrawals.push_back({"AS4>AS3", 4});
  return cp;
}

const char kDiagnosisDoc[] =
    R"({"links":[{"link":"a-b","score":1.5,"round":2,"logical":false}]})";

/// The tentpole wire property: serialize -> parse -> serialize must be
/// byte-identical. Checked below once per message type, both directions.
std::string reserialized(const Request& req) {
  const std::string frame = serialize(req);
  std::string error;
  const auto parsed = parse_request(frame, &error);
  EXPECT_TRUE(parsed.has_value()) << frame << ": " << error;
  EXPECT_EQ(parsed->index(), req.index());
  return parsed ? serialize(*parsed) : "";
}

std::string reserialized(const Response& rsp) {
  const std::string frame = serialize(rsp);
  std::string error;
  const auto parsed = parse_response(frame, &error);
  EXPECT_TRUE(parsed.has_value()) << frame << ": " << error;
  EXPECT_EQ(parsed->index(), rsp.index());
  return parsed ? serialize(*parsed) : "";
}

TEST(Protocol, EveryRequestTypeRoundTripsByteIdentical) {
  SessionConfig cfg;
  cfg.alarm_threshold = 3;
  cfg.algo = "nd-edge";
  cfg.granularity = "per-prefix";
  const std::vector<Request> requests = {
      HelloRequest{"noc-1", cfg},
      SetBaselineRequest{"noc-1", sample_mesh()},
      ObserveRequest{"noc-1", sample_mesh(), sample_cp()},
      ObserveRequest{"noc-1", sample_mesh(), std::nullopt},
      ObserveRequest{"noc-1", sample_mesh(), std::nullopt, 17},
      ObserveBatchRequest{"noc-1", "sensor-0", {}},
      ObserveBatchRequest{
          "noc-1",
          "sensor-0",
          {ObserveItem{4, sample_mesh(), std::nullopt},
           ObserveItem{5, sample_mesh(), sample_cp()}}},
      QueryRequest{"noc-1"},
      StatsRequest{},
      MetricsRequest{},
      ShutdownRequest{},
  };
  for (const Request& req : requests) {
    EXPECT_EQ(reserialized(req), serialize(req));
  }
}

TEST(Protocol, EveryResponseTypeRoundTripsByteIdentical) {
  SessionConfig cfg;
  const std::vector<Response> responses = {
      ErrorResponse{"no such session 'x'"},
      ErrorResponse{"resend", kErrBadFrame},
      ErrorResponse{"busy", kErrOverloaded, 250},
      ErrorResponse{"hello first", kErrUnknownSession},
      ErrorResponse{"no baseline yet", kErrNoBaseline},
      HelloResponse{"noc-1", true, cfg},
      HelloResponse{"noc-1", false, cfg, 3},  // durable server's epoch
      SetBaselineResponse{90},
      ObserveResponse{4, true, std::string(kDiagnosisDoc)},
      ObserveResponse{2, false, std::nullopt},
      ObserveBatchResponse{9, 3, 2, 9, true, std::string(kDiagnosisDoc)},
      ObserveBatchResponse{0, 0, 0, 0, false, std::nullopt},
      QueryResponse{4, std::string(kDiagnosisDoc)},
      QueryResponse{0, std::nullopt},
      StatsResponse{R"({"connections":1,"ops":{}})"},
      MetricsResponse{"# TYPE a counter\na 1\n"},
      ShutdownResponse{},
  };
  for (const Response& rsp : responses) {
    EXPECT_EQ(reserialized(rsp), serialize(rsp));
  }
}

TEST(Protocol, EpochZeroIsOmittedFromHelloFrames) {
  // Ephemeral servers serialize exactly the pre-durability frame, so the
  // wire format of an undurable deployment is byte-for-byte unchanged.
  SessionConfig cfg;
  const std::string ephemeral = serialize(Response{HelloResponse{"s", true,
                                                                 cfg}});
  EXPECT_EQ(ephemeral.find("epoch"), std::string::npos) << ephemeral;
  const std::string durable =
      serialize(Response{HelloResponse{"s", true, cfg, 2}});
  EXPECT_NE(durable.find("\"epoch\":2"), std::string::npos) << durable;
  std::string error;
  const auto parsed = parse_response(durable, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(std::get<HelloResponse>(*parsed).epoch, 2u);
}

TEST(Protocol, RequestFramesCarryVersionAndOp) {
  const std::string frame = serialize(Request{QueryRequest{"s"}});
  const auto j = Json::parse(frame);
  ASSERT_TRUE(j.has_value());
  ASSERT_NE(j->find("v"), nullptr);
  EXPECT_EQ(j->find("v")->as_int(), kProtocolVersion);
  ASSERT_NE(j->find("op"), nullptr);
  EXPECT_EQ(j->find("op")->as_string(), "query");
}

TEST(Protocol, MeshCodecPreservesEveryField) {
  const probe::Mesh mesh = sample_mesh();
  std::string error;
  const auto back = mesh_from_json(mesh_to_json(mesh), &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->paths.size(), mesh.paths.size());
  for (std::size_t i = 0; i < mesh.paths.size(); ++i) {
    const auto& a = mesh.paths[i];
    const auto& b = back->paths[i];
    EXPECT_EQ(a.src, b.src);
    EXPECT_EQ(a.dst, b.dst);
    EXPECT_EQ(a.ok, b.ok);
    ASSERT_EQ(a.hops.size(), b.hops.size());
    for (std::size_t k = 0; k < a.hops.size(); ++k) {
      EXPECT_EQ(a.hops[k].label, b.hops[k].label);
      EXPECT_EQ(a.hops[k].kind, b.hops[k].kind);
      EXPECT_EQ(a.hops[k].asn, b.hops[k].asn);
      EXPECT_EQ(a.hops[k].router, b.hops[k].router);
    }
    EXPECT_EQ(a.links, b.links);
  }
}

TEST(Protocol, ControlPlaneCodecRoundTrips) {
  const core::ControlPlaneObs cp = sample_cp();
  std::string error;
  const auto back = cp_from_json(cp_to_json(cp), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->igp_down_keys, cp.igp_down_keys);
  ASSERT_EQ(back->withdrawals.size(), cp.withdrawals.size());
  for (std::size_t i = 0; i < cp.withdrawals.size(); ++i) {
    EXPECT_EQ(back->withdrawals[i].directed_key, cp.withdrawals[i].directed_key);
    EXPECT_EQ(back->withdrawals[i].dest_asn, cp.withdrawals[i].dest_asn);
  }
}

TEST(Protocol, SessionConfigValidatesOnParse) {
  SessionConfig cfg;
  std::string error;
  EXPECT_TRUE(session_config_from_json(session_config_to_json(cfg), &error)
                  .has_value());

  cfg.algo = "nd-lg";  // needs a Looking Glass; not exposed over the wire
  EXPECT_FALSE(session_config_from_json(session_config_to_json(cfg), &error)
                   .has_value());
  EXPECT_FALSE(error.empty());

  cfg = SessionConfig{};
  cfg.granularity = "sideways";
  EXPECT_FALSE(session_config_from_json(session_config_to_json(cfg), &error)
                   .has_value());
}

TEST(Protocol, ParseRequestRejectsHostileFrames) {
  for (const std::string& bad : std::vector<std::string>{
           std::string("not json at all"),
           std::string("{}"),                                // no version/op
           std::string(R"({"v":2,"op":"query","session":"s"})"),  // bad version
           std::string(R"({"v":1,"op":"frobnicate"})"),      // unknown op
           std::string(R"({"v":1,"op":"hello"})"),           // missing fields
           std::string(R"({"v":1,"op":"observe","session":"s"})"),  // no mesh
           std::string(R"([1,2,3])"),                        // not an object
       }) {
    std::string error;
    EXPECT_FALSE(parse_request(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Protocol, ParseBatchRejectsHostileFrames) {
  // A valid batch frame to mutate: serialize one, then break invariants.
  const std::string good = serialize(Request{ObserveBatchRequest{
      "noc-1", "sensor-0", {ObserveItem{3, sample_mesh(), std::nullopt}}}});
  std::string error;
  ASSERT_TRUE(parse_request(good, &error).has_value()) << error;
  ASSERT_NE(good.find(R"("op":"observe_batch")"), std::string::npos)
      << "batched observe must travel under the observe_batch op: " << good;

  auto mutate = [&](const std::string& from, const std::string& to) {
    std::string frame = good;
    const auto at = frame.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    frame.replace(at, from.size(), to);
    return frame;
  };

  // seq 0 is reserved (watermarks start below every real record).
  EXPECT_FALSE(parse_request(mutate(R"("seq":3)", R"("seq":0)"), &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  // A batch without a source has no watermark to advance.
  EXPECT_FALSE(parse_request(mutate(R"("src":"sensor-0",)", ""), &error)
                   .has_value());

  // Non-strictly-increasing seqs are rejected whole — a shuffled or
  // duplicated batch must never half-apply.
  const Request twice = ObserveBatchRequest{
      "noc-1",
      "sensor-0",
      {ObserveItem{5, sample_mesh(), std::nullopt},
       ObserveItem{5, sample_mesh(), std::nullopt}}};
  EXPECT_FALSE(parse_request(serialize(twice), &error).has_value());
  EXPECT_NE(error.find("strictly increasing"), std::string::npos) << error;
  const Request backwards = ObserveBatchRequest{
      "noc-1",
      "sensor-0",
      {ObserveItem{5, sample_mesh(), std::nullopt},
       ObserveItem{4, sample_mesh(), std::nullopt}}};
  EXPECT_FALSE(parse_request(serialize(backwards), &error).has_value());
}

TEST(Protocol, ParseResponseRejectsHostileFrames) {
  for (const std::string& bad : std::vector<std::string>{
           std::string(""),
           std::string(R"({"v":1})"),            // no ok
           std::string(R"({"v":1,"ok":true})"),  // no op
           std::string(R"({"v":1,"ok":false})"), // error without message
       }) {
    std::string error;
    EXPECT_FALSE(parse_response(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(Protocol, EmbeddedDiagnosisSurvivesVerbatim) {
  const Response rsp = ObserveResponse{1, true, std::string(kDiagnosisDoc)};
  const std::string frame = serialize(rsp);
  std::string error;
  const auto parsed = parse_response(frame, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto* obs = std::get_if<ObserveResponse>(&*parsed);
  ASSERT_NE(obs, nullptr);
  ASSERT_TRUE(obs->diagnosis.has_value());
  EXPECT_EQ(*obs->diagnosis, kDiagnosisDoc);
}

}  // namespace
}  // namespace netd::svc
