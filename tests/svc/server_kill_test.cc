// The server kill-restart soak (the durability PR's headline test).
//
// The mirror image of the agent chaos soak: here the SERVER is the
// process being SIGKILLed. A real `netdiag serve --state-dir` process is
// forked, a fleet of real netdiag-agent processes ships observations
// into it, and the server is killed mid-batch and restarted over the
// same state directory. The durability contract under test:
//
//   - zero lost and zero duplicated observations (ack == round == the
//     agent's round count),
//   - the agents never see server amnesia (every summary reports
//     rehellos == 0 — a restart of a durable server is invisible),
//   - the final diagnosis is byte-identical to an uninterrupted
//     reference run,
//   - a corrupt journal segment is quarantined, that one session falls
//     back to the amnesia protocol, and the fleet still reconverges.
//
// Seeded via ND_SVC_SEED (default 1); CI soaks seeds {1, 7, 1337} under
// TSan. Binaries come from NETDIAG_BIN / NETDIAG_AGENT_BIN (compiled
// in), overridable with the same-named environment variables.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.h"
#include "svc/journal.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "util/record_log.h"
#include "util/rng.h"

namespace netd::svc {
namespace {

#ifndef NETDIAG_BIN
#define NETDIAG_BIN ""
#endif
#ifndef NETDIAG_AGENT_BIN
#define NETDIAG_AGENT_BIN ""
#endif

std::string netdiag_bin() {
  if (const char* env = std::getenv("NETDIAG_BIN"); env != nullptr)
    return env;
  return NETDIAG_BIN;
}

std::string agent_bin() {
  if (const char* env = std::getenv("NETDIAG_AGENT_BIN"); env != nullptr)
    return env;
  return NETDIAG_AGENT_BIN;
}

std::uint64_t soak_seed() {
  if (const char* env = std::getenv("ND_SVC_SEED"); env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

constexpr std::size_t kAgents = 2;
constexpr std::size_t kRounds = 5;

/// fork/exec `bin args...`; stdout goes to `stdout_path` (empty =
/// /dev/null), stderr to /dev/null. Returns the child pid (< 0 = fork
/// failed).
pid_t spawn(const std::string& bin, const std::vector<std::string>& args,
            const std::string& stdout_path) {
  std::vector<const char*> argv;
  argv.push_back(bin.c_str());
  for (const auto& a : args) argv.push_back(a.c_str());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int out =
        stdout_path.empty()
            ? ::open("/dev/null", O_WRONLY)
            : ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (out >= 0) ::dup2(out, STDOUT_FILENO);
    if (devnull >= 0) ::dup2(devnull, STDERR_FILENO);
    if (out >= 0) ::close(out);
    if (devnull >= 0) ::close(devnull);
    ::execv(bin.c_str(), const_cast<char* const*>(argv.data()));
    ::_exit(127);
  }
  return pid;
}

/// waitpid wrapper; returns the exit code, -1 for a signal death.
int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class ServerKillSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(netdiag_bin().empty()) << "NETDIAG_BIN unset";
    ASSERT_FALSE(agent_bin().empty()) << "NETDIAG_AGENT_BIN unset";
    char tmpl[] = "/tmp/ndkillXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    state_dir_ = dir_ + "/state";
    endpoint_spec_ = "unix:" + dir_ + "/svc.sock";
  }

  void TearDown() override {
    kill_server();
    const std::string cmd = "rm -rf '" + dir_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }

  /// Forks the real `netdiag serve` with the durable state dir and waits
  /// until it accepts connections.
  void start_server() {
    ASSERT_EQ(server_pid_, -1) << "server already running";
    server_pid_ = spawn(netdiag_bin(),
                        {"serve", "--listen", endpoint_spec_, "--state-dir",
                         state_dir_, "--snapshot-every", "6"},
                        "");
    ASSERT_GT(server_pid_, 0);
    std::string error;
    const auto ep = Endpoint::parse(endpoint_spec_, &error);
    ASSERT_TRUE(ep.has_value()) << error;
    for (int i = 0; i < 500; ++i) {
      if (Client::connect(*ep, &error).has_value()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "server never came up: " << error;
  }

  /// SIGKILL — no drain, no fsync, no goodbye. The whole point.
  void kill_server() {
    if (server_pid_ < 0) return;
    ::kill(server_pid_, SIGKILL);
    (void)wait_exit(server_pid_);
    server_pid_ = -1;
  }

  std::string session(std::size_t i) const {
    return "fleet-" + std::to_string(i);
  }
  std::string src(std::size_t i) const {
    return "sensor-" + std::to_string(i);
  }

  std::vector<std::string> agent_args(std::size_t i,
                                      const std::string& endpoint,
                                      const std::string& spool_suffix) const {
    return {
        "--endpoint", endpoint,
        "--spool-dir", dir_ + "/spool-" + std::to_string(i) + spool_suffix,
        "--name", src(i),
        "--session", session(i),
        "--ases", "30", "--stubs", "60", "--tier2", "8",
        "--sensors", "5",
        "--rounds", std::to_string(kRounds),
        "--fail-round", "3",
        "--threshold", "2",
        "--topo-seed", std::to_string(1 + i),
        "--placement-seed", std::to_string(7 + i),
        "--fail-seed", std::to_string(99 + i),
        "--batch-max", "2",
        "--max-retries", "4",
        "--connect-timeout-ms", "1000",
        "--request-timeout-ms", "30000",
        "--backoff-base-ms", "5", "--backoff-max-ms", "50",
        "--ship-max-failures", "3",
        "--seed", std::to_string(soak_seed() + i),
    };
  }

  /// Runs agent i to completion; exit 0 or 3 (unreachable) are the only
  /// acceptable outcomes. Returns the exit code.
  int run_agent_once(std::size_t i, const std::string& endpoint,
                     const std::string& spool_suffix) {
    const std::string out = dir_ + "/agent-" + std::to_string(i) + ".json";
    const pid_t pid = spawn(agent_bin(), agent_args(i, endpoint, spool_suffix),
                            out);
    EXPECT_GT(pid, 0);
    return wait_exit(pid);
  }

  /// Re-runs agent i until an incarnation exits 0, then returns its
  /// summary line (the last run's stdout).
  std::optional<Json> run_until_acked(std::size_t i,
                                      const std::string& spool_suffix) {
    for (int attempt = 0; attempt < 12; ++attempt) {
      const int code = run_agent_once(i, endpoint_spec_, spool_suffix);
      if (code == 0) return read_summary(i);
      EXPECT_EQ(code, 3) << "agent " << i << " failed hard (exit " << code
                         << ")";
      if (code != 3) return std::nullopt;
    }
    ADD_FAILURE() << "agent " << i << " never finished shipping";
    return std::nullopt;
  }

  std::optional<Json> read_summary(std::size_t i) const {
    std::ifstream is(dir_ + "/agent-" + std::to_string(i) + ".json");
    std::string line, last;
    while (std::getline(is, line)) {
      if (!line.empty()) last = line;
    }
    return Json::parse(last);
  }

  Client connect() {
    std::string error;
    const auto ep = Endpoint::parse(endpoint_spec_, &error);
    EXPECT_TRUE(ep.has_value()) << error;
    Client::Options copts;
    copts.max_retries = 6;
    copts.backoff_base_ms = 5;
    copts.backoff_max_ms = 50;
    auto c = Client::connect(*ep, copts, &error);
    EXPECT_TRUE(c.has_value()) << error;
    return std::move(*c);
  }

  ObserveBatchResponse probe(std::size_t i) {
    Client c = connect();
    std::string error;
    ObserveBatchResponse rsp;
    EXPECT_TRUE(expect_response(
        c.call(Request{ObserveBatchRequest{session(i), src(i), {}}}, &error),
        &rsp, &error))
        << error;
    return rsp;
  }

  std::optional<std::string> query_diagnosis(std::size_t i) {
    Client c = connect();
    std::string error;
    QueryResponse rsp;
    EXPECT_TRUE(expect_response(
        c.call(Request{QueryRequest{session(i)}}, &error), &rsp, &error))
        << error;
    return rsp.diagnosis;
  }

  /// The fault-free reference: an in-process ephemeral server, the same
  /// agent seeds, no interruptions. Fills `reference_` with per-agent
  /// diagnosis documents.
  void record_reference() {
    Server::Options opts;
    std::string error;
    const std::string spec = "unix:" + dir_ + "/ref.sock";
    const auto ep = Endpoint::parse(spec, &error);
    ASSERT_TRUE(ep.has_value()) << error;
    opts.endpoint = *ep;
    Server server(std::move(opts));
    ASSERT_TRUE(server.start(&error)) << error;
    reference_.resize(kAgents);
    for (std::size_t i = 0; i < kAgents; ++i) {
      ASSERT_EQ(run_agent_once(i, spec, "-ref"), 0);
      auto c = Client::connect(server.endpoint(), &error);
      ASSERT_TRUE(c.has_value()) << error;
      QueryResponse rsp;
      ASSERT_TRUE(expect_response(
          c->call(Request{QueryRequest{session(i)}}, &error), &rsp, &error))
          << error;
      ASSERT_TRUE(rsp.diagnosis.has_value())
          << "reference agent " << i << " fired no diagnosis";
      reference_[i] = *rsp.diagnosis;
    }
    server.stop();
  }

  std::string dir_;
  std::string state_dir_;
  std::string endpoint_spec_;
  pid_t server_pid_ = -1;
  std::vector<std::string> reference_;
};

TEST_F(ServerKillSoak, SigkillMidBatchLosesNothingAndStaysInvisible) {
  record_reference();

  start_server();
  util::Rng rng(soak_seed() * 104729 + 3);

  // Two kill cycles: agents ship concurrently, the server is SIGKILLed
  // at a seeded offset mid-batch, then restarted over the same state.
  for (int cycle = 0; cycle < 2; ++cycle) {
    std::vector<pid_t> pids;
    for (std::size_t i = 0; i < kAgents; ++i) {
      pids.push_back(spawn(agent_bin(), agent_args(i, endpoint_spec_, ""),
                           dir_ + "/agent-" + std::to_string(i) + ".json"));
      ASSERT_GT(pids.back(), 0);
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(30 + static_cast<int>(rng.uniform(0, 400))));
    kill_server();
    for (const pid_t pid : pids) {
      const int code = wait_exit(pid);
      // 0 = outran the axe; 3 = unreachable, spool intact. Anything else
      // means the kill corrupted client-visible state.
      EXPECT_TRUE(code == 0 || code == 3) << "agent exit " << code;
    }
    start_server();
  }

  // Let the fleet converge against the final incarnation. A durable
  // server never answers unknown_session/no_baseline for a recovered
  // session, so every summary must report zero re-hellos.
  for (std::size_t i = 0; i < kAgents; ++i) {
    const auto summary = run_until_acked(i, "");
    ASSERT_TRUE(summary.has_value());
    const Json* rehellos = summary->find("rehellos");
    ASSERT_NE(rehellos, nullptr);
    EXPECT_EQ(rehellos->as_int(), 0)
        << "agent " << i << " saw server amnesia through a durable restart";
  }

  // The verdict: exactly-once ingest, byte-identical diagnosis.
  for (std::size_t i = 0; i < kAgents; ++i) {
    const auto view = probe(i);
    EXPECT_EQ(view.ack, kRounds) << "agent " << i << " lost observations";
    EXPECT_EQ(view.round, kRounds)
        << "agent " << i << " rounds were lost or duplicated";
    const auto diag = query_diagnosis(i);
    ASSERT_TRUE(diag.has_value()) << "agent " << i << " fired no diagnosis";
    EXPECT_EQ(*diag, reference_[i])
        << "agent " << i
        << ": diagnosis after kill-restart differs from the reference";
  }

  // One more restart with nothing in flight: recovery must be stable
  // (byte-identical again), not merely convergent.
  kill_server();
  start_server();
  for (std::size_t i = 0; i < kAgents; ++i) {
    const auto diag = query_diagnosis(i);
    ASSERT_TRUE(diag.has_value());
    EXPECT_EQ(*diag, reference_[i]);
  }
}

TEST_F(ServerKillSoak, CorruptSegmentQuarantinesAndFleetReconverges) {
  record_reference();

  // A clean durable run first.
  start_server();
  for (std::size_t i = 0; i < kAgents; ++i) {
    const auto summary = run_until_acked(i, "");
    ASSERT_TRUE(summary.has_value());
  }
  kill_server();

  // Corrupt one byte of session 0's journal while the server is down.
  const std::string sess_dir =
      state_dir_ + "/sessions/" + encode_session_dir(session(0));
  std::string victim;
  {
    const std::string cmd =
        "ls '" + sess_dir + "' | grep '\\.ndj$' | head -1 > '" + dir_ +
        "/seg.txt'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    std::ifstream is(dir_ + "/seg.txt");
    std::getline(is, victim);
  }
  ASSERT_FALSE(victim.empty()) << "no journal segment to corrupt";
  {
    std::fstream f(sess_dir + "/" + victim,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(util::record_log::kHeaderBytes));
    f.put('~');
  }

  start_server();
  // Session 0 is gone (amnesia); session 1 recovered untouched.
  {
    Client c = connect();
    std::string error;
    const auto rsp = c.call(Request{QueryRequest{session(0)}}, &error);
    ASSERT_TRUE(rsp.has_value()) << error;
    const auto* err = std::get_if<ErrorResponse>(&*rsp);
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->code, kErrUnknownSession);
  }
  EXPECT_EQ(query_diagnosis(1), std::optional<std::string>(reference_[1]));
  // The evidence was preserved, not destroyed.
  {
    const std::string cmd =
        "ls '" + sess_dir + "' | grep -q '\\.quarantined$'";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << "no quarantined files";
  }

  // The agent's spool retains acked records exactly for this moment: its
  // startup hello re-creates the session, the no_baseline answer drives a
  // re-baseline, and it re-ships everything — the summary shows all
  // rounds freshly applied (an intact session would have applied zero).
  const auto summary = run_until_acked(0, "");
  ASSERT_TRUE(summary.has_value());
  const Json* applied = summary->find("applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_EQ(applied->as_int(), static_cast<int>(kRounds))
      << "agent never noticed the amnesia (or re-shipped partially)";
  const auto view = probe(0);
  EXPECT_EQ(view.ack, kRounds);
  EXPECT_EQ(view.round, kRounds);
  EXPECT_EQ(query_diagnosis(0), std::optional<std::string>(reference_[0]));
}

}  // namespace
}  // namespace netd::svc
