#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace netd::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal Prometheus text-format parser, used to prove the renderer's
// output is machine-readable: every non-comment line must be
// `name{labels} value`, every family must be preceded by a # TYPE line,
// and histogram bucket series must be cumulative.

struct ParsedLine {
  std::string name;    ///< metric name, labels stripped
  std::string labels;  ///< raw {...} text ("" when absent)
  double value = 0.0;
};

struct ParsedExposition {
  std::vector<ParsedLine> lines;
  std::vector<std::string> typed_families;  ///< names with a # TYPE line
};

/// Strict-enough parse; returns false (with `error`) on the first
/// malformed line.
bool parse_exposition(const std::string& text, ParsedExposition* out,
                      std::string* error) {
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) {
      *error = "blank line " + std::to_string(lineno);
      return false;
    }
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, family;
      ls >> hash >> kind >> family;
      if (kind != "HELP" && kind != "TYPE") {
        *error = "bad comment on line " + std::to_string(lineno);
        return false;
      }
      if (kind == "TYPE") {
        // Real Prometheus parsers reject a second TYPE line for the same
        // family; enforce the same here so interleaved families fail.
        for (const auto& f : out->typed_families) {
          if (f == family) {
            *error = "duplicate TYPE for " + family + " on line " +
                     std::to_string(lineno);
            return false;
          }
        }
        out->typed_families.push_back(family);
      }
      continue;
    }
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      *error = "no value on line " + std::to_string(lineno);
      return false;
    }
    ParsedLine p;
    std::string series = line.substr(0, sp);
    const auto brace = series.find('{');
    if (brace != std::string::npos) {
      if (series.back() != '}') {
        *error = "unterminated labels on line " + std::to_string(lineno);
        return false;
      }
      p.labels = series.substr(brace);
      series.resize(brace);
    }
    p.name = std::move(series);
    const std::string vtext = line.substr(sp + 1);
    if (vtext == "+Inf") {
      p.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      p.value = std::strtod(vtext.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        *error = "bad value '" + vtext + "' on line " + std::to_string(lineno);
        return false;
      }
    }
    out->lines.push_back(std::move(p));
  }
  return true;
}

TEST(Counter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(ShardedHistogram, SnapshotMergesAllShards) {
  Histogram h(1.0, 2.0, 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(t + 1));
    });
  }
  for (auto& t : threads) t.join();
  const util::Histogram merged = h.snapshot();
  EXPECT_EQ(merged.count(), 800u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 8.0);
}

TEST(ShardedHistogram, SamplingRecordsEveryNth) {
  Histogram h(1.0, 2.0, 16);
  h.set_sample_every(10);
  for (int i = 0; i < 1000; ++i) h.observe(5.0);
  EXPECT_EQ(h.snapshot().count(), 100u);
  // Back to 1: everything records again.
  h.set_sample_every(1);
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  EXPECT_EQ(h.snapshot().count(), 110u);
}

TEST(Registry, SameNameAndLabelsReturnsSameInstrument) {
  Registry r;
  Counter& a = r.counter("reqs_total", "requests");
  Counter& b = r.counter("reqs_total", "requests");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, DifferentLabelsAreDistinctSeries) {
  Registry r;
  Counter& a = r.counter("reqs_total", "requests", {{"op", "query"}});
  Counter& b = r.counter("reqs_total", "requests", {{"op", "observe"}});
  EXPECT_NE(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 0u);
}

TEST(Registry, CollectIsSortedByNameThenLabels) {
  Registry r;
  r.counter("z_total", "").inc();
  r.counter("a_total", "", {{"op", "b"}}).inc();
  r.counter("a_total", "", {{"op", "a"}}).inc();
  const auto samples = r.collect();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a_total");
  EXPECT_EQ(samples[0].labels[0].second, "a");
  EXPECT_EQ(samples[1].name, "a_total");
  EXPECT_EQ(samples[1].labels[0].second, "b");
  EXPECT_EQ(samples[2].name, "z_total");
}

TEST(Render, CounterAndGaugeExactText) {
  Registry r;
  r.counter("netd_x_total", "Things counted").inc(7);
  r.gauge("netd_margin_ms", "Margin", {{"kind", "soft"}}).set(2.5);
  const std::string text = render_prometheus(r.collect());
  EXPECT_EQ(text,
            "# HELP netd_margin_ms Margin\n"
            "# TYPE netd_margin_ms gauge\n"
            "netd_margin_ms{kind=\"soft\"} 2.5\n"
            "# HELP netd_x_total Things counted\n"
            "# TYPE netd_x_total counter\n"
            "netd_x_total 7\n");
}

TEST(Render, HistogramBucketsAreCumulative) {
  Registry r;
  Histogram& h = r.histogram("lat_us", "Latency", {}, 1.0, 2.0, 8);
  h.observe(1.0);
  h.observe(3.0);   // bucket edge 4
  h.observe(3.5);   // bucket edge 4
  h.observe(1e6);   // overflow (largest edge is 128)
  const std::string text = render_prometheus(r.collect());
  EXPECT_EQ(text,
            "# HELP lat_us Latency\n"
            "# TYPE lat_us histogram\n"
            "lat_us_bucket{le=\"1\"} 1\n"
            "lat_us_bucket{le=\"4\"} 3\n"
            "lat_us_bucket{le=\"+Inf\"} 4\n"
            "lat_us_sum 1000007.5\n"
            "lat_us_count 4\n");
}

TEST(Render, LabelValuesAreEscaped) {
  Registry r;
  r.counter("esc_total", "", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = render_prometheus(r.collect());
  EXPECT_NE(text.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Render, OutputParsesWithMinimalParser) {
  Registry r;
  r.counter("p_reqs_total", "Requests", {{"op", "query"}}).inc(3);
  r.counter("p_reqs_total", "Requests", {{"op", "observe"}}).inc(5);
  r.gauge("p_margin", "Watchdog margin").set(-12.5);
  Histogram& h = r.histogram("p_lat_us", "Latency", {{"op", "query"}});
  for (double x : {1.0, 10.0, 100.0, 1e9}) h.observe(x);
  const std::string text = render_prometheus(r.collect());

  ParsedExposition exp;
  std::string error;
  ASSERT_TRUE(parse_exposition(text, &exp, &error)) << error;
  // Every family carries a # TYPE line.
  EXPECT_EQ(exp.typed_families,
            (std::vector<std::string>{"p_lat_us", "p_margin", "p_reqs_total"}));
  // Histogram bucket series are cumulative and consistent with _count.
  double last_bucket = 0.0;
  double inf_bucket = -1.0;
  double count = -1.0;
  for (const auto& l : exp.lines) {
    if (l.name == "p_lat_us_bucket") {
      EXPECT_GE(l.value, last_bucket);
      last_bucket = l.value;
      if (l.labels.find("+Inf") != std::string::npos) inf_bucket = l.value;
    } else if (l.name == "p_lat_us_count") {
      count = l.value;
    }
  }
  EXPECT_DOUBLE_EQ(inf_bucket, 4.0);
  EXPECT_DOUBLE_EQ(count, 4.0);
}

TEST(Registry, TypeConflictFailsLoudly) {
  EXPECT_DEATH(
      {
        Registry r;
        (void)r.counter("conflict_total", "first as counter");
        (void)r.histogram("conflict_total", "now as histogram");
      },
      "registered as histogram but previously as counter");
}

TEST(Render, GlobalIncludesRegisteredInstrumentsAndExtras) {
  // The process-global registry is shared with instrumented library code,
  // so only assert on series this test owns.
  Registry::global().counter("obs_test_global_total", "Test counter").inc(9);
  Sample extra;
  extra.name = "obs_test_extra";
  extra.help = "Externally produced";
  extra.type = SampleType::kGauge;
  extra.value = 1.5;
  const std::string text = render_global_prometheus({extra});
  EXPECT_NE(text.find("obs_test_global_total 9\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_extra 1.5\n"), std::string::npos);
  ParsedExposition exp;
  std::string error;
  ASSERT_TRUE(parse_exposition(text, &exp, &error)) << error;
}

}  // namespace
}  // namespace netd::obs
