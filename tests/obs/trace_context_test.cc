// The cross-process trace identity: deterministic derivation, agreement
// with the span layer's ID scheme, and the hex wire encoding.
#include "obs/trace_context.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/span.h"

namespace netd::obs {
namespace {

TEST(TraceContext, RootIsPureFunctionOfSeedAndIndex) {
  const TraceContext a = TraceContext::root(42, 7);
  const TraceContext b = TraceContext::root(42, 7);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.trace_id, a.span_id);  // the root span IS the trace
  EXPECT_NE(a.trace_id, TraceContext::root(42, 8).trace_id);
  EXPECT_NE(a.trace_id, TraceContext::root(43, 7).trace_id);
}

TEST(TraceContext, InvalidDefaultAndZeroSentinel) {
  const TraceContext none;
  EXPECT_FALSE(none.valid());
  // Roots never collide with the "no trace" sentinel, whatever the seed.
  for (std::uint64_t seed : {0ull, 1ull, ~0ull}) {
    for (std::uint64_t idx : {0ull, 1ull, 1000ull}) {
      EXPECT_TRUE(TraceContext::root(seed, idx).valid());
    }
  }
}

/// The wire layer and the span layer must derive the SAME ids — that is
/// what lets a server span parented on a frame's trace context join the
/// trace the agent's spans live in.
TEST(TraceContext, AgreesWithSpanRootContext) {
  const TraceContext tc = TraceContext::root(99, 3);
  const SpanContext sc = Span::root_context(99, 3, /*lane=*/5);
  EXPECT_EQ(tc.trace_id, sc.trace_id);
  EXPECT_EQ(tc.span_id, sc.span_id);
}

TEST(TraceContext, ChildInheritsTraceAndDerivesNewSpan) {
  const TraceContext root = TraceContext::root(1, 1);
  const TraceContext c1 = root.child("ship", 4);
  EXPECT_EQ(c1.trace_id, root.trace_id);
  EXPECT_NE(c1.span_id, root.span_id);
  EXPECT_EQ(c1, root.child("ship", 4));            // deterministic
  EXPECT_NE(c1.span_id, root.child("ship", 5).span_id);
  EXPECT_NE(c1.span_id, root.child("spool", 4).span_id);
}

TEST(TraceContext, RootsAreWellSpread) {
  std::set<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ids.insert(TraceContext::root(7, i).trace_id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceIdFormat, RoundTripsExactly) {
  for (std::uint64_t id :
       {0ull, 1ull, 0xdeadbeefull, 0x0123456789abcdefull, ~0ull}) {
    const std::string text = format_trace_id(id);
    EXPECT_EQ(text.size(), 18u) << text;  // "0x" + 16 hex digits
    EXPECT_EQ(text.substr(0, 2), "0x");
    std::uint64_t back = 42;
    ASSERT_TRUE(parse_trace_id(text, &back)) << text;
    EXPECT_EQ(back, id);
  }
}

TEST(TraceIdFormat, ParseAcceptsUnprefixedHex) {
  std::uint64_t v = 0;
  ASSERT_TRUE(parse_trace_id("ff", &v));
  EXPECT_EQ(v, 0xffu);
  ASSERT_TRUE(parse_trace_id("0xFF", &v));
  EXPECT_EQ(v, 0xffu);
}

TEST(TraceIdFormat, ParseRejectsGarbage) {
  std::uint64_t v = 99;
  EXPECT_FALSE(parse_trace_id("", &v));
  EXPECT_FALSE(parse_trace_id("0x", &v));
  EXPECT_FALSE(parse_trace_id("0xzz", &v));
  EXPECT_FALSE(parse_trace_id("12 34", &v));
  EXPECT_FALSE(parse_trace_id("0x00000000000000001", &v));  // 17 digits
  EXPECT_EQ(v, 99u);  // untouched on failure
}

}  // namespace
}  // namespace netd::obs
