// The tracing contract: span IDs derive only from (seed, position in the
// call tree), so the same workload traced twice — or with a different
// --threads setting — yields the same span tree; only timestamps differ.
#include "obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "exp/runner.h"
#include "svc/json.h"
#include "util/atomic_file.h"

namespace netd::obs {
namespace {

/// Everything about a span except its timing: the identity a
/// deterministic trace must reproduce exactly.
using Shape = std::tuple<std::string, std::uint64_t, std::uint64_t,
                         std::uint64_t, std::uint32_t>;

std::set<Shape> shape_of(const std::vector<TraceEvent>& events) {
  std::set<Shape> out;
  for (const auto& e : events) {
    out.insert({e.name, e.trace_id, e.span_id, e.parent_id, e.lane});
  }
  return out;
}

/// Installs the sink for one test body; uninstalls on scope exit so
/// tests cannot leak an active sink into each other.
class SinkScope {
 public:
  SinkScope() { TraceSink::install(); }
  ~SinkScope() { TraceSink::uninstall(); }
};

TEST(SpanIds, RootContextIsPureFunctionOfSeedAndIndex) {
  const SpanContext a = Span::root_context(42, 3, 4);
  const SpanContext b = Span::root_context(42, 3, 4);
  EXPECT_EQ(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, b.span_id);
  EXPECT_EQ(a.lane, b.lane);
  EXPECT_TRUE(a.valid());
  // Different placement => different trace.
  const SpanContext c = Span::root_context(42, 4, 5);
  EXPECT_NE(a.trace_id, c.trace_id);
  // Different seed => different trace.
  const SpanContext d = Span::root_context(43, 3, 4);
  EXPECT_NE(a.trace_id, d.trace_id);
}

TEST(Span, NoSinkRecordsNothing) {
  {
    Span outer("outer");
    Span inner("inner");
  }
  EXPECT_TRUE(TraceSink::snapshot().empty());
  EXPECT_FALSE(TraceSink::active());
}

TEST(Span, AmbientNestingParentsChildren) {
  SinkScope sink;
  const SpanContext root = Span::root_context(7, 0, 1);
  {
    Span top("top", root, /*salt=*/0);
    Span mid("mid");
    Span leaf("leaf");
    EXPECT_EQ(Span::current().span_id, leaf.context().span_id);
  }
  const auto events = TraceSink::snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Deterministic order is (lane, trace, span id); recover by name.
  const auto find = [&](const std::string& name) {
    const auto it = std::find_if(events.begin(), events.end(),
                                 [&](const TraceEvent& e) {
                                   return e.name == name;
                                 });
    EXPECT_NE(it, events.end()) << name;
    return *it;
  };
  const TraceEvent top = find("top");
  const TraceEvent mid = find("mid");
  const TraceEvent leaf = find("leaf");
  EXPECT_EQ(top.parent_id, root.span_id);
  EXPECT_EQ(mid.parent_id, top.span_id);
  EXPECT_EQ(leaf.parent_id, mid.span_id);
  EXPECT_EQ(top.trace_id, root.trace_id);
  EXPECT_EQ(mid.trace_id, root.trace_id);
  EXPECT_EQ(leaf.trace_id, root.trace_id);
  EXPECT_EQ(leaf.lane, root.lane);
}

TEST(Span, SiblingsWithSameNameGetDistinctIds) {
  SinkScope sink;
  {
    Span top("top", Span::root_context(7, 0, 1), 0);
    { Span a("child"); }
    { Span b("child"); }
  }
  const auto events = TraceSink::snapshot();
  ASSERT_EQ(events.size(), 3u);
  std::set<std::uint64_t> ids;
  for (const auto& e : events) ids.insert(e.span_id);
  EXPECT_EQ(ids.size(), 3u);
}

TEST(Span, CrossThreadExplicitParentIsThreadIndependent) {
  const auto run_on_worker = [](std::uint64_t salt) {
    std::set<Shape> shape;
    TraceSink::install();
    const SpanContext root = Span::root_context(9, 2, 3);
    std::thread worker([&] {
      Span s("work", root, salt);
      Span nested("step");  // nests ambiently under the explicit span
    });
    worker.join();
    shape = shape_of(TraceSink::snapshot());
    TraceSink::uninstall();
    return shape;
  };
  // Same salt, different thread each call: identical shapes.
  const auto a = run_on_worker(5);
  const auto b = run_on_worker(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
  // A different salt relocates the subtree.
  EXPECT_NE(a, run_on_worker(6));
}

exp::ScenarioConfig small_campaign(std::size_t threads) {
  exp::ScenarioConfig cfg;
  cfg.num_placements = 3;
  cfg.trials_per_placement = 2;
  cfg.seed = 2026;
  cfg.num_threads = threads;
  return cfg;
}

std::set<Shape> trace_campaign(std::size_t threads) {
  TraceSink::install();
  exp::Runner runner(small_campaign(threads));
  const auto results =
      runner.run({exp::Algo::kTomo, exp::Algo::kNdEdge});
  EXPECT_FALSE(results.empty());
  const auto shape = shape_of(TraceSink::snapshot());
  TraceSink::uninstall();
  return shape;
}

TEST(SpanDeterminism, SameSeedSameSpanTree) {
  const auto first = trace_campaign(1);
  const auto second = trace_campaign(1);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(SpanDeterminism, ThreadCountDoesNotChangeSpanTree) {
  const auto serial = trace_campaign(1);
  const auto parallel = trace_campaign(3);
  EXPECT_EQ(serial, parallel);
}

TEST(SpanDeterminism, EveryPlacementHasARootedTrialSpan) {
  TraceSink::install();
  const auto cfg = small_campaign(1);
  exp::Runner runner(cfg);
  (void)runner.run({exp::Algo::kTomo});
  const auto events = TraceSink::snapshot();
  TraceSink::uninstall();
  for (std::size_t pl = 0; pl < cfg.num_placements; ++pl) {
    const SpanContext root = Span::root_context(
        cfg.seed, pl, static_cast<std::uint32_t>(pl + 1));
    bool placement_span = false;
    bool solve_span = false;
    for (const auto& e : events) {
      if (e.trace_id != root.trace_id) continue;
      placement_span |= e.name == "placement";
      solve_span |= e.name == "solve";
    }
    EXPECT_TRUE(placement_span) << "placement " << pl;
    EXPECT_TRUE(solve_span) << "placement " << pl;
  }
}

TEST(ChromeTrace, FileIsAValidEventArray) {
  const std::string path = ::testing::TempDir() + "/netd_obs_trace.json";
  TraceSink::install();
  {
    Span top("top", Span::root_context(1, 0, 1), 0);
    Span inner("inner");
  }
  std::string error;
  ASSERT_TRUE(TraceSink::write_chrome_trace(path, &error)) << error;
  TraceSink::uninstall();

  const auto text = util::read_file(path, &error);
  ASSERT_TRUE(text.has_value()) << error;
  const auto doc = svc::Json::parse(*text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->size(), 2u);
  for (std::size_t i = 0; i < doc->size(); ++i) {
    const svc::Json& ev = (*doc)[i];
    ASSERT_TRUE(ev.is_object());
    const svc::Json* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->as_string(), "X");  // complete events
    for (const char* key : {"pid", "tid", "ts", "dur"}) {
      const svc::Json* v = ev.find(key);
      ASSERT_NE(v, nullptr) << key;
      EXPECT_TRUE(v->is_number()) << key;
    }
    ASSERT_NE(ev.find("name"), nullptr);
    const svc::Json* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->find("id"), nullptr);
    ASSERT_NE(args->find("trace"), nullptr);
  }
}

TEST(ScopedParentAdoption, ParentsAmbientSpans) {
  SinkScope sink;
  const SpanContext root = Span::root_context(11, 0, 2);
  {
    ScopedParent adopt(root);
    Span child("adopted");
  }
  const auto events = TraceSink::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].parent_id, root.span_id);
  EXPECT_EQ(events[0].trace_id, root.trace_id);
  EXPECT_EQ(events[0].lane, root.lane);
}

}  // namespace
}  // namespace netd::obs
