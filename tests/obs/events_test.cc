// The structured event ring behind the `events` wire verb and
// `netdiag tail`: global ordering, cursor semantics, bounded retention.
#include "obs/events.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace netd::obs {
namespace {

class EventRingTest : public ::testing::Test {
 protected:
  void SetUp() override { EventRing::reset_for_test(); }
  void TearDown() override { EventRing::reset_for_test(); }
};

// record() compiles to a no-op with NETD_OBS=OFF, so everything that
// asserts on recorded events only exists on the ON tree. The cursor,
// name, and parse surfaces below stay live in both configurations.
#ifndef NETD_OBS_DISABLED

TEST_F(EventRingTest, RecordsInGlobalOrderWithPayload) {
  EventRing::record(EventKind::kSlowRequest, "observe", 0xabc, 1500);
  EventRing::record(EventKind::kShed, "accept");
  std::uint64_t next = 0;
  const auto events = EventRing::since(0, 0, &next);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_EQ(next, events[1].seq);
  EXPECT_EQ(events[0].kind, EventKind::kSlowRequest);
  EXPECT_EQ(events[0].detail, "observe");
  EXPECT_EQ(events[0].trace_id, 0xabcu);
  EXPECT_EQ(events[0].dur_us, 1500u);
  EXPECT_EQ(events[1].kind, EventKind::kShed);
  EXPECT_EQ(events[1].trace_id, 0u);
}

TEST_F(EventRingTest, CursorResumesWhereTheLastReadStopped) {
  for (int i = 0; i < 5; ++i) {
    EventRing::record(EventKind::kDedup, "s" + std::to_string(i));
  }
  std::uint64_t cursor = 0;
  const auto first = EventRing::since(cursor, 3, &cursor);
  ASSERT_EQ(first.size(), 3u);
  const auto rest = EventRing::since(cursor, 0, &cursor);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_GT(rest.front().seq, first.back().seq);
  // Fully drained: an empty read keeps the cursor parked at the newest.
  const auto empty = EventRing::since(cursor, 0, &cursor);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(cursor, rest.back().seq);
}

TEST_F(EventRingTest, BoundedRetentionOverwritesOldest) {
  const std::size_t total = EventRing::kCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    EventRing::record(EventKind::kFsyncStall, "seg");
  }
  EXPECT_EQ(EventRing::total_recorded(), total);
  std::uint64_t next = 0;
  const auto all = EventRing::since(0, EventRing::kCapacity + 200, &next);
  EXPECT_LE(all.size(), EventRing::kCapacity);
  EXPECT_GT(all.size(), 0u);
  // The survivors are the newest, still in order.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].seq, all[i].seq);
  }
  EXPECT_EQ(all.back().seq, total);
}

TEST_F(EventRingTest, ConcurrentRecordsAllLand) {
  constexpr int kThreads = 8, kPerThread = 100;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        EventRing::record(EventKind::kShed, "t" + std::to_string(t));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(EventRing::total_recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t next = 0;
  const auto events = EventRing::since(0, 0, &next);
  EXPECT_GT(events.size(), 0u);
}

#else

TEST_F(EventRingTest, RecordCompilesOutToANoOp) {
  EventRing::record(EventKind::kSlowRequest, "observe", 0xabc, 1500);
  EXPECT_EQ(EventRing::total_recorded(), 0u);
  std::uint64_t next = 7;
  EXPECT_TRUE(EventRing::since(0, 0, &next).empty());
}

#endif  // NETD_OBS_DISABLED

TEST(EventKindNames, RoundTrip) {
  const EventKind kinds[] = {EventKind::kSlowRequest, EventKind::kShed,
                             EventKind::kDedup, EventKind::kQuarantine,
                             EventKind::kFsyncStall};
  for (EventKind k : kinds) {
    EventKind back = EventKind::kShed;
    ASSERT_TRUE(parse_event_kind(event_kind_name(k), &back))
        << event_kind_name(k);
    EXPECT_EQ(back, k);
  }
  EventKind out;
  EXPECT_FALSE(parse_event_kind("bogus", &out));
  EXPECT_FALSE(parse_event_kind("", &out));
}

}  // namespace
}  // namespace netd::obs
