#include "igp/igp.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace netd::igp {
namespace {

using topo::AsClass;
using topo::AsId;
using topo::LinkId;
using topo::RouterId;
using topo::Topology;

/// Square AS: r0-r1-r3 and r0-r2-r3, plus a heavy direct r0-r3 link.
class IgpSquare : public ::testing::Test {
 protected:
  void SetUp() override {
    as_ = t_.add_as(AsClass::kTier2);
    for (int i = 0; i < 4; ++i) r_.push_back(t_.add_router(as_));
    l01_ = t_.add_intra_link(r_[0], r_[1], 1);
    l13_ = t_.add_intra_link(r_[1], r_[3], 1);
    l02_ = t_.add_intra_link(r_[0], r_[2], 1);
    l23_ = t_.add_intra_link(r_[2], r_[3], 1);
    l03_ = t_.add_intra_link(r_[0], r_[3], 5);
  }

  Topology t_;
  AsId as_;
  std::vector<RouterId> r_;
  LinkId l01_, l13_, l02_, l23_, l03_;
};

TEST_F(IgpSquare, ShortestPathDistances) {
  IgpState igp(t_);
  EXPECT_EQ(igp.distance(r_[0], r_[0]), 0);
  EXPECT_EQ(igp.distance(r_[0], r_[1]), 1);
  EXPECT_EQ(igp.distance(r_[0], r_[3]), 2);  // via r1 or r2, not the 5-link
  EXPECT_EQ(igp.distance(r_[1], r_[2]), 2);
}

TEST_F(IgpSquare, NextHopFollowsShortestPath) {
  IgpState igp(t_);
  const auto nh = igp.next_hop(r_[0], r_[3]);
  ASSERT_TRUE(nh.has_value());
  EXPECT_TRUE(*nh == l01_ || *nh == l02_);
  EXPECT_NE(*nh, l03_);
}

TEST_F(IgpSquare, DeterministicTieBreak) {
  IgpState a(t_), b(t_);
  EXPECT_EQ(a.next_hop(r_[0], r_[3]), b.next_hop(r_[0], r_[3]));
  EXPECT_EQ(a.next_hop(r_[1], r_[2]), b.next_hop(r_[1], r_[2]));
}

TEST_F(IgpSquare, ReroutesAroundFailedLink) {
  IgpState igp(t_);
  t_.set_link_up(l01_, false);
  igp.recompute_as(as_);
  EXPECT_EQ(igp.distance(r_[0], r_[1]), 3);  // r0-r2-r3-r1
  EXPECT_EQ(igp.next_hop(r_[0], r_[1]), l02_);
}

TEST_F(IgpSquare, FallsBackToHeavyLinkWhenNeeded) {
  IgpState igp(t_);
  t_.set_link_up(l01_, false);
  t_.set_link_up(l02_, false);
  igp.recompute_as(as_);
  EXPECT_EQ(igp.distance(r_[0], r_[3]), 5);
  EXPECT_EQ(igp.next_hop(r_[0], r_[3]), l03_);
}

TEST_F(IgpSquare, DisconnectedIsUnreachable) {
  IgpState igp(t_);
  t_.set_link_up(l01_, false);
  t_.set_link_up(l02_, false);
  t_.set_link_up(l03_, false);
  igp.recompute_as(as_);
  EXPECT_FALSE(igp.reachable(r_[0], r_[3]));
  EXPECT_EQ(igp.distance(r_[0], r_[3]), IgpState::kUnreachable);
  EXPECT_FALSE(igp.next_hop(r_[0], r_[3]).has_value());
  // r1, r2, r3 remain mutually reachable.
  EXPECT_TRUE(igp.reachable(r_[1], r_[2]));
}

TEST_F(IgpSquare, DownRouterIsExcluded) {
  IgpState igp(t_);
  t_.set_router_up(r_[1], false);
  t_.set_router_up(r_[2], false);
  igp.recompute_as(as_);
  EXPECT_EQ(igp.distance(r_[0], r_[3]), 5);  // only the direct heavy link
}

TEST_F(IgpSquare, RecomputeRestoresState) {
  IgpState igp(t_);
  t_.set_link_up(l01_, false);
  igp.recompute_as(as_);
  t_.set_link_up(l01_, true);
  igp.recompute_as(as_);
  EXPECT_EQ(igp.distance(r_[0], r_[1]), 1);
}

TEST(Igp, InterdomainLinksAreIgnored) {
  Topology t;
  const AsId a = t.add_as(AsClass::kStub);
  const AsId b = t.add_as(AsClass::kStub);
  const RouterId ra = t.add_router(a);
  const RouterId rb = t.add_router(b);
  t.add_inter_link(ra, rb, topo::Relationship::kPeer);
  IgpState igp(t);
  // Same-AS queries only; each AS has one router, trivially reachable.
  EXPECT_EQ(igp.distance(ra, ra), 0);
  EXPECT_EQ(igp.distance(rb, rb), 0);
}

TEST(Igp, WorksOnGeneratedTopology) {
  const Topology t = topo::generate(topo::GeneratorParams{});
  IgpState igp(t);
  // Every intra-AS router pair of the cores must be mutually reachable.
  for (std::uint32_t asv = 0; asv < 3; ++asv) {
    const auto& as = t.as_of(AsId{asv});
    for (RouterId u : as.routers) {
      for (RouterId v : as.routers) {
        EXPECT_TRUE(igp.reachable(u, v));
        EXPECT_EQ(igp.distance(u, v), igp.distance(v, u));  // symmetric weights
      }
    }
  }
}

}  // namespace
}  // namespace netd::igp
