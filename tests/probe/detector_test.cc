#include "probe/detector.h"

#include <gtest/gtest.h>

namespace netd::probe {
namespace {

Mesh mesh_with(const std::vector<bool>& oks) {
  Mesh m;
  for (std::size_t i = 0; i < oks.size(); ++i) {
    TracePath p;
    p.src = i;
    p.dst = (i + 1) % oks.size();
    p.ok = oks[i];
    m.paths.push_back(std::move(p));
  }
  return m;
}

TEST(Detector, SingleFlapSuppressed) {
  UnreachabilityDetector det(3);
  EXPECT_TRUE(det.observe(mesh_with({false, true})).empty());
  EXPECT_TRUE(det.observe(mesh_with({true, true})).empty());
  EXPECT_FALSE(det.any_alarm());
}

TEST(Detector, PersistentFailureFiresAfterThreshold) {
  UnreachabilityDetector det(3);
  EXPECT_TRUE(det.observe(mesh_with({false, true})).empty());
  EXPECT_TRUE(det.observe(mesh_with({false, true})).empty());
  const auto fired = det.observe(mesh_with({false, true}));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0u);
  EXPECT_TRUE(det.alarmed(0));
  EXPECT_FALSE(det.alarmed(1));
  EXPECT_TRUE(det.any_alarm());
}

TEST(Detector, FiresOnlyOncePerOutage) {
  UnreachabilityDetector det(2);
  det.observe(mesh_with({false}));
  EXPECT_EQ(det.observe(mesh_with({false})).size(), 1u);
  EXPECT_TRUE(det.observe(mesh_with({false})).empty());  // still down: no re-fire
  EXPECT_TRUE(det.alarmed(0));
}

TEST(Detector, RecoveryClearsAlarmAndCounter) {
  UnreachabilityDetector det(2);
  det.observe(mesh_with({false}));
  det.observe(mesh_with({false}));
  EXPECT_TRUE(det.alarmed(0));
  det.observe(mesh_with({true}));
  EXPECT_FALSE(det.alarmed(0));
  // Counter restarted: one more failure does not re-fire at threshold 2.
  EXPECT_TRUE(det.observe(mesh_with({false})).empty());
  EXPECT_EQ(det.observe(mesh_with({false})).size(), 1u);
}

TEST(Detector, ThresholdOneIsNaiveDetection) {
  UnreachabilityDetector det(1);
  const auto fired = det.observe(mesh_with({false, false, true}));
  EXPECT_EQ(fired.size(), 2u);
}

TEST(Detector, IndependentPairs) {
  UnreachabilityDetector det(2);
  det.observe(mesh_with({false, true, false}));
  const auto fired = det.observe(mesh_with({false, false, true}));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 0u);
}

TEST(Detector, ResetForgetsEverything) {
  UnreachabilityDetector det(2);
  det.observe(mesh_with({false}));
  det.reset();
  EXPECT_TRUE(det.observe(mesh_with({false})).empty());
  EXPECT_FALSE(det.any_alarm());
}

}  // namespace
}  // namespace netd::probe
