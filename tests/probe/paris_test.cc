// Paris-traceroute measurement and load-balancing-aware reroute detection.
#include <gtest/gtest.h>

#include "core/diagnosis_graph.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"

namespace netd::probe {
namespace {

using topo::AsClass;
using topo::AsId;
using topo::Relationship;
using topo::RouterId;

/// Square-core topology with ECMP between the two stub attachment points.
class ParisTest : public ::testing::Test {
 protected:
  ParisTest() {
    topo::Topology t;
    const AsId core = t.add_as(AsClass::kTier2);
    const RouterId r0 = t.add_router(core);
    const RouterId r1 = t.add_router(core);
    const RouterId r2 = t.add_router(core);
    const RouterId r3 = t.add_router(core);
    t.add_intra_link(r0, r1);
    t.add_intra_link(r1, r3);
    t.add_intra_link(r0, r2);
    t.add_intra_link(r2, r3);
    const AsId a = t.add_as(AsClass::kStub);
    const AsId b = t.add_as(AsClass::kStub);
    const RouterId ra = t.add_router(a);
    const RouterId rb = t.add_router(b);
    t.add_inter_link(ra, r0, Relationship::kProvider);
    t.add_inter_link(rb, r3, Relationship::kProvider);
    net_.emplace(std::move(t));
    net_->converge();
    sensors_ = {Sensor{"s0", ra, a}, Sensor{"s1", rb, b}};
  }

  std::optional<sim::Network> net_;
  std::vector<Sensor> sensors_;
};

TEST_F(ParisTest, MeasureParisEnumeratesAlternatives) {
  Prober prober(*net_, sensors_);
  const ParisMesh pm = prober.measure_paris();
  ASSERT_EQ(pm.pairs.size(), 2u);
  for (const auto& pp : pm.pairs) {
    EXPECT_EQ(pp.alternatives.size(), 2u);
    for (const auto& alt : pp.alternatives) {
      EXPECT_TRUE(alt.ok);
      EXPECT_EQ(alt.hops.front().label, sensors_[pp.src].name);
      EXPECT_EQ(alt.hops.back().label, sensors_[pp.dst].name);
    }
  }
}

TEST_F(ParisTest, LoadBalancedChangeRecognized) {
  Prober prober(*net_, sensors_);
  const ParisMesh pm = prober.measure_paris();
  // The second ECMP alternative looks like a "change" vs the first but is
  // load balancing.
  const TracePath& sibling = pm.pairs[0].alternatives[1];
  EXPECT_TRUE(is_load_balanced_change(pm.pairs[0], sibling));
}

TEST_F(ParisTest, GenuineRerouteNotMistakenForLoadBalancing) {
  Prober prober(*net_, sensors_);
  const ParisMesh pm = prober.measure_paris();
  // Fail one branch: the new path is forced over the surviving branch,
  // but with a changed hop set only if the old flow used the dead branch.
  // Construct a synthetic "after" that visits a hop sequence absent from
  // the alternatives: reverse path (src/dst swapped labels) qualifies.
  TracePath fake = pm.pairs[0].alternatives[0];
  fake.hops.erase(fake.hops.begin() + 2);  // drop a middle hop
  EXPECT_FALSE(is_load_balanced_change(pm.pairs[0], fake));
}

TEST_F(ParisTest, FailedAfterPathIsNeverLoadBalancing) {
  Prober prober(*net_, sensors_);
  const ParisMesh pm = prober.measure_paris();
  TracePath failed = pm.pairs[0].alternatives[0];
  failed.ok = false;
  EXPECT_FALSE(is_load_balanced_change(pm.pairs[0], failed));
}

TEST_F(ParisTest, DiagnosisGraphSuppressesEcmpFalseReroutes) {
  Prober prober(*net_, sensors_);
  const Mesh before = prober.measure();
  const ParisMesh paris = prober.measure_paris();

  // Build a synthetic T+ mesh where pair 0 took its ECMP sibling: without
  // Paris data this is flagged as a reroute; with it, it is not.
  Mesh after = before;
  after.paths[0] = paris.pairs[0].alternatives[1];
  after.paths[0].src = before.paths[0].src;
  after.paths[0].dst = before.paths[0].dst;

  const auto naive = core::build_diagnosis_graph(before, after, false);
  ASSERT_FALSE(naive.paths.empty());
  EXPECT_TRUE(naive.paths[0].rerouted);

  const auto aware = core::build_diagnosis_graph(before, after, false, &paris);
  EXPECT_FALSE(aware.paths[0].rerouted);
}

TEST_F(ParisTest, ParisAwareGraphStillSeesRealReroutes) {
  Prober prober(*net_, sensors_);
  const Mesh before = prober.measure();
  const ParisMesh paris = prober.measure_paris();

  // Fail the branch the default flow uses; the pair reroutes for real...
  // unless the surviving path is itself one of the T− alternatives (pure
  // intra-AS ECMP), in which case it is correctly NOT a reroute.
  const auto& used = before.paths[0];
  topo::LinkId victim;
  for (topo::LinkId l : used.links) {
    if (!net_->topology().link(l).interdomain) {
      victim = l;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  net_->fail_link(victim);
  net_->reconverge();
  const Mesh after = prober.measure();
  ASSERT_TRUE(after.paths[0].ok);

  const auto aware = core::build_diagnosis_graph(before, after, false, &paris);
  // The new path is the surviving ECMP sibling -> load balancing from the
  // tomography viewpoint; the pair must not contribute a reroute set that
  // would accuse the sibling's links.
  EXPECT_FALSE(aware.paths[0].rerouted);
}

}  // namespace
}  // namespace netd::probe
