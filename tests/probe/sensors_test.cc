#include "probe/sensors.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/generator.h"

namespace netd::probe {
namespace {

using topo::AsClass;
using topo::Topology;

class SensorsTest : public ::testing::Test {
 protected:
  SensorsTest() : topo_(topo::generate(topo::GeneratorParams{})), rng_(5) {}

  Topology topo_;
  util::Rng rng_;
};

TEST_F(SensorsTest, RandomStubPlacementUsesDistinctStubAses) {
  const auto sensors =
      place_sensors(topo_, PlacementKind::kRandomStub, 10, rng_);
  ASSERT_EQ(sensors.size(), 10u);
  std::set<std::uint32_t> ases;
  for (const auto& s : sensors) {
    EXPECT_EQ(topo_.as_of(s.as).cls, AsClass::kStub);
    ases.insert(s.as.value());
    EXPECT_EQ(topo_.as_of_router(s.attach), s.as);
  }
  EXPECT_EQ(ases.size(), 10u);
}

TEST_F(SensorsTest, SensorNamesAreSequential) {
  const auto sensors =
      place_sensors(topo_, PlacementKind::kRandomStub, 4, rng_);
  EXPECT_EQ(sensors[0].name, "s0");
  EXPECT_EQ(sensors[3].name, "s3");
}

TEST_F(SensorsTest, SameAsPlacementPutsAllInOneAs) {
  const auto sensors = place_sensors(topo_, PlacementKind::kSameAs, 10, rng_);
  std::set<std::uint32_t> ases, routers;
  for (const auto& s : sensors) {
    ases.insert(s.as.value());
    routers.insert(s.attach.value());
  }
  EXPECT_EQ(ases.size(), 1u);
  EXPECT_GE(routers.size(), 9u);  // spread across routers
  // The host AS is the biggest one (GEANT analogue: 23 routers).
  EXPECT_EQ(topo_.as_of(sensors[0].as).routers.size(), 23u);
}

TEST_F(SensorsTest, SameAsPlacementWrapsWhenOverRouterCount) {
  const auto sensors = place_sensors(topo_, PlacementKind::kSameAs, 50, rng_);
  EXPECT_EQ(sensors.size(), 50u);
}

TEST_F(SensorsTest, DistantAsPlacementSplitsAcrossTwoAses) {
  const auto sensors =
      place_sensors(topo_, PlacementKind::kDistantAs, 10, rng_);
  std::map<std::uint32_t, int> count;
  for (const auto& s : sensors) ++count[s.as.value()];
  ASSERT_EQ(count.size(), 2u);
  for (const auto& [as, n] : count) EXPECT_EQ(n, 5);
}

TEST_F(SensorsTest, DistantAsPairHasDisjointProvidersWhenPossible) {
  const auto sensors =
      place_sensors(topo_, PlacementKind::kDistantAs, 10, rng_);
  std::set<std::uint32_t> ases;
  for (const auto& s : sensors) ases.insert(s.as.value());
  // Both are tier-2 ASes.
  for (auto as : ases) {
    EXPECT_EQ(topo_.as_of(topo::AsId{as}).cls, AsClass::kTier2);
  }
}

TEST_F(SensorsTest, SplitPlacementAddsIntermediateSensors) {
  const auto sensors =
      place_sensors(topo_, PlacementKind::kDistantAsSplit, 10, rng_);
  std::set<std::uint32_t> ases;
  for (const auto& s : sensors) ases.insert(s.as.value());
  EXPECT_GE(ases.size(), 3u);  // two ends + intermediates
  // Intermediate ASes are cores (the providers of the two ends).
  bool has_core = false;
  for (auto as : ases) {
    if (topo_.as_of(topo::AsId{as}).cls == AsClass::kCore) has_core = true;
  }
  EXPECT_TRUE(has_core);
}

TEST_F(SensorsTest, PlacementsAreRngDeterministic) {
  util::Rng r1(99), r2(99);
  const auto a = place_sensors(topo_, PlacementKind::kRandomStub, 8, r1);
  const auto b = place_sensors(topo_, PlacementKind::kRandomStub, 8, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].attach, b[i].attach);
  }
}

}  // namespace
}  // namespace netd::probe
