// ICMP rate limiting and the retry remedy (paper §3.4).
#include <gtest/gtest.h>

#include "probe/prober.h"
#include "sim/network.h"
#include "topo/generator.h"

namespace netd::probe {
namespace {

using topo::AsId;

class RateLimitTest : public ::testing::Test {
 protected:
  RateLimitTest() : net_(topo::tiny_topology()) {
    net_.converge();
    for (std::uint32_t as : {4u, 5u, 6u}) {
      sensors_.push_back(Sensor{
          "s" + std::to_string(sensors_.size()),
          net_.topology().as_of(AsId{as}).routers.front(), AsId{as}});
    }
  }

  static std::size_t count_uh(const Mesh& m) {
    std::size_t n = 0;
    for (const auto& p : m.paths) {
      for (const auto& h : p.hops) {
        n += h.kind == graph::NodeKind::kUnidentified;
      }
    }
    return n;
  }

  sim::Network net_;
  std::vector<Sensor> sensors_;
};

TEST_F(RateLimitTest, NoDropsByDefault) {
  Prober p(net_, sensors_);
  EXPECT_EQ(count_uh(p.measure()), 0u);
}

TEST_F(RateLimitTest, DropsProduceStars) {
  Prober p(net_, sensors_);
  p.set_icmp_drop(0.4, 7);
  EXPECT_GT(count_uh(p.measure()), 0u);
}

TEST_F(RateLimitTest, DropsAreDeterministicPerSeed) {
  Prober a(net_, sensors_), b(net_, sensors_);
  a.set_icmp_drop(0.4, 7);
  b.set_icmp_drop(0.4, 7);
  const Mesh ma = a.measure(), mb = b.measure();
  for (std::size_t k = 0; k < ma.paths.size(); ++k) {
    for (std::size_t h = 0; h < ma.paths[k].hops.size(); ++h) {
      EXPECT_EQ(ma.paths[k].hops[h].label, mb.paths[k].hops[h].label);
    }
  }
}

TEST_F(RateLimitTest, DifferentSeedsDropDifferently) {
  Prober a(net_, sensors_), b(net_, sensors_);
  a.set_icmp_drop(0.4, 7);
  b.set_icmp_drop(0.4, 8);
  const Mesh ma = a.measure(), mb = b.measure();
  bool differs = false;
  for (std::size_t k = 0; k < ma.paths.size() && !differs; ++k) {
    for (std::size_t h = 0; h < ma.paths[k].hops.size() && !differs; ++h) {
      differs = ma.paths[k].hops[h].kind != mb.paths[k].hops[h].kind;
    }
  }
  EXPECT_TRUE(differs);
}

TEST_F(RateLimitTest, RetriesRecoverIdentifiedHops) {
  Prober p(net_, sensors_);
  p.set_icmp_drop(0.3, 11);
  const std::size_t single = count_uh(p.measure());
  const std::size_t retried = count_uh(p.measure_with_retries(6));
  EXPECT_GT(single, 0u);
  EXPECT_LT(retried, single);
  // 0.3^6 ≈ 0.07%: the tiny mesh should be fully resolved.
  EXPECT_EQ(retried, 0u);
}

TEST_F(RateLimitTest, RetriedMeshMatchesCleanMesh) {
  Prober clean(net_, sensors_);
  const Mesh reference = clean.measure();
  Prober limited(net_, sensors_);
  limited.set_icmp_drop(0.3, 13);
  const Mesh merged = limited.measure_with_retries(8);
  ASSERT_EQ(merged.paths.size(), reference.paths.size());
  for (std::size_t k = 0; k < merged.paths.size(); ++k) {
    ASSERT_EQ(merged.paths[k].hops.size(), reference.paths[k].hops.size());
    for (std::size_t h = 0; h < merged.paths[k].hops.size(); ++h) {
      EXPECT_EQ(merged.paths[k].hops[h].label,
                reference.paths[k].hops[h].label);
    }
  }
}

TEST_F(RateLimitTest, BlockedAsesStayBlockedDespiteRetries) {
  Prober p(net_, sensors_, {3u});
  p.set_icmp_drop(0.3, 17);
  const Mesh merged = p.measure_with_retries(8);
  bool saw_blocked_uh = false;
  for (const auto& path : merged.paths) {
    for (const auto& h : path.hops) {
      if (h.kind == graph::NodeKind::kUnidentified) {
        ASSERT_TRUE(h.router.valid());
        EXPECT_EQ(net_.topology().as_of_router(h.router), AsId{3});
        saw_blocked_uh = true;
      }
    }
  }
  EXPECT_TRUE(saw_blocked_uh);
}

TEST_F(RateLimitTest, SingleAttemptEqualsMeasure) {
  Prober p(net_, sensors_);
  p.set_icmp_drop(0.3, 19);
  const Mesh a = p.measure();
  const Mesh b = p.measure_with_retries(1);
  for (std::size_t k = 0; k < a.paths.size(); ++k) {
    for (std::size_t h = 0; h < a.paths[k].hops.size(); ++h) {
      EXPECT_EQ(a.paths[k].hops[h].label, b.paths[k].hops[h].label);
    }
  }
}

}  // namespace
}  // namespace netd::probe
