#include "probe/prober.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace netd::probe {
namespace {

using topo::AsId;
using topo::RouterId;

class ProberTest : public ::testing::Test {
 protected:
  ProberTest() : net_(topo::tiny_topology()) {
    net_.converge();
    for (std::uint32_t as : {4u, 5u, 6u}) {
      sensors_.push_back(
          Sensor{"s" + std::to_string(sensors_.size()),
                 net_.topology().as_of(AsId{as}).routers.front(), AsId{as}});
    }
  }

  sim::Network net_;
  std::vector<Sensor> sensors_;
};

Hop make_hop(const std::string& label, graph::NodeKind kind) {
  return Hop{label, kind, kind == graph::NodeKind::kUnidentified ? -1 : 1,
             RouterId{}};
}

TEST(MergeRetryHopsTest, FillsStarsFromAlignedRetry) {
  TracePath acc;
  acc.hops = {make_hop("s0", graph::NodeKind::kSensor),
              make_hop("uh:p0-1:h0", graph::NodeKind::kUnidentified),
              make_hop("r2", graph::NodeKind::kRouter),
              make_hop("s1", graph::NodeKind::kSensor)};
  TracePath retry;
  retry.hops = {make_hop("s0", graph::NodeKind::kSensor),
                make_hop("r1", graph::NodeKind::kRouter),
                make_hop("uh:p0-1:h1", graph::NodeKind::kUnidentified),
                make_hop("s1", graph::NodeKind::kSensor)};
  ASSERT_TRUE(merge_retry_hops(acc, retry));
  // The star was filled from the retry; the already-identified hop kept.
  EXPECT_EQ(acc.hops[1].label, "r1");
  EXPECT_EQ(acc.hops[1].kind, graph::NodeKind::kRouter);
  EXPECT_EQ(acc.hops[2].label, "r2");
}

TEST(MergeRetryHopsTest, MisalignedRetryIsRejectedNotMerged) {
  // A retry rendering with a different hop count (the network reconverged
  // between attempts, or one attempt died early) must not be stitched into
  // the accumulator — in Release builds the old code merged the common
  // prefix of two different paths.
  TracePath acc;
  acc.hops = {make_hop("s0", graph::NodeKind::kSensor),
              make_hop("uh:p0-1:h0", graph::NodeKind::kUnidentified),
              make_hop("s1", graph::NodeKind::kSensor)};
  const TracePath before = acc;
  TracePath retry;
  retry.hops = {make_hop("s0", graph::NodeKind::kSensor),
                make_hop("r1", graph::NodeKind::kRouter),
                make_hop("r9", graph::NodeKind::kRouter),
                make_hop("s1", graph::NodeKind::kSensor)};
  EXPECT_FALSE(merge_retry_hops(acc, retry));
  ASSERT_EQ(acc.hops.size(), before.hops.size());
  for (std::size_t i = 0; i < acc.hops.size(); ++i) {
    EXPECT_EQ(acc.hops[i].label, before.hops[i].label) << i;
    EXPECT_EQ(acc.hops[i].kind, before.hops[i].kind) << i;
  }
}

TEST_F(ProberTest, FullMeshHasAllOrderedPairs) {
  Prober p(net_, sensors_);
  const Mesh m = p.measure();
  EXPECT_EQ(m.paths.size(), 6u);  // 3 * 2
  for (const auto& path : m.paths) {
    EXPECT_NE(path.src, path.dst);
    EXPECT_TRUE(path.ok);
  }
}

TEST_F(ProberTest, PathsStartAndEndWithSensors) {
  Prober p(net_, sensors_);
  const Mesh m = p.measure();
  for (const auto& path : m.paths) {
    EXPECT_EQ(path.hops.front().kind, graph::NodeKind::kSensor);
    EXPECT_EQ(path.hops.front().label, sensors_[path.src].name);
    EXPECT_EQ(path.hops.back().kind, graph::NodeKind::kSensor);
    EXPECT_EQ(path.hops.back().label, sensors_[path.dst].name);
  }
}

TEST_F(ProberTest, IdentifiedHopsCarryAsns) {
  Prober p(net_, sensors_);
  const Mesh m = p.measure();
  for (const auto& path : m.paths) {
    for (const auto& h : path.hops) {
      EXPECT_GE(h.asn, 0);
      EXPECT_TRUE(h.router.valid());
    }
  }
}

TEST_F(ProberTest, GroundTruthLinksAlignWithHops) {
  Prober p(net_, sensors_);
  const Mesh m = p.measure();
  for (const auto& path : m.paths) {
    // hops = [sensor, r0.., rk, sensor]; links connect the routers.
    EXPECT_EQ(path.links.size() + 3, path.hops.size());
  }
}

TEST_F(ProberTest, BlockedAsBecomesUnidentified) {
  Prober p(net_, sensors_, {2u});  // tier-2 AS2 blocks
  const Mesh m = p.measure();
  bool saw_uh = false;
  for (const auto& path : m.paths) {
    for (const auto& h : path.hops) {
      if (h.kind == graph::NodeKind::kUnidentified) {
        saw_uh = true;
        EXPECT_EQ(h.asn, -1);
        EXPECT_TRUE(h.router.valid());  // ground truth retained
        EXPECT_EQ(net_.topology().as_of_router(h.router), AsId{2});
      } else if (h.router.valid()) {
        EXPECT_NE(net_.topology().as_of_router(h.router), AsId{2});
      }
    }
  }
  EXPECT_TRUE(saw_uh);
}

TEST_F(ProberTest, UhTokensUniquePerPath) {
  Prober p(net_, sensors_, {2u});
  const Mesh m = p.measure();
  std::map<std::string, std::pair<std::size_t, std::size_t>> owner;
  for (const auto& path : m.paths) {
    for (const auto& h : path.hops) {
      if (h.kind != graph::NodeKind::kUnidentified) continue;
      const auto key = std::make_pair(path.src, path.dst);
      auto [it, inserted] = owner.emplace(h.label, key);
      EXPECT_TRUE(inserted || it->second == key)
          << "UH token " << h.label << " reused across paths";
    }
  }
}

TEST_F(ProberTest, UhTokensStableAcrossMeasurements) {
  Prober p(net_, sensors_, {2u});
  const Mesh m1 = p.measure();
  const Mesh m2 = p.measure();
  ASSERT_EQ(m1.paths.size(), m2.paths.size());
  for (std::size_t i = 0; i < m1.paths.size(); ++i) {
    ASSERT_EQ(m1.paths[i].hops.size(), m2.paths[i].hops.size());
    for (std::size_t k = 0; k < m1.paths[i].hops.size(); ++k) {
      EXPECT_EQ(m1.paths[i].hops[k].label, m2.paths[i].hops[k].label);
    }
  }
}

TEST_F(ProberTest, ProbedLinksAreUniqueAndOnPaths) {
  Prober p(net_, sensors_);
  const Mesh m = p.measure();
  const auto links = m.probed_links();
  std::set<std::uint32_t> s;
  for (auto l : links) EXPECT_TRUE(s.insert(l.value()).second);
  EXPECT_GT(links.size(), 5u);
}

TEST_F(ProberTest, CoveredAsesIncludeSensorsAndTransit) {
  Prober p(net_, sensors_);
  const Mesh m = p.measure();
  const auto covered = m.covered_ases(net_.topology());
  for (const auto& s : sensors_) {
    EXPECT_TRUE(covered.count(static_cast<int>(s.as.value())));
  }
  EXPECT_TRUE(covered.count(0));  // core AS0 carries 4<->6 traffic
}

TEST_F(ProberTest, FailedPathRecordedAsNotOk) {
  // Cut stub 6's uplink.
  topo::LinkId uplink;
  for (const auto& l : net_.topology().links()) {
    if (l.interdomain && (net_.topology().as_of_router(l.a) == AsId{6} ||
                          net_.topology().as_of_router(l.b) == AsId{6})) {
      uplink = l.id;
      break;
    }
  }
  net_.fail_link(uplink);
  net_.reconverge();
  Prober p(net_, sensors_);
  const Mesh m = p.measure();
  for (const auto& path : m.paths) {
    const bool involves_s2 = path.src == 2 || path.dst == 2;
    EXPECT_EQ(path.ok, !involves_s2);
    if (!path.ok) {
      // Partial path: no destination sensor hop.
      EXPECT_NE(path.hops.back().label, sensors_[path.dst].name);
    }
  }
}

}  // namespace
}  // namespace netd::probe
