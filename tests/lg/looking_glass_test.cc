#include "lg/looking_glass.h"

#include <gtest/gtest.h>

#include "topo/generator.h"

namespace netd::lg {
namespace {

using topo::AsId;
using topo::PrefixId;

class LgTest : public ::testing::Test {
 protected:
  LgTest() : net_(topo::tiny_topology()) { net_.converge(); }
  sim::Network net_;
};

TEST_F(LgTest, OwnPrefixIsTrivialPath) {
  const LgTable table(net_);
  const auto p = table.as_path(AsId{3}, PrefixId{3});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, std::vector<AsId>{AsId{3}});
}

TEST_F(LgTest, PathStartsAtQueriedAsAndEndsAtOrigin) {
  const LgTable table(net_);
  const auto p = table.as_path(AsId{4}, PrefixId{6});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->front(), AsId{4});
  EXPECT_EQ(p->back(), AsId{6});
  EXPECT_GE(p->size(), 3u);
}

TEST_F(LgTest, PathMatchesTracerouteAsSequence) {
  const LgTable table(net_);
  const auto& topo = net_.topology();
  const auto tr = net_.trace(topo.as_of(AsId{4}).routers.front(),
                             topo.as_of(AsId{6}).routers.front());
  ASSERT_TRUE(tr.ok);
  std::vector<AsId> as_seq;
  for (const auto r : tr.hops) {
    const AsId as = topo.as_of_router(r);
    if (as_seq.empty() || as_seq.back() != as) as_seq.push_back(as);
  }
  const auto p = table.as_path(AsId{4}, PrefixId{6});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, as_seq);
}

TEST_F(LgTest, UnreachablePrefixHasNoPath) {
  // Cut stub 6 off, rebuild the table: no route anywhere.
  topo::LinkId uplink;
  for (const auto& l : net_.topology().links()) {
    if (l.interdomain && (net_.topology().as_of_router(l.a) == AsId{6} ||
                          net_.topology().as_of_router(l.b) == AsId{6})) {
      uplink = l.id;
      break;
    }
  }
  net_.fail_link(uplink);
  net_.reconverge();
  const LgTable table(net_);
  EXPECT_FALSE(table.as_path(AsId{4}, PrefixId{6}).has_value());
}

TEST_F(LgTest, ServiceAvailabilityFilter) {
  const LgTable table(net_);
  const LookingGlassService svc(table, {4u}, AsId{0});
  EXPECT_TRUE(svc.available(AsId{4}));
  EXPECT_FALSE(svc.available(AsId{5}));
  EXPECT_TRUE(svc.query(AsId{4}, PrefixId{6}).has_value());
  EXPECT_FALSE(svc.query(AsId{5}, PrefixId{6}).has_value());
}

TEST_F(LgTest, OperatorAsAlwaysAnswers) {
  const LgTable table(net_);
  const LookingGlassService svc(table, {}, AsId{0});
  EXPECT_TRUE(svc.available(AsId{0}));
  EXPECT_TRUE(svc.query(AsId{0}, PrefixId{6}).has_value());
}

TEST_F(LgTest, TableOnGeneratedTopologyIsComplete) {
  sim::Network net(topo::generate(topo::GeneratorParams{}));
  net.converge();
  const LgTable table(net);
  // Sample: every core AS can resolve every prefix.
  for (std::uint32_t as = 0; as < 3; ++as) {
    for (std::uint32_t p = 0; p < net.topology().num_ases(); p += 13) {
      EXPECT_TRUE(table.as_path(AsId{as}, PrefixId{p}).has_value());
    }
  }
}

}  // namespace
}  // namespace netd::lg
