#include "bgp/route.h"

#include <gtest/gtest.h>

namespace netd::bgp {
namespace {

using topo::AsId;
using topo::LinkId;
using topo::RouterId;

Route make(int pref, std::size_t path_len, std::uint32_t egress_r = 1,
           std::uint32_t egress_l = 1) {
  Route r;
  r.prefix = AsId{9};
  r.as_path.assign(path_len, AsId{2});
  r.egress_router = RouterId{egress_r};
  r.egress_link = LinkId{egress_l};
  r.local_pref = pref;
  return r;
}

TEST(BetterRoute, LocalPrefDominates) {
  const Route cust = make(kCustomerPref, 5);
  const Route peer = make(kPeerPref, 1);
  EXPECT_TRUE(better_route(cust, 100, false, peer, 0, true));
  EXPECT_FALSE(better_route(peer, 0, true, cust, 100, false));
}

TEST(BetterRoute, PrefOrderingMatchesGaoRexford) {
  EXPECT_GT(kOriginPref, kCustomerPref);
  EXPECT_GT(kCustomerPref, kPeerPref);
  EXPECT_GT(kPeerPref, kProviderPref);
}

TEST(BetterRoute, ShorterAsPathWinsAtEqualPref) {
  const Route shorter = make(kPeerPref, 2);
  const Route longer = make(kPeerPref, 3);
  EXPECT_TRUE(better_route(shorter, 10, false, longer, 0, true));
}

TEST(BetterRoute, EbgpBeatsIbgpAtEqualPrefAndLength) {
  const Route a = make(kPeerPref, 2);
  const Route b = make(kPeerPref, 2);
  EXPECT_TRUE(better_route(a, 0, true, b, 0, false));
  EXPECT_FALSE(better_route(a, 0, false, b, 0, true));
}

TEST(BetterRoute, HotPotatoIgpDistance) {
  const Route a = make(kPeerPref, 2, 1);
  const Route b = make(kPeerPref, 2, 2);
  EXPECT_TRUE(better_route(a, 3, false, b, 7, false));
  EXPECT_FALSE(better_route(a, 7, false, b, 3, false));
}

TEST(BetterRoute, DeterministicFinalTieBreak) {
  const Route a = make(kPeerPref, 2, /*egress_r=*/1);
  const Route b = make(kPeerPref, 2, /*egress_r=*/2);
  EXPECT_TRUE(better_route(a, 4, false, b, 4, false));
  EXPECT_FALSE(better_route(b, 4, false, a, 4, false));
}

TEST(BetterRoute, StrictOrdering) {
  const Route a = make(kPeerPref, 2);
  // A route is never strictly better than itself.
  EXPECT_FALSE(better_route(a, 4, false, a, 4, false));
}

TEST(Route, OriginatedFlag) {
  EXPECT_TRUE(make(kOriginPref, 0).originated());
  EXPECT_FALSE(make(kCustomerPref, 1).originated());
}

TEST(Route, EqualityComparesAllFields) {
  const Route a = make(kPeerPref, 2);
  Route b = a;
  EXPECT_EQ(a, b);
  b.as_path.push_back(AsId{5});
  EXPECT_FALSE(a == b);
  b = a;
  b.local_pref = kCustomerPref;
  EXPECT_FALSE(a == b);
  b = a;
  b.egress_link = LinkId{42};
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace netd::bgp
