#include "bgp/policy.h"

#include <gtest/gtest.h>

namespace netd::bgp {
namespace {

using topo::AsClass;
using topo::AsId;
using topo::LinkId;
using topo::Relationship;
using topo::RouterId;
using topo::Topology;

/// r0 (AS0) has a customer AS1, a peer AS2 and a provider AS3.
class PolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const AsId as0 = t_.add_as(AsClass::kTier2);
    const AsId as1 = t_.add_as(AsClass::kStub);
    const AsId as2 = t_.add_as(AsClass::kTier2);
    const AsId as3 = t_.add_as(AsClass::kCore);
    r0_ = t_.add_router(as0);
    const RouterId r1 = t_.add_router(as1);
    const RouterId r2 = t_.add_router(as2);
    const RouterId r3 = t_.add_router(as3);
    to_customer_ = t_.add_inter_link(r0_, r1, Relationship::kCustomer);
    to_peer_ = t_.add_inter_link(r0_, r2, Relationship::kPeer);
    to_provider_ = t_.add_inter_link(r0_, r3, Relationship::kProvider);
  }

  Route route_with_pref(int pref) {
    Route r;
    r.prefix = AsId{1};
    r.as_path = {AsId{1}};
    r.egress_router = r0_;
    r.egress_link = to_customer_;
    r.local_pref = pref;
    return r;
  }

  Topology t_;
  RouterId r0_;
  LinkId to_customer_, to_peer_, to_provider_;
  ExportFilters filters_;
};

TEST_F(PolicyTest, CustomerRouteExportsEverywhere) {
  const Route r = route_with_pref(kCustomerPref);
  EXPECT_TRUE(export_allowed(t_, r0_, to_customer_, r, filters_));
  EXPECT_TRUE(export_allowed(t_, r0_, to_peer_, r, filters_));
  EXPECT_TRUE(export_allowed(t_, r0_, to_provider_, r, filters_));
}

TEST_F(PolicyTest, OriginatedRouteExportsEverywhere) {
  const Route r = route_with_pref(kOriginPref);
  EXPECT_TRUE(export_allowed(t_, r0_, to_customer_, r, filters_));
  EXPECT_TRUE(export_allowed(t_, r0_, to_peer_, r, filters_));
  EXPECT_TRUE(export_allowed(t_, r0_, to_provider_, r, filters_));
}

TEST_F(PolicyTest, PeerRouteOnlyToCustomers) {
  const Route r = route_with_pref(kPeerPref);
  EXPECT_TRUE(export_allowed(t_, r0_, to_customer_, r, filters_));
  EXPECT_FALSE(export_allowed(t_, r0_, to_peer_, r, filters_));
  EXPECT_FALSE(export_allowed(t_, r0_, to_provider_, r, filters_));
}

TEST_F(PolicyTest, ProviderRouteOnlyToCustomers) {
  const Route r = route_with_pref(kProviderPref);
  EXPECT_TRUE(export_allowed(t_, r0_, to_customer_, r, filters_));
  EXPECT_FALSE(export_allowed(t_, r0_, to_peer_, r, filters_));
  EXPECT_FALSE(export_allowed(t_, r0_, to_provider_, r, filters_));
}

TEST_F(PolicyTest, FilterSuppressesOneSessionOnly) {
  const Route r = route_with_pref(kCustomerPref);
  filters_.add(r0_, to_peer_, r.prefix);
  EXPECT_TRUE(export_allowed(t_, r0_, to_customer_, r, filters_));
  EXPECT_FALSE(export_allowed(t_, r0_, to_peer_, r, filters_));
  EXPECT_TRUE(export_allowed(t_, r0_, to_provider_, r, filters_));
}

TEST_F(PolicyTest, FilterIsPerPrefix) {
  Route r = route_with_pref(kCustomerPref);
  filters_.add(r0_, to_peer_, AsId{42});
  EXPECT_TRUE(export_allowed(t_, r0_, to_peer_, r, filters_));
}

TEST_F(PolicyTest, FilterClear) {
  filters_.add(r0_, to_peer_, AsId{1});
  EXPECT_FALSE(filters_.empty());
  filters_.clear();
  EXPECT_TRUE(filters_.empty());
  EXPECT_FALSE(filters_.suppressed(r0_, to_peer_, AsId{1}));
}

}  // namespace
}  // namespace netd::bgp
