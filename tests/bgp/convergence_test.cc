// Deeper BGP behaviors: hot-potato, iBGP egress switchover, policy
// interactions, filter lifecycles.
#include <gtest/gtest.h>

#include "bgp/engine.h"
#include "topo/generator.h"

namespace netd::bgp {
namespace {

using topo::AsClass;
using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::Relationship;
using topo::RouterId;
using topo::Topology;

/// AS0 is a 3-router chain r0-r1-r2; a customer stub AS1 is dual-attached
/// at r0 and r2 (two eBGP sessions to the same neighbor AS).
struct DualAttach {
  Topology t;
  RouterId r0, r1, r2, stub;
  LinkId near, far;

  DualAttach() {
    const AsId as0 = t.add_as(AsClass::kTier2);
    const AsId as1 = t.add_as(AsClass::kStub);
    r0 = t.add_router(as0);
    r1 = t.add_router(as0);
    r2 = t.add_router(as0);
    t.add_intra_link(r0, r1, 1);
    t.add_intra_link(r1, r2, 1);
    stub = t.add_router(as1);
    near = t.add_inter_link(stub, r0, Relationship::kProvider);
    far = t.add_inter_link(stub, r2, Relationship::kProvider);
  }
};

TEST(BgpConvergence, HotPotatoPicksNearestEgress) {
  DualAttach d;
  igp::IgpState igp(d.t);
  BgpEngine bgp(d.t, igp);
  bgp.converge_initial();
  // r0 and r2 each use their local session; r1 is equidistant and breaks
  // the tie deterministically. All three must route via an egress that is
  // IGP-nearest.
  const auto at_r0 = bgp.best(d.r0, PrefixId{1});
  const auto at_r2 = bgp.best(d.r2, PrefixId{1});
  ASSERT_TRUE(at_r0 && at_r2);
  EXPECT_EQ(at_r0->egress_router, d.r0);
  EXPECT_EQ(at_r0->egress_link, d.near);
  EXPECT_EQ(at_r2->egress_router, d.r2);
  EXPECT_EQ(at_r2->egress_link, d.far);
}

TEST(BgpConvergence, EgressSwitchoverOnSessionLoss) {
  DualAttach d;
  igp::IgpState igp(d.t);
  BgpEngine bgp(d.t, igp);
  bgp.converge_initial();
  d.t.set_link_up(d.near, false);
  bgp.on_link_state_change(d.near);
  bgp.run_to_convergence();
  // r0 must now reach the stub via r2's session (iBGP-learned).
  const auto at_r0 = bgp.best(d.r0, PrefixId{1});
  ASSERT_TRUE(at_r0.has_value());
  EXPECT_EQ(at_r0->egress_router, d.r2);
  EXPECT_EQ(at_r0->egress_link, d.far);
}

TEST(BgpConvergence, EgressSwitchbackOnSessionRestore) {
  DualAttach d;
  igp::IgpState igp(d.t);
  BgpEngine bgp(d.t, igp);
  bgp.converge_initial();
  const auto before = bgp.best(d.r0, PrefixId{1});
  d.t.set_link_up(d.near, false);
  bgp.on_link_state_change(d.near);
  bgp.run_to_convergence();
  d.t.set_link_up(d.near, true);
  bgp.on_link_state_change(d.near);
  bgp.run_to_convergence();
  const auto after = bgp.best(d.r0, PrefixId{1});
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, *before);
}

TEST(BgpConvergence, IgpShiftMovesEgress) {
  // Make r0's path to its own session more expensive than crossing to r2:
  // hot-potato at r1 flips.
  DualAttach d;
  igp::IgpState igp(d.t);
  BgpEngine bgp(d.t, igp);
  bgp.converge_initial();
  const auto at_r1_before = bgp.best(d.r1, PrefixId{1});
  ASSERT_TRUE(at_r1_before.has_value());
  // Fail the r0-r1 link: r1's only egress-reachable border is r2.
  for (const auto& link : d.t.links()) {
    if (!link.interdomain && ((link.a == d.r0 && link.b == d.r1) ||
                              (link.a == d.r1 && link.b == d.r0))) {
      d.t.set_link_up(link.id, false);
      igp.recompute_as(AsId{0});
      bgp.on_link_state_change(link.id);
      break;
    }
  }
  bgp.run_to_convergence();
  const auto at_r1 = bgp.best(d.r1, PrefixId{1});
  ASSERT_TRUE(at_r1.has_value());
  EXPECT_EQ(at_r1->egress_router, d.r2);
}

TEST(BgpConvergence, PeerDoesNotTransitToPeer) {
  // Classic violation check: X peers with Y and Z; Y's prefix must not be
  // offered to Z through X.
  Topology t;
  const AsId x = t.add_as(AsClass::kTier2);
  const AsId y = t.add_as(AsClass::kTier2);
  const AsId z = t.add_as(AsClass::kTier2);
  const RouterId rx = t.add_router(x);
  const RouterId ry = t.add_router(y);
  const RouterId rz = t.add_router(z);
  t.add_inter_link(rx, ry, Relationship::kPeer);
  t.add_inter_link(rx, rz, Relationship::kPeer);
  igp::IgpState igp(t);
  BgpEngine bgp(t, igp);
  bgp.converge_initial();
  EXPECT_TRUE(bgp.best(rx, PrefixId{1}).has_value());
  EXPECT_TRUE(bgp.best(rx, PrefixId{2}).has_value());
  // z has no route to y (would require peer->peer transit through x).
  EXPECT_FALSE(bgp.best(rz, PrefixId{1}).has_value());
  EXPECT_FALSE(bgp.best(ry, PrefixId{2}).has_value());
}

TEST(BgpConvergence, CustomerConeIsTransited) {
  // X provides to C; X peers with Y: Y must reach C through X.
  Topology t;
  const AsId x = t.add_as(AsClass::kTier2);
  const AsId y = t.add_as(AsClass::kTier2);
  const AsId c = t.add_as(AsClass::kStub);
  const RouterId rx = t.add_router(x);
  const RouterId ry = t.add_router(y);
  const RouterId rc = t.add_router(c);
  t.add_inter_link(rx, ry, Relationship::kPeer);
  t.add_inter_link(rc, rx, Relationship::kProvider);
  igp::IgpState igp(t);
  BgpEngine bgp(t, igp);
  bgp.converge_initial();
  const auto route = bgp.best(ry, PrefixId{2});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->as_path, (std::vector<AsId>{x, c}));
}

TEST(BgpConvergence, FilterOnOneSessionLeavesOtherSession) {
  DualAttach d;
  igp::IgpState igp(d.t);
  BgpEngine bgp(d.t, igp);
  bgp.converge_initial();
  // The stub stops announcing its prefix over the near session only.
  bgp.add_export_filter(d.stub, d.near, PrefixId{1});
  bgp.run_to_convergence();
  const auto at_r0 = bgp.best(d.r0, PrefixId{1});
  ASSERT_TRUE(at_r0.has_value());
  EXPECT_EQ(at_r0->egress_router, d.r2);  // rerouted via the far session
}

TEST(BgpConvergence, EventCountersAdvance) {
  DualAttach d;
  igp::IgpState igp(d.t);
  BgpEngine bgp(d.t, igp);
  bgp.converge_initial();
  const auto events = bgp.events_processed();
  EXPECT_GT(events, 0u);
  d.t.set_link_up(d.near, false);
  bgp.on_link_state_change(d.near);
  bgp.run_to_convergence();
  EXPECT_GT(bgp.events_processed(), events);
}

}  // namespace
}  // namespace netd::bgp
