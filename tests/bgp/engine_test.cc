#include "bgp/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/generator.h"

namespace netd::bgp {
namespace {

using topo::AsClass;
using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::Relationship;
using topo::RouterId;
using topo::Topology;

/// Chain of three single-router ASes: stub0 -> transit1 -> stub2,
/// where transit1 provides to both stubs.
struct Chain {
  Topology t;
  RouterId r0, r1, r2;
  LinkId l01, l12;

  Chain() {
    const AsId a0 = t.add_as(AsClass::kStub);
    const AsId a1 = t.add_as(AsClass::kTier2);
    const AsId a2 = t.add_as(AsClass::kStub);
    r0 = t.add_router(a0);
    r1 = t.add_router(a1);
    r2 = t.add_router(a2);
    l01 = t.add_inter_link(r0, r1, Relationship::kProvider);
    l12 = t.add_inter_link(r1, r2, Relationship::kCustomer);
  }
};

TEST(BgpEngine, PropagatesRoutesAcrossChain) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.converge_initial();

  // r0 learns AS2's prefix through its provider.
  const auto route = bgp.best(c.r0, PrefixId{2});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->as_path.size(), 2u);
  EXPECT_EQ(route->as_path[0], AsId{1});
  EXPECT_EQ(route->as_path[1], AsId{2});
  EXPECT_EQ(route->local_pref, kProviderPref);
  EXPECT_EQ(route->egress_link, c.l01);
}

TEST(BgpEngine, OriginRouteAtEveryRouter) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.converge_initial();
  const auto own = bgp.best(c.r1, PrefixId{1});
  ASSERT_TRUE(own.has_value());
  EXPECT_TRUE(own->originated());
  EXPECT_TRUE(own->as_path.empty());
}

TEST(BgpEngine, CustomerRouteHasCustomerPref) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.converge_initial();
  const auto route = bgp.best(c.r1, PrefixId{0});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->local_pref, kCustomerPref);
}

TEST(BgpEngine, SessionTeardownWithdrawsRoutes) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.converge_initial();
  ASSERT_TRUE(bgp.best(c.r0, PrefixId{2}).has_value());

  c.t.set_link_up(c.l01, false);
  bgp.on_link_state_change(c.l01);
  bgp.run_to_convergence();
  EXPECT_FALSE(bgp.best(c.r0, PrefixId{2}).has_value());
  EXPECT_FALSE(bgp.best(c.r1, PrefixId{0}).has_value());
  // AS1-AS2 unaffected.
  EXPECT_TRUE(bgp.best(c.r2, PrefixId{1}).has_value());
}

TEST(BgpEngine, SessionRestoreReadvertises) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.converge_initial();
  c.t.set_link_up(c.l01, false);
  bgp.on_link_state_change(c.l01);
  bgp.run_to_convergence();
  c.t.set_link_up(c.l01, true);
  bgp.on_link_state_change(c.l01);
  bgp.run_to_convergence();
  const auto route = bgp.best(c.r0, PrefixId{2});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->as_path.size(), 2u);
}

TEST(BgpEngine, ExportFilterWithdrawsOnePrefixOneSession) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.converge_initial();
  ASSERT_TRUE(bgp.best(c.r0, PrefixId{2}).has_value());

  // r1 stops announcing AS2's prefix to r0.
  bgp.add_export_filter(c.r1, c.l01, PrefixId{2});
  bgp.run_to_convergence();
  EXPECT_FALSE(bgp.best(c.r0, PrefixId{2}).has_value());
  // Other prefixes still flow.
  EXPECT_TRUE(bgp.best(c.r0, PrefixId{1}).has_value());
  // r1 itself still has the route (the filter is outbound-only).
  EXPECT_TRUE(bgp.best(c.r1, PrefixId{2}).has_value());
}

TEST(BgpEngine, MessageTapRecordsWithdrawals) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.set_tapped_as(AsId{0});
  bgp.converge_initial();
  bgp.clear_messages();

  bgp.add_export_filter(c.r1, c.l01, PrefixId{2});
  bgp.run_to_convergence();
  const auto& msgs = bgp.messages();
  ASSERT_FALSE(msgs.empty());
  bool saw_withdraw = false;
  for (const auto& m : msgs) {
    if (m.withdraw && m.prefix == PrefixId{2}) {
      saw_withdraw = true;
      EXPECT_EQ(m.at, c.r0);
      EXPECT_EQ(m.from, c.r1);
      EXPECT_EQ(m.link, c.l01);
    }
  }
  EXPECT_TRUE(saw_withdraw);
}

TEST(BgpEngine, TapOnlyRecordsTappedAs) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.set_tapped_as(AsId{2});
  bgp.converge_initial();
  for (const auto& m : bgp.messages()) {
    EXPECT_EQ(c.t.as_of_router(m.at), AsId{2});
  }
}

TEST(BgpEngine, SnapshotRestoreRoundTrips) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.converge_initial();
  const auto snap = bgp.snapshot();
  const auto before = bgp.best(c.r0, PrefixId{2});

  c.t.set_link_up(c.l01, false);
  bgp.on_link_state_change(c.l01);
  bgp.run_to_convergence();
  EXPECT_FALSE(bgp.best(c.r0, PrefixId{2}).has_value());

  c.t.set_link_up(c.l01, true);
  igp.recompute_all();
  bgp.restore(snap);
  const auto after = bgp.best(c.r0, PrefixId{2});
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, *before);
}

/// Diamond: stub AS3 multihomed to transits AS1 (short) and AS2 (long
/// path to AS0's customer cone).
TEST(BgpEngine, PrefersCustomerOverPeerRoute) {
  Topology t;
  const AsId a0 = t.add_as(AsClass::kTier2);
  const AsId a1 = t.add_as(AsClass::kTier2);
  const AsId a2 = t.add_as(AsClass::kStub);
  const RouterId r0 = t.add_router(a0);
  const RouterId r1 = t.add_router(a1);
  const RouterId r2 = t.add_router(a2);
  // AS2 is a customer of both AS0 and AS1; AS0 and AS1 peer.
  t.add_inter_link(r0, r1, Relationship::kPeer);
  t.add_inter_link(r2, r0, Relationship::kProvider);
  t.add_inter_link(r2, r1, Relationship::kProvider);
  igp::IgpState igp(t);
  BgpEngine bgp(t, igp);
  bgp.converge_initial();
  // AS0 hears AS2's prefix from AS2 (customer) and from AS1? No: AS1 may
  // not export a customer route to a peer — it may. Customer routes go to
  // everyone. AS0 must prefer the direct customer route.
  const auto route = bgp.best(r0, PrefixId{2});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->local_pref, kCustomerPref);
  EXPECT_EQ(route->as_path.size(), 1u);
}

TEST(BgpEngine, ValleyFreePaths) {
  // Two stubs under different providers that only peer: the stubs reach
  // each other across the peering link, but the providers never transit
  // peer-learned routes to each other’s providers.
  Topology t;
  const AsId p1 = t.add_as(AsClass::kTier2);
  const AsId p2 = t.add_as(AsClass::kTier2);
  const AsId s1 = t.add_as(AsClass::kStub);
  const AsId s2 = t.add_as(AsClass::kStub);
  const RouterId rp1 = t.add_router(p1);
  const RouterId rp2 = t.add_router(p2);
  const RouterId rs1 = t.add_router(s1);
  const RouterId rs2 = t.add_router(s2);
  t.add_inter_link(rp1, rp2, Relationship::kPeer);
  t.add_inter_link(rs1, rp1, Relationship::kProvider);
  t.add_inter_link(rs2, rp2, Relationship::kProvider);
  igp::IgpState igp(t);
  BgpEngine bgp(t, igp);
  bgp.converge_initial();

  // Stubs see each other via the peering.
  ASSERT_TRUE(bgp.best(rs1, PrefixId{3}).has_value());
  // A stub never learns a peer-to-peer transit route for the *other
  // provider's* prefix through its own provider... it does: provider2 is a
  // peer of provider1, so provider1 may not export p2's prefix? p2's
  // prefix is peer-learned at p1 -> only exported to customers -> s1 gets
  // it. That IS valley-free (peer route down to customer).
  const auto r = bgp.best(rs1, PrefixId{1});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->as_path.back(), p2);
  // But p1 must not have a route for p2's prefix via its *customer* s1.
  const auto at_p1 = bgp.best(rp1, PrefixId{1});
  ASSERT_TRUE(at_p1.has_value());
  EXPECT_EQ(at_p1->as_path.size(), 1u);  // direct peer route only
}

TEST(BgpEngine, RouterDownTearsDownAllSessions) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.converge_initial();
  c.t.set_router_up(c.r1, false);
  igp.recompute_all();
  bgp.on_router_state_change(c.r1);
  bgp.run_to_convergence();
  EXPECT_FALSE(bgp.best(c.r0, PrefixId{2}).has_value());
  EXPECT_FALSE(bgp.best(c.r2, PrefixId{0}).has_value());
  EXPECT_FALSE(bgp.best(c.r1, PrefixId{0}).has_value());
}

TEST(BgpEngine, ConvergesOnPaperTopology) {
  const Topology t = topo::generate(topo::GeneratorParams{});
  igp::IgpState igp(t);
  BgpEngine bgp(t, igp);
  bgp.converge_initial();
  // Full reachability: every router has a route to every other AS's
  // prefix (the AS-level graph is connected and policies are GR-stable).
  std::size_t missing = 0;
  for (const auto& r : t.routers()) {
    for (std::uint32_t p = 0; p < t.num_ases(); ++p) {
      if (!bgp.best(r.id, PrefixId{p}).has_value()) ++missing;
    }
  }
  EXPECT_EQ(missing, 0u);
}

TEST(BgpEngine, NoAsPathLoops) {
  const Topology t = topo::generate(topo::GeneratorParams{});
  igp::IgpState igp(t);
  BgpEngine bgp(t, igp);
  bgp.converge_initial();
  for (const auto& r : t.routers()) {
    for (std::uint32_t p = 0; p < t.num_ases(); ++p) {
      const auto route = bgp.best(r.id, PrefixId{p});
      if (!route) continue;
      std::vector<AsId> path = route->as_path;
      std::sort(path.begin(), path.end());
      EXPECT_TRUE(std::adjacent_find(path.begin(), path.end()) == path.end())
          << "AS path loop at " << t.router(r.id).name;
      EXPECT_TRUE(std::find(route->as_path.begin(), route->as_path.end(),
                            r.as) == route->as_path.end());
    }
  }
}

}  // namespace
}  // namespace netd::bgp

namespace netd::bgp {
namespace {

TEST(BgpEngineTap, AnnouncementsRecordedAsUpdates) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.set_tapped_as(AsId{0});
  bgp.converge_initial();
  bool saw_update = false;
  for (const auto& m : bgp.messages()) {
    if (!m.withdraw && m.prefix == PrefixId{2}) {
      saw_update = true;
      EXPECT_EQ(m.at, c.r0);
      EXPECT_EQ(m.from, c.r1);
    }
  }
  EXPECT_TRUE(saw_update);
}

TEST(BgpEngineTap, ClearMessagesResetsBuffer) {
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.set_tapped_as(AsId{0});
  bgp.converge_initial();
  EXPECT_FALSE(bgp.messages().empty());
  bgp.clear_messages();
  EXPECT_TRUE(bgp.messages().empty());
}

TEST(BgpEngineTap, SessionDeathIsSilent) {
  // A dead session is observed as session-down, not a received
  // withdrawal: failing the stub's own uplink produces NO tap message at
  // the stub.
  Chain c;
  igp::IgpState igp(c.t);
  BgpEngine bgp(c.t, igp);
  bgp.set_tapped_as(AsId{0});
  bgp.converge_initial();
  bgp.clear_messages();
  c.t.set_link_up(c.l01, false);
  bgp.on_link_state_change(c.l01);
  bgp.run_to_convergence();
  EXPECT_TRUE(bgp.messages().empty());
}

}  // namespace
}  // namespace netd::bgp
