#include "topo/topology.h"

#include <gtest/gtest.h>

namespace netd::topo {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    as1_ = t_.add_as(AsClass::kTier2);
    as2_ = t_.add_as(AsClass::kStub);
    r1_ = t_.add_router(as1_);
    r2_ = t_.add_router(as1_);
    r3_ = t_.add_router(as2_);
    intra_ = t_.add_intra_link(r1_, r2_, 5);
    inter_ = t_.add_inter_link(r3_, r1_, Relationship::kProvider);
  }

  Topology t_;
  AsId as1_, as2_;
  RouterId r1_, r2_, r3_;
  LinkId intra_, inter_;
};

TEST_F(TopologyTest, NamesAreDerivedFromIds) {
  EXPECT_EQ(t_.as_of(as1_).name, "AS0");
  EXPECT_EQ(t_.router(r2_).name, "AS0:r1");
  EXPECT_EQ(t_.router(r3_).name, "AS1:r0");
}

TEST_F(TopologyTest, AddressesAreUnique) {
  EXPECT_NE(t_.router(r1_).address, t_.router(r2_).address);
  EXPECT_EQ(t_.router(r1_).address, "10.0.0.1");
}

TEST_F(TopologyTest, RoutersRegisteredInAs) {
  ASSERT_EQ(t_.as_of(as1_).routers.size(), 2u);
  EXPECT_EQ(t_.as_of(as1_).routers[0], r1_);
  EXPECT_EQ(t_.as_of(as2_).routers.size(), 1u);
}

TEST_F(TopologyTest, IntraLinkProperties) {
  const Link& l = t_.link(intra_);
  EXPECT_FALSE(l.interdomain);
  EXPECT_EQ(l.igp_weight, 5);
  EXPECT_TRUE(l.up);
}

TEST_F(TopologyTest, InterLinkRelationshipFromBothSides) {
  // r3's AS buys transit from r1's AS.
  EXPECT_EQ(t_.neighbor_relationship(inter_, r3_), Relationship::kProvider);
  EXPECT_EQ(t_.neighbor_relationship(inter_, r1_), Relationship::kCustomer);
}

TEST_F(TopologyTest, OtherEnd) {
  EXPECT_EQ(t_.other_end(intra_, r1_), r2_);
  EXPECT_EQ(t_.other_end(intra_, r2_), r1_);
}

TEST_F(TopologyTest, AdjacencyTracksBothEndpoints) {
  EXPECT_EQ(t_.links_of(r1_).size(), 2u);  // intra + inter
  EXPECT_EQ(t_.links_of(r2_).size(), 1u);
  EXPECT_EQ(t_.links_of(r3_).size(), 1u);
}

TEST_F(TopologyTest, LinkUsableReflectsLinkState) {
  EXPECT_TRUE(t_.link_usable(intra_));
  t_.set_link_up(intra_, false);
  EXPECT_FALSE(t_.link_usable(intra_));
  t_.set_link_up(intra_, true);
  EXPECT_TRUE(t_.link_usable(intra_));
}

TEST_F(TopologyTest, LinkUsableReflectsRouterState) {
  t_.set_router_up(r2_, false);
  EXPECT_FALSE(t_.link_usable(intra_));
  EXPECT_TRUE(t_.link_usable(inter_));  // r1, r3 still up
}

TEST_F(TopologyTest, PrefixOfAsIsTheAsItself) {
  EXPECT_EQ(t_.prefix_of(as1_), as1_);
  EXPECT_EQ(t_.as_of_router(r3_), as2_);
}

TEST(Relationship, ReverseIsInvolution) {
  EXPECT_EQ(reverse(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(reverse(Relationship::kProvider), Relationship::kCustomer);
  EXPECT_EQ(reverse(Relationship::kPeer), Relationship::kPeer);
}

TEST(Relationship, ToString) {
  EXPECT_STREQ(to_string(Relationship::kPeer), "peer");
  EXPECT_STREQ(to_string(AsClass::kCore), "core");
}

}  // namespace
}  // namespace netd::topo
