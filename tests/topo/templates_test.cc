#include "topo/templates.h"

#include <gtest/gtest.h>

#include <set>

namespace netd::topo {
namespace {

void expect_connected(const IntraTemplate& tpl) {
  // Union-find over template edges.
  std::vector<std::size_t> parent(tpl.num_routers);
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (auto [a, b] : tpl.edges) parent[find(a)] = find(b);
  std::set<std::size_t> roots;
  for (std::size_t i = 0; i < parent.size(); ++i) roots.insert(find(i));
  EXPECT_EQ(roots.size(), 1u) << tpl.name << " is disconnected";
}

TEST(Templates, AbileneHasElevenPops) {
  EXPECT_EQ(abilene_template().num_routers, 11u);
  EXPECT_EQ(abilene_template().edges.size(), 14u);
}

TEST(Templates, GeantHasTwentyThreeRouters) {
  EXPECT_EQ(geant_template().num_routers, 23u);
}

TEST(Templates, WideHasNineRouters) {
  EXPECT_EQ(wide_template().num_routers, 9u);
}

TEST(Templates, AllCoreTemplatesConnected) {
  expect_connected(abilene_template());
  expect_connected(geant_template());
  expect_connected(wide_template());
}

TEST(Templates, EdgeIndicesInRange) {
  for (const auto* tpl :
       {&abilene_template(), &geant_template(), &wide_template()}) {
    for (auto [a, b] : tpl->edges) {
      EXPECT_LT(a, tpl->num_routers);
      EXPECT_LT(b, tpl->num_routers);
      EXPECT_NE(a, b);
    }
  }
}

TEST(Templates, NoDuplicateEdges) {
  for (const auto* tpl :
       {&abilene_template(), &geant_template(), &wide_template()}) {
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (auto [a, b] : tpl->edges) {
      const auto key = std::minmax(a, b);
      EXPECT_TRUE(seen.insert(key).second)
          << tpl->name << " duplicates " << a << "-" << b;
    }
  }
}

TEST(Templates, HubAndSpokeShape) {
  const auto tpl = hub_and_spoke(11);
  EXPECT_EQ(tpl.num_routers, 12u);  // the paper's tier-2 size
  EXPECT_EQ(tpl.edges.size(), 11u);
  for (auto [a, b] : tpl.edges) {
    EXPECT_EQ(a, 0u);  // all edges touch the hub
    EXPECT_GE(b, 1u);
  }
  expect_connected(tpl);
}

TEST(Templates, InstantiateCreatesRoutersAndLinks) {
  Topology t;
  const AsId as = t.add_as(AsClass::kCore);
  const auto routers = instantiate(t, as, abilene_template());
  EXPECT_EQ(routers.size(), 11u);
  EXPECT_EQ(t.num_routers(), 11u);
  EXPECT_EQ(t.num_links(), 14u);
  for (const auto& link : t.links()) EXPECT_FALSE(link.interdomain);
}

}  // namespace
}  // namespace netd::topo
