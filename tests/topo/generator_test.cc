#include "topo/generator.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>

namespace netd::topo {
namespace {

GeneratorParams default_params(std::uint64_t seed = 1) {
  GeneratorParams p;
  p.seed = seed;
  return p;
}

TEST(Generator, PaperScaleCounts) {
  const Topology t = generate(default_params());
  EXPECT_EQ(t.num_ases(), 165u);
  std::size_t core = 0, tier2 = 0, stub = 0;
  for (const auto& as : t.ases()) {
    switch (as.cls) {
      case AsClass::kCore: ++core; break;
      case AsClass::kTier2: ++tier2; break;
      case AsClass::kStub: ++stub; break;
    }
  }
  EXPECT_EQ(core, 3u);
  EXPECT_EQ(tier2, 22u);
  EXPECT_EQ(stub, 140u);
}

TEST(Generator, CoreAsesUseTheTemplates) {
  const Topology t = generate(default_params());
  EXPECT_EQ(t.as_of(AsId{0}).routers.size(), 11u);  // Abilene
  EXPECT_EQ(t.as_of(AsId{1}).routers.size(), 23u);  // GEANT analogue
  EXPECT_EQ(t.as_of(AsId{2}).routers.size(), 9u);   // WIDE analogue
}

TEST(Generator, Tier2AreHubAndSpoke12) {
  const Topology t = generate(default_params());
  for (const auto& as : t.ases()) {
    if (as.cls == AsClass::kTier2) {
      EXPECT_EQ(as.routers.size(), 12u);
    }
    if (as.cls == AsClass::kStub) {
      EXPECT_EQ(as.routers.size(), 1u);
    }
  }
}

TEST(Generator, CoresAreFullMeshPeered) {
  const Topology t = generate(default_params());
  std::set<std::pair<std::uint32_t, std::uint32_t>> peered;
  for (const auto& link : t.links()) {
    if (!link.interdomain) continue;
    const AsId a = t.as_of_router(link.a);
    const AsId b = t.as_of_router(link.b);
    if (a.value() < 3 && b.value() < 3) {
      EXPECT_EQ(link.rel_b_from_a, Relationship::kPeer);
      peered.insert({std::min(a.value(), b.value()),
                     std::max(a.value(), b.value())});
    }
  }
  EXPECT_EQ(peered.size(), 3u);  // 0-1, 0-2, 1-2
}

TEST(Generator, EveryNonCoreAsHasAProvider) {
  const Topology t = generate(default_params());
  std::set<std::uint32_t> with_provider;
  for (const auto& link : t.links()) {
    if (!link.interdomain) continue;
    const AsId a = t.as_of_router(link.a);
    const AsId b = t.as_of_router(link.b);
    if (link.rel_b_from_a == Relationship::kProvider) {
      with_provider.insert(a.value());
    }
    if (link.rel_b_from_a == Relationship::kCustomer) {
      with_provider.insert(b.value());
    }
  }
  for (const auto& as : t.ases()) {
    if (as.cls == AsClass::kCore) continue;
    EXPECT_TRUE(with_provider.count(as.id.value()))
        << as.name << " has no provider";
  }
}

TEST(Generator, AsGraphIsConnectedViaProviderEdges) {
  const Topology t = generate(default_params());
  std::vector<std::set<std::uint32_t>> adj(t.num_ases());
  for (const auto& link : t.links()) {
    if (!link.interdomain) continue;
    const auto a = t.as_of_router(link.a).value();
    const auto b = t.as_of_router(link.b).value();
    adj[a].insert(b);
    adj[b].insert(a);
  }
  std::set<std::uint32_t> seen = {0};
  std::deque<std::uint32_t> frontier = {0};
  while (!frontier.empty()) {
    const auto cur = frontier.front();
    frontier.pop_front();
    for (auto n : adj[cur]) {
      if (seen.insert(n).second) frontier.push_back(n);
    }
  }
  EXPECT_EQ(seen.size(), t.num_ases());
}

TEST(Generator, MultihomingFractionsRoughlyRespected) {
  const Topology t = generate(default_params(3));
  std::map<std::uint32_t, int> providers;
  for (const auto& link : t.links()) {
    if (!link.interdomain) continue;
    const AsId a = t.as_of_router(link.a);
    const AsId b = t.as_of_router(link.b);
    if (link.rel_b_from_a == Relationship::kProvider) ++providers[a.value()];
    if (link.rel_b_from_a == Relationship::kCustomer) ++providers[b.value()];
  }
  int multi_stub = 0, total_stub = 0;
  for (const auto& as : t.ases()) {
    if (as.cls != AsClass::kStub) continue;
    ++total_stub;
    if (providers[as.id.value()] >= 2) ++multi_stub;
  }
  // 25% requested; BFS scale-down can drop second-provider links, so
  // accept a broad band around it.
  const double frac = static_cast<double>(multi_stub) / total_stub;
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.40);
}

TEST(Generator, DeterministicForFixedSeed) {
  const Topology a = generate(default_params(9));
  const Topology b = generate(default_params(9));
  ASSERT_EQ(a.num_links(), b.num_links());
  for (std::size_t i = 0; i < a.num_links(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
  }
}

TEST(Generator, SeedsProduceDifferentWirings) {
  const Topology a = generate(default_params(1));
  const Topology b = generate(default_params(2));
  bool differs = a.num_links() != b.num_links();
  for (std::size_t i = 0; !differs && i < a.num_links(); ++i) {
    differs = a.links()[i].a != b.links()[i].a || a.links()[i].b != b.links()[i].b;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, ScaleDownTargetsSmallerTopologies) {
  GeneratorParams p = default_params();
  p.target_ases = 50;
  const Topology t = generate(p);
  EXPECT_EQ(t.num_ases(), 50u);
}

TEST(TinyTopology, Shape) {
  const Topology t = tiny_topology();
  EXPECT_EQ(t.num_ases(), 8u);
  EXPECT_EQ(t.num_routers(), 16u);
  // Multihomed stub AS7 has two interdomain links.
  std::size_t as7_links = 0;
  for (const auto& link : t.links()) {
    if (!link.interdomain) continue;
    if (t.as_of_router(link.a).value() == 7 ||
        t.as_of_router(link.b).value() == 7) {
      ++as7_links;
    }
  }
  EXPECT_EQ(as7_links, 2u);
}

}  // namespace
}  // namespace netd::topo

namespace netd::topo {
namespace {

TEST(Generator, Tier2PeeringOption) {
  GeneratorParams p;
  p.seed = 5;
  p.tier2_peering_frac = 0.2;
  const Topology t = generate(p);
  std::size_t t2_peerings = 0;
  for (const auto& link : t.links()) {
    if (!link.interdomain || link.rel_b_from_a != Relationship::kPeer) {
      continue;
    }
    const auto ca = t.as_of(t.as_of_router(link.a)).cls;
    const auto cb = t.as_of(t.as_of_router(link.b)).cls;
    if (ca == AsClass::kTier2 && cb == AsClass::kTier2) ++t2_peerings;
  }
  // 22 tier-2s, 231 pairs at 20%: expect a healthy number of peerings.
  EXPECT_GT(t2_peerings, 20u);
  EXPECT_LT(t2_peerings, 90u);
}

TEST(Generator, NoTier2PeeringByDefault) {
  const Topology t = generate(GeneratorParams{});
  for (const auto& link : t.links()) {
    if (!link.interdomain || link.rel_b_from_a != Relationship::kPeer) {
      continue;
    }
    EXPECT_EQ(t.as_of(t.as_of_router(link.a)).cls, AsClass::kCore);
    EXPECT_EQ(t.as_of(t.as_of_router(link.b)).cls, AsClass::kCore);
  }
}

}  // namespace
}  // namespace netd::topo
