#include "topo/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/generator.h"

namespace netd::topo {
namespace {

TEST(TopoIo, RoundTripTiny) {
  const Topology original = tiny_topology();
  std::stringstream ss;
  write_text(original, ss);
  std::string error;
  const auto loaded = read_text(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->num_ases(), original.num_ases());
  ASSERT_EQ(loaded->num_routers(), original.num_routers());
  ASSERT_EQ(loaded->num_links(), original.num_links());
  for (std::size_t i = 0; i < original.num_links(); ++i) {
    const auto& a = original.links()[i];
    const auto& b = loaded->links()[i];
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.interdomain, b.interdomain);
    EXPECT_EQ(a.igp_weight, b.igp_weight);
    EXPECT_EQ(a.rel_b_from_a, b.rel_b_from_a);
  }
  for (std::size_t i = 0; i < original.num_ases(); ++i) {
    EXPECT_EQ(original.ases()[i].cls, loaded->ases()[i].cls);
  }
}

TEST(TopoIo, RoundTripGenerated) {
  GeneratorParams p;
  p.target_ases = 40;
  p.pool_tier2 = 8;
  p.pool_stubs = 50;
  const Topology original = generate(p);
  std::stringstream ss;
  write_text(original, ss);
  const auto loaded = read_text(ss);
  ASSERT_TRUE(loaded.has_value());
  std::stringstream again;
  write_text(*loaded, again);
  std::stringstream first;
  write_text(original, first);
  EXPECT_EQ(first.str(), again.str());
}

TEST(TopoIo, RejectsMissingHeader) {
  std::stringstream ss("as core 3\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(TopoIo, RejectsUnknownClass) {
  std::stringstream ss("netd-topology v1\nas mega 3\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("class"), std::string::npos);
}

TEST(TopoIo, RejectsOutOfRangeRouter) {
  std::stringstream ss("netd-topology v1\nas stub 1\nintra 0 5 1\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("range"), std::string::npos);
}

TEST(TopoIo, RejectsCrossAsIntraLink) {
  std::stringstream ss(
      "netd-topology v1\nas stub 1\nas stub 1\nintra 0 1 1\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("spans"), std::string::npos);
}

TEST(TopoIo, RejectsIntraAsInterLink) {
  std::stringstream ss(
      "netd-topology v1\nas tier2 2\ninter 0 1 peer\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("within"), std::string::npos);
}

TEST(TopoIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "netd-topology v1\n# a comment\n\nas stub 1\nas tier2 2\n"
      "inter 0 1 provider\n");
  const auto t = read_text(ss);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->num_ases(), 2u);
  EXPECT_EQ(t->num_links(), 1u);
  EXPECT_EQ(t->neighbor_relationship(LinkId{0}, RouterId{0}),
            Relationship::kProvider);
}

TEST(TopoIo, AcceptsLegacyV1WithoutIdsOrFooter) {
  std::stringstream ss(
      "netd-topology v1\nas core 2\nas stub 1\ninter 0 2 customer\n");
  std::string error;
  const auto t = read_text(ss, &error);
  ASSERT_TRUE(t.has_value()) << error;
  EXPECT_EQ(t->num_ases(), 2u);
  EXPECT_EQ(t->num_routers(), 3u);
}

TEST(TopoIo, RejectsDuplicateAsId) {
  std::stringstream ss(
      "netd-topology v2\nas 0 core 2\nas 0 stub 1\nend 3 0\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("duplicate AS id 0"), std::string::npos) << error;
}

TEST(TopoIo, RejectsNonContiguousAsId) {
  std::stringstream ss(
      "netd-topology v2\nas 0 core 2\nas 2 stub 1\nend 3 0\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("non-contiguous AS id 2"), std::string::npos) << error;
}

TEST(TopoIo, RejectsTruncatedV2File) {
  // A v2 file chopped mid-stream loses its `end` footer; the loader must
  // refuse it rather than return a silently smaller topology.
  const Topology original = tiny_topology();
  std::stringstream full;
  write_text(original, full);
  std::string text = full.str();
  text.resize(text.size() / 2);
  text.resize(text.rfind('\n') + 1);  // cut at a line boundary
  std::stringstream ss(text);
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(TopoIo, RejectsRecordAfterEndFooter) {
  std::stringstream ss(
      "netd-topology v2\nas 0 stub 1\nend 1 0\nas 1 stub 1\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("after 'end'"), std::string::npos) << error;
}

TEST(TopoIo, RejectsEndFooterCountMismatch) {
  std::stringstream ss(
      "netd-topology v2\nas 0 stub 1\nas 1 stub 1\nend 7 0\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("do not match"), std::string::npos) << error;
}

TEST(TopoIo, DanglingEndpointErrorNamesTheProblem) {
  std::stringstream ss(
      "netd-topology v2\nas 0 stub 1\nintra 0 9 1\nend 1 0\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("dangling link endpoint"), std::string::npos) << error;
}

TEST(TopoIo, DotContainsClustersAndEdges) {
  const Topology t = tiny_topology();
  std::stringstream ss;
  write_dot(t, ss);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("graph netd"), std::string::npos);
  EXPECT_NE(dot.find("cluster_as0"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // peer link
}


}  // namespace
}  // namespace netd::topo
