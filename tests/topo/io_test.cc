#include "topo/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/generator.h"

namespace netd::topo {
namespace {

TEST(TopoIo, RoundTripTiny) {
  const Topology original = tiny_topology();
  std::stringstream ss;
  write_text(original, ss);
  std::string error;
  const auto loaded = read_text(ss, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->num_ases(), original.num_ases());
  ASSERT_EQ(loaded->num_routers(), original.num_routers());
  ASSERT_EQ(loaded->num_links(), original.num_links());
  for (std::size_t i = 0; i < original.num_links(); ++i) {
    const auto& a = original.links()[i];
    const auto& b = loaded->links()[i];
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.interdomain, b.interdomain);
    EXPECT_EQ(a.igp_weight, b.igp_weight);
    EXPECT_EQ(a.rel_b_from_a, b.rel_b_from_a);
  }
  for (std::size_t i = 0; i < original.num_ases(); ++i) {
    EXPECT_EQ(original.ases()[i].cls, loaded->ases()[i].cls);
  }
}

TEST(TopoIo, RoundTripGenerated) {
  GeneratorParams p;
  p.target_ases = 40;
  p.pool_tier2 = 8;
  p.pool_stubs = 50;
  const Topology original = generate(p);
  std::stringstream ss;
  write_text(original, ss);
  const auto loaded = read_text(ss);
  ASSERT_TRUE(loaded.has_value());
  std::stringstream again;
  write_text(*loaded, again);
  std::stringstream first;
  write_text(original, first);
  EXPECT_EQ(first.str(), again.str());
}

TEST(TopoIo, RejectsMissingHeader) {
  std::stringstream ss("as core 3\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(TopoIo, RejectsUnknownClass) {
  std::stringstream ss("netd-topology v1\nas mega 3\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("class"), std::string::npos);
}

TEST(TopoIo, RejectsOutOfRangeRouter) {
  std::stringstream ss("netd-topology v1\nas stub 1\nintra 0 5 1\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("range"), std::string::npos);
}

TEST(TopoIo, RejectsCrossAsIntraLink) {
  std::stringstream ss(
      "netd-topology v1\nas stub 1\nas stub 1\nintra 0 1 1\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("spans"), std::string::npos);
}

TEST(TopoIo, RejectsIntraAsInterLink) {
  std::stringstream ss(
      "netd-topology v1\nas tier2 2\ninter 0 1 peer\n");
  std::string error;
  EXPECT_FALSE(read_text(ss, &error).has_value());
  EXPECT_NE(error.find("within"), std::string::npos);
}

TEST(TopoIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "netd-topology v1\n# a comment\n\nas stub 1\nas tier2 2\n"
      "inter 0 1 provider\n");
  const auto t = read_text(ss);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->num_ases(), 2u);
  EXPECT_EQ(t->num_links(), 1u);
  EXPECT_EQ(t->neighbor_relationship(LinkId{0}, RouterId{0}),
            Relationship::kProvider);
}

TEST(TopoIo, DotContainsClustersAndEdges) {
  const Topology t = tiny_topology();
  std::stringstream ss;
  write_dot(t, ss);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("graph netd"), std::string::npos);
  EXPECT_NE(dot.find("cluster_as0"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // peer link
}


}  // namespace
}  // namespace netd::topo
