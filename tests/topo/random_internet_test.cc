#include "topo/random_internet.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "sim/network.h"

namespace netd::topo {
namespace {

RandomInternetParams small(std::uint64_t seed = 3) {
  RandomInternetParams p;
  p.num_tier1 = 3;
  p.num_tier2 = 8;
  p.num_stubs = 40;
  p.tier1_routers = 6;
  p.tier2_routers = 4;
  p.seed = seed;
  return p;
}

TEST(RandomInternet, TierCounts) {
  const Topology t = random_internet(small());
  std::size_t core = 0, tier2 = 0, stub = 0;
  for (const auto& as : t.ases()) {
    switch (as.cls) {
      case AsClass::kCore: ++core; break;
      case AsClass::kTier2: ++tier2; break;
      case AsClass::kStub: ++stub; break;
    }
  }
  EXPECT_EQ(core, 3u);
  EXPECT_EQ(tier2, 8u);
  EXPECT_EQ(stub, 40u);
}

TEST(RandomInternet, Tier1IsAClique) {
  const Topology t = random_internet(small());
  std::set<std::pair<std::uint32_t, std::uint32_t>> peered;
  for (const auto& l : t.links()) {
    if (!l.interdomain || l.rel_b_from_a != Relationship::kPeer) continue;
    const auto a = t.as_of_router(l.a).value();
    const auto b = t.as_of_router(l.b).value();
    if (a < 3 && b < 3) peered.insert({std::min(a, b), std::max(a, b)});
  }
  EXPECT_EQ(peered.size(), 3u);  // 3 choose 2
}

TEST(RandomInternet, IntradomainGraphsAreConnected) {
  const Topology t = random_internet(small());
  for (const auto& as : t.ases()) {
    std::set<std::uint32_t> seen = {as.routers.front().value()};
    std::deque<RouterId> frontier = {as.routers.front()};
    while (!frontier.empty()) {
      const RouterId cur = frontier.front();
      frontier.pop_front();
      for (LinkId l : t.links_of(cur)) {
        if (t.link(l).interdomain) continue;
        const RouterId nb = t.other_end(l, cur);
        if (seen.insert(nb.value()).second) frontier.push_back(nb);
      }
    }
    EXPECT_EQ(seen.size(), as.routers.size()) << as.name;
  }
}

TEST(RandomInternet, NoParallelIntraLinks) {
  const Topology t = random_internet(small(9));
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const auto& l : t.links()) {
    if (l.interdomain) continue;
    const std::pair<std::uint32_t, std::uint32_t> key = {
        std::min(l.a.value(), l.b.value()), std::max(l.a.value(), l.b.value())};
    EXPECT_TRUE(pairs.insert(key).second)
        << "parallel link " << t.router(l.a).name << "-"
        << t.router(l.b).name;
  }
}

TEST(RandomInternet, EveryStubHasAProvider) {
  const Topology t = random_internet(small());
  for (const auto& as : t.ases()) {
    if (as.cls != AsClass::kStub) continue;
    bool has_provider = false;
    for (LinkId l : t.links_of(as.routers.front())) {
      if (t.link(l).interdomain &&
          t.neighbor_relationship(l, as.routers.front()) ==
              Relationship::kProvider) {
        has_provider = true;
      }
    }
    EXPECT_TRUE(has_provider) << as.name;
  }
}

TEST(RandomInternet, PreferentialAttachmentSkewsDegrees) {
  RandomInternetParams p = small(11);
  p.num_stubs = 120;
  const Topology t = random_internet(p);
  // Customer counts across transit ASes should be visibly skewed:
  // max noticeably above the mean.
  std::map<std::uint32_t, int> customers;
  for (const auto& l : t.links()) {
    if (!l.interdomain) continue;
    if (l.rel_b_from_a == Relationship::kProvider) {
      ++customers[t.as_of_router(l.b).value()];
    } else if (l.rel_b_from_a == Relationship::kCustomer) {
      ++customers[t.as_of_router(l.a).value()];
    }
  }
  int max_c = 0, total = 0, n = 0;
  for (const auto& [as, c] : customers) {
    max_c = std::max(max_c, c);
    total += c;
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(max_c * n, 2 * total);  // max > 2x mean
}

TEST(RandomInternet, FullReachabilityAfterConvergence) {
  sim::Network net(random_internet(small(5)));
  net.converge();
  const auto& topo = net.topology();
  std::vector<RouterId> stubs;
  for (const auto& as : topo.ases()) {
    if (as.cls == AsClass::kStub) stubs.push_back(as.routers.front());
  }
  for (std::size_t i = 0; i < 8; ++i) {
    const auto tr =
        net.trace(stubs[i * 3], stubs[stubs.size() - 1 - i * 2]);
    EXPECT_TRUE(tr.ok);
  }
}

TEST(RandomInternet, DeterministicPerSeed) {
  const Topology a = random_internet(small(21));
  const Topology b = random_internet(small(21));
  ASSERT_EQ(a.num_links(), b.num_links());
  for (std::size_t i = 0; i < a.num_links(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
    EXPECT_EQ(a.links()[i].igp_weight, b.links()[i].igp_weight);
  }
}

}  // namespace
}  // namespace netd::topo
