// agent::Agent against an in-process server: the durable ship loop, the
// exactly-once redelivery contract, server-amnesia recovery, and
// independent per-source watermarks.
#include "agent/agent.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "agent/spool.h"
#include "svc/client.h"
#include "svc/fault.h"
#include "svc/json.h"
#include "svc/server.h"

namespace netd::agent {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "/" + name;
  const std::string cmd = "rm -rf '" + d + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
  return d;
}

/// Small deterministic fleet config: 5 sensors over a 30-AS world, 6
/// rounds with a persistent failure at round 3, alarm threshold 2 — the
/// failure fires a diagnosis well inside the run.
AgentConfig small_config(const std::string& endpoint,
                         const std::string& spool_dir) {
  AgentConfig cfg;
  cfg.endpoint = endpoint;
  cfg.spool_dir = spool_dir;
  cfg.ases = 30;
  cfg.stubs = 60;
  cfg.tier2 = 8;
  cfg.sensors = 5;
  cfg.rounds = 6;
  cfg.fail_round = 3;
  cfg.alarm_threshold = 2;
  cfg.batch_max_items = 2;  // exercise multi-batch draining
  cfg.client.connect_timeout_ms = 2000;
  cfg.client.request_timeout_ms = 20000;
  cfg.client.max_retries = 3;
  cfg.client.backoff_base_ms = 5;
  cfg.client.backoff_max_ms = 50;
  return cfg;
}

class AgentTest : public ::testing::Test {
 protected:
  void SetUp() override { start_server(); }
  void TearDown() override {
    if (server_.has_value()) server_->stop();
  }

  /// Default: loopback TCP on a kernel-picked port. A test that must
  /// restart the server on a STABLE endpoint passes a unix-socket spec;
  /// `plan` injects server-side wire faults (e.g. delays to pace a run).
  void start_server(const std::string& spec = "",
                    const svc::FaultPlan& plan = {}) {
    if (server_.has_value()) server_->stop();
    svc::Server::Options opts;
    std::string error;
    if (spec.empty()) {
      opts.endpoint.port = 0;  // kernel picks a loopback port
    } else {
      const auto ep = svc::Endpoint::parse(spec, &error);
      ASSERT_TRUE(ep.has_value()) << error;
      opts.endpoint = *ep;
    }
    opts.fault_plan = plan;
    server_.emplace(std::move(opts));
    ASSERT_TRUE(server_->start(&error)) << error;
    endpoint_ = server_->endpoint().to_string();
  }

  /// Watermark probe straight from the test: the server's view of
  /// (session, src) — ack, round counter, alarm state.
  svc::ObserveBatchResponse probe(const std::string& session,
                                  const std::string& src) {
    std::string error;
    auto c = svc::Client::connect(server_->endpoint(), &error);
    EXPECT_TRUE(c.has_value()) << error;
    svc::ObserveBatchResponse rsp;
    EXPECT_TRUE(svc::expect_response(
        c->call(svc::Request{svc::ObserveBatchRequest{session, src, {}}},
                &error),
        &rsp, &error))
        << error;
    return rsp;
  }

  /// Error-tolerant round poll for watching a live agent from outside:
  /// any failure (session not yet helloed, server restarting) reads as 0.
  std::uint64_t poll_round(const std::string& session,
                           const std::string& src) {
    std::string error;
    auto c = svc::Client::connect(server_->endpoint(), &error);
    if (!c.has_value()) return 0;
    svc::ObserveBatchResponse rsp;
    if (!svc::expect_response(
            c->call(svc::Request{svc::ObserveBatchRequest{session, src, {}}},
                    &error),
            &rsp, &error)) {
      return 0;
    }
    return rsp.round;
  }

  std::optional<std::string> query_diagnosis(const std::string& session) {
    std::string error;
    auto c = svc::Client::connect(server_->endpoint(), &error);
    EXPECT_TRUE(c.has_value()) << error;
    svc::QueryResponse rsp;
    EXPECT_TRUE(svc::expect_response(
        c->call(svc::Request{svc::QueryRequest{session}}, &error), &rsp,
        &error))
        << error;
    return rsp.diagnosis;
  }

  std::optional<svc::Server> server_;
  std::string endpoint_;
};

TEST_F(AgentTest, ShipsAllRoundsAndDiagnoses) {
  const AgentConfig cfg =
      small_config(endpoint_, fresh_dir("netd_agent_ship"));
  Agent a(cfg);
  std::string error;
  ASSERT_EQ(a.run(&error), Agent::kExitOk) << error;
  const auto& s = a.summary();
  EXPECT_EQ(s.spooled, 6u);
  EXPECT_EQ(s.generated, 6u);
  EXPECT_EQ(s.acked, 6u);
  EXPECT_EQ(s.applied, 6u);
  EXPECT_EQ(s.deduped, 0u);
  EXPECT_EQ(s.round, 6u);
  EXPECT_EQ(s.batches, 3u);  // 6 rounds / batch_max_items 2
  EXPECT_TRUE(s.alarmed);
  ASSERT_TRUE(s.diagnosis.has_value());

  const auto server_view = probe(cfg.session, cfg.name);
  EXPECT_EQ(server_view.ack, 6u);
  EXPECT_EQ(server_view.round, 6u);
  EXPECT_EQ(query_diagnosis(cfg.session), s.diagnosis);
}

TEST_F(AgentTest, RedeliveryAfterLostAckIsDedupedExactlyOnce) {
  const std::string dir = fresh_dir("netd_agent_redeliver");
  const AgentConfig cfg = small_config(endpoint_, dir);
  std::string error;
  {
    Agent a(cfg);
    ASSERT_EQ(a.run(&error), Agent::kExitOk) << error;
  }
  // Crash window: the server applied everything but the agent died before
  // persisting its ship watermark. Deleting MANIFEST reproduces it.
  ASSERT_EQ(std::remove((dir + "/MANIFEST").c_str()), 0);
  {
    // The next incarnation opens believing nothing was shipped, probes
    // the server's watermark first, learns everything already landed,
    // and redelivers nothing at all.
    Agent again(cfg);
    ASSERT_EQ(again.run(&error), Agent::kExitOk) << error;
    const auto& s = again.summary();
    EXPECT_EQ(s.generated, 0u);  // rounds recovered from the spool
    EXPECT_EQ(s.applied, 0u);    // nothing fed twice
    EXPECT_EQ(s.acked, 6u);
  }
  // The harsher window: a redelivery that bypasses the probe because the
  // batch was already in flight when its ack was lost. Replay the spool
  // verbatim — the server must recognize every record and apply none.
  Spool::Options sopts;
  sopts.dir = dir;
  const auto spool = Spool::open(sopts, &error);
  ASSERT_NE(spool, nullptr) << error;
  svc::ObserveBatchRequest dup{cfg.session, cfg.name, {}};
  ASSERT_TRUE(spool->for_each(
      0,
      [&](std::uint64_t seq, std::string_view payload) {
        const auto doc = svc::Json::parse(std::string(payload));
        EXPECT_TRUE(doc.has_value());
        const svc::Json* mesh =
            doc.has_value() ? doc->find("mesh") : nullptr;
        EXPECT_NE(mesh, nullptr);
        std::string merror;
        auto m = svc::mesh_from_json(*mesh, &merror);
        EXPECT_TRUE(m.has_value()) << merror;
        dup.items.push_back({seq, std::move(*m), std::nullopt});
        return true;
      },
      &error))
      << error;
  ASSERT_EQ(dup.items.size(), 6u);
  auto c = svc::Client::connect(server_->endpoint(), &error);
  ASSERT_TRUE(c.has_value()) << error;
  svc::ObserveBatchResponse rsp;
  ASSERT_TRUE(svc::expect_response(
      c->call(svc::Request{std::move(dup)}, &error), &rsp, &error))
      << error;
  EXPECT_EQ(rsp.applied, 0u);   // nothing fed twice
  EXPECT_EQ(rsp.deduped, 6u);   // every record recognized as redelivery
  EXPECT_EQ(rsp.ack, 6u);
  // The troubleshooter saw exactly six rounds, not twelve.
  EXPECT_EQ(rsp.round, 6u);
}

TEST_F(AgentTest, ResumeAfterPartialShipOnlyShipsTheRemainder) {
  const std::string dir = fresh_dir("netd_agent_resume");
  AgentConfig cfg = small_config(endpoint_, dir);
  std::string error;
  {
    // First incarnation dies after measuring everything but shipping
    // nothing (generate_only models the kill between spool and ship).
    AgentConfig gen = cfg;
    gen.generate_only = true;
    Agent a(gen);
    ASSERT_EQ(a.run(&error), Agent::kExitOk) << error;
    EXPECT_EQ(a.summary().spooled, 6u);
  }
  Agent b(cfg);
  ASSERT_EQ(b.run(&error), Agent::kExitOk) << error;
  EXPECT_EQ(b.summary().generated, 0u);
  EXPECT_EQ(b.summary().applied, 6u);
  EXPECT_EQ(b.summary().recovery.records, 6u);
  EXPECT_EQ(probe(cfg.session, cfg.name).round, 6u);
}

TEST_F(AgentTest, ServerAmnesiaBetweenRunsReshipsByteIdentically) {
  const std::string dir = fresh_dir("netd_agent_amnesia");
  AgentConfig cfg = small_config(endpoint_, dir);
  std::string error;
  {
    Agent a(cfg);
    ASSERT_EQ(a.run(&error), Agent::kExitOk) << error;
  }
  const auto first = query_diagnosis(cfg.session);
  ASSERT_TRUE(first.has_value());

  // The server loses everything (restart / failover to an empty replica).
  start_server();
  cfg.endpoint = endpoint_;

  // The next incarnation's startup hello recreates the session; the
  // watermark probe reads 0 in the fresh epoch, so the whole retained
  // spool is re-shipped.
  Agent b(cfg);
  ASSERT_EQ(b.run(&error), Agent::kExitOk) << error;
  EXPECT_EQ(b.summary().applied, 6u);  // fresh epoch: all six re-applied
  const auto view = probe(cfg.session, cfg.name);
  EXPECT_EQ(view.ack, 6u);
  EXPECT_EQ(view.round, 6u);
  // The reconstructed session converges on the byte-identical diagnosis.
  EXPECT_EQ(query_diagnosis(cfg.session), first);
}

TEST_F(AgentTest, MidRunAmnesiaTriggersRehelloAndConverges) {
  // The restart must land MID-ship to exercise the unknown_session →
  // re-hello path, so this server lives on a STABLE unix endpoint (a
  // TCP port-0 restart would move the port under the agent) and delays
  // every response to pace the ship loop wide enough to yank it.
  const std::string sock = ::testing::TempDir() + "/netd_agent_yank.sock";
  std::remove(sock.c_str());
  svc::FaultPlan slow;
  slow.delay_prob = 1.0;
  slow.delay_ms = 25;
  start_server("unix:" + sock, slow);

  AgentConfig cfg = small_config(endpoint_, fresh_dir("netd_agent_yank"));
  cfg.rounds = 12;
  cfg.batch_max_items = 1;  // one round per exchange: many restart windows
  cfg.client.max_retries = 8;
  cfg.client.backoff_max_ms = 100;

  // Reference diagnosis from an untortured twin in its own session.
  AgentConfig ref = cfg;
  ref.spool_dir = fresh_dir("netd_agent_yank_ref");
  ref.session = "fleet-ref";
  std::string error;
  Agent r(ref);
  ASSERT_EQ(r.run(&error), Agent::kExitOk) << error;
  const auto reference = query_diagnosis(ref.session);
  ASSERT_TRUE(reference.has_value());

  // Ship in a background thread; once rounds are landing, restart the
  // server with total state loss while batches are still in flight.
  Agent a(cfg);
  std::string agent_error;
  int code = -1;
  std::thread shipper([&] { code = a.run(&agent_error); });
  while (poll_round(cfg.session, cfg.name) < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  start_server("unix:" + sock, slow);  // empty state: total amnesia
  shipper.join();
  ASSERT_EQ(code, Agent::kExitOk) << agent_error;

  // The agent hit unknown_session mid-stream, re-helloed, re-installed
  // the baseline and re-shipped the retained spool into the new epoch.
  EXPECT_GE(a.summary().rehellos, 1u);
  const auto view = probe(cfg.session, cfg.name);
  EXPECT_EQ(view.ack, 12u);
  EXPECT_EQ(view.round, 12u);
  EXPECT_EQ(query_diagnosis(cfg.session), reference);
}

TEST_F(AgentTest, TwoSourcesKeepIndependentWatermarks) {
  AgentConfig a_cfg =
      small_config(endpoint_, fresh_dir("netd_agent_src_a"));
  a_cfg.name = "sensor-a";
  AgentConfig b_cfg =
      small_config(endpoint_, fresh_dir("netd_agent_src_b"));
  b_cfg.name = "sensor-b";
  // Same session: both agents feed one troubleshooter.
  std::string error;
  Agent a(a_cfg);
  ASSERT_EQ(a.run(&error), Agent::kExitOk) << error;
  Agent b(b_cfg);
  ASSERT_EQ(b.run(&error), Agent::kExitOk) << error;

  const auto view_a = probe(a_cfg.session, "sensor-a");
  const auto view_b = probe(a_cfg.session, "sensor-b");
  EXPECT_EQ(view_a.ack, 6u);
  EXPECT_EQ(view_b.ack, 6u);
  // The session round counter saw both streams; the watermarks did not
  // collide.
  EXPECT_EQ(view_a.round, 12u);
  // An unknown source starts at watermark zero.
  EXPECT_EQ(probe(a_cfg.session, "sensor-z").ack, 0u);
}

TEST_F(AgentTest, UnreachableServerSpoolsAndExitsRetriable) {
  AgentConfig cfg = small_config("127.0.0.1:1",  // nothing listens there
                                 fresh_dir("netd_agent_unreach"));
  cfg.client.max_retries = 1;
  cfg.client.connect_timeout_ms = 200;
  cfg.ship_max_failures = 2;
  Agent a(cfg);
  std::string error;
  EXPECT_EQ(a.run(&error), Agent::kExitUnreachable);
  EXPECT_FALSE(error.empty());
  // Everything measured is safely on disk, ready for the next attempt.
  EXPECT_EQ(a.summary().spooled, 6u);
}

}  // namespace
}  // namespace netd::agent
