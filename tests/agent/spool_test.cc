// agent::Spool: the crash-safe CRC-framed batch log under the sensor
// agent. These tests pin the recovery semantics the durability story
// depends on: torn tails truncate, corrupt middles quarantine loudly,
// empty segments compact, the disk budget sheds oldest-first into
// counters, and the manifest watermark survives crashed writers.
#include "agent/spool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/atomic_file.h"

namespace netd::agent {
namespace {

std::string tmp_dir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "/" + name;
  // Fresh directory per test: remove anything a previous run left.
  std::string cmd = "rm -rf '" + d + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
  return d;
}

Spool::Options opts(const std::string& dir) {
  Spool::Options o;
  o.dir = dir;
  return o;
}

std::vector<std::pair<std::uint64_t, std::string>> drain(
    const Spool& s, std::uint64_t from = 0) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::string error;
  EXPECT_TRUE(s.for_each(
      from,
      [&](std::uint64_t seq, std::string_view payload) {
        out.emplace_back(seq, std::string(payload));
        return true;
      },
      &error))
      << error;
  return out;
}

/// The single segment file in `dir` (fails the test when not exactly one).
std::string only_segment(const std::string& dir) {
  std::string found;
  std::string cmd = "ls '" + dir + "' | grep ndspool$";
  FILE* p = ::popen(cmd.c_str(), "r");
  EXPECT_NE(p, nullptr);
  char buf[256];
  std::size_t n = 0;
  while (::fgets(buf, sizeof(buf), p) != nullptr) {
    std::string name(buf);
    while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
      name.pop_back();
    }
    found = dir + "/" + name;
    ++n;
  }
  ::pclose(p);
  EXPECT_EQ(n, 1u);
  return found;
}

TEST(Spool, AppendRecoverRoundTrip) {
  const std::string dir = tmp_dir("netd_spool_roundtrip");
  std::string error;
  {
    auto s = Spool::open(opts(dir), &error);
    ASSERT_NE(s, nullptr) << error;
    EXPECT_EQ(s->append("alpha", &error), 1u) << error;
    EXPECT_EQ(s->append("bravo", &error), 2u) << error;
    std::string with_nul = "char";
    with_nul.push_back('\0');
    with_nul += "lie";
    EXPECT_EQ(s->append(with_nul, &error), 3u) << error;
    EXPECT_EQ(s->last_seq(), 3u);
  }
  Spool::RecoveryStats stats;
  auto s = Spool::open(opts(dir), &error, &stats);
  ASSERT_NE(s, nullptr) << error;
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.torn_tails, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_EQ(s->last_seq(), 3u);
  const auto rec = drain(*s);
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec[0], (std::pair<std::uint64_t, std::string>{1, "alpha"}));
  EXPECT_EQ(rec[1], (std::pair<std::uint64_t, std::string>{2, "bravo"}));
  EXPECT_EQ(rec[2].second.size(), 8u);  // NUL survived
  // for_each(from) is exclusive.
  EXPECT_EQ(drain(*s, 2).size(), 1u);
  // Appending resumes after the recovered tail.
  EXPECT_EQ(s->append("delta", &error), 4u) << error;
}

TEST(Spool, TornTailIsTruncatedAndAppendResumes) {
  const std::string dir = tmp_dir("netd_spool_torn");
  std::string error;
  {
    auto s = Spool::open(opts(dir), &error);
    ASSERT_NE(s, nullptr) << error;
    ASSERT_EQ(s->append("first record", &error), 1u);
    ASSERT_EQ(s->append("second record", &error), 2u);
  }
  // Simulate a writer SIGKILLed mid-append: cut the last record's payload
  // short.
  const std::string seg = only_segment(dir);
  const auto size = util::file_size(seg);
  ASSERT_TRUE(size.has_value());
  ASSERT_TRUE(util::truncate_file(seg, *size - 5, &error)) << error;

  Spool::RecoveryStats stats;
  auto s = Spool::open(opts(dir), &error, &stats);
  ASSERT_NE(s, nullptr) << error;
  EXPECT_EQ(stats.torn_tails, 1u);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.quarantined, 0u);
  EXPECT_EQ(s->last_seq(), 1u);
  const auto rec = drain(*s);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec[0].second, "first record");
  // The torn seq is re-assignable: the next append gets seq 2 again and
  // lands cleanly after the truncated tail.
  EXPECT_EQ(s->append("second try", &error), 2u) << error;
  const auto rec2 = drain(*s);
  ASSERT_EQ(rec2.size(), 2u);
  EXPECT_EQ(rec2[1].second, "second try");
}

TEST(Spool, CorruptMiddleRecordQuarantinesSegmentLoudly) {
  const std::string dir = tmp_dir("netd_spool_corrupt");
  std::string error;
  {
    auto s = Spool::open(opts(dir), &error);
    ASSERT_NE(s, nullptr) << error;
    ASSERT_EQ(s->append(std::string(100, 'a'), &error), 1u);
    ASSERT_EQ(s->append(std::string(100, 'b'), &error), 2u);
    ASSERT_EQ(s->append(std::string(100, 'c'), &error), 3u);
  }
  // Flip one byte inside the SECOND record's payload: a CRC mismatch in
  // the middle of the segment, not a torn tail.
  const std::string seg = only_segment(dir);
  {
    std::fstream f(seg,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(20 + 100 + 20 + 50));
    f.put('X');
  }
  Spool::RecoveryStats stats;
  auto s = Spool::open(opts(dir), &error, &stats);
  ASSERT_NE(s, nullptr) << error;
  // The whole segment is refused and preserved for forensics, counted in
  // the recovery stats — fail loudly, never skip silently.
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.quarantined_records, 1u);  // record 1 parsed before the hit
  EXPECT_EQ(stats.records, 0u);
  EXPECT_TRUE(drain(*s).empty());
  const std::string q = seg + ".quarantined";
  EXPECT_TRUE(util::file_size(q).has_value());
  EXPECT_FALSE(util::file_size(seg).has_value());
}

TEST(Spool, EmptySegmentsAreCompactedAtOpen) {
  const std::string dir = tmp_dir("netd_spool_empty");
  std::string error;
  {
    auto s = Spool::open(opts(dir), &error);
    ASSERT_NE(s, nullptr) << error;
    ASSERT_EQ(s->append("only", &error), 1u);
  }
  // A rotation that crashed before its first record leaves a zero-byte
  // segment behind.
  const std::string empty_seg =
      dir + "/seg-00000000000000000002.ndspool";
  { std::ofstream f(empty_seg, std::ios::binary); }
  ASSERT_TRUE(util::file_size(empty_seg).has_value());

  Spool::RecoveryStats stats;
  auto s = Spool::open(opts(dir), &error, &stats);
  ASSERT_NE(s, nullptr) << error;
  EXPECT_EQ(stats.empty_removed, 1u);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_FALSE(util::file_size(empty_seg).has_value());
  EXPECT_EQ(s->segments(), 1u);
}

TEST(Spool, SegmentsRotateAndBudgetShedsOldestWithCounters) {
  const std::string dir = tmp_dir("netd_spool_budget");
  std::string error;
  Spool::Options o = opts(dir);
  o.max_segment_bytes = 256;   // ~2 records of 100 bytes per segment
  o.max_spool_bytes = 1024;
  auto s = Spool::open(o, &error);
  ASSERT_NE(s, nullptr) << error;
  for (int i = 0; i < 20; ++i) {
    ASSERT_GT(s->append(std::string(100, static_cast<char>('a' + i)), &error),
              0u)
        << error;
  }
  EXPECT_EQ(s->last_seq(), 20u);
  EXPECT_LE(s->bytes(), 1024u + 256u);  // budget plus one active segment
  // Oldest records were shed, newest survive, and the loss is accounted.
  const auto& d = s->dropped();
  EXPECT_GT(d.segments, 0u);
  EXPECT_GT(d.records, 0u);
  EXPECT_GT(d.bytes, 0u);
  const auto rec = drain(*s);
  ASSERT_FALSE(rec.empty());
  EXPECT_EQ(rec.back().first, 20u);            // newest never shed
  EXPECT_EQ(rec.size() + d.records, 20u);      // shed + kept = appended
  EXPECT_GT(rec.front().first, 1u);            // oldest went first
}

TEST(Spool, MarkShippedPersistsWatermarkAndCompactsWithoutRetain) {
  const std::string dir = tmp_dir("netd_spool_shipped");
  std::string error;
  Spool::Options o = opts(dir);
  o.max_segment_bytes = 64;  // force one record per segment
  o.retain_acked = false;
  {
    auto s = Spool::open(o, &error);
    ASSERT_NE(s, nullptr) << error;
    for (int i = 0; i < 5; ++i) {
      ASSERT_GT(s->append(std::string(60, 'x'), &error), 0u);
    }
    ASSERT_TRUE(s->mark_shipped(3, &error)) << error;
    EXPECT_EQ(s->shipped(), 3u);
    // Lower watermarks are ignored (acks are monotonic).
    ASSERT_TRUE(s->mark_shipped(2, &error));
    EXPECT_EQ(s->shipped(), 3u);
    // Fully-shipped segments are gone; unshipped ones remain.
    const auto rec = drain(*s, 0);
    ASSERT_FALSE(rec.empty());
    EXPECT_GE(rec.front().first, 4u);
  }
  // The watermark survives restart via MANIFEST.
  Spool::RecoveryStats stats;
  auto s = Spool::open(o, &error, &stats);
  ASSERT_NE(s, nullptr) << error;
  EXPECT_EQ(stats.shipped, 3u);
  EXPECT_EQ(s->shipped(), 3u);
  EXPECT_EQ(s->last_seq(), 5u);
}

TEST(Spool, RetainAckedKeepsHistoryForEpochReship) {
  const std::string dir = tmp_dir("netd_spool_retain");
  std::string error;
  Spool::Options o = opts(dir);
  o.max_segment_bytes = 64;
  o.retain_acked = true;
  auto s = Spool::open(o, &error);
  ASSERT_NE(s, nullptr) << error;
  for (int i = 0; i < 4; ++i) {
    ASSERT_GT(s->append("record " + std::to_string(i), &error), 0u);
  }
  ASSERT_TRUE(s->mark_shipped(4, &error)) << error;
  // Everything is acked yet still on disk: a server that lost its state
  // can be re-fed from seq 1.
  EXPECT_EQ(drain(*s, 0).size(), 4u);
}

TEST(Spool, CrashedManifestWriterTempIsRemovedAtOpen) {
  const std::string dir = tmp_dir("netd_spool_manifest_crash");
  std::string error;
  {
    auto s = Spool::open(opts(dir), &error);
    ASSERT_NE(s, nullptr) << error;
    ASSERT_EQ(s->append("one", &error), 1u);
    ASSERT_TRUE(s->mark_shipped(1, &error)) << error;
  }
  // A manifest writer that died pre-rename leaves MANIFEST.tmp.<pid>;
  // recovery reuses util::remove_stale_temps — the exact code path the
  // atomic-file tests pin.
  {
    std::ofstream f(dir + "/MANIFEST.tmp.4242", std::ios::binary);
    f << "{\"shipped\": 99";  // torn JSON, never renamed
  }
  Spool::RecoveryStats stats;
  auto s = Spool::open(opts(dir), &error, &stats);
  ASSERT_NE(s, nullptr) << error;
  EXPECT_EQ(stats.stale_temps, 1u);
  EXPECT_FALSE(util::file_size(dir + "/MANIFEST.tmp.4242").has_value());
  // The committed manifest still reads back.
  EXPECT_EQ(s->shipped(), 1u);
}

TEST(Spool, RecordsLargerThanOneSegmentStillAppend) {
  const std::string dir = tmp_dir("netd_spool_bigrec");
  std::string error;
  Spool::Options o = opts(dir);
  o.max_segment_bytes = 64;
  auto s = Spool::open(o, &error);
  ASSERT_NE(s, nullptr) << error;
  const std::string big(1000, 'z');
  ASSERT_EQ(s->append(big, &error), 1u) << error;
  ASSERT_EQ(s->append(big, &error), 2u) << error;
  const auto rec = drain(*s);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec[0].second, big);
  EXPECT_EQ(rec[1].second, big);
}

TEST(SpoolCrc, MatchesKnownVectorsAndChains) {
  // The classic IEEE CRC32 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Chaining across a split equals the whole.
  const std::string msg = "netdiag spool framing";
  const std::uint32_t whole = crc32(msg.data(), msg.size());
  const std::uint32_t part = crc32(msg.data(), 7);
  EXPECT_EQ(crc32(msg.data() + 7, msg.size() - 7, part), whole);
}

}  // namespace
}  // namespace netd::agent
