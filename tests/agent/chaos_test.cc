// The sensor-fleet chaos soak (the PR's headline integration test).
//
// N=3 netdiag-agent processes — real fork/exec of the shipped binary —
// feed one diagnosis server while everything that can go wrong does:
// the server injects seeded response faults (FaultInjector), the agents
// inject seeded request faults, agent processes are SIGKILLed mid-flight
// and re-run, and the server itself is restarted with total state loss.
// The durability contract under test: after the dust settles, every
// session holds EXACTLY its agent's rounds (zero lost, zero duplicated —
// the round counter equals the round count, the ack watermark equals the
// last seq) and the final diagnosis is byte-identical to a fault-free
// reference run.
//
// Seeded via ND_AGENT_SEED (default 1); CI soaks seeds {1, 7, 1337}
// under TSan. Override the agent binary with ND_AGENT_BIN.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.h"
#include "svc/fault.h"
#include "svc/server.h"
#include "util/rng.h"

namespace netd::agent {
namespace {

#ifndef NETDIAG_AGENT_BIN
#define NETDIAG_AGENT_BIN ""
#endif

std::string agent_bin() {
  if (const char* env = std::getenv("ND_AGENT_BIN"); env != nullptr) {
    return env;
  }
  return NETDIAG_AGENT_BIN;
}

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ND_AGENT_SEED"); env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

constexpr std::size_t kAgents = 3;
constexpr std::size_t kRounds = 5;

struct RunResult {
  bool exited = false;  ///< false = killed by a signal
  int code = -1;
};

/// fork/exec the agent binary; SIGKILL it after `kill_after_ms` (< 0 =
/// let it finish). Child stdio goes to /dev/null — the summaries of
/// dozens of incarnations are noise; the server-side probes are the
/// assertions.
RunResult run_agent(const std::vector<std::string>& args, int kill_after_ms) {
  const std::string bin = agent_bin();
  std::vector<const char*> argv;
  argv.push_back(bin.c_str());
  for (const auto& a : args) argv.push_back(a.c_str());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
    ::execv(bin.c_str(), const_cast<char* const*>(argv.data()));
    ::_exit(127);
  }
  RunResult r;
  if (pid < 0) return r;
  if (kill_after_ms >= 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kill_after_ms);
    int status = 0;
    for (;;) {
      const pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        // Finished before the axe fell — still a valid incarnation.
        r.exited = WIFEXITED(status);
        r.code = r.exited ? WEXITSTATUS(status) : -1;
        return r;
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ::kill(pid, SIGKILL);
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  r.exited = WIFEXITED(status);
  r.code = r.exited ? WEXITSTATUS(status) : -1;
  return r;
}

class ChaosFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(agent_bin().empty())
        << "netdiag-agent binary path not compiled in and ND_AGENT_BIN unset";
    char tmpl[] = "/tmp/ndchaosXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    sock_path_ = dir_ + "/svc.sock";
    endpoint_spec_ = "unix:" + sock_path_;
  }

  void TearDown() override {
    stop_server();
    const std::string cmd = "rm -rf '" + dir_ + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }

  void start_server(bool chaos) {
    svc::Server::Options opts;
    std::string error;
    const auto ep = svc::Endpoint::parse(endpoint_spec_, &error);
    ASSERT_TRUE(ep.has_value()) << error;
    opts.endpoint = *ep;
    if (chaos) opts.fault_plan = svc::FaultPlan::chaos(chaos_seed());
    server_.emplace(std::move(opts));
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void stop_server() {
    if (server_.has_value()) {
      server_->stop();
      server_.reset();
    }
  }

  std::string session(std::size_t i) const {
    return "fleet-" + std::to_string(i);
  }
  std::string src(std::size_t i) const {
    return "sensor-" + std::to_string(i);
  }

  /// Args for agent i. Every incarnation of agent i gets the same seeds,
  /// so its observation stream is byte-identical no matter how many times
  /// it is killed and re-run.
  std::vector<std::string> agent_args(std::size_t i,
                                      const std::string& spool_suffix,
                                      bool client_chaos) const {
    std::vector<std::string> a = {
        "--endpoint", endpoint_spec_,
        "--spool-dir", dir_ + "/spool-" + std::to_string(i) + spool_suffix,
        "--name", src(i),
        "--session", session(i),
        "--ases", "30", "--stubs", "60", "--tier2", "8",
        "--sensors", "5",
        "--rounds", std::to_string(kRounds),
        "--fail-round", "3",
        "--threshold", "2",
        "--topo-seed", std::to_string(1 + i),
        "--placement-seed", std::to_string(7 + i),
        "--fail-seed", std::to_string(99 + i),
        "--batch-max", "2",
        "--max-retries", "6",
        "--connect-timeout-ms", "2000",
        "--request-timeout-ms", "30000",
        "--backoff-base-ms", "5", "--backoff-max-ms", "50",
        "--ship-max-failures", "4",
        "--seed", std::to_string(chaos_seed() + i),
    };
    if (client_chaos) {
      a.push_back("--chaos-seed");
      a.push_back(std::to_string(chaos_seed() * 31 + i));
    }
    return a;
  }

  /// Re-runs agent i until an incarnation exits 0 (unreachable-server
  /// exits are retried; anything else fails the test).
  void run_until_acked(std::size_t i, const std::string& spool_suffix,
                       bool client_chaos) {
    for (int attempt = 0; attempt < 12; ++attempt) {
      const RunResult r =
          run_agent(agent_args(i, spool_suffix, client_chaos), -1);
      ASSERT_TRUE(r.exited) << "agent " << i << " died on a signal";
      if (r.code == 0) return;
      ASSERT_EQ(r.code, 3) << "agent " << i << " failed hard (exit "
                           << r.code << ")";
    }
    FAIL() << "agent " << i << " never finished shipping";
  }

  svc::ObserveBatchResponse probe(std::size_t i) {
    std::string error;
    svc::Client::Options copts;
    copts.max_retries = 6;
    copts.backoff_base_ms = 5;
    copts.backoff_max_ms = 50;
    copts.connect_timeout_ms = 2000;
    copts.request_timeout_ms = 30000;
    auto c = svc::Client::connect(server_->endpoint(), copts, &error);
    EXPECT_TRUE(c.has_value()) << error;
    svc::ObserveBatchResponse rsp;
    EXPECT_TRUE(svc::expect_response(
        c->call(svc::Request{svc::ObserveBatchRequest{session(i), src(i), {}}},
                &error),
        &rsp, &error))
        << error;
    return rsp;
  }

  std::optional<std::string> query_diagnosis(std::size_t i) {
    std::string error;
    svc::Client::Options copts;
    copts.max_retries = 6;
    copts.backoff_base_ms = 5;
    copts.backoff_max_ms = 50;
    auto c = svc::Client::connect(server_->endpoint(), copts, &error);
    EXPECT_TRUE(c.has_value()) << error;
    svc::QueryResponse rsp;
    EXPECT_TRUE(svc::expect_response(
        c->call(svc::Request{svc::QueryRequest{session(i)}}, &error), &rsp,
        &error))
        << error;
    return rsp.diagnosis;
  }

  std::string dir_;
  std::string sock_path_;
  std::string endpoint_spec_;
  std::optional<svc::Server> server_;
};

TEST_F(ChaosFleetTest, KilledAgentsFaultyWiresAndServerRestartConverge) {
  // ---- Reference: a fault-free fleet on a pristine server. ----
  start_server(/*chaos=*/false);
  std::vector<std::string> reference(kAgents);
  for (std::size_t i = 0; i < kAgents; ++i) {
    run_until_acked(i, "-ref", /*client_chaos=*/false);
    const auto view = probe(i);
    ASSERT_EQ(view.ack, kRounds);
    ASSERT_EQ(view.round, kRounds);
    const auto diag = query_diagnosis(i);
    ASSERT_TRUE(diag.has_value()) << "reference agent " << i
                                  << " fired no diagnosis";
    reference[i] = *diag;
  }
  stop_server();

  // ---- The tortured fleet. ----
  start_server(/*chaos=*/true);
  util::Rng rng(chaos_seed() * 7919 + 17);

  // Round one of the torture: every agent is SIGKILLed mid-flight twice,
  // at seeded offsets — sometimes before the spool exists, sometimes
  // mid-generate, sometimes mid-ship.
  for (int kill_round = 0; kill_round < 2; ++kill_round) {
    for (std::size_t i = 0; i < kAgents; ++i) {
      const int after_ms = 20 + static_cast<int>(rng.uniform(0, 400));
      (void)run_agent(agent_args(i, "", /*client_chaos=*/true), after_ms);
    }
  }
  // Let every agent finish shipping through the faulty wire.
  for (std::size_t i = 0; i < kAgents; ++i) {
    run_until_acked(i, "", /*client_chaos=*/true);
  }
  for (std::size_t i = 0; i < kAgents; ++i) {
    const auto view = probe(i);
    EXPECT_EQ(view.ack, kRounds) << "agent " << i << " lost observations";
    EXPECT_EQ(view.round, kRounds)
        << "agent " << i << " rounds were lost or duplicated";
  }

  // ---- Total server amnesia: restart with empty state. ----
  stop_server();
  start_server(/*chaos=*/true);
  // One more kill while the fleet re-ships its spools into the new
  // incarnation, then let everyone converge.
  (void)run_agent(agent_args(0, "", /*client_chaos=*/true),
                  20 + static_cast<int>(rng.uniform(0, 300)));
  for (std::size_t i = 0; i < kAgents; ++i) {
    run_until_acked(i, "", /*client_chaos=*/true);
  }

  // ---- The verdict: exactly-once ingest, byte-identical diagnosis. ----
  for (std::size_t i = 0; i < kAgents; ++i) {
    const auto view = probe(i);
    EXPECT_EQ(view.ack, kRounds) << "agent " << i << " lost observations";
    EXPECT_EQ(view.round, kRounds)
        << "agent " << i << " rounds were lost or duplicated";
    const auto diag = query_diagnosis(i);
    ASSERT_TRUE(diag.has_value()) << "agent " << i << " fired no diagnosis";
    EXPECT_EQ(*diag, reference[i])
        << "agent " << i
        << ": tortured diagnosis differs from the fault-free reference";
  }
}

}  // namespace
}  // namespace netd::agent
