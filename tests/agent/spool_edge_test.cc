// Boundary-condition companion to spool_test.cc: what happens when a
// record's last byte lands exactly on the segment-rotation threshold.
#include "agent/spool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/atomic_file.h"
#include "util/record_log.h"

namespace netd::agent {
namespace {

namespace rlog = util::record_log;

class SpoolEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/netd_spool_edge_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + dir_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }
  std::string dir_;
};

// A record whose frame ends exactly at max_segment_bytes: the segment is
// full to the byte. The *next* append must rotate (not overshoot or
// refuse), and reopening must classify the byte-exact segment as clean.
TEST_F(SpoolEdgeTest, RecordEndingExactlyAtRotationBoundaryRotatesNext) {
  const std::string payload(100, 'x');
  const std::uint64_t frame = rlog::kHeaderBytes + payload.size();
  Spool::Options opts;
  opts.dir = dir_;
  opts.max_segment_bytes = 3 * frame;  // three records fill it exactly

  std::string error;
  auto spool = Spool::open(opts, &error);
  ASSERT_NE(spool, nullptr) << error;
  for (int i = 0; i < 3; ++i) {
    ASSERT_GT(spool->append(payload, &error), 0u) << error;
  }
  EXPECT_EQ(spool->segments(), 1u);
  EXPECT_EQ(spool->bytes(), 3 * frame);  // full to the exact byte

  // The boundary-crossing append opens a fresh segment.
  ASSERT_GT(spool->append(payload, &error), 0u) << error;
  EXPECT_EQ(spool->segments(), 2u);
  EXPECT_EQ(spool->bytes(), 4 * frame);
  spool.reset();

  // Reopen: the byte-exact segment scans clean (no torn tail, nothing
  // quarantined) and every record survives in order.
  Spool::RecoveryStats stats;
  spool = Spool::open(opts, &error, &stats);
  ASSERT_NE(spool, nullptr) << error;
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_EQ(stats.records, 4u);
  EXPECT_EQ(stats.torn_tails, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
  std::vector<std::uint64_t> seqs;
  ASSERT_TRUE(spool->for_each(
      0,
      [&](std::uint64_t seq, std::string_view p) {
        EXPECT_EQ(p, payload);
        seqs.push_back(seq);
        return true;
      },
      &error))
      << error;
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  ASSERT_GT(spool->append(payload, &error), 0u) << error;  // still appendable
}

}  // namespace
}  // namespace netd::agent
