#!/usr/bin/env python3
"""Plot the paper figures from the CSVs the benchmarks emit.

Usage:
    mkdir -p out
    for b in build/bench/bench_fig*; do ND_CSV_DIR=out "$b" > /dev/null; done
    python3 scripts/plot_figures.py out

Writes one PNG next to each CSV. Requires matplotlib; degrades to a clear
error message without it.
"""
import csv
import pathlib
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1

    out_dir = pathlib.Path(sys.argv[1])
    csvs = sorted(out_dir.glob("*.csv"))
    if not csvs:
        print(f"no CSVs in {out_dir}; run the benches with ND_CSV_DIR set")
        return 1
    for path in csvs:
        with path.open() as fh:
            rows = list(csv.reader(fh))
        header, data = rows[0], rows[1:]
        if not data:
            continue
        # First column is x when numeric; otherwise categorical labels.
        fig, ax = plt.subplots(figsize=(6, 4))
        try:
            xs = [float(r[0]) for r in data]
            for col in range(1, len(header)):
                ys = [float(r[col]) for r in data]
                ax.plot(xs, ys, marker="o", label=header[col])
            ax.set_xlabel(header[0])
        except ValueError:
            labels = [r[0] for r in data]
            width = 0.8 / max(1, len(header) - 1)
            for col in range(1, len(header)):
                ys = [float(r[col]) for r in data]
                offs = [i + (col - 1) * width for i in range(len(labels))]
                ax.bar(offs, ys, width=width, label=header[col])
            ax.set_xticks(range(len(labels)))
            ax.set_xticklabels(labels, rotation=20, ha="right")
        ax.legend(fontsize=8)
        ax.set_title(path.stem.replace("-", " "))
        ax.grid(alpha=0.3)
        fig.tight_layout()
        png = path.with_suffix(".png")
        fig.savefig(png, dpi=120)
        plt.close(fig)
        print(f"wrote {png}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
