#!/usr/bin/env bash
# Probe-planning gate: runs bench_plan and checks, within the run itself,
# that the planned placement beats the paper's random placement at equal
# budget — strictly on both ND-edge sensitivity and specificity for the
# gated presets — and that the 10k-AS planner stays inside its wall-time
# budget (default 10 s, ND_PLAN_GATE_MS to override).
#
# Every comparison is within-run (two strategies through the same binary,
# same seeds, same protocol), so the gate is robust to absolute machine
# speed; only the wall-time ceiling is absolute, and it has ~2000x
# headroom on a laptop. The committed BENCH_plan.json is the reference
# record of the same run shape, not a compared-against baseline.
#
# Usage: bench_plan_gate.sh [source-dir] [workdir]
set -eu

SRC=${1:-.}
WORK=${2:-bench_plan_gate_work}
GEN=${ND_GATE_GENERATOR:-Ninja}
PLAN_MS_LIMIT=${ND_PLAN_GATE_MS:-10000}

mkdir -p "$WORK"
echo "bench_plan_gate: building Release bench_plan"
cmake -B "$WORK/build" -S "$SRC" -G "$GEN" -DCMAKE_BUILD_TYPE=Release \
      >/dev/null
cmake --build "$WORK/build" --target bench_plan >/dev/null
echo "bench_plan_gate: running planned-vs-random presets"
rm -f "$WORK/perf.jsonl"
ND_PERF_JSON="$WORK/perf.jsonl" "$WORK/build/bench/bench_plan"

awk -v plan_ms_limit="$PLAN_MS_LIMIT" '
  function field(name,    v) {
    if (match($0, "\"" name "\":[0-9.eE+-]+") == 0) return ""
    v = substr($0, RSTART + length(name) + 3, RLENGTH - length(name) - 3)
    return v + 0
  }
  {
    if (match($0, /"bench":"[^"]*"/) == 0) next
    name = substr($0, RSTART + 9, RLENGTH - 10)
    if (name == "plan_3link" || name == "plan_sparse") {
      gated++
      ps = field("planned_sens"); rs = field("random_sens")
      pp = field("planned_spec"); rp = field("random_spec")
      printf "bench_plan_gate: %-12s sens %.4f vs %.4f  spec %.4f vs %.4f\n", \
             name, ps, rs, pp, rp
      if (!(ps > rs && pp > rp)) {
        printf "bench_plan_gate: FAIL %s planned does not dominate random\n", \
               name
        fail = 1
      }
    }
    if (name == "plan_inet10000") {
      scaled++
      ms = field("wall_ms"); obj = field("objective")
      robj = field("random_objective")
      printf "bench_plan_gate: %-12s plan %.1f ms  objective %.0f vs %.0f\n", \
             name, ms, obj, robj
      if (ms >= plan_ms_limit) {
        printf "bench_plan_gate: FAIL 10k-AS plan took %.0f ms (limit %s)\n", \
               ms, plan_ms_limit
        fail = 1
      }
      if (!(obj > robj)) {
        printf "bench_plan_gate: FAIL planned objective below random\n"
        fail = 1
      }
    }
  }
  END {
    if (gated < 2 || scaled < 1) {
      printf "bench_plan_gate: FAIL records missing (%d gated, %d scale)\n", \
             gated, scaled
      fail = 1
    }
    exit fail
  }
' "$WORK/perf.jsonl"

echo "bench_plan_gate: PASS"
