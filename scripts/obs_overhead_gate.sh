#!/usr/bin/env bash
# Observability overhead gate: the instrumented build (NETD_OBS=ON, the
# default) must not be more than ND_GATE_LIMIT_PCT (default 5) percent
# slower than the compiled-out build (NETD_OBS=OFF) on the service bench
# and a solver-heavy figure bench.
#
# Builds two Release trees, runs each bench ND_GATE_RUNS (default 3)
# times per tree, and compares the *minimum* wall_ms per bench record —
# min is the stable estimator on noisy CI boxes. Benches run with the
# full observability path armed: ND_BENCH_TRACE=1 makes bench_svc install
# the span sink and drive the event ring (slow-request threshold 1 ms),
# so the gate prices distributed tracing on the hot path, not just
# dormant counters. The OFF tree compiles all of it out, making the
# comparison the true cost of shipping the instrumentation enabled.
#
# Usage: obs_overhead_gate.sh [source-dir] [workdir]
set -eu

SRC=${1:-.}
WORK=${2:-obs_gate_work}
RUNS=${ND_GATE_RUNS:-3}
LIMIT=${ND_GATE_LIMIT_PCT:-5}
GEN=${ND_GATE_GENERATOR:-Ninja}
BENCHES="bench_svc bench_fig6_tomo"

mkdir -p "$WORK"

build_tree() { # <dir> <ON|OFF>
  cmake -B "$1" -S "$SRC" -G "$GEN" -DCMAKE_BUILD_TYPE=Release \
        -DNETD_OBS="$2" >/dev/null
  # shellcheck disable=SC2086  # BENCHES is a deliberate word list
  cmake --build "$1" --target $BENCHES >/dev/null
}

run_benches() { # <dir> <perf.jsonl>
  rm -f "$2"
  i=0
  while [ "$i" -lt "$RUNS" ]; do
    for b in $BENCHES; do
      ND_PLACEMENTS=2 ND_TRIALS=8 ND_THREADS=2 ND_PERF_JSON="$2" \
        ND_BENCH_TRACE=1 "$1/bench/$b" >/dev/null
    done
    i=$((i + 1))
  done
}

echo "obs_overhead_gate: building NETD_OBS=ON tree"
build_tree "$WORK/on" ON
echo "obs_overhead_gate: building NETD_OBS=OFF tree"
build_tree "$WORK/off" OFF
echo "obs_overhead_gate: timing ($RUNS runs per tree)"
run_benches "$WORK/on" "$WORK/on.jsonl"
run_benches "$WORK/off" "$WORK/off.jsonl"

awk -v limit="$LIMIT" -v on_file="$WORK/on.jsonl" '
  {
    if (match($0, /"bench":"[^"]*"/) == 0) next
    name = substr($0, RSTART + 9, RLENGTH - 10)
    if (match($0, /"wall_ms":[0-9.eE+-]+/) == 0) next
    wall = substr($0, RSTART + 10, RLENGTH - 10) + 0
    key = (FILENAME == on_file) ? "on" : "off"
    if (!((key, name) in best) || wall < best[key, name])
      best[key, name] = wall
    names[name] = 1
  }
  END {
    fail = 0
    compared = 0
    for (name in names) {
      if (!(("on", name) in best) || !(("off", name) in best)) {
        printf "obs_overhead_gate: %s missing from one tree\n", name
        fail = 1
        continue
      }
      on = best["on", name]; off = best["off", name]
      pct = off > 0 ? (on - off) / off * 100 : 0
      printf "obs_overhead_gate: %-28s on=%9.2fms off=%9.2fms  %+.2f%%\n", \
             name, on, off, pct
      compared++
      if (pct > limit) {
        printf "obs_overhead_gate: FAIL %s exceeds the %s%% budget\n", \
               name, limit
        fail = 1
      }
    }
    if (compared == 0) {
      print "obs_overhead_gate: FAIL no bench records compared"
      fail = 1
    }
    exit fail
  }
' "$WORK/on.jsonl" "$WORK/off.jsonl"

echo "obs_overhead_gate: PASS (budget ${LIMIT}%)"
