#!/usr/bin/env bash
# Kill-resume crash drill: start a checkpointed campaign, SIGKILL it
# mid-flight, resume it to completion, and require the final CSV and
# event trace to be byte-identical to an uninterrupted reference run.
#
# Usage: kill_resume_test.sh <path-to-netdiag> [workdir]
set -u

NETDIAG=${1:?usage: kill_resume_test.sh <path-to-netdiag> [workdir]}
WORK=${2:-$(mktemp -d)}
mkdir -p "$WORK"
cd "$WORK"

TOPO="--ases 30 --stubs 60 --tier2 8"
SCEN="$TOPO --placements 4 --trials 4 --failures 1 --seed 2026"

fail() { echo "kill_resume_test: FAIL: $*" >&2; exit 1; }

# Starts "$@" in the background and SIGKILLs it once the checkpoint shows
# progress (or after ~10s); returns once the process is gone. Killing
# after the first committed placement exercises a genuine mid-campaign
# resume; a kill before any commit degrades to a fresh start, which the
# resume path must also survive.
kill_mid_flight() {
  local ck=$1; shift
  "$@" >/dev/null 2>&1 &
  local pid=$!
  for _ in $(seq 1 100); do
    if [ -s "$ck" ] && ! kill -0 "$pid" 2>/dev/null; then
      break  # finished before we could kill it — resume is then a no-op
    fi
    if [ -s "$ck" ]; then
      kill -KILL "$pid" 2>/dev/null
      break
    fi
    sleep 0.1
  done
  kill -KILL "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  return 0
}

echo "== reference runs (uninterrupted) =="
$NETDIAG run $SCEN --threads 1 --csv ref.csv \
  --checkpoint ref.ck.json >/dev/null || fail "reference score run"
$NETDIAG run $SCEN --threads 1 --record ref.jsonl --threshold 2 \
  --checkpoint ref_rec.ck.json >/dev/null || fail "reference record run"

echo "== score mode: kill mid-campaign, then resume =="
kill_mid_flight crash.ck.json \
  $NETDIAG run $SCEN --threads 2 --checkpoint crash.ck.json --csv crash.csv
$NETDIAG run $SCEN --threads 2 --checkpoint crash.ck.json --resume \
  --csv crash.csv >/dev/null || fail "score resume"
cmp ref.csv crash.csv || fail "resumed CSV differs from reference"
echo "   CSV byte-identical after SIGKILL + resume"

echo "== record mode: kill mid-campaign, corrupt the tail, resume =="
kill_mid_flight crash_rec.ck.json \
  $NETDIAG run $SCEN --threads 2 --record crash.jsonl --threshold 2 \
  --checkpoint crash_rec.ck.json
# A crash can leave a torn trailing line; make sure one is there.
printf '{"v":1,"type":"round","mesh":{"torn' >> crash.jsonl
$NETDIAG run $SCEN --threads 2 --record crash.jsonl --threshold 2 \
  --checkpoint crash_rec.ck.json --resume >/dev/null || fail "record resume"
cmp ref.jsonl crash.jsonl || fail "resumed trace differs from reference"
echo "   trace byte-identical after SIGKILL + torn tail + resume"

$NETDIAG replay crash.jsonl >/dev/null || fail "resumed trace replay"
echo "   resumed trace replays cleanly"

echo "kill_resume_test: PASS"
