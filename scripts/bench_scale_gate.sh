#!/usr/bin/env bash
# Internet-scale solver regression gate: runs bench_scale on the default
# {165, 2000, 10000}-AS ladder and compares each record's kernel speedup
# (reference scorer / bitset scorer, both on the same prebuilt demands)
# against the committed baseline BENCH_scale.json. Fails when any
# record's speedup regresses by more than ND_GATE_LIMIT_PCT percent
# (default 20).
#
# The speedup is a within-run ratio of two scorers compiled into the
# same binary and fed identical inputs, so it is robust to absolute
# machine speed — the right invariant to pin on heterogeneous CI boxes
# (absolute wall_ms baselines recorded on one machine are meaningless on
# another; a ratio regression means the kernel itself got slower).
#
# Usage: bench_scale_gate.sh [source-dir] [workdir]
set -eu

SRC=${1:-.}
WORK=${2:-bench_scale_gate_work}
LIMIT=${ND_GATE_LIMIT_PCT:-20}
GEN=${ND_GATE_GENERATOR:-Ninja}
BASELINE="$SRC/BENCH_scale.json"

[ -f "$BASELINE" ] || { echo "bench_scale_gate: missing $BASELINE"; exit 1; }

mkdir -p "$WORK"
echo "bench_scale_gate: building Release bench_scale"
cmake -B "$WORK/build" -S "$SRC" -G "$GEN" -DCMAKE_BUILD_TYPE=Release \
      >/dev/null
cmake --build "$WORK/build" --target bench_scale >/dev/null
echo "bench_scale_gate: running the scale ladder"
rm -f "$WORK/perf.jsonl"
ND_PERF_JSON="$WORK/perf.jsonl" "$WORK/build/bench/bench_scale"

awk -v limit="$LIMIT" -v base_file="$BASELINE" '
  {
    if (match($0, /"bench":"[^"]*"/) == 0) next
    name = substr($0, RSTART + 9, RLENGTH - 10)
    if (match($0, /"speedup":[0-9.eE+-]+/) == 0) next
    sp = substr($0, RSTART + 10, RLENGTH - 10) + 0
    key = (FILENAME == base_file) ? "base" : "new"
    best[key, name] = sp
    names[name] = 1
  }
  END {
    fail = 0
    compared = 0
    for (name in names) {
      if (!(("base", name) in best) || !(("new", name) in best)) {
        printf "bench_scale_gate: %s missing from one side\n", name
        fail = 1
        continue
      }
      b = best["base", name]; n = best["new", name]
      pct = b > 0 ? (b - n) / b * 100 : 0
      printf "bench_scale_gate: %-28s base=%6.2fx new=%6.2fx  %+.1f%%\n", \
             name, b, n, -pct
      compared++
      if (pct > limit) {
        printf "bench_scale_gate: FAIL %s regressed more than %s%%\n", \
               name, limit
        fail = 1
      }
    }
    if (compared == 0) {
      print "bench_scale_gate: FAIL no bench records compared"
      fail = 1
    }
    exit fail
  }
' "$BASELINE" "$WORK/perf.jsonl"

echo "bench_scale_gate: PASS (limit ${LIMIT}%)"
