#include "igp/igp.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

namespace netd::igp {

using topo::AsId;
using topo::LinkId;
using topo::RouterId;

IgpState::IgpState(const topo::Topology& topo) : topo_(topo) {
  local_index_.resize(topo_.num_routers());
  for (const auto& as : topo_.ases()) {
    for (std::size_t i = 0; i < as.routers.size(); ++i) {
      local_index_[as.routers[i].value()] = i;
    }
  }
  per_as_.resize(topo_.num_ases());
  recompute_all();
}

void IgpState::recompute_all() {
  for (const auto& as : topo_.ases()) recompute_as(as.id);
}

void IgpState::recompute_as(AsId as_id) {
  const auto& as = topo_.as_of(as_id);
  const std::size_t n = as.routers.size();
  PerAs& state = per_as_[as_id.value()];
  state.dist.assign(n, std::vector<int>(n, kUnreachable));
  state.first_link.assign(n, std::vector<LinkId>(n, LinkId{}));

  // Dijkstra from every router; ties broken on (distance, router id) so the
  // forwarding state is deterministic across runs.
  for (std::size_t s = 0; s < n; ++s) {
    const RouterId src = as.routers[s];
    if (!topo_.router(src).up) continue;
    auto& dist = state.dist[s];
    auto& first = state.first_link[s];
    dist[s] = 0;
    using Item = std::tuple<int, std::uint32_t>;  // (distance, router id)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0, src.value()});
    std::vector<bool> done(n, false);
    while (!pq.empty()) {
      const auto [d, rv] = pq.top();
      pq.pop();
      const RouterId r{rv};
      const std::size_t li = local(r);
      if (done[li]) continue;
      done[li] = true;
      for (LinkId l : topo_.links_of(r)) {
        const auto& link = topo_.link(l);
        if (link.interdomain || !topo_.link_usable(l)) continue;
        const RouterId nb = topo_.other_end(l, r);
        const std::size_t ni = local(nb);
        const int nd = d + link.igp_weight;
        if (nd < dist[ni]) {
          dist[ni] = nd;
          // First hop: inherit from r unless r is the source, in which
          // case the first hop is this link itself.
          first[ni] = (r == src) ? l : first[li];
          pq.push({nd, nb.value()});
        }
      }
    }
  }
}

std::optional<LinkId> IgpState::next_hop(RouterId from, RouterId to) const {
  assert(topo_.router(from).as == topo_.router(to).as);
  assert(from != to);
  const auto& state = per_as_[topo_.router(from).as.value()];
  const LinkId l = state.first_link[local(from)][local(to)];
  if (!l.valid()) return std::nullopt;
  return l;
}

std::vector<LinkId> IgpState::equal_cost_next_hops(RouterId from,
                                                   RouterId to) const {
  assert(topo_.router(from).as == topo_.router(to).as);
  assert(from != to);
  std::vector<LinkId> out;
  const int total = distance(from, to);
  if (total == kUnreachable) return out;
  // A first hop over link l is on *a* shortest path iff
  // weight(l) + dist(neighbor, to) == dist(from, to).
  for (LinkId l : topo_.links_of(from)) {
    const auto& link = topo_.link(l);
    if (link.interdomain || !topo_.link_usable(l)) continue;
    const RouterId nb = topo_.other_end(l, from);
    const int rest = distance(nb, to);
    if (rest != kUnreachable && link.igp_weight + rest == total) {
      out.push_back(l);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int IgpState::distance(RouterId from, RouterId to) const {
  assert(topo_.router(from).as == topo_.router(to).as);
  const auto& state = per_as_[topo_.router(from).as.value()];
  return state.dist[local(from)][local(to)];
}

}  // namespace netd::igp
