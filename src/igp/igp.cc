#include "igp/igp.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

namespace netd::igp {

using topo::AsId;
using topo::LinkId;
using topo::RouterId;

IgpState::IgpState(const topo::Topology& topo) : topo_(topo) {
  local_index_.resize(topo_.num_routers());
  for (const auto& as : topo_.ases()) {
    for (std::size_t i = 0; i < as.routers.size(); ++i) {
      local_index_[as.routers[i].value()] = i;
    }
  }
  per_as_.resize(topo_.num_ases());
  // Freeze the per-AS intradomain adjacency into CSR form once; link
  // up/down state stays dynamic (checked per scan via link_usable).
  for (const auto& as : topo_.ases()) {
    PerAs& state = per_as_[as.id.value()];
    const std::size_t n = as.routers.size();
    state.n = n;
    state.arc_off.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const RouterId r = as.routers[i];
      std::uint32_t intra = 0;
      for (LinkId l : topo_.links_of(r)) {
        if (!topo_.link(l).interdomain) ++intra;
      }
      state.arc_off[i + 1] = state.arc_off[i] + intra;
    }
    state.arcs.resize(state.arc_off[n]);
    for (std::size_t i = 0; i < n; ++i) {
      const RouterId r = as.routers[i];
      std::uint32_t at = state.arc_off[i];
      for (LinkId l : topo_.links_of(r)) {
        const auto& link = topo_.link(l);
        if (link.interdomain) continue;
        const RouterId nb = topo_.other_end(l, r);
        state.arcs[at++] = IntraArc{
            l, static_cast<std::uint32_t>(local_index_[nb.value()]),
            link.igp_weight};
      }
    }
  }
  recompute_all();
}

void IgpState::recompute_all() {
  for (const auto& as : topo_.ases()) recompute_as(as.id);
}

void IgpState::recompute_as(AsId as_id) {
  const auto& as = topo_.as_of(as_id);
  const std::size_t n = as.routers.size();
  PerAs& state = per_as_[as_id.value()];
  state.dist.assign(n * n, kUnreachable);
  state.first_link.assign(n * n, LinkId{});

  // Dijkstra from every router; ties broken on (distance, router id) so the
  // forwarding state is deterministic across runs.
  std::vector<bool> done(n);
  for (std::size_t s = 0; s < n; ++s) {
    const RouterId src = as.routers[s];
    if (!topo_.router(src).up) continue;
    int* dist = state.dist.data() + s * n;
    LinkId* first = state.first_link.data() + s * n;
    dist[s] = 0;
    using Item = std::tuple<int, std::uint32_t>;  // (distance, router id)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.push({0, src.value()});
    std::fill(done.begin(), done.end(), false);
    while (!pq.empty()) {
      const auto [d, rv] = pq.top();
      pq.pop();
      const std::size_t li = local(RouterId{rv});
      if (done[li]) continue;
      done[li] = true;
      const std::uint32_t ab = state.arc_off[li];
      const std::uint32_t ae = state.arc_off[li + 1];
      for (std::uint32_t a = ab; a != ae; ++a) {
        const IntraArc& arc = state.arcs[a];
        if (!topo_.link_usable(arc.link)) continue;
        const std::size_t ni = arc.neighbor_local;
        const int nd = d + arc.weight;
        if (nd < dist[ni]) {
          dist[ni] = nd;
          // First hop: inherit from the popped router unless it is the
          // source, in which case the first hop is this link itself.
          first[ni] = (li == s) ? arc.link : first[li];
          pq.push({nd, as.routers[ni].value()});
        }
      }
    }
  }
}

std::optional<LinkId> IgpState::next_hop(RouterId from, RouterId to) const {
  assert(topo_.router(from).as == topo_.router(to).as);
  assert(from != to);
  const auto& state = per_as_[topo_.router(from).as.value()];
  const LinkId l = state.first_link[local(from) * state.n + local(to)];
  if (!l.valid()) return std::nullopt;
  return l;
}

std::vector<LinkId> IgpState::equal_cost_next_hops(RouterId from,
                                                   RouterId to) const {
  std::vector<LinkId> out;
  equal_cost_next_hops_into(from, to, out);
  return out;
}

void IgpState::equal_cost_next_hops_into(RouterId from, RouterId to,
                                         std::vector<LinkId>& out) const {
  assert(topo_.router(from).as == topo_.router(to).as);
  assert(from != to);
  out.clear();
  const auto& state = per_as_[topo_.router(from).as.value()];
  const std::size_t fl = local(from);
  const std::size_t tl = local(to);
  const int total = state.d(fl, tl);
  if (total == kUnreachable) return;
  // A first hop over link l is on *a* shortest path iff
  // weight(l) + dist(neighbor, to) == dist(from, to).
  const std::uint32_t ab = state.arc_off[fl];
  const std::uint32_t ae = state.arc_off[fl + 1];
  for (std::uint32_t a = ab; a != ae; ++a) {
    const IntraArc& arc = state.arcs[a];
    if (!topo_.link_usable(arc.link)) continue;
    const int rest = state.d(arc.neighbor_local, tl);
    if (rest != kUnreachable && arc.weight + rest == total) {
      out.push_back(arc.link);
    }
  }
  std::sort(out.begin(), out.end());
}

int IgpState::distance(RouterId from, RouterId to) const {
  assert(topo_.router(from).as == topo_.router(to).as);
  const auto& state = per_as_[topo_.router(from).as.value()];
  return state.d(local(from), local(to));
}

}  // namespace netd::igp
