// Link-state intradomain routing (the IS-IS of the paper's C-BGP setup).
//
// Each AS runs shortest-path-first over its usable intradomain links.
// The state answers "next link from router u toward router v" for routers
// of the same AS, and exposes IGP distances used by the BGP decision
// process (hot-potato tie-break). Failure injection calls recompute_as()
// after toggling link/router state.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "topo/topology.h"

namespace netd::igp {

class IgpState {
 public:
  static constexpr int kUnreachable = std::numeric_limits<int>::max();

  /// `topo` must outlive this object.
  explicit IgpState(const topo::Topology& topo);

  void recompute_all();
  void recompute_as(topo::AsId as);

  /// First link on the shortest path from `from` to `to` (same AS,
  /// from != to); nullopt when `to` is IGP-unreachable.
  [[nodiscard]] std::optional<topo::LinkId> next_hop(topo::RouterId from,
                                                     topo::RouterId to) const;

  /// All equal-cost first links from `from` toward `to` (ECMP), in
  /// ascending link-id order; empty when unreachable. next_hop() is
  /// always an element of this set.
  [[nodiscard]] std::vector<topo::LinkId> equal_cost_next_hops(
      topo::RouterId from, topo::RouterId to) const;

  /// IGP distance, kUnreachable if disconnected. distance(r, r) == 0.
  [[nodiscard]] int distance(topo::RouterId from, topo::RouterId to) const;

  [[nodiscard]] bool reachable(topo::RouterId from, topo::RouterId to) const {
    return distance(from, to) != kUnreachable;
  }

 private:
  struct PerAs {
    // Matrices indexed by [src local index][dst local index].
    std::vector<std::vector<int>> dist;
    std::vector<std::vector<topo::LinkId>> first_link;
  };

  const topo::Topology& topo_;
  std::vector<PerAs> per_as_;
  std::vector<std::size_t> local_index_;  // router id -> index within its AS

  [[nodiscard]] std::size_t local(topo::RouterId r) const {
    return local_index_[r.value()];
  }
};

}  // namespace netd::igp
