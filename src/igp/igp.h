// Link-state intradomain routing (the IS-IS of the paper's C-BGP setup).
//
// Each AS runs shortest-path-first over its usable intradomain links.
// The state answers "next link from router u toward router v" for routers
// of the same AS, and exposes IGP distances used by the BGP decision
// process (hot-potato tie-break). Failure injection calls recompute_as()
// after toggling link/router state.
//
// The per-AS intradomain adjacency is frozen into CSR arrays (flat
// neighbor/link/weight triples per local router) at construction: Dijkstra
// and the ECMP fan-out — the innermost loops of both reconvergence and
// every simulated traceroute hop — scan contiguous memory instead of
// chasing the topology's per-router link vectors, and the ECMP query has
// an append variant so the forwarding walk never allocates per hop.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "topo/topology.h"

namespace netd::igp {

class IgpState {
 public:
  static constexpr int kUnreachable = std::numeric_limits<int>::max();

  /// `topo` must outlive this object.
  explicit IgpState(const topo::Topology& topo);

  void recompute_all();
  void recompute_as(topo::AsId as);

  /// First link on the shortest path from `from` to `to` (same AS,
  /// from != to); nullopt when `to` is IGP-unreachable.
  [[nodiscard]] std::optional<topo::LinkId> next_hop(topo::RouterId from,
                                                     topo::RouterId to) const;

  /// All equal-cost first links from `from` toward `to` (ECMP), in
  /// ascending link-id order; empty when unreachable. next_hop() is
  /// always an element of this set.
  [[nodiscard]] std::vector<topo::LinkId> equal_cost_next_hops(
      topo::RouterId from, topo::RouterId to) const;

  /// Allocation-free variant: replaces `out`'s contents with the ECMP set
  /// (same order as equal_cost_next_hops), reusing its capacity.
  void equal_cost_next_hops_into(topo::RouterId from, topo::RouterId to,
                                 std::vector<topo::LinkId>& out) const;

  /// IGP distance, kUnreachable if disconnected. distance(r, r) == 0.
  [[nodiscard]] int distance(topo::RouterId from, topo::RouterId to) const;

  [[nodiscard]] bool reachable(topo::RouterId from, topo::RouterId to) const {
    return distance(from, to) != kUnreachable;
  }

 private:
  /// One intradomain neighbor reachable over one link.
  struct IntraArc {
    topo::LinkId link;
    std::uint32_t neighbor_local;  ///< local index of the far-end router
    int weight;
  };

  struct PerAs {
    // Matrices indexed by [src local index][dst local index], flattened.
    std::vector<int> dist;
    std::vector<topo::LinkId> first_link;
    std::size_t n = 0;
    // CSR intradomain adjacency over local router indices.
    std::vector<std::uint32_t> arc_off;  ///< n + 1 offsets
    std::vector<IntraArc> arcs;

    [[nodiscard]] int d(std::size_t s, std::size_t t) const {
      return dist[s * n + t];
    }
  };

  const topo::Topology& topo_;
  std::vector<PerAs> per_as_;
  std::vector<std::size_t> local_index_;  // router id -> index within its AS

  [[nodiscard]] std::size_t local(topo::RouterId r) const {
    return local_index_[r.value()];
  }
};

}  // namespace netd::igp
