// Router-level intradomain templates for the evaluation topology.
//
// The paper uses the real 2007 router-level maps of Abilene, GEANT and WIDE
// for the three core ASes and a 12-router hub-and-spoke for tier-2 ASes.
// The Abilene map below is the canonical 11-PoP Internet2 backbone; the
// GEANT and WIDE maps are same-size, same-density analogues (the original
// 2007 link lists are no longer published — see DESIGN.md §4).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "topo/topology.h"

namespace netd::topo {

/// An intradomain template: `num_routers` routers plus an edge list over
/// local router indices (every edge gets IGP weight 1).
struct IntraTemplate {
  const char* name;
  std::size_t num_routers;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
};

[[nodiscard]] const IntraTemplate& abilene_template();  ///< 11 routers
[[nodiscard]] const IntraTemplate& geant_template();    ///< 23 routers
[[nodiscard]] const IntraTemplate& wide_template();     ///< 9 routers

/// Hub-and-spoke with `spokes`+1 routers; router 0 is the hub. The paper's
/// tier-2 template is 12 routers total (11 spokes).
[[nodiscard]] IntraTemplate hub_and_spoke(std::size_t spokes);

/// Instantiates `tpl` as the router set of `as` inside `topo`; returns the
/// created routers in template order.
std::vector<RouterId> instantiate(Topology& topo, AsId as,
                                  const IntraTemplate& tpl);

}  // namespace netd::topo
