#include "topo/templates.h"

namespace netd::topo {

const IntraTemplate& abilene_template() {
  // The 11-PoP Abilene/Internet2 backbone:
  // 0 Seattle, 1 Sunnyvale, 2 Los Angeles, 3 Denver, 4 Kansas City,
  // 5 Houston, 6 Indianapolis, 7 Atlanta, 8 Chicago, 9 New York,
  // 10 Washington DC.
  static const IntraTemplate tpl{
      "abilene",
      11,
      {{0, 1}, {0, 3}, {1, 2}, {1, 3}, {2, 5}, {3, 4}, {4, 5},
       {4, 6}, {5, 7}, {6, 8}, {6, 7}, {7, 10}, {8, 9}, {9, 10}},
  };
  return tpl;
}

const IntraTemplate& geant_template() {
  // 23-router GEANT analogue: a well-connected western-European core
  // (routers 0..7) with national spokes (8..22), density matching the 2007
  // GEANT map (~38 links over 23 PoPs).
  static const IntraTemplate tpl{
      "geant",
      23,
      {
          // core mesh: 0 UK, 1 FR, 2 DE, 3 NL, 4 IT, 5 CH, 6 AT, 7 ES
          {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 5}, {1, 7}, {2, 3},
          {2, 5}, {2, 6}, {3, 6}, {4, 5}, {4, 6}, {4, 7}, {5, 6},
          // spokes, most dual-homed into the core
          {8, 0},  {8, 3},            // IE
          {9, 0},                     // PT via UK
          {10, 1}, {10, 7},           // BE
          {11, 2}, {11, 6},           // CZ
          {12, 2}, {12, 3},           // DK
          {13, 12},                   // SE via DK
          {14, 13}, {14, 2},          // FI
          {15, 6},  {15, 11},         // SK
          {16, 6},  {16, 4},          // SI
          {17, 6},                    // HU
          {18, 17}, {18, 4},          // HR
          {19, 4},                    // GR
          {20, 19}, {20, 17},         // RO
          {21, 7},                    // future expansion (IL analogue)
          {22, 0},  {22, 3},          // NO
      },
  };
  return tpl;
}

const IntraTemplate& wide_template() {
  // 9-router WIDE analogue: Tokyo-centred dual-hub with regional spokes,
  // matching the size and sparsity of the WIDE backbone.
  static const IntraTemplate tpl{
      "wide",
      9,
      {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5},
       {4, 6}, {5, 7}, {6, 8}, {7, 8}, {0, 5}},
  };
  return tpl;
}

IntraTemplate hub_and_spoke(std::size_t spokes) {
  IntraTemplate tpl{"hub_and_spoke", spokes + 1, {}};
  tpl.edges.reserve(spokes);
  for (std::size_t s = 1; s <= spokes; ++s) tpl.edges.push_back({0, s});
  return tpl;
}

std::vector<RouterId> instantiate(Topology& topo, AsId as,
                                  const IntraTemplate& tpl) {
  std::vector<RouterId> routers;
  routers.reserve(tpl.num_routers);
  for (std::size_t i = 0; i < tpl.num_routers; ++i) {
    routers.push_back(topo.add_router(as));
  }
  for (auto [a, b] : tpl.edges) {
    topo.add_intra_link(routers[a], routers[b]);
  }
  return routers;
}

}  // namespace netd::topo
