#include "topo/random_internet.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <set>
#include <utility>

#include "util/rng.h"

namespace netd::topo {

namespace {

/// Random connected intradomain graph: a random spanning tree (each new
/// router attaches to a uniformly chosen earlier one) plus extra random
/// chords, all with random IGP weights.
std::vector<RouterId> random_intra(Topology& topo, AsId as, std::size_t n,
                                   double extra_frac, int max_weight,
                                   util::Rng& rng) {
  assert(n >= 1);
  std::vector<RouterId> routers;
  routers.reserve(n);
  std::set<std::pair<std::uint32_t, std::uint32_t>> used;
  auto connect = [&](RouterId a, RouterId b) {
    // NB: std::minmax(rvalue, rvalue) would return dangling references.
    const std::pair<std::uint32_t, std::uint32_t> key = {
        std::min(a.value(), b.value()), std::max(a.value(), b.value())};
    if (!used.insert(key).second) return;  // parallel links would collide
                                           // with the canonical link keys
    topo.add_intra_link(a, b,
                        static_cast<int>(rng.uniform(
                            1, static_cast<std::uint32_t>(max_weight))));
  };
  for (std::size_t i = 0; i < n; ++i) {
    routers.push_back(topo.add_router(as));
    if (i > 0) {
      connect(routers[rng.uniform(0, static_cast<std::uint32_t>(i - 1))],
              routers.back());
    }
  }
  const auto extras =
      static_cast<std::size_t>(extra_frac * static_cast<double>(n));
  for (std::size_t k = 0; k < extras && n >= 3; ++k) {
    const RouterId a = rng.pick(routers);
    const RouterId b = rng.pick(routers);
    if (a != b) connect(a, b);
  }
  return routers;
}

}  // namespace

Topology random_internet(const RandomInternetParams& params) {
  assert(params.num_tier1 >= 1);
  util::Rng rng(params.seed);
  Topology topo;

  // Reserve-once arenas: at 100k ASes the append paths must not spend
  // their time reallocating. Estimates deliberately round up.
  {
    const std::size_t ases =
        params.num_tier1 + params.num_tier2 + params.num_stubs;
    const std::size_t routers = params.num_tier1 * params.tier1_routers +
                                params.num_tier2 * params.tier2_routers +
                                params.num_stubs;
    const std::size_t intra = routers + static_cast<std::size_t>(
                                            params.intra_extra_edges *
                                            static_cast<double>(routers));
    const std::size_t inter =
        params.num_tier1 * params.num_tier1 + 2 * params.num_tier2 +
        2 * params.num_stubs +
        static_cast<std::size_t>(params.tier2_peering_frac *
                                 static_cast<double>(params.num_tier2) *
                                 static_cast<double>(params.num_tier2) / 2.0);
    topo.reserve(ases, routers, intra + inter);
  }

  // Tier-1 clique.
  std::vector<AsId> tier1;
  std::vector<std::vector<RouterId>> tier1_routers;
  for (std::size_t i = 0; i < params.num_tier1; ++i) {
    const AsId as = topo.add_as(AsClass::kCore);
    tier1.push_back(as);
    tier1_routers.push_back(random_intra(topo, as, params.tier1_routers,
                                         params.intra_extra_edges,
                                         params.max_igp_weight, rng));
  }
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      topo.add_inter_link(rng.pick(tier1_routers[i]),
                          rng.pick(tier1_routers[j]), Relationship::kPeer);
    }
  }

  // Tier-2: one or two tier-1 providers, lateral peering.
  std::vector<AsId> tier2;
  std::vector<std::vector<RouterId>> tier2_routers;
  for (std::size_t i = 0; i < params.num_tier2; ++i) {
    const AsId as = topo.add_as(AsClass::kTier2);
    tier2.push_back(as);
    tier2_routers.push_back(random_intra(topo, as, params.tier2_routers,
                                         params.intra_extra_edges,
                                         params.max_igp_weight, rng));
    const std::size_t p1 = rng.uniform(
        0, static_cast<std::uint32_t>(params.num_tier1 - 1));
    topo.add_inter_link(rng.pick(tier2_routers[i]),
                        rng.pick(tier1_routers[p1]), Relationship::kProvider);
    if (params.num_tier1 >= 2 && rng.bernoulli(params.tier2_multihoming)) {
      std::size_t p2 = p1;
      while (p2 == p1) {
        p2 = rng.uniform(0, static_cast<std::uint32_t>(params.num_tier1 - 1));
      }
      topo.add_inter_link(rng.pick(tier2_routers[i]),
                          rng.pick(tier1_routers[p2]),
                          Relationship::kProvider);
    }
  }
  for (std::size_t i = 0; i < tier2.size(); ++i) {
    for (std::size_t j = i + 1; j < tier2.size(); ++j) {
      if (rng.bernoulli(params.tier2_peering_frac)) {
        topo.add_inter_link(rng.pick(tier2_routers[i]),
                            rng.pick(tier2_routers[j]), Relationship::kPeer);
      }
    }
  }

  // Stubs: preferential attachment over transit ASes — an AS's chance of
  // gaining the next customer grows with the customers it already has.
  // Weights live in a Fenwick tree so each draw is O(log transit) instead
  // of a linear rescan (the rescan made 100k-stub generation quadratic);
  // the (roll, index) mapping is identical to the old linear walk, so the
  // generated topology is unchanged for any seed.
  std::vector<std::vector<RouterId>*> transit;
  for (auto& r : tier2_routers) transit.push_back(&r);
  for (auto& r : tier1_routers) transit.push_back(&r);
  const std::size_t n_transit = transit.size();
  std::vector<std::uint64_t> fen(n_transit + 1, 0);  // 1-based Fenwick
  std::uint64_t total_weight = 0;
  auto fen_add = [&](std::size_t i, std::uint64_t delta) {
    for (std::size_t k = i + 1; k <= n_transit; k += k & (~k + 1)) {
      fen[k] += delta;
    }
    total_weight += delta;
  };
  // Smallest index i with prefix_sum(0..i) >= roll (roll >= 1).
  auto fen_find = [&](std::uint64_t roll) {
    std::size_t pos = 0;
    std::size_t mask = std::size_t{1} << (std::bit_width(n_transit));
    while (mask > 0) {
      const std::size_t next = pos + mask;
      if (next <= n_transit && fen[next] < roll) {
        pos = next;
        roll -= fen[next];
      }
      mask >>= 1;
    }
    return pos < n_transit ? pos : n_transit - 1;
  };
  for (std::size_t i = 0; i < n_transit; ++i) fen_add(i, 1);
  auto pick_provider = [&]() {
    const std::uint64_t roll =
        rng.uniform(1, static_cast<std::uint32_t>(total_weight));
    return fen_find(roll);
  };
  for (std::size_t s = 0; s < params.num_stubs; ++s) {
    const AsId as = topo.add_as(AsClass::kStub);
    const RouterId r = topo.add_router(as);
    const std::size_t p1 = pick_provider();
    fen_add(p1, 1);
    topo.add_inter_link(r, rng.pick(*transit[p1]), Relationship::kProvider);
    if (rng.bernoulli(params.stub_multihoming)) {
      std::size_t p2 = p1;
      while (p2 == p1 && transit.size() > 1) p2 = pick_provider();
      if (p2 != p1) {
        fen_add(p2, 1);
        topo.add_inter_link(r, rng.pick(*transit[p2]),
                            Relationship::kProvider);
      }
    }
  }
  return topo;
}

}  // namespace netd::topo
