// Identifier and enum vocabulary of the physical-network model.
#pragma once

#include "util/ids.h"

namespace netd::topo {

using AsId = util::Id<struct AsTag>;
using RouterId = util::Id<struct RouterTag>;
using LinkId = util::Id<struct LinkTag>;

/// Each AS originates exactly one prefix, identified by its origin AS.
/// (The paper's "most specific prefix" subtleties collapse under the
/// one-prefix-per-AS model; see DESIGN.md.)
using PrefixId = AsId;

/// Tier of an AS in the paper's evaluation topology.
enum class AsClass {
  kCore,   ///< Abilene / GEANT / WIDE analogues, full-mesh peers
  kTier2,  ///< 12-router hub-and-spoke transit ASes
  kStub,   ///< single-router edge ASes
};

/// Business relationship of the *remote* AS as seen from the local AS over
/// one interdomain link.
enum class Relationship {
  kCustomer,  ///< remote AS pays us (we provide transit)
  kProvider,  ///< we pay the remote AS
  kPeer,      ///< settlement-free peer
};

[[nodiscard]] constexpr Relationship reverse(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return Relationship::kProvider;
    case Relationship::kProvider: return Relationship::kCustomer;
    case Relationship::kPeer: return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

[[nodiscard]] constexpr const char* to_string(AsClass c) {
  switch (c) {
    case AsClass::kCore: return "core";
    case AsClass::kTier2: return "tier2";
    case AsClass::kStub: return "stub";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kProvider: return "provider";
    case Relationship::kPeer: return "peer";
  }
  return "?";
}

}  // namespace netd::topo
