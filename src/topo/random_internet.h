// A randomized Internet-like topology family, independent of the paper's
// Abilene/GEANT/WIDE construction.
//
// Three tiers: a clique of tier-1 ASes (random connected router meshes),
// tier-2 transit ASes multihomed into the tier-1s with optional lateral
// peering, and stub ASes attached preferentially (heavier customer cones
// attract more customers, giving the heavy-tailed degree distribution of
// the real AS graph). Used by bench_topology_robustness to check that the
// NetDiagnoser results do not depend on the specific evaluation topology.
#pragma once

#include <cstdint>

#include "topo/topology.h"

namespace netd::topo {

struct RandomInternetParams {
  std::size_t num_tier1 = 5;
  std::size_t num_tier2 = 25;
  std::size_t num_stubs = 150;
  /// Routers per tier-1 / tier-2 AS (stubs always have one router).
  std::size_t tier1_routers = 14;
  std::size_t tier2_routers = 8;
  /// Extra intradomain edges beyond the random spanning tree, as a
  /// fraction of the router count.
  double intra_extra_edges = 0.5;
  /// Max random IGP weight (weights uniform in [1, max]).
  int max_igp_weight = 5;
  double tier2_multihoming = 0.6;
  double stub_multihoming = 0.3;
  /// Probability that any two tier-2 ASes peer directly.
  double tier2_peering_frac = 0.08;
  std::uint64_t seed = 1;
};

/// ASes 0..num_tier1-1 are the tier-1 clique.
[[nodiscard]] Topology random_internet(const RandomInternetParams& params);

}  // namespace netd::topo
