// Physical network model: ASes, routers, links, relationships, addresses.
//
// The model mirrors what the paper's C-BGP setup needs: a router-level
// multi-AS graph where every interdomain link carries a business
// relationship (for BGP policy) and every intradomain link an IGP weight.
// Links and routers have an up/down state toggled by failure injection.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "topo/types.h"

namespace netd::topo {

struct Router {
  RouterId id;
  AsId as;
  std::string name;     ///< e.g. "AS7:r3"
  std::string address;  ///< synthetic interface address, e.g. "10.7.3.1"
  bool up = true;
};

struct Link {
  LinkId id;
  RouterId a;
  RouterId b;
  int igp_weight = 1;
  bool up = true;
  bool interdomain = false;
  /// Relationship of b's AS as seen from a's AS (interdomain links only).
  Relationship rel_b_from_a = Relationship::kPeer;
};

struct As {
  AsId id;
  AsClass cls = AsClass::kStub;
  std::string name;  ///< e.g. "AS12"
  std::vector<RouterId> routers;
};

class Topology {
 public:
  /// Pre-sizes the AS/router/link arenas (including per-router adjacency
  /// slots) so Internet-scale generation appends without reallocating.
  void reserve(std::size_t ases, std::size_t routers, std::size_t links);

  AsId add_as(AsClass cls);
  RouterId add_router(AsId as);
  /// Adds an intradomain link (both routers must be in the same AS).
  LinkId add_intra_link(RouterId a, RouterId b, int igp_weight = 1);
  /// Adds an interdomain link; `rel_b_from_a` describes b's AS from a's AS
  /// (kCustomer = b's AS is a customer of a's AS).
  LinkId add_inter_link(RouterId a, RouterId b, Relationship rel_b_from_a);

  [[nodiscard]] const As& as_of(AsId id) const { return ases_[id.value()]; }
  [[nodiscard]] const Router& router(RouterId id) const {
    return routers_[id.value()];
  }
  [[nodiscard]] const Link& link(LinkId id) const { return links_[id.value()]; }

  [[nodiscard]] std::size_t num_ases() const { return ases_.size(); }
  [[nodiscard]] std::size_t num_routers() const { return routers_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  [[nodiscard]] const std::vector<As>& ases() const { return ases_; }
  [[nodiscard]] const std::vector<Router>& routers() const { return routers_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// All links (up or down) incident to a router.
  [[nodiscard]] const std::vector<LinkId>& links_of(RouterId r) const {
    return adjacency_[r.value()];
  }

  /// The router at the far end of `l` from `r`.
  [[nodiscard]] RouterId other_end(LinkId l, RouterId r) const;

  /// Relationship of the AS reached by leaving router `r` over interdomain
  /// link `l`, as seen from r's AS.
  [[nodiscard]] Relationship neighbor_relationship(LinkId l, RouterId r) const;

  /// A link is usable iff itself and both endpoint routers are up.
  [[nodiscard]] bool link_usable(LinkId l) const;

  void set_link_up(LinkId l, bool up) { links_[l.value()].up = up; }
  void set_router_up(RouterId r, bool up) { routers_[r.value()].up = up; }

  /// Every AS originates one prefix named after it.
  [[nodiscard]] PrefixId prefix_of(AsId as) const { return as; }

  /// AS owning a router — the IP-to-AS mapping of the paper (exact here).
  [[nodiscard]] AsId as_of_router(RouterId r) const {
    return routers_[r.value()].as;
  }

 private:
  std::vector<As> ases_;
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;  // indexed by router id
};

}  // namespace netd::topo
