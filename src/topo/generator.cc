#include "topo/generator.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <vector>

#include "topo/templates.h"
#include "util/rng.h"

namespace netd::topo {
namespace {

/// AS-level plan entry used before materialization.
struct PlannedAs {
  AsClass cls = AsClass::kStub;
  std::vector<std::size_t> providers;  // plan indices
};

}  // namespace

Topology generate(const GeneratorParams& params) {
  assert(params.target_ases >= 3);
  util::Rng rng(params.seed);

  // ---- Plan the AS-level tree -------------------------------------------
  std::vector<PlannedAs> plan;
  plan.push_back({AsClass::kCore, {}});  // 0: Abilene analogue
  plan.push_back({AsClass::kCore, {}});  // 1: GEANT analogue
  plan.push_back({AsClass::kCore, {}});  // 2: WIDE analogue

  std::vector<std::size_t> cores = {0, 1, 2};
  std::vector<std::size_t> tier2s;
  for (std::size_t i = 0; i < params.pool_tier2; ++i) {
    PlannedAs as{AsClass::kTier2, {}};
    const std::size_t p1 = rng.pick(cores);
    as.providers.push_back(p1);
    if (rng.bernoulli(params.tier2_multihomed_frac)) {
      std::size_t p2 = p1;
      while (p2 == p1) p2 = rng.pick(cores);
      as.providers.push_back(p2);
    }
    tier2s.push_back(plan.size());
    plan.push_back(std::move(as));
  }
  for (std::size_t i = 0; i < params.pool_stubs; ++i) {
    PlannedAs as{AsClass::kStub, {}};
    const bool on_core = tier2s.empty() || rng.bernoulli(params.stub_on_core_frac);
    const std::size_t p1 = on_core ? rng.pick(cores) : rng.pick(tier2s);
    as.providers.push_back(p1);
    if (rng.bernoulli(params.stub_multihomed_frac)) {
      // Second provider drawn from all transit ASes, distinct from p1.
      std::vector<std::size_t> pool = cores;
      pool.insert(pool.end(), tier2s.begin(), tier2s.end());
      std::size_t p2 = p1;
      while (p2 == p1) p2 = rng.pick(pool);
      as.providers.push_back(p2);
    }
    plan.push_back(std::move(as));
  }

  // ---- BFS scale-down from the cores (paper §4) -------------------------
  // Explore provider->customer edges breadth-first; keep the first
  // `target_ases` ASes discovered.
  std::vector<std::vector<std::size_t>> customers(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (std::size_t p : plan[i].providers) customers[p].push_back(i);
  }
  std::vector<bool> selected(plan.size(), false);
  std::vector<std::size_t> order;
  std::deque<std::size_t> frontier = {0, 1, 2};
  selected[0] = selected[1] = selected[2] = true;
  while (!frontier.empty() && order.size() < params.target_ases) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    order.push_back(cur);
    for (std::size_t c : customers[cur]) {
      if (!selected[c] && order.size() + frontier.size() < params.target_ases) {
        selected[c] = true;
        frontier.push_back(c);
      }
    }
  }
  while (!frontier.empty() && order.size() < params.target_ases) {
    order.push_back(frontier.front());
    frontier.pop_front();
  }
  // De-select anything not in `order` (frontier overshoot guard).
  std::fill(selected.begin(), selected.end(), false);
  for (std::size_t i : order) selected[i] = true;

  // ---- Materialize routers and links ------------------------------------
  Topology topo;
  std::vector<AsId> as_of_plan(plan.size(), AsId{});
  std::vector<std::vector<RouterId>> routers_of_plan(plan.size());

  const IntraTemplate* core_tpls[3] = {&abilene_template(), &geant_template(),
                                       &wide_template()};
  for (std::size_t idx : order) {
    const PlannedAs& p = plan[idx];
    const AsId as = topo.add_as(p.cls);
    as_of_plan[idx] = as;
    switch (p.cls) {
      case AsClass::kCore:
        routers_of_plan[idx] = instantiate(topo, as, *core_tpls[idx]);
        break;
      case AsClass::kTier2:
        routers_of_plan[idx] =
            instantiate(topo, as, hub_and_spoke(params.tier2_spokes));
        break;
      case AsClass::kStub:
        routers_of_plan[idx] = {topo.add_router(as)};
        break;
    }
  }

  // Core full mesh: the interconnection points of Abilene/GEANT/WIDE are
  // fixed; we model them as `core_peer_links` peer links between randomly
  // chosen border routers of each pair.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      for (std::size_t k = 0; k < params.core_peer_links; ++k) {
        const RouterId a = rng.pick(routers_of_plan[i]);
        const RouterId b = rng.pick(routers_of_plan[j]);
        topo.add_inter_link(a, b, Relationship::kPeer);
      }
    }
  }

  // Optional tier-2 <-> tier-2 peering (settlement-free regional fabric).
  if (params.tier2_peering_frac > 0.0) {
    std::vector<std::size_t> t2_selected;
    for (std::size_t idx : order) {
      if (plan[idx].cls == AsClass::kTier2) t2_selected.push_back(idx);
    }
    for (std::size_t i = 0; i < t2_selected.size(); ++i) {
      for (std::size_t j = i + 1; j < t2_selected.size(); ++j) {
        if (!rng.bernoulli(params.tier2_peering_frac)) continue;
        const RouterId a = rng.pick(routers_of_plan[t2_selected[i]]);
        const RouterId b = rng.pick(routers_of_plan[t2_selected[j]]);
        topo.add_inter_link(a, b, Relationship::kPeer);
      }
    }
  }

  // Customer-provider links. The customer-side border router is random for
  // tier-2s (any of the 12) and the single router for stubs; the
  // provider-side router is random within the provider AS.
  for (std::size_t idx : order) {
    const PlannedAs& p = plan[idx];
    for (std::size_t prov : p.providers) {
      if (!selected[prov]) continue;  // multihoming link lost in scale-down
      const RouterId cust_r = rng.pick(routers_of_plan[idx]);
      const RouterId prov_r = rng.pick(routers_of_plan[prov]);
      // From the customer router's viewpoint the neighbor is its provider.
      topo.add_inter_link(cust_r, prov_r, Relationship::kProvider);
    }
  }
  return topo;
}

Topology tiny_topology() {
  // Mirrors the shape of the paper's Fig. 2 at small scale:
  //   AS0, AS1: 3-router cores (triangle), peered.
  //   AS2, AS3: 3-router tier-2s (chain), customers of a core each.
  //   AS4..AS7: stubs; AS4,AS5 under AS2; AS6,AS7 under AS3; AS7 multihomed
  //   to AS2 as well.
  Topology t;
  const AsId core0 = t.add_as(AsClass::kCore);
  const AsId core1 = t.add_as(AsClass::kCore);
  const AsId t2a = t.add_as(AsClass::kTier2);
  const AsId t2b = t.add_as(AsClass::kTier2);
  const AsId s4 = t.add_as(AsClass::kStub);
  const AsId s5 = t.add_as(AsClass::kStub);
  const AsId s6 = t.add_as(AsClass::kStub);
  const AsId s7 = t.add_as(AsClass::kStub);

  auto triangle = [&](AsId as) {
    RouterId a = t.add_router(as), b = t.add_router(as), c = t.add_router(as);
    t.add_intra_link(a, b);
    t.add_intra_link(b, c);
    t.add_intra_link(a, c);
    return std::vector<RouterId>{a, b, c};
  };
  auto chain = [&](AsId as) {
    RouterId a = t.add_router(as), b = t.add_router(as), c = t.add_router(as);
    t.add_intra_link(a, b);
    t.add_intra_link(b, c);
    return std::vector<RouterId>{a, b, c};
  };

  const auto c0 = triangle(core0);
  const auto c1 = triangle(core1);
  const auto a = chain(t2a);
  const auto b = chain(t2b);
  const RouterId r4 = t.add_router(s4);
  const RouterId r5 = t.add_router(s5);
  const RouterId r6 = t.add_router(s6);
  const RouterId r7 = t.add_router(s7);

  t.add_inter_link(c0[1], c1[1], Relationship::kPeer);
  t.add_inter_link(a[0], c0[0], Relationship::kProvider);  // t2a -> core0
  t.add_inter_link(b[0], c1[0], Relationship::kProvider);  // t2b -> core1
  t.add_inter_link(r4, a[2], Relationship::kProvider);
  t.add_inter_link(r5, a[1], Relationship::kProvider);
  t.add_inter_link(r6, b[2], Relationship::kProvider);
  t.add_inter_link(r7, b[1], Relationship::kProvider);
  t.add_inter_link(r7, a[1], Relationship::kProvider);  // multihomed stub
  return t;
}

}  // namespace netd::topo
