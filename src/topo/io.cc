#include "topo/io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <string_view>

namespace netd::topo {

namespace {

const char* class_name(AsClass c) { return to_string(c); }

std::optional<AsClass> parse_class(std::string_view s) {
  if (s == "core") return AsClass::kCore;
  if (s == "tier2") return AsClass::kTier2;
  if (s == "stub") return AsClass::kStub;
  return std::nullopt;
}

std::optional<Relationship> parse_rel(std::string_view s) {
  if (s == "customer") return Relationship::kCustomer;
  if (s == "provider") return Relationship::kProvider;
  if (s == "peer") return Relationship::kPeer;
  return std::nullopt;
}

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

/// Whitespace-token scanner over one line. A 100k-AS file has ~500k
/// records; the istringstream-per-line this replaces spent the load in
/// allocator and locale machinery.
class Tokens {
 public:
  explicit Tokens(std::string_view line) : rest_(line) {}

  /// Next whitespace-delimited token; empty when the line is exhausted.
  std::string_view next() {
    std::size_t b = rest_.find_first_not_of(" \t\r");
    if (b == std::string_view::npos) {
      rest_ = {};
      return {};
    }
    std::size_t e = rest_.find_first_of(" \t\r", b);
    std::string_view tok = rest_.substr(b, e == std::string_view::npos
                                               ? std::string_view::npos
                                               : e - b);
    rest_ = e == std::string_view::npos ? std::string_view{} : rest_.substr(e);
    return tok;
  }

  /// Parses the next token as an unsigned integer; false on absence or
  /// trailing garbage.
  template <typename T>
  bool next_num(T& out) {
    const std::string_view tok = next();
    if (tok.empty()) return false;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return ec == std::errc{} && p == tok.data() + tok.size();
  }

 private:
  std::string_view rest_;
};

}  // namespace

void write_text(const Topology& topo, std::ostream& os) {
  os << "netd-topology v2\n";
  for (const auto& as : topo.ases()) {
    os << "as " << as.id.value() << " " << class_name(as.cls) << " "
       << as.routers.size() << "\n";
  }
  for (const auto& link : topo.links()) {
    if (link.interdomain) {
      os << "inter " << link.a.value() << " " << link.b.value() << " "
         << to_string(link.rel_b_from_a) << "\n";
    } else {
      os << "intra " << link.a.value() << " " << link.b.value() << " "
         << link.igp_weight << "\n";
    }
  }
  os << "end " << topo.num_routers() << " " << topo.num_links() << "\n";
}

std::optional<Topology> read_text(std::istream& is, std::string* error) {
  std::string line;
  if (!std::getline(is, line)) {
    fail(error, "missing 'netd-topology' header");
    return std::nullopt;
  }
  int version = 0;
  if (line == "netd-topology v1") {
    version = 1;
  } else if (line == "netd-topology v2") {
    version = 2;
  } else {
    fail(error, "missing 'netd-topology v1|v2' header");
    return std::nullopt;
  }
  Topology topo;
  std::size_t line_no = 1;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Tokens toks{line};
    const std::string_view kind = toks.next();
    if (kind.empty()) continue;  // whitespace-only line
    // Built only on error paths; the hot path stays allocation-free.
    const auto where = [&] { return "line " + std::to_string(line_no); };
    if (saw_end) {
      fail(error, where() + ": record after 'end' footer");
      return std::nullopt;
    }
    if (kind == "as") {
      std::string_view cls;
      std::size_t count = 0;
      if (version >= 2) {
        // v2 carries the AS id so a duplicated or reordered `as` line is
        // an error rather than a silently renumbered topology.
        std::size_t id = 0;
        if (!toks.next_num(id) || (cls = toks.next()).empty() ||
            !toks.next_num(count)) {
          fail(error, where() + ": malformed 'as'");
          return std::nullopt;
        }
        if (id < topo.num_ases()) {
          fail(error, where() + ": duplicate AS id " + std::to_string(id));
          return std::nullopt;
        }
        if (id > topo.num_ases()) {
          fail(error, where() + ": non-contiguous AS id " + std::to_string(id) +
                          " (expected " + std::to_string(topo.num_ases()) +
                          ")");
          return std::nullopt;
        }
      } else if ((cls = toks.next()).empty() || !toks.next_num(count)) {
        fail(error, where() + ": malformed 'as'");
        return std::nullopt;
      }
      const auto c = parse_class(cls);
      if (!c) {
        fail(error, where() + ": unknown AS class '" + std::string(cls) + "'");
        return std::nullopt;
      }
      const AsId as = topo.add_as(*c);
      for (std::size_t i = 0; i < count; ++i) topo.add_router(as);
    } else if (kind == "intra" || kind == "inter") {
      std::uint32_t a = 0, b = 0;
      if (!toks.next_num(a) || !toks.next_num(b)) {
        fail(error, where() + ": malformed link");
        return std::nullopt;
      }
      if (a >= topo.num_routers() || b >= topo.num_routers()) {
        fail(error, where() + ": dangling link endpoint: router id out of "
                             "range");
        return std::nullopt;
      }
      if (kind == "intra") {
        int weight = 1;
        if (!toks.next_num(weight)) {
          fail(error, where() + ": missing IGP weight");
          return std::nullopt;
        }
        if (topo.as_of_router(RouterId{a}) != topo.as_of_router(RouterId{b})) {
          fail(error, where() + ": intra link spans two ASes");
          return std::nullopt;
        }
        topo.add_intra_link(RouterId{a}, RouterId{b}, weight);
      } else {
        const std::string_view rel = toks.next();
        if (rel.empty()) {
          fail(error, where() + ": missing relationship");
          return std::nullopt;
        }
        const auto r = parse_rel(rel);
        if (!r) {
          fail(error,
               where() + ": unknown relationship '" + std::string(rel) + "'");
          return std::nullopt;
        }
        if (topo.as_of_router(RouterId{a}) == topo.as_of_router(RouterId{b})) {
          fail(error, where() + ": inter link within one AS");
          return std::nullopt;
        }
        topo.add_inter_link(RouterId{a}, RouterId{b}, *r);
      }
    } else if (kind == "end" && version >= 2) {
      std::size_t routers = 0, links = 0;
      if (!toks.next_num(routers) || !toks.next_num(links)) {
        fail(error, where() + ": malformed 'end' footer");
        return std::nullopt;
      }
      if (routers != topo.num_routers() || links != topo.num_links()) {
        fail(error, where() + ": 'end' footer counts (" +
                        std::to_string(routers) + " routers, " +
                        std::to_string(links) + " links) do not match the "
                        "records read (" +
                        std::to_string(topo.num_routers()) + ", " +
                        std::to_string(topo.num_links()) + ") — truncated "
                        "or corrupted file");
        return std::nullopt;
      }
      saw_end = true;
    } else {
      fail(error, where() + ": unknown record '" + std::string(kind) + "'");
      return std::nullopt;
    }
  }
  if (version >= 2 && !saw_end) {
    fail(error, "missing 'end' footer — truncated file");
    return std::nullopt;
  }
  return topo;
}

void write_dot(const Topology& topo, std::ostream& os) {
  os << "graph netd {\n  overlap=false;\n  node [shape=circle, fontsize=9];\n";
  for (const auto& as : topo.ases()) {
    os << "  subgraph cluster_as" << as.id.value() << " {\n"
       << "    label=\"" << as.name << " (" << class_name(as.cls) << ")\";\n";
    for (RouterId r : as.routers) {
      os << "    r" << r.value() << " [label=\"" << topo.router(r).name
         << "\"];\n";
    }
    os << "  }\n";
  }
  for (const auto& link : topo.links()) {
    os << "  r" << link.a.value() << " -- r" << link.b.value();
    if (link.interdomain) {
      const char* style =
          link.rel_b_from_a == Relationship::kPeer ? "dashed" : "bold";
      os << " [style=" << style << "]";
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace netd::topo
