#include "topo/io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace netd::topo {

namespace {

const char* class_name(AsClass c) { return to_string(c); }

std::optional<AsClass> parse_class(const std::string& s) {
  if (s == "core") return AsClass::kCore;
  if (s == "tier2") return AsClass::kTier2;
  if (s == "stub") return AsClass::kStub;
  return std::nullopt;
}

std::optional<Relationship> parse_rel(const std::string& s) {
  if (s == "customer") return Relationship::kCustomer;
  if (s == "provider") return Relationship::kProvider;
  if (s == "peer") return Relationship::kPeer;
  return std::nullopt;
}

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

void write_text(const Topology& topo, std::ostream& os) {
  os << "netd-topology v2\n";
  for (const auto& as : topo.ases()) {
    os << "as " << as.id.value() << " " << class_name(as.cls) << " "
       << as.routers.size() << "\n";
  }
  for (const auto& link : topo.links()) {
    if (link.interdomain) {
      os << "inter " << link.a.value() << " " << link.b.value() << " "
         << to_string(link.rel_b_from_a) << "\n";
    } else {
      os << "intra " << link.a.value() << " " << link.b.value() << " "
         << link.igp_weight << "\n";
    }
  }
  os << "end " << topo.num_routers() << " " << topo.num_links() << "\n";
}

std::optional<Topology> read_text(std::istream& is, std::string* error) {
  std::string line;
  if (!std::getline(is, line)) {
    fail(error, "missing 'netd-topology' header");
    return std::nullopt;
  }
  int version = 0;
  if (line == "netd-topology v1") {
    version = 1;
  } else if (line == "netd-topology v2") {
    version = 2;
  } else {
    fail(error, "missing 'netd-topology v1|v2' header");
    return std::nullopt;
  }
  Topology topo;
  std::size_t line_no = 1;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    const std::string where = "line " + std::to_string(line_no);
    if (saw_end) {
      fail(error, where + ": record after 'end' footer");
      return std::nullopt;
    }
    if (kind == "as") {
      std::string cls;
      std::size_t count = 0;
      if (version >= 2) {
        // v2 carries the AS id so a duplicated or reordered `as` line is
        // an error rather than a silently renumbered topology.
        std::size_t id = 0;
        if (!(ss >> id >> cls >> count)) {
          fail(error, where + ": malformed 'as'");
          return std::nullopt;
        }
        if (id < topo.num_ases()) {
          fail(error, where + ": duplicate AS id " + std::to_string(id));
          return std::nullopt;
        }
        if (id > topo.num_ases()) {
          fail(error, where + ": non-contiguous AS id " + std::to_string(id) +
                          " (expected " + std::to_string(topo.num_ases()) +
                          ")");
          return std::nullopt;
        }
      } else if (!(ss >> cls >> count)) {
        fail(error, where + ": malformed 'as'");
        return std::nullopt;
      }
      const auto c = parse_class(cls);
      if (!c) {
        fail(error, where + ": unknown AS class '" + cls + "'");
        return std::nullopt;
      }
      const AsId as = topo.add_as(*c);
      for (std::size_t i = 0; i < count; ++i) topo.add_router(as);
    } else if (kind == "intra" || kind == "inter") {
      std::uint32_t a = 0, b = 0;
      if (!(ss >> a >> b)) {
        fail(error, where + ": malformed link");
        return std::nullopt;
      }
      if (a >= topo.num_routers() || b >= topo.num_routers()) {
        fail(error, where + ": dangling link endpoint: router id out of "
                            "range");
        return std::nullopt;
      }
      if (kind == "intra") {
        int weight = 1;
        if (!(ss >> weight)) {
          fail(error, where + ": missing IGP weight");
          return std::nullopt;
        }
        if (topo.as_of_router(RouterId{a}) != topo.as_of_router(RouterId{b})) {
          fail(error, where + ": intra link spans two ASes");
          return std::nullopt;
        }
        topo.add_intra_link(RouterId{a}, RouterId{b}, weight);
      } else {
        std::string rel;
        if (!(ss >> rel)) {
          fail(error, where + ": missing relationship");
          return std::nullopt;
        }
        const auto r = parse_rel(rel);
        if (!r) {
          fail(error, where + ": unknown relationship '" + rel + "'");
          return std::nullopt;
        }
        if (topo.as_of_router(RouterId{a}) == topo.as_of_router(RouterId{b})) {
          fail(error, where + ": inter link within one AS");
          return std::nullopt;
        }
        topo.add_inter_link(RouterId{a}, RouterId{b}, *r);
      }
    } else if (kind == "end" && version >= 2) {
      std::size_t routers = 0, links = 0;
      if (!(ss >> routers >> links)) {
        fail(error, where + ": malformed 'end' footer");
        return std::nullopt;
      }
      if (routers != topo.num_routers() || links != topo.num_links()) {
        fail(error, where + ": 'end' footer counts (" +
                        std::to_string(routers) + " routers, " +
                        std::to_string(links) + " links) do not match the "
                        "records read (" +
                        std::to_string(topo.num_routers()) + ", " +
                        std::to_string(topo.num_links()) + ") — truncated "
                        "or corrupted file");
        return std::nullopt;
      }
      saw_end = true;
    } else {
      fail(error, where + ": unknown record '" + kind + "'");
      return std::nullopt;
    }
  }
  if (version >= 2 && !saw_end) {
    fail(error, "missing 'end' footer — truncated file");
    return std::nullopt;
  }
  return topo;
}

void write_dot(const Topology& topo, std::ostream& os) {
  os << "graph netd {\n  overlap=false;\n  node [shape=circle, fontsize=9];\n";
  for (const auto& as : topo.ases()) {
    os << "  subgraph cluster_as" << as.id.value() << " {\n"
       << "    label=\"" << as.name << " (" << class_name(as.cls) << ")\";\n";
    for (RouterId r : as.routers) {
      os << "    r" << r.value() << " [label=\"" << topo.router(r).name
         << "\"];\n";
    }
    os << "  }\n";
  }
  for (const auto& link : topo.links()) {
    os << "  r" << link.a.value() << " -- r" << link.b.value();
    if (link.interdomain) {
      const char* style =
          link.rel_b_from_a == Relationship::kPeer ? "dashed" : "bold";
      os << " [style=" << style << "]";
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace netd::topo
