// Generator for the paper's evaluation topology (§4 "Network topology").
//
// Reproduces the construction: three full-mesh core ASes (Abilene, GEANT,
// WIDE router-level templates), a pool of tier-2 transit ASes (12-router
// hub-and-spoke, 50% multihomed) and single-router stub ASes (25%
// multihomed), scaled down by a breadth-first search from the cores that
// keeps the first `target_ases` ASes — 165 by default, yielding the paper's
// 3 core / 22 tier-2 / 140 stub split.
#pragma once

#include <cstdint>

#include "topo/topology.h"

namespace netd::topo {

struct GeneratorParams {
  /// Pool sizes before BFS scale-down.
  std::size_t pool_tier2 = 22;
  std::size_t pool_stubs = 200;
  /// BFS scale-down target (paper: 165).
  std::size_t target_ases = 165;
  /// Fraction of tier-2 / stub ASes with two providers (paper: 0.5 / 0.25).
  double tier2_multihomed_frac = 0.5;
  double stub_multihomed_frac = 0.25;
  /// Fraction of stubs whose (first) provider is a core AS.
  double stub_on_core_frac = 0.15;
  /// Spokes per tier-2 AS (12-router hub-and-spoke => 11).
  std::size_t tier2_spokes = 11;
  /// Peer links added between each pair of core ASes.
  std::size_t core_peer_links = 2;
  /// Probability that a pair of tier-2 ASes peers directly (settlement-
  /// free). The paper's topology has none; raising this adds the path
  /// diversity of regional peering fabrics.
  double tier2_peering_frac = 0.0;
  std::uint64_t seed = 1;
};

/// Builds the multi-AS topology. ASes 0..2 are always the three cores.
[[nodiscard]] Topology generate(const GeneratorParams& params);

/// A tiny fixed topology handy for unit tests and the examples: two core
/// ASes, two tier-2s and four stubs with known ids.
[[nodiscard]] Topology tiny_topology();

}  // namespace netd::topo
