#include "topo/topology.h"

namespace netd::topo {

void Topology::reserve(std::size_t ases, std::size_t routers,
                       std::size_t links) {
  ases_.reserve(ases);
  routers_.reserve(routers);
  links_.reserve(links);
  adjacency_.reserve(routers);
}

AsId Topology::add_as(AsClass cls) {
  const AsId id{static_cast<std::uint32_t>(ases_.size())};
  As as;
  as.id = id;
  as.cls = cls;
  as.name = "AS" + std::to_string(id.value());
  ases_.push_back(std::move(as));
  return id;
}

RouterId Topology::add_router(AsId as) {
  assert(as.value() < ases_.size());
  const RouterId id{static_cast<std::uint32_t>(routers_.size())};
  const auto local_index =
      static_cast<std::uint32_t>(ases_[as.value()].routers.size());
  Router r;
  r.id = id;
  r.as = as;
  r.name = ases_[as.value()].name + ":r" + std::to_string(local_index);
  r.address = "10." + std::to_string(as.value()) + "." +
              std::to_string(local_index) + ".1";
  routers_.push_back(std::move(r));
  ases_[as.value()].routers.push_back(id);
  adjacency_.emplace_back();
  return id;
}

LinkId Topology::add_intra_link(RouterId a, RouterId b, int igp_weight) {
  assert(router(a).as == router(b).as);
  assert(a != b);
  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  links_.push_back(Link{id, a, b, igp_weight, /*up=*/true,
                        /*interdomain=*/false, Relationship::kPeer});
  adjacency_[a.value()].push_back(id);
  adjacency_[b.value()].push_back(id);
  return id;
}

LinkId Topology::add_inter_link(RouterId a, RouterId b,
                                Relationship rel_b_from_a) {
  assert(router(a).as != router(b).as);
  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  links_.push_back(Link{id, a, b, /*igp_weight=*/1, /*up=*/true,
                        /*interdomain=*/true, rel_b_from_a});
  adjacency_[a.value()].push_back(id);
  adjacency_[b.value()].push_back(id);
  return id;
}

RouterId Topology::other_end(LinkId l, RouterId r) const {
  const Link& lk = link(l);
  assert(lk.a == r || lk.b == r);
  return lk.a == r ? lk.b : lk.a;
}

Relationship Topology::neighbor_relationship(LinkId l, RouterId r) const {
  const Link& lk = link(l);
  assert(lk.interdomain);
  assert(lk.a == r || lk.b == r);
  return lk.a == r ? lk.rel_b_from_a : reverse(lk.rel_b_from_a);
}

bool Topology::link_usable(LinkId l) const {
  const Link& lk = link(l);
  return lk.up && router(lk.a).up && router(lk.b).up;
}

}  // namespace netd::topo
