// Topology serialization: a line-oriented text format (exact round-trip)
// and Graphviz DOT export for visualization.
//
// Text format v2 (what write_text emits):
//   netd-topology v2
//   as <id> <class>(core|tier2|stub) <router-count>  # one per AS, id order
//   intra <router-a> <router-b> <igp-weight>
//   inter <router-a> <router-b> <rel-of-b-from-a>(customer|provider|peer)
//   end <router-count> <link-count>                  # footer, last record
//
// v2 is self-checking: explicit AS ids catch duplicated/reordered `as`
// lines, link endpoints must name existing routers (no dangling ids), and
// the mandatory `end` footer with total counts catches truncation — a
// file cut off mid-stream fails to load instead of yielding a silently
// smaller topology. The v1 format (same records, no AS ids, no footer) is
// still read for old files.
//
// Router ids are the global ids the loader reproduces by re-adding ASes
// and routers in order, so a save/load round-trip is bit-exact.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "topo/topology.h"

namespace netd::topo {

void write_text(const Topology& topo, std::ostream& os);

/// Parses the text format; returns std::nullopt and fills `error` (when
/// non-null) on malformed input.
[[nodiscard]] std::optional<Topology> read_text(std::istream& is,
                                                std::string* error = nullptr);

/// Graphviz DOT (undirected), routers grouped into AS clusters,
/// interdomain links styled by relationship.
void write_dot(const Topology& topo, std::ostream& os);

}  // namespace netd::topo
