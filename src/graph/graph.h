// Directed graph used by the inference (tomography) side of NetDiagnoser.
//
// This is the graph "G" of the paper: the union of traceroute paths between
// sensors. Nodes are interned by string label (router address, sensor name,
// unidentified-hop token, or logical-node label like "y1(B)"); edges are
// directed hops between consecutive labels. The diagnosis algorithms operate
// purely on NodeId/EdgeId index spaces.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace netd::graph {

using NodeId = util::Id<struct NodeTag>;
using EdgeId = util::Id<struct EdgeTag>;

/// What a node in the inferred graph stands for.
enum class NodeKind {
  kRouter,        ///< identified router interface
  kSensor,        ///< probing sensor (end host)
  kUnidentified,  ///< traceroute star / private address (UH)
  kLogical,       ///< synthetic node introduced by logical-link expansion
};

struct Node {
  std::string label;
  NodeKind kind = NodeKind::kRouter;
  /// AS number of the hop, or -1 when unknown (UHs before LG tagging).
  int asn = -1;
};

struct Edge {
  NodeId src;
  NodeId dst;
};

/// A directed source→destination walk recorded as consecutive edges.
struct Path {
  NodeId src;
  NodeId dst;
  std::vector<EdgeId> edges;
};

class Graph {
 public:
  /// Hard cap on node/edge ids: the edge lookup packs two node ids into
  /// one uint64_t (32 bits each) and several consumers index edges with
  /// signed 32-bit ints, so interning aborts loudly rather than wrap once
  /// a graph reaches 2^31 nodes or edges (reachable at 100k-AS scale with
  /// per-prefix logical expansion).
  static constexpr std::uint32_t kMaxIds = 0x80000000u;

  /// Returns the node with this label, creating it if absent. Kind/asn are
  /// set on creation; on re-intern an unknown asn may be upgraded to a
  /// known one but never changed to a different known value.
  NodeId intern_node(std::string_view label, NodeKind kind, int asn = -1);

  [[nodiscard]] std::optional<NodeId> find_node(std::string_view label) const;

  /// Returns the edge src→dst, creating it if absent.
  EdgeId intern_edge(NodeId src, NodeId dst);

  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId src, NodeId dst) const;

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id.value()]; }
  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_[id.value()]; }

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Builds a path by interning every consecutive pair of `labels` as an
  /// edge. Each label must already be interned.
  Path make_path(const std::vector<std::string>& labels);

  /// Pre-sizes the arenas (node/edge vectors and lookup tables) so
  /// large-mesh construction does not rehash/reallocate while interning.
  void reserve(std::size_t nodes, std::size_t edges);

  /// Human-readable "u -> v" form of an edge, for diagnostics.
  [[nodiscard]] std::string edge_label(EdgeId id) const;

 private:
  struct LabelHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct LabelEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  // Heterogeneous lookup: find_node(string_view) must not allocate a
  // temporary std::string on the mesh-interning hot path.
  std::unordered_map<std::string, NodeId, LabelHash, LabelEq> node_by_label_;
  // Edge lookup keyed by (src, dst) packed into 64 bits.
  std::unordered_map<std::uint64_t, EdgeId> edge_by_pair_;

  static std::uint64_t pair_key(NodeId a, NodeId b) {
    // Safe for any id intern_node can hand out: ids are capped below
    // kMaxIds (< 2^32), so the shifted halves cannot collide.
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }
};

}  // namespace netd::graph
