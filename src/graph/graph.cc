#include "graph/graph.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace netd::graph {

namespace {

[[noreturn]] void id_overflow(const char* what) {
  std::fprintf(stderr,
               "graph::Graph: %s id space exhausted (2^31 entries) — the "
               "packed pair key and signed index consumers would overflow\n",
               what);
  std::abort();
}

}  // namespace

NodeId Graph::intern_node(std::string_view label, NodeKind kind, int asn) {
  auto it = node_by_label_.find(label);
  if (it != node_by_label_.end()) {
    Node& n = nodes_[it->second.value()];
    if (n.asn == -1) n.asn = asn;
    return it->second;
  }
  if (nodes_.size() >= kMaxIds) id_overflow("node");
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{std::string(label), kind, asn});
  node_by_label_.emplace(std::string(label), id);
  return id;
}

std::optional<NodeId> Graph::find_node(std::string_view label) const {
  auto it = node_by_label_.find(label);
  if (it == node_by_label_.end()) return std::nullopt;
  return it->second;
}

EdgeId Graph::intern_edge(NodeId src, NodeId dst) {
  assert(src.valid() && dst.valid());
  assert(src != dst && "self-loops never occur in traceroute paths");
  const auto key = pair_key(src, dst);
  auto it = edge_by_pair_.find(key);
  if (it != edge_by_pair_.end()) return it->second;
  if (edges_.size() >= kMaxIds) id_overflow("edge");
  const EdgeId id{static_cast<std::uint32_t>(edges_.size())};
  edges_.push_back(Edge{src, dst});
  edge_by_pair_.emplace(key, id);
  return id;
}

std::optional<EdgeId> Graph::find_edge(NodeId src, NodeId dst) const {
  auto it = edge_by_pair_.find(pair_key(src, dst));
  if (it == edge_by_pair_.end()) return std::nullopt;
  return it->second;
}

Path Graph::make_path(const std::vector<std::string>& labels) {
  assert(labels.size() >= 2);
  Path p;
  auto first = find_node(labels.front());
  auto last = find_node(labels.back());
  assert(first && last);
  p.src = *first;
  p.dst = *last;
  p.edges.reserve(labels.size() - 1);
  for (std::size_t i = 0; i + 1 < labels.size(); ++i) {
    auto a = find_node(labels[i]);
    auto b = find_node(labels[i + 1]);
    assert(a && b);
    p.edges.push_back(intern_edge(*a, *b));
  }
  return p;
}

void Graph::reserve(std::size_t nodes, std::size_t edges) {
  nodes_.reserve(nodes);
  node_by_label_.reserve(nodes);
  edges_.reserve(edges);
  edge_by_pair_.reserve(edges);
}

std::string Graph::edge_label(EdgeId id) const {
  const Edge& e = edge(id);
  return node(e.src).label + " -> " + node(e.dst).label;
}

}  // namespace netd::graph
