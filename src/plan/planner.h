// Identifiability-driven probe planning: choose which sensors to deploy.
//
// Given a topology, a candidate sensor pool and a probe budget k, the
// planner greedily selects the k candidates whose pairwise probe mesh
// maximizes
//
//     f(S) = distinct(S) + identifiable(S)
//
// at a configurable granularity (links, ASes or routers/nodes), where
// distinct counts the distinguishable hitting-set classes induced by the
// path set of S and identifiable the singleton classes (elements whose
// single failure is exactly localizable — see identifiability.h). Adding
// a path only refines the partition — classes split, never merge — so f
// is monotone.
//
// f is *not* submodular: every selection round hands every remaining
// candidate two brand-new probe paths (to and from the new sensor), so
// marginal gains grow across rounds — the early-round regime is
// supermodular, and CELF-style stale-gain skipping (which needs cached
// gains to be upper bounds) would degenerate to selecting candidates in
// index order. The greedy is therefore exact: every unchosen candidate is
// re-scored each round. What *is* cached, epoch-stamped in the same style
// as the PR 6 solver kernel, is one layer down: the BFS trees never
// change during planning, so a candidate's path to a selected sensor is
// immutable once that sensor is chosen. Each candidate keeps an
// append-only arena of materialized path element lists, stamped with the
// number of selection rounds it incorporates; an evaluation walks only
// the paths the stamp says are missing (two per round) and re-groups over
// the arena. Scratch arrays are likewise stamp-invalidated per evaluation
// instead of cleared, so no per-eval O(elements) reset exists.
//
// Paths come from probe::PathOracle — BFS shortest-path trees per
// candidate, identical tie-break to SyntheticProber — so the mesh the
// planner scores is byte-for-byte the mesh probe::SyntheticProber would
// measure for the chosen placement. Tree construction is sharded over a
// util::ThreadPool (each candidate owns its slot), making the result
// byte-identical for every thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "plan/identifiability.h"
#include "probe/sensors.h"
#include "probe/synthetic.h"
#include "topo/topology.h"

namespace netd::plan {

struct PlannerConfig {
  /// Sensors to select from the candidate pool (clamped to pool size).
  std::size_t budget = 10;
  /// Element granularity the objective optimizes. The report always
  /// carries all three.
  Granularity objective = Granularity::kLink;
  /// Worker threads for the per-candidate BFS precompute; 0 = one per
  /// hardware thread. The placement and report are byte-identical for
  /// every value.
  std::size_t num_threads = 1;
  /// Reuse each candidate's round-stamped path-materialization arena
  /// across evaluations. Disabling rematerializes every path on every
  /// evaluation — byte-identical selections and gains, more path walks;
  /// the differential test pins the equivalence.
  bool lazy = true;
  /// Measure the planned mesh (SyntheticProber) and attach the full
  /// IdentifiabilityReport to the result. Callers that only need the
  /// placement (exp::Runner) turn this off.
  bool measure_report = true;
};

struct PlanResult {
  /// Chosen sensors, in selection order.
  std::vector<probe::Sensor> sensors;
  /// Indices of the chosen sensors into candidates().
  std::vector<std::size_t> chosen;
  /// Marginal objective gain of each pick (gains[0] is always 0: with no
  /// prior sensor there are no probe pairs yet, so the first pick is the
  /// lowest-index candidate).
  std::vector<double> gains;
  /// Final objective value f(S) = distinct + identifiable at the
  /// configured granularity, over the planner's ground-truth path model.
  double objective = 0.0;
  /// Identifiability of the planned mesh, measured through the real
  /// pipeline (SyntheticProber mesh -> diagnosis graph). Zero-valued when
  /// PlannerConfig::measure_report is off. Not numerically identical to
  /// `objective`: the diagnosis graph also counts each sensor's
  /// own access edge (sensor -> attach router), which the objective
  /// deliberately excludes — those edges exist only because the sensor
  /// was deployed, so scoring them would reward every candidate for
  /// manufacturing its own trivially-identifiable element.
  IdentifiabilityReport report;
};

class Planner {
 public:
  /// `topo` must outlive the planner. `candidates` is the sensor pool
  /// (e.g. probe::place_sensors over stub ASes); selection is a subset.
  Planner(const topo::Topology& topo, std::vector<probe::Sensor> candidates,
          PlannerConfig cfg);

  [[nodiscard]] PlanResult plan();

  /// Objective value f = distinct + identifiable (configured granularity)
  /// of an arbitrary subset of the candidate pool, computed from scratch
  /// over the same path model — the planned-vs-random yardstick and the
  /// cross-check for the incremental partition (plan().objective equals
  /// evaluate(plan().chosen); pinned by tests).
  [[nodiscard]] double evaluate(const std::vector<std::size_t>& chosen) const;

  [[nodiscard]] const std::vector<probe::Sensor>& candidates() const {
    return candidates_;
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Ensures trees_[c] exists for every candidate (ThreadPool-sharded).
  void build_trees();
  /// Appends the dense element ids (objective granularity) of the path
  /// from candidate `src` to candidate `dst` to `out`, where `t` is the
  /// BFS tree rooted at src's attach router. Returns false — appending
  /// nothing — when dst is unreachable. Elements may repeat on one path
  /// (an AS left and re-entered); consumers dedup by stamp.
  bool path_elements(const probe::PathOracle::Tree& t, std::size_t src,
                     std::size_t dst, std::vector<topo::LinkId>& links,
                     std::vector<std::uint32_t>& out) const;

  /// One candidate's materialized paths to/from the selected sensors, in
  /// selection order (c->s then s->c per sensor; unreachable pairs keep
  /// an empty span so spans stay aligned with rounds). `rounds` is the
  /// epoch stamp: how many selected sensors the arena incorporates.
  struct PathArena {
    std::vector<std::uint32_t> elems;     ///< dense element ids
    std::vector<std::uint32_t> path_off;  ///< CSR offsets, size paths+1
    std::size_t rounds = 0;

    void clear() {
      elems.clear();
      path_off.clear();
      rounds = 0;
    }
  };

  /// Appends the paths of selected_[arena.rounds..] to `arena` and
  /// advances its stamp.
  void extend_arena(std::size_t cand, PathArena& arena);

  /// Evaluates the marginal gain of adding candidate `cand` to the
  /// current selection; with `commit`, also applies the refinement to the
  /// partition state. Returns delta(distinct) + delta(identifiable).
  std::int64_t marginal_gain(std::size_t cand, bool commit);

  const topo::Topology& topo_;
  std::vector<probe::Sensor> candidates_;
  PlannerConfig cfg_;
  probe::PathOracle oracle_;
  std::vector<probe::PathOracle::Tree> trees_;

  // ---- incremental partition state (over dense element ids) ----
  std::size_t num_elements_ = 0;
  std::vector<std::uint32_t> class_of_;    ///< per element; kNone = uncovered
  std::vector<std::uint32_t> class_size_;  ///< per class id (dead entries 0)
  std::int64_t num_classes_ = 0;
  std::int64_t num_identifiable_ = 0;
  std::vector<std::size_t> selected_;  ///< candidate indices, pick order
  std::vector<PathArena> arenas_;      ///< per candidate (cfg_.lazy only)
  PathArena scratch_arena_;            ///< rematerialization (lazy off)

  // ---- per-evaluation scratch, epoch-stamped so no clearing is O(E) ----
  std::uint32_t eval_epoch_ = 0;
  std::vector<std::uint32_t> elem_stamp_;      ///< last eval touching e
  std::vector<std::uint32_t> elem_last_q_;     ///< last new path covering e
  std::vector<std::uint32_t> elem_pattern_;    ///< e's new-path signature
  std::vector<std::uint32_t> elem_old_class_;  ///< class at stamping time
  std::vector<std::uint32_t> touched_;    ///< elements on new paths
  std::vector<topo::LinkId> path_scratch_;
};

}  // namespace netd::plan
