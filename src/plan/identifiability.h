// Identifiability metrics generalizing core::diagnosability (§4's D(G))
// to three failure granularities, in the sense of the Boolean network
// tomography literature (Ma et al., arXiv:1509.06333; Bartolini et al.,
// arXiv:1903.10636): which failures a path set can localize is decided by
// hitting-set distinctness, so identifiability is a *property of the
// probe plan*, not just a number measured after the fact.
//
// For a granularity (physical links, ASes, routers/nodes) every probed
// element e has a hitting set h(e) — the T− paths traversing it. Three
// counts summarize the partition induced by h:
//   covered       elements on at least one T− path,
//   distinct      distinct hitting sets among them (the number of
//                 distinguishable single-failure diagnoses; distinct /
//                 covered is exactly the paper's D(G) at link
//                 granularity),
//   identifiable  elements whose hitting set no other element shares —
//                 1-identifiable: a single failure of such an element is
//                 exactly localizable from the reachability matrix alone.
//
// Everything is computed in dense id space: links via the
// core/interner.h phys-key arena, nodes via graph::NodeId, ASes interned
// on the fly — no string hashing on the 10k-AS path.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "core/diagnosis_graph.h"
#include "core/solver.h"

namespace netd::plan {

enum class Granularity { kLink, kAs, kNode };

[[nodiscard]] const char* to_string(Granularity g);
/// Inverse of to_string(); std::nullopt for unknown names.
[[nodiscard]] std::optional<Granularity> granularity_from_string(
    std::string_view s);

struct GranularityStats {
  std::size_t covered = 0;       ///< elements with a non-empty hitting set
  std::size_t distinct = 0;      ///< distinct hitting sets among them
  std::size_t identifiable = 0;  ///< elements with a *unique* hitting set

  /// distinct / covered — the D(G) of §4 at link granularity, its direct
  /// generalization elsewhere. 0 for an empty graph.
  [[nodiscard]] double distinct_fraction() const {
    return covered == 0 ? 0.0
                        : static_cast<double>(distinct) /
                              static_cast<double>(covered);
  }
  /// identifiable / covered: the fraction of probed elements whose single
  /// failure is exactly localizable (1-identifiability).
  [[nodiscard]] double identifiable_fraction() const {
    return covered == 0 ? 0.0
                        : static_cast<double>(identifiable) /
                              static_cast<double>(covered);
  }
};

struct IdentifiabilityReport {
  GranularityStats links;
  GranularityStats ases;
  GranularityStats nodes;

  [[nodiscard]] const GranularityStats& at(Granularity g) const {
    switch (g) {
      case Granularity::kAs: return ases;
      case Granularity::kNode: return nodes;
      case Granularity::kLink: break;
    }
    return links;
  }
};

/// Partition counts of a hitting-set family: hits[e] holds the sorted,
/// deduplicated path indices covering element e; elements with empty sets
/// are uncovered and ignored. Exposed for the planner's differential
/// tests — the planner maintains the same partition incrementally.
[[nodiscard]] GranularityStats hitting_stats(const core::SetFamily& hits);

/// The full report over the T− paths of `dg`. Link granularity is over
/// canonical physical keys (logical expansion collapsed, both directions
/// of a link one element — dg.phys_keys ids); node granularity is over
/// identified-router and unidentified-hop nodes of the diagnosis graph
/// (sensors and synthetic logical nodes excluded: a logical node's
/// physical router already sits on the same path); AS granularity is over
/// the endpoint ASNs of probed edges.
///
/// Relation to §4: core::diagnosability(dg) partitions *directed* graph
/// edges, this report partitions physical links — the space failure
/// hypotheses (core::Result::links) actually name. On a mesh that
/// traverses every link in a single direction the two coincide, so
/// links.distinct_fraction() == core::diagnosability(dg) there (pinned by
/// tests); with both directions probed the physical partition is the
/// coarser, hypothesis-faithful one.
[[nodiscard]] IdentifiabilityReport identifiability(
    const core::DiagnosisGraph& dg);

}  // namespace netd::plan
