#include "plan/planner.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/diagnosis_graph.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "util/thread_pool.h"

namespace netd::plan {

namespace {

/// Planner instruments, resolved once per process (same pattern as the
/// solver's SolveInstruments).
struct PlanInstruments {
  obs::Counter& plans = obs::Registry::global().counter(
      "netd_plan_total", "Probe-plan computations");
  obs::Counter& rounds = obs::Registry::global().counter(
      "netd_plan_rounds_total", "Greedy selection rounds across all plans");
  obs::Counter& gain_evals = obs::Registry::global().counter(
      "netd_plan_gain_evals_total",
      "Marginal-gain evaluations across all plans (commits included)");
  obs::Counter& cache_hits = obs::Registry::global().counter(
      "netd_plan_gain_cache_hits_total",
      "Path materializations served from the round-stamped per-candidate "
      "arenas instead of re-walking BFS parent chains");
  obs::Histogram& pool = obs::Registry::global().histogram(
      "netd_plan_candidates", "Candidate pool size per plan");

  static PlanInstruments& get() {
    static PlanInstruments i;
    return i;
  }
};

/// Group key: the (pre-refinement class, new-path signature) pair. The
/// uncovered pseudo-class kNone packs like any other id.
constexpr std::uint64_t group_key(std::uint32_t cls, std::uint32_t pattern) {
  return (static_cast<std::uint64_t>(cls) << 32) | pattern;
}

}  // namespace

Planner::Planner(const topo::Topology& topo,
                 std::vector<probe::Sensor> candidates, PlannerConfig cfg)
    : topo_(topo),
      candidates_(std::move(candidates)),
      cfg_(cfg),
      oracle_(topo) {
  switch (cfg_.objective) {
    case Granularity::kLink: num_elements_ = topo_.num_links(); break;
    case Granularity::kAs: num_elements_ = topo_.num_ases(); break;
    case Granularity::kNode: num_elements_ = topo_.num_routers(); break;
  }
}

void Planner::build_trees() {
  if (!trees_.empty()) return;
  const std::size_t n = candidates_.size();
  trees_.resize(n);
  const std::size_t threads = std::min(
      util::ThreadPool::resolve_threads(cfg_.num_threads), std::max<std::size_t>(n, 1));
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      oracle_.tree_into(candidates_[i].attach, trees_[i]);
    }
    return;
  }
  // Contiguous shards; each task writes only its own tree slots, so the
  // result is byte-identical for every thread count.
  util::ThreadPool pool(threads);
  const std::size_t per = (n + threads - 1) / threads;
  for (std::size_t begin = 0; begin < n; begin += per) {
    const std::size_t end = std::min(begin + per, n);
    pool.submit([this, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        oracle_.tree_into(candidates_[i].attach, trees_[i]);
      }
    });
  }
  pool.wait_all();
}

bool Planner::path_elements(const probe::PathOracle::Tree& t, std::size_t src,
                            std::size_t dst,
                            std::vector<topo::LinkId>& links,
                            std::vector<std::uint32_t>& out) const {
  links.clear();
  const topo::RouterId s = candidates_[src].attach;
  const topo::RouterId d = candidates_[dst].attach;
  if (!oracle_.path_links(t, s, d, links)) return false;
  if (cfg_.objective == Granularity::kLink) {
    for (const topo::LinkId l : links) out.push_back(l.value());
    return true;
  }
  // Routers on the path, endpoints included — the same hops measure()
  // renders; at AS granularity, their owning ASes.
  topo::RouterId r = s;
  const auto push = [this, &out](topo::RouterId rr) {
    out.push_back(cfg_.objective == Granularity::kNode
                      ? rr.value()
                      : topo_.as_of_router(rr).value());
  };
  push(r);
  for (const topo::LinkId l : links) {
    r = topo_.other_end(l, r);
    push(r);
  }
  return true;
}

void Planner::extend_arena(std::size_t cand, PathArena& arena) {
  if (arena.path_off.empty()) arena.path_off.push_back(0);
  std::vector<std::uint32_t>& elems = arena.elems;
  const auto seal = [&arena, &elems] {
    arena.path_off.push_back(static_cast<std::uint32_t>(elems.size()));
  };
  for (std::size_t r = arena.rounds; r < selected_.size(); ++r) {
    const std::size_t t = selected_[r];
    // Unreachable pairs append an empty span — spans stay round-aligned.
    path_elements(trees_[cand], cand, t, path_scratch_, elems);
    seal();
    path_elements(trees_[t], t, cand, path_scratch_, elems);
    seal();
  }
  arena.rounds = selected_.size();
}

std::int64_t Planner::marginal_gain(std::size_t cand, bool commit) {
  PlanInstruments& ins = PlanInstruments::get();
  PathArena* arena;
  if (cfg_.lazy) {
    arena = &arenas_[cand];
    // Spans up to the stamp are served from the cache; only the paths of
    // sensors selected since the last evaluation of `cand` are walked.
    ins.cache_hits.inc(2 * arena->rounds);
    extend_arena(cand, *arena);
  } else {
    scratch_arena_.clear();
    extend_arena(cand, scratch_arena_);
    arena = &scratch_arena_;
  }

  ++eval_epoch_;
  const std::uint32_t epoch = eval_epoch_;
  touched_.clear();

  // Per-evaluation signature ids over the *new* paths (cand <-> each
  // already-selected sensor). Pattern 0 is the empty signature; extending
  // pattern p with path q yields a fresh id per distinct (p, q).
  std::uint32_t next_pattern = 1;
  std::unordered_map<std::uint64_t, std::uint32_t> ext;
  const auto extend = [&ext, &next_pattern](std::uint32_t p, std::uint32_t q) {
    const auto [it, inserted] =
        ext.emplace((static_cast<std::uint64_t>(p) << 32) | q, next_pattern);
    if (inserted) ++next_pattern;
    return it->second;
  };

  const auto num_paths = arena->path_off.size() - 1;
  for (std::uint32_t q = 0; q < num_paths; ++q) {
    const std::uint32_t begin = arena->path_off[q];
    const std::uint32_t end = arena->path_off[q + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t e = arena->elems[k];
      if (elem_stamp_[e] != epoch) {
        elem_stamp_[e] = epoch;
        elem_old_class_[e] = class_of_[e];
        elem_last_q_[e] = q;
        elem_pattern_[e] = extend(0, q);
        touched_.push_back(e);
      } else if (elem_last_q_[e] != q) {  // per-path dedup
        elem_last_q_[e] = q;
        elem_pattern_[e] = extend(elem_pattern_[e], q);
      }
    }
  }

  // Group touched elements by (old class, new-path signature): each group
  // becomes one post-refinement class; per old class, the untouched
  // remainder keeps the old id.
  std::unordered_map<std::uint64_t, std::uint32_t> group_count;
  group_count.reserve(touched_.size());
  for (const std::uint32_t e : touched_) {
    ++group_count[group_key(elem_old_class_[e], elem_pattern_[e])];
  }
  struct ClassAgg {
    std::uint32_t marked = 0;   ///< touched elements of the class
    std::uint32_t groups = 0;   ///< distinct signatures among them
    std::uint32_t singles = 0;  ///< signatures carried by one element
  };
  std::unordered_map<std::uint32_t, ClassAgg> per_class;
  per_class.reserve(group_count.size());
  for (const auto& [key, cnt] : group_count) {
    ClassAgg& agg = per_class[static_cast<std::uint32_t>(key >> 32)];
    agg.marked += cnt;
    ++agg.groups;
    if (cnt == 1) ++agg.singles;
  }

  std::int64_t delta_classes = 0;
  std::int64_t delta_ident = 0;
  for (const auto& [cls, agg] : per_class) {
    if (cls == kNone) {
      // Newly covered elements: every group is a brand-new class.
      delta_classes += agg.groups;
      delta_ident += agg.singles;
      continue;
    }
    const std::uint32_t size = class_size_[cls];
    const bool remainder = size > agg.marked;
    delta_classes += static_cast<std::int64_t>(agg.groups) +
                     (remainder ? 1 : 0) - 1;
    const std::int64_t after =
        static_cast<std::int64_t>(agg.singles) +
        (size - agg.marked == 1 ? 1 : 0);
    delta_ident += after - (size == 1 ? 1 : 0);
  }

  if (commit) {
    // New class ids assigned in sorted group-key order — deterministic
    // regardless of hash-map iteration order.
    std::vector<std::uint64_t> keys;
    keys.reserve(group_count.size());
    for (const auto& [key, cnt] : group_count) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    std::unordered_map<std::uint64_t, std::uint32_t> new_id;
    new_id.reserve(keys.size());
    for (const std::uint64_t key : keys) {
      const std::uint32_t cnt = group_count[key];
      const auto id = static_cast<std::uint32_t>(class_size_.size());
      class_size_.push_back(cnt);
      new_id.emplace(key, id);
      const auto old_cls = static_cast<std::uint32_t>(key >> 32);
      if (old_cls != kNone) class_size_[old_cls] -= cnt;  // dead at 0 is fine
    }
    for (const std::uint32_t e : touched_) {
      class_of_[e] = new_id[group_key(elem_old_class_[e], elem_pattern_[e])];
    }
    num_classes_ += delta_classes;
    num_identifiable_ += delta_ident;
    selected_.push_back(cand);
  }
  return delta_classes + delta_ident;
}

PlanResult Planner::plan() {
  PlanInstruments& ins = PlanInstruments::get();
  obs::Span span("plan");
  ins.plans.inc();
  ins.pool.observe(static_cast<double>(candidates_.size()));

  // Reset so plan() is restartable (state also feeds evaluate() tests).
  class_of_.assign(num_elements_, kNone);
  class_size_.clear();
  num_classes_ = 0;
  num_identifiable_ = 0;
  selected_.clear();
  arenas_.assign(candidates_.size(), PathArena{});
  eval_epoch_ = 0;
  elem_stamp_.assign(num_elements_, 0);
  elem_last_q_.resize(num_elements_);
  elem_pattern_.resize(num_elements_);
  elem_old_class_.resize(num_elements_);

  PlanResult result;
  const std::size_t n = candidates_.size();
  const std::size_t budget = std::min(cfg_.budget, n);
  {
    obs::Span trees_span("plan_trees");
    build_trees();
  }
  {
    // Exact greedy: every unchosen candidate is re-scored each round —
    // each round adds two new probe paths per candidate, so no cached
    // gain stays valid across rounds (see the header on why CELF-style
    // skipping is unsound here). Ties keep the lowest index; round 1 is
    // all-zero gains (no probe pairs yet), so the first pick is always
    // candidate 0.
    obs::Span greedy_span("plan_greedy");
    std::vector<char> chosen(n, 0);
    for (std::size_t round = 0; round < budget; ++round) {
      std::int64_t best_gain = -1;
      std::size_t best = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (chosen[i]) continue;
        const std::int64_t gain = marginal_gain(i, /*commit=*/false);
        ins.gain_evals.inc();
        if (gain > best_gain) {
          best_gain = gain;
          best = i;
        }
      }
      const std::int64_t gain = marginal_gain(best, /*commit=*/true);
      ins.gain_evals.inc();
      chosen[best] = 1;
      result.chosen.push_back(best);
      result.gains.push_back(static_cast<double>(gain));
      ins.rounds.inc();
    }
  }
  result.objective = static_cast<double>(num_classes_ + num_identifiable_);
  result.sensors.reserve(result.chosen.size());
  for (const std::size_t i : result.chosen) {
    result.sensors.push_back(candidates_[i]);
  }
  if (cfg_.measure_report && !result.sensors.empty()) {
    obs::Span report_span("plan_report");
    const probe::SyntheticProber prober(topo_, result.sensors);
    const probe::Mesh mesh = prober.measure();
    result.report = identifiability(
        core::build_diagnosis_graph(mesh, mesh, core::LogicalMode::kNone));
  }
  return result;
}

double Planner::evaluate(const std::vector<std::size_t>& chosen) const {
  // From-scratch hitting sets over the same path model — trees computed
  // locally so this works before plan() and from const contexts.
  std::vector<probe::PathOracle::Tree> trees(chosen.size());
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    oracle_.tree_into(candidates_[chosen[i]].attach, trees[i]);
  }
  std::vector<std::vector<std::uint32_t>> hits(num_elements_);
  std::vector<std::uint32_t> stamp(num_elements_, kNone);
  std::vector<topo::LinkId> links;
  std::vector<std::uint32_t> elems;
  std::uint32_t q = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    for (std::size_t j = 0; j < chosen.size(); ++j) {
      if (i == j) continue;
      elems.clear();
      if (!path_elements(trees[i], chosen[i], chosen[j], links, elems)) {
        continue;
      }
      for (const std::uint32_t e : elems) {
        if (stamp[e] == q) continue;
        stamp[e] = q;
        hits[e].push_back(q);
      }
      ++q;
    }
  }
  const GranularityStats st = hitting_stats(core::SetFamily(hits));
  return static_cast<double>(st.distinct + st.identifiable);
}

}  // namespace netd::plan
