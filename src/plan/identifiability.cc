#include "plan/identifiability.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <unordered_map>
#include <vector>

namespace netd::plan {

const char* to_string(Granularity g) {
  switch (g) {
    case Granularity::kLink: return "link";
    case Granularity::kAs: return "as";
    case Granularity::kNode: return "node";
  }
  return "?";
}

std::optional<Granularity> granularity_from_string(std::string_view s) {
  if (s == "link") return Granularity::kLink;
  if (s == "as") return Granularity::kAs;
  if (s == "node") return Granularity::kNode;
  return std::nullopt;
}

GranularityStats hitting_stats(const core::SetFamily& hits) {
  GranularityStats st;
  std::vector<std::uint32_t> covered;
  covered.reserve(hits.size());
  for (std::uint32_t e = 0; e < hits.size(); ++e) {
    if (!hits[e].empty()) covered.push_back(e);
  }
  st.covered = covered.size();
  if (covered.empty()) return st;
  // Group elements by hitting-set content: lexicographic sort of the CSR
  // spans, then one scan over equal-runs. Exact (no hashing), and the
  // spans are short — a link is on few paths — so the compares are cheap.
  const auto less = [&hits](std::uint32_t a, std::uint32_t b) {
    const auto sa = hits[a];
    const auto sb = hits[b];
    return std::lexicographical_compare(sa.begin(), sa.end(), sb.begin(),
                                        sb.end());
  };
  const auto equal = [&hits](std::uint32_t a, std::uint32_t b) {
    const auto sa = hits[a];
    const auto sb = hits[b];
    return sa.size() == sb.size() && std::equal(sa.begin(), sa.end(),
                                                sb.begin());
  };
  std::sort(covered.begin(), covered.end(), less);
  for (std::size_t i = 0; i < covered.size();) {
    std::size_t j = i + 1;
    while (j < covered.size() && equal(covered[i], covered[j])) ++j;
    ++st.distinct;
    if (j - i == 1) ++st.identifiable;
    i = j;
  }
  return st;
}

namespace {

/// Accumulates per-element hitting sets over dense element ids, one path
/// at a time. Per-path dedup is a stamp array (an element can appear
/// twice on one path — both directions of a link, an AS left and
/// re-entered), so each path index lands at most once per element.
class HitBuilder {
 public:
  void ensure(std::uint32_t element) {
    if (element >= hits_.size()) {
      hits_.resize(element + 1);
      stamp_.resize(element + 1, kNoStamp);
    }
  }

  void add(std::uint32_t element, std::uint32_t path) {
    ensure(element);
    if (stamp_[element] == path) return;
    stamp_[element] = path;
    hits_[element].push_back(path);
  }

  [[nodiscard]] core::SetFamily family() const { return {hits_}; }

 private:
  static constexpr std::uint32_t kNoStamp = 0xffffffffu;
  std::vector<std::vector<std::uint32_t>> hits_;
  std::vector<std::uint32_t> stamp_;
};

}  // namespace

IdentifiabilityReport identifiability(const core::DiagnosisGraph& dg) {
  HitBuilder links;
  HitBuilder nodes;
  HitBuilder ases;
  // AS numbers are sparse; intern them into dense ids as they appear.
  std::unordered_map<int, std::uint32_t> as_ids;
  const auto as_id = [&as_ids](int asn) {
    const auto [it, inserted] =
        as_ids.emplace(asn, static_cast<std::uint32_t>(as_ids.size()));
    return it->second;
  };
  // A diagnosis-graph node counts at node granularity when it stands for
  // a physical hop: identified routers and UH tokens. Sensors are probe
  // endpoints, not failure candidates here, and a logical node v(W) is a
  // projection of router v, which the same path already carries.
  const auto node_counts = [&dg](graph::NodeId n) {
    const auto kind = dg.g.node(n).kind;
    return kind == graph::NodeKind::kRouter ||
           kind == graph::NodeKind::kUnidentified;
  };

  for (std::uint32_t p = 0; p < dg.paths.size(); ++p) {
    for (graph::EdgeId e : dg.paths[p].before) {
      const core::EdgeInfo& info = dg.info(e);
      links.add(info.phys_id, p);
      if (info.asn_src >= 0) ases.add(as_id(info.asn_src), p);
      if (info.asn_dst >= 0) ases.add(as_id(info.asn_dst), p);
      const graph::Edge& ge = dg.g.edge(e);
      if (node_counts(ge.src)) nodes.add(ge.src.value(), p);
      if (node_counts(ge.dst)) nodes.add(ge.dst.value(), p);
    }
  }

  IdentifiabilityReport report;
  report.links = hitting_stats(links.family());
  report.ases = hitting_stats(ases.family());
  report.nodes = hitting_stats(nodes.family());
  return report;
}

}  // namespace netd::plan
