// Campaign checkpoints: the durable state behind crash-safe experiment
// runs (exp::Runner::run_campaign / record_campaign).
//
// A checkpoint is one JSON document (the svc::Json codec — number lexemes
// and member order are preserved, so save/load round-trips are
// byte-identical) persisted with util::atomic_write_file after every
// completed placement. It holds:
//
//   - the canonical scenario (every ScenarioConfig field that affects the
//     RNG-driven protocol; thread count and the watchdog deadline are
//     deliberately excluded — they never change results / are meant to be
//     overridden on replay),
//   - the committed contiguous placement prefix with its per-trial
//     results (score mode) or the committed trace byte offset (record
//     mode),
//   - the quarantine list: trials the per-trial watchdog abandoned, each
//     with its placement's pre-forked seed so `netdiag requarantine` can
//     replay it alone.
//
// Doubles are serialized as 17-significant-digit lexemes, which strtod
// parses back to the identical bit pattern — the property that makes a
// resumed campaign's CSV byte-identical to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "svc/json.h"
#include "svc/protocol.h"

namespace netd::exp {

/// Shortest lexeme that round-trips the double exactly through strtod
/// ("%.17g"). Shared by the checkpoint codec and the campaign CSV writer.
[[nodiscard]] std::string format_double17(double v);

/// Canonical JSON form of the determinism-relevant ScenarioConfig fields.
/// Two configs with equal scenario_to_json().dump() produce identical
/// campaigns (for the same algos), which is exactly the resume contract.
[[nodiscard]] svc::Json scenario_to_json(const ScenarioConfig& cfg);
[[nodiscard]] std::optional<ScenarioConfig> scenario_from_json(
    const svc::Json& j, std::string* error);

struct Checkpoint {
  static constexpr int kVersion = 1;

  ScenarioConfig scenario;
  /// Score mode: the algorithms being scored. Empty in record mode.
  std::vector<Algo> algos;
  /// Record mode: the trace is being written for this session config.
  bool recording = false;
  svc::SessionConfig record_config;

  std::size_t completed_placements = 0;  ///< committed contiguous prefix
  std::size_t episodes = 0;              ///< scored/recorded so far
  /// Record mode: trace bytes durably committed; everything beyond this
  /// offset (e.g. a partial line from a crash mid-write) is truncated on
  /// resume.
  std::uint64_t trace_bytes = 0;
  /// Score mode: one bucket per committed placement, trials in order.
  std::vector<std::vector<ScoredTrial>> results;
  /// Watchdog-abandoned trials of committed placements, (placement,
  /// trial)-sorted.
  std::vector<QuarantinedTrial> quarantined;

  [[nodiscard]] svc::Json to_json() const;
  [[nodiscard]] static std::optional<Checkpoint> from_json(
      const svc::Json& j, std::string* error);

  /// Atomic write to `path` (write-temp → fsync → rename → fsync dir).
  [[nodiscard]] bool save(const std::string& path,
                          std::string* error = nullptr) const;
  /// std::nullopt (with `error`) on I/O failure or a structurally invalid
  /// document — never a partially-constructed checkpoint.
  [[nodiscard]] static std::optional<Checkpoint> load(const std::string& path,
                                                      std::string* error);

  /// Identity of the campaign this checkpoint belongs to: scenario +
  /// algos/record-config + mode. Resume refuses a checkpoint whose
  /// fingerprint differs from the invocation's.
  [[nodiscard]] std::string fingerprint() const;
};

/// Writes the campaign CSV: one row per scored trial, placement/trial
/// pinned, doubles at 17 significant digits — byte-stable across
/// interruption/resume and across num_threads.
void write_csv(std::ostream& os, const std::vector<ScoredTrial>& trials,
               const std::vector<Algo>& algos);

}  // namespace netd::exp
