#include "exp/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "util/atomic_file.h"

namespace netd::exp {

namespace {

constexpr const char* kKind = "netd-campaign-checkpoint";

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr && error->empty()) *error = what;
  return false;
}

svc::Json json_double(double v) {
  return svc::Json::number_from_lexeme(format_double17(v));
}

/// u64 values (seeds, byte offsets) travel as decimal strings: the Json
/// accessors go through strtoll and would clamp the upper half of the
/// range.
svc::Json json_u64(std::uint64_t v) {
  return svc::Json::string(std::to_string(v));
}

bool parse_u64(const svc::Json* j, std::uint64_t* out, std::string* error,
               const char* what) {
  if (j == nullptr || !j->is_string() || j->as_string().empty()) {
    return fail(error, std::string("missing ") + what);
  }
  const std::string& s = j->as_string();
  for (char c : s) {
    if (c < '0' || c > '9') return fail(error, std::string("bad ") + what);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return fail(error, std::string("bad ") + what);
  }
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_size(const svc::Json* j, std::size_t* out, std::string* error,
                const char* what) {
  if (j == nullptr || !j->is_number() || j->as_int() < 0) {
    return fail(error, std::string("missing ") + what);
  }
  *out = static_cast<std::size_t>(j->as_int());
  return true;
}

bool parse_double(const svc::Json* j, double* out, std::string* error,
                  const char* what) {
  if (j == nullptr || !j->is_number()) {
    return fail(error, std::string("missing ") + what);
  }
  *out = j->as_double();
  return true;
}

bool parse_bool(const svc::Json* j, bool* out, std::string* error,
                const char* what) {
  if (j == nullptr || !j->is_bool()) {
    return fail(error, std::string("missing ") + what);
  }
  *out = j->as_bool();
  return true;
}

svc::Json link_metrics_to_json(const core::LinkMetrics& m) {
  svc::Json j = svc::Json::array();
  j.push_back(json_double(m.sensitivity));
  j.push_back(json_double(m.specificity));
  j.push_back(svc::Json::uinteger(m.hypothesis_size));
  j.push_back(svc::Json::uinteger(m.num_probed));
  return j;
}

svc::Json as_metrics_to_json(const core::AsMetrics& m) {
  svc::Json j = svc::Json::array();
  j.push_back(json_double(m.sensitivity));
  j.push_back(json_double(m.specificity));
  j.push_back(svc::Json::uinteger(m.hypothesis_size));
  return j;
}

svc::Json trial_to_json(const ScoredTrial& st) {
  svc::Json j = svc::Json::object();
  j.set("t", svc::Json::uinteger(st.trial));
  j.set("d", json_double(st.result.diagnosability));
  j.set("rd", svc::Json::boolean(st.result.router_detected));
  svc::Json link = svc::Json::object();
  for (const auto& [algo, m] : st.result.link) {
    link.set(to_string(algo), link_metrics_to_json(m));
  }
  j.set("link", std::move(link));
  svc::Json as = svc::Json::object();
  for (const auto& [algo, m] : st.result.as_level) {
    as.set(to_string(algo), as_metrics_to_json(m));
  }
  j.set("as", std::move(as));
  return j;
}

std::optional<ScoredTrial> trial_from_json(const svc::Json& j,
                                           std::size_t placement,
                                           std::string* error) {
  if (!j.is_object()) {
    fail(error, "trial is not an object");
    return std::nullopt;
  }
  ScoredTrial st;
  st.placement = placement;
  if (!parse_size(j.find("t"), &st.trial, error, "trial index") ||
      !parse_double(j.find("d"), &st.result.diagnosability, error,
                    "diagnosability") ||
      !parse_bool(j.find("rd"), &st.result.router_detected, error,
                  "router_detected")) {
    return std::nullopt;
  }
  const svc::Json* link = j.find("link");
  const svc::Json* as = j.find("as");
  if (link == nullptr || !link->is_object() || as == nullptr ||
      !as->is_object()) {
    fail(error, "trial needs link + as metric objects");
    return std::nullopt;
  }
  for (const auto& [name, m] : link->members()) {
    const auto algo = algo_from_string(name);
    if (!algo || !m.is_array() || m.size() != 4) {
      fail(error, "bad link metrics for '" + name + "'");
      return std::nullopt;
    }
    core::LinkMetrics lm;
    if (!parse_double(&m[0], &lm.sensitivity, error, "link sensitivity") ||
        !parse_double(&m[1], &lm.specificity, error, "link specificity") ||
        !parse_size(&m[2], &lm.hypothesis_size, error, "link |H|") ||
        !parse_size(&m[3], &lm.num_probed, error, "link |E|")) {
      return std::nullopt;
    }
    st.result.link[*algo] = lm;
  }
  for (const auto& [name, m] : as->members()) {
    const auto algo = algo_from_string(name);
    if (!algo || !m.is_array() || m.size() != 3) {
      fail(error, "bad AS metrics for '" + name + "'");
      return std::nullopt;
    }
    core::AsMetrics am;
    if (!parse_double(&m[0], &am.sensitivity, error, "AS sensitivity") ||
        !parse_double(&m[1], &am.specificity, error, "AS specificity") ||
        !parse_size(&m[2], &am.hypothesis_size, error, "AS |H|")) {
      return std::nullopt;
    }
    st.result.as_level[*algo] = am;
  }
  return st;
}

}  // namespace

std::string format_double17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

svc::Json scenario_to_json(const ScenarioConfig& cfg) {
  svc::Json topo = svc::Json::object();
  topo.set("seed", json_u64(cfg.topo_params.seed));
  topo.set("target_ases", svc::Json::uinteger(cfg.topo_params.target_ases));
  topo.set("pool_tier2", svc::Json::uinteger(cfg.topo_params.pool_tier2));
  topo.set("pool_stubs", svc::Json::uinteger(cfg.topo_params.pool_stubs));
  topo.set("tier2_multihomed",
           json_double(cfg.topo_params.tier2_multihomed_frac));
  topo.set("stub_multihomed",
           json_double(cfg.topo_params.stub_multihomed_frac));
  topo.set("stub_on_core", json_double(cfg.topo_params.stub_on_core_frac));
  topo.set("tier2_spokes", svc::Json::uinteger(cfg.topo_params.tier2_spokes));
  topo.set("core_peer_links",
           svc::Json::uinteger(cfg.topo_params.core_peer_links));
  topo.set("tier2_peering", json_double(cfg.topo_params.tier2_peering_frac));

  svc::Json j = svc::Json::object();
  j.set("topo", std::move(topo));
  j.set("sensors", svc::Json::uinteger(cfg.num_sensors));
  j.set("placement", svc::Json::integer(static_cast<int>(cfg.placement)));
  // Emitted only when non-default so checkpoints written before planned
  // placement existed keep their fingerprint bytes.
  if (cfg.placement_strategy != PlacementStrategy::kRandom) {
    j.set("strategy", svc::Json::string(to_string(cfg.placement_strategy)));
    j.set("plan_pool", svc::Json::uinteger(cfg.plan_pool));
  }
  j.set("placements", svc::Json::uinteger(cfg.num_placements));
  j.set("trials", svc::Json::uinteger(cfg.trials_per_placement));
  j.set("mode", svc::Json::integer(static_cast<int>(cfg.mode)));
  j.set("link_failures", svc::Json::uinteger(cfg.num_link_failures));
  j.set("blocked", json_double(cfg.frac_blocked));
  j.set("lg", json_double(cfg.frac_lg));
  j.set("operator_core", svc::Json::boolean(cfg.operator_at_core));
  j.set("seed", json_u64(cfg.seed));
  j.set("max_attempts", svc::Json::uinteger(cfg.max_attempts_per_trial));
  return j;
}

std::optional<ScenarioConfig> scenario_from_json(const svc::Json& j,
                                                 std::string* error) {
  if (!j.is_object()) {
    fail(error, "scenario is not an object");
    return std::nullopt;
  }
  ScenarioConfig cfg;
  const svc::Json* topo = j.find("topo");
  if (topo == nullptr || !topo->is_object()) {
    fail(error, "missing scenario topo");
    return std::nullopt;
  }
  std::size_t placement = 0, mode = 0;
  if (!parse_u64(topo->find("seed"), &cfg.topo_params.seed, error,
                 "topo seed") ||
      !parse_size(topo->find("target_ases"), &cfg.topo_params.target_ases,
                  error, "target_ases") ||
      !parse_size(topo->find("pool_tier2"), &cfg.topo_params.pool_tier2,
                  error, "pool_tier2") ||
      !parse_size(topo->find("pool_stubs"), &cfg.topo_params.pool_stubs,
                  error, "pool_stubs") ||
      !parse_double(topo->find("tier2_multihomed"),
                    &cfg.topo_params.tier2_multihomed_frac, error,
                    "tier2_multihomed") ||
      !parse_double(topo->find("stub_multihomed"),
                    &cfg.topo_params.stub_multihomed_frac, error,
                    "stub_multihomed") ||
      !parse_double(topo->find("stub_on_core"),
                    &cfg.topo_params.stub_on_core_frac, error,
                    "stub_on_core") ||
      !parse_size(topo->find("tier2_spokes"), &cfg.topo_params.tier2_spokes,
                  error, "tier2_spokes") ||
      !parse_size(topo->find("core_peer_links"),
                  &cfg.topo_params.core_peer_links, error,
                  "core_peer_links") ||
      !parse_double(topo->find("tier2_peering"),
                    &cfg.topo_params.tier2_peering_frac, error,
                    "tier2_peering") ||
      !parse_size(j.find("sensors"), &cfg.num_sensors, error, "sensors") ||
      !parse_size(j.find("placement"), &placement, error, "placement") ||
      !parse_size(j.find("placements"), &cfg.num_placements, error,
                  "placements") ||
      !parse_size(j.find("trials"), &cfg.trials_per_placement, error,
                  "trials") ||
      !parse_size(j.find("mode"), &mode, error, "mode") ||
      !parse_size(j.find("link_failures"), &cfg.num_link_failures, error,
                  "link_failures") ||
      !parse_double(j.find("blocked"), &cfg.frac_blocked, error, "blocked") ||
      !parse_double(j.find("lg"), &cfg.frac_lg, error, "lg") ||
      !parse_bool(j.find("operator_core"), &cfg.operator_at_core, error,
                  "operator_core") ||
      !parse_u64(j.find("seed"), &cfg.seed, error, "seed") ||
      !parse_size(j.find("max_attempts"), &cfg.max_attempts_per_trial, error,
                  "max_attempts")) {
    return std::nullopt;
  }
  if (placement > static_cast<std::size_t>(
                      probe::PlacementKind::kDistantAsSplit)) {
    fail(error, "unknown placement kind");
    return std::nullopt;
  }
  if (mode > static_cast<std::size_t>(FailureMode::kMisconfigPrefix)) {
    fail(error, "unknown failure mode");
    return std::nullopt;
  }
  cfg.placement = static_cast<probe::PlacementKind>(placement);
  cfg.mode = static_cast<FailureMode>(mode);
  if (const svc::Json* strategy = j.find("strategy"); strategy != nullptr) {
    if (!strategy->is_string()) {
      fail(error, "strategy is not a string");
      return std::nullopt;
    }
    const auto parsed = placement_strategy_from_string(strategy->as_string());
    if (!parsed) {
      fail(error, "unknown placement strategy");
      return std::nullopt;
    }
    cfg.placement_strategy = *parsed;
    if (!parse_size(j.find("plan_pool"), &cfg.plan_pool, error, "plan_pool")) {
      return std::nullopt;
    }
  }
  return cfg;
}

svc::Json Checkpoint::to_json() const {
  svc::Json j = svc::Json::object();
  j.set("v", svc::Json::integer(kVersion));
  j.set("kind", svc::Json::string(kKind));
  j.set("scenario", scenario_to_json(scenario));
  svc::Json algos_json = svc::Json::array();
  for (Algo a : algos) algos_json.push_back(svc::Json::string(to_string(a)));
  j.set("algos", std::move(algos_json));
  j.set("recording", svc::Json::boolean(recording));
  if (recording) {
    j.set("record", svc::session_config_to_json(record_config));
  }
  j.set("completed_placements", svc::Json::uinteger(completed_placements));
  j.set("episodes", svc::Json::uinteger(episodes));
  j.set("trace_bytes", json_u64(trace_bytes));
  svc::Json results_json = svc::Json::array();
  for (const auto& bucket : results) {
    svc::Json b = svc::Json::array();
    for (const auto& st : bucket) b.push_back(trial_to_json(st));
    results_json.push_back(std::move(b));
  }
  j.set("results", std::move(results_json));
  svc::Json quarantined_json = svc::Json::array();
  for (const auto& q : quarantined) {
    svc::Json e = svc::Json::object();
    e.set("placement", svc::Json::uinteger(q.placement));
    e.set("trial", svc::Json::uinteger(q.trial));
    e.set("seed", json_u64(q.seed));
    quarantined_json.push_back(std::move(e));
  }
  j.set("quarantined", std::move(quarantined_json));
  return j;
}

std::optional<Checkpoint> Checkpoint::from_json(const svc::Json& j,
                                                std::string* error) {
  if (!j.is_object()) {
    fail(error, "checkpoint is not an object");
    return std::nullopt;
  }
  const svc::Json* v = j.find("v");
  const svc::Json* kind = j.find("kind");
  if (v == nullptr || !v->is_number() || v->as_int() != kVersion ||
      kind == nullptr || !kind->is_string() || kind->as_string() != kKind) {
    fail(error, "not a v1 campaign checkpoint");
    return std::nullopt;
  }
  Checkpoint ck;
  const svc::Json* scenario = j.find("scenario");
  if (scenario == nullptr) {
    fail(error, "missing scenario");
    return std::nullopt;
  }
  auto cfg = scenario_from_json(*scenario, error);
  if (!cfg) return std::nullopt;
  ck.scenario = std::move(*cfg);

  const svc::Json* algos = j.find("algos");
  if (algos == nullptr || !algos->is_array()) {
    fail(error, "missing algos");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < algos->size(); ++i) {
    const svc::Json& a = (*algos)[i];
    const auto algo = a.is_string() ? algo_from_string(a.as_string())
                                    : std::nullopt;
    if (!algo) {
      fail(error, "unknown algo in checkpoint");
      return std::nullopt;
    }
    ck.algos.push_back(*algo);
  }
  if (!parse_bool(j.find("recording"), &ck.recording, error, "recording")) {
    return std::nullopt;
  }
  if (ck.recording) {
    const svc::Json* rec = j.find("record");
    if (rec == nullptr) {
      fail(error, "missing record config");
      return std::nullopt;
    }
    std::string cfg_error;
    auto parsed = svc::session_config_from_json(*rec, &cfg_error);
    if (!parsed) {
      fail(error, "bad record config: " + cfg_error);
      return std::nullopt;
    }
    ck.record_config = std::move(*parsed);
  }
  if (!parse_size(j.find("completed_placements"), &ck.completed_placements,
                  error, "completed_placements") ||
      !parse_size(j.find("episodes"), &ck.episodes, error, "episodes") ||
      !parse_u64(j.find("trace_bytes"), &ck.trace_bytes, error,
                 "trace_bytes")) {
    return std::nullopt;
  }
  if (ck.completed_placements > ck.scenario.num_placements) {
    fail(error, "completed_placements exceeds the campaign");
    return std::nullopt;
  }

  const svc::Json* results = j.find("results");
  if (results == nullptr || !results->is_array()) {
    fail(error, "missing results");
    return std::nullopt;
  }
  if (!ck.recording && results->size() != ck.completed_placements) {
    fail(error, "results do not cover the committed placements");
    return std::nullopt;
  }
  for (std::size_t pl = 0; pl < results->size(); ++pl) {
    const svc::Json& bucket = (*results)[pl];
    if (!bucket.is_array()) {
      fail(error, "results bucket is not an array");
      return std::nullopt;
    }
    std::vector<ScoredTrial> trials;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      auto st = trial_from_json(bucket[i], pl, error);
      if (!st) return std::nullopt;
      trials.push_back(std::move(*st));
    }
    ck.results.push_back(std::move(trials));
  }

  const svc::Json* quarantined = j.find("quarantined");
  if (quarantined == nullptr || !quarantined->is_array()) {
    fail(error, "missing quarantined");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < quarantined->size(); ++i) {
    const svc::Json& e = (*quarantined)[i];
    if (!e.is_object()) {
      fail(error, "quarantine entry is not an object");
      return std::nullopt;
    }
    QuarantinedTrial q;
    if (!parse_size(e.find("placement"), &q.placement, error,
                    "quarantine placement") ||
        !parse_size(e.find("trial"), &q.trial, error, "quarantine trial") ||
        !parse_u64(e.find("seed"), &q.seed, error, "quarantine seed")) {
      return std::nullopt;
    }
    if (q.placement >= ck.scenario.num_placements ||
        q.trial >= ck.scenario.trials_per_placement) {
      fail(error, "quarantine entry out of range");
      return std::nullopt;
    }
    ck.quarantined.push_back(q);
  }
  return ck;
}

bool Checkpoint::save(const std::string& path, std::string* error) const {
  return util::atomic_write_file(path, to_json().dump() + "\n", error);
}

std::optional<Checkpoint> Checkpoint::load(const std::string& path,
                                           std::string* error) {
  const auto text = util::read_file(path, error);
  if (!text) return std::nullopt;
  std::string parse_error;
  std::string_view body(*text);
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
    body.remove_suffix(1);
  }
  const auto j = svc::Json::parse(body, &parse_error);
  if (!j) {
    fail(error, path + ": " + parse_error);
    return std::nullopt;
  }
  auto ck = from_json(*j, &parse_error);
  if (!ck) {
    fail(error, path + ": " + parse_error);
    return std::nullopt;
  }
  return ck;
}

std::string Checkpoint::fingerprint() const {
  std::string fp = scenario_to_json(scenario).dump();
  fp += recording ? "|record:" + svc::session_config_to_json(record_config).dump()
                  : "|score:";
  for (Algo a : algos) {
    fp += to_string(a);
    fp += ',';
  }
  return fp;
}

void write_csv(std::ostream& os, const std::vector<ScoredTrial>& trials,
               const std::vector<Algo>& algos) {
  os << "placement,trial,diagnosability,router_detected";
  for (Algo a : algos) {
    const std::string n = to_string(a);
    os << "," << n << "_link_sens," << n << "_link_spec," << n << "_link_h,"
       << n << "_link_probed," << n << "_as_sens," << n << "_as_spec," << n
       << "_as_h";
  }
  os << "\n";
  for (const auto& st : trials) {
    os << st.placement << "," << st.trial << ","
       << format_double17(st.result.diagnosability) << ","
       << (st.result.router_detected ? 1 : 0);
    for (Algo a : algos) {
      const auto link = st.result.link.find(a);
      if (link != st.result.link.end()) {
        os << "," << format_double17(link->second.sensitivity) << ","
           << format_double17(link->second.specificity) << ","
           << link->second.hypothesis_size << "," << link->second.num_probed;
      } else {
        os << ",,,,";
      }
      const auto as = st.result.as_level.find(a);
      if (as != st.result.as_level.end()) {
        os << "," << format_double17(as->second.sensitivity) << ","
           << format_double17(as->second.specificity) << ","
           << as->second.hypothesis_size;
      } else {
        os << ",,,";
      }
    }
    os << "\n";
  }
}

}  // namespace netd::exp
