#include "exp/runner.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

#include "core/diagnosability.h"
#include "lg/looking_glass.h"
#include "util/rng.h"

namespace netd::exp {

using probe::Mesh;
using probe::Prober;
using probe::Sensor;
using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::RouterId;

const char* to_string(Algo a) {
  switch (a) {
    case Algo::kTomo: return "Tomo";
    case Algo::kNdEdge: return "ND-edge";
    case Algo::kNdBgpIgp: return "ND-bgpigp";
    case Algo::kNdLg: return "ND-LG";
  }
  return "?";
}

std::string link_key(const topo::Topology& topo, LinkId l) {
  const auto& link = topo.link(l);
  return core::undirected_key(topo.router(link.a).name,
                              topo.router(link.b).name);
}

core::ControlPlaneObs collect_control_plane(const sim::Network& net) {
  core::ControlPlaneObs obs;
  const auto& topo = net.topology();
  for (LinkId l : net.igp_link_down_events()) {
    obs.igp_down_keys.push_back(link_key(topo, l));
  }
  for (const auto& m : net.bgp_messages()) {
    if (!m.withdraw) continue;
    obs.withdrawals.push_back(core::ControlPlaneObs::Withdrawal{
        topo.router(m.at).name + ">" + topo.router(m.from).name,
        static_cast<int>(m.prefix.value())});
  }
  return obs;
}

namespace {

/// An export-filter misconfiguration candidate (paper §3.1 / §4): router
/// `exporter` stops announcing, over `link`, every route it reaches via
/// its out-neighbor AS `next_as` — the paper's "y1 announces to x2 only
/// the route towards B, while it does not announce the route towards C".
/// BGP policies (and hence misconfigurations) act per neighbor, which is
/// also the granularity of ND-edge's logical links.
struct Misconfig {
  RouterId exporter;
  LinkId link;
  AsId next_as;
};

/// All (interdomain link, downstream exporter, next AS) combinations
/// present on the T− paths. The exporter is the far-side router: traffic
/// flowing q→r toward the destination rides the announcement r made to q,
/// and the cone is identified by the AS right after r's AS on the path.
std::vector<Misconfig> misconfig_candidates(const topo::Topology& topo,
                                            const Mesh& mesh) {
  std::vector<Misconfig> out;
  std::set<std::uint64_t> seen;
  for (const auto& p : mesh.paths) {
    if (!p.ok) continue;
    // Router sequence: hops minus the two sensor endpoints.
    std::vector<RouterId> routers;
    for (std::size_t i = 1; i + 1 < p.hops.size(); ++i) {
      routers.push_back(p.hops[i].router);
    }
    assert(routers.size() == p.links.size() + 1);
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      const LinkId l = p.links[i];
      if (!topo.link(l).interdomain) continue;
      const RouterId exporter = routers[i + 1];
      const AsId exporter_as = topo.as_of_router(exporter);
      // Next AS beyond the exporter's AS on this path; the exporter's own
      // AS when the path terminates inside it.
      AsId next_as = exporter_as;
      for (std::size_t k = i + 2; k < routers.size(); ++k) {
        if (topo.as_of_router(routers[k]) != exporter_as) {
          next_as = topo.as_of_router(routers[k]);
          break;
        }
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(exporter.value()) << 40) |
          (static_cast<std::uint64_t>(l.value()) << 16) |
          static_cast<std::uint64_t>(next_as.value());
      if (seen.insert(key).second) out.push_back({exporter, l, next_as});
    }
  }
  // A misconfiguration is a *partial* failure ("the link works for a
  // subset of paths but not for others", §1): keep candidates whose
  // session carries at least one other next-AS cone among the probed
  // paths, so working paths keep crossing the misconfigured link. Fall
  // back to all candidates when the mesh offers no partial one.
  std::map<std::uint64_t, int> cones_per_session;
  for (const auto& mc : out) {
    ++cones_per_session[(static_cast<std::uint64_t>(mc.exporter.value())
                         << 24) |
                        mc.link.value()];
  }
  std::vector<Misconfig> partial;
  for (const auto& mc : out) {
    if (cones_per_session[(static_cast<std::uint64_t>(mc.exporter.value())
                           << 24) |
                          mc.link.value()] >= 2) {
      partial.push_back(mc);
    }
  }
  return partial.empty() ? out : partial;
}

/// A single-prefix misconfiguration candidate: exporter stops announcing
/// exactly `prefix` over `link` (finer than any per-neighbor policy; see
/// FailureMode::kMisconfigPrefix).
struct PrefixMisconfig {
  RouterId exporter;
  LinkId link;
  PrefixId prefix;
};

std::vector<PrefixMisconfig> prefix_misconfig_candidates(
    const topo::Topology& topo, const Mesh& mesh) {
  std::vector<PrefixMisconfig> out;
  std::set<std::uint64_t> seen;
  for (const auto& p : mesh.paths) {
    if (!p.ok) continue;
    const int dest_asn = p.hops.back().asn;
    if (dest_asn < 0) continue;
    std::vector<RouterId> routers;
    for (std::size_t i = 1; i + 1 < p.hops.size(); ++i) {
      routers.push_back(p.hops[i].router);
    }
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      const LinkId l = p.links[i];
      if (!topo.link(l).interdomain) continue;
      const RouterId exporter = routers[i + 1];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(exporter.value()) << 40) |
          (static_cast<std::uint64_t>(l.value()) << 16) |
          static_cast<std::uint64_t>(dest_asn);
      if (seen.insert(key).second) {
        out.push_back({exporter, l,
                       PrefixId{static_cast<std::uint32_t>(dest_asn)}});
      }
    }
  }
  return out;
}

/// Transit routers appearing on the probed paths, excluding the sensors'
/// attachment routers (failing those kills the sensor itself).
std::vector<RouterId> router_candidates(const Mesh& mesh,
                                        const std::vector<Sensor>& sensors) {
  std::set<std::uint32_t> attach;
  for (const auto& s : sensors) attach.insert(s.attach.value());
  std::set<std::uint32_t> seen;
  for (const auto& p : mesh.paths) {
    if (!p.ok) continue;
    for (const auto& h : p.hops) {
      if (h.router.valid() && attach.count(h.router.value()) == 0) {
        seen.insert(h.router.value());
      }
    }
  }
  std::vector<RouterId> out;
  out.reserve(seen.size());
  for (std::uint32_t v : seen) out.push_back(RouterId{v});
  return out;
}

}  // namespace

void inject_cone_misconfig(sim::Network& net, RouterId exporter, LinkId link,
                           AsId next_as,
                           const std::vector<Sensor>& sensors) {
  const auto& topo = net.topology();
  const AsId exporter_as = topo.as_of_router(exporter);
  for (const auto& s : sensors) {
    const PrefixId p = topo.prefix_of(s.as);
    const auto route = net.bgp().best(exporter, p);
    if (!route) continue;
    const AsId via = route->as_path.empty() ? exporter_as : route->as_path[0];
    if (via == next_as) net.misconfigure_export(exporter, link, p);
  }
}

Runner::Runner(const ScenarioConfig& cfg)
    : cfg_(cfg), net_(topo::generate(cfg.topo_params)) {
  net_.converge();
}

Runner::Runner(topo::Topology topology, const ScenarioConfig& cfg)
    : cfg_(cfg), net_(std::move(topology)) {
  net_.converge();
}

void Runner::for_each_episode(
    const std::function<void(const EpisodeContext&)>& fn, bool deploy_lg) {
  const auto& topo = net_.topology();
  const bool need_lg = deploy_lg || cfg_.frac_blocked > 0.0;

  const sim::Network::Snapshot base = net_.snapshot();
  std::optional<lg::LgTable> lg_table;
  if (need_lg) lg_table.emplace(net_);

  util::Rng root(cfg_.seed);

  for (std::size_t pl = 0; pl < cfg_.num_placements; ++pl) {
    util::Rng rng(root.fork());
    const std::vector<Sensor> sensors =
        probe::place_sensors(topo, cfg_.placement, cfg_.num_sensors, rng);
    std::set<std::uint32_t> sensor_ases;
    for (const auto& s : sensors) sensor_ases.insert(s.as.value());

    // AS-X: core AS 0, or a random stub hosting no sensor (§5.3).
    AsId op_as{0};
    if (!cfg_.operator_at_core) {
      std::vector<AsId> stubs;
      for (const auto& as : topo.ases()) {
        if (as.cls == topo::AsClass::kStub &&
            sensor_ases.count(as.id.value()) == 0) {
          stubs.push_back(as.id);
        }
      }
      if (!stubs.empty()) op_as = rng.pick(stubs);
    }
    net_.set_operator_as(op_as);

    // Ground-truth mesh (never blocked) — used for failure sampling and
    // ground-truth AS coverage.
    Prober ground(net_, sensors);
    const Mesh gmesh = ground.measure();

    // ASes that block traceroutes: a fraction f_b of the on-path transit
    // ASes (sensor ASes and AS-X itself never block).
    std::set<std::uint32_t> blocked;
    if (cfg_.frac_blocked > 0.0) {
      std::vector<std::uint32_t> blockable;
      for (int asn : gmesh.covered_ases(topo)) {
        const auto v = static_cast<std::uint32_t>(asn);
        if (sensor_ases.count(v) == 0 && v != op_as.value()) {
          blockable.push_back(v);
        }
      }
      const auto k = static_cast<std::size_t>(
          cfg_.frac_blocked * static_cast<double>(blockable.size()) + 0.5);
      for (std::uint32_t v :
           rng.sample(blockable, std::min(k, blockable.size()))) {
        blocked.insert(v);
      }
    }

    // Looking Glass availability: a fraction of all ASes.
    std::optional<lg::LookingGlassService> lg_svc;
    if (need_lg) {
      std::set<std::uint32_t> avail;
      for (const auto& as : topo.ases()) {
        if (rng.bernoulli(cfg_.frac_lg)) avail.insert(as.id.value());
      }
      lg_svc.emplace(*lg_table, std::move(avail), op_as);
    }

    Prober prober(net_, sensors, blocked);
    const Mesh before = prober.measure();

    const std::vector<LinkId> pool = gmesh.probed_links();
    const std::vector<Misconfig> mcs = misconfig_candidates(topo, gmesh);
    const std::vector<PrefixMisconfig> pmcs =
        prefix_misconfig_candidates(topo, gmesh);
    const std::vector<RouterId> router_pool = router_candidates(gmesh, sensors);
    if (pool.size() < cfg_.num_link_failures) continue;

    const double diag = core::diagnosability(
        core::build_diagnosis_graph(before, before, /*logical_links=*/false));

    for (std::size_t trial = 0; trial < cfg_.trials_per_placement; ++trial) {
      // Draw failures until the event breaks some path (the paper's
      // troubleshooter is only invoked on unreachability).
      bool invoked = false;
      std::vector<LinkId> failed_links;
      RouterId failed_router;
      std::optional<Misconfig> mc;
      std::optional<PrefixMisconfig> pmc;
      Mesh after;
      for (std::size_t attempt = 0;
           attempt < cfg_.max_attempts_per_trial && !invoked; ++attempt) {
        failed_links.clear();
        failed_router = RouterId{};
        mc.reset();
        pmc.reset();
        switch (cfg_.mode) {
          case FailureMode::kLinks:
            failed_links = rng.sample(pool, cfg_.num_link_failures);
            break;
          case FailureMode::kRouter:
            if (router_pool.empty()) break;
            failed_router = rng.pick(router_pool);
            break;
          case FailureMode::kMisconfig:
            if (mcs.empty()) break;
            mc = rng.pick(mcs);
            break;
          case FailureMode::kMisconfigPlusLink:
            if (mcs.empty()) break;
            mc = rng.pick(mcs);
            failed_links = rng.sample(pool, cfg_.num_link_failures);
            break;
          case FailureMode::kMisconfigPrefix:
            if (pmcs.empty()) break;
            pmc = rng.pick(pmcs);
            break;
        }
        if (failed_links.empty() && !failed_router.valid() && !mc && !pmc) {
          break;
        }

        net_.start_recording();
        for (LinkId l : failed_links) net_.fail_link(l);
        if (failed_router.valid()) net_.fail_router(failed_router);
        if (mc) {
          inject_cone_misconfig(net_, mc->exporter, mc->link, mc->next_as,
                                sensors);
        }
        if (pmc) net_.misconfigure_export(pmc->exporter, pmc->link, pmc->prefix);
        net_.reconverge();
        after = prober.measure();
        for (std::size_t k = 0; k < before.paths.size(); ++k) {
          if (before.paths[k].ok && !after.paths[k].ok) {
            invoked = true;
            break;
          }
        }
        if (!invoked) net_.restore(base);
      }
      if (!invoked) continue;  // this trial never caused unreachability

      // Ground truth F at link and AS granularity.
      std::set<std::string> f_links;
      std::set<int> f_ases;
      auto add_failed = [&](LinkId l) {
        f_links.insert(link_key(topo, l));
        const auto& link = topo.link(l);
        f_ases.insert(static_cast<int>(topo.as_of_router(link.a).value()));
        f_ases.insert(static_cast<int>(topo.as_of_router(link.b).value()));
      };
      for (LinkId l : failed_links) add_failed(l);
      if (mc) add_failed(mc->link);
      if (pmc) add_failed(pmc->link);
      if (failed_router.valid()) {
        for (LinkId l : pool) {
          const auto& link = topo.link(l);
          if (link.a == failed_router || link.b == failed_router) {
            add_failed(l);
          }
        }
        f_ases.insert(
            static_cast<int>(topo.as_of_router(failed_router).value()));
      }

      // AS universe: ground-truth coverage of the probes (T− and T+).
      std::set<int> universe = gmesh.covered_ases(topo);
      for (int a : after.covered_ases(topo)) universe.insert(a);
      for (int a : f_ases) universe.insert(a);

      const core::ControlPlaneObs cp = collect_control_plane(net_);

      EpisodeContext ctx{before,
                         after,
                         cp,
                         lg_svc ? &*lg_svc : nullptr,
                         op_as,
                         f_links,
                         f_ases,
                         universe,
                         diag};
      fn(ctx);
      net_.restore(base);
      net_.set_operator_as(op_as);
    }
  }
}

std::vector<TrialResult> Runner::run(const std::vector<Algo>& algos) {
  const bool need_lg =
      std::find(algos.begin(), algos.end(), Algo::kNdLg) != algos.end();
  std::vector<TrialResult> results;
  for_each_episode(
      [&](const EpisodeContext& ep) {
        TrialResult tr;
        tr.diagnosability = ep.diagnosability;
        for (Algo algo : algos) {
          core::AlgorithmOutput out;
          switch (algo) {
            case Algo::kTomo:
              out = core::run_tomo(ep.before, ep.after);
              break;
            case Algo::kNdEdge:
              out = core::run_nd_edge(ep.before, ep.after);
              break;
            case Algo::kNdBgpIgp:
              out = core::run_nd_bgpigp(ep.before, ep.after, ep.cp);
              break;
            case Algo::kNdLg:
              assert(ep.lg != nullptr);
              out = core::run_nd_lg(ep.before, ep.after, ep.cp, *ep.lg,
                                    ep.operator_as);
              break;
          }
          if (!ep.failed_links.empty()) {
            tr.link[algo] = core::link_metrics(out.result.links,
                                               ep.failed_links,
                                               out.graph.probed_keys);
          }
          tr.as_level[algo] =
              core::as_metrics(out.result.ases, ep.failed_ases, ep.universe);
          if (cfg_.mode == FailureMode::kRouter) {
            for (const auto& k : out.result.links) {
              if (ep.failed_links.count(k) != 0) {
                tr.router_detected = true;
                break;
              }
            }
          }
        }
        results.push_back(std::move(tr));
      },
      need_lg);
  return results;
}

}  // namespace netd::exp
