#include "exp/runner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>

#include "core/diagnosability.h"
#include "exp/checkpoint.h"
#include "lg/looking_glass.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "plan/planner.h"
#include "svc/trace.h"
#include "util/atomic_file.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace netd::exp {

using probe::Mesh;
using probe::Prober;
using probe::Sensor;
using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::RouterId;

const char* to_string(Algo a) {
  switch (a) {
    case Algo::kTomo: return "Tomo";
    case Algo::kNdEdge: return "ND-edge";
    case Algo::kNdBgpIgp: return "ND-bgpigp";
    case Algo::kNdLg: return "ND-LG";
  }
  return "?";
}

std::optional<Algo> algo_from_string(std::string_view s) {
  if (s == "Tomo") return Algo::kTomo;
  if (s == "ND-edge") return Algo::kNdEdge;
  if (s == "ND-bgpigp") return Algo::kNdBgpIgp;
  if (s == "ND-LG") return Algo::kNdLg;
  return std::nullopt;
}

const char* to_string(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::kRandom: return "random";
    case PlacementStrategy::kPlanned: return "planned";
  }
  return "?";
}

std::optional<PlacementStrategy> placement_strategy_from_string(
    std::string_view s) {
  if (s == "random") return PlacementStrategy::kRandom;
  if (s == "planned") return PlacementStrategy::kPlanned;
  return std::nullopt;
}

std::string link_key(const topo::Topology& topo, LinkId l) {
  const auto& link = topo.link(l);
  return core::undirected_key(topo.router(link.a).name,
                              topo.router(link.b).name);
}

core::ControlPlaneObs collect_control_plane(const sim::Network& net) {
  core::ControlPlaneObs obs;
  const auto& topo = net.topology();
  for (LinkId l : net.igp_link_down_events()) {
    obs.igp_down_keys.push_back(link_key(topo, l));
  }
  for (const auto& m : net.bgp_messages()) {
    if (!m.withdraw) continue;
    obs.withdrawals.push_back(core::ControlPlaneObs::Withdrawal{
        topo.router(m.at).name + ">" + topo.router(m.from).name,
        static_cast<int>(m.prefix.value())});
  }
  return obs;
}

namespace {

/// An export-filter misconfiguration candidate (paper §3.1 / §4): router
/// `exporter` stops announcing, over `link`, every route it reaches via
/// its out-neighbor AS `next_as` — the paper's "y1 announces to x2 only
/// the route towards B, while it does not announce the route towards C".
/// BGP policies (and hence misconfigurations) act per neighbor, which is
/// also the granularity of ND-edge's logical links.
struct Misconfig {
  RouterId exporter;
  LinkId link;
  AsId next_as;
};

/// All (interdomain link, downstream exporter, next AS) combinations
/// present on the T− paths. The exporter is the far-side router: traffic
/// flowing q→r toward the destination rides the announcement r made to q,
/// and the cone is identified by the AS right after r's AS on the path.
std::vector<Misconfig> misconfig_candidates(const topo::Topology& topo,
                                            const Mesh& mesh) {
  std::vector<Misconfig> out;
  std::set<std::uint64_t> seen;
  for (const auto& p : mesh.paths) {
    if (!p.ok) continue;
    // Router sequence: hops minus the two sensor endpoints.
    std::vector<RouterId> routers;
    for (std::size_t i = 1; i + 1 < p.hops.size(); ++i) {
      routers.push_back(p.hops[i].router);
    }
    assert(routers.size() == p.links.size() + 1);
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      const LinkId l = p.links[i];
      if (!topo.link(l).interdomain) continue;
      const RouterId exporter = routers[i + 1];
      const AsId exporter_as = topo.as_of_router(exporter);
      // Next AS beyond the exporter's AS on this path; the exporter's own
      // AS when the path terminates inside it.
      AsId next_as = exporter_as;
      for (std::size_t k = i + 2; k < routers.size(); ++k) {
        if (topo.as_of_router(routers[k]) != exporter_as) {
          next_as = topo.as_of_router(routers[k]);
          break;
        }
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(exporter.value()) << 40) |
          (static_cast<std::uint64_t>(l.value()) << 16) |
          static_cast<std::uint64_t>(next_as.value());
      if (seen.insert(key).second) out.push_back({exporter, l, next_as});
    }
  }
  // A misconfiguration is a *partial* failure ("the link works for a
  // subset of paths but not for others", §1): keep candidates whose
  // session carries at least one other next-AS cone among the probed
  // paths, so working paths keep crossing the misconfigured link. Fall
  // back to all candidates when the mesh offers no partial one.
  std::map<std::uint64_t, int> cones_per_session;
  for (const auto& mc : out) {
    ++cones_per_session[(static_cast<std::uint64_t>(mc.exporter.value())
                         << 24) |
                        mc.link.value()];
  }
  std::vector<Misconfig> partial;
  for (const auto& mc : out) {
    if (cones_per_session[(static_cast<std::uint64_t>(mc.exporter.value())
                           << 24) |
                          mc.link.value()] >= 2) {
      partial.push_back(mc);
    }
  }
  return partial.empty() ? out : partial;
}

/// A single-prefix misconfiguration candidate: exporter stops announcing
/// exactly `prefix` over `link` (finer than any per-neighbor policy; see
/// FailureMode::kMisconfigPrefix).
struct PrefixMisconfig {
  RouterId exporter;
  LinkId link;
  PrefixId prefix;
};

std::vector<PrefixMisconfig> prefix_misconfig_candidates(
    const topo::Topology& topo, const Mesh& mesh) {
  std::vector<PrefixMisconfig> out;
  std::set<std::uint64_t> seen;
  for (const auto& p : mesh.paths) {
    if (!p.ok) continue;
    const int dest_asn = p.hops.back().asn;
    if (dest_asn < 0) continue;
    std::vector<RouterId> routers;
    for (std::size_t i = 1; i + 1 < p.hops.size(); ++i) {
      routers.push_back(p.hops[i].router);
    }
    for (std::size_t i = 0; i < p.links.size(); ++i) {
      const LinkId l = p.links[i];
      if (!topo.link(l).interdomain) continue;
      const RouterId exporter = routers[i + 1];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(exporter.value()) << 40) |
          (static_cast<std::uint64_t>(l.value()) << 16) |
          static_cast<std::uint64_t>(dest_asn);
      if (seen.insert(key).second) {
        out.push_back({exporter, l,
                       PrefixId{static_cast<std::uint32_t>(dest_asn)}});
      }
    }
  }
  return out;
}

/// Transit routers appearing on the probed paths, excluding the sensors'
/// attachment routers (failing those kills the sensor itself).
std::vector<RouterId> router_candidates(const Mesh& mesh,
                                        const std::vector<Sensor>& sensors) {
  std::set<std::uint32_t> attach;
  for (const auto& s : sensors) attach.insert(s.attach.value());
  std::set<std::uint32_t> seen;
  for (const auto& p : mesh.paths) {
    if (!p.ok) continue;
    for (const auto& h : p.hops) {
      if (h.router.valid() && attach.count(h.router.value()) == 0) {
        seen.insert(h.router.value());
      }
    }
  }
  std::vector<RouterId> out;
  out.reserve(seen.size());
  for (std::uint32_t v : seen) out.push_back(RouterId{v});
  return out;
}

}  // namespace

void inject_cone_misconfig(sim::Network& net, RouterId exporter, LinkId link,
                           AsId next_as,
                           const std::vector<Sensor>& sensors) {
  const auto& topo = net.topology();
  const AsId exporter_as = topo.as_of_router(exporter);
  for (const auto& s : sensors) {
    const PrefixId p = topo.prefix_of(s.as);
    const auto route = net.bgp().best(exporter, p);
    if (!route) continue;
    const AsId via = route->as_path.empty() ? exporter_as : route->as_path[0];
    if (via == next_as) net.misconfigure_export(exporter, link, p);
  }
}

Runner::Runner(const ScenarioConfig& cfg)
    : cfg_(cfg), net_(topo::generate(cfg.topo_params)) {
  net_.converge();
}

Runner::Runner(topo::Topology topology, const ScenarioConfig& cfg)
    : cfg_(cfg), net_(std::move(topology)) {
  net_.converge();
}

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Campaign-runner instruments, resolved once per process.
struct RunnerInstruments {
  obs::Counter& trials = obs::Registry::global().counter(
      "netd_runner_trials_total", "Trials started across all placements");
  obs::Counter& attempts = obs::Registry::global().counter(
      "netd_runner_attempts_total", "Failure-injection attempts");
  obs::Counter& episodes = obs::Registry::global().counter(
      "netd_runner_episodes_total", "Diagnosable episodes produced");
  obs::Counter& quarantined = obs::Registry::global().counter(
      "netd_runner_quarantined_total", "Trials abandoned by the watchdog");
  obs::Gauge& watchdog_margin = obs::Registry::global().gauge(
      "netd_runner_watchdog_margin_ms",
      "Deadline headroom (ms) of the last watchdog-checked trial; negative "
      "means the trial blew its budget and was quarantined");

  static RunnerInstruments& get() {
    static RunnerInstruments i;
    return i;
  }
};

/// Draws one placement's sensors per the configured strategy. kRandom is
/// the direct draw; kPlanned draws a larger candidate pool from the same
/// RNG stream and deploys the plan::Planner-chosen num_sensors subset
/// (identifiability objective over ground-truth shortest paths). Either
/// way all randomness comes from `rng`, so placements stay pre-forked and
/// thread-count independent.
std::vector<Sensor> draw_sensors(const ScenarioConfig& cfg,
                                 const topo::Topology& topo, util::Rng& rng) {
  if (cfg.placement_strategy == PlacementStrategy::kRandom) {
    return probe::place_sensors(topo, cfg.placement, cfg.num_sensors, rng);
  }
  // The pool draw can ask for more sensors than the topology can host
  // (e.g. the default 4x oversample on a topology with few stub ASes);
  // clamp to capacity so small topologies degrade to planning over
  // whatever pool fits instead of failing the placement draw.
  const std::size_t pool_n = std::max(
      std::min(cfg.plan_pool == 0 ? cfg.num_sensors * 4 : cfg.plan_pool,
               probe::placement_capacity(topo, cfg.placement)),
      cfg.num_sensors);
  std::vector<Sensor> pool =
      probe::place_sensors(topo, cfg.placement, pool_n, rng);
  plan::PlannerConfig pcfg;
  pcfg.budget = cfg.num_sensors;
  pcfg.num_threads = 1;  // placements are already sharded across workers
  pcfg.measure_report = false;
  plan::Planner planner(topo, std::move(pool), pcfg);
  return planner.plan().sensors;
}

/// Runs the §4 protocol for one placement on `net` (which must be at the
/// converged base state captured in `base`), invoking `sink(trial,
/// episode)` once per diagnosable episode. Leaves `net` restored to
/// `base`. All randomness comes from `seed` — the placement's pre-forked
/// stream — so the outcome is independent of which thread or network
/// clone executes it. `lg_table` is non-null iff the scenario deploys
/// Looking Glasses. Returns the trial indices the per-trial watchdog
/// (cfg.trial_deadline_ms) abandoned; always empty with the watchdog off.
std::vector<std::size_t> run_placement(
    const ScenarioConfig& cfg, sim::Network& net,
    const sim::Network::Snapshot& base, std::uint64_t seed,
    const lg::LgTable* lg_table,
    const std::function<void(std::size_t, const EpisodeContext&)>& sink) {
  std::vector<std::size_t> quarantined;
  const auto& topo = net.topology();
  util::Rng rng(seed);
  const std::vector<Sensor> sensors = draw_sensors(cfg, topo, rng);
  std::set<std::uint32_t> sensor_ases;
  for (const auto& s : sensors) sensor_ases.insert(s.as.value());

  // AS-X: core AS 0, or a random stub hosting no sensor (§5.3).
  AsId op_as{0};
  if (!cfg.operator_at_core) {
    std::vector<AsId> stubs;
    for (const auto& as : topo.ases()) {
      if (as.cls == topo::AsClass::kStub &&
          sensor_ases.count(as.id.value()) == 0) {
        stubs.push_back(as.id);
      }
    }
    if (!stubs.empty()) op_as = rng.pick(stubs);
  }
  net.set_operator_as(op_as);

  // Ground-truth mesh (never blocked) — used for failure sampling and
  // ground-truth AS coverage.
  Prober ground(net, sensors);
  const Mesh gmesh = ground.measure();

  // ASes that block traceroutes: a fraction f_b of the on-path transit
  // ASes (sensor ASes and AS-X itself never block).
  std::set<std::uint32_t> blocked;
  if (cfg.frac_blocked > 0.0) {
    std::vector<std::uint32_t> blockable;
    for (int asn : gmesh.covered_ases(topo)) {
      const auto v = static_cast<std::uint32_t>(asn);
      if (sensor_ases.count(v) == 0 && v != op_as.value()) {
        blockable.push_back(v);
      }
    }
    const auto k = static_cast<std::size_t>(
        cfg.frac_blocked * static_cast<double>(blockable.size()) + 0.5);
    for (std::uint32_t v :
         rng.sample(blockable, std::min(k, blockable.size()))) {
      blocked.insert(v);
    }
  }

  // Looking Glass availability: a fraction of all ASes.
  std::optional<lg::LookingGlassService> lg_svc;
  if (lg_table != nullptr) {
    std::set<std::uint32_t> avail;
    for (const auto& as : topo.ases()) {
      if (rng.bernoulli(cfg.frac_lg)) avail.insert(as.id.value());
    }
    lg_svc.emplace(*lg_table, std::move(avail), op_as);
  }

  Prober prober(net, sensors, blocked);
  const Mesh before = prober.measure();

  const std::vector<LinkId> pool = gmesh.probed_links();
  const std::vector<Misconfig> mcs = misconfig_candidates(topo, gmesh);
  const std::vector<PrefixMisconfig> pmcs =
      prefix_misconfig_candidates(topo, gmesh);
  const std::vector<RouterId> router_pool = router_candidates(gmesh, sensors);
  if (pool.size() < cfg.num_link_failures) return quarantined;

  const double diag = core::diagnosability(
      core::build_diagnosis_graph(before, before, /*logical_links=*/false));

  // Watchdog clock: cooperative deadline checks sit between attempts and
  // after the expensive T+ mesh measurement — the two places a trial
  // spends its time.
  const auto now_ms = [&cfg]() {
    return cfg.now_ms ? cfg.now_ms() : steady_now_ms();
  };

  RunnerInstruments& ins = RunnerInstruments::get();
  for (std::size_t trial = 0; trial < cfg.trials_per_placement; ++trial) {
    obs::Span trial_span("trial");
    ins.trials.inc();
    const std::uint64_t trial_start = cfg.trial_deadline_ms > 0 ? now_ms() : 0;
    const auto deadline_expired = [&]() {
      return cfg.trial_deadline_ms > 0 &&
             now_ms() - trial_start >= cfg.trial_deadline_ms;
    };
    bool quarantine = false;
    // Draw failures until the event breaks some path (the paper's
    // troubleshooter is only invoked on unreachability).
    bool invoked = false;
    std::vector<LinkId> failed_links;
    RouterId failed_router;
    std::optional<Misconfig> mc;
    std::optional<PrefixMisconfig> pmc;
    Mesh after;
    for (std::size_t attempt = 0;
         attempt < cfg.max_attempts_per_trial && !invoked; ++attempt) {
      ins.attempts.inc();
      if (deadline_expired()) {  // net is at `base` here
        quarantine = true;
        break;
      }
      failed_links.clear();
      failed_router = RouterId{};
      mc.reset();
      pmc.reset();
      switch (cfg.mode) {
        case FailureMode::kLinks:
          failed_links = rng.sample(pool, cfg.num_link_failures);
          break;
        case FailureMode::kRouter:
          if (router_pool.empty()) break;
          failed_router = rng.pick(router_pool);
          break;
        case FailureMode::kMisconfig:
          if (mcs.empty()) break;
          mc = rng.pick(mcs);
          break;
        case FailureMode::kMisconfigPlusLink:
          if (mcs.empty()) break;
          mc = rng.pick(mcs);
          failed_links = rng.sample(pool, cfg.num_link_failures);
          break;
        case FailureMode::kMisconfigPrefix:
          if (pmcs.empty()) break;
          pmc = rng.pick(pmcs);
          break;
      }
      if (failed_links.empty() && !failed_router.valid() && !mc && !pmc) {
        break;
      }

      net.start_recording();
      for (LinkId l : failed_links) net.fail_link(l);
      if (failed_router.valid()) net.fail_router(failed_router);
      if (mc) {
        inject_cone_misconfig(net, mc->exporter, mc->link, mc->next_as,
                              sensors);
      }
      if (pmc) net.misconfigure_export(pmc->exporter, pmc->link, pmc->prefix);
      net.reconverge();
      // Cheap invocation check: the troubleshooter only fires when a
      // previously-working pair broke, so retrace just those pairs (no
      // mesh rendering) and pay for the full T+ mesh only on the attempt
      // that actually caused unreachability.
      for (const auto& p : before.paths) {
        if (!p.ok) continue;
        if (!net.trace_flow(sensors[p.src].attach, sensors[p.dst].attach,
                            prober.flow())
                 .ok) {
          invoked = true;
          break;
        }
      }
      if (invoked) {
        after = prober.measure();
        if (deadline_expired()) {
          // Abandon the whole trial, not just the attempt: a half-scored
          // episode is worse than a quarantined one.
          net.restore(base);
          net.set_operator_as(op_as);
          quarantine = true;
          break;
        }
      } else {
        net.restore(base);
      }
    }
    if (cfg.trial_deadline_ms > 0) {
      // Margin the watchdog left on this trial: negative iff quarantined.
      ins.watchdog_margin.set(static_cast<double>(cfg.trial_deadline_ms) -
                              static_cast<double>(now_ms() - trial_start));
    }
    if (quarantine) {
      ins.quarantined.inc();
      quarantined.push_back(trial);
      continue;
    }
    if (!invoked) continue;  // this trial never caused unreachability

    // Ground truth F at link and AS granularity.
    std::set<std::string> f_links;
    std::set<int> f_ases;
    auto add_failed = [&](LinkId l) {
      f_links.insert(link_key(topo, l));
      const auto& link = topo.link(l);
      f_ases.insert(static_cast<int>(topo.as_of_router(link.a).value()));
      f_ases.insert(static_cast<int>(topo.as_of_router(link.b).value()));
    };
    for (LinkId l : failed_links) add_failed(l);
    if (mc) add_failed(mc->link);
    if (pmc) add_failed(pmc->link);
    if (failed_router.valid()) {
      for (LinkId l : pool) {
        const auto& link = topo.link(l);
        if (link.a == failed_router || link.b == failed_router) {
          add_failed(l);
        }
      }
      f_ases.insert(
          static_cast<int>(topo.as_of_router(failed_router).value()));
    }

    // AS universe: ground-truth coverage of the probes (T− and T+).
    std::set<int> universe = gmesh.covered_ases(topo);
    for (int a : after.covered_ases(topo)) universe.insert(a);
    for (int a : f_ases) universe.insert(a);

    const core::ControlPlaneObs cp = collect_control_plane(net);

    EpisodeContext ctx{before,
                       after,
                       cp,
                       lg_svc ? &*lg_svc : nullptr,
                       op_as,
                       f_links,
                       f_ases,
                       universe,
                       diag};
    ins.episodes.inc();
    sink(trial, ctx);
    net.restore(base);
    net.set_operator_as(op_as);
  }
  return quarantined;
}

/// Scores one episode for run(): runs every requested algorithm and
/// derives the per-trial metrics. Pure per-episode work — safe to call
/// from pool workers.
TrialResult score_episode(const EpisodeContext& ep,
                          const std::vector<Algo>& algos, FailureMode mode) {
  TrialResult tr;
  tr.diagnosability = ep.diagnosability;
  for (Algo algo : algos) {
    core::AlgorithmOutput out;
    switch (algo) {
      case Algo::kTomo:
        out = core::run_tomo(ep.before, ep.after);
        break;
      case Algo::kNdEdge:
        out = core::run_nd_edge(ep.before, ep.after);
        break;
      case Algo::kNdBgpIgp:
        out = core::run_nd_bgpigp(ep.before, ep.after, ep.cp);
        break;
      case Algo::kNdLg:
        assert(ep.lg != nullptr);
        out = core::run_nd_lg(ep.before, ep.after, ep.cp, *ep.lg,
                              ep.operator_as);
        break;
    }
    if (!ep.failed_links.empty()) {
      tr.link[algo] = core::link_metrics(out.result.links, ep.failed_links,
                                         out.graph.probed_keys);
    }
    tr.as_level[algo] =
        core::as_metrics(out.result.ases, ep.failed_ases, ep.universe);
    if (mode == FailureMode::kRouter) {
      for (const auto& k : out.result.links) {
        if (ep.failed_links.count(k) != 0) {
          tr.router_detected = true;
          break;
        }
      }
    }
  }
  return tr;
}

/// Everything one episode contributes to a deferred for_each_episode
/// callback, copied out of the worker-local EpisodeContext.
struct EpisodeData {
  Mesh after;
  core::ControlPlaneObs cp;
  std::set<std::string> f_links;
  std::set<int> f_ases;
  std::set<int> universe;
};

/// Per-placement bundle backing the deferred callbacks of one placement.
struct PlacementData {
  Mesh before;
  std::optional<lg::LookingGlassService> lg_svc;
  AsId op_as{0};
  double diag = 0.0;
  std::vector<EpisodeData> episodes;
};

}  // namespace

std::size_t Runner::effective_threads() const {
  return std::min(util::ThreadPool::resolve_threads(cfg_.num_threads),
                  std::max<std::size_t>(1, cfg_.num_placements));
}

void Runner::map_episodes(
    bool need_lg,
    const std::function<void(std::size_t, std::size_t, const EpisodeContext&)>&
        sink,
    const MapHooks* hooks) {
  // The LG answer table is a function of the shared base state; build it
  // once and let every placement's service filter it.
  std::optional<lg::LgTable> lg_table;
  if (need_lg) lg_table.emplace(net_);
  const lg::LgTable* table = lg_table ? &*lg_table : nullptr;

  // Pre-fork one seed per placement, in placement order — the same
  // sequence the serial loop consumes, so sharding (or skipping resumed
  // placements) cannot change any placement's draws.
  util::Rng root(cfg_.seed);
  std::vector<std::uint64_t> seeds(cfg_.num_placements);
  for (auto& s : seeds) s = root.fork();

  const auto should_run = [&](std::size_t pl) {
    return hooks == nullptr || hooks->run_only == nullptr ||
           hooks->run_only->count(pl) != 0;
  };
  const auto run_one = [&](sim::Network& net,
                           const sim::Network::Snapshot& base,
                           std::size_t pl) {
    // Root span of this placement's trace: the context derives from
    // (campaign seed, placement index) only, so the span tree is
    // identical across runs and across --threads settings, and other
    // threads (the checkpoint commit) can recompute it to join the trace.
    obs::Span pl_span(
        "placement",
        obs::Span::root_context(cfg_.seed, pl, static_cast<std::uint32_t>(pl + 1)),
        /*salt=*/0);
    auto quarantined =
        run_placement(cfg_, net, base, seeds[pl], table,
                      [&](std::size_t trial, const EpisodeContext& ep) {
                        sink(pl, trial, ep);
                      });
    if (hooks != nullptr && hooks->on_placement_done) {
      hooks->on_placement_done(pl, seeds[pl], std::move(quarantined));
    }
  };

  const std::size_t threads = effective_threads();
  if (threads <= 1) {
    const sim::Network::Snapshot base = net_.snapshot();
    for (std::size_t pl = 0; pl < cfg_.num_placements; ++pl) {
      if (should_run(pl)) run_one(net_, base, pl);
    }
    return;
  }

  // Placement-granularity sharding: worker w owns the contiguous block
  // [w·P/T, (w+1)·P/T) on a private clone of the network (re-converged
  // from the same topology, hence bit-identical routing state), so every
  // placement's episodes are produced by exactly one thread.
  util::ThreadPool pool(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    const std::size_t begin = w * cfg_.num_placements / threads;
    const std::size_t end = (w + 1) * cfg_.num_placements / threads;
    if (begin == end) continue;
    bool any = false;
    for (std::size_t pl = begin; pl < end && !any; ++pl) any = should_run(pl);
    if (!any) continue;
    pool.submit([this, begin, end, &should_run, &run_one] {
      sim::Network net(net_.topology());
      net.converge();
      const sim::Network::Snapshot base = net.snapshot();
      for (std::size_t pl = begin; pl < end; ++pl) {
        if (should_run(pl)) run_one(net, base, pl);
      }
    });
  }
  pool.wait_all();
}

void Runner::for_each_episode(
    const std::function<void(const EpisodeContext&)>& fn, bool deploy_lg) {
  const bool need_lg = deploy_lg || cfg_.frac_blocked > 0.0;
  if (effective_threads() <= 1) {
    map_episodes(need_lg, [&](std::size_t, std::size_t,
                              const EpisodeContext& ep) { fn(ep); });
    return;
  }

  // Parallel mode: workers materialize each placement's episodes; the
  // callbacks replay here in placement order, so `fn` never needs to be
  // thread-safe and observes the same sequence as a serial run.
  std::vector<PlacementData> data(cfg_.num_placements);
  map_episodes(need_lg, [&](std::size_t pl, std::size_t,
                            const EpisodeContext& ep) {
    PlacementData& d = data[pl];
    if (d.episodes.empty()) {
      d.before = ep.before;
      if (ep.lg != nullptr) d.lg_svc.emplace(*ep.lg);
      d.op_as = ep.operator_as;
      d.diag = ep.diagnosability;
    }
    d.episodes.push_back(EpisodeData{ep.after, ep.cp, ep.failed_links,
                                     ep.failed_ases, ep.universe});
  });
  for (const PlacementData& d : data) {
    for (const EpisodeData& e : d.episodes) {
      EpisodeContext ctx{d.before,
                         e.after,
                         e.cp,
                         d.lg_svc ? &*d.lg_svc : nullptr,
                         d.op_as,
                         e.f_links,
                         e.f_ases,
                         e.universe,
                         d.diag};
      fn(ctx);
    }
  }
}

std::optional<std::size_t> Runner::record_trace(std::ostream& os,
                                                const svc::SessionConfig& config,
                                                std::string* error) {
  const auto resolved = config.resolve(error);
  if (!resolved) return std::nullopt;
  svc::TraceRecorder recorder(os, config);
  core::Troubleshooter ts(*resolved);
  std::size_t episodes = 0;
  for_each_episode([&](const EpisodeContext& ep) {
    ++episodes;
    ts.set_baseline(ep.before);
    recorder.baseline(ep.before);
    // The failure persists across rounds, so the alarm fires exactly on
    // round `alarm_threshold` and that round carries the diagnosis.
    for (std::size_t r = 0; r < config.alarm_threshold; ++r) {
      recorder.round(ep.after, &ep.cp);
      const auto out = ts.observe(ep.after, &ep.cp);
      if (out.has_value()) recorder.diagnosis(*out);
    }
  });
  return episodes;
}

std::vector<TrialResult> Runner::run(const std::vector<Algo>& algos) {
  const bool need_lg =
      std::find(algos.begin(), algos.end(), Algo::kNdLg) != algos.end();
  // Each placement's bucket is filled by the single worker that owns it;
  // concatenating in placement order makes the output independent of
  // scheduling.
  std::vector<std::vector<TrialResult>> buckets(cfg_.num_placements);
  map_episodes(need_lg,
               [&](std::size_t pl, std::size_t, const EpisodeContext& ep) {
                 buckets[pl].push_back(score_episode(ep, algos, cfg_.mode));
               });
  std::vector<TrialResult> results;
  for (auto& bucket : buckets) {
    for (TrialResult& tr : bucket) results.push_back(std::move(tr));
  }
  return results;
}

namespace {

/// Loads `opts.checkpoint_path` when resuming (a missing file is a fresh
/// start, not an error), verifies it belongs to this campaign, and
/// otherwise returns `fresh`. std::nullopt (with `error`) on I/O failure
/// or a fingerprint mismatch.
std::optional<Checkpoint> open_campaign(const Checkpoint& fresh,
                                        const CampaignOptions& opts,
                                        std::string* error) {
  if (opts.resume && !opts.checkpoint_path.empty() &&
      util::file_size(opts.checkpoint_path).has_value()) {
    auto loaded = Checkpoint::load(opts.checkpoint_path, error);
    if (!loaded) return std::nullopt;
    if (loaded->fingerprint() != fresh.fingerprint()) {
      if (error != nullptr) {
        *error = opts.checkpoint_path +
                 ": checkpoint belongs to a different campaign "
                 "(scenario / algos / recording mode mismatch)";
      }
      return std::nullopt;
    }
    return loaded;
  }
  return fresh;
}

/// The contiguous block of not-yet-completed placements this invocation
/// runs (all of them unless opts.max_new_placements caps the chunk — a
/// contiguous chunk, so the committed prefix never gets a hole).
std::set<std::size_t> placements_to_run(std::size_t completed,
                                        std::size_t total,
                                        const CampaignOptions& opts) {
  std::set<std::size_t> out;
  std::size_t budget = opts.max_new_placements == 0 ? total
                                                    : opts.max_new_placements;
  for (std::size_t pl = completed; pl < total && budget > 0; ++pl, --budget) {
    out.insert(pl);
  }
  return out;
}

}  // namespace

std::optional<CampaignResult> Runner::run_campaign(
    const std::vector<Algo>& algos, const CampaignOptions& opts,
    std::string* error) {
  const bool need_lg =
      std::find(algos.begin(), algos.end(), Algo::kNdLg) != algos.end();
  Checkpoint fresh;
  fresh.scenario = cfg_;
  fresh.algos = algos;
  auto opened = open_campaign(fresh, opts, error);
  if (!opened) return std::nullopt;
  Checkpoint ck = std::move(*opened);
  const std::size_t num_placements = cfg_.num_placements;
  const std::size_t resumed = ck.completed_placements;
  const std::set<std::size_t> run_only =
      placements_to_run(resumed, num_placements, opts);
  // Persist the starting state up front so a kill before the first
  // placement commit still leaves a loadable checkpoint behind.
  if (!opts.checkpoint_path.empty() && !ck.save(opts.checkpoint_path, error)) {
    return std::nullopt;
  }

  // Workers finish placements out of order; only the contiguous done-
  // prefix is appended to the checkpoint and persisted, so the file never
  // claims a placement whose predecessors are still in flight.
  std::mutex mu;
  std::vector<std::vector<ScoredTrial>> pending(num_placements);
  std::vector<std::vector<std::size_t>> pending_q(num_placements);
  std::vector<std::uint64_t> pending_seed(num_placements, 0);
  std::vector<bool> done(num_placements, false);
  for (std::size_t pl = 0; pl < resumed; ++pl) done[pl] = true;
  std::string commit_error;

  MapHooks hooks;
  hooks.run_only = &run_only;
  hooks.on_placement_done = [&](std::size_t pl, std::uint64_t seed,
                                std::vector<std::size_t> quarantined) {
    std::lock_guard<std::mutex> lock(mu);
    pending_seed[pl] = seed;
    pending_q[pl] = std::move(quarantined);
    done[pl] = true;
    bool advanced = false;
    while (ck.completed_placements < num_placements &&
           done[ck.completed_placements]) {
      const std::size_t p = ck.completed_placements;
      // Joins placement p's trace from whichever worker extends the
      // prefix: the parent context is recomputed from (seed, p).
      obs::Span commit_span(
          "checkpoint_commit",
          obs::Span::root_context(cfg_.seed, p, static_cast<std::uint32_t>(p + 1)),
          /*salt=*/1);
      ck.results.push_back(std::move(pending[p]));
      ck.episodes += ck.results.back().size();
      for (std::size_t t : pending_q[p]) {
        ck.quarantined.push_back(QuarantinedTrial{p, t, pending_seed[p]});
      }
      ++ck.completed_placements;
      advanced = true;
    }
    if (advanced && !opts.checkpoint_path.empty() && commit_error.empty()) {
      std::string e;
      if (!ck.save(opts.checkpoint_path, &e)) commit_error = e;
    }
  };

  map_episodes(
      need_lg,
      [&](std::size_t pl, std::size_t trial, const EpisodeContext& ep) {
        pending[pl].push_back(
            ScoredTrial{pl, trial, score_episode(ep, algos, cfg_.mode)});
      },
      &hooks);

  if (!commit_error.empty()) {
    if (error != nullptr) *error = commit_error;
    return std::nullopt;
  }
  CampaignResult res;
  res.total_placements = num_placements;
  res.completed_placements = ck.completed_placements;
  res.resumed_placements = resumed;
  res.episodes = ck.episodes;
  res.quarantined = ck.quarantined;
  for (const auto& bucket : ck.results) {
    for (const auto& st : bucket) res.trials.push_back(st);
  }
  return res;
}

std::optional<CampaignResult> Runner::record_campaign(
    const std::string& trace_path, const svc::SessionConfig& config,
    const CampaignOptions& opts, std::string* error) {
  const auto resolved = config.resolve(error);
  if (!resolved) return std::nullopt;
  // Matches record_trace() / for_each_episode(): Looking Glasses are
  // deployed iff traceroute blocking is on.
  const bool need_lg = cfg_.frac_blocked > 0.0;

  Checkpoint fresh;
  fresh.scenario = cfg_;
  fresh.recording = true;
  fresh.record_config = config;
  auto opened = open_campaign(fresh, opts, error);
  if (!opened) return std::nullopt;
  Checkpoint ck = std::move(*opened);
  const std::size_t num_placements = cfg_.num_placements;
  const std::size_t resumed = ck.completed_placements;
  const std::set<std::size_t> run_only =
      placements_to_run(resumed, num_placements, opts);

  // Trace file: resume truncates back to the committed byte offset —
  // dropping any partial trailing line a crash left — and appends; a
  // fresh campaign truncates the whole file and re-emits the config line.
  bool emit_config = true;
  std::ios_base::openmode mode = std::ios_base::trunc;
  if (ck.trace_bytes > 0) {
    const auto size = util::file_size(trace_path);
    if (!size || *size < ck.trace_bytes) {
      if (error != nullptr) {
        *error = trace_path + ": shorter than the checkpoint's committed "
                 "offset — wrong or lost trace file";
      }
      return std::nullopt;
    }
    if (!util::truncate_file(trace_path, ck.trace_bytes, error)) {
      return std::nullopt;
    }
    // The committed offset is a line boundary by construction; refuse a
    // file that disagrees (wrong file, manual edits).
    std::ifstream in(trace_path, std::ios_base::binary);
    in.seekg(static_cast<std::streamoff>(ck.trace_bytes - 1));
    char c = 0;
    if (!in.get(c) || c != '\n') {
      if (error != nullptr) {
        *error = trace_path + ": committed offset is not a line boundary";
      }
      return std::nullopt;
    }
    emit_config = false;
    mode = std::ios_base::app;
  }
  std::ofstream os(trace_path, std::ios_base::out | mode);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + trace_path;
    return std::nullopt;
  }
  if (!opts.checkpoint_path.empty() && !ck.save(opts.checkpoint_path, error)) {
    return std::nullopt;
  }

  svc::TraceRecorder recorder(os, config, emit_config);
  core::Troubleshooter ts(*resolved);

  // Same prefix-commit protocol as run_campaign, except a committed
  // placement's episodes are *replayed into the trace* (in placement
  // order, by whichever worker extended the prefix) before the checkpoint
  // referencing their bytes is written. Troubleshooter::set_baseline
  // resets the detector, so episodes are independent and a recorder
  // restarted mid-campaign emits identical bytes.
  std::mutex mu;
  std::vector<PlacementData> data(num_placements);
  std::vector<std::vector<std::size_t>> pending_q(num_placements);
  std::vector<std::uint64_t> pending_seed(num_placements, 0);
  std::vector<bool> done(num_placements, false);
  for (std::size_t pl = 0; pl < resumed; ++pl) done[pl] = true;
  std::string commit_error;

  MapHooks hooks;
  hooks.run_only = &run_only;
  hooks.on_placement_done = [&](std::size_t pl, std::uint64_t seed,
                                std::vector<std::size_t> quarantined) {
    std::lock_guard<std::mutex> lock(mu);
    pending_seed[pl] = seed;
    pending_q[pl] = std::move(quarantined);
    done[pl] = true;
    bool advanced = false;
    while (ck.completed_placements < num_placements &&
           done[ck.completed_placements]) {
      const std::size_t p = ck.completed_placements;
      // As in run_campaign: the replay-into-trace work joins placement
      // p's trace via the recomputed root context, and the observe/solve
      // spans below nest under it ambiently.
      obs::Span commit_span(
          "checkpoint_commit",
          obs::Span::root_context(cfg_.seed, p, static_cast<std::uint32_t>(p + 1)),
          /*salt=*/1);
      PlacementData& d = data[p];
      for (const EpisodeData& e : d.episodes) {
        ts.set_baseline(d.before);
        recorder.baseline(d.before);
        for (std::size_t r = 0; r < config.alarm_threshold; ++r) {
          recorder.round(e.after, &e.cp);
          const auto out = ts.observe(e.after, &e.cp);
          if (out.has_value()) recorder.diagnosis(*out);
        }
        ++ck.episodes;
      }
      d.episodes.clear();
      d.episodes.shrink_to_fit();  // committed — free the bulk of the data
      for (std::size_t t : pending_q[p]) {
        ck.quarantined.push_back(QuarantinedTrial{p, t, pending_seed[p]});
      }
      ++ck.completed_placements;
      advanced = true;
    }
    if (!advanced || !commit_error.empty()) return;
    // Durability order: trace bytes hit disk before the checkpoint that
    // references their length is committed.
    os.flush();
    if (!os) {
      commit_error = "write error on " + trace_path;
      return;
    }
    std::string e;
    if (!util::fsync_file(trace_path, &e)) {
      commit_error = e;
      return;
    }
    const auto size = util::file_size(trace_path);
    if (!size) {
      commit_error = "stat failed on " + trace_path;
      return;
    }
    ck.trace_bytes = *size;
    if (!opts.checkpoint_path.empty() && !ck.save(opts.checkpoint_path, &e)) {
      commit_error = e;
    }
  };

  map_episodes(
      need_lg,
      [&](std::size_t pl, std::size_t, const EpisodeContext& ep) {
        PlacementData& d = data[pl];
        if (d.episodes.empty()) {
          d.before = ep.before;
          if (ep.lg != nullptr) d.lg_svc.emplace(*ep.lg);
          d.op_as = ep.operator_as;
          d.diag = ep.diagnosability;
        }
        d.episodes.push_back(EpisodeData{ep.after, ep.cp, ep.failed_links,
                                         ep.failed_ases, ep.universe});
      },
      &hooks);

  if (!commit_error.empty()) {
    if (error != nullptr) *error = commit_error;
    return std::nullopt;
  }
  os.flush();
  if (!os) {
    if (error != nullptr) *error = "write error on " + trace_path;
    return std::nullopt;
  }
  CampaignResult res;
  res.total_placements = num_placements;
  res.completed_placements = ck.completed_placements;
  res.resumed_placements = resumed;
  res.episodes = ck.episodes;
  res.quarantined = ck.quarantined;
  return res;
}

std::vector<ScoredTrial> Runner::replay_placement(std::size_t placement,
                                                  const std::vector<Algo>& algos,
                                                  bool deploy_lg) {
  std::vector<ScoredTrial> out;
  if (placement >= cfg_.num_placements) return out;
  ScenarioConfig cfg = cfg_;
  cfg.trial_deadline_ms = 0;  // the replay runs to completion, no watchdog

  std::optional<lg::LgTable> lg_table;
  if (deploy_lg) lg_table.emplace(net_);
  const lg::LgTable* table = lg_table ? &*lg_table : nullptr;

  util::Rng root(cfg_.seed);
  std::vector<std::uint64_t> seeds(cfg_.num_placements);
  for (auto& s : seeds) s = root.fork();

  const sim::Network::Snapshot base = net_.snapshot();
  // Same root context as the campaign's own run of this placement, so a
  // traced replay diffs cleanly against the original trace.
  obs::Span pl_span("placement",
                    obs::Span::root_context(
                        cfg_.seed, placement,
                        static_cast<std::uint32_t>(placement + 1)),
                    /*salt=*/0);
  run_placement(cfg, net_, base, seeds[placement], table,
                [&](std::size_t trial, const EpisodeContext& ep) {
                  out.push_back(ScoredTrial{
                      placement, trial, score_episode(ep, algos, cfg.mode)});
                });
  return out;
}

}  // namespace netd::exp
