// Experiment driver reproducing the paper's evaluation protocol (§4–§5):
// fixed topology, `num_placements` random sensor placements with
// `trials_per_placement` failures each, failure resampling until the event
// actually causes unreachability (the troubleshooter is only invoked for
// failures that break some path), and per-trial metrics for the requested
// algorithms.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/algorithms.h"
#include "lg/looking_glass.h"
#include "core/metrics.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "svc/protocol.h"
#include "topo/generator.h"

namespace netd::exp {

enum class Algo { kTomo, kNdEdge, kNdBgpIgp, kNdLg };

[[nodiscard]] const char* to_string(Algo a);
/// Inverse of to_string(); std::nullopt for unknown names.
[[nodiscard]] std::optional<Algo> algo_from_string(std::string_view s);

/// How a placement turns the random draw into deployed sensors.
enum class PlacementStrategy {
  kRandom,   ///< deploy the drawn sensors as-is (the paper's protocol)
  kPlanned,  ///< draw a larger candidate pool, then let plan::Planner pick
             ///< the num_sensors-subset maximizing identifiability
};

[[nodiscard]] const char* to_string(PlacementStrategy s);
/// Inverse of to_string(); std::nullopt for unknown names.
[[nodiscard]] std::optional<PlacementStrategy> placement_strategy_from_string(
    std::string_view s);

enum class FailureMode {
  kLinks,             ///< `num_link_failures` random probed links fail
  kRouter,            ///< one random probed transit router fails
  kMisconfig,         ///< one per-neighbor-cone export misconfiguration
  kMisconfigPlusLink, ///< one misconfiguration plus one link failure
  kMisconfigPrefix,   ///< a *single-prefix* export filter — finer than the
                      ///< per-neighbor granularity of logical links, used
                      ///< by the granularity ablation (§3.1 discussion)
};

struct ScenarioConfig {
  topo::GeneratorParams topo_params{};
  std::size_t num_sensors = 10;
  probe::PlacementKind placement = probe::PlacementKind::kRandomStub;
  /// kPlanned draws a `plan_pool`-sized candidate pool with `placement`
  /// and deploys the plan::Planner-chosen num_sensors subset; kRandom is
  /// the paper's protocol. Part of the checkpoint fingerprint (emitted
  /// only when non-default, so existing checkpoints stay valid).
  PlacementStrategy placement_strategy = PlacementStrategy::kRandom;
  /// Candidate pool size for kPlanned; 0 = 4 × num_sensors.
  std::size_t plan_pool = 0;
  std::size_t num_placements = 10;
  std::size_t trials_per_placement = 100;
  FailureMode mode = FailureMode::kLinks;
  std::size_t num_link_failures = 1;
  /// Fraction of on-path transit ASes that block traceroutes (f_b, §5.4).
  double frac_blocked = 0.0;
  /// Fraction of ASes providing a Looking Glass (Fig. 12).
  double frac_lg = 1.0;
  /// AS-X is core AS 0 when true, a random non-sensor stub otherwise (§5.3).
  bool operator_at_core = true;
  std::uint64_t seed = 42;
  /// Failure draws per trial before giving up on causing unreachability.
  std::size_t max_attempts_per_trial = 60;
  /// Worker threads for the placement-sharded runner; 0 = one per
  /// hardware thread. Results are bit-identical for every value: each
  /// placement draws from its own pre-forked RNG stream and runs on a
  /// private network clone, and episodes are merged in placement order.
  std::size_t num_threads = 0;
  /// Per-trial watchdog: wall-clock budget for one failure episode, in
  /// milliseconds; 0 (default) disables it. The deadline is checked
  /// cooperatively between failure-sampling attempts and after the
  /// expensive measurement steps; a trial that exceeds it is abandoned,
  /// recorded in the campaign's quarantine list, and the campaign moves
  /// on to the next trial. Note that abandoning a trial early changes the
  /// RNG draws of *later trials in the same placement* relative to a
  /// deadline-free run; other placements are unaffected (pre-forked
  /// streams). Not part of the checkpoint fingerprint, so a quarantined
  /// trial can be replayed later with the watchdog off.
  std::uint64_t trial_deadline_ms = 0;
  /// Watchdog clock override (monotonic milliseconds), used by tests to
  /// force deterministic quarantines. Empty = std::chrono::steady_clock.
  std::function<std::uint64_t()> now_ms;
};

struct TrialResult {
  double diagnosability = 0.0;
  bool router_detected = false;  ///< kRouter mode: H hit ≥1 link of the router
  std::map<Algo, core::LinkMetrics> link;
  std::map<Algo, core::AsMetrics> as_level;
};

/// A TrialResult pinned to its protocol position. The campaign CSV and the
/// checkpoint both carry (placement, trial) so interrupted-and-resumed
/// runs are comparable row by row.
struct ScoredTrial {
  std::size_t placement = 0;
  std::size_t trial = 0;  ///< trial index within the placement
  TrialResult result;
};

/// One trial the watchdog abandoned: everything needed to replay it alone
/// (the placement's pre-forked RNG stream reproduces the trial exactly).
struct QuarantinedTrial {
  std::size_t placement = 0;
  std::size_t trial = 0;
  std::uint64_t seed = 0;  ///< the placement's pre-forked RNG stream
};

/// Crash-safety knobs for run_campaign() / record_campaign().
struct CampaignOptions {
  /// Checkpoint file persisted atomically after every completed placement
  /// (util::atomic_write_file); empty = run without persistence.
  std::string checkpoint_path;
  /// Load `checkpoint_path` if it exists and skip the placements it
  /// already holds. A missing file is not an error (fresh start); a file
  /// written by a different scenario/algos combination is.
  bool resume = false;
  /// Run at most this many not-yet-completed placements, then return with
  /// the campaign partially done (0 = finish it). Lets tests and chunked
  /// cron-style campaigns exercise the resume path without being killed.
  std::size_t max_new_placements = 0;
};

struct CampaignResult {
  /// Results of the committed placement prefix, in (placement, trial)
  /// order — byte-stable across interruption/resume for a given scenario.
  std::vector<ScoredTrial> trials;
  /// Trials the watchdog abandoned (committed placements only), sorted by
  /// (placement, trial).
  std::vector<QuarantinedTrial> quarantined;
  std::size_t total_placements = 0;
  std::size_t completed_placements = 0;  ///< contiguous prefix done
  std::size_t resumed_placements = 0;    ///< loaded from the checkpoint
  std::size_t episodes = 0;  ///< diagnosable episodes scored or recorded

  [[nodiscard]] bool complete() const {
    return completed_placements == total_placements;
  }
};

/// One diagnosable failure episode, as handed to for_each_episode():
/// everything an algorithm variant needs to run and be scored.
struct EpisodeContext {
  const probe::Mesh& before;
  const probe::Mesh& after;
  const core::ControlPlaneObs& cp;
  /// Non-null when the scenario deploys Looking Glasses.
  const lg::LookingGlassService* lg = nullptr;
  topo::AsId operator_as;
  const std::set<std::string>& failed_links;  ///< ground truth F
  const std::set<int>& failed_ases;           ///< ground truth F at AS level
  const std::set<int>& universe;              ///< ASes covered by probes
  double diagnosability = 0.0;
};

class Runner {
 public:
  explicit Runner(const ScenarioConfig& cfg);
  /// Runs the protocol on a caller-provided topology (cfg.topo_params is
  /// ignored) — e.g. a topo::random_internet() instance or a loaded file.
  Runner(topo::Topology topology, const ScenarioConfig& cfg);

  /// Runs the full protocol; trials that never caused unreachability
  /// within the attempt budget are skipped (not reported).
  [[nodiscard]] std::vector<TrialResult> run(const std::vector<Algo>& algos);

  /// Crash-safe variant of run(): persists completed-placement results to
  /// `opts.checkpoint_path` (atomic write-temp-fsync-rename) after every
  /// placement, resumes from it, and quarantines trials the per-trial
  /// watchdog abandons instead of aborting. Because every placement draws
  /// from its own pre-forked RNG stream, a campaign interrupted after any
  /// placement and resumed yields byte-identical ScoredTrial sequences to
  /// an uninterrupted run. std::nullopt (with `error`) on checkpoint I/O
  /// or fingerprint-mismatch failures.
  [[nodiscard]] std::optional<CampaignResult> run_campaign(
      const std::vector<Algo>& algos, const CampaignOptions& opts,
      std::string* error = nullptr);

  /// Crash-safe variant of record_trace(): writes the event trace to
  /// `trace_path` and checkpoints (trace byte offset + completed
  /// placements) after every placement. On resume the trace file is
  /// truncated back to the last committed offset — dropping any partial
  /// trailing line the crash left — and appended from the next placement,
  /// so the final file is byte-identical to an uninterrupted recording.
  [[nodiscard]] std::optional<CampaignResult> record_campaign(
      const std::string& trace_path, const svc::SessionConfig& config,
      const CampaignOptions& opts, std::string* error = nullptr);

  /// Re-runs a single placement serially with the watchdog off and scores
  /// every diagnosable episode — the `netdiag requarantine` path: replay
  /// the placement that quarantined a trial and recover its result.
  /// `deploy_lg` must match the original campaign's Looking Glass
  /// deployment (run_campaign: algos included ND-LG; record_campaign:
  /// cfg.frac_blocked > 0) so the placement's RNG draws line up.
  [[nodiscard]] std::vector<ScoredTrial> replay_placement(
      std::size_t placement, const std::vector<Algo>& algos, bool deploy_lg);

  /// Low-level access to the evaluation protocol: invokes `fn` once per
  /// diagnosable episode (placements × trials, resampled exactly as in
  /// run()). Used by the ablation benchmarks to score custom algorithm
  /// variants. `deploy_lg` forces Looking Glass construction even when the
  /// high-level run() would not need it. `fn` always runs on the calling
  /// thread, in placement order — when cfg.num_threads enables parallelism
  /// the episodes are generated on pool workers and replayed here, so
  /// callers need no synchronization.
  void for_each_episode(const std::function<void(const EpisodeContext&)>& fn,
                        bool deploy_lg = false);

  /// Records the evaluation protocol as a svc event trace (see
  /// svc/trace.h): per diagnosable episode, one `baseline` (T−) followed
  /// by `config.alarm_threshold` identical failure rounds — so the alarm
  /// fires on the last one — and the diagnosis a live troubleshooter
  /// produced for them. Episodes appear in placement order regardless of
  /// cfg.num_threads, so the file is bit-stable for a given scenario.
  /// Returns the episode count, or std::nullopt (with `error`) when the
  /// config names an unknown algo/granularity.
  std::optional<std::size_t> record_trace(std::ostream& os,
                                          const svc::SessionConfig& config,
                                          std::string* error = nullptr);

  [[nodiscard]] const sim::Network& network() const { return net_; }

 private:
  /// Extra plumbing for the crash-safe campaign paths.
  struct MapHooks {
    /// Placements to execute; nullptr = all. Skipped placements still
    /// consume their pre-forked seed, so skipping cannot perturb others.
    const std::set<std::size_t>* run_only = nullptr;
    /// Invoked (on the owning worker) after a placement's last episode,
    /// with the placement's seed and the trial indices the watchdog
    /// quarantined. Never invoked for skipped placements.
    std::function<void(std::size_t pl, std::uint64_t seed,
                       std::vector<std::size_t> quarantined)>
        on_placement_done;
  };

  /// Core of the protocol: invokes `sink(placement, trial, episode)` for
  /// every diagnosable episode. With more than one effective thread, sinks
  /// for distinct placements run concurrently on pool workers (each
  /// placement is owned by exactly one worker, on a private network
  /// clone); sinks must only touch per-placement state. Serial mode calls
  /// sinks inline.
  void map_episodes(bool need_lg,
                    const std::function<void(std::size_t, std::size_t,
                                             const EpisodeContext&)>& sink,
                    const MapHooks* hooks = nullptr);
  [[nodiscard]] std::size_t effective_threads() const;

  ScenarioConfig cfg_;
  sim::Network net_;
};

/// Builds AS-X's ControlPlaneObs from the simulator's observation buffers.
[[nodiscard]] core::ControlPlaneObs collect_control_plane(
    const sim::Network& net);

/// Canonical key of a topology link (both router names, undirected).
[[nodiscard]] std::string link_key(const topo::Topology& topo,
                                   topo::LinkId l);

/// Applies the paper's §3.1 misconfiguration: `exporter` stops announcing,
/// over `link`, every sensor prefix it currently routes via its
/// out-neighbor AS `next_as` (the cone "towards AS C"). Call
/// net.reconverge() afterwards.
void inject_cone_misconfig(sim::Network& net, topo::RouterId exporter,
                           topo::LinkId link, topo::AsId next_as,
                           const std::vector<probe::Sensor>& sensors);

}  // namespace netd::exp
