// The network simulator: converged routing state + data plane + failure
// injection + the control-plane observations available to the operator
// AS-X (IGP link-down events and received BGP withdrawals).
#pragma once

#include <optional>
#include <vector>

#include "bgp/engine.h"
#include "igp/igp.h"
#include "topo/topology.h"

namespace netd::sim {

/// Result of one traceroute-like measurement between two routers.
/// `hops` always starts at `src`; on success it ends at the destination.
/// On failure the recorded hops are the routers reached before the packet
/// was dropped (blackhole, dead link, or forwarding loop).
struct TraceResult {
  bool ok = false;
  std::vector<topo::RouterId> hops;
  std::vector<topo::LinkId> links;  ///< links traversed; hops.size()-1 entries
};

class Network {
 public:
  explicit Network(topo::Topology topology);

  /// Initial convergence; must be called once before any measurement.
  void converge();

  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] const igp::IgpState& igp() const { return igp_; }
  [[nodiscard]] const bgp::BgpEngine& bgp() const { return bgp_; }

  // --- data plane ----------------------------------------------------------

  /// Hop-by-hop forwarding walk from `src` to `dst` over the converged
  /// state (the simulator's traceroute, loop- and blackhole-detecting).
  /// Equivalent to trace_flow(src, dst, 0).
  [[nodiscard]] TraceResult trace(topo::RouterId src, topo::RouterId dst) const;

  /// Forwarding walk for one flow: where the IGP offers several
  /// equal-cost next hops (ECMP), each router hashes (flow, router) to
  /// pick one — the load-balancing behavior a classic traceroute stumbles
  /// over and Paris traceroute pins down (paper §2.2, footnote 2).
  [[nodiscard]] TraceResult trace_flow(topo::RouterId src, topo::RouterId dst,
                                       std::uint64_t flow) const;

  /// All distinct forwarding paths from `src` to `dst` under ECMP — the
  /// Paris-traceroute view. Exhaustive DFS over equal-cost branches,
  /// truncated at `max_paths`.
  [[nodiscard]] std::vector<TraceResult> enumerate_paths(
      topo::RouterId src, topo::RouterId dst,
      std::size_t max_paths = 32) const;

  // --- failure injection ----------------------------------------------------
  // Inject any combination, then call reconverge() once.

  void fail_link(topo::LinkId l);
  void fail_router(topo::RouterId r);
  /// BGP policy misconfiguration: router `r` stops exporting prefix `p`
  /// over interdomain link `l` (paper §3.1 / §4 "Failure scenarios").
  void misconfigure_export(topo::RouterId r, topo::LinkId l, topo::PrefixId p);

  void reconverge() { bgp_.run_to_convergence(); }

  // --- operator (AS-X) observations ------------------------------------------

  void set_operator_as(topo::AsId as);
  /// Clears observation buffers; subsequent failures/messages are recorded.
  void start_recording();
  [[nodiscard]] const std::vector<bgp::BgpMessage>& bgp_messages() const {
    return bgp_.messages();
  }
  /// Intradomain links of AS-X observed down via the IGP feed.
  [[nodiscard]] const std::vector<topo::LinkId>& igp_link_down_events() const {
    return igp_events_;
  }

  // --- snapshot / restore -----------------------------------------------------

  struct Snapshot {
    bgp::BgpEngine::Snapshot bgp;
    std::vector<bool> link_up;
    std::vector<bool> router_up;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snap);

 private:
  void record_igp_down(topo::LinkId l);
  /// Usable next links from `r` toward `dst` (ECMP set intra-AS, the BGP
  /// egress interdomain); empty on blackhole. Replaces `out`'s contents,
  /// reusing its capacity — the forwarding walk calls this once per hop
  /// for every probed pair, so it must not allocate.
  void next_links_into(topo::RouterId r, topo::RouterId dst,
                       std::vector<topo::LinkId>& out) const;

  topo::Topology topo_;
  igp::IgpState igp_;
  bgp::BgpEngine bgp_;
  topo::AsId operator_as_;
  bool recording_ = false;
  std::vector<topo::LinkId> igp_events_;
};

}  // namespace netd::sim
