#include "sim/network.h"

#include <cassert>

namespace netd::sim {

using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::RouterId;

namespace {
constexpr std::size_t kMaxHops = 64;
}

Network::Network(topo::Topology topology)
    : topo_(std::move(topology)), igp_(topo_), bgp_(topo_, igp_) {}

void Network::converge() { bgp_.converge_initial(); }

namespace {

/// splitmix64-style mixer for per-(flow, router) ECMP hashing.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void Network::next_links_into(RouterId r, RouterId dst,
                              std::vector<LinkId>& out) const {
  const AsId dst_as = topo_.as_of_router(dst);
  if (topo_.as_of_router(r) == dst_as) {
    igp_.equal_cost_next_hops_into(r, dst, out);
    return;
  }
  out.clear();
  const auto route = bgp_.best(r, topo_.prefix_of(dst_as));
  if (!route) return;  // no route: blackhole
  if (route->egress_router == r) {
    if (topo_.link_usable(route->egress_link)) {
      out.push_back(route->egress_link);
    }
    return;
  }
  igp_.equal_cost_next_hops_into(r, route->egress_router, out);
}

TraceResult Network::trace(RouterId src, RouterId dst) const {
  return trace_flow(src, dst, 0);
}

TraceResult Network::trace_flow(RouterId src, RouterId dst,
                                std::uint64_t flow) const {
  TraceResult out;
  out.hops.push_back(src);
  if (!topo_.router(src).up || !topo_.router(dst).up) return out;

  RouterId r = src;
  std::vector<LinkId> candidates;  // reused across hops
  for (std::size_t step = 0; step < kMaxHops; ++step) {
    if (r == dst) {
      out.ok = true;
      return out;
    }
    next_links_into(r, dst, candidates);
    if (candidates.empty()) return out;
    // Flow 0 models an ECMP-unaware deterministic router (always the
    // first equal-cost hop); other flows hash per router.
    const std::size_t idx =
        flow == 0 ? 0
                  : static_cast<std::size_t>(mix(flow ^ (r.value() * 0x51ull)) %
                                             candidates.size());
    const LinkId next = candidates[idx];
    if (!topo_.link_usable(next)) return out;
    const RouterId nb = topo_.other_end(next, r);
    if (!topo_.router(nb).up) return out;
    out.links.push_back(next);
    out.hops.push_back(nb);
    r = nb;
  }
  return out;  // forwarding loop: dropped after TTL exhaustion
}

std::vector<TraceResult> Network::enumerate_paths(RouterId src, RouterId dst,
                                                  std::size_t max_paths) const {
  std::vector<TraceResult> out;
  if (!topo_.router(src).up || !topo_.router(dst).up) {
    TraceResult t;
    t.hops.push_back(src);
    out.push_back(std::move(t));
    return out;
  }
  // DFS over equal-cost branches; each prefix is extended until the
  // destination, a blackhole, or the hop cap.
  struct Frame {
    TraceResult partial;
  };
  std::vector<Frame> stack;
  {
    Frame f;
    f.partial.hops.push_back(src);
    stack.push_back(std::move(f));
  }
  std::vector<LinkId> candidates;  // reused across frames
  while (!stack.empty() && out.size() < max_paths) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const RouterId r = f.partial.hops.back();
    if (r == dst) {
      f.partial.ok = true;
      out.push_back(std::move(f.partial));
      continue;
    }
    if (f.partial.hops.size() > kMaxHops) {
      out.push_back(std::move(f.partial));  // loop-dropped branch
      continue;
    }
    next_links_into(r, dst, candidates);
    bool branched = false;
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      if (!topo_.link_usable(*it)) continue;
      const RouterId nb = topo_.other_end(*it, r);
      if (!topo_.router(nb).up) continue;
      Frame child;
      child.partial = f.partial;
      child.partial.links.push_back(*it);
      child.partial.hops.push_back(nb);
      stack.push_back(std::move(child));
      branched = true;
    }
    if (!branched) out.push_back(std::move(f.partial));  // dead end
  }
  return out;
}

void Network::fail_link(LinkId l) {
  topo_.set_link_up(l, false);
  const auto& link = topo_.link(l);
  if (!link.interdomain) {
    igp_.recompute_as(topo_.as_of_router(link.a));
    record_igp_down(l);
  }
  bgp_.on_link_state_change(l);
}

void Network::fail_router(RouterId r) {
  topo_.set_router_up(r, false);
  const AsId as = topo_.as_of_router(r);
  igp_.recompute_as(as);
  // The operator's IGP sees every intradomain link of the dead router go
  // down if the router is inside AS-X.
  for (LinkId l : topo_.links_of(r)) {
    if (!topo_.link(l).interdomain) record_igp_down(l);
  }
  bgp_.on_router_state_change(r);
}

void Network::misconfigure_export(RouterId r, LinkId l, PrefixId p) {
  bgp_.add_export_filter(r, l, p);
}

void Network::set_operator_as(AsId as) {
  operator_as_ = as;
  bgp_.set_tapped_as(as);
}

void Network::start_recording() {
  recording_ = true;
  igp_events_.clear();
  bgp_.clear_messages();
}

void Network::record_igp_down(LinkId l) {
  if (!recording_ || !operator_as_.valid()) return;
  if (topo_.as_of_router(topo_.link(l).a) != operator_as_) return;
  igp_events_.push_back(l);
}

Network::Snapshot Network::snapshot() const {
  Snapshot snap;
  snap.bgp = bgp_.snapshot();
  snap.link_up.reserve(topo_.num_links());
  for (const auto& l : topo_.links()) snap.link_up.push_back(l.up);
  snap.router_up.reserve(topo_.num_routers());
  for (const auto& r : topo_.routers()) snap.router_up.push_back(r.up);
  return snap;
}

void Network::restore(const Snapshot& snap) {
  assert(snap.link_up.size() == topo_.num_links());
  assert(snap.router_up.size() == topo_.num_routers());
  for (std::size_t i = 0; i < snap.link_up.size(); ++i) {
    topo_.set_link_up(LinkId{static_cast<std::uint32_t>(i)}, snap.link_up[i]);
  }
  for (std::size_t i = 0; i < snap.router_up.size(); ++i) {
    topo_.set_router_up(RouterId{static_cast<std::uint32_t>(i)},
                        snap.router_up[i]);
  }
  igp_.recompute_all();
  bgp_.restore(snap.bgp);
  recording_ = false;
  igp_events_.clear();
}

}  // namespace netd::sim
