#include "lg/looking_glass.h"

#include "obs/registry.h"

namespace netd::lg {

using topo::AsId;
using topo::PrefixId;
using topo::RouterId;

LgTable::LgTable(const sim::Network& net) {
  const auto& topo = net.topology();
  num_ases_ = topo.num_ases();
  paths_.resize(num_ases_ * num_ases_);
  for (const auto& as : topo.ases()) {
    // The LG answers from the first live router of the AS; with converged
    // iBGP, any router's AS-level view is representative.
    RouterId vantage;
    for (RouterId r : as.routers) {
      if (topo.router(r).up) {
        vantage = r;
        break;
      }
    }
    if (!vantage.valid()) continue;
    for (std::uint32_t p = 0; p < num_ases_; ++p) {
      auto& slot = paths_[as.id.value() * num_ases_ + p];
      if (PrefixId{p} == topo.prefix_of(as.id)) {
        slot = {as.id};  // own prefix
        continue;
      }
      const auto route = net.bgp().best(vantage, PrefixId{p});
      if (!route) continue;
      slot.reserve(route->as_path.size() + 1);
      slot.push_back(as.id);
      slot.insert(slot.end(), route->as_path.begin(), route->as_path.end());
    }
  }
}

std::optional<std::vector<AsId>> LgTable::as_path(AsId as,
                                                  PrefixId prefix) const {
  const auto& slot = paths_[as.value() * num_ases_ + prefix.value()];
  if (slot.empty()) return std::nullopt;
  return slot;
}

LookingGlassService::LookingGlassService(const LgTable& table,
                                         std::set<std::uint32_t> available,
                                         AsId operator_as)
    : table_(table),
      available_(std::move(available)),
      operator_as_(operator_as) {}

bool LookingGlassService::available(AsId as) const {
  if (operator_as_.valid() && as == operator_as_) return true;
  return available_.count(as.value()) != 0;
}

std::optional<std::vector<AsId>> LookingGlassService::query(
    AsId as, PrefixId prefix) const {
  static obs::Counter& queries = obs::Registry::global().counter(
      "netd_lg_queries_total", "Looking Glass queries issued");
  static obs::Counter& refused = obs::Registry::global().counter(
      "netd_lg_refused_total", "Looking Glass queries to unavailable ASes");
  queries.inc();
  if (!available(as)) {
    refused.inc();
    return std::nullopt;
  }
  return table_.as_path(as, prefix);
}

}  // namespace netd::lg
