// Looking Glass service (paper §3.4).
//
// A Looking Glass server in AS A answers "what is your AS path toward
// prefix P". We materialize the answers for every (AS, prefix) pair from a
// converged network into a table, then expose them subject to a
// per-AS availability set (Fig. 12 varies the fraction of ASes that run an
// LG). The operator's own AS answers from its own BGP table and is
// therefore always available (paper: "For mapping downstream UHs, AS-X can
// use its own BGP information").
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "sim/network.h"

namespace netd::lg {

/// Immutable snapshot of every AS's view: as_path[as][prefix] is the AS
/// path from `as` to `prefix` (starting with `as`, ending at the origin),
/// empty when the AS has no route.
class LgTable {
 public:
  explicit LgTable(const sim::Network& net);

  /// Full AS path from `as` toward `prefix`; nullopt when no route.
  [[nodiscard]] std::optional<std::vector<topo::AsId>> as_path(
      topo::AsId as, topo::PrefixId prefix) const;

 private:
  std::size_t num_ases_;
  // Flattened [as * num_ases_ + prefix]; empty vector = no route.
  std::vector<std::vector<topo::AsId>> paths_;
};

/// The queryable service: an LgTable filtered by which ASes actually run a
/// Looking Glass. The operator AS always answers (its own BGP view).
class LookingGlassService {
 public:
  LookingGlassService(const LgTable& table, std::set<std::uint32_t> available,
                      topo::AsId operator_as);

  [[nodiscard]] bool available(topo::AsId as) const;

  /// AS path from `as` to `prefix` if that AS is queryable and has a route.
  [[nodiscard]] std::optional<std::vector<topo::AsId>> query(
      topo::AsId as, topo::PrefixId prefix) const;

 private:
  const LgTable& table_;
  std::set<std::uint32_t> available_;
  topo::AsId operator_as_;
};

}  // namespace netd::lg
