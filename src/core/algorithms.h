// Named entry points for the paper's four algorithms.
//
//   Tomo       — §2.4: multi-source/destination Boolean tomography.
//   ND-edge    — §3.1–3.2: + logical links + reroute sets.
//   ND-bgpigp  — §3.3: + IGP link-down seeding + BGP-withdrawal pruning.
//   ND-LG      — §3.4: + unidentified-link tagging and clustering.
//
// Each takes the T− / T+ traceroute meshes (plus the extra data sources it
// consumes) and returns the diagnosis graph it ran on together with the
// hypothesis. This is the public API examples and experiments use.
#pragma once

#include "core/diagnosis_graph.h"
#include "core/solver.h"
#include "core/uh_tags.h"
#include "lg/looking_glass.h"

namespace netd::core {

struct AlgorithmOutput {
  DiagnosisGraph graph;
  Result result;
};

[[nodiscard]] AlgorithmOutput run_tomo(const probe::Mesh& before,
                                       const probe::Mesh& after);

[[nodiscard]] AlgorithmOutput run_nd_edge(const probe::Mesh& before,
                                          const probe::Mesh& after);

[[nodiscard]] AlgorithmOutput run_nd_bgpigp(const probe::Mesh& before,
                                            const probe::Mesh& after,
                                            const ControlPlaneObs& cp);

[[nodiscard]] AlgorithmOutput run_nd_lg(const probe::Mesh& before,
                                        const probe::Mesh& after,
                                        const ControlPlaneObs& cp,
                                        const lg::LookingGlassService& lg,
                                        topo::AsId operator_as);

/// Option presets matching the algorithms above (the graph for Tomo is
/// built without logical links; all others with).
[[nodiscard]] SolverOptions tomo_options();
[[nodiscard]] SolverOptions nd_edge_options();
[[nodiscard]] SolverOptions nd_bgpigp_options();
[[nodiscard]] SolverOptions nd_lg_options();

}  // namespace netd::core
