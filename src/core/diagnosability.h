// The diagnosability metric D(G) of §4: the fraction of probed links with
// a distinct hitting set (the set of paths traversing the link). D(G) = 1
// means any single link failure is exactly localizable from the
// reachability matrix alone.
#pragma once

#include "core/diagnosis_graph.h"

namespace netd::core {

/// D(G) over the T− paths of `dg`. Returns 0 for an empty graph.
[[nodiscard]] double diagnosability(const DiagnosisGraph& dg);

}  // namespace netd::core
