// Reference greedy scorer: the string-keyed, list-scanning shape the
// solver had before the bitset kernel, preserved as the equivalence
// baseline. One deliberate improvement over the historical code: the
// per-(group, round) unordered_set rebuild that used to dedup a group's
// coverage is hoisted — each group's distinct (failure, reroute) set
// lists are computed once before the greedy loop, and every round merely
// rescans those lists against the explained flags. That keeps the
// baseline honest for differential benchmarking (it measures scoring
// strategy, not gratuitous per-round allocation) while remaining
// byte-identical to solve() on every input.
#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/solver.h"

namespace netd::core {

using graph::EdgeId;
using graph::NodeId;
using graph::NodeKind;

Result solve_reference(const DiagnosisGraph& dg, const SolverOptions& opt,
                       const ControlPlaneObs* cp, const UhTagMap* tags) {
  const Demands demands = build_demands(dg, opt, cp);
  return solve_reference(dg, opt, demands, cp, tags);
}

Result solve_reference(const DiagnosisGraph& dg, const SolverOptions& opt,
                       const Demands& demands, const ControlPlaneObs* cp,
                       const UhTagMap* tags) {
  Result result;
  const std::size_t n_edges = dg.edges.size();
  const auto& failure_sets = demands.failure_sets;
  const auto& reroute_sets = demands.reroute_sets;
  const auto& candidates = demands.candidates;
  std::vector<char> in_u = demands.admissible;

  // ---- Inverted indices -----------------------------------------------------
  std::vector<std::vector<std::uint32_t>> f_of_edge(n_edges),
      r_of_edge(n_edges);
  for (std::uint32_t s = 0; s < failure_sets.size(); ++s) {
    for (std::uint32_t e : failure_sets[s]) f_of_edge[e].push_back(s);
  }
  for (std::uint32_t s = 0; s < reroute_sets.size(); ++s) {
    for (std::uint32_t e : reroute_sets[s]) r_of_edge[e].push_back(s);
  }
  std::vector<char> f_explained(failure_sets.size(), 0);
  std::vector<char> r_explained(reroute_sets.size(), 0);

  std::vector<EdgeId> hypothesis;
  std::vector<RankedLink> ranked;
  std::unordered_map<std::string, std::size_t> rank_of_key;
  auto record_rank = [&](const std::string& key, double score, int round) {
    auto [it, inserted] = rank_of_key.emplace(key, ranked.size());
    if (inserted) {
      ranked.push_back(RankedLink{key, score, round});
    } else if (score > ranked[it->second].score) {
      ranked[it->second].score = score;
    }
  };
  auto select_edge = [&](std::uint32_t e) {
    hypothesis.push_back(EdgeId{e});
    in_u[e] = 0;
    for (std::uint32_t s : f_of_edge[e]) f_explained[s] = 1;
    for (std::uint32_t s : r_of_edge[e]) r_explained[s] = 1;
  };

  // ---- IGP seeding (ND-bgpigp, §3.3) ----------------------------------------
  if (opt.use_control_plane && cp != nullptr && !cp->igp_down_keys.empty()) {
    std::unordered_set<std::string> igp(cp->igp_down_keys.begin(),
                                        cp->igp_down_keys.end());
    for (std::uint32_t e = 0; e < n_edges; ++e) {
      if (igp.count(dg.edges[e].phys_key) != 0) {
        record_rank(dg.edges[e].phys_key,
                    std::numeric_limits<double>::infinity(), -1);
        select_edge(e);
      }
    }
  }

  // ---- UH clusters (ND-LG, §3.4) ---------------------------------------------
  std::vector<std::vector<std::uint32_t>> cluster_members;
  std::vector<int> cluster_of(n_edges, -1);
  if (opt.uh_clustering) {
    std::unordered_map<std::string, std::uint32_t> by_signature;
    for (std::uint32_t e : candidates) {
      if (!dg.edges[e].unidentified) continue;
      const auto& ge = dg.g.edge(EdgeId{e});
      const std::string s1 = uh_endpoint_signature(dg.g, ge.src, tags);
      const std::string s2 = uh_endpoint_signature(dg.g, ge.dst, tags);
      if (s1.empty() || s2.empty()) continue;  // unresolvable endpoint
      const std::string sig =
          s1 + "/" + s2 + "/#f" + std::to_string(f_of_edge[e].size());
      auto [it, inserted] = by_signature.emplace(
          sig, static_cast<std::uint32_t>(cluster_members.size()));
      if (inserted) cluster_members.emplace_back();
      cluster_members[it->second].push_back(e);
      cluster_of[e] = static_cast<int>(it->second);
    }
  }

  // ---- Candidate groups (string-keyed, first-seen order) ----------------------
  std::vector<std::vector<std::uint32_t>> groups;
  {
    std::unordered_map<std::string, std::uint32_t> by_key;
    for (std::uint32_t e : candidates) {
      auto [it, inserted] = by_key.emplace(
          dg.edges[e].directed_key, static_cast<std::uint32_t>(groups.size()));
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(e);
    }
  }

  // ---- Hoisted group coverage -------------------------------------------------
  // Distinct (failure, reroute) set lists per group, computed once. The
  // historical scorer rebuilt an unordered_set of these per (group, round);
  // the member set a group draws coverage from never changes inside the
  // loop, so that rebuild was pure waste — hoisted here, the rounds only
  // rescan the lists against the explained flags.
  const std::size_t num_groups = groups.size();
  std::vector<std::vector<std::uint32_t>> cov_f(num_groups), cov_r(num_groups);
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    std::unordered_set<std::uint32_t> fs, rs;
    auto add = [](const std::vector<std::uint32_t>& sets,
                  std::unordered_set<std::uint32_t>& seen,
                  std::vector<std::uint32_t>& cov) {
      for (std::uint32_t s : sets) {
        if (seen.insert(s).second) cov.push_back(s);
      }
    };
    for (std::uint32_t e : groups[g]) {
      if (!in_u[e]) continue;  // IGP-seeded selections are already out
      add(f_of_edge[e], fs, cov_f[g]);
      add(r_of_edge[e], rs, cov_r[g]);
      if (cluster_of[e] >= 0) {
        for (std::uint32_t m : cluster_members[cluster_of[e]]) {
          if (m != e && dg.edges[m].before_path != dg.edges[e].before_path) {
            add(f_of_edge[m], fs, cov_f[g]);
            add(r_of_edge[m], rs, cov_r[g]);
          }
        }
      }
    }
  }
  std::vector<char> group_active(num_groups, 1);

  // ---- Greedy max-score loop (Algorithm 1), per-round recount -----------------
  int round = 0;
  for (;; ++round) {
    double best = 0.0;
    std::vector<std::uint32_t> max_set;
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      if (!group_active[g]) continue;
      std::size_t cf = 0, cr = 0;
      for (std::uint32_t s : cov_f[g]) cf += !f_explained[s];
      for (std::uint32_t s : cov_r[g]) cr += !r_explained[s];
      const double score = opt.weight_failures * static_cast<double>(cf) +
                           opt.weight_reroutes * static_cast<double>(cr);
      if (score > best) {
        best = score;
        max_set.assign(1, g);
      } else if (score == best && score > 0.0) {
        max_set.push_back(g);
      }
    }
    if (best <= 0.0) break;
    // The paper adds the whole set of maximum-score links.
    for (std::uint32_t g : max_set) {
      group_active[g] = 0;
      for (std::uint32_t e : groups[g]) {
        if (in_u[e]) {
          record_rank(dg.edges[e].phys_key, best, round);
          select_edge(e);
        }
      }
    }
  }

  // ---- Results ---------------------------------------------------------------
  result.hypothesis_edges = hypothesis;
  for (EdgeId e : hypothesis) {
    result.links.insert(dg.info(e).phys_key);
    const auto& ge = dg.g.edge(e);
    bool unknown = false;
    for (NodeId n : {ge.src, ge.dst}) {
      const auto& node = dg.g.node(n);
      if (node.kind == NodeKind::kUnidentified) {
        const std::vector<int>* t = tags != nullptr ? tags->find(n) : nullptr;
        if (t != nullptr) {
          result.ases.insert(t->begin(), t->end());
        } else {
          unknown = true;
        }
      } else if (node.asn >= 0) {
        result.ases.insert(node.asn);
      }
    }
    if (unknown) ++result.unknown_as_links;
  }
  for (std::uint32_t s = 0; s < failure_sets.size(); ++s) {
    if (!f_explained[s]) ++result.unexplained_failure_sets;
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedLink& a, const RankedLink& b) {
                     return a.score > b.score;
                   });
  result.ranked = std::move(ranked);
  return result;
}

}  // namespace netd::core
