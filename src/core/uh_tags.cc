#include "core/uh_tags.h"

#include <algorithm>

namespace netd::core {

using graph::NodeKind;
using topo::AsId;
using topo::PrefixId;

namespace {

/// Assigns `tag` to every UH hop in hops[first..last] (inclusive).
void assign_run(const DiagnosisGraph& dg, const std::vector<probe::Hop>& hops,
                std::size_t first, std::size_t last,
                const std::vector<int>& tag, UhTagMap& out) {
  for (std::size_t i = first; i <= last; ++i) {
    const auto node = dg.g.find_node(hops[i].label);
    if (!node) continue;
    auto& slot = out.tags[node->value()];
    // Keep the most specific (smallest) tag when runs overlap across paths.
    if (slot.empty() || (!tag.empty() && tag.size() < slot.size())) {
      slot = tag;
    }
  }
}

}  // namespace

UhTagMap resolve_uh_tags(const probe::Mesh& before, const DiagnosisGraph& dg,
                         const lg::LookingGlassService& lg,
                         topo::AsId operator_as) {
  UhTagMap out;
  for (const auto& path : before.paths) {
    if (!path.ok) continue;
    const auto& hops = path.hops;
    const int dest_asn = hops.back().asn;
    if (dest_asn < 0) continue;
    const PrefixId dest_prefix{static_cast<std::uint32_t>(dest_asn)};

    std::size_t i = 0;
    while (i < hops.size()) {
      if (hops[i].kind != NodeKind::kUnidentified) {
        ++i;
        continue;
      }
      // Maximal UH run [run_begin, run_end].
      const std::size_t run_begin = i;
      while (i < hops.size() && hops[i].kind == NodeKind::kUnidentified) ++i;
      const std::size_t run_end = i - 1;

      // Bounding identified ASes. Sensors are identified, so a run is
      // always strictly inside the path.
      int as_before = -1, as_after = -1;
      for (std::size_t k = run_begin; k-- > 0;) {
        if (hops[k].asn >= 0) {
          as_before = hops[k].asn;
          break;
        }
      }
      for (std::size_t k = run_end + 1; k < hops.size(); ++k) {
        if (hops[k].asn >= 0) {
          as_after = hops[k].asn;
          break;
        }
      }
      if (as_before < 0 || as_after < 0) continue;

      // Vantage: the first AS at-or-before the run whose LG answers;
      // AS-X's own view is always available. A vantage past the run
      // cannot see it (its AS path starts at itself).
      std::optional<std::vector<AsId>> as_path;
      for (std::size_t k = 0; k <= run_begin; ++k) {
        if (hops[k].asn < 0) continue;
        const AsId vantage{static_cast<std::uint32_t>(hops[k].asn)};
        if (!lg.available(vantage) && vantage != operator_as) continue;
        as_path = lg.query(vantage, dest_prefix);
        if (as_path) break;
      }
      if (!as_path) continue;  // unresolved run

      // Segment of the AS path strictly between as_before and as_after.
      const auto& p = *as_path;
      std::size_t pos_a = p.size(), pos_c = p.size();
      for (std::size_t k = 0; k < p.size(); ++k) {
        if (pos_a == p.size() &&
            p[k].value() == static_cast<std::uint32_t>(as_before)) {
          pos_a = k;
        } else if (pos_a != p.size() &&
                   p[k].value() == static_cast<std::uint32_t>(as_after)) {
          pos_c = k;
          break;
        }
      }
      if (pos_a == p.size() || pos_c == p.size() || pos_c <= pos_a + 1) {
        continue;  // inconsistent or empty segment: unresolved
      }
      std::vector<int> tag;
      for (std::size_t k = pos_a + 1; k < pos_c; ++k) {
        tag.push_back(static_cast<int>(p[k].value()));
      }
      std::sort(tag.begin(), tag.end());
      assign_run(dg, hops, run_begin, run_end, tag, out);
    }
  }
  return out;
}

}  // namespace netd::core
