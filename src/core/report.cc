#include "core/report.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

namespace netd::core {

std::string render_report(const DiagnosisGraph& dg, const Result& result,
                          const std::set<std::string>* truth) {
  std::size_t failed = 0, rerouted = 0;
  for (const auto& p : dg.paths) {
    if (!p.ok_after) {
      ++failed;
    } else if (p.rerouted) {
      ++rerouted;
    }
  }

  std::ostringstream os;
  os << "=== NetDiagnoser report ===\n"
     << "sensor pairs: " << dg.paths.size() << " (" << failed << " failed, "
     << rerouted << " rerouted)\n"
     << "probed links: " << dg.probed_keys.size() << "\n"
     << "hypothesis:   " << result.links.size() << " link(s)";
  if (result.unexplained_failure_sets > 0) {
    os << ", " << result.unexplained_failure_sets
       << " failure set(s) unexplained";
  }
  os << "\n\n";

  // Aggregate evidence per physical key from the hypothesis edges.
  struct Evidence {
    std::size_t failed_paths = 0;
    std::size_t reroutes = 0;
    bool logical = false;
    bool unidentified = false;
    std::set<int> ases;
  };
  std::map<std::string, Evidence> per_link;
  std::unordered_set<std::uint32_t> hyp_edges;
  for (graph::EdgeId e : result.hypothesis_edges) hyp_edges.insert(e.value());

  for (graph::EdgeId e : result.hypothesis_edges) {
    const EdgeInfo& info = dg.info(e);
    Evidence& ev = per_link[info.phys_key];
    ev.logical = ev.logical || info.logical;
    ev.unidentified = ev.unidentified || info.unidentified;
    const auto& ge = dg.g.edge(e);
    for (graph::NodeId n : {ge.src, ge.dst}) {
      const auto& node = dg.g.node(n);
      if (node.asn >= 0) ev.ases.insert(node.asn);
    }
  }
  for (const auto& p : dg.paths) {
    auto touches = [&](const std::vector<graph::EdgeId>& edges,
                       const std::string& key) {
      return std::any_of(edges.begin(), edges.end(), [&](graph::EdgeId e) {
        return hyp_edges.count(e.value()) != 0 && dg.info(e).phys_key == key;
      });
    };
    for (auto& [key, ev] : per_link) {
      if (!p.ok_after && touches(p.before, key)) ++ev.failed_paths;
      if (p.ok_after && p.rerouted && touches(p.before, key)) ++ev.reroutes;
    }
  }

  for (const auto& [key, ev] : per_link) {
    os << "  " << key;
    if (truth != nullptr && truth->count(key) != 0) os << "  [ACTUAL FAILURE]";
    os << "\n    evidence: explains " << ev.failed_paths
       << " failed path(s), " << ev.reroutes << " reroute(s)";
    if (ev.logical) os << "; suspected via logical link (policy/export)";
    if (ev.unidentified) os << "; unidentified (traceroute-blocked) hop";
    os << "\n    ASes:";
    if (ev.ases.empty()) {
      os << " unknown";
    } else {
      for (int as : ev.ases) os << " AS" << as;
    }
    os << "\n";
  }

  if (!result.ases.empty()) {
    os << "\nimplicated ASes:";
    for (int as : result.ases) os << " AS" << as;
    if (result.unknown_as_links > 0) {
      os << " (+" << result.unknown_as_links << " link(s) unresolvable)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace netd::core
