#include "core/troubleshooter.h"

#include <cassert>

#include "obs/registry.h"
#include "obs/span.h"

namespace netd::core {

Troubleshooter::Troubleshooter(Config cfg)
    : cfg_(cfg), detector_(cfg.alarm_threshold) {}

void Troubleshooter::set_baseline(probe::Mesh baseline) {
  baseline_ = std::move(baseline);
  detector_.reset();
}

void Troubleshooter::restore(probe::Mesh baseline,
                             std::vector<std::size_t> failures,
                             std::vector<bool> alarmed) {
  baseline_ = std::move(baseline);
  detector_.restore(std::move(failures), std::move(alarmed));
}

std::optional<AlgorithmOutput> Troubleshooter::observe(
    const probe::Mesh& round, const ControlPlaneObs* cp) {
  assert(has_baseline() && "set_baseline() before observing rounds");
  assert(round.paths.size() == baseline_.paths.size());

  obs::Span span("observe");
  static obs::Counter& rounds = obs::Registry::global().counter(
      "netd_ts_rounds_total", "Observation rounds fed to troubleshooters");
  static obs::Counter& diagnoses = obs::Registry::global().counter(
      "netd_ts_diagnoses_total", "Diagnoses fired by troubleshooters");
  rounds.inc();

  const auto fired = detector_.observe(round);

  bool all_ok = true;
  for (const auto& p : round.paths) all_ok = all_ok && p.ok;
  if (all_ok) {
    // Healthy round: adopt as the new baseline so the next event is
    // compared against current (possibly rerouted/repaired) paths.
    baseline_ = round;
    return std::nullopt;
  }
  if (fired.empty()) return std::nullopt;  // failing, but under threshold

  AlgorithmOutput out;
  {
    obs::Span graph_span("build_graph");
    out.graph = build_diagnosis_graph(baseline_, round, cfg_.granularity);
  }
  out.result = solve(out.graph, cfg_.solver,
                     cfg_.solver.use_control_plane ? cp : nullptr);
  diagnoses.inc();
  return out;
}

}  // namespace netd::core
