// JSON export of diagnosis results, for dashboards and tooling.
//
// Hand-rolled writer (no external dependencies): emits the event summary,
// the ranked hypothesis with per-link evidence and AS attribution, and the
// implicated-AS list. Stable key order, RFC 8259-escaped strings.
#pragma once

#include <string>

#include "core/diagnosis_graph.h"
#include "core/solver.h"

namespace netd::core {

/// Serializes a diagnosis. Schema:
/// {
///   "pairs": N, "failed": F, "rerouted": R, "probed_links": E,
///   "unexplained_failure_sets": U, "unknown_as_links": K,
///   "hypothesis": [
///     {"link": "a|b", "score": 3.0, "round": 0,
///      "logical": false, "unidentified": false, "ases": [1, 2]}
///   ],
///   "implicated_ases": [1, 2, 3]
/// }
[[nodiscard]] std::string to_json(const DiagnosisGraph& dg,
                                  const Result& result);

/// Escapes a string for embedding in JSON (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace netd::core
