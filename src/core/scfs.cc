#include "core/scfs.h"

#include <unordered_set>

namespace netd::core {

Result scfs(const DiagnosisGraph& dg, std::size_t src_sensor) {
  Result result;

  // Links carrying a working path from the source (the tree's good part).
  std::unordered_set<std::uint32_t> good;
  for (const PathObs& p : dg.paths) {
    if (p.src != src_sensor || !p.ok_after) continue;
    for (graph::EdgeId e : p.before) good.insert(e.value());
  }

  std::unordered_set<std::uint32_t> chosen;
  for (const PathObs& p : dg.paths) {
    if (p.src != src_sensor || p.ok_after) continue;
    bool explained = false;
    for (graph::EdgeId e : p.before) {
      if (good.count(e.value()) != 0) continue;
      // First link past the good region: the bad subtree's root link.
      if (chosen.insert(e.value()).second) {
        result.hypothesis_edges.push_back(e);
        result.links.insert(dg.info(e).phys_key);
        result.ranked.push_back(RankedLink{dg.info(e).phys_key, 1.0, 0});
        const auto& ge = dg.g.edge(e);
        for (graph::NodeId n : {ge.src, ge.dst}) {
          const auto& node = dg.g.node(n);
          if (node.asn >= 0) result.ases.insert(node.asn);
        }
      }
      explained = true;
      break;
    }
    if (!explained) ++result.unexplained_failure_sets;
  }
  return result;
}

}  // namespace netd::core
