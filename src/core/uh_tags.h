// UH → AS mapping via Looking Glass servers (paper §3.4, Fig. 4).
//
// For every maximal run of unidentified hops on a path, the troubleshooter
// picks a vantage AS at-or-before the run whose Looking Glass is reachable
// (the operator's own AS always answers from its BGP table), asks for its
// AS path to the destination prefix, and reads off the AS segment between
// the identified ASes bounding the run. A one-AS segment tags the UHs
// unambiguously; a longer segment yields the combined tag {B, D, ...}; no
// usable vantage leaves the UHs unresolved.
#pragma once

#include "core/diagnosis_graph.h"
#include "core/solver.h"
#include "lg/looking_glass.h"
#include "probe/prober.h"

namespace netd::core {

/// Resolves AS tags for every UH node of `dg` from the T− mesh.
/// `operator_as` is AS-X (always queryable through its own BGP view).
[[nodiscard]] UhTagMap resolve_uh_tags(const probe::Mesh& before,
                                       const DiagnosisGraph& dg,
                                       const lg::LookingGlassService& lg,
                                       topo::AsId operator_as);

}  // namespace netd::core
