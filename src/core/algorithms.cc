#include "core/algorithms.h"

#include "obs/span.h"

namespace netd::core {

SolverOptions tomo_options() { return SolverOptions{}; }

SolverOptions nd_edge_options() {
  SolverOptions o;
  o.use_reroutes = true;
  return o;
}

SolverOptions nd_bgpigp_options() {
  SolverOptions o = nd_edge_options();
  o.use_control_plane = true;
  return o;
}

SolverOptions nd_lg_options() {
  SolverOptions o = nd_bgpigp_options();
  o.uh_clustering = true;
  o.ignore_unidentified = false;
  return o;
}

AlgorithmOutput run_tomo(const probe::Mesh& before, const probe::Mesh& after) {
  obs::Span span("tomo");
  AlgorithmOutput out;
  {
    obs::Span graph_span("build_graph");
    out.graph = build_diagnosis_graph(before, after, /*logical_links=*/false);
  }
  out.result = solve(out.graph, tomo_options());
  return out;
}

AlgorithmOutput run_nd_edge(const probe::Mesh& before,
                            const probe::Mesh& after) {
  obs::Span span("nd-edge");
  AlgorithmOutput out;
  {
    obs::Span graph_span("build_graph");
    out.graph = build_diagnosis_graph(before, after, /*logical_links=*/true);
  }
  out.result = solve(out.graph, nd_edge_options());
  return out;
}

AlgorithmOutput run_nd_bgpigp(const probe::Mesh& before,
                              const probe::Mesh& after,
                              const ControlPlaneObs& cp) {
  obs::Span span("nd-bgpigp");
  AlgorithmOutput out;
  {
    obs::Span graph_span("build_graph");
    out.graph = build_diagnosis_graph(before, after, /*logical_links=*/true);
  }
  out.result = solve(out.graph, nd_bgpigp_options(), &cp);
  return out;
}

AlgorithmOutput run_nd_lg(const probe::Mesh& before, const probe::Mesh& after,
                          const ControlPlaneObs& cp,
                          const lg::LookingGlassService& lg,
                          topo::AsId operator_as) {
  obs::Span span("nd-lg");
  AlgorithmOutput out;
  {
    obs::Span graph_span("build_graph");
    out.graph = build_diagnosis_graph(before, after, /*logical_links=*/true);
  }
  const UhTagMap tags = [&] {
    obs::Span tags_span("resolve_uh_tags");
    return resolve_uh_tags(before, out.graph, lg, operator_as);
  }();
  out.result = solve(out.graph, nd_lg_options(), &cp, &tags);
  return out;
}

}  // namespace netd::core
