// The NetDiagnoser inference engine.
//
// One greedy minimum-hitting-set solver (paper Algorithm 1) with optional
// features layered on top:
//   - reroute sets with weighted scoring (ND-edge, §3.2),
//   - control-plane pruning/seeding (ND-bgpigp, §3.3): IGP link-down
//     events seed the hypothesis; BGP withdrawals received at AS-X prune
//     the upstream portion of matching failure sets,
//   - unidentified-link clustering (ND-LG, §3.4) using LG-resolved AS tags.
// The named algorithm presets live in algorithms.h.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/diagnosis_graph.h"

namespace netd::core {

struct SolverOptions {
  /// ND-edge+: score working constraints and reroute sets from the T+
  /// paths instead of assuming T− paths are still in place (Tomo's flaw).
  bool use_reroutes = false;
  /// ND-bgpigp+: consume ControlPlaneObs.
  bool use_control_plane = false;
  /// ND-LG: keep unidentified links as candidates and cluster them.
  bool uh_clustering = false;
  /// Tomo/ND-edge/ND-bgpigp drop unidentified links from consideration
  /// ("ND-bgpigp simply ignores any unidentified link", §5.4).
  bool ignore_unidentified = true;
  /// Score weights a (failure sets) and b (reroute sets); paper uses 1, 1.
  double weight_failures = 1.0;
  double weight_reroutes = 1.0;
};

/// What AS-X's control plane observed during the event (label space).
struct ControlPlaneObs {
  /// Canonical undirected keys of intradomain AS-X links reported down by
  /// the IGP.
  std::vector<std::string> igp_down_keys;
  struct Withdrawal {
    /// Directed key "receiving_router>sending_neighbor" of the interdomain
    /// link the withdrawal arrived on.
    std::string directed_key;
    /// AS owning the withdrawn prefix (the destination sensor's AS).
    int dest_asn = -1;
  };
  std::vector<Withdrawal> withdrawals;
};

/// LG-resolved AS tags for UH nodes: node id -> sorted candidate ASNs.
/// A node with no entry (or an empty vector) is unresolvable.
struct UhTagMap {
  std::unordered_map<std::uint32_t, std::vector<int>> tags;

  [[nodiscard]] const std::vector<int>* find(graph::NodeId n) const {
    auto it = tags.find(n.value());
    if (it == tags.end() || it->second.empty()) return nullptr;
    return &it->second;
  }
};

/// One hypothesis link with the evidence weight it was selected at.
struct RankedLink {
  std::string phys_key;
  /// Greedy score at selection time (explained failure + weighted reroute
  /// sets); higher = stronger evidence.
  double score = 0.0;
  /// Selection round (0 = first, strongest pick; IGP-seeded links are -1).
  int round = 0;
};

struct Result {
  /// Hypothesis H as edges of the diagnosis graph.
  std::vector<graph::EdgeId> hypothesis_edges;
  /// H mapped to canonical physical keys (logical links collapse onto
  /// their interdomain physical link).
  std::set<std::string> links;
  /// ASes implicated by H — endpoint ASNs of identified links plus
  /// resolved tags of unidentified ones.
  std::set<int> ases;
  /// Hypothesis links whose AS could not be resolved at all.
  std::size_t unknown_as_links = 0;
  /// Failure sets no candidate could explain (diagnostic).
  std::size_t unexplained_failure_sets = 0;
  /// Hypothesis links ordered strongest-evidence-first (one entry per
  /// physical key; IGP-confirmed links first with round = -1).
  std::vector<RankedLink> ranked;
};

[[nodiscard]] Result solve(const DiagnosisGraph& dg, const SolverOptions& opt,
                           const ControlPlaneObs* cp = nullptr,
                           const UhTagMap* tags = nullptr);

/// The hitting-set instance the solver actually optimizes, exposed so
/// alternative solvers (e.g. the exact branch-and-bound in exact.h) can
/// run on identical inputs: withdrawal-pruned failure sets, reroute sets,
/// and the admissible candidate edges (working and — per options —
/// unidentified edges removed).
struct Demands {
  std::vector<std::vector<std::uint32_t>> failure_sets;
  std::vector<std::vector<std::uint32_t>> reroute_sets;
  std::vector<std::uint32_t> candidates;      ///< admissible edge ids, sorted
  std::vector<char> admissible;               ///< indexed by edge id
};

[[nodiscard]] Demands build_demands(const DiagnosisGraph& dg,
                                    const SolverOptions& opt,
                                    const ControlPlaneObs* cp = nullptr);

}  // namespace netd::core
