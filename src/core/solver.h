// The NetDiagnoser inference engine.
//
// One greedy minimum-hitting-set solver (paper Algorithm 1) with optional
// features layered on top:
//   - reroute sets with weighted scoring (ND-edge, §3.2),
//   - control-plane pruning/seeding (ND-bgpigp, §3.3): IGP link-down
//     events seed the hypothesis; BGP withdrawals received at AS-X prune
//     the upstream portion of matching failure sets,
//   - unidentified-link clustering (ND-LG, §3.4) using LG-resolved AS tags.
// The named algorithm presets live in algorithms.h.
#pragma once

#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/diagnosis_graph.h"

namespace netd::core {

struct SolverOptions {
  /// ND-edge+: score working constraints and reroute sets from the T+
  /// paths instead of assuming T− paths are still in place (Tomo's flaw).
  bool use_reroutes = false;
  /// ND-bgpigp+: consume ControlPlaneObs.
  bool use_control_plane = false;
  /// ND-LG: keep unidentified links as candidates and cluster them.
  bool uh_clustering = false;
  /// Tomo/ND-edge/ND-bgpigp drop unidentified links from consideration
  /// ("ND-bgpigp simply ignores any unidentified link", §5.4).
  bool ignore_unidentified = true;
  /// Score weights a (failure sets) and b (reroute sets); paper uses 1, 1.
  double weight_failures = 1.0;
  double weight_reroutes = 1.0;
};

/// What AS-X's control plane observed during the event (label space).
struct ControlPlaneObs {
  /// Canonical undirected keys of intradomain AS-X links reported down by
  /// the IGP.
  std::vector<std::string> igp_down_keys;
  struct Withdrawal {
    /// Directed key "receiving_router>sending_neighbor" of the interdomain
    /// link the withdrawal arrived on.
    std::string directed_key;
    /// AS owning the withdrawn prefix (the destination sensor's AS).
    int dest_asn = -1;
  };
  std::vector<Withdrawal> withdrawals;
};

/// LG-resolved AS tags for UH nodes: node id -> sorted candidate ASNs.
/// A node with no entry (or an empty vector) is unresolvable.
struct UhTagMap {
  std::unordered_map<std::uint32_t, std::vector<int>> tags;

  [[nodiscard]] const std::vector<int>* find(graph::NodeId n) const {
    auto it = tags.find(n.value());
    if (it == tags.end() || it->second.empty()) return nullptr;
    return &it->second;
  }
};

/// One hypothesis link with the evidence weight it was selected at.
struct RankedLink {
  std::string phys_key;
  /// Greedy score at selection time (explained failure + weighted reroute
  /// sets); higher = stronger evidence.
  double score = 0.0;
  /// Selection round (0 = first, strongest pick; IGP-seeded links are -1).
  int round = 0;
};

struct Result {
  /// Hypothesis H as edges of the diagnosis graph.
  std::vector<graph::EdgeId> hypothesis_edges;
  /// H mapped to canonical physical keys (logical links collapse onto
  /// their interdomain physical link).
  std::set<std::string> links;
  /// ASes implicated by H — endpoint ASNs of identified links plus
  /// resolved tags of unidentified ones.
  std::set<int> ases;
  /// Hypothesis links whose AS could not be resolved at all.
  std::size_t unknown_as_links = 0;
  /// Failure sets no candidate could explain (diagnostic).
  std::size_t unexplained_failure_sets = 0;
  /// Hypothesis links ordered strongest-evidence-first (one entry per
  /// physical key; IGP-confirmed links first with round = -1).
  std::vector<RankedLink> ranked;
};

[[nodiscard]] Result solve(const DiagnosisGraph& dg, const SolverOptions& opt,
                           const ControlPlaneObs* cp = nullptr,
                           const UhTagMap* tags = nullptr);

struct Demands;

/// Scorer-only entry point: runs the greedy kernel on a prebuilt
/// hitting-set instance (which must come from build_demands with the same
/// opt/cp). Lets callers amortize demand construction across solvers and
/// lets the benchmarks time the scorer in isolation.
[[nodiscard]] Result solve(const DiagnosisGraph& dg, const SolverOptions& opt,
                           const Demands& demands,
                           const ControlPlaneObs* cp = nullptr,
                           const UhTagMap* tags = nullptr);

/// Reference implementation of the greedy scorer, kept byte-identical to
/// solve(): string-keyed grouping and per-round coverage recounts over
/// plain set lists — the shape the solver had before the bitset kernel —
/// with one deliberate fix: the per-(group, round) distinct-set rebuild is
/// hoisted out of the round loop (each group's coverage list is computed
/// once), so differential comparisons measure the kernel, not that old
/// waste. Used by the equivalence tests and bench_scale's speedup pin.
[[nodiscard]] Result solve_reference(const DiagnosisGraph& dg,
                                     const SolverOptions& opt,
                                     const ControlPlaneObs* cp = nullptr,
                                     const UhTagMap* tags = nullptr);

/// Reference scorer on a prebuilt instance (see the solve() overload).
[[nodiscard]] Result solve_reference(const DiagnosisGraph& dg,
                                     const SolverOptions& opt,
                                     const Demands& demands,
                                     const ControlPlaneObs* cp = nullptr,
                                     const UhTagMap* tags = nullptr);

/// Signature of a UH-edge endpoint for cluster rule (i): identified
/// endpoints must be the same node, unidentified ones must carry equal,
/// known AS tags. Empty when the endpoint is unresolvable (such edges
/// never cluster). Shared by solve() and solve_reference().
[[nodiscard]] std::string uh_endpoint_signature(const graph::Graph& g,
                                                graph::NodeId n,
                                                const UhTagMap* tags);

/// The hitting-set instance the solver actually optimizes, exposed so
/// alternative solvers (e.g. the exact branch-and-bound in exact.h) can
/// run on identical inputs: withdrawal-pruned failure sets, reroute sets,
/// and the admissible candidate edges (working and — per options —
/// unidentified edges removed).
/// A family of integer sets in CSR form: set s occupies
/// items[off[s] .. off[s+1]). One flat arena instead of one heap
/// allocation per set — at Internet scale the solver builds tens of
/// thousands of sets per solve, and the per-set vectors dominated
/// build_demands.
struct SetFamily {
  std::vector<std::uint32_t> off{0};
  std::vector<std::uint32_t> items;

  SetFamily() = default;
  /// Converting constructor for tests / hand-built instances.
  SetFamily(const std::vector<std::vector<std::uint32_t>>& sets) {  // NOLINT
    off.reserve(sets.size() + 1);
    for (const auto& s : sets) {
      items.insert(items.end(), s.begin(), s.end());
      off.push_back(static_cast<std::uint32_t>(items.size()));
    }
  }

  [[nodiscard]] std::size_t size() const { return off.size() - 1; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::span<const std::uint32_t> operator[](
      std::size_t s) const {
    return {items.data() + off[s], items.data() + off[s + 1]};
  }
  /// Appending protocol: push members onto items, then seal the set.
  void end_set() { off.push_back(static_cast<std::uint32_t>(items.size())); }
};

struct Demands {
  SetFamily failure_sets;
  SetFamily reroute_sets;
  std::vector<std::uint32_t> candidates;      ///< admissible edge ids, sorted
  std::vector<char> admissible;               ///< indexed by edge id
};

[[nodiscard]] Demands build_demands(const DiagnosisGraph& dg,
                                    const SolverOptions& opt,
                                    const ControlPlaneObs* cp = nullptr);

}  // namespace netd::core
