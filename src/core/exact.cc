#include "core/exact.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace netd::core {

namespace {

struct Searcher {
  // Demands as admissible-candidate sets, deduplicated.
  std::vector<std::vector<std::uint32_t>> sets;
  // For each candidate edge: which demand indices it hits.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> hits;

  std::size_t budget = 0;
  std::size_t nodes = 0;
  bool exhausted = false;

  std::vector<std::uint32_t> best;
  bool have_best = false;
  std::vector<std::uint32_t> current;
  std::vector<int> covered;  // per demand: how many chosen edges hit it

  void search() {
    if (++nodes > budget) {
      exhausted = true;
      return;
    }
    if (have_best && current.size() + 1 > best.size()) return;  // bound

    // Pick the uncovered demand with the fewest candidates (fail-first).
    int pick = -1;
    std::size_t pick_size = ~std::size_t{0};
    for (std::size_t s = 0; s < sets.size(); ++s) {
      if (covered[s] > 0) continue;
      if (sets[s].size() < pick_size) {
        pick = static_cast<int>(s);
        pick_size = sets[s].size();
      }
    }
    if (pick < 0) {
      // Everything covered: a feasible solution.
      if (!have_best || current.size() < best.size()) {
        best = current;
        have_best = true;
      }
      return;
    }
    if (have_best && current.size() + 1 >= best.size()) return;  // can't win

    for (std::uint32_t e : sets[pick]) {
      current.push_back(e);
      for (std::uint32_t s : hits[e]) ++covered[s];
      search();
      for (std::uint32_t s : hits[e]) --covered[s];
      current.pop_back();
      if (exhausted) return;
    }
  }
};

}  // namespace

std::optional<std::vector<std::uint32_t>> minimum_hitting_set(
    const Demands& demands, const ExactOptions& opt) {
  Searcher s;
  s.budget = opt.max_nodes;

  std::set<std::vector<std::uint32_t>> dedup;
  auto add_demand = [&](std::span<const std::uint32_t> raw) {
    std::vector<std::uint32_t> filtered;
    for (std::uint32_t e : raw) {
      if (demands.admissible[e]) filtered.push_back(e);
    }
    if (filtered.empty()) return;  // unexplainable demand: skipped
    std::sort(filtered.begin(), filtered.end());
    if (dedup.insert(filtered).second) s.sets.push_back(std::move(filtered));
  };
  for (std::size_t s = 0; s < demands.failure_sets.size(); ++s) {
    add_demand(demands.failure_sets[s]);
  }
  if (opt.cover_reroutes) {
    for (std::size_t s = 0; s < demands.reroute_sets.size(); ++s) {
      add_demand(demands.reroute_sets[s]);
    }
  }
  if (s.sets.empty()) return std::vector<std::uint32_t>{};

  for (std::uint32_t idx = 0; idx < s.sets.size(); ++idx) {
    for (std::uint32_t e : s.sets[idx]) s.hits[e].push_back(idx);
  }
  s.covered.assign(s.sets.size(), 0);

  // Seed the bound with the trivial solution (one edge per demand).
  {
    std::vector<std::uint32_t> trivial;
    std::unordered_set<std::uint32_t> seen;
    for (const auto& set : s.sets) {
      // Greedy seed: the member hitting the most demands.
      std::uint32_t pick = set.front();
      std::size_t pick_hits = 0;
      for (std::uint32_t e : set) {
        if (s.hits[e].size() > pick_hits) {
          pick = e;
          pick_hits = s.hits[e].size();
        }
      }
      if (seen.insert(pick).second) trivial.push_back(pick);
    }
    s.best = std::move(trivial);
    s.have_best = true;
    // The seed may over-cover; it is only a bound, not returned as-is
    // unless the search confirms nothing smaller exists.
  }

  s.search();
  if (s.exhausted) return std::nullopt;
  return s.best;
}

}  // namespace netd::core
