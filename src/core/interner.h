// Dense string-key interner for the solver hot path.
//
// The diagnosis algorithms canonically identify links by strings (physical
// key "a|b", directed key "a>b"). Hashing those strings inside the greedy
// loop is what made coverage scoring pointer-chase-bound, so the graph
// builder interns every key once into a dense uint32_t id and the solver
// works purely in id space. Ids are assigned in first-intern order, which
// the builder visits in edge-creation order — the tie-break contract the
// goldens pin (see DESIGN.md "Internet-scale solver hot path").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace netd::core {

class KeyInterner {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Returns the id for `key`, assigning the next dense id on first sight.
  std::uint32_t intern(std::string_view key) {
    auto it = by_key_.find(key);
    if (it != by_key_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(keys_.size());
    keys_.emplace_back(key);
    by_key_.emplace(keys_.back(), id);
    return id;
  }

  /// Id of `key`, or kNone when it was never interned.
  [[nodiscard]] std::uint32_t find(std::string_view key) const {
    auto it = by_key_.find(key);
    return it == by_key_.end() ? kNone : it->second;
  }

  [[nodiscard]] const std::string& key(std::uint32_t id) const {
    return keys_[id];
  }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  void reserve(std::size_t n) {
    keys_.reserve(n);
    by_key_.reserve(n);
  }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::vector<std::string> keys_;
  // Keys are owned copies (a short string's inline buffer would move when
  // keys_ reallocates, so views into keys_ cannot back the map); lookups
  // are heterogeneous so find() never builds a temporary std::string.
  std::unordered_map<std::string, std::uint32_t, Hash, Eq> by_key_;
};

}  // namespace netd::core
