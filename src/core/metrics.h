// Sensitivity / specificity at link and AS granularity (paper §4 "Metrics").
#pragma once

#include <set>
#include <string>

namespace netd::core {

struct LinkMetrics {
  double sensitivity = 0.0;  ///< |F ∩ H| / |F|
  double specificity = 0.0;  ///< |E \ (F ∪ H)| / |E \ F|
  std::size_t hypothesis_size = 0;
  std::size_t num_probed = 0;  ///< |E|
};

/// `hypothesis` and `failed` are canonical physical-link keys; `probed`
/// is the universe E. `failed` must be non-empty and ⊆ probed.
[[nodiscard]] LinkMetrics link_metrics(const std::set<std::string>& hypothesis,
                                       const std::set<std::string>& failed,
                                       const std::set<std::string>& probed);

struct AsMetrics {
  double sensitivity = 0.0;
  double specificity = 0.0;
  std::size_t hypothesis_size = 0;
};

/// Same metrics over AS numbers; `universe` is the set of ASes covered by
/// the probes.
[[nodiscard]] AsMetrics as_metrics(const std::set<int>& hypothesis,
                                   const std::set<int>& failed,
                                   const std::set<int>& universe);

}  // namespace netd::core
