#include "core/metrics.h"

#include <algorithm>
#include <cassert>

namespace netd::core {

namespace {

template <typename T>
std::size_t intersection_size(const std::set<T>& a, const std::set<T>& b) {
  std::size_t n = 0;
  for (const T& x : a) n += b.count(x);
  return n;
}

}  // namespace

LinkMetrics link_metrics(const std::set<std::string>& hypothesis,
                         const std::set<std::string>& failed,
                         const std::set<std::string>& probed) {
  assert(!failed.empty());
  LinkMetrics m;
  m.hypothesis_size = hypothesis.size();
  m.num_probed = probed.size();
  m.sensitivity = static_cast<double>(intersection_size(failed, hypothesis)) /
                  static_cast<double>(failed.size());
  std::size_t implicated = 0;  // |E ∩ (F ∪ H)|
  for (const auto& k : probed) {
    if (failed.count(k) != 0 || hypothesis.count(k) != 0) ++implicated;
  }
  const std::size_t failed_in_probed = intersection_size(failed, probed);
  const std::size_t non_failed = probed.size() - failed_in_probed;
  m.specificity =
      non_failed == 0
          ? 1.0
          : static_cast<double>(probed.size() - implicated) /
                static_cast<double>(non_failed);
  return m;
}

AsMetrics as_metrics(const std::set<int>& hypothesis,
                     const std::set<int>& failed,
                     const std::set<int>& universe) {
  assert(!failed.empty());
  AsMetrics m;
  m.hypothesis_size = hypothesis.size();
  m.sensitivity = static_cast<double>(intersection_size(failed, hypothesis)) /
                  static_cast<double>(failed.size());
  std::size_t implicated = 0;
  std::size_t failed_in_universe = 0;
  for (int as : universe) {
    const bool f = failed.count(as) != 0;
    if (f) ++failed_in_universe;
    if (f || hypothesis.count(as) != 0) ++implicated;
  }
  const std::size_t non_failed = universe.size() - failed_in_universe;
  m.specificity = non_failed == 0
                      ? 1.0
                      : static_cast<double>(universe.size() - implicated) /
                            static_cast<double>(non_failed);
  return m;
}

}  // namespace netd::core
