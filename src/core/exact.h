// Exact minimum hitting set via branch and bound.
//
// The paper's problem (§2.3) is NP-hard; Algorithm 1 is the classic
// greedy log-approximation. For the instance sizes the evaluation
// actually produces (tens of failure sets over a few hundred candidate
// edges) an exact branch-and-bound is tractable, which lets us *measure*
// the greedy's approximation gap (bench_ablation_optimality) instead of
// assuming it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/solver.h"

namespace netd::core {

struct ExactOptions {
  /// Search-node budget; exceeded => nullopt (instance too large).
  std::size_t max_nodes = 2'000'000;
  /// Also demand coverage of reroute sets (ND-edge semantics). When
  /// false only failure sets must be hit (Tomo semantics).
  bool cover_reroutes = true;
};

/// Returns a minimum-cardinality set of admissible candidate edges that
/// intersects every (non-empty-after-filtering) failure set — and, per
/// options, every reroute set. Demands whose sets contain no admissible
/// candidate are skipped (unexplainable, exactly as in the greedy).
/// nullopt when the node budget is exhausted.
[[nodiscard]] std::optional<std::vector<std::uint32_t>> minimum_hitting_set(
    const Demands& demands, const ExactOptions& opt = {});

}  // namespace netd::core
