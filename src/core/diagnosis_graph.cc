#include "core/diagnosis_graph.h"

#include <cassert>

namespace netd::core {

using graph::EdgeId;
using graph::NodeId;
using graph::NodeKind;

std::string undirected_key(const std::string& a, const std::string& b) {
  return a < b ? a + "|" + b : b + "|" + a;
}

namespace {

/// Interns one traceroute path (optionally logical-expanded) and returns
/// its edge sequence. `path_index` is recorded on first sight of UH edges.
std::vector<EdgeId> intern_path(DiagnosisGraph& dg,
                                const std::vector<probe::Hop>& hops,
                                LogicalMode mode, int path_index) {
  std::vector<EdgeId> out;
  assert(hops.size() >= 2);

  auto intern_hop = [&](const probe::Hop& h) {
    return dg.g.intern_node(h.label, h.kind, h.asn);
  };

  auto add_edge = [&](NodeId a, NodeId b, const probe::Hop& u,
                      const probe::Hop& v, bool logical) {
    const EdgeId e = dg.g.intern_edge(a, b);
    if (e.value() == dg.edges.size()) {
      EdgeInfo info;
      info.phys_key = undirected_key(u.label, v.label);
      info.directed_key = u.label + ">" + v.label;
      info.phys_id = dg.phys_keys.intern(info.phys_key);
      info.dir_id = dg.directed_keys.intern(info.directed_key);
      info.unidentified = u.kind == NodeKind::kUnidentified ||
                          v.kind == NodeKind::kUnidentified;
      info.logical = logical;
      info.asn_src = u.asn;
      info.asn_dst = v.asn;
      info.before_path = info.unidentified ? path_index : -1;
      dg.edges.push_back(std::move(info));
    }
    dg.probed_keys.insert(dg.edges[e.value()].phys_key);
    out.push_back(e);
  };

  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const probe::Hop& u = hops[i];
    const probe::Hop& v = hops[i + 1];
    const NodeId nu = intern_hop(u);
    const NodeId nv = intern_hop(v);

    const bool interdomain =
        u.asn != -1 && v.asn != -1 && u.asn != v.asn;
    if (mode != LogicalMode::kNone && interdomain) {
      probe::Hop mid;
      if (mode == LogicalMode::kPerNeighbor) {
        // Next AS after v's AS on this path (W of Fig. 3); v's own AS when
        // the path terminates inside it. Unknown (UH) hops are skipped.
        int next_asn = v.asn;
        for (std::size_t k = i + 2; k < hops.size(); ++k) {
          if (hops[k].asn != -1 && hops[k].asn != v.asn) {
            next_asn = hops[k].asn;
            break;
          }
        }
        mid.label = v.label + "(AS" + std::to_string(next_asn) + ")";
      } else {
        // Per-prefix: one logical node per destination prefix crossing
        // the session ("ideally ... on a per-prefix basis", §3.1).
        mid.label = v.label + "(pfx" + std::to_string(hops.back().asn) + ")";
      }
      mid.kind = NodeKind::kLogical;
      mid.asn = v.asn;
      const NodeId nm = dg.g.intern_node(mid.label, mid.kind, mid.asn);
      // Both logical halves inherit the physical link's identity.
      auto add_logical = [&](NodeId a, NodeId b) {
        const EdgeId e = dg.g.intern_edge(a, b);
        if (e.value() == dg.edges.size()) {
          EdgeInfo info;
          info.phys_key = undirected_key(u.label, v.label);
          info.directed_key = u.label + ">" + v.label;
          info.phys_id = dg.phys_keys.intern(info.phys_key);
          info.dir_id = dg.directed_keys.intern(info.directed_key);
          info.logical = true;
          info.asn_src = u.asn;
          info.asn_dst = v.asn;
          dg.edges.push_back(std::move(info));
        }
        dg.probed_keys.insert(dg.edges[e.value()].phys_key);
        out.push_back(e);
      };
      add_logical(nu, nm);
      add_logical(nm, nv);
    } else {
      add_edge(nu, nv, u, v, /*logical=*/false);
    }
  }
  return out;
}

}  // namespace

DiagnosisGraph build_diagnosis_graph(const probe::Mesh& before,
                                     const probe::Mesh& after,
                                     bool logical_links,
                                     const probe::ParisMesh* paris_before) {
  return build_diagnosis_graph(
      before, after,
      logical_links ? LogicalMode::kPerNeighbor : LogicalMode::kNone,
      paris_before);
}

DiagnosisGraph build_diagnosis_graph(const probe::Mesh& before,
                                     const probe::Mesh& after,
                                     LogicalMode mode,
                                     const probe::ParisMesh* paris_before) {
  assert(before.paths.size() == after.paths.size());
  assert(paris_before == nullptr ||
         paris_before->pairs.size() == before.paths.size());
  DiagnosisGraph dg;
  for (std::size_t k = 0; k < before.paths.size(); ++k) {
    const probe::TracePath& pb = before.paths[k];
    const probe::TracePath& pa = after.paths[k];
    assert(pb.src == pa.src && pb.dst == pa.dst);
    if (!pb.ok) continue;  // pair already unreachable before the event

    PathObs obs;
    obs.src = pb.src;
    obs.dst = pb.dst;
    obs.dest_asn = pb.hops.back().asn;
    const int path_index = static_cast<int>(dg.paths.size());
    obs.before = intern_path(dg, pb.hops, mode, path_index);
    obs.ok_after = pa.ok;
    if (pa.ok) {
      obs.after = intern_path(dg, pa.hops, mode, path_index);
      obs.rerouted = obs.after != obs.before;
      if (obs.rerouted && paris_before != nullptr &&
          probe::is_load_balanced_change(paris_before->pairs[k], pa)) {
        obs.rerouted = false;  // an ECMP sibling, not a routing change
      }
    }
    dg.paths.push_back(std::move(obs));
  }
  return dg;
}

}  // namespace netd::core
