// The deployment facade (paper §6): continuous measurement, flap-robust
// alarming, and automatic diagnosis.
//
// A Troubleshooter owns the measurement-loop state a real deployment
// needs: a healthy T− baseline (rolled forward while the mesh is clean),
// an UnreachabilityDetector that filters transient flaps, and the
// algorithm configuration. Feed it one full-mesh snapshot per round;
// when an alarm fires it runs the configured NetDiagnoser variant against
// the last healthy baseline and returns the diagnosis.
#pragma once

#include <optional>

#include "core/algorithms.h"
#include "probe/detector.h"
#include "probe/prober.h"

namespace netd::core {

class Troubleshooter {
 public:
  struct Config {
    /// Consecutive failed rounds before a pair alarms (§6; 1 = naive).
    std::size_t alarm_threshold = 3;
    /// Logical-link granularity for the diagnosis graph.
    LogicalMode granularity = LogicalMode::kPerNeighbor;
    /// Solver feature set (defaults to ND-edge; enable use_control_plane
    /// and pass observations per round for ND-bgpigp behavior).
    SolverOptions solver;

    Config() { solver = nd_edge_options(); }
  };

  explicit Troubleshooter(Config cfg = Config());

  /// Installs the initial healthy baseline (all pairs must work).
  void set_baseline(probe::Mesh baseline);
  [[nodiscard]] const probe::Mesh& baseline() const { return baseline_; }
  [[nodiscard]] bool has_baseline() const { return !baseline_.paths.empty(); }

  /// One measurement round. Returns a diagnosis when at least one pair's
  /// alarm fires in this round; otherwise std::nullopt. Fully healthy
  /// rounds roll the baseline forward (so post-repair topology changes
  /// become the new normal). `cp` is consumed only when the solver was
  /// configured with use_control_plane.
  [[nodiscard]] std::optional<AlgorithmOutput> observe(
      const probe::Mesh& round, const ControlPlaneObs* cp = nullptr);

  [[nodiscard]] bool alarmed() const { return detector_.any_alarm(); }
  [[nodiscard]] const probe::UnreachabilityDetector& detector() const {
    return detector_;
  }

  /// Byte-identical crash recovery (the service journal's snapshot path):
  /// reinstalls a previously observed rolling baseline and detector state
  /// verbatim. Unlike set_baseline, which starts a fresh epoch and resets
  /// the detector, restore() resumes mid-stream — the next observe() sees
  /// exactly the state the snapshotted incarnation held.
  void restore(probe::Mesh baseline, std::vector<std::size_t> failures,
               std::vector<bool> alarmed);

 private:
  Config cfg_;
  probe::UnreachabilityDetector detector_;
  probe::Mesh baseline_;
};

}  // namespace netd::core
