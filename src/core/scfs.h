// Duffield's "Smallest Common Failure Set" algorithm (paper §2.1).
//
// The classical Boolean-tomography baseline NetDiagnoser generalizes:
// single source, tree topology. SCFS designates as bad only the links
// nearest the source consistent with the observed bad paths — for each
// failed destination, the first link of its path that no working path
// uses. Included for completeness and comparison; Tomo (§2.4) is the
// multi-source/multi-destination generalization.
#pragma once

#include <cstddef>

#include "core/diagnosis_graph.h"
#include "core/solver.h"

namespace netd::core {

/// Runs SCFS over the single-source tree rooted at sensor `src_sensor`
/// (paths of `dg` with a different source are ignored). The returned
/// hypothesis contains, per failed destination, the link closest to the
/// source that carries no working path; a failed path fully covered by
/// working links yields an unexplained failure set.
[[nodiscard]] Result scfs(const DiagnosisGraph& dg, std::size_t src_sensor);

}  // namespace netd::core
