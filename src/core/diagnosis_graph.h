// Construction of the inference graph G from the traceroute meshes.
//
// Interns the T− and T+ paths of every sensor pair into one directed graph
// and records, per edge, the metadata the diagnosis algorithms need: the
// canonical physical-link key (so logical edges and both directions map
// back to one physical link), endpoint ASNs, and unidentified-hop flags.
//
// With `logical_links` enabled, every interdomain hop u→v is expanded per
// the paper's §3.1 (Fig. 3): u→v(W) and v(W)→v, where W is the next AS on
// the path after v's AS (v's own AS when the path terminates there). A BGP
// export misconfiguration then shows up as a failed *logical* link even
// though the physical link still carries working paths.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/interner.h"
#include "graph/graph.h"
#include "probe/prober.h"

namespace netd::core {

/// Per-edge metadata, indexed by EdgeId.
struct EdgeInfo {
  /// Canonical undirected physical key "min(u,v)|max(u,v)" over the
  /// *physical* endpoint labels (logical expansion collapsed).
  std::string phys_key;
  /// Directed physical key "u>v"; used to match BGP-withdrawal pruning.
  std::string directed_key;
  /// Dense interned ids of the two keys (DiagnosisGraph::phys_keys /
  /// directed_keys), assigned in edge-creation order. The solver's hot
  /// path works exclusively in this id space; the strings remain for
  /// reporting and the wire surface.
  std::uint32_t phys_id = KeyInterner::kNone;
  std::uint32_t dir_id = KeyInterner::kNone;
  bool unidentified = false;  ///< touches a UH node
  bool logical = false;       ///< produced by logical-link expansion
  int asn_src = -1;           ///< physical endpoint ASNs (-1 unknown)
  int asn_dst = -1;
  /// For UH edges: index (into paths) of the unique T− path carrying it;
  /// -1 when not applicable.
  int before_path = -1;
};

/// One sensor pair's observation: its T− path, its T+ fate, and the T+
/// path when it still works.
struct PathObs {
  std::size_t src = 0;
  std::size_t dst = 0;
  int dest_asn = -1;  ///< AS of the destination sensor
  bool ok_after = false;
  bool rerouted = false;  ///< ok_after and the path changed
  std::vector<graph::EdgeId> before;
  std::vector<graph::EdgeId> after;  ///< empty unless ok_after
};

/// Granularity of the logical-link expansion (§3.1). The paper argues
/// per-neighbor is usually sufficient because BGP policies are set per
/// neighbor, but notes per-prefix would be "ideal" at the cost of a much
/// larger graph; both are implemented so the trade-off can be measured
/// (see bench_ablation_granularity).
enum class LogicalMode {
  kNone,         ///< plain physical edges (Tomo)
  kPerNeighbor,  ///< one logical node per (router, next AS) — the paper's
                 ///< choice
  kPerPrefix,    ///< one logical node per (router, destination prefix)
};

struct DiagnosisGraph {
  graph::Graph g;
  std::vector<EdgeInfo> edges;  ///< parallel to g's edge ids
  std::vector<PathObs> paths;   ///< pairs that worked at T− only
  /// All probed physical keys (T− and T+) — the set E of the paper.
  std::set<std::string> probed_keys;
  /// Dense key id spaces (EdgeInfo::phys_id / dir_id index into these).
  KeyInterner phys_keys;
  KeyInterner directed_keys;

  [[nodiscard]] const EdgeInfo& info(graph::EdgeId e) const {
    return edges[e.value()];
  }
};

/// Builds G from the two mesh snapshots (which must cover the same sensor
/// pairs in the same order). Pairs already unreachable at T− are dropped.
///
/// `paris_before`, when provided, is the T− Paris-traceroute snapshot
/// (index-aligned with `before`): a changed-but-working T+ path that
/// matches one of the pair's T− ECMP alternatives is load balancing, not a
/// reroute, and is not marked rerouted (paper §2.2, footnote 2).
[[nodiscard]] DiagnosisGraph build_diagnosis_graph(
    const probe::Mesh& before, const probe::Mesh& after, LogicalMode mode,
    const probe::ParisMesh* paris_before = nullptr);

/// Convenience overload: `logical_links` selects kPerNeighbor (the
/// paper's construction) or kNone.
[[nodiscard]] DiagnosisGraph build_diagnosis_graph(
    const probe::Mesh& before, const probe::Mesh& after, bool logical_links,
    const probe::ParisMesh* paris_before = nullptr);

/// Canonical undirected physical-link key used throughout: both directions
/// of a link, and all logical edges derived from it, share one key.
[[nodiscard]] std::string undirected_key(const std::string& a,
                                         const std::string& b);

}  // namespace netd::core
