#include "core/json_export.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace netd::core {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string number(double v) {
  // Integral scores print as integers for stable, readable output.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

}  // namespace

std::string to_json(const DiagnosisGraph& dg, const Result& result) {
  std::size_t failed = 0, rerouted = 0;
  for (const auto& p : dg.paths) {
    if (!p.ok_after) {
      ++failed;
    } else if (p.rerouted) {
      ++rerouted;
    }
  }

  // Per-link attributes aggregated from the hypothesis edges.
  struct Attr {
    bool logical = false;
    bool unidentified = false;
    std::set<int> ases;
  };
  std::map<std::string, Attr> attrs;
  for (graph::EdgeId e : result.hypothesis_edges) {
    const EdgeInfo& info = dg.info(e);
    Attr& a = attrs[info.phys_key];
    a.logical = a.logical || info.logical;
    a.unidentified = a.unidentified || info.unidentified;
    const auto& ge = dg.g.edge(e);
    for (graph::NodeId n : {ge.src, ge.dst}) {
      const auto& node = dg.g.node(n);
      if (node.asn >= 0) a.ases.insert(node.asn);
    }
  }

  std::ostringstream os;
  os << "{";
  os << "\"pairs\":" << dg.paths.size() << ",\"failed\":" << failed
     << ",\"rerouted\":" << rerouted
     << ",\"probed_links\":" << dg.probed_keys.size()
     << ",\"unexplained_failure_sets\":" << result.unexplained_failure_sets
     << ",\"unknown_as_links\":" << result.unknown_as_links;
  os << ",\"hypothesis\":[";
  bool first = true;
  for (const auto& r : result.ranked) {
    if (!first) os << ",";
    first = false;
    const Attr& a = attrs[r.phys_key];
    os << "{\"link\":\"" << json_escape(r.phys_key) << "\"";
    if (std::isinf(r.score)) {
      os << ",\"score\":\"igp-confirmed\"";
    } else {
      os << ",\"score\":" << number(r.score);
    }
    os << ",\"round\":" << r.round
       << ",\"logical\":" << (a.logical ? "true" : "false")
       << ",\"unidentified\":" << (a.unidentified ? "true" : "false")
       << ",\"ases\":[";
    bool f2 = true;
    for (int as : a.ases) {
      if (!f2) os << ",";
      f2 = false;
      os << as;
    }
    os << "]}";
  }
  os << "],\"implicated_ases\":[";
  first = true;
  for (int as : result.ases) {
    if (!first) os << ",";
    first = false;
    os << as;
  }
  os << "]}";
  return os.str();
}

}  // namespace netd::core
