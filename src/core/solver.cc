#include "core/solver.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <optional>

#include "obs/registry.h"
#include "obs/span.h"
#include "util/bitset.h"

namespace netd::core {

using graph::EdgeId;
using graph::NodeId;
using graph::NodeKind;

namespace {

/// Solver instruments, resolved once per process (the registry lookup
/// takes a mutex; the instruments themselves are lock-free / sharded).
struct SolveInstruments {
  obs::Counter& solves = obs::Registry::global().counter(
      "netd_solve_total", "Hitting-set solver invocations");
  obs::Counter& greedy_rounds = obs::Registry::global().counter(
      "netd_solve_greedy_rounds_total",
      "Greedy max-score selection rounds across all solves");
  obs::Counter& cov_cache_hits = obs::Registry::global().counter(
      "netd_solve_cov_cache_hits_total",
      "Coverage-row dedup hits (set already counted this group)");
  obs::Counter& cov_cache_misses = obs::Registry::global().counter(
      "netd_solve_cov_cache_misses_total",
      "Coverage-row bits set (distinct sets per group)");
  obs::Histogram& candidates = obs::Registry::global().histogram(
      "netd_solve_candidates", "Admissible candidate edges per solve");
  obs::Histogram& groups = obs::Registry::global().histogram(
      "netd_solve_groups", "Candidate link groups per solve");
  obs::Histogram& hypothesis = obs::Registry::global().histogram(
      "netd_solve_hypothesis_edges", "Hypothesis edges selected per solve");
  obs::Histogram& unexplained = obs::Registry::global().histogram(
      "netd_solve_unexplained_failure_sets",
      "Failure sets left unexplained per solve");
  obs::Histogram& bitset_words = obs::Registry::global().histogram(
      "netd_solve_bitset_words",
      "64-bit words per coverage row (failure + reroute columns) per solve");

  static SolveInstruments& get() {
    static SolveInstruments i;
    return i;
  }
};

}  // namespace

std::string uh_endpoint_signature(const graph::Graph& g, graph::NodeId n,
                                  const UhTagMap* tags) {
  const auto& node = g.node(n);
  if (node.kind != NodeKind::kUnidentified) return "n:" + node.label;
  if (tags == nullptr) return {};
  const std::vector<int>* t = tags->find(n);
  if (t == nullptr) return {};
  std::string sig = "t:";
  for (int a : *t) sig += std::to_string(a) + ",";
  return sig;
}

Demands build_demands(const DiagnosisGraph& dg, const SolverOptions& opt,
                      const ControlPlaneObs* cp) {
  Demands out;
  const std::size_t n_edges = dg.edges.size();

  // ---- Working-path constraints W -----------------------------------------
  // Tomo only knows the T− paths; the reroute-aware variants use the paths
  // actually in place at T+.
  std::vector<char> working(n_edges, 0);
  for (const PathObs& p : dg.paths) {
    if (!p.ok_after) continue;
    const auto& edges = opt.use_reroutes ? p.after : p.before;
    for (EdgeId e : edges) working[e.value()] = 1;
  }

  // Epoch-stamped scratch shared by every per-path dedup below — the old
  // per-path unordered_set rebuilds were pure allocator churn.
  std::vector<std::uint32_t> stamp(n_edges, 0);
  std::uint32_t epoch = 0;

  // Withdrawal directed keys resolved to dense ids once (a key never
  // probed matches no edge and is dropped), deduplicated, and bucketed by
  // destination ASN — pruning a path then consults only the withdrawals
  // that can match it instead of rescanning the full observation list per
  // path (the old quadratic sweep dominated Internet-scale solves).
  // Duplicate (link, prefix) withdrawals prune identically, so dedup
  // cannot change any failure set.
  std::unordered_map<int, std::vector<std::uint32_t>> withdrawals_by_asn;
  if (opt.use_control_plane && cp != nullptr) {
    // BGP feeds repeat keys in bursts (one announcement per withdrawn
    // prefix over the same session), so a two-entry lookup cache absorbs
    // most interner probes.
    const std::string* last_key[2] = {nullptr, nullptr};
    std::uint32_t last_id[2] = {KeyInterner::kNone, KeyInterner::kNone};
    for (const auto& w : cp->withdrawals) {
      std::uint32_t id;
      if (last_key[0] != nullptr && *last_key[0] == w.directed_key) {
        id = last_id[0];
      } else if (last_key[1] != nullptr && *last_key[1] == w.directed_key) {
        id = last_id[1];
        std::swap(last_key[0], last_key[1]);
        std::swap(last_id[0], last_id[1]);
      } else {
        id = dg.directed_keys.find(w.directed_key);
        last_key[1] = last_key[0];
        last_id[1] = last_id[0];
        last_key[0] = &w.directed_key;
        last_id[0] = id;
      }
      if (id == KeyInterner::kNone) continue;
      withdrawals_by_asn[w.dest_asn].push_back(id);
    }
    // Dedup per bucket in one pass. Pruning reads only each bucket's
    // (unique) deepest on-path matches, which is order-independent, so
    // sorting here cannot change any failure set.
    for (auto& [asn, bucket] : withdrawals_by_asn) {
      std::sort(bucket.begin(), bucket.end());
      bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
    }
  }
  // A session-wide outage withdraws the same links toward every dead
  // prefix, so the per-ASN buckets collapse to a handful of distinct link
  // sets. Canonicalizing them lets the pruning loop below stamp a bucket's
  // membership once and reuse it across every destination that shares it.
  std::vector<std::vector<std::uint32_t>> unique_buckets;
  std::unordered_map<int, std::uint32_t> bucket_of_asn;
  {
    std::map<std::vector<std::uint32_t>, std::uint32_t> canon;
    for (auto& [asn, bucket] : withdrawals_by_asn) {
      auto [it, inserted] = canon.emplace(
          bucket, static_cast<std::uint32_t>(unique_buckets.size()));
      if (inserted) unique_buckets.push_back(std::move(bucket));
      bucket_of_asn.emplace(asn, it->second);
    }
  }

  // Admissibility is a pure per-edge predicate, resolved into one flat
  // byte array up front: the fill loops below touch edges in path order
  // (random access), so folding the working/unidentified tests into a
  // single precomputed byte halves their cache traffic. Membership in the
  // candidate set U is still decided inline as each set is filled — only
  // edges that actually appear in some set are admissible.
  const bool keep_uh = opt.uh_clustering || !opt.ignore_unidentified;
  out.admissible.assign(n_edges, 0);
  std::vector<char> elig(n_edges, 0);
  for (std::uint32_t e = 0; e < n_edges; ++e) {
    elig[e] = static_cast<char>(!working[e] &&
                                (keep_uh || !dg.edges[e].unidentified));
  }

  // ---- Failure sets L (one per broken path), withdrawal-pruned ------------
  auto& failure_sets = out.failure_sets;
  {
    std::size_t n_failing = 0, total_len = 0;
    for (const PathObs& p : dg.paths) {
      if (p.ok_after) continue;
      ++n_failing;
      total_len += p.before.size();
    }
    failure_sets.off.reserve(1 + n_failing);
    failure_sets.items.reserve(total_len);  // upper bound (pre-pruning)
  }
  std::vector<char> pruned;
  // Last on-path position of each withdrawal link, epoch-stamped over the
  // dense directed-id space.
  std::vector<std::uint32_t> wd_epoch(dg.directed_keys.size(), 0);
  std::vector<std::uint32_t> wd_last(dg.directed_keys.size(), 0);
  std::vector<std::uint32_t> wd_matched;
  std::uint32_t wd_gen = 0;
  std::uint32_t stamped_bucket = KeyInterner::kNone;
  for (const PathObs& p : dg.paths) {
    if (p.ok_after) continue;
    bool use_pruned = false;
    const auto wb = bucket_of_asn.empty() ? bucket_of_asn.end()
                                          : bucket_of_asn.find(p.dest_asn);
    if (wb != bucket_of_asn.end()) {
      use_pruned = true;
      pruned.assign(p.before.size(), 0);
      // A withdrawal for this destination's prefix received over link l
      // proves the failure is beyond l: drop everything up to and
      // including l (paper §3.3 example). Exception: the *logical* edges
      // of l itself stay — receiving the withdrawal over l shows l is
      // physically alive, but the withdrawal may itself be the symptom of
      // a misconfigured export filter at l's far end. (An edge spared by
      // one withdrawal's exception is still pruned when any *other*
      // matching withdrawal reaches its position.)
      if (stamped_bucket != wb->second) {
        ++wd_gen;
        for (std::uint32_t id : unique_buckets[wb->second]) {
          wd_epoch[id] = wd_gen;
        }
        stamped_bucket = wb->second;
      }
      // One pass: record the last on-path position per withdrawal link
      // (wd_last was reset to 0 below after the previous path that used
      // this generation, so stale positions never leak across paths).
      wd_matched.clear();
      for (std::size_t i = 0; i < p.before.size(); ++i) {
        const std::uint32_t d = dg.info(p.before[i]).dir_id;
        if (wd_epoch[d] == wd_gen) {
          if (wd_last[d] == 0) wd_matched.push_back(d);
          wd_last[d] = static_cast<std::uint32_t>(i) + 1;  // 1-based; 0 = absent
        }
      }
      // The two deepest distinct matches decide everything: an edge at
      // position i is pruned iff some match reaches i (i < first), unless
      // it is a logical edge of the deepest match and no other match
      // reaches it (i >= second). The max is over distinct ids (one id per
      // position), so the match order cannot affect the outcome.
      std::size_t first = 0, second = 0;  // 1-based positions past the match
      std::uint32_t first_dir = KeyInterner::kNone;
      for (std::uint32_t id : wd_matched) {
        const std::uint32_t last = wd_last[id];
        wd_last[id] = 0;  // reset for the next path
        if (last > first) {
          second = first;
          first = last;
          first_dir = id;
        } else if (last > second) {
          second = last;
        }
      }
      if (first > 0) {
        for (std::size_t i = 0; i < first; ++i) {
          const EdgeInfo& info = dg.info(p.before[i]);
          if (info.logical && info.dir_id == first_dir && i + 1 > second) {
            continue;
          }
          pruned[i] = 1;
        }
        // Degenerate guard: never prune a failure set into emptiness.
        if (first == p.before.size() &&
            std::all_of(pruned.begin(), pruned.end(),
                        [](char c) { return c != 0; })) {
          std::fill(pruned.begin(), pruned.end(), 0);
        }
      }
    }
    ++epoch;
    for (std::size_t i = 0; i < p.before.size(); ++i) {
      if (use_pruned && pruned[i]) continue;
      const std::uint32_t e = p.before[i].value();
      if (stamp[e] != epoch) {
        stamp[e] = epoch;
        failure_sets.items.push_back(e);
        if (elig[e]) out.admissible[e] = 1;
      }
    }
    failure_sets.end_set();
  }

  // ---- Reroute sets R (ND-edge, §3.2) --------------------------------------
  auto& reroute_sets = out.reroute_sets;
  if (opt.use_reroutes) {
    std::vector<std::uint32_t> after_stamp(n_edges, 0);
    std::uint32_t after_epoch = 0;
    for (const PathObs& p : dg.paths) {
      if (!p.ok_after || !p.rerouted) continue;
      ++after_epoch;
      for (EdgeId e : p.after) after_stamp[e.value()] = after_epoch;
      ++epoch;
      const std::size_t start = reroute_sets.items.size();
      for (EdgeId e : p.before) {
        const std::uint32_t ev = e.value();
        if (after_stamp[ev] != after_epoch && stamp[ev] != epoch) {
          stamp[ev] = epoch;
          reroute_sets.items.push_back(ev);
          if (elig[ev]) out.admissible[ev] = 1;
        }
      }
      if (reroute_sets.items.size() > start) reroute_sets.end_set();
    }
  }

  // ---- Candidate set U ------------------------------------------------------
  // U = the admissible edges of L ∪ R (the reroute half matters because a
  // reroutable failure leaves no failed path behind it). The fill loops
  // above flagged them; one scan of the bitmap emits the ids already in
  // the ascending order the old sort produced.
  auto& candidates = out.candidates;
  candidates.reserve(static_cast<std::size_t>(
      std::count(out.admissible.begin(), out.admissible.end(), char{1})));
  for (std::uint32_t e = 0; e < n_edges; ++e) {
    if (out.admissible[e]) candidates.push_back(e);
  }
  return out;
}

// The greedy loop runs entirely in dense id space over packed bitset rows:
// each candidate group has one row per set family (failure, reroute) with
// bit s set iff the group can explain set s; the still-unexplained sets
// are two global masks. Rows are materialized once through a rolling
// scratch BitVec that computes each group's initial score against the
// masks; from then on the counts are maintained decrementally — a
// selection "clears columns" (the explained sets' bits drop out of the
// masks) and each cleared column walks its set→groups CSR to decrement
// exactly the affected counts. A round is then an argmax scan over two
// flat count arrays. No hashing, no per-round allocation, no re-counting
// of rows whose coverage did not change.
Result solve(const DiagnosisGraph& dg, const SolverOptions& opt,
             const ControlPlaneObs* cp, const UhTagMap* tags) {
  obs::Span solve_span("solve");
  const Demands demands = [&] {
    obs::Span s("build_demands");
    return build_demands(dg, opt, cp);
  }();
  return solve(dg, opt, demands, cp, tags);
}

Result solve(const DiagnosisGraph& dg, const SolverOptions& opt,
             const Demands& demands, const ControlPlaneObs* cp,
             const UhTagMap* tags) {
  SolveInstruments& ins = SolveInstruments::get();
  ins.solves.inc();
  Result result;
  const std::size_t n_edges = dg.edges.size();
  ins.candidates.observe(static_cast<double>(demands.candidates.size()));
  auto& failure_sets = demands.failure_sets;
  auto& reroute_sets = demands.reroute_sets;
  auto& candidates = demands.candidates;
  std::vector<char> in_u = demands.admissible;

  // IGP link-down evidence, resolved to phys-id flags up front (the
  // seeding itself runs after the masks exist).
  std::vector<char> igp_down;
  if (opt.use_control_plane && cp != nullptr && !cp->igp_down_keys.empty()) {
    igp_down.assign(dg.phys_keys.size(), 0);
    bool any = false;
    for (const std::string& k : cp->igp_down_keys) {
      const std::uint32_t id = dg.phys_keys.find(k);
      if (id != KeyInterner::kNone) {
        igp_down[id] = 1;
        any = true;
      }
    }
    if (!any) igp_down.clear();
  }

  // ---- Unexplained-set masks -------------------------------------------------
  util::BitVec unexpl_f(failure_sets.size());
  util::BitVec unexpl_r(reroute_sets.size());
  unexpl_f.fill_all();
  unexpl_r.fill_all();

  std::vector<EdgeId> hypothesis;
  std::vector<RankedLink> ranked;
  // Rank bookkeeping in phys-id space: slot of a key in `ranked`, or -1.
  std::vector<std::int32_t> rank_slot(dg.phys_keys.size(), -1);
  auto record_rank = [&](std::uint32_t phys_id, double score, int round) {
    std::int32_t& slot = rank_slot[phys_id];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(ranked.size());
      ranked.push_back(RankedLink{dg.phys_keys.key(phys_id), score, round});
    } else if (score > ranked[slot].score) {
      ranked[slot].score = score;
    }
  };
  // ---- IGP seeding (ND-bgpigp, §3.3) ----------------------------------------
  // Seeded edges enter the hypothesis immediately; every set containing a
  // seeded edge is explained before the greedy phase starts. The mask
  // clearing is one sequential sweep over the flat set arenas (seeded
  // edges may be inadmissible, so no candidate-restricted structure could
  // answer this).
  if (!igp_down.empty()) {
    std::vector<char> igp_sel(n_edges, 0);
    for (std::uint32_t e = 0; e < n_edges; ++e) {
      if (igp_down[dg.edges[e].phys_id]) {
        record_rank(dg.edges[e].phys_id,
                    std::numeric_limits<double>::infinity(), -1);
        hypothesis.push_back(EdgeId{e});
        in_u[e] = 0;
        igp_sel[e] = 1;
      }
    }
    for (std::uint32_t s = 0; s < failure_sets.size(); ++s) {
      for (std::uint32_t e : failure_sets[s]) {
        if (igp_sel[e]) {
          unexpl_f.clear(s);
          break;
        }
      }
    }
    for (std::uint32_t s = 0; s < reroute_sets.size(); ++s) {
      for (std::uint32_t e : reroute_sets[s]) {
        if (igp_sel[e]) {
          unexpl_r.clear(s);
          break;
        }
      }
    }
  }

  // ---- Candidate groups -------------------------------------------------------
  // The unit of selection is a *link*, not a graph edge: all logical
  // pieces of one directed physical hop (u→v(W1), W1→..., u→v(W2), ...)
  // are one candidate whose coverage is the union of its still-admissible
  // members. Without this, the logical expansion fragments an interdomain
  // link's score across its per-next-AS pieces and intradomain links on
  // the same paths always outscore it. Working logical pieces were never
  // admitted, so the misconfiguration semantics of §3.1 are unchanged.
  // Grouping is a flat first-seen map over dense directed-key ids;
  // iterating candidates in ascending edge-id order reproduces the
  // insertion order the string-keyed grouping had (the tie-break
  // contract). Members live in one CSR arena, counted then placed.
  std::vector<std::uint32_t> own_group(n_edges, KeyInterner::kNone);
  std::vector<std::uint32_t> grp_off, grp_members;
  std::size_t num_groups = 0;
  {
    std::vector<std::uint32_t> group_of_dir(dg.directed_keys.size(),
                                            KeyInterner::kNone);
    std::vector<std::uint32_t> counts;
    for (std::uint32_t e : candidates) {
      std::uint32_t& slot = group_of_dir[dg.edges[e].dir_id];
      if (slot == KeyInterner::kNone) {
        slot = static_cast<std::uint32_t>(counts.size());
        counts.push_back(0);
      }
      own_group[e] = slot;
      ++counts[slot];
    }
    num_groups = counts.size();
    grp_off.assign(num_groups + 1, 0);
    for (std::size_t g = 0; g < num_groups; ++g) {
      grp_off[g + 1] = grp_off[g] + counts[g];
    }
    grp_members.resize(candidates.size());
    std::vector<std::uint32_t> cur(grp_off.begin(), grp_off.end() - 1);
    for (std::uint32_t e : candidates) grp_members[cur[own_group[e]]++] = e;
  }

  // ---- UH clusters (ND-LG, §3.4) ---------------------------------------------
  // linkCluster(l): same endpoint AS tags, different path, same number of
  // failure-set memberships. The cluster relation is folded into per-edge
  // feed lists: aug_feeds[m] = groups whose coverage row m's set
  // memberships augment, i.e. groups with an in-U member of m's cluster on
  // a different path (rule (ii) of §3.4 — the mate contributes coverage
  // without joining the group).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> aug_feeds;
  std::vector<char> has_aug;
  if (opt.uh_clustering) {
    // Failure-set membership count per clusterable UH candidate (the "#f"
    // component of the signature), from one sweep of the flat set arena.
    std::vector<char> uh_cand(n_edges, 0);
    for (std::uint32_t e : candidates) {
      if (dg.edges[e].unidentified) uh_cand[e] = 1;
    }
    std::vector<std::uint32_t> uh_fcnt(n_edges, 0);
    for (std::uint32_t e : failure_sets.items) {
      if (uh_cand[e]) ++uh_fcnt[e];
    }
    std::vector<std::vector<std::uint32_t>> cluster_members;
    std::unordered_map<std::string, std::uint32_t> by_signature;
    for (std::uint32_t e : candidates) {
      if (!uh_cand[e]) continue;
      const auto& ge = dg.g.edge(EdgeId{e});
      const std::string s1 = uh_endpoint_signature(dg.g, ge.src, tags);
      const std::string s2 = uh_endpoint_signature(dg.g, ge.dst, tags);
      if (s1.empty() || s2.empty()) continue;  // unresolvable endpoint
      const std::string sig =
          s1 + "/" + s2 + "/#f" + std::to_string(uh_fcnt[e]);
      auto [it, inserted] = by_signature.emplace(
          sig, static_cast<std::uint32_t>(cluster_members.size()));
      if (inserted) cluster_members.emplace_back();
      cluster_members[it->second].push_back(e);
    }
    has_aug.assign(n_edges, 0);
    for (const auto& mem : cluster_members) {
      if (mem.size() < 2) continue;
      for (std::uint32_t m : mem) {
        std::vector<std::uint32_t> feeds;
        for (std::uint32_t e : mem) {
          if (e == m || !in_u[e]) continue;
          if (dg.edges[e].before_path == dg.edges[m].before_path) continue;
          const std::uint32_t g = own_group[e];
          if (std::find(feeds.begin(), feeds.end(), g) == feeds.end()) {
            feeds.push_back(g);
          }
        }
        if (!feeds.empty()) {
          has_aug[m] = 1;
          aug_feeds.emplace(m, std::move(feeds));
        }
      }
    }
  }

  // ---- Coverage incidence, one by-set sweep ----------------------------------
  // Conceptually each group has one packed coverage row per set family
  // (bit s = "this group explains set s"); the kernel never materializes
  // the rows. Instead a single sequential sweep over the flat set arenas
  // emits each distinct (group, set) incidence bit exactly once — the
  // per-set dedup the rows' test-then-set provided is an epoch stamp in
  // group-id space, which is a few KB and stays in L1 — accumulating the
  // initial scores against the unexplained masks on the way. The bits are
  // kept as two packed pair lists per family, counting-sorted below into
  //   set → groups   (decrement fan-out when a mask bit clears), and
  //   group → member sets (what a selection must clear — member coverage
  //                        only: cluster-augmented bits stay uncleared,
  //                        exactly as the paper's rule (ii) demands).
  ins.groups.observe(static_cast<double>(num_groups));
  ins.bitset_words.observe(static_cast<double>(
      util::bitset_words(failure_sets.size()) +
      util::bitset_words(reroute_sets.size())));
  std::uint64_t cache_hits = 0, cache_misses = 0;
  std::vector<std::uint64_t> cf(num_groups, 0), cr(num_groups, 0);
  std::vector<std::uint64_t> row_pairs_f, row_pairs_r;
  std::vector<std::uint64_t> mem_pairs_f, mem_pairs_r;
  const bool aug = !aug_feeds.empty();
  // IGP-seeded selections are already out of U; folding that into the
  // group map makes "grouped and still live" a single load in the sweep.
  if (!igp_down.empty()) {
    for (std::uint32_t e : demands.candidates) {
      if (!in_u[e]) own_group[e] = KeyInterner::kNone;
    }
  }
  {
    std::vector<std::uint32_t> rstamp(num_groups, 0);
    std::vector<std::uint32_t> mstamp(aug ? num_groups : 0, 0);
    std::uint32_t gen = 0;
    auto sweep = [&](const SetFamily& fam, const util::BitVec& unexpl,
                     std::vector<std::uint64_t>& row_pairs,
                     std::vector<std::uint64_t>& mem_pairs,
                     std::vector<std::uint64_t>& count) {
      for (std::uint32_t s = 0; s < fam.size(); ++s) {
        ++gen;
        const bool still_unexplained = unexpl.test(s);
        for (std::uint32_t e : fam[s]) {
          const std::uint32_t g = own_group[e];
          if (g != KeyInterner::kNone) {
            // Without clustering the member and row incidences coincide,
            // so the single row-pair list is sorted both ways below and
            // the member stamp is skipped entirely.
            if (aug && mstamp[g] != gen) {
              mstamp[g] = gen;
              mem_pairs.push_back((static_cast<std::uint64_t>(g) << 32) | s);
            }
            if (rstamp[g] != gen) {
              rstamp[g] = gen;
              row_pairs.push_back((static_cast<std::uint64_t>(s) << 32) | g);
              if (still_unexplained) ++count[g];
              ++cache_misses;
            } else {
              ++cache_hits;
            }
          }
          if (aug && has_aug[e]) {
            for (std::uint32_t ga : aug_feeds.find(e)->second) {
              if (rstamp[ga] != gen) {
                rstamp[ga] = gen;
                row_pairs.push_back((static_cast<std::uint64_t>(s) << 32) |
                                    ga);
                if (still_unexplained) ++count[ga];
                ++cache_misses;
              } else {
                ++cache_hits;
              }
            }
          }
        }
      }
    };
    sweep(failure_sets, unexpl_f, row_pairs_f, mem_pairs_f, cf);
    sweep(reroute_sets, unexpl_r, row_pairs_r, mem_pairs_r, cr);
  }
  ins.cov_cache_hits.inc(cache_hits);
  ins.cov_cache_misses.inc(cache_misses);

  // ---- Incidence CSRs (counting sorts of the packed pair lists) -------------
  // key_shift 32 buckets by the high half and stores the low half; 0 does
  // the reverse — one pair list yields both orientations.
  auto build_csr = [](const std::vector<std::uint64_t>& pairs,
                      std::size_t n_keys, unsigned key_shift,
                      std::vector<std::uint32_t>& off,
                      std::vector<std::uint32_t>& val) {
    off.assign(n_keys + 1, 0);
    for (std::uint64_t p : pairs) {
      ++off[static_cast<std::uint32_t>(p >> key_shift) + 1];
    }
    for (std::size_t k = 0; k < n_keys; ++k) off[k + 1] += off[k];
    val.resize(pairs.size());
    std::vector<std::uint32_t> cur(off.begin(), off.end() - 1);
    for (std::uint64_t p : pairs) {
      val[cur[static_cast<std::uint32_t>(p >> key_shift)]++] =
          static_cast<std::uint32_t>(p >> (32 - key_shift));
    }
  };
  std::vector<std::uint32_t> fsg_off, fsg, rsg_off, rsg;
  std::vector<std::uint32_t> gms_f_off, gms_f, gms_r_off, gms_r;
  build_csr(row_pairs_f, failure_sets.size(), 32, fsg_off, fsg);
  build_csr(row_pairs_r, reroute_sets.size(), 32, rsg_off, rsg);
  if (aug) {
    build_csr(mem_pairs_f, num_groups, 32, gms_f_off, gms_f);
    build_csr(mem_pairs_r, num_groups, 32, gms_r_off, gms_r);
  } else {
    build_csr(row_pairs_f, num_groups, 0, gms_f_off, gms_f);
    build_csr(row_pairs_r, num_groups, 0, gms_r_off, gms_r);
  }
  row_pairs_f = {};
  row_pairs_r = {};
  mem_pairs_f = {};
  mem_pairs_r = {};

  // The invariant the greedy loop maintains from here on is
  // cf[g] == |row_f(g) ∩ unexpl_f| (resp. cr/unexpl_r): whenever a mask
  // bit s is cleared, the count of every group whose row covers s is
  // decremented via the set→groups CSR — so each round reads two integers
  // per group instead of re-counting coverage.
  std::vector<char> group_active(num_groups, 1);

  // Greedy-phase selection: retire the group, admit its still-live
  // members, clear the members' sets from the masks and propagate each
  // column removal into the covering groups' counts.
  auto select_group_dec = [&](std::uint32_t g, double best, int round) {
    group_active[g] = 0;
    for (std::uint32_t k = grp_off[g]; k < grp_off[g + 1]; ++k) {
      const std::uint32_t e = grp_members[k];
      if (!in_u[e]) continue;
      record_rank(dg.edges[e].phys_id, best, round);
      hypothesis.push_back(EdgeId{e});
      in_u[e] = 0;
    }
    for (std::uint32_t k = gms_f_off[g]; k < gms_f_off[g + 1]; ++k) {
      const std::uint32_t s = gms_f[k];
      if (!unexpl_f.test(s)) continue;
      unexpl_f.clear(s);
      for (std::uint32_t j = fsg_off[s]; j < fsg_off[s + 1]; ++j) {
        --cf[fsg[j]];
      }
    }
    for (std::uint32_t k = gms_r_off[g]; k < gms_r_off[g + 1]; ++k) {
      const std::uint32_t s = gms_r[k];
      if (!unexpl_r.test(s)) continue;
      unexpl_r.clear(s);
      for (std::uint32_t j = rsg_off[s]; j < rsg_off[s + 1]; ++j) {
        --cr[rsg[j]];
      }
    }
  };

  // ---- Greedy max-score loop (Algorithm 1) -----------------------------------
  // The argmax sweep runs over a live list that is compacted in place:
  // a group whose score hits zero can never score again (counts are
  // monotone non-increasing) and a selected group is retired via
  // group_active, so both drop out permanently and late rounds scan a
  // shrinking suffix of the original group set. Compaction is stable, so
  // the ascending-id tie-break order is untouched.
  std::vector<std::uint32_t> live(num_groups);
  for (std::uint32_t g = 0; g < num_groups; ++g) live[g] = g;
  std::optional<obs::Span> greedy_span;
  greedy_span.emplace("greedy");
  int round = 0;
  std::vector<std::uint32_t> max_set;
  for (;; ++round) {
    double best = 0.0;
    max_set.clear();
    std::size_t w = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const std::uint32_t g = live[i];
      if (!group_active[g]) continue;
      const double score =
          opt.weight_failures * static_cast<double>(cf[g]) +
          opt.weight_reroutes * static_cast<double>(cr[g]);
      if (score <= 0.0) continue;
      live[w++] = g;
      if (score > best) {
        best = score;
        max_set.assign(1, g);
      } else if (score == best) {
        max_set.push_back(g);
      }
    }
    live.resize(w);
    if (best <= 0.0) break;
    // The paper adds the whole set of maximum-score links.
    for (std::uint32_t g : max_set) select_group_dec(g, best, round);
  }
  greedy_span.reset();
  ins.greedy_rounds.inc(static_cast<std::uint64_t>(round));

  // ---- Results ---------------------------------------------------------------
  result.hypothesis_edges = hypothesis;
  for (EdgeId e : hypothesis) {
    result.links.insert(dg.info(e).phys_key);
    const auto& ge = dg.g.edge(e);
    bool unknown = false;
    for (NodeId n : {ge.src, ge.dst}) {
      const auto& node = dg.g.node(n);
      if (node.kind == NodeKind::kUnidentified) {
        const std::vector<int>* t = tags != nullptr ? tags->find(n) : nullptr;
        if (t != nullptr) {
          result.ases.insert(t->begin(), t->end());
        } else {
          unknown = true;
        }
      } else if (node.asn >= 0) {
        result.ases.insert(node.asn);
      }
    }
    if (unknown) ++result.unknown_as_links;
  }
  result.unexplained_failure_sets = unexpl_f.count();
  ins.hypothesis.observe(static_cast<double>(hypothesis.size()));
  ins.unexplained.observe(static_cast<double>(result.unexplained_failure_sets));
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedLink& a, const RankedLink& b) {
                     return a.score > b.score;
                   });
  result.ranked = std::move(ranked);
  return result;
}

}  // namespace netd::core
