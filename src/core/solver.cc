#include "core/solver.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <optional>
#include <unordered_set>

#include "obs/registry.h"
#include "obs/span.h"

namespace netd::core {

using graph::EdgeId;
using graph::NodeId;
using graph::NodeKind;

namespace {

/// Solver instruments, resolved once per process (the registry lookup
/// takes a mutex; the instruments themselves are lock-free / sharded).
struct SolveInstruments {
  obs::Counter& solves = obs::Registry::global().counter(
      "netd_solve_total", "Hitting-set solver invocations");
  obs::Counter& greedy_rounds = obs::Registry::global().counter(
      "netd_solve_greedy_rounds_total",
      "Greedy max-score selection rounds across all solves");
  obs::Counter& cov_cache_hits = obs::Registry::global().counter(
      "netd_solve_cov_cache_hits_total",
      "Coverage-cache epoch dedup hits (set already counted this group)");
  obs::Counter& cov_cache_misses = obs::Registry::global().counter(
      "netd_solve_cov_cache_misses_total",
      "Coverage-cache entries built (distinct sets per group)");
  obs::Histogram& candidates = obs::Registry::global().histogram(
      "netd_solve_candidates", "Admissible candidate edges per solve");
  obs::Histogram& groups = obs::Registry::global().histogram(
      "netd_solve_groups", "Candidate link groups per solve");
  obs::Histogram& hypothesis = obs::Registry::global().histogram(
      "netd_solve_hypothesis_edges", "Hypothesis edges selected per solve");
  obs::Histogram& unexplained = obs::Registry::global().histogram(
      "netd_solve_unexplained_failure_sets",
      "Failure sets left unexplained per solve");

  static SolveInstruments& get() {
    static SolveInstruments i;
    return i;
  }
};

/// Signature of a UH-edge endpoint for cluster rule (i): identified
/// endpoints must be the same node, unidentified ones must carry equal,
/// known AS tags. Returns empty string when the endpoint is unresolvable
/// (such edges never cluster).
std::string endpoint_signature(const graph::Graph& g, NodeId n,
                               const UhTagMap* tags) {
  const auto& node = g.node(n);
  if (node.kind != NodeKind::kUnidentified) return "n:" + node.label;
  if (tags == nullptr) return {};
  const std::vector<int>* t = tags->find(n);
  if (t == nullptr) return {};
  std::string sig = "t:";
  for (int a : *t) sig += std::to_string(a) + ",";
  return sig;
}

}  // namespace

Demands build_demands(const DiagnosisGraph& dg, const SolverOptions& opt,
                      const ControlPlaneObs* cp) {
  Demands out;
  const std::size_t n_edges = dg.edges.size();

  // ---- Working-path constraints W -----------------------------------------
  // Tomo only knows the T− paths; the reroute-aware variants use the paths
  // actually in place at T+.
  std::vector<char> working(n_edges, 0);
  for (const PathObs& p : dg.paths) {
    if (!p.ok_after) continue;
    const auto& edges = opt.use_reroutes ? p.after : p.before;
    for (EdgeId e : edges) working[e.value()] = 1;
  }

  // ---- Failure sets L (one per broken path), withdrawal-pruned ------------
  auto& failure_sets = out.failure_sets;
  for (const PathObs& p : dg.paths) {
    if (p.ok_after) continue;
    std::vector<char> pruned(p.before.size(), 0);
    if (opt.use_control_plane && cp != nullptr) {
      // A withdrawal for this destination's prefix received over link l
      // proves the failure is beyond l: drop everything up to and
      // including l (paper §3.3 example). Exception: the *logical* edges
      // of l itself stay — receiving the withdrawal over l shows l is
      // physically alive, but the withdrawal may itself be the symptom of
      // a misconfigured export filter at l's far end.
      for (const auto& w : cp->withdrawals) {
        if (w.dest_asn != p.dest_asn) continue;
        std::size_t last = p.before.size();
        for (std::size_t i = 0; i < p.before.size(); ++i) {
          if (dg.info(p.before[i]).directed_key == w.directed_key) last = i;
        }
        if (last == p.before.size()) continue;  // withdrawal link not on path
        for (std::size_t i = 0; i <= last; ++i) {
          const EdgeInfo& info = dg.info(p.before[i]);
          if (info.logical && info.directed_key == w.directed_key) continue;
          pruned[i] = 1;
        }
      }
      // Degenerate guard: never prune a failure set into emptiness.
      if (std::all_of(pruned.begin(), pruned.end(),
                      [](char c) { return c != 0; })) {
        std::fill(pruned.begin(), pruned.end(), 0);
      }
    }
    std::vector<std::uint32_t> fset;
    std::unordered_set<std::uint32_t> seen;
    for (std::size_t i = 0; i < p.before.size(); ++i) {
      if (pruned[i]) continue;
      if (seen.insert(p.before[i].value()).second) {
        fset.push_back(p.before[i].value());
      }
    }
    failure_sets.push_back(std::move(fset));
  }

  // ---- Reroute sets R (ND-edge, §3.2) --------------------------------------
  auto& reroute_sets = out.reroute_sets;
  if (opt.use_reroutes) {
    for (const PathObs& p : dg.paths) {
      if (!p.ok_after || !p.rerouted) continue;
      std::unordered_set<std::uint32_t> after(p.after.size() * 2);
      for (EdgeId e : p.after) after.insert(e.value());
      std::vector<std::uint32_t> rset;
      std::unordered_set<std::uint32_t> seen;
      for (EdgeId e : p.before) {
        if (after.count(e.value()) == 0 && seen.insert(e.value()).second) {
          rset.push_back(e.value());
        }
      }
      if (!rset.empty()) reroute_sets.push_back(std::move(rset));
    }
  }

  // ---- Candidate set U ------------------------------------------------------
  const bool keep_uh = opt.uh_clustering || !opt.ignore_unidentified;
  auto is_admissible = [&](std::uint32_t e) {
    if (working[e]) return false;
    if (dg.edges[e].unidentified && !keep_uh) return false;
    return true;
  };
  out.admissible.assign(n_edges, 0);
  auto& candidates = out.candidates;
  auto add_candidate = [&](std::uint32_t e) {
    if (!out.admissible[e] && is_admissible(e)) {
      out.admissible[e] = 1;
      candidates.push_back(e);
    }
  };
  for (const auto& fs : failure_sets) {
    for (std::uint32_t e : fs) add_candidate(e);
  }
  // The links that explain rerouted-but-working paths must also be
  // considered: a reroutable failure leaves no failed path behind it.
  for (const auto& rs : reroute_sets) {
    for (std::uint32_t e : rs) add_candidate(e);
  }
  std::sort(candidates.begin(), candidates.end());
  return out;
}

Result solve(const DiagnosisGraph& dg, const SolverOptions& opt,
             const ControlPlaneObs* cp, const UhTagMap* tags) {
  obs::Span solve_span("solve");
  SolveInstruments& ins = SolveInstruments::get();
  ins.solves.inc();
  Result result;
  const std::size_t n_edges = dg.edges.size();
  Demands demands = [&] {
    obs::Span s("build_demands");
    return build_demands(dg, opt, cp);
  }();
  ins.candidates.observe(static_cast<double>(demands.candidates.size()));
  auto& failure_sets = demands.failure_sets;
  auto& reroute_sets = demands.reroute_sets;
  auto& candidates = demands.candidates;
  std::vector<char> in_u = demands.admissible;

  // ---- Inverted indices -----------------------------------------------------
  std::vector<std::vector<std::uint32_t>> f_of_edge(n_edges), r_of_edge(n_edges);
  for (std::uint32_t s = 0; s < failure_sets.size(); ++s) {
    for (std::uint32_t e : failure_sets[s]) f_of_edge[e].push_back(s);
  }
  for (std::uint32_t s = 0; s < reroute_sets.size(); ++s) {
    for (std::uint32_t e : reroute_sets[s]) r_of_edge[e].push_back(s);
  }
  std::vector<char> f_explained(failure_sets.size(), 0);
  std::vector<char> r_explained(reroute_sets.size(), 0);

  std::vector<EdgeId> hypothesis;
  std::vector<RankedLink> ranked;
  std::unordered_map<std::string, std::size_t> rank_of_key;
  auto record_rank = [&](const std::string& key, double score, int round) {
    auto [it, inserted] = rank_of_key.emplace(key, ranked.size());
    if (inserted) {
      ranked.push_back(RankedLink{key, score, round});
    } else if (score > ranked[it->second].score) {
      ranked[it->second].score = score;
    }
  };
  auto select_edge = [&](std::uint32_t e) {
    hypothesis.push_back(EdgeId{e});
    in_u[e] = 0;
    for (std::uint32_t s : f_of_edge[e]) f_explained[s] = 1;
    for (std::uint32_t s : r_of_edge[e]) r_explained[s] = 1;
  };

  // ---- IGP seeding (ND-bgpigp, §3.3) ----------------------------------------
  if (opt.use_control_plane && cp != nullptr && !cp->igp_down_keys.empty()) {
    std::unordered_set<std::string> igp(cp->igp_down_keys.begin(),
                                        cp->igp_down_keys.end());
    for (std::uint32_t e = 0; e < n_edges; ++e) {
      if (igp.count(dg.edges[e].phys_key) != 0) {
        record_rank(dg.edges[e].phys_key,
                    std::numeric_limits<double>::infinity(), -1);
        select_edge(e);
      }
    }
  }

  // ---- UH clusters (ND-LG, §3.4) ---------------------------------------------
  // linkCluster(l): same endpoint AS tags, different path, same number of
  // failure-set memberships. Stored as cluster id -> members; edges with
  // unresolvable endpoints stay unclustered.
  std::vector<std::vector<std::uint32_t>> cluster_members;
  std::vector<int> cluster_of(n_edges, -1);
  if (opt.uh_clustering) {
    std::unordered_map<std::string, std::uint32_t> by_signature;
    for (std::uint32_t e : candidates) {
      if (!dg.edges[e].unidentified) continue;
      const auto& ge = dg.g.edge(EdgeId{e});
      const std::string s1 = endpoint_signature(dg.g, ge.src, tags);
      const std::string s2 = endpoint_signature(dg.g, ge.dst, tags);
      if (s1.empty() || s2.empty()) continue;  // unresolvable endpoint
      const std::string sig =
          s1 + "/" + s2 + "/#f" + std::to_string(f_of_edge[e].size());
      auto [it, inserted] = by_signature.emplace(
          sig, static_cast<std::uint32_t>(cluster_members.size()));
      if (inserted) cluster_members.emplace_back();
      cluster_members[it->second].push_back(e);
      cluster_of[e] = static_cast<int>(it->second);
    }
  }
  // ---- Candidate groups -------------------------------------------------------
  // The unit of selection is a *link*, not a graph edge: all logical
  // pieces of one directed physical hop (u→v(W1), W1→..., u→v(W2), ...)
  // are one candidate whose coverage is the union of its still-admissible
  // members. Without this, the logical expansion fragments an interdomain
  // link's score across its per-next-AS pieces and intradomain links on
  // the same paths always outscore it. Working logical pieces were never
  // admitted, so the misconfiguration semantics of §3.1 are unchanged.
  std::vector<std::vector<std::uint32_t>> groups;
  {
    std::unordered_map<std::string, std::uint32_t> by_key;
    for (std::uint32_t e : candidates) {
      auto [it, inserted] = by_key.emplace(
          dg.edges[e].directed_key, static_cast<std::uint32_t>(groups.size()));
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(e);
    }
  }
  // ---- Cached group coverage --------------------------------------------------
  // Scoring used to rebuild an unordered_set per (group, round) to count
  // the distinct unexplained sets a group can explain — O(groups × members
  // × set lists) of hashing and allocation per round. The member set a
  // group draws coverage from is fixed for the whole loop (selection only
  // ever removes whole groups, and cluster-mate contributions never check
  // membership), so each group's distinct (failure, reroute) set lists are
  // computed once with epoch-stamped scratch arrays, and live counts of
  // the still-unexplained ones are maintained incrementally: explaining a
  // set decrements exactly the groups that cover it.
  const std::size_t num_groups = groups.size();
  ins.groups.observe(static_cast<double>(num_groups));
  std::vector<std::vector<std::uint32_t>> cov_f(num_groups), cov_r(num_groups);
  std::uint64_t cache_hits = 0, cache_misses = 0;
  {
    std::vector<std::uint32_t> f_seen(failure_sets.size(), 0);
    std::vector<std::uint32_t> r_seen(reroute_sets.size(), 0);
    std::uint32_t epoch = 0;
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      ++epoch;
      auto add = [epoch, &cache_hits, &cache_misses](
                     const std::vector<std::uint32_t>& sets,
                     std::vector<std::uint32_t>& seen,
                     std::vector<std::uint32_t>& cov) {
        for (std::uint32_t s : sets) {
          if (seen[s] != epoch) {
            seen[s] = epoch;
            cov.push_back(s);
            ++cache_misses;
          } else {
            ++cache_hits;
          }
        }
      };
      for (std::uint32_t e : groups[g]) {
        if (!in_u[e]) continue;  // IGP-seeded selections are already out
        add(f_of_edge[e], f_seen, cov_f[g]);
        add(r_of_edge[e], r_seen, cov_r[g]);
        // Cluster augmentation (singleton UH groups only in practice).
        if (cluster_of[e] >= 0) {
          for (std::uint32_t m : cluster_members[cluster_of[e]]) {
            if (m != e && dg.edges[m].before_path != dg.edges[e].before_path) {
              add(f_of_edge[m], f_seen, cov_f[g]);
              add(r_of_edge[m], r_seen, cov_r[g]);
            }
          }
        }
      }
    }
  }
  std::vector<std::vector<std::uint32_t>> f_groups(failure_sets.size());
  std::vector<std::vector<std::uint32_t>> r_groups(reroute_sets.size());
  std::vector<std::size_t> cnt_f(num_groups, 0), cnt_r(num_groups, 0);
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    for (std::uint32_t s : cov_f[g]) {
      f_groups[s].push_back(g);
      cnt_f[g] += !f_explained[s];
    }
    for (std::uint32_t s : cov_r[g]) {
      r_groups[s].push_back(g);
      cnt_r[g] += !r_explained[s];
    }
  }
  // A selected group keeps its cluster-mates' sets unexplained, so it must
  // be retired explicitly — exactly what skipping its no-longer-in-U
  // members achieved before.
  std::vector<char> group_active(num_groups, 1);
  auto explain_sets = [&](const std::vector<std::uint32_t>& sets,
                          std::vector<char>& explained,
                          const std::vector<std::vector<std::uint32_t>>& of_set,
                          std::vector<std::size_t>& cnt) {
    for (std::uint32_t s : sets) {
      if (explained[s]) continue;
      explained[s] = 1;
      for (std::uint32_t g : of_set[s]) {
        if (group_active[g]) --cnt[g];
      }
    }
  };

  ins.cov_cache_hits.inc(cache_hits);
  ins.cov_cache_misses.inc(cache_misses);

  // ---- Greedy max-score loop (Algorithm 1) -----------------------------------
  std::optional<obs::Span> greedy_span;
  greedy_span.emplace("greedy");
  int round = 0;
  for (;; ++round) {
    double best = 0.0;
    std::vector<std::uint32_t> max_set;
    for (std::uint32_t g = 0; g < num_groups; ++g) {
      if (!group_active[g]) continue;
      const double score = opt.weight_failures * static_cast<double>(cnt_f[g]) +
                           opt.weight_reroutes * static_cast<double>(cnt_r[g]);
      if (score > best) {
        best = score;
        max_set.assign(1, g);
      } else if (score == best && score > 0.0) {
        max_set.push_back(g);
      }
    }
    if (best <= 0.0) break;
    // The paper adds the whole set of maximum-score links.
    for (std::uint32_t g : max_set) {
      group_active[g] = 0;
      for (std::uint32_t e : groups[g]) {
        if (in_u[e]) {
          record_rank(dg.edges[e].phys_key, best, round);
          hypothesis.push_back(EdgeId{e});
          in_u[e] = 0;
          explain_sets(f_of_edge[e], f_explained, f_groups, cnt_f);
          explain_sets(r_of_edge[e], r_explained, r_groups, cnt_r);
        }
      }
    }
  }
  greedy_span.reset();
  ins.greedy_rounds.inc(static_cast<std::uint64_t>(round));

  // ---- Results ---------------------------------------------------------------
  result.hypothesis_edges = hypothesis;
  for (EdgeId e : hypothesis) {
    result.links.insert(dg.info(e).phys_key);
    const auto& ge = dg.g.edge(e);
    bool unknown = false;
    for (NodeId n : {ge.src, ge.dst}) {
      const auto& node = dg.g.node(n);
      if (node.kind == NodeKind::kUnidentified) {
        const std::vector<int>* t = tags != nullptr ? tags->find(n) : nullptr;
        if (t != nullptr) {
          result.ases.insert(t->begin(), t->end());
        } else {
          unknown = true;
        }
      } else if (node.asn >= 0) {
        result.ases.insert(node.asn);
      }
    }
    if (unknown) ++result.unknown_as_links;
  }
  for (std::uint32_t s = 0; s < failure_sets.size(); ++s) {
    if (!f_explained[s]) ++result.unexplained_failure_sets;
  }
  ins.hypothesis.observe(static_cast<double>(hypothesis.size()));
  ins.unexplained.observe(static_cast<double>(result.unexplained_failure_sets));
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedLink& a, const RankedLink& b) {
                     return a.score > b.score;
                   });
  result.ranked = std::move(ranked);
  return result;
}

}  // namespace netd::core
