#include "core/diagnosability.h"

#include <set>
#include <vector>

namespace netd::core {

double diagnosability(const DiagnosisGraph& dg) {
  // hitting set h(l) = indices of the T− paths traversing edge l.
  std::vector<std::vector<std::uint32_t>> hit(dg.edges.size());
  for (std::uint32_t p = 0; p < dg.paths.size(); ++p) {
    std::set<std::uint32_t> seen;
    for (graph::EdgeId e : dg.paths[p].before) {
      if (seen.insert(e.value()).second) hit[e.value()].push_back(p);
    }
  }
  std::set<std::vector<std::uint32_t>> distinct;
  std::size_t probed = 0;
  for (const auto& h : hit) {
    if (h.empty()) continue;  // edge only on T+ paths: not part of T− G
    ++probed;
    distinct.insert(h);
  }
  if (probed == 0) return 0.0;
  return static_cast<double>(distinct.size()) / static_cast<double>(probed);
}

}  // namespace netd::core
