// Human-readable diagnosis reports for NOC consumption.
//
// Renders a Result against its DiagnosisGraph: event summary (failed /
// rerouted pairs), each hypothesis link with the evidence behind it
// (failure sets hit, reroute sets hit, AS attribution, logical or
// physical), and any failure sets nothing could explain.
#pragma once

#include <set>
#include <string>

#include "core/diagnosis_graph.h"
#include "core/solver.h"

namespace netd::core {

/// Renders a multi-line report. When `truth` is provided (simulation /
/// post-mortem), hypothesis links that actually failed are marked.
[[nodiscard]] std::string render_report(
    const DiagnosisGraph& dg, const Result& result,
    const std::set<std::string>* truth = nullptr);

}  // namespace netd::core
