// The durable sensor agent: measure locally, spool to disk, ship batches.
//
// An agent is one member of a distributed sensor fleet. It renders its
// own deterministic measurement world (topo::generate + place_sensors +
// probe::SyntheticProber, all seeded), appends every observation round to
// a crash-safe Spool *before* any network activity, then drains the spool
// to the diagnosis service as observe_batch frames through the resilient
// svc::Client. The spool-first order is the durability contract: a
// SIGKILL at any instant loses nothing that was measured (at most the
// round being framed, which the next incarnation re-measures — the world
// is seeded, so the re-measurement is byte-identical), and redelivery of
// already-shipped records is absorbed by the server's per-(session, src)
// ack watermark, so the fleet converges on exactly-once ingest without
// any client-side bookkeeping beyond "ship everything above the ack".
//
// Server amnesia (restart, failover to an empty replica) is detected
// through the structured kErrUnknownSession / kErrNoBaseline error codes:
// the agent re-hellos, re-installs the baseline (which resets the
// watermark epoch server-side) and re-ships the spool from the start.
// With the default retain-acked spool this reconstructs the session
// byte-identically; after budget shedding the gap is visible in the
// DropStats counters and the server's round count — loud, never silent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "agent/spool.h"
#include "svc/client.h"
#include "svc/protocol.h"

namespace netd::agent {

struct AgentConfig {
  /// The agent's identity: the `src` of its observe_batch frames and the
  /// key of its ack watermark on the server.
  std::string name = "agent";
  /// Server endpoint string (unix:PATH | HOST:PORT | :PORT).
  std::string endpoint;
  std::string session = "fleet";
  std::string spool_dir;

  // Diagnosis session configuration (svc::SessionConfig).
  std::size_t alarm_threshold = 2;
  std::string algo = "nd-bgpigp";
  std::string granularity = "per-neighbor";

  // The seeded measurement world. Same seeds => byte-identical rounds,
  // which is what lets the chaos tests compare a tortured run against a
  // fault-free reference.
  std::uint64_t topo_seed = 1;
  std::size_t ases = 165;
  std::size_t tier2 = 22;
  std::size_t stubs = 200;
  std::size_t sensors = 10;
  std::uint64_t placement_seed = 7;
  std::size_t rounds = 10;
  /// Round at which a seeded link failure is injected; 0 = healthy run.
  std::size_t fail_round = 0;
  std::uint64_t fail_seed = 99;

  // Shipping.
  std::size_t batch_max_items = 8;
  /// Consecutive transport-level ship failures (each already retried
  /// inside svc::Client) before run() gives up with kExitUnreachable.
  std::size_t ship_max_failures = 8;
  svc::Client::Options client;

  // Spool knobs (see Spool::Options).
  std::uint64_t spool_segment_bytes = 4u << 20;
  std::uint64_t spool_budget_bytes = 0;
  bool spool_fsync_each = false;
  bool retain_acked = true;

  /// Measure + spool only; skip shipping (used to pre-seed spools).
  bool generate_only = false;
};

class Agent {
 public:
  /// run() exit codes, also the process exit codes of netdiag-agent.
  static constexpr int kExitOk = 0;           ///< all rounds acked
  static constexpr int kExitError = 1;        ///< config/spool/protocol error
  static constexpr int kExitUnreachable = 3;  ///< spooled, but server gone

  struct Summary {
    std::uint64_t spooled = 0;     ///< records in the spool after generate
    std::uint64_t generated = 0;   ///< rounds measured by THIS incarnation
    std::uint64_t acked = 0;       ///< server watermark when we finished
    std::size_t batches = 0;       ///< observe_batch frames that succeeded
    std::uint64_t applied = 0;     ///< items the server newly applied
    std::uint64_t deduped = 0;     ///< items the server recognized as dups
    std::size_t rehellos = 0;      ///< server-amnesia recoveries
    std::size_t round = 0;         ///< server round counter at the end
    bool alarmed = false;
    std::optional<std::string> diagnosis;  ///< last diagnosis, verbatim
    Spool::RecoveryStats recovery;
    Spool::DropStats dropped;
  };

  explicit Agent(AgentConfig cfg) : cfg_(std::move(cfg)) {}

  /// Full agent lifecycle: open/recover the spool, measure the rounds the
  /// spool does not yet hold, drain everything to the server. Returns one
  /// of the kExit codes; `error` explains non-zero returns.
  [[nodiscard]] int run(std::string* error);

  [[nodiscard]] const Summary& summary() const { return summary_; }

 private:
  /// Measures rounds last_seq+1 .. cfg_.rounds into the spool (replaying
  /// the seeded failure schedule up to each round).
  [[nodiscard]] bool generate(Spool& spool, std::string* error);
  /// Drains the spool until ack == last_seq. False = transport gave up
  /// (kExitUnreachable); protocol errors set `fatal`.
  [[nodiscard]] bool ship(Spool& spool, std::string* error, bool* fatal);
  [[nodiscard]] std::optional<probe::Mesh> load_baseline(
      std::string* error) const;

  AgentConfig cfg_;
  Summary summary_;
};

}  // namespace netd::agent
