#include "agent/spool.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/atomic_file.h"

namespace netd::agent {

namespace rlog = util::record_log;

namespace {

constexpr const char* kManifest = "MANIFEST";
constexpr const char* kSegSuffix = ".ndspool";

static_assert(Spool::kMaxRecordBytes == rlog::kMaxRecordBytes,
              "spool record cap must match the shared framing's");

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
  return false;
}

using Scan = rlog::Scan;

Scan scan_segment(std::string_view bytes) { return rlog::scan(bytes); }

}  // namespace

std::unique_ptr<Spool> Spool::open(Options opts, std::string* error,
                                   RecoveryStats* stats) {
  std::unique_ptr<Spool> s(new Spool(std::move(opts)));
  RecoveryStats local;
  if (!s->recover(error, stats != nullptr ? stats : &local)) return nullptr;
  return s;
}

Spool::~Spool() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string Spool::segment_path(std::uint64_t first_seq) const {
  char name[64];
  std::snprintf(name, sizeof(name), "seg-%020llu%s",
                static_cast<unsigned long long>(first_seq), kSegSuffix);
  return opts_.dir + "/" + name;
}

bool Spool::recover(std::string* error, RecoveryStats* stats) {
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return fail(error, "mkdir " + opts_.dir);
  }
  const std::string manifest = opts_.dir + "/" + kManifest;
  // A writer that died between temp write and rename leaves a stale temp
  // beside MANIFEST; the same recovery path every atomic_write_file
  // consumer uses cleans it up.
  stats->stale_temps = util::remove_stale_temps(manifest);
  if (const auto doc = util::read_file(manifest, nullptr); doc.has_value()) {
    // MANIFEST is tiny, machine-written JSON: {"shipped": N}. Parse it
    // leniently by hand — an unreadable manifest only loses the advisory
    // watermark (segments are the truth), never data.
    const auto pos = doc->find("\"shipped\"");
    if (pos != std::string::npos) {
      const auto colon = doc->find(':', pos);
      if (colon != std::string::npos) {
        shipped_ = std::strtoull(doc->c_str() + colon + 1, nullptr, 10);
      }
    }
  }
  stats->shipped = shipped_;

  std::vector<std::string> names;
  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) return fail(error, "opendir " + opts_.dir);
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > std::strlen(kSegSuffix) &&
        name.rfind(kSegSuffix) == name.size() - std::strlen(kSegSuffix) &&
        name.rfind("seg-", 0) == 0) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  // Zero-padded first-seq in the name makes lexicographic order = append
  // order.
  std::sort(names.begin(), names.end());

  for (std::size_t i = 0; i < names.size(); ++i) {
    const bool is_last = i + 1 == names.size();
    const std::string path = opts_.dir + "/" + names[i];
    const auto bytes = util::read_file(path, error);
    if (!bytes.has_value()) return false;
    const Scan scan = scan_segment(*bytes);
    const bool torn_ok =
        scan.verdict == Scan::Verdict::kTornTail && is_last;
    if (scan.verdict == Scan::Verdict::kCorrupt ||
        (scan.verdict == Scan::Verdict::kTornTail && !is_last)) {
      // Corruption the append path cannot produce: refuse the whole
      // segment, keep the bytes for forensics, count the loss loudly.
      if (::rename(path.c_str(), (path + ".quarantined").c_str()) != 0) {
        return fail(error, "quarantine " + path);
      }
      ++stats->quarantined;
      stats->quarantined_records += scan.records;
      continue;
    }
    if (torn_ok && scan.good_bytes < bytes->size()) {
      // The writer died mid-append; cut the segment back to the last
      // complete record and resume after it.
      if (!util::truncate_file(path, scan.good_bytes, error)) return false;
      ++stats->torn_tails;
      stats->torn_bytes += bytes->size() - scan.good_bytes;
    }
    if (scan.records == 0) {
      // Empty-segment compaction: nothing to keep (a rotation that never
      // received a record, or a tail truncated to zero).
      if (::unlink(path.c_str()) != 0) return fail(error, "unlink " + path);
      ++stats->empty_removed;
      continue;
    }
    if (!opts_.retain_acked && scan.last_seq <= shipped_ && !is_last) {
      // Resume the compaction a crash interrupted: fully-shipped history
      // the caller does not want to retain.
      if (::unlink(path.c_str()) != 0) return fail(error, "unlink " + path);
      ++stats->compacted;
      continue;
    }
    segments_.push_back(Segment{path, scan.first_seq, scan.last_seq,
                                scan.good_bytes, scan.records});
    next_seq_ = std::max(next_seq_, scan.last_seq + 1);
  }
  // Shedding may have dropped newer segments' predecessors but never the
  // newest record itself; the manifest floor covers the one case where
  // every segment is gone.
  next_seq_ = std::max(next_seq_, shipped_ + 1);
  stats->segments = segments_.size();
  for (const auto& seg : segments_) stats->records += seg.records;
  if (!segments_.empty()) {
    if (!open_active(false, error)) return false;
  }
  return true;
}

bool Spool::open_active(bool create, std::string* error) {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  if (segments_.empty()) {
    if (!create) return true;
    segments_.push_back(Segment{segment_path(next_seq_), next_seq_, 0, 0, 0});
  }
  const int flags = O_WRONLY | O_APPEND | (create ? O_CREAT : 0);
  active_fd_ = ::open(segments_.back().path.c_str(), flags, 0644);
  if (active_fd_ < 0) return fail(error, "open " + segments_.back().path);
  return true;
}

bool Spool::rotate(std::string* error) {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  segments_.push_back(Segment{segment_path(next_seq_), next_seq_, 0, 0, 0});
  return open_active(true, error);
}

std::uint64_t Spool::append(std::string_view payload, std::string* error) {
  if (payload.size() > kMaxRecordBytes) {
    if (error != nullptr) *error = "record exceeds kMaxRecordBytes";
    return 0;
  }
  if (segments_.empty() || active_fd_ < 0) {
    if (!open_active(true, error)) return 0;
  } else if (segments_.back().bytes >= opts_.max_segment_bytes) {
    if (!rotate(error)) return 0;
  }
  const std::uint64_t seq = next_seq_;
  const std::string frame = rlog::encode_record(seq, payload);
  if (!rlog::write_all_fd(active_fd_, frame.data(), frame.size())) {
    // A partial write is exactly what recovery's torn-tail path repairs;
    // report the failure and leave the tail for the next open().
    fail(error, "write " + segments_.back().path);
    return 0;
  }
  if (opts_.fsync_each && ::fsync(active_fd_) != 0) {
    fail(error, "fsync " + segments_.back().path);
    return 0;
  }
  Segment& seg = segments_.back();
  seg.last_seq = seq;
  seg.bytes += frame.size();
  ++seg.records;
  ++next_seq_;
  shed_over_budget();
  return seq;
}

void Spool::shed_over_budget() {
  if (opts_.max_spool_bytes == 0) return;
  // Whole-segment, oldest-first shedding; the active segment is never
  // shed out from under the writer. The loss is visible twice over: the
  // DropStats counters and the seq gap the server's round count exposes.
  while (bytes() > opts_.max_spool_bytes && segments_.size() > 1) {
    const Segment seg = segments_.front();
    if (::unlink(seg.path.c_str()) != 0) break;
    ++dropped_.segments;
    dropped_.records += seg.records;
    dropped_.bytes += seg.bytes;
    segments_.erase(segments_.begin());
  }
}

std::uint64_t Spool::bytes() const {
  std::uint64_t total = 0;
  for (const auto& seg : segments_) total += seg.bytes;
  return total;
}

bool Spool::write_manifest(std::string* error) const {
  return util::atomic_write_file(
      opts_.dir + "/" + kManifest,
      "{\"shipped\": " + std::to_string(shipped_) + "}\n", error);
}

bool Spool::mark_shipped(std::uint64_t upto, std::string* error) {
  if (upto <= shipped_) return true;
  shipped_ = upto;
  if (!write_manifest(error)) return false;
  if (!opts_.retain_acked) {
    while (segments_.size() > 1 && segments_.front().last_seq <= shipped_) {
      if (::unlink(segments_.front().path.c_str()) != 0) {
        return fail(error, "unlink " + segments_.front().path);
      }
      segments_.erase(segments_.begin());
    }
  }
  return true;
}

bool Spool::for_each(
    std::uint64_t from,
    const std::function<bool(std::uint64_t, std::string_view)>& fn,
    std::string* error) const {
  for (const auto& seg : segments_) {
    if (seg.last_seq <= from) continue;
    const auto bytes = util::read_file(seg.path, error);
    if (!bytes.has_value()) return false;
    std::size_t off = 0;
    // Only the validated prefix: the file may have grown a torn tail
    // since open() if a concurrent writer crashed, but within one process
    // seg.bytes tracks exactly what append() completed.
    while (off + rlog::kHeaderBytes <= seg.bytes &&
           off + rlog::kHeaderBytes <= bytes->size()) {
      const char* h = bytes->data() + off;
      const std::uint32_t magic = rlog::get_u32(h);
      const std::uint32_t len = rlog::get_u32(h + 4);
      const std::uint64_t seq = rlog::get_u64(h + 8);
      const std::uint32_t crc = rlog::get_u32(h + 16);
      if (magic != rlog::kMagic || len > kMaxRecordBytes ||
          bytes->size() - off - rlog::kHeaderBytes < len) {
        if (error != nullptr) *error = "spool segment changed on disk: " +
                                       seg.path;
        return false;
      }
      const std::string_view payload(bytes->data() + off + rlog::kHeaderBytes,
                                     len);
      if (rlog::record_crc(seq, payload) != crc) {
        if (error != nullptr) {
          *error = "spool record crc mismatch (seq " + std::to_string(seq) +
                   ") in " + seg.path;
        }
        return false;
      }
      if (seq > from && !fn(seq, payload)) return true;
      off += rlog::kHeaderBytes + len;
    }
  }
  return true;
}

}  // namespace netd::agent
