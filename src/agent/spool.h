// Crash-safe on-disk observation spool for the sensor agent.
//
// The spool is a write-ahead batch log: every observation round is
// appended as one CRC32-framed record to the active segment file before
// anything is shipped, so a SIGKILL at any instant loses at most the
// record being written — and that torn tail is detected and truncated at
// the next open(). Records carry the agent's monotonically increasing
// sequence number; the shipper drains records above the server's ack
// watermark and redelivery after a lost response is deduplicated
// server-side, which together give exactly-once ingest.
//
// On-disk layout (all files live in Options::dir):
//
//   seg-<first_seq, 20 digits>.ndspool   record segments, rotated at
//                                        max_segment_bytes
//   MANIFEST                             advisory JSON {"shipped": N},
//                                        replaced via util::atomic_write_file
//   *.quarantined                        segments recovery refused to trust
//
// Record framing is the shared util::record_log format (little-endian,
// 20-byte header + payload, CRC32 over seq bytes + payload) — the same
// framing the service's per-session write-ahead journal uses, so one
// scanner implementation backs every durable log's recovery.
//
// Recovery semantics, pinned by tests/agent/spool_test.cc:
//   - a record that runs past the end of the *last* segment is a torn
//     tail (the writer died mid-append): the segment is truncated back to
//     the last complete record and appending resumes after it.
//   - bad magic, a CRC mismatch, a non-increasing seq, or a short tail in
//     a non-last segment is corruption the writer cannot explain: the
//     whole segment is renamed to <name>.quarantined and counted loudly
//     (RecoveryStats::quarantined + the agent's structured drop counters)
//     — never silently skipped, never deleted.
//   - zero-record segments are removed (empty-segment compaction), as are
//     fully-shipped segments when Options::retain_acked is false.
//   - stale atomic_write_file temps beside MANIFEST (a writer crashed
//     between temp write and rename) are removed via
//     util::remove_stale_temps — the same code path every other
//     atomic-file consumer relies on.
//
// Disk budget: when the spool exceeds Options::max_spool_bytes the oldest
// non-active segment is shed and the loss is accounted in DropStats —
// shipping falls behind visibly (a seq gap + counters), never silently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/record_log.h"

namespace netd::agent {

/// CRC32 (IEEE 802.3, reflected, init/final 0xffffffff) — the framing
/// checksum, hoisted into util so the service journal shares it. Kept
/// here as a forwarder for existing callers. Chain calls by passing the
/// previous return value as `seed`.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t len,
                                         std::uint32_t seed = 0) {
  return util::crc32(data, len, seed);
}

class Spool {
 public:
  /// Hard cap on one record's payload; larger appends are refused and a
  /// larger length field in a header is treated as corruption.
  static constexpr std::uint32_t kMaxRecordBytes =
      util::record_log::kMaxRecordBytes;

  struct Options {
    std::string dir;
    /// Active segment rotates once it reaches this size.
    std::uint64_t max_segment_bytes = 4u << 20;
    /// Total on-disk budget; 0 = unbounded. Enforced at append time by
    /// shedding whole oldest segments (see DropStats).
    std::uint64_t max_spool_bytes = 0;
    /// fsync the segment after every append. SIGKILL never loses
    /// OS-buffered writes, so this only matters for power loss; the
    /// default trades that for append throughput.
    bool fsync_each = false;
    /// Keep fully-acked segments on disk (until budget pressure sheds
    /// them) so a server that lost its state can be re-fed from the
    /// baseline. False = delete them at mark_shipped (smallest footprint,
    /// but an epoch reset then loses history).
    bool retain_acked = true;
  };

  /// What open() found and repaired; surfaced so the agent can export it
  /// as structured counters instead of burying it in a log line.
  struct RecoveryStats {
    std::size_t segments = 0;          ///< readable segments kept
    std::size_t records = 0;           ///< complete records recovered
    std::size_t torn_tails = 0;        ///< segments truncated at a torn tail
    std::uint64_t torn_bytes = 0;      ///< bytes cut by those truncations
    std::size_t quarantined = 0;       ///< segments renamed *.quarantined
    std::size_t quarantined_records = 0;  ///< parseable records lost to them
    std::size_t empty_removed = 0;     ///< zero-record segments unlinked
    std::size_t compacted = 0;         ///< fully-shipped segments unlinked
    std::size_t stale_temps = 0;       ///< crashed-writer temps removed
    std::uint64_t shipped = 0;         ///< manifest watermark loaded
  };

  /// Oldest-first shedding under the disk budget, cumulative.
  struct DropStats {
    std::uint64_t segments = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
  };

  /// Opens (creating the directory if needed) and runs recovery. Returns
  /// nullptr with `error` set when the directory cannot be created or a
  /// repair action itself fails — a spool that cannot be made trustworthy
  /// is an error, not a warning.
  [[nodiscard]] static std::unique_ptr<Spool> open(Options opts,
                                                   std::string* error,
                                                   RecoveryStats* stats =
                                                       nullptr);

  ~Spool();
  Spool(const Spool&) = delete;
  Spool& operator=(const Spool&) = delete;

  /// Appends one record, assigning the next sequence number (returned;
  /// 0 = failure with `error` set). The record is on disk (modulo page
  /// cache; see fsync_each) before this returns.
  [[nodiscard]] std::uint64_t append(std::string_view payload,
                                     std::string* error);

  /// Advances the durable ship watermark (monotonic; lower values are
  /// ignored) and persists it to MANIFEST atomically. Without
  /// retain_acked, fully-shipped non-active segments are deleted.
  [[nodiscard]] bool mark_shipped(std::uint64_t upto, std::string* error);

  /// Streams every record with seq > `from`, oldest first. `fn` returns
  /// false to stop early. Returns false with `error` on read failure —
  /// segments were validated at open() and all later writes are our own,
  /// so a parse failure here means the disk changed under us.
  [[nodiscard]] bool for_each(
      std::uint64_t from,
      const std::function<bool(std::uint64_t seq, std::string_view payload)>&
          fn,
      std::string* error) const;

  [[nodiscard]] std::uint64_t last_seq() const { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t shipped() const { return shipped_; }
  [[nodiscard]] std::uint64_t bytes() const;
  [[nodiscard]] std::size_t segments() const { return segments_.size(); }
  [[nodiscard]] const DropStats& dropped() const { return dropped_; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  struct Segment {
    std::string path;
    std::uint64_t first_seq = 0;  ///< seq the file name was minted with
    std::uint64_t last_seq = 0;   ///< highest record inside (0 = none)
    std::uint64_t bytes = 0;
    std::size_t records = 0;
  };

  explicit Spool(Options opts) : opts_(std::move(opts)) {}

  [[nodiscard]] bool recover(std::string* error, RecoveryStats* stats);
  [[nodiscard]] bool open_active(bool create, std::string* error);
  [[nodiscard]] bool rotate(std::string* error);
  void shed_over_budget();
  [[nodiscard]] bool write_manifest(std::string* error) const;
  [[nodiscard]] std::string segment_path(std::uint64_t first_seq) const;

  Options opts_;
  std::vector<Segment> segments_;  ///< oldest first; back() is active
  int active_fd_ = -1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t shipped_ = 0;
  DropStats dropped_;
};

}  // namespace netd::agent
