#include "agent/agent.h"

#include <algorithm>
#include <utility>
#include <variant>
#include <vector>

#include "obs/registry.h"
#include "obs/span.h"
#include "obs/trace_context.h"
#include "probe/sensors.h"
#include "probe/synthetic.h"
#include "svc/json.h"
#include "svc/socket.h"
#include "topo/generator.h"
#include "util/atomic_file.h"
#include "util/rng.h"

namespace netd::agent {

namespace {

constexpr const char* kBaselineFile = "BASELINE";

struct Counters {
  obs::Counter& rounds;
  obs::Counter& appended;
  obs::Counter& batches;
  obs::Counter& applied;
  obs::Counter& deduped;
  obs::Counter& ship_failures;
  obs::Counter& rehellos;
  obs::Counter& recovered;
  obs::Counter& torn_tails;
  obs::Counter& quarantined;
  obs::Counter& dropped_records;
  obs::Counter& dropped_bytes;
  obs::Gauge& spool_bytes;

  static Counters& get() {
    auto& r = obs::Registry::global();
    static Counters c{
        r.counter("netd_agent_rounds_measured_total",
                  "Observation rounds measured by this agent process"),
        r.counter("netd_agent_records_appended_total",
                  "Records appended to the spool"),
        r.counter("netd_agent_batches_shipped_total",
                  "observe_batch frames acknowledged by the server"),
        r.counter("netd_agent_items_applied_total",
                  "Batch items the server newly applied"),
        r.counter("netd_agent_items_deduped_total",
                  "Batch items the server recognized as redelivery"),
        r.counter("netd_agent_ship_failures_total",
                  "Transport-level ship failures (after client retries)"),
        r.counter("netd_agent_rehellos_total",
                  "Session re-establishments after server amnesia"),
        r.counter("netd_agent_spool_recovered_records_total",
                  "Records recovered from the spool at startup"),
        r.counter("netd_agent_spool_torn_tails_total",
                  "Spool segments truncated at a torn tail during recovery"),
        r.counter("netd_agent_spool_quarantined_total",
                  "Spool segments quarantined as corrupt during recovery"),
        r.counter("netd_agent_spool_dropped_records_total",
                  "Records shed to stay under the spool disk budget"),
        r.counter("netd_agent_spool_dropped_bytes_total",
                  "Bytes shed to stay under the spool disk budget"),
        r.gauge("netd_agent_spool_bytes", "Current spool size on disk"),
    };
    return c;
  }
};

/// The seeded measurement world, built identically by every incarnation
/// of the same agent config.
struct World {
  topo::Topology topology;
  probe::Mesh baseline;
  std::vector<probe::Sensor> sensors;
  topo::LinkId victim{};
  bool has_victim = false;
};

World build_world(const AgentConfig& cfg) {
  topo::GeneratorParams p;
  p.seed = cfg.topo_seed;
  p.target_ases = cfg.ases;
  p.pool_tier2 = cfg.tier2;
  p.pool_stubs = cfg.stubs;
  World w{topo::generate(p), {}, {}, {}, false};
  util::Rng prng(cfg.placement_seed);
  const std::size_t n = std::min(
      cfg.sensors,
      probe::placement_capacity(w.topology, probe::PlacementKind::kRandomStub));
  w.sensors = probe::place_sensors(w.topology,
                                   probe::PlacementKind::kRandomStub, n, prng);
  {
    const probe::SyntheticProber prober(w.topology, w.sensors);
    w.baseline = prober.measure();
  }
  if (cfg.fail_round > 0) {
    const auto pool = w.baseline.probed_links();
    if (!pool.empty()) {
      util::Rng frng(cfg.fail_seed);
      w.victim = frng.pick(pool);
      w.has_victim = true;
    }
    // Prefer a single-homed sensor's only uplink: failing a random probed
    // link usually just reroutes (no alarm), but a lone uplink breaks its
    // sensor's pairs unrecoverably — the scenario a diagnosis exists for.
    for (const auto& s : w.sensors) {
      std::size_t uplinks = 0;
      topo::LinkId last{};
      for (const topo::LinkId l : w.topology.links_of(s.attach)) {
        if (w.topology.link(l).interdomain) {
          ++uplinks;
          last = l;
        }
      }
      if (uplinks == 1) {
        w.victim = last;
        w.has_victim = true;
        break;
      }
    }
  }
  return w;
}

/// Seed of this agent's per-round trace roots. Derived from (client
/// seed, agent name) so every incarnation of the same agent config —
/// including one restarted after a crash — re-derives the *same* trace
/// id for a given round: a redelivered item joins the trace the
/// original measurement started.
std::uint64_t trace_seed(const AgentConfig& cfg) {
  return obs::ids::combine(cfg.client.seed, obs::ids::fnv1a(cfg.name.c_str()));
}

/// The round's trace root as a span parent (lane 0).
obs::SpanContext trace_parent(const obs::TraceContext& tc) {
  return obs::SpanContext{tc.trace_id, tc.span_id, 0};
}

std::string round_payload(std::size_t round, const probe::Mesh& mesh) {
  svc::Json j = svc::Json::object();
  j.set("round", svc::Json::uinteger(round));
  j.set("mesh", svc::mesh_to_json(mesh));
  return j.dump();
}

std::optional<probe::Mesh> payload_mesh(std::string_view payload,
                                        std::string* error) {
  const auto j = svc::Json::parse(payload, error);
  if (!j.has_value()) return std::nullopt;
  const svc::Json* mesh = j->find("mesh");
  if (mesh == nullptr) {
    if (error != nullptr) *error = "spool payload has no mesh";
    return std::nullopt;
  }
  return svc::mesh_from_json(*mesh, error);
}

}  // namespace

std::optional<probe::Mesh> Agent::load_baseline(std::string* error) const {
  const auto doc =
      util::read_file(cfg_.spool_dir + "/" + kBaselineFile, error);
  if (!doc.has_value()) return std::nullopt;
  const auto j = svc::Json::parse(*doc, error);
  if (!j.has_value()) return std::nullopt;
  return svc::mesh_from_json(*j, error);
}

bool Agent::generate(Spool& spool, std::string* error) {
  auto& counters = Counters::get();
  const std::uint64_t done = spool.last_seq();
  const std::string baseline_path = cfg_.spool_dir + "/" + kBaselineFile;
  const bool have_baseline = util::file_size(baseline_path).has_value();
  if (done >= cfg_.rounds && have_baseline) return true;

  World w = build_world(cfg_);
  if (!have_baseline) {
    // Durable before any round: an epoch reset re-ships baseline-first,
    // so the baseline must survive every crash the spool survives.
    if (!util::atomic_write_file(baseline_path,
                                 svc::mesh_to_json(w.baseline).dump(),
                                 error)) {
      return false;
    }
  }
  const probe::SyntheticProber prober(w.topology, w.sensors);
  for (std::size_t r = 1; r <= cfg_.rounds; ++r) {
    // Replay the failure schedule even for rounds an earlier incarnation
    // measured: the topology state at round r must not depend on where
    // the previous process died.
    if (w.has_victim && r == cfg_.fail_round) {
      w.topology.set_link_up(w.victim, false);
    }
    if (r <= done) continue;
    // The round's trace starts here: measure + spool-append under the
    // same deterministic root its batch item (and the server's rx_*
    // spans) will carry.
    const obs::TraceContext tc = obs::TraceContext::root(trace_seed(cfg_), r);
    obs::Span span("spool", trace_parent(tc), r);
    const probe::Mesh mesh = prober.measure();
    counters.rounds.inc();
    const std::uint64_t seq = spool.append(round_payload(r, mesh), error);
    if (seq == 0) return false;
    counters.appended.inc();
    ++summary_.generated;
  }
  counters.spool_bytes.set(static_cast<double>(spool.bytes()));
  return true;
}

bool Agent::ship(Spool& spool, std::string* error, bool* fatal) {
  auto& counters = Counters::get();
  *fatal = false;
  std::string ep_error;
  const auto ep = svc::Endpoint::parse(cfg_.endpoint, &ep_error);
  if (!ep.has_value()) {
    if (error != nullptr) *error = ep_error;
    *fatal = true;
    return false;
  }
  svc::SessionConfig scfg;
  scfg.alarm_threshold = cfg_.alarm_threshold;
  scfg.algo = cfg_.algo;
  scfg.granularity = cfg_.granularity;

  std::string cerror;
  auto client = svc::Client::connect(*ep, cfg_.client, &cerror);
  if (!client.has_value()) {
    counters.ship_failures.inc();
    if (error != nullptr) *error = cerror;
    return false;
  }

  const std::uint64_t target = spool.last_seq();
  bool need_hello = true;
  bool need_baseline = false;
  bool have_ack = false;
  std::uint64_t ack = 0;
  std::size_t failures = 0;

  const auto transport_failed = [&](const std::string& what) {
    counters.ship_failures.inc();
    ++failures;
    // The batch may have been applied before the response was lost;
    // re-probe the watermark rather than trusting the local ack.
    have_ack = false;
    if (failures >= cfg_.ship_max_failures) {
      if (error != nullptr) *error = what;
      return true;  // give up
    }
    return false;
  };
  // Handles the two server-amnesia codes every ship-path response can
  // carry. Returns true when the error was absorbed into the state
  // machine; false means it is fatal.
  const auto absorb_error = [&](const svc::ErrorResponse& err) {
    if (err.code == svc::kErrUnknownSession) {
      need_hello = true;
      have_ack = false;
      ++summary_.rehellos;
      counters.rehellos.inc();
      return true;
    }
    if (err.code == svc::kErrNoBaseline) {
      need_baseline = true;
      have_ack = false;
      return true;
    }
    return false;
  };

  for (;;) {
    if (need_hello) {
      std::string herror;
      auto rsp = client->call(
          svc::Request{svc::HelloRequest{
              cfg_.session, scfg,
              obs::TraceContext::root(trace_seed(cfg_), 0)}},
          &herror);
      if (!rsp.has_value()) {
        if (transport_failed(herror)) return false;
        continue;
      }
      if (const auto* err = std::get_if<svc::ErrorResponse>(&*rsp)) {
        if (error != nullptr) *error = "hello: " + err->message;
        *fatal = true;
        return false;
      }
      need_hello = false;
      failures = 0;
      continue;
    }
    if (need_baseline) {
      std::string berror;
      const auto mesh = load_baseline(&berror);
      if (!mesh.has_value()) {
        if (error != nullptr) *error = "baseline: " + berror;
        *fatal = true;
        return false;
      }
      auto rsp = client->call(
          svc::Request{svc::SetBaselineRequest{
              cfg_.session, *mesh,
              obs::TraceContext::root(trace_seed(cfg_), 0)}},
          &berror);
      if (!rsp.has_value()) {
        if (transport_failed(berror)) return false;
        continue;
      }
      if (const auto* err = std::get_if<svc::ErrorResponse>(&*rsp)) {
        if (absorb_error(*err)) continue;
        if (error != nullptr) *error = "set_baseline: " + err->message;
        *fatal = true;
        return false;
      }
      // Epoch reset: the baseline cleared every watermark; re-probe.
      need_baseline = false;
      have_ack = false;
      failures = 0;
      continue;
    }

    // Watermark probe (empty batch) or a real drain batch.
    svc::ObserveBatchRequest req{cfg_.session, cfg_.name, {}};
    if (have_ack && ack < target) {
      std::string serror;
      bool parse_failed = false;
      const bool ok = spool.for_each(
          ack,
          [&](std::uint64_t seq, std::string_view payload) {
            std::string perror;
            auto mesh = payload_mesh(payload, &perror);
            if (!mesh.has_value()) {
              serror = "spool seq " + std::to_string(seq) + ": " + perror;
              parse_failed = true;
              return false;
            }
            req.items.push_back(svc::ObserveItem{
                seq, std::move(*mesh), std::nullopt,
                obs::TraceContext::root(trace_seed(cfg_), seq)});
            return req.items.size() < cfg_.batch_max_items;
          },
          &serror);
      if (!ok || parse_failed) {
        if (error != nullptr) *error = serror;
        *fatal = true;
        return false;
      }
      if (req.items.empty()) {
        // Everything above the ack was shed from the spool: nothing left
        // to deliver. The drop counters already told the story.
        break;
      }
    }
    std::string xerror;
    std::optional<svc::Response> rsp;
    if (!req.items.empty() && req.items.front().trace.has_value()) {
      // The ship span joins the first item's trace, so one trace id links
      // spool → ship on the agent to rx_* → journal → solve on the server.
      req.trace = req.items.front().trace;
      obs::Span ship_span("ship", trace_parent(*req.trace),
                          req.items.front().seq);
      rsp = client->call(svc::Request{req}, &xerror);
    } else {
      rsp = client->call(svc::Request{req}, &xerror);
    }
    if (!rsp.has_value()) {
      if (transport_failed(xerror)) return false;
      continue;
    }
    if (const auto* err = std::get_if<svc::ErrorResponse>(&*rsp)) {
      if (absorb_error(*err)) continue;
      if (error != nullptr) *error = "observe_batch: " + err->message;
      *fatal = true;
      return false;
    }
    const auto* batch = std::get_if<svc::ObserveBatchResponse>(&*rsp);
    if (batch == nullptr) {
      if (error != nullptr) *error = "observe_batch: unexpected response";
      *fatal = true;
      return false;
    }
    failures = 0;
    ack = batch->ack;
    have_ack = true;
    summary_.acked = ack;
    summary_.round = batch->round;
    summary_.alarmed = batch->alarmed;
    if (batch->diagnosis.has_value()) summary_.diagnosis = batch->diagnosis;
    if (!req.items.empty()) {
      ++summary_.batches;
      counters.batches.inc();
      summary_.applied += batch->applied;
      counters.applied.inc(batch->applied);
      summary_.deduped += batch->deduped;
      counters.deduped.inc(batch->deduped);
      std::string merror;
      if (!spool.mark_shipped(ack, &merror)) {
        if (error != nullptr) *error = merror;
        *fatal = true;
        return false;
      }
    }
    if (ack >= target) break;
  }

  // Best-effort: surface the session's diagnosis even when it fired in a
  // previous incarnation's batch.
  if (!summary_.diagnosis.has_value()) {
    std::string qerror;
    auto rsp =
        client->call(svc::Request{svc::QueryRequest{cfg_.session}}, &qerror);
    if (rsp.has_value()) {
      if (const auto* q = std::get_if<svc::QueryResponse>(&*rsp)) {
        summary_.diagnosis = q->diagnosis;
      }
    }
  }
  counters.spool_bytes.set(static_cast<double>(spool.bytes()));
  return true;
}

int Agent::run(std::string* error) {
  auto& counters = Counters::get();
  if (cfg_.spool_dir.empty()) {
    if (error != nullptr) *error = "agent requires a spool directory";
    return kExitError;
  }
  Spool::Options sopts;
  sopts.dir = cfg_.spool_dir;
  sopts.max_segment_bytes = cfg_.spool_segment_bytes;
  sopts.max_spool_bytes = cfg_.spool_budget_bytes;
  sopts.fsync_each = cfg_.spool_fsync_each;
  sopts.retain_acked = cfg_.retain_acked;
  auto spool = Spool::open(std::move(sopts), error, &summary_.recovery);
  if (spool == nullptr) return kExitError;
  counters.recovered.inc(summary_.recovery.records);
  counters.torn_tails.inc(summary_.recovery.torn_tails);
  counters.quarantined.inc(summary_.recovery.quarantined);

  if (!generate(*spool, error)) return kExitError;
  summary_.spooled = spool->last_seq();
  summary_.dropped = spool->dropped();
  counters.dropped_records.inc(spool->dropped().records);
  counters.dropped_bytes.inc(spool->dropped().bytes);
  if (cfg_.generate_only) return kExitOk;

  bool fatal = false;
  const bool shipped = ship(*spool, error, &fatal);
  summary_.dropped = spool->dropped();
  if (!shipped) return fatal ? kExitError : kExitUnreachable;
  return kExitOk;
}

}  // namespace netd::agent
