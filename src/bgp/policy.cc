#include "bgp/policy.h"

namespace netd::bgp {

bool export_allowed(const topo::Topology& topo, topo::RouterId r,
                    topo::LinkId l, const Route& best,
                    const ExportFilters& filters) {
  if (filters.suppressed(r, l, best.prefix)) return false;
  const topo::Relationship rel = topo.neighbor_relationship(l, r);
  if (rel == topo::Relationship::kCustomer) return true;
  // Toward peers and providers only customer-learned or originated routes
  // may be announced.
  return best.local_pref == kCustomerPref || best.originated();
}

}  // namespace netd::bgp
