// Export policy: Gao–Rexford economics plus per-(router, peer link, prefix)
// export filters — the paper's router-misconfiguration mechanism (§3.1).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "bgp/route.h"
#include "topo/topology.h"

namespace netd::bgp {

/// Set of suppressed exports. A misconfigured outbound route filter at
/// router r toward the peer over link l for prefix p is an entry (r, l, p):
/// r silently stops announcing p on that one session, exactly as in the
/// paper's example (y1 no longer announces C's route to x2).
class ExportFilters {
 public:
  void add(topo::RouterId r, topo::LinkId l, topo::PrefixId p) {
    entries_.insert(key(r, l, p));
  }
  void clear() { entries_.clear(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool suppressed(topo::RouterId r, topo::LinkId l,
                                topo::PrefixId p) const {
    return entries_.count(key(r, l, p)) != 0;
  }

 private:
  static std::uint64_t key(topo::RouterId r, topo::LinkId l,
                           topo::PrefixId p) {
    return (static_cast<std::uint64_t>(r.value()) << 42) |
           (static_cast<std::uint64_t>(l.value()) << 21) | p.value();
  }
  std::unordered_set<std::uint64_t> entries_;
};

/// Whether router `r` may export its best route `best` over interdomain
/// link `l`. Implements: (a) export-to-customer always; export-to-peer/
/// provider only for customer or originated routes (valley-free routing);
/// (b) the export filters above.
[[nodiscard]] bool export_allowed(const topo::Topology& topo,
                                  topo::RouterId r, topo::LinkId l,
                                  const Route& best,
                                  const ExportFilters& filters);

}  // namespace netd::bgp
