#include "bgp/engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace netd::bgp {

using topo::AsId;
using topo::LinkId;
using topo::PrefixId;
using topo::RouterId;

namespace {
constexpr std::uint64_t kEventBudget = 200'000'000;

std::uint64_t work_key(RouterId r, PrefixId p) {
  return (static_cast<std::uint64_t>(r.value()) << 32) | p.value();
}
}  // namespace

BgpEngine::BgpEngine(const topo::Topology& topo, const igp::IgpState& igp)
    : topo_(topo), igp_(igp) {
  loc_rib_.resize(topo_.num_routers());
}

void BgpEngine::converge_initial() {
  for (const auto& r : topo_.routers()) {
    enqueue(r.id, topo_.prefix_of(r.as));
  }
  run_to_convergence();
}

void BgpEngine::enqueue(RouterId r, PrefixId p) {
  const auto k = work_key(r, p);
  if (in_queue_.insert(k).second) queue_.push_back(k);
}

void BgpEngine::enqueue_all_prefixes(RouterId r) {
  for (std::uint32_t p = 0; p < topo_.num_ases(); ++p) enqueue(r, PrefixId{p});
}

void BgpEngine::run_to_convergence() {
  std::uint64_t processed_this_call = 0;
  while (!queue_.empty()) {
    ++events_;
    if (++processed_this_call > kEventBudget) {
      throw std::runtime_error("BGP event budget exhausted (divergence?)");
    }
    const std::uint64_t k = queue_.front();
    queue_.pop_front();
    in_queue_.erase(k);
    process(RouterId{static_cast<std::uint32_t>(k >> 32)},
            PrefixId{static_cast<std::uint32_t>(k & 0xffffffffu)});
  }
}

std::optional<Route> BgpEngine::decide(RouterId r, PrefixId p) const {
  if (!topo_.router(r).up) return std::nullopt;
  const AsId my_as = topo_.as_of_router(r);

  std::optional<Route> best;
  int best_dist = 0;
  bool best_ebgp = false;
  auto consider = [&](const Route& cand, int dist, bool is_ebgp) {
    if (!best || better_route(cand, dist, is_ebgp, *best, best_dist,
                              best_ebgp)) {
      best = cand;
      best_dist = dist;
      best_ebgp = is_ebgp;
    }
  };

  // Locally originated prefix: every router of the AS originates it.
  if (topo_.prefix_of(my_as) == p) {
    consider(Route{p, {}, r, LinkId{}, kOriginPref}, 0, /*is_ebgp=*/true);
  }

  // eBGP candidates: one session per usable interdomain link.
  for (LinkId l : topo_.links_of(r)) {
    if (!topo_.link(l).interdomain || !topo_.link_usable(l)) continue;
    auto it = adj_in_.find(key(r, p, /*ebgp=*/true, l.value()));
    if (it == adj_in_.end()) continue;
    consider(it->second, 0, /*is_ebgp=*/true);
  }

  // iBGP candidates: full mesh within the AS; a route is usable only if
  // its egress border router is IGP-reachable and its egress link is up.
  for (RouterId q : topo_.as_of(my_as).routers) {
    if (q == r || !topo_.router(q).up) continue;
    auto it = adj_in_.find(key(r, p, /*ebgp=*/false, q.value()));
    if (it == adj_in_.end()) continue;
    const Route& cand = it->second;
    if (!cand.egress_link.valid() || !topo_.link_usable(cand.egress_link)) {
      continue;
    }
    const int dist = igp_.distance(r, cand.egress_router);
    if (dist == igp::IgpState::kUnreachable) continue;
    consider(cand, dist, /*is_ebgp=*/false);
  }
  return best;
}

void BgpEngine::process(RouterId r, PrefixId p) {
  const std::optional<Route> best = decide(r, p);

  auto& rib = loc_rib_[r.value()];
  if (best) {
    rib[p.value()] = *best;
  } else {
    rib.erase(p.value());
  }

  if (!topo_.router(r).up) return;
  const AsId my_as = topo_.as_of_router(r);

  // iBGP: advertise only routes for which we are the egress (eBGP-learned).
  // Originated routes are never reflected — every router of the AS
  // originates the AS prefix itself.
  {
    std::optional<Route> adv;
    if (best && best->egress_router == r && !best->originated()) adv = *best;
    for (RouterId q : topo_.as_of(my_as).routers) {
      if (q == r || !topo_.router(q).up) continue;
      set_adj_in(q, p, /*ebgp=*/false, r.value(), adv,
                 /*record_message=*/false);
    }
  }

  // eBGP: policy-checked, AS-prepended advertisement per usable session.
  for (LinkId l : topo_.links_of(r)) {
    if (!topo_.link(l).interdomain || !topo_.link_usable(l)) continue;
    const RouterId peer = topo_.other_end(l, r);
    const AsId peer_as = topo_.as_of_router(peer);

    std::optional<Route> adv;
    if (best && export_allowed(topo_, r, l, *best, filters_)) {
      // Receiver-side loop check: drop instead of delivering a looped path.
      const bool loops =
          std::find(best->as_path.begin(), best->as_path.end(), peer_as) !=
              best->as_path.end() ||
          peer_as == my_as;
      if (!loops) {
        Route out;
        out.prefix = p;
        out.as_path.reserve(best->as_path.size() + 1);
        out.as_path.push_back(my_as);
        out.as_path.insert(out.as_path.end(), best->as_path.begin(),
                           best->as_path.end());
        out.egress_router = peer;
        out.egress_link = l;
        out.local_pref = pref_for(topo_.neighbor_relationship(l, peer));
        adv = std::move(out);
      }
    }
    set_adj_in(peer, p, /*ebgp=*/true, l.value(), adv,
               /*record_message=*/true);
  }
}

void BgpEngine::set_adj_in(RouterId at, PrefixId p, bool ebgp,
                           std::uint32_t sid, const std::optional<Route>& route,
                           bool record_message) {
  const std::uint64_t k = key(at, p, ebgp, sid);
  auto it = adj_in_.find(k);
  bool changed = false;
  if (route) {
    if (it == adj_in_.end()) {
      adj_in_.emplace(k, *route);
      changed = true;
    } else if (!(it->second == *route)) {
      it->second = *route;
      changed = true;
    }
  } else if (it != adj_in_.end()) {
    adj_in_.erase(it);
    changed = true;
  }
  if (!changed) return;

  enqueue(at, p);
  if (record_message && ebgp && tapped_as_.valid() &&
      topo_.as_of_router(at) == tapped_as_) {
    const LinkId l{sid};
    messages_.push_back(BgpMessage{at, topo_.other_end(l, at), l, p,
                                   /*withdraw=*/!route.has_value()});
  }
}

void BgpEngine::erase_session(RouterId at, bool ebgp, std::uint32_t sid) {
  for (std::uint32_t p = 0; p < topo_.num_ases(); ++p) {
    const std::uint64_t k = key(at, PrefixId{p}, ebgp, sid);
    if (adj_in_.erase(k) != 0) enqueue(at, PrefixId{p});
  }
}

void BgpEngine::on_link_state_change(LinkId l) {
  const auto& link = topo_.link(l);
  if (link.interdomain) {
    if (!topo_.link_usable(l)) {
      // eBGP session teardown: both sides lose every route of the session.
      erase_session(link.a, /*ebgp=*/true, l.value());
      erase_session(link.b, /*ebgp=*/true, l.value());
    } else {
      // Session (re-)establishment: both sides re-advertise everything.
      enqueue_all_prefixes(link.a);
      enqueue_all_prefixes(link.b);
    }
  } else {
    // Intradomain change: IGP distances and reachability shifted for the
    // whole AS — revisit every prefix at every router of the AS.
    const AsId as = topo_.as_of_router(link.a);
    for (RouterId r : topo_.as_of(as).routers) enqueue_all_prefixes(r);
  }
}

void BgpEngine::on_router_state_change(RouterId r) {
  const AsId as = topo_.as_of_router(r);
  if (!topo_.router(r).up) {
    // The router's own state is dead weight; drop it silently.
    loc_rib_[r.value()].clear();
    for (auto it = adj_in_.begin(); it != adj_in_.end();) {
      if (static_cast<std::uint32_t>(it->first >> 48) == r.value()) {
        it = adj_in_.erase(it);
      } else {
        ++it;
      }
    }
    // Peers lose their sessions with r.
    for (RouterId q : topo_.as_of(as).routers) {
      if (q == r) continue;
      erase_session(q, /*ebgp=*/false, r.value());
    }
    for (LinkId l : topo_.links_of(r)) {
      if (!topo_.link(l).interdomain) continue;
      erase_session(topo_.other_end(l, r), /*ebgp=*/true, l.value());
    }
  } else {
    enqueue_all_prefixes(r);
    for (RouterId q : topo_.as_of(as).routers) enqueue_all_prefixes(q);
    for (LinkId l : topo_.links_of(r)) {
      if (topo_.link(l).interdomain) {
        enqueue_all_prefixes(topo_.other_end(l, r));
      }
    }
  }
  // IGP shifted for the whole AS either way.
  for (RouterId q : topo_.as_of(as).routers) {
    if (topo_.router(q).up) enqueue_all_prefixes(q);
  }
}

void BgpEngine::add_export_filter(RouterId r, LinkId l, PrefixId p) {
  assert(topo_.link(l).interdomain);
  assert(topo_.link(l).a == r || topo_.link(l).b == r);
  filters_.add(r, l, p);
  enqueue(r, p);
}

std::optional<Route> BgpEngine::best(RouterId r, PrefixId p) const {
  const auto& rib = loc_rib_[r.value()];
  auto it = rib.find(p.value());
  if (it == rib.end()) return std::nullopt;
  return it->second;
}

BgpEngine::Snapshot BgpEngine::snapshot() const {
  assert(queue_.empty() && "snapshot must be taken at convergence");
  return Snapshot{adj_in_, loc_rib_};
}

void BgpEngine::restore(const Snapshot& snap) {
  adj_in_ = snap.adj_in;
  loc_rib_ = snap.loc_rib;
  queue_.clear();
  in_queue_.clear();
  filters_.clear();
  messages_.clear();
}

}  // namespace netd::bgp
