// Event-driven per-router BGP engine (the C-BGP analogue).
//
// Every router keeps an adj-RIB-in per session (one eBGP session per
// interdomain link, iBGP full mesh inside each AS) and a loc-RIB. A FIFO
// work queue of dirty (router, prefix) pairs drives the decision process
// and (re-)propagation until a fixpoint: processing a pair recomputes the
// best route and recomputes the exact advertisement owed to every session;
// a neighbor is enqueued only when its adj-RIB-in actually changes, so the
// loop terminates (Gao–Rexford policies admit a stable solution).
//
// A "message tap" records every eBGP update/withdrawal *received* by the
// routers of one chosen AS (AS-X in the paper); ND-bgpigp consumes the
// withdrawals.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/policy.h"
#include "bgp/route.h"
#include "igp/igp.h"
#include "topo/topology.h"

namespace netd::bgp {

/// One eBGP message delivered to a router of the tapped AS.
struct BgpMessage {
  topo::RouterId at;       ///< receiving router (in the tapped AS)
  topo::RouterId from;     ///< external neighbor that sent it
  topo::LinkId link;       ///< interdomain link it arrived on
  topo::PrefixId prefix;
  bool withdraw = false;   ///< true: withdrawal; false: (re-)announcement
};

class BgpEngine {
 public:
  /// `topo` and `igp` must outlive the engine. The IGP state must be kept
  /// in sync with the topology by the caller (see sim::Network).
  BgpEngine(const topo::Topology& topo, const igp::IgpState& igp);

  /// Originates every AS's prefix at each of its routers and runs to
  /// convergence.
  void converge_initial();

  /// Drains the work queue. Throws std::runtime_error if the event budget
  /// is exhausted (policy misconfiguration outside the supported model).
  void run_to_convergence();

  /// Notify that `l`'s usability changed (after topology + IGP updates).
  void on_link_state_change(topo::LinkId l);
  /// Notify that router `r` went down/up (after topology + IGP updates).
  void on_router_state_change(topo::RouterId r);

  /// Installs a misconfigured outbound filter and schedules the implied
  /// withdrawals. Call run_to_convergence() afterwards.
  void add_export_filter(topo::RouterId r, topo::LinkId l, topo::PrefixId p);

  /// Best route of `r` toward `p`, if any.
  [[nodiscard]] std::optional<Route> best(topo::RouterId r,
                                          topo::PrefixId p) const;

  // --- message tap ---------------------------------------------------------
  void set_tapped_as(topo::AsId as) { tapped_as_ = as; }
  void clear_messages() { messages_.clear(); }
  [[nodiscard]] const std::vector<BgpMessage>& messages() const {
    return messages_;
  }

  // --- snapshot / restore ---------------------------------------------------
  struct Snapshot {
    std::unordered_map<std::uint64_t, Route> adj_in;
    std::vector<std::unordered_map<std::uint32_t, Route>> loc_rib;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Restores RIBs, clears the queue, the filters and the message tap.
  /// The caller must have restored topology + IGP state first.
  void restore(const Snapshot& snap);

  /// Total (router, prefix) events processed; exposed for benchmarks.
  [[nodiscard]] std::uint64_t events_processed() const { return events_; }

 private:
  // Session key layout: router(16) | prefix(16) | kind(1) | session id(31).
  static std::uint64_t key(topo::RouterId r, topo::PrefixId p, bool ebgp,
                           std::uint32_t sid) {
    return (static_cast<std::uint64_t>(r.value()) << 48) |
           (static_cast<std::uint64_t>(p.value()) << 32) |
           (static_cast<std::uint64_t>(ebgp ? 1 : 0) << 31) | sid;
  }

  void enqueue(topo::RouterId r, topo::PrefixId p);
  void enqueue_all_prefixes(topo::RouterId r);
  void process(topo::RouterId r, topo::PrefixId p);
  [[nodiscard]] std::optional<Route> decide(topo::RouterId r,
                                            topo::PrefixId p) const;
  /// Updates a neighbor's adj-RIB-in entry; enqueues it and taps the
  /// message on change. `route == nullopt` means withdraw.
  void set_adj_in(topo::RouterId at, topo::PrefixId p, bool ebgp,
                  std::uint32_t sid, const std::optional<Route>& route,
                  bool record_message);
  /// Silent session teardown (no message tap — session death is not a
  /// received withdrawal).
  void erase_session(topo::RouterId at, bool ebgp, std::uint32_t sid);

  const topo::Topology& topo_;
  const igp::IgpState& igp_;

  std::unordered_map<std::uint64_t, Route> adj_in_;
  std::vector<std::unordered_map<std::uint32_t, Route>> loc_rib_;

  ExportFilters filters_;

  std::deque<std::uint64_t> queue_;  // packed (router << 32 | prefix)
  std::unordered_set<std::uint64_t> in_queue_;

  topo::AsId tapped_as_;
  std::vector<BgpMessage> messages_;

  std::uint64_t events_ = 0;
};

}  // namespace netd::bgp
