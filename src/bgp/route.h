// BGP route representation and preference ordering.
#pragma once

#include <vector>

#include "topo/types.h"

namespace netd::bgp {

/// Local-preference classes implementing Gao–Rexford economics: customer
/// routes beat peer routes beat provider routes; locally originated
/// prefixes beat everything.
inline constexpr int kOriginPref = 1000;
inline constexpr int kCustomerPref = 300;
inline constexpr int kPeerPref = 200;
inline constexpr int kProviderPref = 100;

[[nodiscard]] constexpr int pref_for(topo::Relationship neighbor_rel) {
  switch (neighbor_rel) {
    case topo::Relationship::kCustomer: return kCustomerPref;
    case topo::Relationship::kPeer: return kPeerPref;
    case topo::Relationship::kProvider: return kProviderPref;
  }
  return kProviderPref;
}

/// A route as stored in a router's RIBs.
///
/// `as_path` is the path *beyond* the local AS (nearest AS first, origin AS
/// last); a locally originated route has an empty as_path. `egress_router`
/// is the border router of the local AS where traffic exits (the router
/// itself for eBGP-learned and originated routes); `egress_link` is the
/// interdomain link used (invalid for originated routes).
struct Route {
  topo::PrefixId prefix;
  std::vector<topo::AsId> as_path;
  topo::RouterId egress_router;
  topo::LinkId egress_link;
  int local_pref = 0;

  [[nodiscard]] bool originated() const { return local_pref == kOriginPref; }

  friend bool operator==(const Route& a, const Route& b) {
    return a.prefix == b.prefix && a.as_path == b.as_path &&
           a.egress_router == b.egress_router &&
           a.egress_link == b.egress_link && a.local_pref == b.local_pref;
  }
};

/// Decision-process ordering at router `at` (lower IGP distance to the
/// egress wins after local-pref / path-length / eBGP-over-iBGP). Returns
/// true when `a` is strictly preferred over `b`. `igp_dist_*` are the IGP
/// distances from `at` to each route's egress router.
[[nodiscard]] bool better_route(const Route& a, int igp_dist_a, bool a_is_ebgp,
                                const Route& b, int igp_dist_b, bool b_is_ebgp);

}  // namespace netd::bgp
