#include "bgp/route.h"

namespace netd::bgp {

bool better_route(const Route& a, int igp_dist_a, bool a_is_ebgp,
                  const Route& b, int igp_dist_b, bool b_is_ebgp) {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.as_path.size() != b.as_path.size()) {
    return a.as_path.size() < b.as_path.size();
  }
  if (a_is_ebgp != b_is_ebgp) return a_is_ebgp;
  if (igp_dist_a != igp_dist_b) return igp_dist_a < igp_dist_b;
  // Deterministic final tie-breaks; two distinct candidates always differ
  // in egress router or egress link.
  if (a.egress_router != b.egress_router) {
    return a.egress_router < b.egress_router;
  }
  if (a.egress_link != b.egress_link) return a.egress_link < b.egress_link;
  return a.as_path < b.as_path;
}

}  // namespace netd::bgp
