// A fixed-size worker pool for sharding deterministic simulation work.
//
// Deliberately minimal — no work stealing, no futures, no task priorities:
// callers submit closures and wait for the batch to drain. Determinism is
// the submitter's job (shard work so that the output of each task is
// independent of scheduling, then merge in a fixed order); the pool only
// promises that every submitted task runs exactly once and that wait_all()
// observes all side effects of completed tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace netd::util {

class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (>= 1; pass the result of
  /// resolve_threads() to honor a user-facing "0 = all cores" knob).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks (wait_all semantics), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called concurrently with wait_all().
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw,
  /// rethrows the first exception (the remaining tasks still run).
  void wait_all();

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Maps the user-facing thread-count knob to a worker count: 0 means
  /// "all hardware threads" (at least 1); anything else is taken as-is.
  [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace netd::util
