#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace netd::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

std::string Table::fmt(double v) const {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision_) << v;
  return ss.str();
}

void Table::add_row(const std::vector<double>& values) {
  assert(values.size() == headers_.size());
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(fmt(v));
  rows_.push_back(std::move(row));
}

void Table::add_row(const std::string& label,
                    const std::vector<double>& values) {
  assert(values.size() + 1 == headers_.size());
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(fmt(v));
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace netd::util
