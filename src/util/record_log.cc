#include "util/record_log.h"

#include <unistd.h>

#include <array>
#include <cerrno>

namespace netd::util {

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

namespace record_log {

void put_u32(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

void put_u64(char* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::uint32_t record_crc(std::uint64_t seq, std::string_view payload) {
  char seq_bytes[8];
  put_u64(seq_bytes, seq);
  const std::uint32_t c = crc32(seq_bytes, sizeof(seq_bytes));
  return crc32(payload.data(), payload.size(), c);
}

std::string encode_record(std::uint64_t seq, std::string_view payload) {
  std::string frame;
  frame.resize(kHeaderBytes);
  put_u32(frame.data(), kMagic);
  put_u32(frame.data() + 4, static_cast<std::uint32_t>(payload.size()));
  put_u64(frame.data() + 8, seq);
  put_u32(frame.data() + 16, record_crc(seq, payload));
  frame.append(payload);
  return frame;
}

Scan scan(std::string_view bytes) {
  Scan s;
  std::size_t off = 0;
  while (off < bytes.size()) {
    if (bytes.size() - off < kHeaderBytes) {
      s.verdict = Scan::Verdict::kTornTail;
      break;
    }
    const char* h = bytes.data() + off;
    const std::uint32_t magic = get_u32(h);
    const std::uint32_t len = get_u32(h + 4);
    const std::uint64_t seq = get_u64(h + 8);
    const std::uint32_t crc = get_u32(h + 16);
    if (magic != kMagic || len > kMaxRecordBytes) {
      s.verdict = Scan::Verdict::kCorrupt;
      break;
    }
    if (bytes.size() - off - kHeaderBytes < len) {
      s.verdict = Scan::Verdict::kTornTail;
      break;
    }
    const std::string_view payload = bytes.substr(off + kHeaderBytes, len);
    if (record_crc(seq, payload) != crc ||
        (s.records > 0 && seq <= s.last_seq) || seq == 0) {
      s.verdict = Scan::Verdict::kCorrupt;
      break;
    }
    if (s.records == 0) s.first_seq = seq;
    s.last_seq = seq;
    ++s.records;
    off += kHeaderBytes + len;
    s.good_bytes = off;
  }
  return s;
}

void for_each(std::string_view bytes,
              const std::function<bool(std::uint64_t, std::string_view)>& fn) {
  std::size_t off = 0;
  std::uint64_t prev_seq = 0;
  std::size_t n = 0;
  while (bytes.size() - off >= kHeaderBytes && off < bytes.size()) {
    const char* h = bytes.data() + off;
    const std::uint32_t magic = get_u32(h);
    const std::uint32_t len = get_u32(h + 4);
    const std::uint64_t seq = get_u64(h + 8);
    const std::uint32_t crc = get_u32(h + 16);
    if (magic != kMagic || len > kMaxRecordBytes ||
        bytes.size() - off - kHeaderBytes < len) {
      return;
    }
    const std::string_view payload = bytes.substr(off + kHeaderBytes, len);
    if (record_crc(seq, payload) != crc || seq == 0 ||
        (n > 0 && seq <= prev_seq)) {
      return;
    }
    if (!fn(seq, payload)) return;
    prev_seq = seq;
    ++n;
    off += kHeaderBytes + len;
  }
}

bool write_all_fd(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace record_log
}  // namespace netd::util
