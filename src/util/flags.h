// Minimal command-line flag parsing for the CLI and tools.
//
// Supports "--name value", "--name=value" and boolean "--name". Unparsed
// leading arguments become positional. No external dependencies.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace netd::util {

class Flags {
 public:
  /// Parses argv; returns std::nullopt (and sets error()) on malformed
  /// input such as a dangling "--name" that expects a value in strict
  /// mode. Unknown flags are kept (validate with allow()).
  static Flags parse(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  /// String flag with default.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def = "") const;
  /// Integer flag with default; malformed values record an error.
  [[nodiscard]] long long get_int(const std::string& name, long long def);
  /// Unsigned flag with default; malformed *and negative* values record an
  /// error (counts must never wrap to huge sizes via a silent cast).
  [[nodiscard]] std::size_t get_uint(const std::string& name, std::size_t def);
  /// Double flag with default; malformed values record an error.
  [[nodiscard]] double get_double(const std::string& name, double def);
  /// Boolean flag: present => true, except the explicit "false"/"0" values.
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Records every flag not in `known` as an error.
  void allow(const std::vector<std::string>& known);

  [[nodiscard]] const std::vector<std::string>& errors() const {
    return errors_;
  }
  [[nodiscard]] bool ok() const { return errors_.empty(); }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace netd::util
