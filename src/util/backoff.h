// Bounded exponential backoff with deterministic jitter.
//
// Retry storms synchronize when every client sleeps the same schedule;
// jitter decorrelates them. The jitter draws come from a caller-owned Rng,
// so a seeded client produces the identical backoff sequence on every run
// — retries stay inside the repo's replayable-experiments discipline.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace netd::util {

/// Sleep budget for retry `attempt` (1-based): base * 2^(attempt-1),
/// capped at `max_ms`, then jittered to [1/2, 1] of the capped value.
///
/// Overflow-safe for any attempt count: the doubling runs in int64 and
/// stops the moment the cap is reached (never more than ~31 doublings
/// from a positive base), so `base << (attempt-1)` is never materialized
/// — attempt = INT_MAX is as safe as attempt = 3. A non-positive cap is
/// clamped up to the base; without that clamp a negative `ms` survived
/// to the uint32 jitter cast and produced garbage sleeps.
[[nodiscard]] inline int backoff_ms(int attempt, int base_ms, int max_ms,
                                    Rng& rng) {
  if (attempt < 1) attempt = 1;
  if (base_ms < 1) base_ms = 1;
  if (max_ms < base_ms) max_ms = base_ms;
  std::int64_t ms = base_ms;
  for (int i = 1; i < attempt && ms < max_ms; ++i) ms *= 2;
  ms = std::min<std::int64_t>(ms, max_ms);
  const auto half = static_cast<std::uint32_t>(ms / 2);
  return static_cast<int>(ms - half +
                          rng.uniform(0, half > 0 ? half : 0));
}

}  // namespace netd::util
