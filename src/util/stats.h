// Small statistics toolkit used by the experiment harness: empirical CDFs
// (the shape every figure in the paper is reported in), means, and
// percentiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace netd::util {

/// Accumulates samples and reports empirical-distribution queries.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 with < 2 samples.
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean: stddev / sqrt(n).
  [[nodiscard]] double stderr_mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// q in [0,1]; nearest-rank percentile. Requires at least one sample.
  [[nodiscard]] double percentile(double q) const;
  /// Fraction of samples <= x (the empirical CDF evaluated at x).
  [[nodiscard]] double cdf_at(double x) const;
  /// Fraction of samples >= x.
  [[nodiscard]] double frac_at_least(double x) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Fixed-memory counting histogram with exponentially growing bucket
/// edges, built for service latency metrics: O(1) add, no per-sample
/// storage (a Summary keeps every sample and would grow unbounded in a
/// long-lived server), mergeable across threads, and percentile upper
/// bounds good to one bucket width.
///
/// Bucket i (0-based) counts samples in (lo*growth^(i-1), lo*growth^i];
/// bucket 0 counts everything <= lo, and one overflow bucket catches the
/// rest. Defaults cover 1us..~100s at 2x resolution when samples are in
/// microseconds.
class Histogram {
 public:
  explicit Histogram(double lo = 1.0, double growth = 2.0,
                     std::size_t buckets = 28);

  void add(double x);
  void merge(const Histogram& other);  ///< other must have identical shape

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;  ///< exact; 0 when empty
  [[nodiscard]] double max() const;  ///< exact; 0 when empty
  /// q in [0,1]; nearest-rank sample position, linearly interpolated
  /// within its bucket and clamped to the exact observed [min, max] —
  /// so a quantile that lands in the overflow bucket reports a value
  /// between the last finite edge and max(), never an edge the data
  /// never reached. 0 when empty.
  [[nodiscard]] double percentile(double q) const;

  struct Bucket {
    double upper = 0.0;  ///< inclusive upper edge; +inf for overflow
    std::uint64_t count = 0;
  };
  /// Non-empty buckets, in increasing edge order.
  [[nodiscard]] std::vector<Bucket> nonzero_buckets() const;

 private:
  double lo_;
  double growth_;
  std::vector<std::uint64_t> counts_;  ///< buckets + trailing overflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One point of an empirical CDF: P(X <= value) = cum_prob.
struct CdfPoint {
  double value = 0.0;
  double cum_prob = 0.0;
};

/// Full empirical CDF of the samples (one point per distinct value).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::vector<double> samples);

/// CDF evaluated on a fixed grid of `bins`+1 points spanning [lo, hi];
/// convenient for printing comparable series across algorithms.
[[nodiscard]] std::vector<CdfPoint> cdf_on_grid(const std::vector<double>& samples,
                                                double lo, double hi,
                                                std::size_t bins);

}  // namespace netd::util
