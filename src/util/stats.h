// Small statistics toolkit used by the experiment harness: empirical CDFs
// (the shape every figure in the paper is reported in), means, and
// percentiles.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace netd::util {

/// Accumulates samples and reports empirical-distribution queries.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 with < 2 samples.
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean: stddev / sqrt(n).
  [[nodiscard]] double stderr_mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// q in [0,1]; nearest-rank percentile. Requires at least one sample.
  [[nodiscard]] double percentile(double q) const;
  /// Fraction of samples <= x (the empirical CDF evaluated at x).
  [[nodiscard]] double cdf_at(double x) const;
  /// Fraction of samples >= x.
  [[nodiscard]] double frac_at_least(double x) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// One point of an empirical CDF: P(X <= value) = cum_prob.
struct CdfPoint {
  double value = 0.0;
  double cum_prob = 0.0;
};

/// Full empirical CDF of the samples (one point per distinct value).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(std::vector<double> samples);

/// CDF evaluated on a fixed grid of `bins`+1 points spanning [lo, hi];
/// convenient for printing comparable series across algorithms.
[[nodiscard]] std::vector<CdfPoint> cdf_on_grid(const std::vector<double>& samples,
                                                double lo, double hi,
                                                std::size_t bins);

}  // namespace netd::util
