#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace netd::util {

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(std::max<std::size_t>(1, num_threads));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, num_threads); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) batch_done_.notify_all();
    }
  }
}

}  // namespace netd::util
