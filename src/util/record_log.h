// CRC-framed append-only record log: the shared on-disk framing of every
// durable log in the system (the agent spool, the service's per-session
// write-ahead journal).
//
// A log file is a concatenation of records, little-endian, 20-byte header
// + payload:
//
//   u32 magic   0x4e445350 ("NDSP")
//   u32 len     payload bytes (capped at kMaxRecordBytes)
//   u64 seq     the record's sequence number (> 0, strictly increasing
//               within one file)
//   u32 crc     CRC32 (IEEE) over the 8 seq bytes + payload
//
// scan() classifies a file's bytes the way every consumer's recovery path
// must: a record cut off by the end of the file is a *torn tail* (the
// writer died mid-append — truncate back to good_bytes and resume), while
// bad magic, an oversized length, a CRC mismatch, a zero or non-increasing
// seq is *corruption* the append path cannot produce (quarantine the
// file, never silently skip or delete). The distinction is what lets a
// SIGKILL at any instant lose at most the record being written while disk
// rot still gets surfaced loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace netd::util {

/// CRC32 (IEEE 802.3, reflected, init/final 0xffffffff) — the framing
/// checksum. Chain calls by passing the previous return value as `seed`.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len,
                                  std::uint32_t seed = 0);

namespace record_log {

inline constexpr std::uint32_t kMagic = 0x4e445350u;  // "NDSP"
inline constexpr std::size_t kHeaderBytes = 20;
/// Hard cap on one record's payload; larger appends are refused and a
/// larger length field in a header is treated as corruption.
inline constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

// Little-endian field helpers (shared so writers and scanners cannot
// disagree on byte order).
void put_u32(char* p, std::uint32_t v);
void put_u64(char* p, std::uint64_t v);
[[nodiscard]] std::uint32_t get_u32(const char* p);
[[nodiscard]] std::uint64_t get_u64(const char* p);

/// The framing checksum of one record: CRC32 over the seq bytes then the
/// payload, so a header spliced onto the wrong payload never verifies.
[[nodiscard]] std::uint32_t record_crc(std::uint64_t seq,
                                       std::string_view payload);

/// One fully framed record (header + payload), ready to append. The
/// caller owns seq assignment; payload must be <= kMaxRecordBytes.
[[nodiscard]] std::string encode_record(std::uint64_t seq,
                                        std::string_view payload);

/// Outcome of walking one file's bytes record by record.
struct Scan {
  enum class Verdict {
    kClean,     ///< every byte accounted for
    kTornTail,  ///< complete records, then a record cut off by the end
    kCorrupt,   ///< bad magic / CRC mismatch / seq went backwards
  };
  Verdict verdict = Verdict::kClean;
  std::uint64_t good_bytes = 0;  ///< offset of the first untrusted byte
  std::size_t records = 0;
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
};

[[nodiscard]] Scan scan(std::string_view bytes);

/// Streams every valid record in `bytes` (stops at the first byte scan()
/// would distrust). `fn` returns false to stop early.
void for_each(std::string_view bytes,
              const std::function<bool(std::uint64_t seq,
                                       std::string_view payload)>& fn);

/// EINTR-safe full write; false on any other write error (a partial
/// write is exactly what a scan's torn-tail verdict repairs).
[[nodiscard]] bool write_all_fd(int fd, const char* data, std::size_t len);

}  // namespace record_log
}  // namespace netd::util
