#include "util/flags.h"

#include <cstdlib>

namespace netd::util {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      f.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      f.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      f.values_[body] = argv[++i];
    } else {
      f.values_[body] = "true";
    }
  }
  return f;
}

std::string Flags::get(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long long Flags::get_int(const std::string& name, long long def) {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    errors_.push_back("flag --" + name + " expects an integer, got '" +
                      it->second + "'");
    return def;
  }
  return v;
}

std::size_t Flags::get_uint(const std::string& name, std::size_t def) {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    errors_.push_back("flag --" + name + " expects a non-negative integer, "
                      "got '" + it->second + "'");
    return def;
  }
  if (v < 0) {
    errors_.push_back("flag --" + name + " must be non-negative, got '" +
                      it->second + "'");
    return def;
  }
  return static_cast<std::size_t>(v);
}

double Flags::get_double(const std::string& name, double def) {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    errors_.push_back("flag --" + name + " expects a number, got '" +
                      it->second + "'");
    return def;
  }
  return v;
}

bool Flags::get_bool(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  return it->second != "false" && it->second != "0";
}

void Flags::allow(const std::vector<std::string>& known) {
  for (const auto& [name, _] : values_) {
    bool found = false;
    for (const auto& k : known) found = found || k == name;
    if (!found) errors_.push_back("unknown flag --" + name);
  }
}

}  // namespace netd::util
