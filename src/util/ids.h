// Strong integer id types.
//
// The simulator juggles many kinds of small integer identifiers (routers,
// ASes, links, paths, prefixes). Mixing them up compiles fine with plain
// ints, so each gets its own strong type. Ids are trivially copyable,
// ordered, hashable and printable; an id is "valid" unless it carries the
// sentinel value.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace netd::util {

/// Strong typedef over a 32-bit index. `Tag` distinguishes unrelated id
/// spaces at compile time; `kInvalid` is the sentinel for "no id".
template <typename Tag>
class Id {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Id a, Id b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(Id a, Id b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.v_ >= b.v_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.v_;
  }

 private:
  std::uint32_t v_ = kInvalid;
};

}  // namespace netd::util

namespace std {
template <typename Tag>
struct hash<netd::util::Id<Tag>> {
  size_t operator()(netd::util::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
