// Packed 64-bit bitset rows for the solver's coverage kernel.
//
// BitMatrix is a reserve-once arena of fixed-width rows (one contiguous
// allocation, rows addressed by index) so a path×link incidence structure
// of tens of thousands of rows costs one allocation and scans run
// word-parallel: scoring is AND + popcount over whole 64-bit words,
// elimination clears single columns in place. BitVec is the same packed
// layout for a single row (the "still unexplained" masks).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace netd::util {

/// Number of 64-bit words needed for `bits` bits.
[[nodiscard]] constexpr std::size_t bitset_words(std::size_t bits) {
  return (bits + 63) / 64;
}

/// One packed bitset (row) over a fixed universe of bits.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t bits)
      : bits_(bits), words_(bitset_words(bits), 0) {}

  [[nodiscard]] std::size_t size() const { return bits_; }
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void clear(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void fill_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  [[nodiscard]] const std::uint64_t* data() const { return words_.data(); }
  [[nodiscard]] std::uint64_t* data() { return words_.data(); }

 private:
  /// Zeroes the unused tail bits of the last word so count() stays exact.
  void trim() {
    if (bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << (bits_ % 64)) - 1;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Fixed-width rows over one contiguous word arena.
class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(std::size_t rows, std::size_t bits)
      : rows_(rows),
        bits_(bits),
        width_(bitset_words(bits)),
        words_(rows * bitset_words(bits), 0) {}

  [[nodiscard]] std::size_t num_rows() const { return rows_; }
  [[nodiscard]] std::size_t row_bits() const { return bits_; }
  [[nodiscard]] std::size_t row_words() const { return width_; }

  [[nodiscard]] const std::uint64_t* row(std::size_t r) const {
    return words_.data() + r * width_;
  }
  [[nodiscard]] std::uint64_t* row(std::size_t r) {
    return words_.data() + r * width_;
  }

  void set(std::size_t r, std::size_t bit) {
    row(r)[bit >> 6] |= (std::uint64_t{1} << (bit & 63));
  }
  [[nodiscard]] bool test(std::size_t r, std::size_t bit) const {
    return (row(r)[bit >> 6] >> (bit & 63)) & 1;
  }

  /// popcount(row(r) & mask). `mask` must have row_words() words.
  [[nodiscard]] std::size_t and_count(std::size_t r,
                                      const std::uint64_t* mask) const {
    const std::uint64_t* w = row(r);
    std::size_t n = 0;
    for (std::size_t i = 0; i < width_; ++i) n += std::popcount(w[i] & mask[i]);
    return n;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t bits_ = 0;
  std::size_t width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace netd::util
