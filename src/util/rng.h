// Deterministic random source for simulations.
//
// Every experiment run is seeded explicitly so that any figure in
// EXPERIMENTS.md can be regenerated bit-for-bit. The wrapper exposes the
// handful of draws the simulator needs (uniform ints/reals, Bernoulli,
// shuffles, sampling without replacement) over a single mt19937_64.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace netd::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::uint32_t uniform(std::uint32_t lo, std::uint32_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[uniform(0, static_cast<std::uint32_t>(v.size()) - 1)];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// k distinct elements drawn uniformly from v (k <= v.size()).
  template <typename T>
  [[nodiscard]] std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    assert(k <= v.size());
    std::vector<T> pool = v;
    shuffle(pool);
    pool.resize(k);
    return pool;
  }

  /// Derive an independent child seed; used to give each simulation run
  /// its own stream while staying reproducible from one root seed.
  [[nodiscard]] std::uint64_t fork() { return engine_(); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace netd::util
