#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace netd::util {

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double x : samples_) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Summary::stderr_mean() const {
  if (samples_.empty()) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

double Summary::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double q) const {
  assert(!samples_.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double Summary::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto n = static_cast<double>(
      std::count_if(samples_.begin(), samples_.end(),
                    [x](double s) { return s <= x; }));
  return n / static_cast<double>(samples_.size());
}

double Summary::frac_at_least(double x) const {
  if (samples_.empty()) return 0.0;
  const auto n = static_cast<double>(
      std::count_if(samples_.begin(), samples_.end(),
                    [x](double s) { return s >= x; }));
  return n / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double growth, std::size_t buckets)
    : lo_(lo), growth_(growth), counts_(buckets + 1, 0) {
  assert(lo > 0.0 && growth > 1.0 && buckets > 0);
}

void Histogram::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  std::size_t i = 0;
  double upper = lo_;
  while (x > upper && i + 1 < counts_.size()) {
    upper *= growth_;
    ++i;
  }
  ++counts_[i];
}

void Histogram::merge(const Histogram& other) {
  assert(other.lo_ == lo_ && other.growth_ == growth_ &&
         other.counts_.size() == counts_.size());
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  double lower = 0.0;
  double upper = lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i];
    if (in_bucket != 0 && seen + in_bucket >= rank) {
      // Linear interpolation within the bucket, treating its samples as
      // evenly spread over (lower, upper]. The overflow bucket has no
      // finite edge, so the exact max bounds it instead of an edge one
      // growth factor out; either way the result is clamped to the
      // exact observed [min, max] so a one-sample bucket never reports
      // a value outside what was recorded.
      const double hi = i + 1 == counts_.size() ? max_ : upper;
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(in_bucket);
      const double x = lower + (hi - lower) * frac;
      return std::min(std::max(x, min_), max_);
    }
    seen += in_bucket;
    lower = upper;
    upper *= growth_;
  }
  return max_;
}

std::vector<Histogram::Bucket> Histogram::nonzero_buckets() const {
  std::vector<Bucket> out;
  double upper = lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      out.push_back({i + 1 == counts_.size()
                         ? std::numeric_limits<double>::infinity()
                         : upper,
                     counts_[i]});
    }
    upper *= growth_;
  }
  return out;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Collapse runs of equal values into their final cumulative probability.
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    out.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<CdfPoint> cdf_on_grid(const std::vector<double>& samples,
                                  double lo, double hi, std::size_t bins) {
  assert(bins > 0 && hi > lo);
  Summary s;
  s.add_all(samples);
  std::vector<CdfPoint> out;
  out.reserve(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(bins);
    out.push_back({x, s.cdf_at(x)});
  }
  return out;
}

}  // namespace netd::util
