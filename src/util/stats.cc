#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace netd::util {

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double x : samples_) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Summary::stderr_mean() const {
  if (samples_.empty()) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

double Summary::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double q) const {
  assert(!samples_.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double Summary::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto n = static_cast<double>(
      std::count_if(samples_.begin(), samples_.end(),
                    [x](double s) { return s <= x; }));
  return n / static_cast<double>(samples_.size());
}

double Summary::frac_at_least(double x) const {
  if (samples_.empty()) return 0.0;
  const auto n = static_cast<double>(
      std::count_if(samples_.begin(), samples_.end(),
                    [x](double s) { return s >= x; }));
  return n / static_cast<double>(samples_.size());
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Collapse runs of equal values into their final cumulative probability.
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    out.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<CdfPoint> cdf_on_grid(const std::vector<double>& samples,
                                  double lo, double hi, std::size_t bins) {
  assert(bins > 0 && hi > lo);
  Summary s;
  s.add_all(samples);
  std::vector<CdfPoint> out;
  out.reserve(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(bins);
    out.push_back({x, s.cdf_at(x)});
  }
  return out;
}

}  // namespace netd::util
