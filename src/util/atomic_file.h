// Crash-safe file primitives for checkpoint/resume machinery.
//
// atomic_write_file() implements the classic write-temp → fsync → rename
// → fsync-directory dance: after it returns true, the file at `path`
// contains either the previous contents or the new contents in full —
// never a torn mixture — even across SIGKILL or power loss. Readers that
// open `path` concurrently always see one complete version (rename(2) is
// atomic), which is what lets a live daemon poll a campaign checkpoint
// that another process is rewriting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace netd::util {

/// Atomically replaces `path` with `contents`. Writes `path` + a unique
/// suffix, fsyncs, renames over `path`, then fsyncs the parent directory
/// so the rename itself is durable. False (with `error`) on any failure;
/// the temp file is unlinked on the error paths.
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     const std::string& contents,
                                     std::string* error = nullptr);

/// Slurps a file. std::nullopt (with `error`) when it cannot be opened or
/// read.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path,
                                                   std::string* error = nullptr);

/// Size in bytes, or std::nullopt when `path` does not exist / stat fails.
[[nodiscard]] std::optional<std::uint64_t> file_size(const std::string& path);

/// Truncates `path` to exactly `size` bytes and fsyncs it. Used on resume
/// to drop bytes written after the last durable checkpoint commit (e.g. a
/// partial trailing trace line). False (with `error`) on failure.
[[nodiscard]] bool truncate_file(const std::string& path, std::uint64_t size,
                                 std::string* error = nullptr);

/// fsyncs an existing file by path (flush-to-disk barrier before a
/// checkpoint that references its length is committed).
[[nodiscard]] bool fsync_file(const std::string& path,
                              std::string* error = nullptr);

/// Crash recovery for atomic_write_file: removes every leftover
/// "<basename>.tmp.<pid>" temp file a crashed writer left beside `path`.
/// Such a file is by definition incomplete (the writer died before the
/// rename), so deleting it is always safe — `path` itself still holds the
/// last fully committed version. Returns the number of temp files
/// removed. Callers that own a whole directory of atomic files (e.g. the
/// agent spool manifest) run this once on startup before trusting the
/// directory's contents.
std::size_t remove_stale_temps(const std::string& path);

}  // namespace netd::util
