// Fixed-width table printer for bench output. Each figure-reproduction
// binary prints its series as an aligned table (and optionally CSV) so the
// paper's plots can be regenerated from stdout.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace netd::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; values are formatted with `precision` decimal places.
  void add_row(const std::vector<double>& values);
  /// Append a row with an arbitrary string in the first column.
  void add_row(const std::string& label, const std::vector<double>& values);

  void set_precision(int p) { precision_ = p; }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 3;

  [[nodiscard]] std::string fmt(double v) const;
};

}  // namespace netd::util
