#include "util/atomic_file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace netd::util {

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
  return false;
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& contents,
                       std::string* error) {
  // The temp name carries the pid so two writers cannot collide; the loser
  // of a concurrent rename race still leaves a complete file at `path`.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail(error, "open " + tmp);
  if (!write_all(fd, contents.data(), contents.size())) {
    fail(error, "write " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    fail(error, "fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    fail(error, "close " + tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    fail(error, "rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename durable: fsync the containing directory. Some
  // filesystems refuse O_RDONLY fsync on directories; treat open failure
  // as best-effort rather than data loss (the data file itself is synced).
  const int dfd = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path,
                                     std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail(error, "open " + path);
    return std::nullopt;
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(error, "read " + path);
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::optional<std::uint64_t> file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  return static_cast<std::uint64_t>(st.st_size);
}

bool truncate_file(const std::string& path, std::uint64_t size,
                   std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return fail(error, "open " + path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    fail(error, "ftruncate " + path);
    ::close(fd);
    return false;
  }
  if (::fsync(fd) != 0) {
    fail(error, "fsync " + path);
    ::close(fd);
    return false;
  }
  ::close(fd);
  return true;
}

std::size_t remove_stale_temps(const std::string& path) {
  const std::string dir = parent_dir(path);
  const auto slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::string prefix = base + ".tmp.";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::size_t removed = 0;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    // Only pid suffixes qualify — never delete an unrelated file that
    // merely contains ".tmp." in its name.
    if (name.find_first_not_of("0123456789", prefix.size()) !=
        std::string::npos) {
      continue;
    }
    if (::unlink((dir + "/" + name).c_str()) == 0) ++removed;
  }
  ::closedir(d);
  return removed;
}

bool fsync_file(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return fail(error, "open " + path);
  const bool ok = ::fsync(fd) == 0;
  if (!ok) fail(error, "fsync " + path);
  ::close(fd);
  return ok;
}

}  // namespace netd::util
