// Thin POSIX socket layer for the diagnosis service: address parsing,
// RAII descriptors, listen/connect helpers and bounded line-framed IO.
//
// Only what the server and client need — blocking IO, TCP (IPv4 loopback
// or address) and Unix-domain stream sockets. The LineReader enforces the
// frame-size cap at the transport so a hostile peer cannot balloon memory
// before the JSON parser ever runs.
//
// Every blocking primitive takes an optional deadline (milliseconds; < 0
// blocks forever) implemented with poll(2), so a stalled peer costs a
// bounded amount of wall clock instead of pinning the calling thread:
// connect_to gives up on unanswered handshakes, write_all on full send
// buffers, and LineReader::read_line treats its timeout as a total budget
// for delivering one complete frame — a peer dripping one byte per poll
// interval cannot hold a reader hostage.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace netd::svc {

/// A service address: "unix:/path/to.sock", "host:port", or ":port"
/// (binds/connects on 127.0.0.1). Port 0 asks the kernel for a free port
/// (the bound port is readable off the listening Fd).
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";
  int port = 0;
  std::string path;  ///< kUnix only

  [[nodiscard]] static std::optional<Endpoint> parse(const std::string& spec,
                                                     std::string* error);
  [[nodiscard]] std::string to_string() const;
};

/// Owning file descriptor (move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release();
  void reset();

 private:
  int fd_ = -1;
};

/// Binds + listens. On TCP with port 0 the chosen port is returned via
/// `bound_port`. A unix path that already exists is probed first: if a
/// server still answers on it the bind is refused (never clobber a live
/// daemon), while a stale file left by a killed process (connect refused)
/// is unlinked and reclaimed.
[[nodiscard]] Fd listen_on(const Endpoint& ep, std::string* error,
                           int* bound_port = nullptr);

/// Connect with a deadline. timeout_ms < 0 blocks forever; otherwise an
/// unanswered handshake fails with a "timed out" error after roughly
/// timeout_ms. The returned descriptor is in blocking mode.
[[nodiscard]] Fd connect_to(const Endpoint& ep, std::string* error,
                            int timeout_ms = -1);

/// Writes all of `data`, retrying on short writes/EINTR. timeout_ms is a
/// total budget for the whole buffer (< 0 = block forever). False on
/// error or deadline exhaustion.
[[nodiscard]] bool write_all(int fd, std::string_view data,
                             int timeout_ms = -1);

/// Reads newline-terminated frames off a socket with a hard size cap.
class LineReader {
 public:
  explicit LineReader(int fd, std::size_t max_line) : fd_(fd), max_(max_line) {}

  enum class Status { kLine, kEof, kOversize, kError, kTimeout };

  /// Per-call deadline for read_line: the total budget, in milliseconds,
  /// for one complete frame to arrive (< 0 = block forever, the default).
  /// On kTimeout any partial frame stays buffered, so a later call may
  /// still complete it.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

  /// Blocks for the next frame. The returned line excludes the '\n'.
  /// kOversize means the peer sent more than max_line bytes without a
  /// newline — the stream cannot be resynchronized and must be closed.
  Status read_line(std::string* out);

 private:
  int fd_;
  std::size_t max_;
  int timeout_ms_ = -1;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace netd::svc
