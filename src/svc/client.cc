#include "svc/client.h"

namespace netd::svc {

Client::Client(Fd fd) : fd_(std::move(fd)), reader_(fd_.get(), kMaxFrameBytes) {}

std::optional<Client> Client::connect(const Endpoint& ep, std::string* error) {
  Fd fd = connect_to(ep, error);
  if (!fd.valid()) return std::nullopt;
  return Client(std::move(fd));
}

std::optional<std::string> Client::call_raw(const std::string& frame,
                                            std::string* error) {
  if (!fd_.valid()) {
    if (error != nullptr) *error = "client is closed";
    return std::nullopt;
  }
  if (!write_all(fd_.get(), frame + "\n")) {
    if (error != nullptr) *error = "write failed (server gone?)";
    return std::nullopt;
  }
  std::string line;
  switch (reader_.read_line(&line)) {
    case LineReader::Status::kLine:
      return line;
    case LineReader::Status::kEof:
      if (error != nullptr) *error = "server closed the connection";
      return std::nullopt;
    case LineReader::Status::kOversize:
      if (error != nullptr) *error = "response exceeds frame size cap";
      return std::nullopt;
    case LineReader::Status::kError:
      if (error != nullptr) *error = "read failed";
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Response> Client::call(const Request& req, std::string* error) {
  const auto line = call_raw(serialize(req), error);
  if (!line.has_value()) return std::nullopt;
  auto rsp = parse_response(*line, error);
  if (!rsp.has_value()) return std::nullopt;
  return rsp;
}

void Client::close() { fd_.reset(); }

}  // namespace netd::svc
