#include "svc/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/backoff.h"

namespace netd::svc {

Client::Client(const Endpoint& ep, const Options& opts, Fd fd)
    : ep_(ep), opts_(opts), fd_(std::move(fd)), rng_(opts.seed) {
  if (fd_.valid()) reader_.emplace(fd_.get(), kMaxFrameBytes);
  if (opts_.fault_plan.enabled()) {
    injector_ = std::make_unique<FaultInjector>(opts_.fault_plan);
  }
}

std::optional<Client> Client::connect(const Endpoint& ep, std::string* error) {
  return connect(ep, Options{}, error);
}

std::optional<Client> Client::connect(const Endpoint& ep, const Options& opts,
                                      std::string* error) {
  Client c(ep, opts, Fd());
  if (!c.ensure_connected(error)) return std::nullopt;
  return c;
}

bool Client::ensure_connected(std::string* error) {
  if (fd_.valid()) return true;
  std::string last;
  for (std::size_t attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    if (attempt > 0) backoff(attempt);
    last.clear();
    Fd fd = connect_to(ep_, &last, opts_.connect_timeout_ms);
    if (fd.valid()) {
      fd_ = std::move(fd);
      reader_.emplace(fd_.get(), kMaxFrameBytes);
      return true;
    }
  }
  last_error_kind_ = ErrorKind::kConnectRefused;
  if (error != nullptr && error->empty()) *error = last;
  return false;
}

void Client::backoff(std::size_t attempt) {
  const int ms = util::backoff_ms(static_cast<int>(attempt),
                                  opts_.backoff_base_ms, opts_.backoff_max_ms,
                                  rng_);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::optional<std::string> Client::call_raw(const std::string& frame,
                                            std::string* error) {
  last_error_kind_ = ErrorKind::kNone;
  if (!fd_.valid()) {
    if (error != nullptr) *error = "client is closed";
    return std::nullopt;
  }
  if (!write_all(fd_.get(), frame + "\n", opts_.request_timeout_ms)) {
    last_error_kind_ = ErrorKind::kClosedMidFrame;
    if (error != nullptr) *error = "write failed (server gone?)";
    return std::nullopt;
  }
  std::string line;
  reader_->set_timeout_ms(opts_.request_timeout_ms);
  switch (reader_->read_line(&line)) {
    case LineReader::Status::kLine:
      return line;
    case LineReader::Status::kEof:
      last_error_kind_ = ErrorKind::kClosedMidFrame;
      if (error != nullptr) *error = "server closed the connection";
      return std::nullopt;
    case LineReader::Status::kOversize:
      last_error_kind_ = ErrorKind::kProtocol;
      if (error != nullptr) *error = "response exceeds frame size cap";
      return std::nullopt;
    case LineReader::Status::kTimeout:
      last_error_kind_ = ErrorKind::kTimeout;
      if (error != nullptr) *error = "request timed out";
      return std::nullopt;
    case LineReader::Status::kError:
      last_error_kind_ = ErrorKind::kClosedMidFrame;
      if (error != nullptr) *error = "read failed";
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Response> Client::exchange(const std::string& frame,
                                         std::string* error, bool* transport) {
  *transport = true;
  const std::string wire = frame + "\n";
  const bool written =
      injector_ != nullptr
          ? injector_->write_frame(fd_.get(), wire, opts_.request_timeout_ms)
          : write_all(fd_.get(), wire, opts_.request_timeout_ms);
  if (!written) {
    // Either the wire failed or our own chaos injector killed the frame;
    // both leave the stream state unknown.
    last_error_kind_ = ErrorKind::kClosedMidFrame;
    if (error != nullptr && error->empty()) {
      *error = "write failed (server gone?)";
    }
    return std::nullopt;
  }
  std::string line;
  reader_->set_timeout_ms(opts_.request_timeout_ms);
  switch (reader_->read_line(&line)) {
    case LineReader::Status::kLine:
      break;
    case LineReader::Status::kEof:
      // The server took the request but died before answering — unlike a
      // connect refusal the request MAY have been applied; only an
      // idempotent redelivery is safe.
      last_error_kind_ = ErrorKind::kClosedMidFrame;
      if (error != nullptr && error->empty()) {
        *error = "server closed the connection mid-exchange";
      }
      return std::nullopt;
    case LineReader::Status::kOversize:
      last_error_kind_ = ErrorKind::kProtocol;
      if (error != nullptr && error->empty()) {
        *error = "response exceeds frame size cap";
      }
      return std::nullopt;
    case LineReader::Status::kTimeout:
      last_error_kind_ = ErrorKind::kTimeout;
      if (error != nullptr && error->empty()) *error = "request timed out";
      return std::nullopt;
    case LineReader::Status::kError:
      last_error_kind_ = ErrorKind::kClosedMidFrame;
      if (error != nullptr && error->empty()) *error = "read failed";
      return std::nullopt;
  }
  // A response that does not parse means the stream can no longer be
  // trusted (a corrupted or torn frame) — reconnect before retrying.
  auto rsp = parse_response(line, error);
  if (!rsp.has_value()) {
    last_error_kind_ = ErrorKind::kProtocol;
    return std::nullopt;
  }
  *transport = false;
  return rsp;
}

std::optional<Response> Client::call(const Request& req, std::string* error) {
  last_error_kind_ = ErrorKind::kNone;
  Request to_send = req;
  if (opts_.max_retries > 0) {
    // Stamp the observe once, before any attempt: every retry of this
    // logical request reuses the number, which is what lets the server
    // recognize and deduplicate it.
    if (auto* obs = std::get_if<ObserveRequest>(&to_send);
        obs != nullptr && !obs->seq.has_value()) {
      obs->seq = next_seq_++;
    }
  }
  const std::string frame = serialize(to_send);

  std::string last_error;
  for (std::size_t attempt = 0;; ++attempt) {
    const bool last_try = attempt >= opts_.max_retries;
    last_error.clear();
    if (!ensure_connected(&last_error)) {
      if (error != nullptr && error->empty()) *error = last_error;
      return std::nullopt;  // ensure_connected already burned the retries
    }
    bool transport = false;
    auto rsp = exchange(frame, &last_error, &transport);
    if (rsp.has_value()) {
      if (const auto* err = std::get_if<ErrorResponse>(&*rsp);
          err != nullptr && !last_try) {
        if (err->code == kErrOverloaded) {
          const auto wait_ms = static_cast<int>(std::min<std::uint64_t>(
              err->retry_after_ms.value_or(
                  static_cast<std::uint64_t>(opts_.backoff_base_ms)),
              static_cast<std::uint64_t>(opts_.backoff_max_ms)));
          std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
          // Shed connections are closed server-side after the response.
          close();
          continue;
        }
        if (err->code == kErrBadFrame) {
          // The server rejected a mangled frame but answered in order:
          // the stream is still in lockstep, resend on it.
          continue;
        }
      }
      last_error_kind_ = ErrorKind::kNone;  // a failed earlier attempt may
                                            // have set it; the call won
      return rsp;
    }
    if (transport) close();
    if (last_try) {
      if (error != nullptr && error->empty()) *error = last_error;
      return std::nullopt;
    }
    backoff(attempt + 1);
  }
}

void Client::close() {
  fd_.reset();
  reader_.reset();
}

FaultCounters Client::fault_counters() const {
  return injector_ != nullptr ? injector_->counters() : FaultCounters{};
}

}  // namespace netd::svc
