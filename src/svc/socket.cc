#include "svc/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace netd::svc {

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr && error->empty()) {
    *error = what + " (" + std::strerror(errno) + ")";
  }
  return false;
}

}  // namespace

std::optional<Endpoint> Endpoint::parse(const std::string& spec,
                                        std::string* error) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      if (error != nullptr) *error = "empty unix socket path";
      return std::nullopt;
    }
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return std::nullopt;
    }
    return ep;
  }
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    if (error != nullptr) {
      *error = "expected 'unix:PATH', 'host:port' or ':port', got '" + spec +
               "'";
    }
    return std::nullopt;
  }
  ep.kind = Kind::kTcp;
  if (colon != 0) ep.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port.c_str(), &end, 10);
  if (port.empty() || end == nullptr || *end != '\0' || p < 0 || p > 65535) {
    if (error != nullptr) *error = "invalid port '" + port + "'";
    return std::nullopt;
  }
  ep.port = static_cast<int>(p);
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Fd::~Fd() { reset(); }

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

namespace {

bool fill_tcp_addr(const Endpoint& ep, sockaddr_in* addr, std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(ep.port));
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address '" + ep.host + "'";
    return false;
  }
  return true;
}

void fill_unix_addr(const Endpoint& ep, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::strncpy(addr->sun_path, ep.path.c_str(), sizeof(addr->sun_path) - 1);
}

}  // namespace

Fd listen_on(const Endpoint& ep, std::string* error, int* bound_port) {
  if (error != nullptr) error->clear();
  if (ep.kind == Endpoint::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      set_error(error, "socket()");
      return Fd();
    }
    ::unlink(ep.path.c_str());
    sockaddr_un addr;
    fill_unix_addr(ep, &addr);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      set_error(error, "bind(" + ep.path + ")");
      return Fd();
    }
    if (::listen(fd.get(), 64) != 0) {
      set_error(error, "listen(" + ep.path + ")");
      return Fd();
    }
    return fd;
  }

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket()");
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  if (!fill_tcp_addr(ep, &addr, error)) return Fd();
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind(" + ep.to_string() + ")");
    return Fd();
  }
  if (::listen(fd.get(), 64) != 0) {
    set_error(error, "listen(" + ep.to_string() + ")");
    return Fd();
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) ==
        0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return fd;
}

Fd connect_to(const Endpoint& ep, std::string* error) {
  if (error != nullptr) error->clear();
  if (ep.kind == Endpoint::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      set_error(error, "socket()");
      return Fd();
    }
    sockaddr_un addr;
    fill_unix_addr(ep, &addr);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      set_error(error, "connect(" + ep.path + ")");
      return Fd();
    }
    return fd;
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket()");
    return Fd();
  }
  sockaddr_in addr;
  if (!fill_tcp_addr(ep, &addr, error)) return Fd();
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    set_error(error, "connect(" + ep.to_string() + ")");
    return Fd();
  }
  return fd;
}

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

LineReader::Status LineReader::read_line(std::string* out) {
  out->clear();
  while (true) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      // A complete line beyond the cap is just as oversized as an
      // unterminated one — it must not reach the parser.
      if (nl > max_) return Status::kOversize;
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return Status::kLine;
    }
    if (buf_.size() > max_) return Status::kOversize;
    if (eof_) return buf_.empty() ? Status::kEof : Status::kError;
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      // A final unterminated fragment is a framing error, not a frame.
      if (!buf_.empty()) return Status::kError;
      return Status::kEof;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace netd::svc
