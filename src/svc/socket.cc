#include "svc/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace netd::svc {

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr && error->empty()) {
    *error = what + " (" + std::strerror(errno) + ")";
  }
  return false;
}

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped at 0; -1 for "no deadline".
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// poll(2) for `events` with EINTR retries. Returns 1 (ready), 0 (timed
/// out) or -1 (error).
int poll_fd(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  while (true) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc < 0 ? -1 : (rc == 0 ? 0 : 1);
  }
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

}  // namespace

std::optional<Endpoint> Endpoint::parse(const std::string& spec,
                                        std::string* error) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      if (error != nullptr) *error = "empty unix socket path";
      return std::nullopt;
    }
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (error != nullptr) *error = "unix socket path too long";
      return std::nullopt;
    }
    return ep;
  }
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    if (error != nullptr) {
      *error = "expected 'unix:PATH', 'host:port' or ':port', got '" + spec +
               "'";
    }
    return std::nullopt;
  }
  ep.kind = Kind::kTcp;
  if (colon != 0) ep.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port.c_str(), &end, 10);
  if (port.empty() || end == nullptr || *end != '\0' || p < 0 || p > 65535) {
    if (error != nullptr) *error = "invalid port '" + port + "'";
    return std::nullopt;
  }
  ep.port = static_cast<int>(p);
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Fd::~Fd() { reset(); }

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

namespace {

bool fill_tcp_addr(const Endpoint& ep, sockaddr_in* addr, std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(ep.port));
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address '" + ep.host + "'";
    return false;
  }
  return true;
}

void fill_unix_addr(const Endpoint& ep, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::strncpy(addr->sun_path, ep.path.c_str(), sizeof(addr->sun_path) - 1);
}

/// True when a socket file at `path` is stale: nothing accepts on it
/// anymore (connect refused / no such socket), so a new server may unlink
/// and reclaim the path. A live server answering the probe returns false.
bool unix_socket_is_stale(const Endpoint& ep) {
  Fd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!probe.valid()) return false;
  sockaddr_un addr;
  fill_unix_addr(ep, &addr);
  if (::connect(probe.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    return false;  // someone is serving; leave the path alone
  }
  return errno == ECONNREFUSED || errno == ENOENT;
}

}  // namespace

Fd listen_on(const Endpoint& ep, std::string* error, int* bound_port) {
  if (error != nullptr) error->clear();
  if (ep.kind == Endpoint::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      set_error(error, "socket()");
      return Fd();
    }
    sockaddr_un addr;
    fill_unix_addr(ep, &addr);
    int rc =
        ::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EADDRINUSE) {
      // A leftover path from a killed server must not block restarts, but
      // a path a live server still answers on must never be clobbered.
      if (!unix_socket_is_stale(ep)) {
        if (error != nullptr) {
          *error = "bind(" + ep.path + "): a live server is already "
                   "listening on this path";
        }
        return Fd();
      }
      ::unlink(ep.path.c_str());
      rc = ::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    }
    if (rc != 0) {
      set_error(error, "bind(" + ep.path + ")");
      return Fd();
    }
    if (::listen(fd.get(), 64) != 0) {
      set_error(error, "listen(" + ep.path + ")");
      return Fd();
    }
    return fd;
  }

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket()");
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  if (!fill_tcp_addr(ep, &addr, error)) return Fd();
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind(" + ep.to_string() + ")");
    return Fd();
  }
  if (::listen(fd.get(), 64) != 0) {
    set_error(error, "listen(" + ep.to_string() + ")");
    return Fd();
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) ==
        0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return fd;
}

namespace {

/// Shared timeout-aware connect: non-blocking connect + poll for
/// writability + SO_ERROR check, then back to blocking mode.
Fd finish_connect(Fd fd, const sockaddr* addr, socklen_t len,
                  const std::string& where, std::string* error,
                  int timeout_ms) {
  if (timeout_ms < 0) {
    if (::connect(fd.get(), addr, len) != 0) {
      set_error(error, "connect(" + where + ")");
      return Fd();
    }
    return fd;
  }
  if (!set_nonblocking(fd.get(), true)) {
    set_error(error, "fcntl(" + where + ")");
    return Fd();
  }
  if (::connect(fd.get(), addr, len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      set_error(error, "connect(" + where + ")");
      return Fd();
    }
    const int rc = poll_fd(fd.get(), POLLOUT, timeout_ms);
    if (rc == 0) {
      if (error != nullptr && error->empty()) {
        *error = "connect(" + where + ") timed out after " +
                 std::to_string(timeout_ms) + " ms";
      }
      return Fd();
    }
    if (rc < 0) {
      set_error(error, "poll(" + where + ")");
      return Fd();
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &so_len) !=
            0 ||
        so_error != 0) {
      errno = so_error != 0 ? so_error : errno;
      set_error(error, "connect(" + where + ")");
      return Fd();
    }
  }
  if (!set_nonblocking(fd.get(), false)) {
    set_error(error, "fcntl(" + where + ")");
    return Fd();
  }
  return fd;
}

}  // namespace

Fd connect_to(const Endpoint& ep, std::string* error, int timeout_ms) {
  if (error != nullptr) error->clear();
  if (ep.kind == Endpoint::Kind::kUnix) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      set_error(error, "socket()");
      return Fd();
    }
    sockaddr_un addr;
    fill_unix_addr(ep, &addr);
    return finish_connect(std::move(fd), reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr), ep.path, error, timeout_ms);
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, "socket()");
    return Fd();
  }
  sockaddr_in addr;
  if (!fill_tcp_addr(ep, &addr, error)) return Fd();
  return finish_connect(std::move(fd), reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr), ep.to_string(), error, timeout_ms);
}

bool write_all(int fd, std::string_view data, int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!data.empty()) {
    const int flags =
        MSG_NOSIGNAL | (has_deadline ? MSG_DONTWAIT : 0);
    const ssize_t n = ::send(fd, data.data(), data.size(), flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (has_deadline && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        const int left = remaining_ms(true, deadline);
        if (left == 0 || poll_fd(fd, POLLOUT, left) != 1) return false;
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

LineReader::Status LineReader::read_line(std::string* out) {
  out->clear();
  const bool has_deadline = timeout_ms_ >= 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms_);
  while (true) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      // A complete line beyond the cap is just as oversized as an
      // unterminated one — it must not reach the parser.
      if (nl > max_) return Status::kOversize;
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return Status::kLine;
    }
    if (buf_.size() > max_) return Status::kOversize;
    if (eof_) return buf_.empty() ? Status::kEof : Status::kError;
    if (has_deadline) {
      // The timeout is a budget for the whole frame: trickling bytes do
      // not extend it, so drip-feeding peers still hit the deadline.
      const int left = remaining_ms(true, deadline);
      const int rc = left == 0 ? 0 : poll_fd(fd_, POLLIN, left);
      if (rc == 0) return Status::kTimeout;
      if (rc < 0) return Status::kError;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      // A final unterminated fragment is a framing error, not a frame.
      if (!buf_.empty()) return Status::kError;
      return Status::kEof;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace netd::svc
