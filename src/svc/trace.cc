#include "svc/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "core/json_export.h"

namespace netd::svc {

namespace {

Json record_header(const char* type) {
  Json j = Json::object();
  j.set("v", Json::integer(kProtocolVersion));
  j.set("type", Json::string(type));
  return j;
}

}  // namespace

TraceRecorder::TraceRecorder(std::ostream& os, const SessionConfig& config,
                             bool emit_config)
    : os_(os) {
  if (!emit_config) return;
  Json j = record_header("config");
  j.set("config", session_config_to_json(config));
  os_ << j.dump() << "\n";
}

void TraceRecorder::baseline(const probe::Mesh& mesh) {
  round_ = 0;
  Json j = record_header("baseline");
  j.set("mesh", mesh_to_json(mesh));
  os_ << j.dump() << "\n";
}

void TraceRecorder::round(const probe::Mesh& mesh,
                          const core::ControlPlaneObs* cp) {
  ++round_;
  Json j = record_header("round");
  j.set("mesh", mesh_to_json(mesh));
  if (cp != nullptr) j.set("cp", cp_to_json(*cp));
  os_ << j.dump() << "\n";
}

void TraceRecorder::diagnosis(const core::AlgorithmOutput& out) {
  diagnosis_text(core::to_json(out.graph, out.result));
}

void TraceRecorder::diagnosis_text(const std::string& doc) {
  Json j = record_header("diagnosis");
  j.set("round", Json::uinteger(round_));
  j.set("diagnosis", Json::raw(doc));
  os_ << j.dump() << "\n";
}

std::optional<std::vector<TraceRecord>> read_trace(std::istream& is,
                                                   std::string* error) {
  auto fail = [error](std::size_t line_no, const std::string& what) {
    if (error != nullptr) {
      *error = "trace line " + std::to_string(line_no) + ": " + what;
    }
    return std::nullopt;
  };

  std::vector<TraceRecord> out;
  std::string line;
  std::size_t line_no = 0;
  bool have_baseline = false;
  std::size_t round_in_episode = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string parse_error;
    const auto j = Json::parse(line, &parse_error);
    if (!j || !j->is_object()) {
      return fail(line_no, parse_error.empty() ? "not a JSON object"
                                               : parse_error);
    }
    const Json* v = j->find("v");
    if (v == nullptr || !v->is_number() || v->as_int() != kProtocolVersion) {
      return fail(line_no, "missing or unsupported version");
    }
    const Json* type = j->find("type");
    if (type == nullptr || !type->is_string()) {
      return fail(line_no, "missing record type");
    }
    const std::string& name = type->as_string();
    TraceRecord rec;
    if (name == "config") {
      if (!out.empty()) return fail(line_no, "config must be the first record");
      const Json* cfg = j->find("config");
      if (cfg == nullptr) return fail(line_no, "missing config");
      auto parsed = session_config_from_json(*cfg, &parse_error);
      if (!parsed) return fail(line_no, parse_error);
      rec.type = TraceRecord::Type::kConfig;
      rec.config = std::move(*parsed);
    } else if (name == "baseline" || name == "round") {
      if (out.empty()) return fail(line_no, "config record must come first");
      const Json* mesh = j->find("mesh");
      if (mesh == nullptr) return fail(line_no, "missing mesh");
      auto parsed = mesh_from_json(*mesh, &parse_error);
      if (!parsed) return fail(line_no, parse_error);
      rec.mesh = std::move(*parsed);
      if (name == "baseline") {
        rec.type = TraceRecord::Type::kBaseline;
        have_baseline = true;
        round_in_episode = 0;
      } else {
        if (!have_baseline) return fail(line_no, "round before baseline");
        rec.type = TraceRecord::Type::kRound;
        ++round_in_episode;
        if (const Json* cp = j->find("cp"); cp != nullptr) {
          auto obs = cp_from_json(*cp, &parse_error);
          if (!obs) return fail(line_no, parse_error);
          rec.cp = std::move(*obs);
        }
      }
    } else if (name == "diagnosis") {
      if (round_in_episode == 0) {
        return fail(line_no, "diagnosis before any round");
      }
      const Json* round = j->find("round");
      const Json* doc = j->find("diagnosis");
      if (round == nullptr || !round->is_number() || doc == nullptr ||
          !doc->is_object()) {
        return fail(line_no, "diagnosis needs round + diagnosis object");
      }
      if (round->as_int() < 0 ||
          static_cast<std::size_t>(round->as_int()) != round_in_episode) {
        return fail(line_no, "diagnosis round does not match the stream");
      }
      rec.type = TraceRecord::Type::kDiagnosis;
      rec.round = round_in_episode;
      rec.diagnosis = doc->dump();
    } else {
      return fail(line_no, "unknown record type '" + name + "'");
    }
    out.push_back(std::move(rec));
  }
  if (out.empty()) return fail(0, "empty trace");
  if (out.front().type != TraceRecord::Type::kConfig) {
    return fail(1, "first record must be config");
  }
  return out;
}

namespace {

/// One diagnosis event, positioned by (episode ordinal, round in episode).
struct DiagEvent {
  std::size_t episode = 0;
  std::size_t round = 0;
  std::string doc;
};

std::string where(const DiagEvent& e) {
  return "episode " + std::to_string(e.episode) + " round " +
         std::to_string(e.round);
}

/// Folds the recorded and replayed diagnosis streams into mismatches.
void compare_events(const std::vector<DiagEvent>& recorded,
                    const std::vector<DiagEvent>& produced,
                    ReplayResult* result) {
  const std::size_t n = std::min(recorded.size(), produced.size());
  for (std::size_t i = 0; i < n; ++i) {
    const DiagEvent& r = recorded[i];
    const DiagEvent& p = produced[i];
    if (r.episode != p.episode || r.round != p.round) {
      result->mismatches.push_back("diagnosis #" + std::to_string(i) +
                                   " recorded at " + where(r) +
                                   " but replayed at " + where(p));
    } else if (r.doc != p.doc) {
      result->mismatches.push_back("diagnosis at " + where(r) +
                                   " differs:\n  recorded: " + r.doc +
                                   "\n  replayed: " + p.doc);
    }
  }
  for (std::size_t i = n; i < recorded.size(); ++i) {
    result->mismatches.push_back("recorded diagnosis at " +
                                 where(recorded[i]) +
                                 " was not reproduced by the replay");
  }
  for (std::size_t i = n; i < produced.size(); ++i) {
    result->mismatches.push_back("replay produced an extra diagnosis at " +
                                 where(produced[i]));
  }
}

std::vector<DiagEvent> recorded_events(const std::vector<TraceRecord>& trace) {
  std::vector<DiagEvent> events;
  std::size_t episode = 0;
  for (const auto& rec : trace) {
    if (rec.type == TraceRecord::Type::kBaseline) ++episode;
    if (rec.type == TraceRecord::Type::kDiagnosis) {
      events.push_back({episode, rec.round, rec.diagnosis});
    }
  }
  return events;
}

}  // namespace

ReplayResult replay_in_process(const std::vector<TraceRecord>& trace) {
  ReplayResult result;
  if (trace.empty() || trace.front().type != TraceRecord::Type::kConfig) {
    result.mismatches.push_back("trace has no config record");
    return result;
  }
  std::string error;
  const auto cfg = trace.front().config.resolve(&error);
  if (!cfg) {
    result.mismatches.push_back("bad trace config: " + error);
    return result;
  }
  core::Troubleshooter ts(*cfg);
  std::vector<DiagEvent> produced;
  std::size_t episode = 0;
  std::size_t round = 0;
  for (const auto& rec : trace) {
    switch (rec.type) {
      case TraceRecord::Type::kConfig:
        break;
      case TraceRecord::Type::kBaseline:
        ts.set_baseline(rec.mesh);
        ++episode;
        round = 0;
        ++result.baselines;
        break;
      case TraceRecord::Type::kRound: {
        ++round;
        ++result.rounds;
        const auto out =
            ts.observe(rec.mesh, rec.cp.has_value() ? &*rec.cp : nullptr);
        if (out.has_value()) {
          produced.push_back(
              {episode, round, core::to_json(out->graph, out->result)});
          ++result.diagnoses;
        }
        break;
      }
      case TraceRecord::Type::kDiagnosis:
        break;
    }
  }
  compare_events(recorded_events(trace), produced, &result);
  return result;
}

ReplayResult replay_through(Client& client, const std::string& session,
                            const std::vector<TraceRecord>& trace) {
  ReplayResult result;
  if (trace.empty() || trace.front().type != TraceRecord::Type::kConfig) {
    result.mismatches.push_back("trace has no config record");
    return result;
  }
  std::string error;
  HelloResponse hello;
  if (!expect_response(
          client.call(Request{HelloRequest{session, trace.front().config}},
                      &error),
          &hello, &error)) {
    result.mismatches.push_back("hello failed: " + error);
    return result;
  }
  std::vector<DiagEvent> produced;
  std::size_t episode = 0;
  std::size_t round = 0;
  for (const auto& rec : trace) {
    switch (rec.type) {
      case TraceRecord::Type::kConfig:
        break;
      case TraceRecord::Type::kBaseline: {
        error.clear();
        SetBaselineResponse rsp;
        if (!expect_response(
                client.call(Request{SetBaselineRequest{session, rec.mesh}},
                            &error),
                &rsp, &error)) {
          result.mismatches.push_back("set_baseline failed: " + error);
          return result;
        }
        ++episode;
        round = 0;
        ++result.baselines;
        break;
      }
      case TraceRecord::Type::kRound: {
        error.clear();
        ObserveResponse rsp;
        if (!expect_response(
                client.call(Request{ObserveRequest{session, rec.mesh, rec.cp}},
                            &error),
                &rsp, &error)) {
          result.mismatches.push_back("observe failed: " + error);
          return result;
        }
        ++round;
        ++result.rounds;
        if (rsp.diagnosis.has_value()) {
          produced.push_back({episode, round, *rsp.diagnosis});
          ++result.diagnoses;
        }
        break;
      }
      case TraceRecord::Type::kDiagnosis:
        break;
    }
  }
  compare_events(recorded_events(trace), produced, &result);
  return result;
}

}  // namespace netd::svc
