#include "svc/fault.h"

#include <sys/socket.h>

#include <chrono>
#include <thread>

#include "svc/socket.h"

namespace netd::svc {

FaultPlan FaultPlan::chaos(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.delay_prob = 0.10;
  p.delay_ms = 5;
  p.drop_prob = 0.04;
  p.truncate_prob = 0.04;
  p.corrupt_prob = 0.04;
  p.reset_prob = 0.03;
  return p;
}

Json FaultCounters::to_json() const {
  Json j = Json::object();
  j.set("delays", Json::uinteger(delays));
  j.set("drops", Json::uinteger(drops));
  j.set("truncations", Json::uinteger(truncations));
  j.set("corruptions", Json::uinteger(corruptions));
  j.set("resets", Json::uinteger(resets));
  j.set("total", Json::uinteger(total()));
  return j;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {}

FaultInjector::Action FaultInjector::draw(const std::string& frame,
                                          std::size_t* cut,
                                          std::size_t* byte) {
  // Destructive faults are mutually exclusive per frame; the draw order
  // is part of the deterministic schedule.
  if (rng_.bernoulli(plan_.drop_prob)) return Action::kDrop;
  if (rng_.bernoulli(plan_.reset_prob)) {
    *cut = frame.size() > 1 ? rng_.uniform(0, static_cast<std::uint32_t>(
                                                  frame.size() - 1))
                            : 0;
    return Action::kReset;
  }
  if (rng_.bernoulli(plan_.truncate_prob)) {
    *cut = frame.size() > 1 ? rng_.uniform(1, static_cast<std::uint32_t>(
                                                  frame.size() - 1))
                            : 0;
    return Action::kTruncate;
  }
  if (rng_.bernoulli(plan_.corrupt_prob) && frame.size() > 1) {
    // Never corrupt the trailing '\n': the mangled frame must still be
    // delivered as one line so the receiver rejects it at the parser,
    // exercising the bad_frame path rather than the framing path.
    *byte = rng_.uniform(0, static_cast<std::uint32_t>(frame.size() - 2));
    return Action::kCorrupt;
  }
  if (rng_.bernoulli(plan_.delay_prob)) return Action::kDelay;
  return Action::kPass;
}

bool FaultInjector::write_frame(int fd, std::string frame, int timeout_ms) {
  if (!plan_.enabled()) return write_all(fd, frame, timeout_ms);

  std::size_t cut = 0;
  std::size_t byte = 0;
  Action action;
  {
    std::lock_guard<std::mutex> lock(mu_);
    action = draw(frame, &cut, &byte);
    switch (action) {
      case Action::kDelay: ++counts_.delays; break;
      case Action::kDrop: ++counts_.drops; break;
      case Action::kTruncate: ++counts_.truncations; break;
      case Action::kCorrupt: ++counts_.corruptions; break;
      case Action::kReset: ++counts_.resets; break;
      case Action::kPass: break;
    }
  }

  switch (action) {
    case Action::kPass:
      return write_all(fd, frame, timeout_ms);
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
      return write_all(fd, frame, timeout_ms);
    case Action::kCorrupt:
      frame[byte] = '\x01';
      return write_all(fd, frame, timeout_ms);
    case Action::kDrop:
      return false;
    case Action::kTruncate:
      (void)write_all(fd, std::string_view(frame).substr(0, cut), timeout_ms);
      return false;
    case Action::kReset: {
      (void)write_all(fd, std::string_view(frame).substr(0, cut), timeout_ms);
      // Arm an abortive close: when the owner closes the fd the kernel
      // sends RST instead of FIN, so the peer sees a hard reset mid-frame.
      linger lg{};
      lg.l_onoff = 1;
      lg.l_linger = 0;
      ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
      return false;
    }
  }
  return false;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

}  // namespace netd::svc
